// Deterministic crash-simulation torture tests for every durability path
// (DESIGN.md #9).
//
// A scripted workload (appends of unique strings + flushes + compactions +
// manifest rewrites) runs on a FaultVfs (io/vfs.hpp). One clean run records
// the filesystem-operation trace; then for EVERY prefix of that trace the
// power "fails" — operations from the cut onward error out and change
// nothing — and the possible post-crash disks (metadata journaled eagerly
// or only at fsync-dir; unsynced data dropped, torn, or kept) are handed to
// a fresh Engine::Open. Two invariants, at every cut, in every mode:
//
//   1. Open always succeeds — never aborts, never leaves the store
//      unopenable.
//   2. The recovered contents are a batch-aligned prefix of the attempted
//      history that (a) includes every batch acknowledged under
//      sync_wal=true (an ack follows a synced WAL append, so it must
//      survive any power cut), and (b) never includes a batch the engine
//      reported as failed to a live caller.
//
// A second sweep injects a single clean-or-torn I/O failure at every
// operation of the trace (the deterministic ENOSPC/EIO stand-in) with the
// engine left alive: every batch must either ack or fail with a clean
// Status, a reopen must recover exactly the acknowledged batches (dropped
// batches must not resurface — the WAL revocation records under test), no
// tmp files may leak, and a later retry must succeed.
//
// Finally, FsyncOrderingHole replays the pre-seam code (fsync calls inert)
// through the same workload and shows a cut where the manifest names a
// segment whose bytes never hit the platter — the store does not reopen.
// The same cut with the fsyncs active recovers everything: the
// fsync-before-rename + directory-fsync fix is load-bearing.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "io/vfs.hpp"

namespace wtrie {
namespace {

using wt::io::FaultVfs;
using DataMode = FaultVfs::DataMode;
using MetadataMode = FaultVfs::MetadataMode;

using StrEngine = Engine<wt::ByteCodec>;

constexpr char kDir[] = "store";

StrEngine::Options BaseOptions(std::shared_ptr<wt::io::Vfs> vfs, bool sync) {
  StrEngine::Options opt;
  opt.num_shards = 2;
  opt.memtable_limit = 16;  // rotations + freezes land mid-workload
  opt.background_threads = 1;
  opt.dir = kDir;
  opt.sync_wal = sync;
  opt.vfs = std::move(vfs);
  return opt;
}

/// The scripted batches: globally unique values, so any resurrected or
/// misplaced string is caught by plain content equality.
std::vector<std::vector<std::string>> ScriptBatches() {
  const size_t sizes[] = {1, 7, 2, 16, 3, 1, 24, 5, 9, 1, 18, 4, 11, 2, 6, 31};
  std::vector<std::vector<std::string>> batches;
  size_t g = 0;
  for (size_t i = 0; i < std::size(sizes); ++i) {
    std::vector<std::string> b;
    for (size_t j = 0; j < sizes[i]; ++j) {
      b.push_back("key-" + std::to_string(i) + "-" + std::to_string(j) + "-" +
                  std::to_string(g++));
    }
    batches.push_back(std::move(b));
  }
  return batches;  // 141 strings
}

/// Per-batch outcome of one workload run.
enum class BatchOutcome {
  kUnattempted,  // the engine was already dead (or Open failed)
  kAcked,        // AppendBatch returned Ok
  kDropped,      // AppendBatch returned an error to a live caller
  kLimbo,        // the crash hit during (or before) this append — the
                 // caller never learned the outcome, both are legal
};

/// Runs the scripted workload. Flush()/Compact() are scripted between
/// specific batches so freezes, tail compactions, manifest rewrites, and
/// WAL cleaning all appear in the trace; their Statuses are ignored (their
/// failures surface through BackgroundError and the recovery invariants).
/// When the vfs's crash latch fires, the first failed append is kLimbo and
/// the run stops — a dead process issues no further operations.
std::vector<BatchOutcome> RunScripted(
    const std::shared_ptr<FaultVfs>& vfs, bool sync,
    const std::vector<std::vector<std::string>>& batches) {
  std::vector<BatchOutcome> out(batches.size(), BatchOutcome::kUnattempted);
  auto opened = StrEngine::Open(BaseOptions(vfs, sync));
  if (!opened.ok()) return out;
  auto eng = std::move(opened).value();
  for (size_t i = 0; i < batches.size(); ++i) {
    const Status st = eng->AppendBatch(batches[i]);
    if (st.ok()) {
      out[i] = BatchOutcome::kAcked;
    } else if (vfs->CrashTriggered()) {
      out[i] = BatchOutcome::kLimbo;
      break;
    } else {
      out[i] = BatchOutcome::kDropped;
    }
    if (i == 5 || i == 11) (void)eng->Flush();
    if (i == 13) (void)eng->Compact();
  }
  if (!vfs->CrashTriggered()) (void)eng->Flush();
  return out;
}

/// What recovery is allowed to produce, derived from the outcomes: the
/// stream of acked batches (in order) optionally extended by the limbo
/// batch, with legal sizes at batch boundaries only.
struct Expectation {
  std::vector<std::string> stream;   // acked values, then limbo values
  std::set<uint64_t> boundaries;     // legal recovered sizes
  uint64_t acked_total = 0;          // values in acked batches
};

Expectation ExpectationFrom(const std::vector<std::vector<std::string>>& batches,
                            const std::vector<BatchOutcome>& outcomes) {
  Expectation e;
  e.boundaries.insert(0);
  for (size_t i = 0; i < batches.size(); ++i) {
    if (outcomes[i] == BatchOutcome::kAcked) {
      e.stream.insert(e.stream.end(), batches[i].begin(), batches[i].end());
      e.boundaries.insert(e.stream.size());
      e.acked_total = e.stream.size();
    } else if (outcomes[i] == BatchOutcome::kLimbo) {
      e.stream.insert(e.stream.end(), batches[i].begin(), batches[i].end());
      e.boundaries.insert(e.stream.size());
    }
    // kDropped batches are excluded: the engine refused them to a live
    // caller, so recovery must never resurrect them. kUnattempted batches
    // never reached the engine at all.
  }
  return e;
}

/// Opens a store from `vfs` and verifies the recovery invariants against
/// the expectation. `min_size` is the durability floor (acked_total when
/// every acknowledged batch must have survived, 0 when loss is allowed).
/// Returns the engine for follow-up assertions; null after a failure.
std::unique_ptr<StrEngine> CheckRecoveredStore(std::shared_ptr<wt::io::Vfs> vfs,
                                               bool sync, const Expectation& e,
                                               uint64_t min_size,
                                               const std::string& ctx) {
  auto opened = StrEngine::Open(BaseOptions(std::move(vfs), sync));
  EXPECT_TRUE(opened.ok()) << ctx << ": open failed: "
                           << opened.status().message();
  if (!opened.ok()) return nullptr;
  auto eng = std::move(opened).value();
  const uint64_t size = eng->size();
  EXPECT_TRUE(e.boundaries.count(size) != 0)
      << ctx << ": size " << size << " is not a batch boundary";
  EXPECT_GE(size, min_size) << ctx << ": acknowledged data lost";
  const Status flushed = eng->Flush();
  EXPECT_TRUE(flushed.ok()) << ctx << ": " << flushed.message();
  const auto snap = eng->GetSnapshot();
  EXPECT_EQ(snap.size(), size) << ctx;
  if (size > 0 && e.boundaries.count(size) != 0) {
    std::vector<uint64_t> pos(size);
    std::iota(pos.begin(), pos.end(), 0);
    const auto got = snap.AccessBatch(pos);
    EXPECT_TRUE(got.ok()) << ctx;
    if (got.ok()) {
      for (size_t i = 0; i < size; ++i) {
        if ((*got)[i] != e.stream[i]) {
          ADD_FAILURE() << ctx << ": position " << i << " holds \""
                        << (*got)[i] << "\", expected \"" << e.stream[i]
                        << "\"";
          break;
        }
      }
    }
  }
  return eng;
}

// ------------------------------------------------------------ FaultVfs model

TEST(FaultVfsModel, SyncedPrefixAndNamespaceSemantics) {
  FaultVfs vfs;
  auto f = vfs.OpenWrite("d/a", true).value();
  ASSERT_TRUE(f->Append("hello", 5).ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append("world", 5).ok());
  ASSERT_TRUE(f->Close().ok());

  // Data: only the synced prefix survives kDropUnsynced; the torn mode
  // keeps half the unsynced tail and corrupts its last byte; kKeepAll
  // keeps everything.
  auto eager_drop = vfs.CrashFiles(MetadataMode::kEager, DataMode::kDropUnsynced);
  EXPECT_EQ(eager_drop.at("d/a"), "hello");
  auto eager_torn = vfs.CrashFiles(MetadataMode::kEager, DataMode::kTornTail);
  EXPECT_EQ(eager_torn.at("d/a").size(), 7u);
  EXPECT_EQ(eager_torn.at("d/a").substr(0, 6), "hellow");
  EXPECT_NE(eager_torn.at("d/a")[6], 'o');
  auto keep = vfs.CrashFiles(MetadataMode::kEager, DataMode::kKeepAll);
  EXPECT_EQ(keep.at("d/a"), "helloworld");

  // Namespace: the file was never published by a directory fsync, so the
  // conservative crash loses the name entirely.
  auto conservative =
      vfs.CrashFiles(MetadataMode::kConservative, DataMode::kKeepAll);
  EXPECT_EQ(conservative.count("d/a"), 0u);
  ASSERT_TRUE(vfs.SyncDir("d").ok());
  conservative = vfs.CrashFiles(MetadataMode::kConservative, DataMode::kKeepAll);
  EXPECT_EQ(conservative.at("d/a"), "helloworld");

  // A rename moves the live name immediately but the durable namespace
  // only at the next directory fsync — and the durable entry keeps
  // tracking the inode's synced prefix.
  ASSERT_TRUE(vfs.Rename("d/a", "d/b").ok());
  conservative = vfs.CrashFiles(MetadataMode::kConservative, DataMode::kKeepAll);
  EXPECT_EQ(conservative.count("d/b"), 0u);
  EXPECT_EQ(conservative.at("d/a"), "helloworld");
  auto eager = vfs.CrashFiles(MetadataMode::kEager, DataMode::kDropUnsynced);
  EXPECT_EQ(eager.count("d/a"), 0u);
  EXPECT_EQ(eager.at("d/b"), "hello");
  ASSERT_TRUE(vfs.SyncDir("d").ok());
  conservative =
      vfs.CrashFiles(MetadataMode::kConservative, DataMode::kDropUnsynced);
  EXPECT_EQ(conservative.count("d/a"), 0u);
  EXPECT_EQ(conservative.at("d/b"), "hello");

  // Truncating an existing name makes a fresh inode: until the directory
  // fsync, the durable namespace still reaches the old bytes.
  auto g = vfs.OpenWrite("d/b", true).value();
  ASSERT_TRUE(g->Append("new", 3).ok());
  ASSERT_TRUE(g->Sync().ok());
  ASSERT_TRUE(g->Close().ok());
  conservative =
      vfs.CrashFiles(MetadataMode::kConservative, DataMode::kDropUnsynced);
  EXPECT_EQ(conservative.at("d/b"), "hello");
  auto current = vfs.CurrentFiles();
  EXPECT_EQ(current.at("d/b"), "new");
}

TEST(FaultVfsModel, CrashLatchAndOneShotFaults) {
  FaultVfs vfs;
  {
    auto f = vfs.OpenWrite("x", true).value();  // op 0
    ASSERT_TRUE(f->Append("abc", 3).ok());      // op 1
    vfs.CrashAt(3);
    EXPECT_TRUE(f->Sync().ok());            // op 2: before the cut
    EXPECT_FALSE(f->Append("d", 1).ok());   // op 3: the power is gone
  }  // the close fails too, silently
  EXPECT_TRUE(vfs.CrashTriggered());
  EXPECT_FALSE(vfs.OpenWrite("y", true).ok());
  EXPECT_FALSE(vfs.ReadFile("x").ok());
  // Nothing after the cut changed the disk.
  EXPECT_EQ(vfs.CurrentFiles().at("x"), "abc");

  FaultVfs vfs2;
  vfs2.FailOpAt(1, /*torn=*/true);
  auto f = vfs2.OpenWrite("x", true).value();     // op 0
  EXPECT_FALSE(f->Append("ABCDEFGH", 8).ok());    // op 1: torn
  EXPECT_TRUE(f->Append("ijkl", 4).ok());         // one-shot: now fine
  auto files = vfs2.CurrentFiles();
  ASSERT_EQ(files.at("x").size(), 8u);  // 4 torn bytes + 4 clean
  EXPECT_EQ(files.at("x").substr(0, 3), "ABC");
  EXPECT_NE(files.at("x")[3], 'D');  // the flipped tail byte
  EXPECT_EQ(files.at("x").substr(4), "ijkl");
}

// -------------------------------------------------------- crash simulation

void SweepEveryPrefix(bool sync) {
  const auto batches = ScriptBatches();

  // Recording run: a clean pass over the workload, counting operations.
  auto rec = std::make_shared<FaultVfs>();
  const auto rec_outcomes = RunScripted(rec, sync, batches);
  for (const BatchOutcome o : rec_outcomes) {
    ASSERT_EQ(o, BatchOutcome::kAcked);  // no faults: everything acks
  }
  const uint64_t trace_len = rec->OpCount();
  ASSERT_GT(trace_len, 100u);  // the workload really exercises the disk

  const std::pair<MetadataMode, DataMode> matrix[] = {
      {MetadataMode::kConservative, DataMode::kDropUnsynced},
      {MetadataMode::kConservative, DataMode::kTornTail},
      {MetadataMode::kConservative, DataMode::kKeepAll},
      {MetadataMode::kEager, DataMode::kDropUnsynced},
      {MetadataMode::kEager, DataMode::kTornTail},
      {MetadataMode::kEager, DataMode::kKeepAll},
  };

  for (uint64_t cut = 0; cut < trace_len; ++cut) {
    auto vfs = std::make_shared<FaultVfs>();
    vfs->CrashAt(cut);
    const auto outcomes = RunScripted(vfs, sync, batches);
    const Expectation e = ExpectationFrom(batches, outcomes);
    for (const auto& [meta, data] : matrix) {
      // An ack implies a *synced* WAL append only under sync_wal=true;
      // without it an ack is durable only when the crash kept every
      // written byte and every name (process-kill semantics).
      const bool acked_must_survive =
          sync || (meta == MetadataMode::kEager && data == DataMode::kKeepAll);
      const std::string ctx =
          std::string(sync ? "sync" : "nosync") + " cut " +
          std::to_string(cut) + " meta " +
          (meta == MetadataMode::kEager ? "eager" : "conservative") + " data " +
          std::to_string(static_cast<int>(data));
      CheckRecoveredStore(std::make_shared<FaultVfs>(vfs->CrashFiles(meta, data)),
                          sync, e, acked_must_survive ? e.acked_total : 0, ctx);
      if (::testing::Test::HasFailure()) {
        FAIL() << "first failing cut: " << ctx;
      }
    }
  }
}

TEST(CrashTorture, EveryTracePrefixWithSyncWal) { SweepEveryPrefix(true); }

TEST(CrashTorture, EveryTracePrefixWithoutSyncWal) { SweepEveryPrefix(false); }

// Replays the pre-fix durability code — SaveSegment/PersistManifest calling
// no fsync before rename — through the same call sites by making
// Sync/SyncDir inert, and shows the crash the fix exists for: a journaling
// filesystem commits the renames (eager metadata) while the file bytes
// never leave the page cache, so the manifest names an empty segment and
// the store does not reopen. With the fsyncs live, the same power cut
// recovers every value: the harness is red exactly without the fix.
TEST(CrashTorture, FsyncBeforeRenameIsLoadBearing) {
  const auto batches = ScriptBatches();
  Expectation full;
  for (const auto& b : batches) {
    full.stream.insert(full.stream.end(), b.begin(), b.end());
    full.boundaries.insert(full.stream.size());
  }
  full.acked_total = full.stream.size();

  for (const bool fsync_noop : {true, false}) {
    auto vfs = std::make_shared<FaultVfs>();
    vfs->SetFsyncNoop(fsync_noop);
    const auto outcomes = RunScripted(vfs, /*sync=*/false, batches);
    for (const BatchOutcome o : outcomes) ASSERT_EQ(o, BatchOutcome::kAcked);
    // Power fails after the final flush: all renames visible, unsynced
    // bytes gone.
    const auto disk =
        vfs->CrashFiles(MetadataMode::kEager, DataMode::kDropUnsynced);
    auto opened = StrEngine::Open(
        BaseOptions(std::make_shared<FaultVfs>(disk), false));
    if (fsync_noop) {
      // Pre-fix behavior: the store is gone — either unopenable (manifest
      // bytes never synced) or opened having lost flushed data. It must
      // not come back intact.
      const bool intact = opened.ok() && (*opened)->size() == full.stream.size();
      EXPECT_FALSE(intact)
          << "the fsync-before-rename fix no longer changes anything";
    } else {
      ASSERT_TRUE(opened.ok()) << opened.status().message();
      EXPECT_EQ((*opened)->size(), full.stream.size());
    }
  }
}

// --------------------------------------------------------- ENOSPC/EIO sweep

void SweepEveryOpFailure(bool sync) {
  const auto batches = ScriptBatches();
  auto rec = std::make_shared<FaultVfs>();
  (void)RunScripted(rec, sync, batches);
  const uint64_t trace_len = rec->OpCount();
  ASSERT_GT(trace_len, 100u);

  const std::vector<std::string> retry = {"retry-0", "retry-1", "retry-2"};
  for (uint64_t op = 0; op < trace_len; ++op) {
    auto vfs = std::make_shared<FaultVfs>();
    vfs->FailOpAt(op, /*torn=*/(op % 2) == 1);  // alternate clean/torn errors
    const auto outcomes = RunScripted(vfs, sync, batches);
    const std::string ctx = std::string(sync ? "sync" : "nosync") +
                            " fault at op " + std::to_string(op);
    ASSERT_FALSE(vfs->CrashTriggered()) << ctx;

    // No tmp file may outlive the engine: every failed atomic write must
    // have cleaned up after itself (recovery's orphan scan is the backstop
    // for crashes, not for live failures).
    for (const auto& [path, data] : vfs->CurrentFiles()) {
      (void)data;
      EXPECT_EQ(path.find(".tmp"), std::string::npos)
          << ctx << ": leaked " << path;
    }

    // Reopening the surviving filesystem recovers exactly the acknowledged
    // batches: nothing lost (the process exited cleanly, so even unsynced
    // bytes are intact) and nothing resurrected (a batch dropped with an
    // error Status stays dropped even if its WAL slice reached the disk —
    // the revocation record's job).
    Expectation e = ExpectationFrom(batches, outcomes);
    e.boundaries = {e.acked_total};
    auto eng = CheckRecoveredStore(vfs, sync, e, e.acked_total, ctx);
    if (eng == nullptr || ::testing::Test::HasFailure()) {
      FAIL() << "first failing fault: " << ctx;
    }

    // The fault was transient: the engine must take new writes and flush
    // them durably.
    ASSERT_TRUE(eng->AppendBatch(retry).ok()) << ctx;
    const Status flushed = eng->Flush();
    ASSERT_TRUE(flushed.ok()) << ctx << ": " << flushed.message();
    EXPECT_EQ(eng->size(), e.acked_total + retry.size()) << ctx;
  }
}

TEST(FaultSweep, EveryOpFailsOnceWithSyncWal) { SweepEveryOpFailure(true); }

TEST(FaultSweep, EveryOpFailsOnceWithoutSyncWal) { SweepEveryOpFailure(false); }

// ------------------------------------------------------- fsck smoke store

// Materializes a genuine post-crash store onto the real filesystem so CI
// can point `wt_inspect --fsck` at it: the scripted workload is killed
// two-thirds into its operation trace (mid-freeze, with staggered shard
// states) under the harshest legal disk (conservative metadata, unsynced
// data dropped), and the surviving files are copied out of the FaultVfs.
// Skipped unless WT_CRASH_STORE_DIR is set.
TEST(CrashTorture, BuildCrashedStoreForFsck) {
  const char* dest = std::getenv("WT_CRASH_STORE_DIR");
  if (dest == nullptr) GTEST_SKIP() << "set WT_CRASH_STORE_DIR to build";
  namespace fs = std::filesystem;
  const auto batches = ScriptBatches();

  auto rec = std::make_shared<FaultVfs>();
  (void)RunScripted(rec, /*sync=*/true, batches);
  const uint64_t cut = rec->OpCount() * 2 / 3;

  auto vfs = std::make_shared<FaultVfs>();
  vfs->CrashAt(cut);
  const auto outcomes = RunScripted(vfs, /*sync=*/true, batches);
  const Expectation e = ExpectationFrom(batches, outcomes);
  const auto disk =
      vfs->CrashFiles(MetadataMode::kConservative, DataMode::kDropUnsynced);

  fs::remove_all(dest);
  ASSERT_TRUE(fs::create_directories(dest));
  const std::string prefix = std::string(kDir) + "/";
  for (const auto& [path, data] : disk) {
    ASSERT_EQ(path.rfind(prefix, 0), 0u) << path;
    std::ofstream out(fs::path(dest) / path.substr(prefix.size()),
                      std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    ASSERT_TRUE(out.good()) << path;
  }

  // The same disk must pass recovery (verified on an in-memory copy —
  // reopening the materialized directory would mutate the crash state CI
  // is about to audit): acked batches survive (sync_wal acks are
  // durable), nothing else sneaks in.
  CheckRecoveredStore(std::make_shared<FaultVfs>(disk), /*sync=*/true, e,
                      e.acked_total, "fsck smoke store");
}

}  // namespace
}  // namespace wtrie
