// Tests for the zero-copy storage subsystem (src/storage/, DESIGN.md #8):
//   * image plumbing: writer/reader alignment and bounds discipline;
//   * the corruption property suite: a byte-flip sweep and a truncation
//     sweep over a saved v4 image, asserting every mutation yields a clean
//     Status (never an abort or an out-of-bounds read — CI runs this file
//     under ASan/UBSan), mirroring the WAL robustness suite;
//   * the mapped-vs-heap-vs-v3 differential: Access/Rank/Select, prefix
//     ops, Section 5 analytics, batch forms, EncodedBits and SizeInBits
//     byte-identical across a mmap-loaded image, the same image
//     heap-loaded, the v3 stream loader, and the originally built
//     sequence;
//   * pager lifetime: one shared mapping per file, snapshots pinning a
//     compacted-away segment's mapping past its file deletion;
//   * engine integration: v4 restart round-trip, v3 segment files loading
//     through the compat path, corrupt segment files failing Open cleanly;
//   * the envelope v3 satellite: persisted encoded-bits round-trip plus a
//     hand-built v2 envelope exercising the distinct-walk compat path.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "api/sequence.hpp"
#include "engine/engine.hpp"
#include "storage/image.hpp"
#include "storage/pager.hpp"
#include "storage/vec.hpp"
#include "util/workloads.hpp"

namespace wtrie {
namespace {

namespace fs = std::filesystem;
namespace stor = wt::storage;

using StrSequence = Sequence<Static, wt::ByteCodec>;

std::vector<std::string> UrlWorkload(size_t n, uint64_t seed) {
  wt::UrlLogOptions opt;
  opt.num_domains = 24;
  opt.paths_per_domain = 12;
  opt.seed = seed;
  wt::UrlLogGenerator gen(opt);
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(gen.Next());
  return out;
}

/// A scratch directory removed on scope exit.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& name) {
    path = fs::temp_directory_path() / ("wtrie_storage_test_" + name + "_" +
                                        std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

void WriteFile(const fs::path& p, const std::string& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

/// An 8-aligned heap blob over a byte string (the in-memory loading path).
std::shared_ptr<const stor::Blob> BlobOf(const std::string& bytes) {
  auto blob = std::make_shared<stor::HeapBlob>(bytes.size());
  std::memcpy(blob->mutable_data(), bytes.data(), bytes.size());
  return blob;
}

// ----------------------------------------------------------------- Vec

TEST(StorageVec, OwnedGrowsAndComparesLikeVector) {
  stor::Vec<uint32_t> v;
  EXPECT_TRUE(v.empty());
  for (uint32_t i = 0; i < 1000; ++i) v.push_back(i * 3);
  ASSERT_EQ(v.size(), 1000u);
  for (uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(v[i], i * 3);
  v.shrink_to_fit();
  EXPECT_EQ(v.capacity(), 1000u);
  stor::Vec<uint32_t> copy = v;
  EXPECT_TRUE(copy == v);
  copy[0] = 7;
  EXPECT_FALSE(copy == v);
}

TEST(StorageVec, BorrowSharesBytesAndReportsExactCapacity) {
  std::vector<uint64_t> backing = {1, 2, 3, 4};
  auto b = stor::Vec<uint64_t>::Borrow(backing.data(), backing.size());
  EXPECT_TRUE(b.borrowed());
  EXPECT_EQ(b.data(), backing.data());
  EXPECT_EQ(b.capacity(), 4u);
  stor::Vec<uint64_t> copy = b;  // copies the borrow, not the bytes
  EXPECT_EQ(copy.data(), backing.data());
  copy.clear();  // detaches
  EXPECT_FALSE(copy.borrowed());
  EXPECT_EQ(copy.size(), 0u);
}

// --------------------------------------------------------- image plumbing

TEST(StorageImage, WriterAlignsArraysAndReaderRoundTrips) {
  stor::ImageWriter w;
  w.BeginSection(77);
  w.Pod<uint32_t>(0xABCD);  // deliberately misaligns the cursor
  const uint64_t words[3] = {10, 20, 30};
  w.Array(words, 3);
  w.EndSection();
  const std::string img = w.Finish(/*codec_id=*/5, /*n=*/3, /*encoded_bits=*/99);

  auto blob = BlobOf(img);
  stor::ImageReader r;
  ASSERT_EQ(stor::ImageReader::Parse(blob->data(), blob->size(),
                                     stor::VerifyMode::kFull, &r),
            stor::ImageError::kOk);
  EXPECT_EQ(r.header().codec_id, 5u);
  EXPECT_EQ(r.header().n, 3u);
  EXPECT_EQ(r.header().encoded_bits, 99u);
  ASSERT_EQ(r.sections().size(), 1u);
  EXPECT_EQ(r.sections()[0].offset % 8, 0u);
  ASSERT_TRUE(r.OpenSection(77));
  EXPECT_FALSE(r.OpenSection(78));
  ASSERT_TRUE(r.OpenSection(77));
  uint32_t pod = 0;
  ASSERT_TRUE(r.Pod(&pod));
  EXPECT_EQ(pod, 0xABCDu);
  const uint64_t* arr = nullptr;
  ASSERT_TRUE(r.Array(&arr, 3));
  EXPECT_EQ(reinterpret_cast<uintptr_t>(arr) % 8, 0u);  // aligned borrow
  EXPECT_EQ(arr[0], 10u);
  EXPECT_EQ(arr[2], 30u);
  // Reading past the section is refused, not overrun.
  uint64_t extra = 0;
  EXPECT_FALSE(r.Pod(&extra));
  const uint64_t* overrun = nullptr;
  EXPECT_FALSE(r.Array(&overrun, 1));
}

TEST(StorageImage, OversizedSectionTableIsRejected) {
  stor::ImageWriter w;
  w.BeginSection(1);
  w.Pod<uint64_t>(42);
  w.EndSection();
  std::string img = w.Finish(0, 0, 0);
  // Inflate the claimed section byte count past the blob.
  stor::SectionEntry entry;
  std::memcpy(&entry, img.data() + sizeof(stor::ImageHeader), sizeof(entry));
  entry.bytes = img.size();  // offset + bytes now exceeds the blob
  std::memcpy(img.data() + sizeof(stor::ImageHeader), &entry, sizeof(entry));
  auto blob = BlobOf(img);
  stor::ImageReader r;
  EXPECT_EQ(stor::ImageReader::Parse(blob->data(), blob->size(),
                                     stor::VerifyMode::kNone, &r),
            stor::ImageError::kBadLayout);
}

// ------------------------------------------------------ corruption sweeps

/// Every single-byte flip over a full v4 image must surface as a clean
/// Status error — the whole-image hash leaves no undetected byte, and the
/// bounds discipline means even the pre-hash header/table parse never
/// reads outside the blob (ASan-verified in CI).
TEST(StorageCorruption, ByteFlipSweepYieldsCleanErrors) {
  const auto values = UrlWorkload(300, 5);
  const StrSequence seq(values);
  const std::string img = seq.SerializeImage();
  ASSERT_LT(img.size(), 64u * 1024);  // keep the sweep exhaustive but fast
  for (size_t i = 0; i < img.size(); ++i) {
    std::string bad = img;
    bad[i] = static_cast<char>(bad[i] ^ 0xFF);
    Result<StrSequence> loaded = StrSequence::LoadImage(BlobOf(bad));
    EXPECT_FALSE(loaded.ok()) << "byte " << i << " flip went undetected";
  }
}

TEST(StorageCorruption, TruncationSweepYieldsCleanErrors) {
  const auto values = UrlWorkload(200, 6);
  const StrSequence seq(values);
  const std::string img = seq.SerializeImage();
  for (size_t len = 0; len < img.size(); ++len) {
    Result<StrSequence> loaded =
        StrSequence::LoadImage(BlobOf(img.substr(0, len)));
    EXPECT_FALSE(loaded.ok()) << "truncation at " << len << " went undetected";
  }
  // Trailing garbage is equally rejected (total_bytes must match exactly).
  Result<StrSequence> padded = StrSequence::LoadImage(BlobOf(img + "xx"));
  EXPECT_FALSE(padded.ok());
}

TEST(StorageCorruption, WrongCodecAndWrongFormatAreCleanErrors) {
  const StrSequence seq(UrlWorkload(50, 7));
  const std::string img = seq.SerializeImage();
  // Wrong codec instantiation.
  using RawSequence = Sequence<Static, wt::RawByteCodec>;
  Result<RawSequence> wrong = RawSequence::LoadImage(BlobOf(img));
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.code(), ErrorCode::kInvalidArgument);
  // A v3 stream is not an image.
  std::ostringstream v3;
  ASSERT_TRUE(seq.Save(v3).ok());
  Result<StrSequence> not_image = StrSequence::LoadImage(BlobOf(v3.str()));
  ASSERT_FALSE(not_image.ok());
  EXPECT_EQ(not_image.code(), ErrorCode::kCorruptStream);
  // A future image version is a clean version error.
  std::string future = img;
  const uint32_t v = stor::kImageVersion + 1;
  std::memcpy(future.data() + offsetof(stor::ImageHeader, version), &v,
              sizeof(v));
  Result<StrSequence> newer = StrSequence::LoadImage(BlobOf(future));
  ASSERT_FALSE(newer.ok());
  EXPECT_EQ(newer.code(), ErrorCode::kVersionMismatch);
}

// ------------------------------------------- mapped / heap / v3 equivalence

struct LoadedTriple {
  StrSequence built;
  StrSequence v3;
  StrSequence heap;
  StrSequence mapped;
};

LoadedTriple LoadAllWays(const std::vector<std::string>& values,
                         const TempDir& dir) {
  StrSequence built(values);
  // v3 stream round trip.
  std::ostringstream os;
  EXPECT_TRUE(built.Save(os).ok());
  std::istringstream is(os.str());
  Result<StrSequence> v3 = StrSequence::Load(is);
  EXPECT_TRUE(v3.ok());
  // v4 image, heap-loaded and mmap-loaded.
  const std::string img = built.SerializeImage();
  Result<StrSequence> heap = StrSequence::LoadImage(BlobOf(img));
  EXPECT_TRUE(heap.ok());
  const fs::path file = dir.path / "seq.img";
  WriteFile(file, img);
  stor::Pager pager;
  std::string err;
  auto blob = pager.Map(file.string(), &err);
  EXPECT_NE(blob, nullptr) << err;
  Result<StrSequence> mapped = StrSequence::LoadImage(blob);
  EXPECT_TRUE(mapped.ok());
  EXPECT_TRUE(mapped->storage() != nullptr);
  return {std::move(built), std::move(v3).value(), std::move(heap).value(),
          std::move(mapped).value()};
}

void ExpectAllAnswersIdentical(const StrSequence& a, const StrSequence& b,
                               const std::vector<std::string>& values,
                               uint64_t seed) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.NumDistinct(), b.NumDistinct());
  EXPECT_EQ(a.EncodedBits(), b.EncodedBits());
  EXPECT_EQ(a.SizeInBits(), b.SizeInBits());
  std::mt19937_64 rng(seed);
  const size_t n = a.size();
  std::vector<size_t> positions;
  std::vector<std::string> queries;
  std::vector<size_t> ranks, indices;
  for (size_t i = 0; i < 400; ++i) {
    positions.push_back(rng() % n);
    queries.push_back(i % 5 == 4 ? "absent.example/none"
                                 : values[rng() % values.size()]);
    ranks.push_back(rng() % (n + 1));
    indices.push_back(rng() % 40);
  }
  for (size_t i = 0; i < positions.size(); ++i) {
    EXPECT_EQ(a.Access(positions[i]).value(), b.Access(positions[i]).value());
    EXPECT_EQ(a.Rank(queries[i], ranks[i]).value(),
              b.Rank(queries[i], ranks[i]).value());
    const auto sa = a.Select(queries[i], indices[i]);
    const auto sb = b.Select(queries[i], indices[i]);
    ASSERT_EQ(sa.ok(), sb.ok());
    if (sa.ok()) EXPECT_EQ(sa.value(), sb.value());
    EXPECT_EQ(a.RankPrefix(queries[i].substr(0, 4), ranks[i]).value(),
              b.RankPrefix(queries[i].substr(0, 4), ranks[i]).value());
    const auto pa = a.SelectPrefix(queries[i].substr(0, 4), indices[i]);
    const auto pb = b.SelectPrefix(queries[i].substr(0, 4), indices[i]);
    ASSERT_EQ(pa.ok(), pb.ok());
    if (pa.ok()) EXPECT_EQ(pa.value(), pb.value());
  }
  // Batch forms.
  EXPECT_EQ(a.AccessBatch(positions).value(), b.AccessBatch(positions).value());
  EXPECT_EQ(a.RankBatch(queries, ranks).value(),
            b.RankBatch(queries, ranks).value());
  EXPECT_EQ(a.SelectBatch(queries, indices).value(),
            b.SelectBatch(queries, indices).value());
  // Section 5 analytics over a few windows.
  for (size_t i = 0; i < 8; ++i) {
    size_t l = rng() % n, r = rng() % (n + 1);
    if (l > r) std::swap(l, r);
    auto da = a.Distinct(l, r).value();
    auto db = b.Distinct(l, r).value();
    for (;;) {
      const bool ha = da.Next();
      const bool hb = db.Next();
      ASSERT_EQ(ha, hb);
      if (!ha) break;
      EXPECT_EQ(da.value(), db.value());
      EXPECT_EQ(da.count(), db.count());
    }
    const auto ma = a.Majority(l, r);
    const auto mb = b.Majority(l, r);
    ASSERT_EQ(ma.ok(), mb.ok());
    if (ma.ok()) EXPECT_EQ(ma.value(), mb.value());
    auto ca = a.Scan(l, std::min(n, l + 50)).value();
    auto cb = b.Scan(l, std::min(n, l + 50)).value();
    for (;;) {
      const bool ha = ca.Next();
      const bool hb = cb.Next();
      ASSERT_EQ(ha, hb);
      if (!ha) break;
      EXPECT_EQ(ca.position(), cb.position());
      EXPECT_EQ(ca.value(), cb.value());
    }
  }
}

TEST(StorageEquivalence, MappedHeapAndV3AnswerByteIdentical) {
  TempDir dir("equiv");
  const auto values = UrlWorkload(6000, 17);
  LoadedTriple t = LoadAllWays(values, dir);
  ExpectAllAnswersIdentical(t.built, t.v3, values, 101);
  ExpectAllAnswersIdentical(t.built, t.heap, values, 102);
  ExpectAllAnswersIdentical(t.built, t.mapped, values, 103);
}

TEST(StorageEquivalence, SingleDistinctAndEmptyEdgeCases) {
  TempDir dir("edge");
  // Single distinct string: zero internal nodes, empty beta delimiters.
  const std::vector<std::string> same(100, "only.example/path");
  LoadedTriple t = LoadAllWays(same, dir);
  ExpectAllAnswersIdentical(t.built, t.mapped, same, 104);
  ExpectAllAnswersIdentical(t.built, t.v3, same, 105);
  // Empty sequence.
  const StrSequence empty{};
  const std::string img = empty.SerializeImage();
  Result<StrSequence> loaded = StrSequence::LoadImage(BlobOf(img));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_EQ(loaded->EncodedBits(), 0u);
}

TEST(StorageEquivalence, FreezeOfMappedSequenceKeepsBlobAlive) {
  TempDir dir("freeze");
  const auto values = UrlWorkload(500, 23);
  LoadedTriple t = LoadAllWays(values, dir);
  StrSequence frozen = t.mapped.Freeze();  // static->static copies the borrow
  EXPECT_EQ(frozen.storage(), t.mapped.storage());
  EXPECT_EQ(frozen.Access(7).value(), t.built.Access(7).value());
}

TEST(StorageEquivalence, StatefulCodecRoundTripsThroughImage) {
  using IntSequence = Sequence<Static, wt::FixedIntCodec>;
  std::vector<uint64_t> ints;
  std::mt19937_64 rng(3);
  for (size_t i = 0; i < 2000; ++i) ints.push_back(rng() % 1000);
  const IntSequence seq(ints, wt::FixedIntCodec(10));
  const std::string img = seq.SerializeImage();
  Result<IntSequence> loaded =
      IntSequence::LoadImage(BlobOf(img), wt::FixedIntCodec(64));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->codec().width(), 10u);  // state came from the image
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(loaded->Access(i).value(), ints[i]);
  }
}

// ----------------------------------------------------------------- pager

TEST(StoragePager, SharesOneMappingPerFile) {
  TempDir dir("pager");
  const StrSequence seq(UrlWorkload(200, 31));
  const fs::path file = dir.path / "seq.img";
  WriteFile(file, seq.SerializeImage());
  stor::Pager pager;
  std::string err;
  auto a = pager.Map(file.string(), &err);
  auto b = pager.Map(file.string(), &err);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());  // one live mapping, shared
  EXPECT_EQ(pager.LiveMappings(), 1u);
  a.reset();
  b.reset();
  EXPECT_EQ(pager.LiveMappings(), 0u);  // weak cache never pins
  auto c = pager.Map(file.string(), &err);
  EXPECT_NE(c, nullptr);  // remaps after the old mapping died
}

TEST(StoragePager, MappingSurvivesFileDeletion) {
  TempDir dir("unlink");
  const auto values = UrlWorkload(300, 37);
  const StrSequence seq(values);
  const fs::path file = dir.path / "seq.img";
  WriteFile(file, seq.SerializeImage());
  stor::Pager pager;
  std::string err;
  Result<StrSequence> mapped = StrSequence::LoadImage(pager.Map(file.string(), &err));
  ASSERT_TRUE(mapped.ok());
  fs::remove(file);
  pager.Drop(file.string());
  // POSIX keeps unlinked-but-mapped bytes readable: the borrowed sequence
  // still answers (this is exactly how snapshots outlive compaction).
  for (size_t i = 0; i < values.size(); i += 17) {
    EXPECT_EQ(mapped->Access(i).value(), values[i]);
  }
}

// ------------------------------------------------------- engine integration

using StrEngine = Engine<wt::ByteCodec>;

TEST(StorageEngine, RestartServesMappedSegmentsIdentically) {
  TempDir dir("restart");
  const auto values = UrlWorkload(20000, 41);
  StrEngine::Options opt;
  opt.num_shards = 2;
  opt.memtable_limit = 1 << 11;  // many freezes and compactions
  opt.dir = dir.path.string();
  std::vector<std::string> expect_answers;
  {
    auto eng = StrEngine::Open(opt).value();
    ASSERT_TRUE(eng->AppendBatch(values).ok());
    ASSERT_TRUE(eng->Flush().ok());
    auto snap = eng->GetSnapshot();
    ASSERT_EQ(snap.size(), values.size());
    for (size_t i = 0; i < values.size(); i += 997) {
      expect_answers.push_back(snap.Access(i).value());
    }
  }
  // Segment files on disk are v4 images.
  size_t seg_files = 0;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("seg-", 0) != 0) continue;
    ++seg_files;
    std::string err;
    auto blob = stor::ReadFileBlob(e.path().string(), &err);
    ASSERT_NE(blob, nullptr);
    EXPECT_TRUE(stor::LooksLikeImage(blob->data(), blob->size())) << name;
  }
  ASSERT_GT(seg_files, 0u);
  // Reopen: segments are mapped (no deserialization) and answer the same.
  auto eng = StrEngine::Open(opt).value();
  EXPECT_EQ(eng->size(), values.size());
  auto snap = eng->GetSnapshot();
  size_t k = 0;
  for (size_t i = 0; i < values.size(); i += 997) {
    EXPECT_EQ(snap.Access(i).value(), expect_answers[k++]);
  }
  // And with mapping disabled (heap loads), answers are still identical.
  auto opt_heap = opt;
  opt_heap.map_segments = false;
  // Second engine on the same dir: fine, both are read-only until append.
  auto eng_heap = StrEngine::Open(opt_heap).value();
  auto snap_heap = eng_heap->GetSnapshot();
  k = 0;
  for (size_t i = 0; i < values.size(); i += 997) {
    EXPECT_EQ(snap_heap.Access(i).value(), expect_answers[k++]);
  }
}

TEST(StorageEngine, V3SegmentFilesLoadViaCompatPath) {
  TempDir dir("v3compat");
  const auto values = UrlWorkload(4000, 43);
  StrEngine::Options opt;
  opt.num_shards = 2;
  opt.memtable_limit = 1 << 30;
  opt.dir = dir.path.string();
  {
    auto eng = StrEngine::Open(opt).value();
    ASSERT_TRUE(eng->AppendBatch(values).ok());
    ASSERT_TRUE(eng->Flush().ok());
  }
  // Rewrite every segment file as a v3 envelope stream of the same
  // sequence (what a pre-storage-layer engine would have left behind).
  for (const auto& e : fs::directory_iterator(dir.path)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("seg-", 0) != 0) continue;
    std::string err;
    auto blob = stor::MapFileBlob(e.path().string(), true, stor::Advise::kNormal,
                                  &err);
    ASSERT_NE(blob, nullptr);
    Result<StrSequence> seg = StrSequence::LoadImage(blob);
    ASSERT_TRUE(seg.ok());
    std::ostringstream os;
    ASSERT_TRUE(seg->Save(os).ok());
    blob.reset();  // release the mapping before overwriting the file
    WriteFile(e.path(), os.str());
  }
  auto eng = StrEngine::Open(opt).value();
  EXPECT_EQ(eng->size(), values.size());
  auto snap = eng->GetSnapshot();
  for (size_t i = 0; i < values.size(); i += 113) {
    EXPECT_EQ(snap.Access(i).value(), values[i]);
  }
}

TEST(StorageEngine, CorruptSegmentFailsOpenCleanly) {
  TempDir dir("corrupt");
  StrEngine::Options opt;
  opt.num_shards = 1;
  opt.memtable_limit = 1 << 30;
  opt.dir = dir.path.string();
  // The paranoid open: full-image hashing (off by default — instant open
  // skips the pass; this is the flag an operator flips on suspect disks).
  opt.verify_segment_checksums = true;
  {
    auto eng = StrEngine::Open(opt).value();
    ASSERT_TRUE(eng->AppendBatch(UrlWorkload(2000, 47)).ok());
    ASSERT_TRUE(eng->Flush().ok());
  }
  fs::path seg_path;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    if (e.path().filename().string().rfind("seg-", 0) == 0) seg_path = e.path();
  }
  ASSERT_FALSE(seg_path.empty());
  // Flip one byte in the middle of the image.
  std::string bytes;
  {
    std::ifstream in(seg_path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    bytes = ss.str();
  }
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  WriteFile(seg_path, bytes);
  auto opened = StrEngine::Open(opt);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), ErrorCode::kCorruptStream);
}

TEST(StorageEngine, SnapshotPinsMappingAcrossCompactionDeletion) {
  TempDir dir("pin");
  const auto values = UrlWorkload(8000, 53);
  StrEngine::Options opt;
  opt.num_shards = 1;
  opt.memtable_limit = 1 << 30;
  opt.dir = dir.path.string();
  {
    // Two separate flushed batches -> two segments on disk.
    auto eng = StrEngine::Open(opt).value();
    ASSERT_TRUE(
        eng->AppendBatch({values.begin(), values.begin() + 4000}).ok());
    ASSERT_TRUE(eng->Flush().ok());
    ASSERT_TRUE(eng->AppendBatch({values.begin() + 4000, values.end()}).ok());
    ASSERT_TRUE(eng->Flush().ok());
  }
  auto eng = StrEngine::Open(opt).value();
  auto pinned = eng->GetSnapshot();  // pins the mapped pre-compaction stack
  ASSERT_EQ(pinned.size(), values.size());
  ASSERT_TRUE(eng->Compact().ok());  // merges, deletes victim files
  // The victims' files are gone (only the merged segment remains)...
  size_t seg_files = 0;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    seg_files += e.path().filename().string().rfind("seg-", 0) == 0 ? 1 : 0;
  }
  EXPECT_EQ(seg_files, 1u);
  // ...yet the pinned snapshot still answers from the unlinked mappings.
  for (size_t i = 0; i < values.size(); i += 211) {
    EXPECT_EQ(pinned.Access(i).value(), values[i]);
  }
  auto fresh = eng->GetSnapshot();
  for (size_t i = 0; i < values.size(); i += 211) {
    EXPECT_EQ(fresh.Access(i).value(), values[i]);
  }
}

// Builds a small flushed durable store at $WT_DEMO_STORE_DIR (and leaves
// it there) so CI can point wt_inspect at a real manifest + v4 segment
// images. A plain no-op without the env var.
TEST(StorageEngine, BuildDemoStoreForInspect) {
  const char* dest = std::getenv("WT_DEMO_STORE_DIR");
  if (dest == nullptr) GTEST_SKIP() << "set WT_DEMO_STORE_DIR to build";
  StrEngine::Options opt;
  opt.num_shards = 2;
  opt.memtable_limit = 1 << 12;
  opt.dir = dest;
  fs::remove_all(opt.dir);
  auto eng = StrEngine::Open(opt).value();
  ASSERT_TRUE(eng->AppendBatch(UrlWorkload(10000, 67)).ok());
  ASSERT_TRUE(eng->Flush().ok());
}

// ------------------------------------------------- envelope v3 satellite

TEST(EnvelopeV3, EncodedBitsPersistAcrossSaveLoad) {
  const auto values = UrlWorkload(1500, 59);
  const StrSequence seq(values);
  ASSERT_GT(seq.EncodedBits(), 0u);
  std::ostringstream os;
  ASSERT_TRUE(seq.Save(os).ok());
  std::istringstream is(os.str());
  Result<StrSequence> loaded = StrSequence::Load(is);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->EncodedBits(), seq.EncodedBits());
}

TEST(EnvelopeV3, V2FilesStillLoadViaDistinctWalkCompat) {
  const auto values = UrlWorkload(1200, 61);
  const StrSequence seq(values);
  // Hand-build a v2 envelope: same tag, payload without the encoded-bits
  // field (exactly what the previous release wrote).
  std::ostringstream payload;
  seq.trie().Save(payload);
  std::ostringstream file;
  const uint32_t tag = (uint32_t(Static::kPolicyId) << 8) | wt::ByteCodec::kCodecId;
  wt::VersionedEnvelope::Write(file, StrSequence::kMagic, /*version=*/2, tag,
                               std::move(payload).str());
  std::istringstream is(file.str());
  Result<StrSequence> loaded = StrSequence::Load(is);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), seq.size());
  // The compat path reconstructs the budget with the distinct walk.
  EXPECT_EQ(loaded->EncodedBits(), seq.EncodedBits());
  for (size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(loaded->Access(i).value(), values[i]);
  }
}

}  // namespace
}  // namespace wtrie
