// Tests for the dynamic Wavelet Tries (paper Section 4):
//   * AppendOnlyWaveletTrie (Theorem 4.3) — appends + queries;
//   * DynamicWaveletTrie (Theorem 4.4) — arbitrary Insert/Delete with
//     alphabet growth and shrinkage (node split/merge, Figure 3);
//   * structural equivalence with the static WaveletTrie after the same
//     sequence of appends;
//   * randomized property tests against the naive oracle.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "core/codec.hpp"
#include "core/dynamic_wavelet_trie.hpp"
#include "core/naive.hpp"
#include "core/wavelet_trie.hpp"

namespace wt {
namespace {

BitString BS(const std::string& s) { return BitString::FromString(s); }

std::vector<BitString> Figure2Sequence() {
  std::vector<BitString> seq;
  for (const char* s :
       {"0001", "0011", "0100", "00100", "0100", "00100", "0100"}) {
    seq.push_back(BS(s));
  }
  return seq;
}

// ------------------------------------------------------------- Figure 3

TEST(DynamicWaveletTrieFigure3, InsertSplitsNode) {
  // Figure 3: inserting a new string s = ...gamma·1·lambda splits the node
  // labeled gamma·0·delta into an internal node labeled gamma (with a
  // constant bitvector) plus the old node (label delta) and a new leaf
  // (label lambda). We reproduce it with gamma=10, delta=11, lambda=0:
  // sequence of 1011 s then one insert of 100.
  DynamicWaveletTrie trie;
  for (int i = 0; i < 4; ++i) trie.Append(BS("1011"));
  {
    const auto nodes = trie.DebugNodes();
    ASSERT_EQ(nodes.size(), 1u);
    EXPECT_EQ(nodes[0].alpha, "1011");
    EXPECT_EQ(nodes[0].count, 4u);
  }
  trie.Insert(BS("100"), 2);  // diverges after "10"
  {
    const auto nodes = trie.DebugNodes();
    ASSERT_EQ(nodes.size(), 3u);
    // New internal node labeled "10" with the branch bits: the old strings
    // take branch 1, the new one branch 0 -> beta = 11011 with the new
    // string at position 2.
    EXPECT_EQ(nodes[0].alpha, "10");
    EXPECT_FALSE(nodes[0].is_leaf);
    EXPECT_EQ(nodes[0].beta, "11011");
    // Left (0) child: the new leaf, label = lambda = "" (after "100").
    EXPECT_EQ(nodes[1].alpha, "");
    EXPECT_TRUE(nodes[1].is_leaf);
    EXPECT_EQ(nodes[1].count, 1u);
    // Right (1) child: the old node, label = delta = "1".
    EXPECT_EQ(nodes[2].alpha, "1");
    EXPECT_TRUE(nodes[2].is_leaf);
    EXPECT_EQ(nodes[2].count, 4u);
  }
  // Sequence content must be <1011, 1011, 100, 1011, 1011>.
  EXPECT_EQ(trie.Access(2).ToString(), "100");
  EXPECT_EQ(trie.Access(0).ToString(), "1011");
  EXPECT_EQ(trie.Access(4).ToString(), "1011");
  EXPECT_EQ(trie.NumDistinct(), 2u);

  // Deleting the last occurrence of 100 must merge the node back
  // (inverse of Figure 3).
  trie.Delete(2);
  const auto nodes = trie.DebugNodes();
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0].alpha, "1011");
  EXPECT_EQ(nodes[0].count, 4u);
  EXPECT_EQ(trie.NumDistinct(), 1u);
}

// ----------------------------------- structural equivalence with static

TEST(AppendOnlyWaveletTrie, MatchesStaticStructureOnFigure2) {
  const auto seq = Figure2Sequence();
  AppendOnlyWaveletTrie dyn;
  for (const auto& s : seq) dyn.Append(s);
  WaveletTrie st(seq);
  const auto dn = dyn.DebugNodes();
  const auto sn = st.DebugNodes();
  ASSERT_EQ(dn.size(), sn.size());
  for (size_t i = 0; i < dn.size(); ++i) {
    EXPECT_EQ(dn[i].alpha, sn[i].alpha) << "node " << i;
    EXPECT_EQ(dn[i].beta, sn[i].beta) << "node " << i;
    EXPECT_EQ(dn[i].is_leaf, sn[i].is_leaf) << "node " << i;
  }
}

TEST(DynamicWaveletTrie, MatchesStaticStructureAfterRandomAppends) {
  std::mt19937_64 rng(11);
  std::vector<std::string> alphabet;
  for (int i = 0; i < 60; ++i) {
    std::string s;
    const size_t len = 1 + rng() % 8;
    for (size_t j = 0; j < len; ++j) s.push_back('a' + rng() % 3);
    alphabet.push_back(s);
  }
  std::vector<BitString> seq;
  for (int i = 0; i < 800; ++i) {
    seq.push_back(ByteCodec::Encode(alphabet[rng() % alphabet.size()]));
  }
  DynamicWaveletTrie dyn;
  AppendOnlyWaveletTrie app;
  for (const auto& s : seq) {
    dyn.Append(s);
    app.Append(s);
  }
  WaveletTrie st(seq);
  const auto dn = dyn.DebugNodes();
  const auto an = app.DebugNodes();
  const auto sn = st.DebugNodes();
  ASSERT_EQ(dn.size(), sn.size());
  ASSERT_EQ(an.size(), sn.size());
  for (size_t i = 0; i < sn.size(); ++i) {
    ASSERT_EQ(dn[i].alpha, sn[i].alpha);
    ASSERT_EQ(dn[i].beta, sn[i].beta);
    ASSERT_EQ(an[i].alpha, sn[i].alpha);
    ASSERT_EQ(an[i].beta, sn[i].beta);
  }
}

// -------------------------------------------------- append-only vs naive

TEST(AppendOnlyWaveletTrie, InterleavedAppendsAndQueries) {
  std::mt19937_64 rng(21);
  std::vector<std::string> alphabet = {"com/a", "com/b", "org/x", "org/y/z",
                                       "net",   "com/a/long/path"};
  AppendOnlyWaveletTrie trie;
  NaiveIndexedSequence naive;
  for (int i = 0; i < 3000; ++i) {
    const auto& w = alphabet[rng() % alphabet.size()];
    const BitString enc = ByteCodec::Encode(w);
    trie.Append(enc);
    naive.Append(enc);
    if (i % 97 == 0) {
      const size_t pos = rng() % (naive.size() + 1);
      const auto& probe = alphabet[rng() % alphabet.size()];
      const BitString pe = ByteCodec::Encode(probe);
      ASSERT_EQ(trie.Rank(pe, pos), naive.Rank(pe, pos)) << "step " << i;
      const BitString pp = ByteCodec::EncodePrefix("com/");
      ASSERT_EQ(trie.RankPrefix(pp, pos), naive.RankPrefix(pp, pos));
    }
  }
  ASSERT_EQ(trie.size(), naive.size());
  ASSERT_EQ(trie.NumDistinct(), alphabet.size());
  for (size_t i = 0; i < naive.size(); i += 13) {
    ASSERT_TRUE(trie.Access(i).Span().ContentEquals(naive.Access(i).Span()));
  }
  for (const auto& w : alphabet) {
    const BitString enc = ByteCodec::Encode(w);
    const size_t total = naive.Rank(enc, naive.size());
    for (size_t k = 0; k < total; k += 1 + total / 7) {
      ASSERT_EQ(trie.Select(enc, k), naive.Select(enc, k));
    }
    ASSERT_EQ(trie.Select(enc, total), std::nullopt);
  }
  // Prefix select across a shared domain prefix.
  const BitString pp = ByteCodec::EncodePrefix("org/");
  const size_t total = naive.RankPrefix(pp, naive.size());
  for (size_t k = 0; k < total; k += 1 + total / 11) {
    ASSERT_EQ(trie.SelectPrefix(pp, k), naive.SelectPrefix(pp, k));
  }
}

// ------------------------------------------------ fully dynamic vs naive

TEST(DynamicWaveletTrie, RandomChurnAgainstNaive) {
  std::mt19937_64 rng(31);
  std::vector<std::string> alphabet;
  for (int i = 0; i < 40; ++i) {
    std::string s = "k";
    const size_t len = rng() % 6;
    for (size_t j = 0; j < len; ++j) s.push_back('0' + rng() % 5);
    alphabet.push_back(s);
  }
  std::sort(alphabet.begin(), alphabet.end());
  alphabet.erase(std::unique(alphabet.begin(), alphabet.end()), alphabet.end());

  DynamicWaveletTrie trie;
  NaiveIndexedSequence naive;
  for (int step = 0; step < 4000; ++step) {
    const int op = static_cast<int>(rng() % 10);
    if (op < 5 || naive.size() == 0) {  // insert at random position
      const BitString enc = ByteCodec::Encode(alphabet[rng() % alphabet.size()]);
      const size_t pos = rng() % (naive.size() + 1);
      trie.Insert(enc, pos);
      naive.Insert(pos, enc);
    } else if (op < 8) {  // delete
      const size_t pos = rng() % naive.size();
      trie.Delete(pos);
      naive.Delete(pos);
    } else {  // queries
      const size_t pos = rng() % (naive.size() + 1);
      const BitString probe = ByteCodec::Encode(alphabet[rng() % alphabet.size()]);
      ASSERT_EQ(trie.Rank(probe, pos), naive.Rank(probe, pos)) << "step " << step;
      if (naive.size() > 0) {
        const size_t apos = rng() % naive.size();
        ASSERT_TRUE(
            trie.Access(apos).Span().ContentEquals(naive.Access(apos).Span()));
      }
    }
    ASSERT_EQ(trie.size(), naive.size());
  }
  // Full final audit.
  for (size_t i = 0; i < naive.size(); ++i) {
    ASSERT_TRUE(trie.Access(i).Span().ContentEquals(naive.Access(i).Span()));
  }
  for (const auto& w : alphabet) {
    const BitString enc = ByteCodec::Encode(w);
    ASSERT_EQ(trie.Rank(enc, naive.size()), naive.Rank(enc, naive.size()));
    const size_t total = naive.Rank(enc, naive.size());
    if (total > 0) {
      const size_t k = rng() % total;
      ASSERT_EQ(trie.Select(enc, k), naive.Select(enc, k));
    }
  }
}

TEST(DynamicWaveletTrie, AlphabetShrinksOnLastDelete) {
  DynamicWaveletTrie trie;
  trie.Append(ByteCodec::Encode("aaa"));
  trie.Append(ByteCodec::Encode("bbb"));
  trie.Append(ByteCodec::Encode("aaa"));
  EXPECT_EQ(trie.NumDistinct(), 2u);
  trie.Delete(1);  // last occurrence of bbb
  EXPECT_EQ(trie.NumDistinct(), 1u);
  EXPECT_EQ(trie.size(), 2u);
  EXPECT_EQ(trie.Rank(ByteCodec::Encode("bbb"), 2), 0u);
  EXPECT_EQ(trie.Rank(ByteCodec::Encode("aaa"), 2), 2u);
  // Reinsert grows it again.
  trie.Insert(ByteCodec::Encode("bbb"), 0);
  EXPECT_EQ(trie.NumDistinct(), 2u);
  EXPECT_EQ(trie.Access(0).Span().ContentEquals(
                ByteCodec::Encode("bbb").Span()),
            true);
  // Drain to empty.
  trie.Delete(0);
  trie.Delete(0);
  trie.Delete(0);
  EXPECT_EQ(trie.size(), 0u);
  EXPECT_EQ(trie.NumDistinct(), 0u);
  // And it still works afterwards.
  trie.Append(ByteCodec::Encode("zzz"));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(ByteCodec::Decode(trie.Access(0).Span()), "zzz");
}

// ------------------------------------------- Section 5 on dynamic tries

TEST(DynamicWaveletTrie, RangeAlgorithmsMatchNaive) {
  std::mt19937_64 rng(41);
  std::vector<std::string> alphabet = {"x", "yy", "zzz", "yyah", "xbc"};
  DynamicWaveletTrie trie;
  NaiveIndexedSequence naive;
  for (int i = 0; i < 600; ++i) {
    const size_t z = rng() % 100;
    const auto& w = alphabet[z < 50 ? 0 : z % alphabet.size()];
    const BitString enc = ByteCodec::Encode(w);
    const size_t pos = rng() % (naive.size() + 1);
    trie.Insert(enc, pos);
    naive.Insert(pos, enc);
  }
  for (int q = 0; q < 10; ++q) {
    size_t l = rng() % (naive.size() + 1);
    size_t r = rng() % (naive.size() + 1);
    if (l > r) std::swap(l, r);
    std::vector<std::pair<std::string, size_t>> got;
    trie.DistinctInRange(l, r, [&](const BitString& s, size_t c) {
      got.emplace_back(s.ToString(), c);
    });
    std::vector<std::pair<std::string, size_t>> expect;
    for (auto& [s, c] : naive.DistinctInRange(l, r)) {
      expect.emplace_back(s.ToString(), c);
    }
    ASSERT_EQ(got, expect);

    const auto m1 = trie.RangeMajority(l, r);
    const auto m2 = naive.RangeMajority(l, r);
    ASSERT_EQ(m1.has_value(), m2.has_value());
    if (m1) {
      ASSERT_EQ(m1->first.ToString(), m2->first.ToString());
    }

    size_t expect_i = l;
    trie.ForEachInRange(l, r, [&](size_t i, const BitString& s) {
      ASSERT_EQ(i, expect_i++);
      ASSERT_TRUE(s.Span().ContentEquals(naive.Access(i).Span()));
    });
    ASSERT_EQ(expect_i, r);
  }
}

TEST(AppendOnlyWaveletTrie, RangeAlgorithmsAndIteration) {
  std::mt19937_64 rng(51);
  std::vector<std::string> alphabet = {"a/p", "a/q", "b/r", "b/s/t"};
  AppendOnlyWaveletTrie trie;
  NaiveIndexedSequence naive;
  for (int i = 0; i < 1200; ++i) {
    const auto& w = alphabet[rng() % alphabet.size()];
    const BitString enc = ByteCodec::Encode(w);
    trie.Append(enc);
    naive.Append(enc);
  }
  size_t l = 100, r = 1100;
  std::vector<std::pair<std::string, size_t>> got;
  trie.DistinctInRange(l, r, [&](const BitString& s, size_t c) {
    got.emplace_back(s.ToString(), c);
  });
  std::vector<std::pair<std::string, size_t>> expect;
  for (auto& [s, c] : naive.DistinctInRange(l, r)) {
    expect.emplace_back(s.ToString(), c);
  }
  ASSERT_EQ(got, expect);
  size_t expect_i = l;
  trie.ForEachInRange(l, r, [&](size_t i, const BitString& s) {
    ASSERT_EQ(i, expect_i++);
    ASSERT_TRUE(s.Span().ContentEquals(naive.Access(i).Span()));
  });
  // Frequent elements with threshold.
  std::vector<std::pair<std::string, size_t>> fgot;
  trie.RangeFrequent(l, r, 200, [&](const BitString& s, size_t c) {
    fgot.emplace_back(s.ToString(), c);
  });
  std::vector<std::pair<std::string, size_t>> fexpect;
  for (auto& [s, c] : naive.RangeFrequent(l, r, 200)) {
    fexpect.emplace_back(s.ToString(), c);
  }
  ASSERT_EQ(fgot, fexpect);
}

TEST(AppendOnlyWaveletTrie, LongStreamCompresses) {
  // Append a skewed URL stream; space must be far below the raw encoding.
  std::mt19937_64 rng(61);
  AppendOnlyWaveletTrie trie;
  size_t raw_bits = 0;
  for (int i = 0; i < 30000; ++i) {
    const int host = static_cast<int>(rng() % 100);
    const std::string url =
        (host < 80 ? "www.popular.com/p" : "rare" + std::to_string(host) + ".org/q") +
        std::to_string(rng() % 8);
    const BitString enc = ByteCodec::Encode(url);
    raw_bits += enc.size();
    trie.Append(enc);
  }
  EXPECT_LT(trie.SizeInBits(), raw_bits / 3);
}

}  // namespace
}  // namespace wt
