// Differential tests for the query fast path (DESIGN.md #6): the flat rank
// directories and pdep select of BitVector/Rrr are pinned against a
// bit-scanning reference oracle (including at the select-sample boundaries
// k = 4095/4096/4097 and on empty/all-ones vectors), and the batched
// trie/Sequence queries are pinned against their per-query loops for all
// three policies.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <random>
#include <sstream>
#include <vector>

#include "api/sequence.hpp"
#include "bitvector/bit_vector.hpp"
#include "bitvector/rrr.hpp"
#include "common/bit_array.hpp"
#include "common/bits.hpp"
#include "core/codec.hpp"
#include "core/wavelet_trie.hpp"
#include "util/workloads.hpp"

namespace {

using namespace wt;

// ------------------------------------------------------- bit-scan oracle

struct Oracle {
  explicit Oracle(const BitArray& bits) : bits_(&bits) {}

  size_t Rank1(size_t pos) const {
    size_t c = 0;
    for (size_t i = 0; i < pos; ++i) c += bits_->Get(i);
    return c;
  }
  size_t Select(bool b, size_t k) const {
    for (size_t i = 0; i < bits_->size(); ++i) {
      if (bits_->Get(i) == b && k-- == 0) return i;
    }
    ADD_FAILURE() << "oracle select out of range";
    return static_cast<size_t>(-1);
  }

  const BitArray* bits_;
};

BitArray MakePattern(const std::string& kind, size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  BitArray a;
  for (size_t i = 0; i < n; ++i) {
    bool b = false;
    if (kind == "ones") b = true;
    else if (kind == "zeros") b = false;
    else if (kind == "dense") b = rng() % 2 == 0;
    else if (kind == "sparse") b = rng() % 97 == 0;
    else if (kind == "runs") b = (i / 200) % 2 == 0;
    else if (kind == "alternating") b = i % 2 == 0;
    a.PushBack(b);
  }
  return a;
}

template <typename V>
void CheckAgainstOracle(const V& v, const BitArray& bits) {
  const Oracle o(bits);
  ASSERT_EQ(v.size(), bits.size());
  const size_t n = bits.size();
  // Rank and Get at structure boundaries and random positions.
  std::vector<size_t> probes = {0, n};
  for (size_t base : {size_t(63), size_t(64), size_t(512), size_t(1008),
                      size_t(2016), n / 2, n - 1, n - 63, n - 512}) {
    for (size_t d : {size_t(0), size_t(1)}) {
      if (base + d <= n && base + d > 0) probes.push_back(base + d - 1);
    }
  }
  std::mt19937_64 rng(7);
  for (int i = 0; i < 200 && n > 0; ++i) probes.push_back(rng() % (n + 1));
  size_t expected_ones = o.Rank1(n);
  ASSERT_EQ(v.num_ones(), expected_ones);
  for (size_t p : probes) {
    if (p > n) continue;
    ASSERT_EQ(v.Rank1(p), o.Rank1(p)) << "Rank1(" << p << ")";
    ASSERT_EQ(v.Rank0(p), p - o.Rank1(p)) << "Rank0(" << p << ")";
    if (p < n) ASSERT_EQ(v.Get(p), bits.Get(p)) << "Get(" << p << ")";
  }
  // Select at the sampled-window boundaries and random ks, both polarities.
  for (bool b : {false, true}) {
    const size_t count = b ? v.num_ones() : v.num_zeros();
    std::vector<size_t> ks = {0, 1, count / 2, count - 1, 4095, 4096, 4097};
    for (int i = 0; i < 100 && count > 0; ++i) ks.push_back(rng() % count);
    for (size_t k : ks) {
      if (k >= count) continue;
      ASSERT_EQ(v.Select(b, k), o.Select(b, k)) << "Select(" << b << "," << k << ")";
    }
  }
}

// ------------------------------------------------------------ in-word ops

TEST(QueryFastPath, SelectInWordMatchesPortableOracle) {
  std::mt19937_64 rng(11);
  for (int t = 0; t < 2000; ++t) {
    uint64_t x = rng();
    if (t % 3 == 0) x &= rng();  // sparser words too
    if (t == 0) x = ~uint64_t(0);
    if (t == 1) x = 1;
    const unsigned pc = static_cast<unsigned>(PopCount(x));
    for (unsigned k = 0; k < pc; ++k) {
      ASSERT_EQ(SelectInWord(x, k), SelectInWordPortable(x, k))
          << "x=" << x << " k=" << k;
    }
  }
}

// --------------------------------------------------- BitVector vs oracle

TEST(QueryFastPath, BitVectorEmpty) {
  BitVector v{BitArray()};
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.Rank1(0), 0u);
  EXPECT_EQ(v.num_ones(), 0u);
}

TEST(QueryFastPath, BitVectorDifferential) {
  // 20000 dense bits give ~10000 ones: crosses the 4096 select sample once
  // for each polarity. 9000 exercises partial final superblocks; 512/513
  // the superblock seams.
  for (const char* kind : {"ones", "zeros", "dense", "sparse", "runs",
                           "alternating"}) {
    for (size_t n : {size_t(1), size_t(63), size_t(64), size_t(512),
                     size_t(513), size_t(9000), size_t(20000)}) {
      BitArray bits = MakePattern(kind, n, 5 + n);
      BitVector v(bits);
      CheckAgainstOracle(v, bits);
    }
  }
}

TEST(QueryFastPath, BitVectorSelectSampleBoundaries) {
  // Dense ones so that k = 4095/4096/4097 all exist and the sampled window
  // clamp (the shared SelectSampleWindow helper) is exercised on both the
  // interior and the final window.
  BitArray bits = MakePattern("dense", 18000, 3);
  BitVector v(bits);
  const Oracle o(bits);
  for (size_t k : {size_t(4095), size_t(4096), size_t(4097)}) {
    ASSERT_LT(k, v.num_ones());
    EXPECT_EQ(v.Select1(k), o.Select(true, k));
    ASSERT_LT(k, v.num_zeros());
    EXPECT_EQ(v.Select0(k), o.Select(false, k));
  }
}

// --------------------------------------------------------- Rrr vs oracle

TEST(QueryFastPath, RrrDifferential) {
  for (const char* kind : {"ones", "zeros", "dense", "sparse", "runs",
                           "alternating"}) {
    // 63/1008/2016: block and (16-block) superblock seams; 20000 crosses
    // the 4096-select samples on dense input.
    for (size_t n : {size_t(1), size_t(62), size_t(63), size_t(64),
                     size_t(1008), size_t(1009), size_t(2016), size_t(9000),
                     size_t(20000)}) {
      BitArray bits = MakePattern(kind, n, 11 + n);
      Rrr v(bits);
      CheckAgainstOracle(v, bits);
    }
  }
}

TEST(QueryFastPath, RrrEmpty) {
  Rrr v{BitArray()};
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.Rank1(0), 0u);
}

TEST(QueryFastPath, RrrRankGetFusionMatchesPair) {
  BitArray bits = MakePattern("dense", 5000, 23);
  Rrr v(bits);
  for (size_t p = 0; p < bits.size(); p += 7) {
    const auto [ones, bit] = v.RankGet(p);
    ASSERT_EQ(ones, v.Rank1(p)) << p;
    ASSERT_EQ(bit, bits.Get(p)) << p;
  }
}

TEST(QueryFastPath, RrrRankCursorAnyOrder) {
  BitArray bits = MakePattern("runs", 30000, 29);
  Rrr v(bits);
  Rrr::RankCursor cursor(&v);
  std::mt19937_64 rng(31);
  // Sorted pass, then random pass, same cursor: cache must never go stale.
  for (size_t p = 0; p < bits.size(); p += 97) {
    const auto [ones, bit] = cursor.RankGet(p);
    ASSERT_EQ(ones, v.Rank1(p));
    ASSERT_EQ(bit, bits.Get(p));
  }
  for (int i = 0; i < 500; ++i) {
    const size_t p = rng() % bits.size();
    const auto [ones, bit] = cursor.RankGet(p);
    ASSERT_EQ(ones, v.Rank1(p));
    ASSERT_EQ(bit, bits.Get(p));
    ASSERT_EQ(cursor.Rank1(p), v.Rank1(p));
  }
  ASSERT_EQ(cursor.Rank1(bits.size()), v.num_ones());
}

TEST(QueryFastPath, RrrSelectCursorAnyOrder) {
  for (const char* kind : {"dense", "sparse", "runs"}) {
    BitArray bits = MakePattern(kind, 30000, 43);
    Rrr v(bits);
    Rrr::SelectCursor cursor(&v);
    // Ascending interleaved passes (the batch ascent pattern), then random
    // jumps (restart path), against the plain Select.
    for (size_t k = 0; k < v.num_ones(); k += 11) {
      ASSERT_EQ(cursor.Select1(k), v.Select1(k)) << kind << " k=" << k;
    }
    for (size_t k = 0; k < v.num_zeros(); k += 11) {
      ASSERT_EQ(cursor.Select0(k), v.Select0(k)) << kind << " k=" << k;
    }
    std::mt19937_64 rng(47);
    for (int i = 0; i < 500; ++i) {
      if (v.num_ones() > 0) {
        const size_t k = rng() % v.num_ones();
        ASSERT_EQ(cursor.Select1(k), v.Select1(k));
      }
      if (v.num_zeros() > 0) {
        const size_t k = rng() % v.num_zeros();
        ASSERT_EQ(cursor.Select0(k), v.Select0(k));
      }
    }
  }
}

TEST(QueryFastPath, RrrSaveLoadRebuildsDirectory) {
  BitArray bits = MakePattern("dense", 20000, 37);
  Rrr v(bits);
  std::stringstream ss;
  v.Save(ss);
  Rrr w;
  w.Load(ss);
  CheckAgainstOracle(w, bits);
}

// ------------------------------------------------- trie batches vs loops

std::vector<BitString> TestStrings(size_t n, uint64_t seed) {
  UrlLogOptions opt;
  opt.num_domains = 48;
  opt.paths_per_domain = 24;
  opt.seed = seed;
  UrlLogGenerator gen(opt);
  std::vector<BitString> seq;
  seq.reserve(n);
  for (size_t i = 0; i < n; ++i) seq.push_back(ByteCodec::Encode(gen.Next()));
  return seq;
}

TEST(QueryFastPath, TrieBatchMatchesLoops) {
  const size_t n = 12000;
  const auto seq = TestStrings(n, 17);
  const WaveletTrie trie = WaveletTrie::BulkBuild(seq);

  UrlLogOptions opt;
  opt.num_domains = 48;
  opt.paths_per_domain = 24;
  UrlLogGenerator gen(opt);
  std::vector<BitString> queries;
  for (size_t i = 0; i < 40; ++i) {
    queries.push_back(ByteCodec::Encode(gen.Url(i % 48, i % 24)));
  }
  queries.push_back(ByteCodec::Encode("absent.example/none"));  // not stored
  std::vector<BitSpan> qspans;
  for (const auto& q : queries) qspans.push_back(q.Span());

  std::mt19937_64 rng(41);
  const size_t m = 3000;
  std::vector<size_t> pos(m), rank_pos(m), sel_idx(m);
  std::vector<BitSpan> qs(m);
  for (size_t i = 0; i < m; ++i) {
    pos[i] = rng() % n;
    rank_pos[i] = rng() % (n + 1);  // Rank admits pos == n
    sel_idx[i] = rng() % 1200;      // often beyond a value's count
    qs[i] = qspans[rng() % qspans.size()];
  }
  // Deliberate edge positions and duplicates.
  pos[0] = 0;
  pos[1] = n - 1;
  pos[2] = pos[3] = n / 2;
  rank_pos[0] = 0;
  rank_pos[1] = n;
  sel_idx[0] = 0;

  const auto access = trie.AccessBatch(pos);
  for (size_t i = 0; i < m; ++i) {
    ASSERT_EQ(access[i], trie.Access(pos[i])) << i;
  }
  const auto ranks = trie.RankBatch(qs, rank_pos);
  for (size_t i = 0; i < m; ++i) {
    ASSERT_EQ(ranks[i], trie.Rank(qs[i], rank_pos[i])) << i;
  }
  const auto sels = trie.SelectBatch(qs, sel_idx);
  for (size_t i = 0; i < m; ++i) {
    ASSERT_EQ(sels[i], trie.Select(qs[i], sel_idx[i])) << i;
  }
}

TEST(QueryFastPath, TrieBatchEmptyAndSingleton) {
  const WaveletTrie trie = WaveletTrie::BulkBuild(TestStrings(100, 3));
  EXPECT_TRUE(trie.AccessBatch({}).empty());
  const auto one = trie.AccessBatch(std::vector<size_t>{5});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], trie.Access(5));

  const WaveletTrie empty;
  const BitString q = ByteCodec::Encode("x");
  const std::vector<BitSpan> qs{q.Span()};
  const std::vector<size_t> zero{0};
  EXPECT_EQ(empty.RankBatch(qs, zero)[0], 0u);
  EXPECT_EQ(empty.SelectBatch(qs, zero)[0], std::nullopt);
}

TEST(QueryFastPath, TrieQueriesSurviveSaveLoad) {
  const size_t n = 4000;
  const auto seq = TestStrings(n, 53);
  const WaveletTrie trie = WaveletTrie::BulkBuild(seq);
  std::stringstream ss;
  trie.Save(ss);
  WaveletTrie loaded;
  loaded.Load(ss);
  std::mt19937_64 rng(59);
  for (int i = 0; i < 500; ++i) {
    const size_t p = rng() % n;
    ASSERT_EQ(loaded.Access(p), trie.Access(p));
    ASSERT_EQ(loaded.Rank(seq[p], p), trie.Rank(seq[p], p));
  }
}

// ------------------------------- Sequence batches vs loops, all policies

template <typename Policy>
void CheckSequenceBatches() {
  UrlLogOptions opt;
  opt.seed = 71;
  UrlLogGenerator gen(opt);
  std::vector<std::string> values;
  for (size_t i = 0; i < 6000; ++i) values.push_back(gen.Next());
  const wtrie::Sequence<Policy> seq(values);

  std::mt19937_64 rng(73);
  const size_t m = 1500;
  std::vector<size_t> pos(m), rank_pos(m), sel_idx(m);
  std::vector<std::string> qvals(m);
  for (size_t i = 0; i < m; ++i) {
    pos[i] = rng() % values.size();
    rank_pos[i] = rng() % (values.size() + 1);
    sel_idx[i] = rng() % 600;
    qvals[i] = (rng() % 8 == 0) ? "missing.example/void" : values[rng() % values.size()];
  }

  const auto access = seq.AccessBatch(pos);
  ASSERT_TRUE(access.ok());
  for (size_t i = 0; i < m; ++i) {
    ASSERT_EQ((*access)[i], *seq.Access(pos[i])) << i;
  }
  const auto ranks = seq.RankBatch(qvals, rank_pos);
  ASSERT_TRUE(ranks.ok());
  for (size_t i = 0; i < m; ++i) {
    ASSERT_EQ((*ranks)[i], *seq.Rank(qvals[i], rank_pos[i])) << i;
  }
  const auto sels = seq.SelectBatch(qvals, sel_idx);
  ASSERT_TRUE(sels.ok());
  for (size_t i = 0; i < m; ++i) {
    const auto single = seq.Select(qvals[i], sel_idx[i]);
    if (single.ok()) {
      ASSERT_EQ((*sels)[i], *single) << i;
    } else {
      ASSERT_EQ((*sels)[i], std::nullopt) << i;
    }
  }

  // Error paths.
  EXPECT_EQ(seq.AccessBatch({values.size()}).status().code(),
            wtrie::ErrorCode::kOutOfRange);
  EXPECT_EQ(seq.RankBatch({"a"}, {0, 1}).status().code(),
            wtrie::ErrorCode::kInvalidArgument);
  EXPECT_EQ(seq.SelectBatch({"a", "b"}, {0}).status().code(),
            wtrie::ErrorCode::kInvalidArgument);
  EXPECT_EQ(seq.RankBatch({"a"}, {values.size() + 1}).status().code(),
            wtrie::ErrorCode::kOutOfRange);
}

TEST(QueryFastPath, StaleFormatVersionIsCleanLoadError) {
  // The v1 payload (pre-fast-path RRR stream) can no longer be parsed, so
  // Load must reject the envelope's old version cleanly — never reach the
  // aborting core loader.
  wtrie::Sequence<wtrie::Static> seq(std::vector<std::string>{"a", "b", "a"});
  std::stringstream buf;
  ASSERT_TRUE(seq.Save(buf).ok());
  std::string bytes = buf.str();
  // Envelope layout: u64 magic | u32 version | ... (version not checksummed).
  const uint32_t old_version = 1;
  std::memcpy(bytes.data() + sizeof(uint64_t), &old_version, sizeof(uint32_t));
  std::istringstream stale(bytes);
  const auto loaded = wtrie::Sequence<wtrie::Static>::Load(stale);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), wtrie::ErrorCode::kVersionMismatch);
}

TEST(QueryFastPath, SequenceBatchesStatic) {
  CheckSequenceBatches<wtrie::Static>();
}
TEST(QueryFastPath, SequenceBatchesAppendOnly) {
  CheckSequenceBatches<wtrie::AppendOnly>();
}
TEST(QueryFastPath, SequenceBatchesDynamic) {
  CheckSequenceBatches<wtrie::Dynamic>();
}

}  // namespace
