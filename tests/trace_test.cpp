// Tests for the span-tracing subsystem and the structured async logger
// (src/obs/trace.hpp, src/obs/log.hpp, DESIGN.md #13):
//   * ring overflow: the drop counter is exact and no surviving event is
//     torn (every slot either reads whole or is shed into `dropped`);
//   * slack-aware publication: events become reader-visible at the slack
//     boundary, a root-span close, or an explicit FlushThisThread;
//   * span nesting: implicit (thread-local stack) on one thread, explicit
//     parent ids across thread-pool job boundaries, misnesting unwinds;
//   * wire format: byte-identical round trip, corruption/truncation
//     rejected, eviction-tolerant validation rules;
//   * concurrent begin/end/instant under load while snapshotting (the
//     TSan job runs this binary);
//   * logger: structured lines through the Vfs seam, per-site rate
//     limiting with carried suppressed counts, queue-overflow drops,
//     write-error counting under FaultVfs;
//   * slow_ring: the trace id joins a slow request to its engine-batch
//     span and survives eviction;
//   * integration: a durable engine's background work lands freeze /
//     compaction / WAL-fsync / manifest spans on the process timeline
//     with the nesting the validator demands.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "engine/thread_pool.hpp"
#include "io/vfs.hpp"
#include "obs/log.hpp"
#include "obs/slow_ring.hpp"
#include "obs/trace.hpp"

namespace wt::obs {
namespace {

namespace fs = std::filesystem;

using K = TraceKind;
using N = TraceName;

/// A scratch directory removed on scope exit.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& name) {
    path = fs::temp_directory_path() / ("wtrie_trace_test_" + name + "_" +
                                        std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

const TraceWireEvent* FindEvent(const TraceSnapshot& s, K kind, N name) {
  for (const auto& e : s.events) {
    if (e.kind == static_cast<uint8_t>(kind) &&
        e.name == static_cast<uint8_t>(name)) {
      return &e;
    }
  }
  return nullptr;
}

size_t CountEvents(const TraceSnapshot& s, K kind, N name) {
  size_t n = 0;
  for (const auto& e : s.events) {
    n += e.kind == static_cast<uint8_t>(kind) &&
         e.name == static_cast<uint8_t>(name);
  }
  return n;
}

// ---------------------------------------------------------------- rings

TEST(TraceRing, OverflowDropCountExactNoTornEvents) {
  Tracer t(/*ring_slots=*/64);
  for (uint64_t i = 0; i < 100; ++i) t.Instant(N::kPagerUnmap, i);
  t.FlushThisThread();
  const TraceSnapshot snap = t.Snapshot();
  // 100 emits into 64 slots: exactly 36 overwritten, the newest 64 live.
  EXPECT_EQ(snap.events.size(), 64u);
  EXPECT_EQ(snap.dropped, 36u);
  // Survivors are the args [36, 100) in order — an overwrite never tears.
  uint64_t expect = 36;
  for (const auto& e : snap.events) {
    EXPECT_EQ(e.kind, static_cast<uint8_t>(K::kInstant));
    EXPECT_EQ(e.name, static_cast<uint8_t>(N::kPagerUnmap));
    EXPECT_EQ(e.arg, expect++);
  }
}

TEST(TraceRing, SlackAwarePublication) {
  Tracer t(/*ring_slots=*/256);
  for (int i = 0; i < 5; ++i) t.Instant(N::kPagerAdvise);
  // Below the slack threshold with no root-span close: nothing published.
  EXPECT_TRUE(t.Snapshot().events.empty());
  t.FlushThisThread();
  EXPECT_EQ(t.Snapshot().events.size(), 5u);
  // A root span closing publishes immediately (a complete story ended).
  const uint64_t id = t.SpanBegin(N::kFreeze);
  t.SpanEnd(id, N::kFreeze);
  EXPECT_EQ(t.Snapshot().events.size(), 7u);
  // The slack boundary itself publishes without any span close.
  Tracer t2(/*ring_slots=*/256);
  for (size_t i = 0; i < kTracePublishSlack; ++i) t2.Instant(N::kPagerMap);
  EXPECT_EQ(t2.Snapshot().events.size(), kTracePublishSlack);
}

// ---------------------------------------------------------------- spans

TEST(TraceSpans, ImplicitNestingOnOneThread) {
  Tracer t;
  const uint64_t freeze = t.SpanBegin(N::kFreeze, /*arg=*/7);
  EXPECT_NE(freeze, 0u);
  EXPECT_EQ(t.CurrentSpan(), freeze);
  const uint64_t comp = t.SpanBegin(N::kCompaction);
  EXPECT_EQ(t.CurrentSpan(), comp);
  t.Instant(N::kPagerMap);
  t.SpanEnd(comp, N::kCompaction);
  EXPECT_EQ(t.CurrentSpan(), freeze);
  t.SpanEnd(freeze, N::kFreeze, /*arg=*/99);
  EXPECT_EQ(t.CurrentSpan(), 0u);
  t.FlushThisThread();

  const TraceSnapshot snap = t.Snapshot();
  ASSERT_EQ(snap.events.size(), 5u);
  const TraceWireEvent* cb = FindEvent(snap, K::kBegin, N::kCompaction);
  ASSERT_NE(cb, nullptr);
  EXPECT_EQ(cb->parent_id, freeze);  // stack top at begin time
  const TraceWireEvent* inst = FindEvent(snap, K::kInstant, N::kPagerMap);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(inst->parent_id, comp);
  const TraceWireEvent* fe = FindEvent(snap, K::kEnd, N::kFreeze);
  ASSERT_NE(fe, nullptr);
  EXPECT_EQ(fe->arg, 99u);
  std::string err;
  EXPECT_TRUE(ValidateTraceSnapshot(snap, &err)) << err;
}

TEST(TraceSpans, ExplicitParentAcrossThreadPoolJobs) {
  Tracer t;
  const uint64_t tier = t.SpanBegin(N::kTierMerge);
  {
    wtrie::engine::ThreadPool pool(2);
    for (size_t s = 0; s < 2; ++s) {
      pool.Submit(s, [&t, tier, s] {
        ScopedSpan span(t, N::kCompaction, tier, s);
        t.FlushThisThread();
      });
    }
    pool.Drain();
  }
  t.SpanEnd(tier, N::kTierMerge);
  t.FlushThisThread();

  const TraceSnapshot snap = t.Snapshot();
  EXPECT_EQ(CountEvents(snap, K::kBegin, N::kCompaction), 2u);
  const TraceWireEvent* tb = FindEvent(snap, K::kBegin, N::kTierMerge);
  ASSERT_NE(tb, nullptr);
  for (const auto& e : snap.events) {
    if (e.name != static_cast<uint8_t>(N::kCompaction) ||
        e.kind != static_cast<uint8_t>(K::kBegin)) {
      continue;
    }
    EXPECT_EQ(e.parent_id, tier);     // carried through the closure
    EXPECT_NE(e.tid, tb->tid);        // emitted on a pool worker's ring
  }
  std::string err;
  EXPECT_TRUE(ValidateTraceSnapshot(snap, &err)) << err;
}

TEST(TraceSpans, MisnestedEndUnwindsStack) {
  Tracer t;
  const uint64_t outer = t.SpanBegin(N::kFreeze);
  const uint64_t inner = t.SpanBegin(N::kCompaction);
  (void)inner;
  // Ending the outer span abandons the inner one rather than corrupting
  // the stack.
  t.SpanEnd(outer, N::kFreeze);
  EXPECT_EQ(t.CurrentSpan(), 0u);
}

// ----------------------------------------------------------- wire format

TEST(TraceWire, RoundTripByteIdentity) {
  Tracer t;
  const uint64_t f = t.SpanBegin(N::kFreeze, 1);
  const uint64_t c = t.SpanBegin(N::kCompaction, 2);
  t.SpanEnd(c, N::kCompaction);
  t.SpanEnd(f, N::kFreeze);
  t.FlushThisThread();
  const TraceSnapshot snap = t.Snapshot();
  ASSERT_EQ(snap.events.size(), 4u);

  const std::string bytes = SerializeTraceSnapshot(snap);
  TraceSnapshot back;
  ASSERT_TRUE(ParseTraceSnapshot(bytes.data(), bytes.size(), &back));
  EXPECT_EQ(back.events.size(), snap.events.size());
  EXPECT_EQ(back.dropped, snap.dropped);
  EXPECT_EQ(SerializeTraceSnapshot(back), bytes);
}

TEST(TraceWire, RejectsCorruptionTruncationAndSkew) {
  TraceSnapshot s;
  TraceWireEvent e;
  e.ts_ns = 10;
  e.span_id = 1;
  e.tid = 1;
  e.kind = static_cast<uint8_t>(K::kBegin);
  e.name = static_cast<uint8_t>(N::kFreeze);
  s.events.push_back(e);
  const std::string good = SerializeTraceSnapshot(s);
  TraceSnapshot out;
  ASSERT_TRUE(ParseTraceSnapshot(good.data(), good.size(), &out));

  for (size_t pos : {size_t{0}, size_t{8}, good.size() - 1}) {
    std::string bad = good;
    bad[pos] ^= 0x5A;  // magic / version / body: all checksum-or-field fail
    EXPECT_FALSE(ParseTraceSnapshot(bad.data(), bad.size(), &out)) << pos;
  }
  EXPECT_FALSE(ParseTraceSnapshot(good.data(), good.size() - 1, &out));
  EXPECT_FALSE(ParseTraceSnapshot(good.data(), 7, &out));
  // Non-canonical events: unknown kind/name, nonzero reserved pad. Each
  // rebuilt with a correct checksum so only the field check can reject.
  for (auto mutate : {+[](TraceWireEvent* ev) { ev->kind = 9; },
                      +[](TraceWireEvent* ev) { ev->name = 0xEE; },
                      +[](TraceWireEvent* ev) { ev->reserved = 1; }}) {
    TraceSnapshot bad_snap = s;
    mutate(&bad_snap.events[0]);
    const std::string bad = SerializeTraceSnapshot(bad_snap);
    EXPECT_FALSE(ParseTraceSnapshot(bad.data(), bad.size(), &out));
  }
}

TEST(TraceValidate, EvictionToleranceRules) {
  auto make = [](K kind, N name, uint64_t ts, uint64_t span, uint64_t parent,
                 uint32_t tid) {
    TraceWireEvent e;
    e.ts_ns = ts;
    e.span_id = span;
    e.parent_id = parent;
    e.tid = tid;
    e.kind = static_cast<uint8_t>(kind);
    e.name = static_cast<uint8_t>(name);
    return e;
  };
  std::string err;

  // An end whose begin was evicted: invalid with dropped == 0, tolerated
  // once the ring admits it shed events.
  TraceSnapshot orphan;
  orphan.events.push_back(make(K::kEnd, N::kFreeze, 5, 0x200, 0, 1));
  EXPECT_FALSE(ValidateTraceSnapshot(orphan, &err));
  orphan.dropped = 1;
  EXPECT_TRUE(ValidateTraceSnapshot(orphan, &err)) << err;

  // A compaction must hang off a freeze or tier-merge parent. A zero
  // parent id is instrumentation failure — never excused by eviction.
  TraceSnapshot rootless;
  rootless.events.push_back(make(K::kBegin, N::kCompaction, 1, 0x300, 0, 1));
  rootless.events.push_back(make(K::kEnd, N::kCompaction, 2, 0x300, 0, 1));
  EXPECT_FALSE(ValidateTraceSnapshot(rootless, &err));
  rootless.dropped = 1;
  EXPECT_FALSE(ValidateTraceSnapshot(rootless, &err));
  // A nonzero parent whose Begin was evicted is tolerated once the ring
  // admits it shed events.
  TraceSnapshot evicted_parent;
  evicted_parent.events.push_back(
      make(K::kBegin, N::kCompaction, 1, 0x301, 0x2FF, 1));
  EXPECT_FALSE(ValidateTraceSnapshot(evicted_parent, &err));
  evicted_parent.dropped = 1;
  EXPECT_TRUE(ValidateTraceSnapshot(evicted_parent, &err)) << err;

  TraceSnapshot wrong_parent;
  wrong_parent.events.push_back(make(K::kBegin, N::kWalClean, 1, 0x400, 0, 1));
  wrong_parent.events.push_back(
      make(K::kBegin, N::kCompaction, 2, 0x401, 0x400, 1));
  EXPECT_FALSE(ValidateTraceSnapshot(wrong_parent, &err));

  // Out-of-order timestamps and double begins are structural breaks.
  TraceSnapshot unsorted;
  unsorted.events.push_back(make(K::kBegin, N::kFreeze, 9, 0x500, 0, 1));
  unsorted.events.push_back(make(K::kEnd, N::kFreeze, 3, 0x500, 0, 1));
  EXPECT_FALSE(ValidateTraceSnapshot(unsorted, &err));
  TraceSnapshot twice;
  twice.events.push_back(make(K::kBegin, N::kFreeze, 1, 0x600, 0, 1));
  twice.events.push_back(make(K::kBegin, N::kFreeze, 2, 0x600, 0, 1));
  EXPECT_FALSE(ValidateTraceSnapshot(twice, &err));
}

// ----------------------------------------------------------- concurrency

// Hammered by the TSan CI job: concurrent begin/end/instant on four
// threads while two snapshotters read. Every surviving event must be
// whole (valid kind/name) and the collection must round-trip.
TEST(TraceConcurrency, ConcurrentSpansAndSnapshotsStayWhole) {
  Tracer t(/*ring_slots=*/128);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&t, w] {
      for (uint64_t i = 0; i < 2000; ++i) {
        ScopedSpan outer(t, N::kFreeze, i);
        {
          ScopedSpan inner(t, N::kCompaction, i);
          t.Instant(N::kPagerMap, static_cast<uint64_t>(w));
        }
      }
      t.FlushThisThread();
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&t, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        const TraceSnapshot snap = t.Snapshot();
        for (const auto& e : snap.events) {
          ASSERT_GE(e.kind, static_cast<uint8_t>(K::kBegin));
          ASSERT_LE(e.kind, static_cast<uint8_t>(K::kInstant));
          ASSERT_LT(e.name, kTraceNameCount);
        }
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  const TraceSnapshot snap = t.Snapshot();
  EXPECT_FALSE(snap.events.empty());
  EXPECT_GT(snap.dropped, 0u);  // 4 * 6000 emits into 4 * 128 slots
  const std::string bytes = SerializeTraceSnapshot(snap);
  TraceSnapshot back;
  EXPECT_TRUE(ParseTraceSnapshot(bytes.data(), bytes.size(), &back));
}

// ------------------------------------------------------------- slow ring

TEST(SlowRing, TraceIdSurvivesEviction) {
  SlowRequestRing ring(/*capacity=*/2, /*threshold_ns=*/0);
  for (uint64_t i = 1; i <= 3; ++i) {
    SlowRequestRecord rec;
    rec.request_id = i;
    rec.total_ns = 100 * i;
    rec.trace_id = 1000 + i;  // the engine-batch span that executed it
    ring.MaybeRecord(rec);
  }
  const std::vector<SlowRequestRecord> snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  // Oldest evicted; the survivors keep their span linkage intact.
  EXPECT_EQ(snap[0].request_id, 2u);
  EXPECT_EQ(snap[0].trace_id, 1002u);
  EXPECT_EQ(snap[1].request_id, 3u);
  EXPECT_EQ(snap[1].trace_id, 1003u);
}

// ---------------------------------------------------------------- logger

TEST(Logger, StructuredLinesThroughVfsSeam) {
  wt::io::FaultVfs vfs;
  Logger lg;
  LogSite site;
  // Logging before Configure buffers in memory and flushes once the sink
  // exists — startup lines are never lost to ordering.
  lg.LogAt(site, LogLevel::kInfo, "early", {KV("seq", 1)});
  ASSERT_TRUE(lg.Configure({.path = "app.log", .vfs = &vfs}).ok());
  lg.LogAt(site, LogLevel::kInfo, "freeze_done",
           {KV("shard", 3), KV("note", "two words"), KV("ok", true)});
  lg.LogAt(site, LogLevel::kDebug, "below_min_level", {});
  lg.Flush();
  lg.Shutdown();

  const std::string content = vfs.CurrentFiles().at("app.log");
  EXPECT_NE(content.find("event=early seq=1"), std::string::npos);
  EXPECT_NE(content.find("level=info event=freeze_done shard=3 "
                         "note=\"two words\" ok=true"),
            std::string::npos);
  // Default min level is kInfo: the debug line never reached the queue.
  EXPECT_EQ(content.find("below_min_level"), std::string::npos);
  EXPECT_EQ(lg.write_errors(), 0u);
}

TEST(Logger, PerSiteRateLimitCarriesSuppressedCount) {
  wt::io::FaultVfs vfs;
  Logger lg;
  Logger::Options opt;
  opt.path = "rate.log";
  opt.vfs = &vfs;
  opt.site_window_ms = 100;
  opt.site_max_per_window = 2;
  ASSERT_TRUE(lg.Configure(std::move(opt)).ok());
  LogSite site;
  for (int i = 0; i < 10; ++i) {
    lg.LogAt(site, LogLevel::kInfo, "flood", {KV("i", i)});
  }
  lg.Flush();
  EXPECT_EQ(lg.suppressed(), 8u);
  // After the window rolls, the next line from the site carries the
  // flood size so the log shows one line saying how much was dropped.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  lg.LogAt(site, LogLevel::kInfo, "flood", {KV("i", 10)});
  lg.Flush();
  lg.Shutdown();
  const std::string content = vfs.CurrentFiles().at("rate.log");
  EXPECT_NE(content.find("event=flood suppressed=8 i=10"),
            std::string::npos);
  // A different site is untouched by this site's window.
  EXPECT_EQ(lg.dropped(), 0u);
}

TEST(Logger, QueueOverflowDropsInsteadOfBlocking) {
  // Unconfigured: no flusher drains, so the queue bound is hit exactly.
  // Log() is the unlimited variant — no site window shields the queue.
  Logger lg;
  for (int i = 0; i < 4100; ++i) {
    lg.Log(LogLevel::kError, "burst", {});
  }
  EXPECT_EQ(lg.dropped(), 4u);  // default bound 4096
  EXPECT_EQ(lg.emitted(), 4100u);
}

TEST(Logger, WriteErrorsCountedUnderFaultVfs) {
  wt::io::FaultVfs vfs;
  Logger lg;
  ASSERT_TRUE(lg.Configure({.path = "faulty.log", .vfs = &vfs}).ok());
  // Op 0 was Configure's OpenWrite; fail the first Append after it.
  vfs.FailOpAt(1);
  lg.Log(LogLevel::kError, "doomed", {});
  lg.Flush();
  EXPECT_EQ(lg.write_errors(), 1u);
  // The logger degrades to counting, it does not wedge: later lines land.
  lg.Log(LogLevel::kError, "survivor", {});
  lg.Flush();
  lg.Shutdown();
  EXPECT_NE(vfs.CurrentFiles().at("faulty.log").find("event=survivor"),
            std::string::npos);
}

// ------------------------------------------------------------ integration

// A durable engine under real freeze/compaction load must land its
// background spans on the process timeline (Tracer::Get()) with the
// nesting ValidateTraceSnapshot demands — the same gate bench_serving and
// the CI trace smoke apply to a live daemon.
TEST(TraceIntegration, EngineBackgroundWorkAppearsOnProcessTimeline) {
  using StrEngine = wtrie::Engine<wt::ByteCodec>;
  TempDir dir("engine_spans");
  {
    StrEngine::Options opt;
    opt.num_shards = 2;
    opt.memtable_limit = 64;
    opt.dir = dir.path.string();
    auto eng = StrEngine::Open(opt).value();
    std::vector<std::string> batch;
    for (int i = 0; i < 1500; ++i) {
      batch.push_back("string-" + std::to_string(i));
      if (batch.size() == 100) {
        ASSERT_TRUE(eng->AppendBatch(batch).ok());
        batch.clear();
      }
    }
    ASSERT_TRUE(eng->Flush().ok());
    ASSERT_TRUE(eng->Compact().ok());
    eng->RefreshMetrics();
    // The new background instruments are live alongside the spans.
    const auto& reg = *eng->metrics();
    const auto ms = reg.Snapshot();
    ASSERT_NE(ms.FindGauge("wt_engine_compaction_debt"), nullptr);
    ASSERT_NE(ms.FindGauge("wt_engine_segments{shard=\"0\"}"), nullptr);
    const auto* wal_bytes = ms.FindHistogram("wt_wal_append_bytes");
    ASSERT_NE(wal_bytes, nullptr);
    EXPECT_GT(wal_bytes->count, 0u);
  }

  const TraceSnapshot snap = Tracer::Get().Snapshot();
  EXPECT_GT(CountEvents(snap, K::kBegin, N::kFreeze), 0u);
  EXPECT_GT(CountEvents(snap, K::kBegin, N::kTierMerge), 0u);
  EXPECT_GT(CountEvents(snap, K::kBegin, N::kCompaction), 0u);
  EXPECT_GT(CountEvents(snap, K::kBegin, N::kWalFsync), 0u);
  EXPECT_GT(CountEvents(snap, K::kBegin, N::kManifestPersist), 0u);
  EXPECT_GT(CountEvents(snap, K::kBegin, N::kWalRotate), 0u);
  std::string err;
  EXPECT_TRUE(ValidateTraceSnapshot(snap, &err)) << err;
  // The export pipeline accepts what the engine produced.
  const std::string bytes = SerializeTraceSnapshot(snap);
  TraceSnapshot back;
  ASSERT_TRUE(ParseTraceSnapshot(bytes.data(), bytes.size(), &back));
  EXPECT_EQ(back.events.size(), snap.events.size());
}

}  // namespace
}  // namespace wt::obs
