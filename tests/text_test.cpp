// Tests for the text-indexing substrate: suffix array / BWT / LCP
// (text/suffix_array.hpp), the FM-index (text/fm_index.hpp) and the
// approach-(2) TextCollection baseline (text/text_collection.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "text/fm_index.hpp"
#include "text/suffix_array.hpp"
#include "text/text_collection.hpp"
#include "util/workloads.hpp"

namespace wt {
namespace {

std::vector<uint32_t> ToSymbols(std::string_view s, bool sentinel = true) {
  std::vector<uint32_t> out;
  for (unsigned char c : s) out.push_back(uint32_t(c) + 1);
  if (sentinel) out.push_back(0);
  return out;
}

std::vector<uint32_t> NaiveSuffixArray(const std::vector<uint32_t>& text) {
  std::vector<uint32_t> sa(text.size());
  std::iota(sa.begin(), sa.end(), 0);
  std::sort(sa.begin(), sa.end(), [&](uint32_t a, uint32_t b) {
    return std::lexicographical_compare(text.begin() + a, text.end(),
                                        text.begin() + b, text.end());
  });
  return sa;
}

size_t NaiveCount(std::string_view text, std::string_view pat) {
  if (pat.empty()) return text.size() + 1;
  size_t c = 0;
  for (size_t i = 0; pat.size() <= text.size() && i + pat.size() <= text.size(); ++i) {
    c += text.compare(i, pat.size(), pat) == 0;
  }
  return c;
}

// -------------------------------------------------------------- SuffixArray

TEST(SuffixArray, EmptyAndSingle) {
  EXPECT_TRUE(BuildSuffixArray({}).empty());
  EXPECT_EQ(BuildSuffixArray({5}), (std::vector<uint32_t>{0}));
}

TEST(SuffixArray, BananaClassic) {
  // banana$ -> SA = 6 5 3 1 0 4 2, BWT = annb$aa.
  const auto text = ToSymbols("banana");
  const auto sa = BuildSuffixArray(text);
  EXPECT_EQ(sa, (std::vector<uint32_t>{6, 5, 3, 1, 0, 4, 2}));
  const auto bwt = BuildBwt(text, sa);
  std::string rendered;
  for (uint32_t c : bwt) rendered.push_back(c == 0 ? '$' : char(c - 1));
  EXPECT_EQ(rendered, "annb$aa");
}

TEST(SuffixArray, AllEqualSymbols) {
  const auto text = ToSymbols("aaaaaa");
  const auto sa = BuildSuffixArray(text);
  // Shorter suffixes sort first: 6(sentinel),5,4,3,2,1,0.
  EXPECT_EQ(sa, (std::vector<uint32_t>{6, 5, 4, 3, 2, 1, 0}));
}

TEST(SuffixArray, PeriodicText) {
  const auto text = ToSymbols("abababab");
  EXPECT_EQ(BuildSuffixArray(text), NaiveSuffixArray(text));
}

class SuffixArrayRandom : public ::testing::TestWithParam<
                              std::tuple<size_t, unsigned, uint64_t>> {};

TEST_P(SuffixArrayRandom, MatchesNaiveSort) {
  const auto [len, sigma, seed] = GetParam();
  std::mt19937_64 rng(seed);
  std::string s;
  for (size_t i = 0; i < len; ++i) s.push_back(char('a' + rng() % sigma));
  const auto text = ToSymbols(s);
  EXPECT_EQ(BuildSuffixArray(text), NaiveSuffixArray(text)) << s;
}

TEST_P(SuffixArrayRandom, LcpMatchesNaive) {
  const auto [len, sigma, seed] = GetParam();
  std::mt19937_64 rng(seed ^ 0xF00D);
  std::string s;
  for (size_t i = 0; i < len; ++i) s.push_back(char('a' + rng() % sigma));
  const auto text = ToSymbols(s);
  const auto sa = BuildSuffixArray(text);
  const auto lcp = BuildLcpArray(text, sa);
  ASSERT_EQ(lcp.size(), text.size() - 1);
  for (size_t k = 0; k + 1 < text.size(); ++k) {
    size_t h = 0;
    while (sa[k] + h < text.size() && sa[k + 1] + h < text.size() &&
           text[sa[k] + h] == text[sa[k + 1] + h]) {
      ++h;
    }
    ASSERT_EQ(lcp[k], h) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SuffixArrayRandom,
    ::testing::Values(std::tuple<size_t, unsigned, uint64_t>{1, 1, 1},
                      std::tuple<size_t, unsigned, uint64_t>{2, 2, 2},
                      std::tuple<size_t, unsigned, uint64_t>{50, 2, 3},
                      std::tuple<size_t, unsigned, uint64_t>{100, 3, 4},
                      std::tuple<size_t, unsigned, uint64_t>{333, 4, 5},
                      std::tuple<size_t, unsigned, uint64_t>{500, 26, 6},
                      std::tuple<size_t, unsigned, uint64_t>{777, 2, 7}));

TEST(SuffixArray, InverseIsAPermutationInverse) {
  const auto text = ToSymbols("mississippi");
  const auto sa = BuildSuffixArray(text);
  const auto isa = InverseSuffixArray(sa);
  for (size_t k = 0; k < sa.size(); ++k) {
    EXPECT_EQ(isa[sa[k]], k);
    EXPECT_EQ(sa[isa[k]], k);
  }
}

// ------------------------------------------------------------------ FmIndex

TEST(FmIndex, CountOnMississippi) {
  const auto fm = FmIndex::FromString("mississippi");
  EXPECT_EQ(fm.size(), 11u);
  EXPECT_EQ(fm.CountString("ssi"), 2u);
  EXPECT_EQ(fm.CountString("issi"), 2u);
  EXPECT_EQ(fm.CountString("i"), 4u);
  EXPECT_EQ(fm.CountString("mississippi"), 1u);
  EXPECT_EQ(fm.CountString("x"), 0u);
  EXPECT_EQ(fm.CountString("ppi"), 1u);
  EXPECT_EQ(fm.CountString(""), 12u);
}

TEST(FmIndex, LocateOnMississippi) {
  const auto fm = FmIndex::FromString("mississippi");
  EXPECT_EQ(fm.LocateString("ssi"), (std::vector<size_t>{2, 5}));
  EXPECT_EQ(fm.LocateString("i"), (std::vector<size_t>{1, 4, 7, 10}));
  EXPECT_EQ(fm.LocateString("mississippi"), (std::vector<size_t>{0}));
  EXPECT_TRUE(fm.LocateString("zzz").empty());
}

TEST(FmIndex, ExtractRecoversSubstrings) {
  const std::string text = "the quick brown fox jumps over the lazy dog";
  const auto fm = FmIndex::FromString(text);
  for (size_t start = 0; start < text.size(); start += 5) {
    for (size_t len : {size_t(0), size_t(1), size_t(7),
                       text.size() - start}) {
      if (start + len > text.size()) continue;
      EXPECT_EQ(fm.ExtractString(start, len), text.substr(start, len))
          << start << "+" << len;
    }
  }
}

class FmIndexRandom
    : public ::testing::TestWithParam<std::tuple<size_t, unsigned, uint64_t>> {
 protected:
  void SetUp() override {
    const auto [len, sigma, seed] = GetParam();
    std::mt19937_64 rng(seed);
    for (size_t i = 0; i < len; ++i) text_.push_back(char('a' + rng() % sigma));
    fm_ = FmIndex::FromString(text_);
    rng_.seed(seed ^ 0xBEEF);
  }

  std::string RandomPattern(size_t max_len, bool from_text) {
    const size_t len = 1 + rng_() % max_len;
    if (from_text && len <= text_.size()) {
      const size_t start = rng_() % (text_.size() - len + 1);
      return text_.substr(start, len);
    }
    const auto [_, sigma, __] = GetParam();
    std::string p;
    for (size_t i = 0; i < len; ++i) p.push_back(char('a' + rng_() % (sigma + 1)));
    return p;
  }

  std::string text_;
  FmIndex fm_;
  std::mt19937_64 rng_;
};

TEST_P(FmIndexRandom, CountMatchesNaive) {
  for (int probe = 0; probe < 60; ++probe) {
    const std::string p = RandomPattern(12, probe % 2 == 0);
    ASSERT_EQ(fm_.CountString(p), NaiveCount(text_, p)) << "'" << p << "'";
  }
}

TEST_P(FmIndexRandom, LocateMatchesNaive) {
  for (int probe = 0; probe < 25; ++probe) {
    const std::string p = RandomPattern(8, true);
    std::vector<size_t> expect;
    for (size_t i = 0; i + p.size() <= text_.size(); ++i) {
      if (text_.compare(i, p.size(), p) == 0) expect.push_back(i);
    }
    ASSERT_EQ(fm_.LocateString(p), expect) << "'" << p << "'";
  }
}

TEST_P(FmIndexRandom, ExtractMatchesSubstr) {
  for (int probe = 0; probe < 25; ++probe) {
    const size_t start = rng_() % text_.size();
    const size_t len = rng_() % (text_.size() - start + 1);
    ASSERT_EQ(fm_.ExtractString(start, len), text_.substr(start, len));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FmIndexRandom,
    ::testing::Values(std::tuple<size_t, unsigned, uint64_t>{40, 2, 1},
                      std::tuple<size_t, unsigned, uint64_t>{200, 2, 2},
                      std::tuple<size_t, unsigned, uint64_t>{500, 4, 3},
                      std::tuple<size_t, unsigned, uint64_t>{1000, 3, 4},
                      std::tuple<size_t, unsigned, uint64_t>{2000, 26, 5},
                      std::tuple<size_t, unsigned, uint64_t>{1500, 2, 6}));

TEST(FmIndex, SaveLoadRoundTrip) {
  const std::string text = "compressed indexed sequences of strings";
  const auto fm = FmIndex::FromString(text);
  std::stringstream ss;
  fm.Save(ss);
  FmIndex loaded;
  loaded.Load(ss);
  EXPECT_EQ(loaded.size(), text.size());
  EXPECT_EQ(loaded.CountString("se"), fm.CountString("se"));
  EXPECT_EQ(loaded.LocateString("es"), fm.LocateString("es"));
  EXPECT_EQ(loaded.ExtractString(11, 7), "indexed");
}

TEST(FmIndex, EmptyText) {
  FmIndex fm(std::vector<uint32_t>{});
  EXPECT_EQ(fm.size(), 0u);
  EXPECT_EQ(fm.CountString(""), 1u);  // the sentinel row only
  EXPECT_EQ(fm.CountString("a"), 0u);
}

// ------------------------------------------------------------ TextCollection

class TextCollectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    UrlLogGenerator gen({.num_domains = 8, .paths_per_domain = 6, .seed = 4});
    docs_ = gen.Take(150);
    docs_.push_back("");  // empty document edge case
    docs_.push_back(docs_[3]);
    coll_ = TextCollection(docs_);
  }

  std::vector<std::string> docs_;
  TextCollection coll_;
};

TEST_F(TextCollectionTest, AccessExtractsEveryDocument) {
  ASSERT_EQ(coll_.size(), docs_.size());
  for (size_t i = 0; i < docs_.size(); ++i) {
    ASSERT_EQ(coll_.Access(i), docs_[i]) << i;
  }
}

TEST_F(TextCollectionTest, CountRankSelectMatchNaive) {
  const std::vector<std::string> probes{docs_[0], docs_[3], "", "absent!"};
  for (const auto& s : probes) {
    size_t total = 0;
    for (size_t i = 0; i < docs_.size(); ++i) {
      ASSERT_EQ(coll_.Rank(s, i), total) << "'" << s << "' pos " << i;
      if (docs_[i] == s) {
        ASSERT_EQ(coll_.Select(s, total), std::optional<size_t>(i));
        ++total;
      }
    }
    ASSERT_EQ(coll_.Count(s), total) << "'" << s << "'";
    ASSERT_EQ(coll_.Select(s, total), std::nullopt);
  }
}

TEST_F(TextCollectionTest, PrefixOperationsMatchNaive) {
  const std::vector<std::string> prefixes{"www.site0.com", "www.site1",
                                          "www.", "", "nope"};
  for (const auto& p : prefixes) {
    size_t total = 0;
    for (size_t i = 0; i < docs_.size(); ++i) {
      if (i % 13 == 0) {
        ASSERT_EQ(coll_.RankPrefix(p, i), total) << p << " " << i;
      }
      if (docs_[i].compare(0, p.size(), p) == 0) {
        ASSERT_EQ(coll_.SelectPrefix(p, total), std::optional<size_t>(i)) << p;
        ++total;
      }
    }
    ASSERT_EQ(coll_.CountPrefix(p), total) << "'" << p << "'";
  }
}

TEST_F(TextCollectionTest, DocsContainingSubstring) {
  std::vector<size_t> expect;
  for (size_t i = 0; i < docs_.size(); ++i) {
    if (docs_[i].find("page3") != std::string::npos) expect.push_back(i);
  }
  EXPECT_EQ(coll_.DocsContaining("page3"), expect);
}

TEST(TextCollection, EmptyCollection) {
  TextCollection coll;
  EXPECT_EQ(coll.size(), 0u);
  EXPECT_EQ(coll.Count("x"), 0u);
  EXPECT_EQ(coll.CountPrefix(""), 0u);
}

TEST(TextCollection, SharedPrefixDocsAreDistinguished) {
  TextCollection coll(std::vector<std::string>{"ab", "abc", "ab", "a"});
  EXPECT_EQ(coll.Count("ab"), 2u);
  EXPECT_EQ(coll.Count("abc"), 1u);
  EXPECT_EQ(coll.Count("a"), 1u);
  EXPECT_EQ(coll.CountPrefix("ab"), 3u);
  EXPECT_EQ(coll.CountPrefix("a"), 4u);
  EXPECT_EQ(coll.SelectPrefix("ab", 2), std::optional<size_t>(2));
}

}  // namespace
}  // namespace wt
