// Tests for the unified public API facade (src/api/sequence.hpp):
//   * differential tests of Sequence<P> against the naive oracle for every
//     policy, over a mixed Zipf/uniform workload;
//   * lifecycle round trips: Thaw(Freeze(s)) and Load(Save(s)) are
//     query-identical (and, through the canonical static image,
//     byte-identical on re-save);
//   * corrupt / truncated / mismatched input is a recoverable error at the
//     API boundary — never an abort;
//   * cursors enumerate exactly what the core visitor callbacks produce.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "api/sequence.hpp"
#include "core/naive.hpp"
#include "util/workloads.hpp"

namespace wt {
namespace {

// Mixed workload: Zipf-skewed URLs (long shared prefixes, heavy head) plus
// uniform random tokens (flat tail, little sharing).
std::vector<std::string> MixedWorkload(size_t n, uint64_t seed) {
  UrlLogOptions opt;
  opt.num_domains = 24;
  opt.paths_per_domain = 12;
  opt.seed = seed;
  UrlLogGenerator gen(opt);
  std::mt19937_64 rng(seed ^ 0x9E3779B97F4A7C15ull);
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng() % 3 == 0) {
      std::string t = "tok";
      for (int j = 0; j < 6; ++j) t.push_back('a' + rng() % 26);
      out.push_back(std::move(t));
    } else {
      out.push_back(gen.Next());
    }
  }
  return out;
}

NaiveIndexedSequence NaiveOf(const std::vector<std::string>& values) {
  std::vector<BitString> enc;
  enc.reserve(values.size());
  for (const auto& v : values) enc.push_back(ByteCodec::Encode(v));
  return NaiveIndexedSequence(std::move(enc));
}

// Probes: values drawn from the sequence plus strings certain to be absent.
std::vector<std::string> Probes(const std::vector<std::string>& values,
                                std::mt19937_64& rng, size_t count) {
  std::vector<std::string> probes;
  for (size_t i = 0; i < count; ++i) {
    probes.push_back(i % 4 == 3 ? "absent/value" + std::to_string(i)
                                : values[rng() % values.size()]);
  }
  return probes;
}

template <typename Seq>
void CheckAgainstNaive(const Seq& seq, const NaiveIndexedSequence& naive,
                       const std::vector<std::string>& values, uint64_t seed) {
  ASSERT_EQ(seq.size(), naive.size());
  std::mt19937_64 rng(seed);
  const auto probes = Probes(values, rng, 60);

  for (const auto& probe : probes) {
    const BitString enc = ByteCodec::Encode(probe);
    const size_t pos = rng() % (naive.size() + 1);
    ASSERT_EQ(seq.Rank(probe, pos).value(), naive.Rank(enc, pos));
    const size_t idx = rng() % 8;
    const auto sel = seq.Select(probe, idx);
    const auto nsel = naive.Select(enc, idx);
    ASSERT_EQ(sel.ok(), nsel.has_value());
    if (sel.ok()) ASSERT_EQ(sel.value(), *nsel);

    // Prefix variants: byte prefixes of the probe.
    const std::string prefix = probe.substr(0, rng() % (probe.size() + 1));
    const BitString penc = ByteCodec::EncodePrefix(prefix);
    ASSERT_EQ(seq.RankPrefix(prefix, pos).value(), naive.RankPrefix(penc, pos));
    const auto psel = seq.SelectPrefix(prefix, idx);
    const auto npsel = naive.SelectPrefix(penc, idx);
    ASSERT_EQ(psel.ok(), npsel.has_value());
    if (psel.ok()) ASSERT_EQ(psel.value(), *npsel);
  }

  for (int q = 0; q < 40; ++q) {
    const size_t pos = rng() % naive.size();
    ASSERT_EQ(seq.Access(pos).value(),
              ByteCodec::Decode(naive.Access(pos).Span()));
  }

  // Range analytics on random windows.
  for (int q = 0; q < 12; ++q) {
    size_t l = rng() % (naive.size() + 1);
    size_t r = rng() % (naive.size() + 1);
    if (l > r) std::swap(l, r);

    std::map<std::string, size_t> got;
    auto cur = seq.Distinct(l, r).value();
    while (cur.Next()) got[cur.value()] = cur.count();
    std::map<std::string, size_t> want;
    for (const auto& [s, c] : naive.DistinctInRange(l, r)) {
      want[ByteCodec::Decode(s.Span())] = c;
    }
    ASSERT_EQ(got, want);

    const auto m = seq.Majority(l, r);
    const auto nm = naive.RangeMajority(l, r);
    ASSERT_EQ(m.ok(), nm.has_value());
    if (m.ok()) {
      ASSERT_EQ(m->first, ByteCodec::Decode(nm->first.Span()));
      ASSERT_EQ(m->second, nm->second);
    }

    if (r > l) {
      const size_t t = 1 + rng() % 8;
      std::map<std::string, size_t> fgot;
      auto fcur = seq.Frequent(l, r, t).value();
      while (fcur.Next()) fgot[fcur.value()] = fcur.count();
      std::map<std::string, size_t> fwant;
      for (const auto& [s, c] : naive.RangeFrequent(l, r, t)) {
        fwant[ByteCodec::Decode(s.Span())] = c;
      }
      ASSERT_EQ(fgot, fwant);
    }
  }
}

template <typename Policy>
class ApiSequenceTest : public ::testing::Test {};

using Policies = ::testing::Types<wtrie::Static, wtrie::AppendOnly,
                                  wtrie::Dynamic>;
TYPED_TEST_SUITE(ApiSequenceTest, Policies);

TYPED_TEST(ApiSequenceTest, DifferentialVsNaive) {
  const auto values = MixedWorkload(4000, 11);
  const wtrie::Sequence<TypeParam> seq(values);
  CheckAgainstNaive(seq, NaiveOf(values), values, 21);
}

TYPED_TEST(ApiSequenceTest, SaveLoadRoundTripIsQueryIdentical) {
  const auto values = MixedWorkload(3000, 12);
  const wtrie::Sequence<TypeParam> seq(values);
  std::stringstream file;
  ASSERT_TRUE(seq.Save(file).ok());
  auto loaded = wtrie::Sequence<TypeParam>::Load(file);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), seq.size());
  ASSERT_EQ(loaded->NumDistinct(), seq.NumDistinct());
  // The capacity budget must survive the round trip for every policy:
  // downstream accounting (the engine's compaction guard) trusts it.
  ASSERT_EQ(loaded->EncodedBits(), seq.EncodedBits());
  ASSERT_GT(loaded->EncodedBits(), 0u);
  CheckAgainstNaive(*loaded, NaiveOf(values), values, 22);
  // The canonical static image makes re-save byte-identical.
  std::stringstream again;
  ASSERT_TRUE(loaded->Save(again).ok());
  std::stringstream orig;
  ASSERT_TRUE(seq.Save(orig).ok());
  ASSERT_EQ(again.str(), orig.str());
}

TYPED_TEST(ApiSequenceTest, ScanCursorMatchesCoreVisitor) {
  const auto values = MixedWorkload(3000, 13);
  const wtrie::Sequence<TypeParam> seq(values);
  std::mt19937_64 rng(23);
  for (int q = 0; q < 8; ++q) {
    size_t l = rng() % (values.size() + 1);
    size_t r = rng() % (values.size() + 1);
    if (l > r) std::swap(l, r);
    std::vector<std::pair<size_t, std::string>> want;
    seq.trie().ForEachInRange(l, r, [&](size_t i, const BitString& s) {
      want.emplace_back(i, ByteCodec::Decode(s.Span()));
    });
    std::vector<std::pair<size_t, std::string>> got;
    auto cur = seq.Scan(l, r).value();
    ASSERT_EQ(cur.remaining(), r - l);
    while (cur.Next()) got.emplace_back(cur.position(), cur.value());
    ASSERT_EQ(got, want);
    ASSERT_EQ(cur.remaining(), 0u);
    // And against ground truth: the scan must be the input slice itself.
    for (const auto& [i, v] : got) ASSERT_EQ(v, values[i]);
  }
}

TYPED_TEST(ApiSequenceTest, BoundsAreErrorsNotAborts) {
  const auto values = MixedWorkload(100, 14);
  const wtrie::Sequence<TypeParam> seq(values);
  EXPECT_EQ(seq.Access(seq.size()).code(), wtrie::ErrorCode::kOutOfRange);
  EXPECT_EQ(seq.Rank("x", seq.size() + 1).code(),
            wtrie::ErrorCode::kOutOfRange);
  EXPECT_EQ(seq.Select("definitely-absent", 0).code(),
            wtrie::ErrorCode::kNotFound);
  EXPECT_EQ(seq.Scan(5, 2).code(), wtrie::ErrorCode::kInvalidArgument);
  EXPECT_EQ(seq.Scan(0, seq.size() + 1).code(),
            wtrie::ErrorCode::kOutOfRange);
  EXPECT_EQ(seq.Distinct(0, seq.size() + 1).code(),
            wtrie::ErrorCode::kOutOfRange);
  EXPECT_EQ(seq.Frequent(0, seq.size(), 0).code(),
            wtrie::ErrorCode::kInvalidArgument);
  EXPECT_EQ(seq.Majority(3, 1).code(), wtrie::ErrorCode::kInvalidArgument);
}

TEST(ApiLifecycle, ThawFreezeIsIdentity) {
  const auto values = MixedWorkload(3000, 15);
  const wtrie::Sequence<wtrie::Static> s(values);
  std::stringstream s_bytes;
  ASSERT_TRUE(s.Save(s_bytes).ok());

  // Static -> AppendOnly -> Static and Static -> Dynamic -> Static both
  // reproduce the exact canonical image (structure-identical), and the
  // thawed sequences answer queries identically (query-identical).
  {
    auto thawed = s.Thaw<wtrie::AppendOnly>();
    CheckAgainstNaive(thawed, NaiveOf(values), values, 31);
    std::stringstream back;
    ASSERT_TRUE(thawed.Freeze().Save(back).ok());
    ASSERT_EQ(back.str(), s_bytes.str());
  }
  {
    auto thawed = s.Thaw<wtrie::Dynamic>();
    CheckAgainstNaive(thawed, NaiveOf(values), values, 32);
    std::stringstream back;
    ASSERT_TRUE(thawed.Freeze().Save(back).ok());
    ASSERT_EQ(back.str(), s_bytes.str());
  }
}

TEST(ApiLifecycle, ThawedSequenceAcceptsUpdates) {
  const auto values = MixedWorkload(500, 16);
  const wtrie::Sequence<wtrie::Static> s(values);
  auto dyn = s.Thaw<wtrie::Dynamic>();
  NaiveIndexedSequence naive = NaiveOf(values);

  std::mt19937_64 rng(33);
  auto mixed = MixedWorkload(200, 17);
  for (const auto& v : mixed) {
    if (rng() % 3 == 0 && dyn.size() > 0) {
      const size_t pos = rng() % dyn.size();
      ASSERT_TRUE(dyn.Delete(pos).ok());
      naive.Delete(pos);
    } else {
      const size_t pos = rng() % (dyn.size() + 1);
      ASSERT_TRUE(dyn.Insert(v, pos).ok());
      naive.Insert(pos, ByteCodec::Encode(v));
    }
  }
  ASSERT_EQ(dyn.size(), naive.size());
  for (size_t i = 0; i < dyn.size(); i += 7) {
    ASSERT_EQ(dyn.Access(i).value(), ByteCodec::Decode(naive.Access(i).Span()));
  }
}

TEST(ApiLifecycle, FreezeShrinksAndPreservesQueries) {
  const auto values = MixedWorkload(2000, 18);
  wtrie::Sequence<wtrie::AppendOnly> stream;
  for (const auto& v : values) ASSERT_TRUE(stream.Append(v).ok());
  const auto frozen = stream.Freeze();
  EXPECT_LE(frozen.SizeInBits(), stream.SizeInBits());
  CheckAgainstNaive(frozen, NaiveOf(values), values, 41);
}

TEST(ApiPersistence, CrossPolicyLoad) {
  // The payload is the canonical static image: a file written under one
  // policy loads under any other.
  const auto values = MixedWorkload(1000, 19);
  wtrie::Sequence<wtrie::AppendOnly> stream;
  ASSERT_TRUE(stream.AppendBatch(values).ok());
  std::stringstream file;
  ASSERT_TRUE(stream.Save(file).ok());

  auto as_static = wtrie::Sequence<wtrie::Static>::Load(file);
  ASSERT_TRUE(as_static.ok());
  file.clear();
  file.seekg(0);
  auto as_dynamic = wtrie::Sequence<wtrie::Dynamic>::Load(file);
  ASSERT_TRUE(as_dynamic.ok());
  for (size_t i = 0; i < values.size(); i += 13) {
    ASSERT_EQ(as_static->Access(i).value(), values[i]);
    ASSERT_EQ(as_dynamic->Access(i).value(), values[i]);
  }
}

TEST(ApiPersistence, IntCodecStateSurvivesRoundTrip) {
  std::vector<uint64_t> vals;
  for (uint64_t v : GenerateIntegers(2000, 64, IntDistribution::kZipf, 3)) {
    vals.push_back(v & 0xFFFFFFFFu);
  }
  const wtrie::Sequence<wtrie::Static, FixedIntCodec> fixed(vals,
                                                            FixedIntCodec(32));
  std::stringstream f1;
  ASSERT_TRUE(fixed.Save(f1).ok());
  auto fixed2 = wtrie::Sequence<wtrie::Static, FixedIntCodec>::Load(f1);
  ASSERT_TRUE(fixed2.ok());
  ASSERT_EQ(fixed2->codec().width(), 32u);

  const wtrie::Sequence<wtrie::Dynamic, HashedIntCodec> hashed(
      vals, HashedIntCodec(64, 77));
  std::stringstream f2;
  ASSERT_TRUE(hashed.Save(f2).ok());
  auto hashed2 = wtrie::Sequence<wtrie::Dynamic, HashedIntCodec>::Load(f2);
  ASSERT_TRUE(hashed2.ok());
  ASSERT_EQ(hashed2->codec().multiplier(), hashed.codec().multiplier());
  for (size_t i = 0; i < vals.size(); i += 17) {
    ASSERT_EQ(fixed2->Access(i).value(), vals[i]);
    ASSERT_EQ(hashed2->Access(i).value(), vals[i]);
  }
}

TEST(ApiPersistence, EmptySequenceRoundTrip) {
  const wtrie::Sequence<wtrie::Static> empty;
  std::stringstream file;
  ASSERT_TRUE(empty.Save(file).ok());
  auto loaded = wtrie::Sequence<wtrie::Dynamic>::Load(file);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_EQ(loaded->Rank("anything", 0).value(), 0u);
}

TEST(ApiPersistence, CorruptInputIsAnErrorNotAnAbort) {
  const auto values = MixedWorkload(500, 20);
  const wtrie::Sequence<wtrie::Static> seq(values);
  std::stringstream file;
  ASSERT_TRUE(seq.Save(file).ok());
  const std::string bytes = file.str();

  {  // wrong magic
    std::stringstream bad("this is not a sequence stream at all............");
    auto r = wtrie::Sequence<wtrie::Static>::Load(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), wtrie::ErrorCode::kCorruptStream);
  }
  {  // truncation at every layer: header, length field, payload
    for (const size_t cut : {size_t(3), size_t(13), bytes.size() / 2,
                             bytes.size() - 1}) {
      std::stringstream bad(bytes.substr(0, cut));
      auto r = wtrie::Sequence<wtrie::Static>::Load(bad);
      ASSERT_FALSE(r.ok()) << "cut at " << cut;
      EXPECT_EQ(r.code(), wtrie::ErrorCode::kTruncatedStream);
    }
  }
  {  // lying payload-length field (not covered by the checksum): the huge
     // claimed size must surface as truncation, not as a giant allocation
    const std::string header = bytes.substr(0, 16);  // magic + version + tag
    std::stringstream forged;
    forged.write(header.data(), static_cast<std::streamsize>(header.size()));
    WritePod<uint64_t>(forged, uint64_t(1) << 60);  // payload length
    WritePod<uint64_t>(forged, 0);                  // checksum
    forged << "only a few real bytes";
    auto r = wtrie::Sequence<wtrie::Static>::Load(forged);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), wtrie::ErrorCode::kTruncatedStream);
  }
  {  // bit flip inside the payload: caught by the checksum
    std::string flipped = bytes;
    flipped[flipped.size() / 2] ^= 0x40;
    std::stringstream bad(flipped);
    auto r = wtrie::Sequence<wtrie::Static>::Load(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), wtrie::ErrorCode::kCorruptStream);
  }
  {  // future format version
    std::string newer = bytes;
    newer[8] = 0x7F;  // version field follows the u64 magic
    std::stringstream bad(newer);
    auto r = wtrie::Sequence<wtrie::Static>::Load(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), wtrie::ErrorCode::kVersionMismatch);
  }
  {  // codec mismatch: saved with ByteCodec, loaded as FixedIntCodec
    std::stringstream bad(bytes);
    auto r = wtrie::Sequence<wtrie::Static, FixedIntCodec>::Load(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), wtrie::ErrorCode::kInvalidArgument);
  }
  // The original stream still loads fine after all that.
  std::stringstream good(bytes);
  ASSERT_TRUE(wtrie::Sequence<wtrie::Static>::Load(good).ok());
}

TEST(ApiCursor, DistinctCursorMatchesCallbacksAndHandlesEmptyRange) {
  const auto values = MixedWorkload(1500, 24);
  const wtrie::Sequence<wtrie::AppendOnly> seq(values);

  std::vector<std::pair<std::string, size_t>> want;
  seq.trie().DistinctInRange(100, 900, [&](const BitString& s, size_t c) {
    want.emplace_back(ByteCodec::Decode(s.Span()), c);
  });
  std::vector<std::pair<std::string, size_t>> got;
  auto cur = seq.Distinct(100, 900).value();
  ASSERT_EQ(cur.size(), want.size());
  while (cur.Next()) got.emplace_back(cur.value(), cur.count());
  ASSERT_EQ(got, want);  // same entries, same (lexicographic) order

  auto empty = seq.Distinct(500, 500).value();
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_FALSE(empty.Next());
  auto empty_scan = seq.Scan(500, 500).value();
  EXPECT_FALSE(empty_scan.Next());

  // Prefix-restricted distinct, against the core visitor.
  std::map<std::string, size_t> pwant;
  const BitString p = ByteCodec::EncodePrefix("www.site1");
  seq.trie().DistinctInRangeWithPrefix(p.Span(), 100, 900,
                                       [&](const BitString& s, size_t c) {
                                         pwant[ByteCodec::Decode(s.Span())] = c;
                                       });
  std::map<std::string, size_t> pgot;
  auto pcur = seq.DistinctWithPrefix("www.site1", 100, 900).value();
  while (pcur.Next()) pgot[pcur.value()] = pcur.count();
  ASSERT_EQ(pgot, pwant);
}

}  // namespace
}  // namespace wt
