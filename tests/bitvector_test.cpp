// Tests for the static bitvectors: plain BitVector, RRR, Elias--Fano.
//
// Strategy: randomized cross-checks against a trivially-correct reference
// (prefix-sum arrays), parameterized over bit densities so both dense and
// sparse regimes are exercised, plus adversarial edge cases (empty, all-zero,
// all-one, block/superblock boundaries).
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "bitvector/bit_vector.hpp"
#include "bitvector/elias_fano.hpp"
#include "bitvector/rrr.hpp"
#include "common/bit_array.hpp"

namespace wt {
namespace {

// Reference rank/select built with prefix sums.
class RefBits {
 public:
  explicit RefBits(const std::vector<bool>& bits) : bits_(bits) {
    rank_.resize(bits.size() + 1, 0);
    for (size_t i = 0; i < bits.size(); ++i) {
      rank_[i + 1] = rank_[i] + (bits[i] ? 1 : 0);
      if (bits[i])
        ones_.push_back(i);
      else
        zeros_.push_back(i);
    }
  }
  size_t Rank1(size_t pos) const { return rank_[pos]; }
  size_t Rank0(size_t pos) const { return pos - rank_[pos]; }
  size_t NumOnes() const { return ones_.size(); }
  size_t NumZeros() const { return zeros_.size(); }
  size_t Select1(size_t k) const { return ones_[k]; }
  size_t Select0(size_t k) const { return zeros_[k]; }
  bool Get(size_t i) const { return bits_[i]; }
  size_t size() const { return bits_.size(); }

 private:
  std::vector<bool> bits_;
  std::vector<size_t> rank_;
  std::vector<size_t> ones_, zeros_;
};

std::vector<bool> RandomBits(size_t n, double density, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution coin(density);
  std::vector<bool> bits(n);
  for (size_t i = 0; i < n; ++i) bits[i] = coin(rng);
  return bits;
}

BitArray ToBitArray(const std::vector<bool>& bits) {
  BitArray a;
  for (bool b : bits) a.PushBack(b);
  return a;
}

template <typename BV>
void CheckAgainstReference(const BV& bv, const RefBits& ref) {
  ASSERT_EQ(bv.size(), ref.size());
  ASSERT_EQ(bv.num_ones(), ref.NumOnes());
  std::mt19937_64 rng(1234);
  // All positions for small inputs, random sample for large ones.
  const size_t n = ref.size();
  const size_t checks = std::min<size_t>(n + 1, 4000);
  for (size_t c = 0; c < checks; ++c) {
    const size_t pos = (n + 1 <= 4000) ? c : rng() % (n + 1);
    ASSERT_EQ(bv.Rank1(pos), ref.Rank1(pos)) << "pos=" << pos;
    ASSERT_EQ(bv.Rank0(pos), ref.Rank0(pos)) << "pos=" << pos;
    if (pos < n) {
      ASSERT_EQ(bv.Get(pos), ref.Get(pos)) << "pos=" << pos;
    }
  }
  const size_t sel_checks = 2000;
  for (size_t c = 0; c < sel_checks && ref.NumOnes() > 0; ++c) {
    const size_t k = (ref.NumOnes() <= sel_checks) ? c % ref.NumOnes()
                                                   : rng() % ref.NumOnes();
    ASSERT_EQ(bv.Select1(k), ref.Select1(k)) << "k=" << k;
  }
  for (size_t c = 0; c < sel_checks && ref.NumZeros() > 0; ++c) {
    const size_t k = (ref.NumZeros() <= sel_checks) ? c % ref.NumZeros()
                                                    : rng() % ref.NumZeros();
    ASSERT_EQ(bv.Select0(k), ref.Select0(k)) << "k=" << k;
  }
}

// ------------------------------------------------------- parameterized sweep

struct Density {
  double p;
};

class BitVectorDensityTest : public ::testing::TestWithParam<Density> {};

TEST_P(BitVectorDensityTest, PlainMatchesReference) {
  for (size_t n : {1u, 63u, 64u, 65u, 511u, 512u, 513u, 100000u}) {
    auto bits = RandomBits(n, GetParam().p, 17 * n + 1);
    RefBits ref(bits);
    BitVector bv(ToBitArray(bits));
    CheckAgainstReference(bv, ref);
  }
}

TEST_P(BitVectorDensityTest, RrrMatchesReference) {
  for (size_t n : {1u, 62u, 63u, 64u, 2015u, 2016u, 2017u, 100000u}) {
    auto bits = RandomBits(n, GetParam().p, 31 * n + 7);
    RefBits ref(bits);
    Rrr rrr(ToBitArray(bits));
    CheckAgainstReference(rrr, ref);
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, BitVectorDensityTest,
                         ::testing::Values(Density{0.001}, Density{0.01},
                                           Density{0.1}, Density{0.5},
                                           Density{0.9}, Density{0.999}),
                         [](const auto& info) {
                           return "p" + std::to_string(
                                            int(info.param.p * 1000));
                         });

// ------------------------------------------------------------- edge cases

TEST(BitVectorEdge, Empty) {
  BitVector bv{BitArray{}};
  EXPECT_EQ(bv.size(), 0u);
  EXPECT_EQ(bv.Rank1(0), 0u);
  Rrr rrr{BitArray{}};
  EXPECT_EQ(rrr.size(), 0u);
  EXPECT_EQ(rrr.Rank1(0), 0u);
}

TEST(BitVectorEdge, AllZeros) {
  BitArray a(10000, false);
  BitVector bv(a);
  Rrr rrr(a);
  EXPECT_EQ(bv.Rank1(10000), 0u);
  EXPECT_EQ(rrr.Rank1(10000), 0u);
  EXPECT_EQ(bv.Select0(9999), 9999u);
  EXPECT_EQ(rrr.Select0(9999), 9999u);
  EXPECT_EQ(bv.num_ones(), 0u);
  EXPECT_EQ(rrr.num_ones(), 0u);
}

TEST(BitVectorEdge, AllOnes) {
  BitArray a(10000, true);
  BitVector bv(a);
  Rrr rrr(a);
  EXPECT_EQ(bv.Rank1(10000), 10000u);
  EXPECT_EQ(rrr.Rank1(10000), 10000u);
  EXPECT_EQ(bv.Select1(9999), 9999u);
  EXPECT_EQ(rrr.Select1(9999), 9999u);
}

TEST(BitVectorEdge, SingleBit) {
  for (bool b : {false, true}) {
    BitArray a;
    a.PushBack(b);
    BitVector bv(a);
    EXPECT_EQ(bv.Rank1(1), b ? 1u : 0u);
    EXPECT_EQ(bv.Select(b, 0), 0u);
    Rrr rrr(a);
    EXPECT_EQ(rrr.Rank1(1), b ? 1u : 0u);
    EXPECT_EQ(rrr.Select(b, 0), 0u);
  }
}

TEST(BitVectorEdge, RankSelectInverse) {
  auto bits = RandomBits(50000, 0.3, 555);
  Rrr rrr(ToBitArray(bits));
  BitVector bv(ToBitArray(bits));
  for (size_t k = 0; k < rrr.num_ones(); k += 97) {
    ASSERT_EQ(rrr.Rank1(rrr.Select1(k)), k);
    ASSERT_EQ(bv.Rank1(bv.Select1(k)), k);
    ASSERT_TRUE(rrr.Get(rrr.Select1(k)));
  }
}

TEST(BitVectorEdge, SparseVeryLong) {
  // Ones only every ~20000 positions: stresses select sampling windows.
  std::vector<bool> bits(1 << 20, false);
  std::mt19937_64 rng(77);
  for (size_t i = 0; i < bits.size(); i += 15000 + rng() % 10000) bits[i] = true;
  RefBits ref(bits);
  BitVector bv(ToBitArray(bits));
  Rrr rrr(ToBitArray(bits));
  for (size_t k = 0; k < ref.NumOnes(); ++k) {
    ASSERT_EQ(bv.Select1(k), ref.Select1(k));
    ASSERT_EQ(rrr.Select1(k), ref.Select1(k));
  }
  for (size_t pos = 0; pos <= bits.size(); pos += 9973) {
    ASSERT_EQ(bv.Rank1(pos), ref.Rank1(pos));
    ASSERT_EQ(rrr.Rank1(pos), ref.Rank1(pos));
  }
}

TEST(Rrr, CompressionBeatsPlainOnSkewedInput) {
  // 1% density: RRR must be far below the plain bitvector's n bits.
  auto bits = RandomBits(1 << 20, 0.01, 9);
  Rrr rrr(ToBitArray(bits));
  BitVector bv(ToBitArray(bits));
  EXPECT_LT(rrr.SizeInBits(), bv.SizeInBits() / 4);
}

TEST(Rrr, IteratorMatchesGet) {
  for (double p : {0.05, 0.5, 0.95}) {
    auto bits = RandomBits(20000, p, 21);
    Rrr rrr(ToBitArray(bits));
    for (size_t start : {size_t(0), size_t(1), size_t(63), size_t(64),
                         size_t(1000), size_t(19999)}) {
      Rrr::Iterator it(&rrr, start);
      for (size_t i = start; i < bits.size(); ++i) {
        ASSERT_EQ(it.Next(), bits[i]) << "i=" << i << " start=" << start;
      }
    }
  }
}

// ------------------------------------------------------------- Elias--Fano

TEST(EliasFano, Empty) {
  EliasFano ef({}, 0);
  EXPECT_EQ(ef.size(), 0u);
}

TEST(EliasFano, SmallKnown) {
  EliasFano ef({2, 3, 5, 7, 11, 13, 24}, 24);
  EXPECT_EQ(ef.size(), 7u);
  const uint64_t expect[] = {2, 3, 5, 7, 11, 13, 24};
  for (size_t i = 0; i < 7; ++i) EXPECT_EQ(ef.Access(i), expect[i]);
}

TEST(EliasFano, WithDuplicatesAndZeros) {
  EliasFano ef({0, 0, 0, 4, 4, 9, 9, 9}, 9);
  const uint64_t expect[] = {0, 0, 0, 4, 4, 9, 9, 9};
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(ef.Access(i), expect[i]);
}

TEST(EliasFano, AllZeroUniverse) {
  EliasFano ef({0, 0, 0}, 0);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(ef.Access(i), 0u);
}

TEST(EliasFano, RandomMonotone) {
  std::mt19937_64 rng(31337);
  for (int iter = 0; iter < 20; ++iter) {
    const size_t n = 1 + rng() % 5000;
    std::vector<uint64_t> vals(n);
    uint64_t cur = 0;
    for (size_t i = 0; i < n; ++i) {
      cur += rng() % 1000;  // duplicates allowed
      vals[i] = cur;
    }
    EliasFano ef(vals, vals.back());
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(ef.Access(i), vals[i]);
  }
}

TEST(EliasFano, SegmentHelpers) {
  // Cumulative segment lengths 3, 0, 5 -> ends 3, 3, 8.
  EliasFano ef({3, 3, 8}, 8);
  EXPECT_EQ(ef.SegmentStart(0), 0u);
  EXPECT_EQ(ef.SegmentEnd(0), 3u);
  EXPECT_EQ(ef.SegmentStart(1), 3u);
  EXPECT_EQ(ef.SegmentEnd(1), 3u);
  EXPECT_EQ(ef.SegmentStart(2), 3u);
  EXPECT_EQ(ef.SegmentEnd(2), 8u);
}

TEST(EliasFano, SpaceIsNearOptimalForSparse) {
  // 1000 values in a 2^30 universe: ~ 2 + log2(u/n) = 22 bits per value.
  std::vector<uint64_t> vals;
  std::mt19937_64 rng(5);
  uint64_t cur = 0;
  for (int i = 0; i < 1000; ++i) {
    cur += rng() % (1 << 20);
    vals.push_back(cur);
  }
  EliasFano ef(vals, vals.back());
  EXPECT_LT(ef.SizeInBits(), 1000 * 40u);  // generous: well under 64n
}

}  // namespace
}  // namespace wt
