// Crash-safety of the serving daemon (DESIGN.md #11): SIGKILL the real
// example_serving_daemon process mid-ingest and prove that every append
// the server ACKNOWLEDGED over the wire survives reopening the store —
// the wire ack inherits the WAL's crash-atomic batch guarantee.
//
// This is an end-to-end test of the real binary (fork/exec, --port-file
// handshake), not an in-process simulation: the kill arrives at a random
// moment relative to socket writes, WAL appends, and background freezes.
// It needs the daemon binary; CI exports WT_DAEMON_BIN. Without it the
// test SKIPs (tier-1 stays hermetic). WT_INSPECT_BIN additionally runs
// the offline wt_inspect --fsck audit over the survivor directory.
#include <gtest/gtest.h>

#if !defined(__linux__)
TEST(ServingCrashTest, RequiresLinux) { GTEST_SKIP() << "epoll server"; }
#else

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "net/client.hpp"

namespace fs = std::filesystem;

namespace {

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& name) {
    path = fs::temp_directory_path() /
           ("wt_serving_crash_" + name + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

/// Spawns the daemon, waits for the port file, returns (pid, port).
std::pair<pid_t, uint16_t> SpawnDaemon(const std::string& bin,
                                       const fs::path& dir,
                                       const fs::path& port_file) {
  const std::string dir_flag = "--dir=" + dir.string();
  const std::string port_flag = "--port-file=" + port_file.string();
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Child: exec the daemon on an ephemeral port, WAL-synced so an ack
    // means bytes reached the disk, not just the page cache.
    ::execl(bin.c_str(), bin.c_str(), dir_flag.c_str(), "--port=0",
            port_flag.c_str(), "--sync-wal", "--memtable-limit=512",
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  // Parent: the daemon publishes its port via tmp+rename, so a readable
  // file is always a complete number.
  for (int spin = 0; spin < 20000; ++spin) {
    std::ifstream in(port_file);
    unsigned port = 0;
    if (in >> port && port != 0) return {pid, static_cast<uint16_t>(port)};
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return {pid, 0};
}

}  // namespace

TEST(ServingCrashTest, AckedAppendsSurviveSigkill) {
  const char* bin = std::getenv("WT_DAEMON_BIN");
  if (bin == nullptr) {
    GTEST_SKIP() << "set WT_DAEMON_BIN to the example_serving_daemon binary";
  }
  TempDir dir("acked");
  const fs::path store = dir.path / "store";
  const fs::path port_file = dir.path / "port";
  auto [pid, port] = SpawnDaemon(bin, store, port_file);
  ASSERT_GT(pid, 0);
  ASSERT_NE(port, 0) << "daemon never published its port";

  // Concurrent writers streaming appends; each records the values whose
  // acks it RECEIVED. The SIGKILL lands while all of them are mid-flight.
  constexpr int kWriters = 3;
  std::vector<std::vector<std::string>> acked(kWriters);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w, port = port] {
      auto client = wt::net::Client::Connect(port);
      if (!client.ok()) return;
      for (uint64_t i = 0;; ++i) {
        std::vector<std::string> vals;
        for (int j = 0; j < 4; ++j) {
          vals.push_back("writer" + std::to_string(w) + "/batch" +
                         std::to_string(i) + "/v" + std::to_string(j));
        }
        auto resp = client->Call(wt::net::MsgType::kAppend, i, 0,
                                 wt::net::Client::StringsPayload(vals));
        if (!resp.ok()) return;  // daemon died mid-call: batch not acked
        wt::net::WireStatus st;
        wt::net::PayloadReader r(nullptr, 0);
        if (!wt::net::Client::DecodeStatus(*resp, &st, &r) ||
            st != wt::net::WireStatus::kOk) {
          return;
        }
        for (std::string& v : vals) acked[w].push_back(std::move(v));
      }
    });
  }

  // Let ingest run, then kill without ceremony.
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  for (auto& t : writers) t.join();

  size_t total_acked = 0;
  for (const auto& a : acked) total_acked += a.size();
  ASSERT_GT(total_acked, 0u) << "no acks before the kill: test proved nothing";

  // Reopen the directory: WAL replay must restore every acknowledged
  // value (the ack was sent only after the crash-atomic WAL append).
  auto reopened = wtrie::Engine<wt::ByteCodec>::Open({.dir = store.string()});
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  // Snapshots cover the frozen prefix; freeze the replayed WAL tail first.
  ASSERT_TRUE((*reopened)->Flush().ok());
  auto snap = (*reopened)->GetSnapshot();
  for (int w = 0; w < kWriters; ++w) {
    for (const std::string& v : acked[w]) {
      auto rank = snap.Rank(v, snap.size());
      ASSERT_TRUE(rank.ok());
      EXPECT_EQ(*rank, 1u) << "acked value lost after SIGKILL: " << v;
    }
  }

  // Offline audit: the survivor directory must be internally consistent.
  if (const char* inspect = std::getenv("WT_INSPECT_BIN")) {
    const std::string cmd =
        std::string(inspect) + " --fsck " + store.string();
    EXPECT_EQ(std::system(cmd.c_str()), 0) << "wt_inspect --fsck failed";
  }
}

#endif  // __linux__
