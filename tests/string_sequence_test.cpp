// Tests for the StringSequence façade: the typed public API over the three
// Wavelet Trie variants and the codecs.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "core/string_sequence.hpp"

namespace wt {
namespace {

TEST(StringSequence, StaticBasics) {
  const std::vector<std::string> data = {"get /a", "get /b", "post /a",
                                         "get /a", "put /c"};
  StringSequence<WaveletTrie> seq(data);
  EXPECT_EQ(seq.size(), 5u);
  EXPECT_EQ(seq.NumDistinct(), 4u);
  for (size_t i = 0; i < data.size(); ++i) EXPECT_EQ(seq.Access(i), data[i]);
  EXPECT_EQ(seq.Rank("get /a", 5), 2u);
  EXPECT_EQ(seq.Select("get /a", 1), std::optional<size_t>(3));
  EXPECT_EQ(seq.Count("post /a"), 1u);
  EXPECT_EQ(seq.CountPrefix("get "), 3u);
  EXPECT_EQ(seq.SelectPrefix("get ", 2), std::optional<size_t>(3));
  EXPECT_EQ(seq.RangeCountPrefix("get ", 1, 4), 2u);
}

TEST(StringSequence, AppendOnlyStream) {
  StringSequence<AppendOnlyWaveletTrie> seq;
  std::mt19937_64 rng(1);
  std::vector<std::string> ref;
  const std::vector<std::string> words = {"alpha", "beta", "alphabet", "bet"};
  for (int i = 0; i < 500; ++i) {
    const auto& w = words[rng() % words.size()];
    seq.Append(w);
    ref.push_back(w);
  }
  ASSERT_EQ(seq.size(), ref.size());
  for (size_t i = 0; i < ref.size(); i += 7) ASSERT_EQ(seq.Access(i), ref[i]);
  // "alpha" is a string-prefix of "alphabet": the codec keeps the exact
  // Rank and the prefix Rank distinct.
  size_t exact = 0, with_prefix = 0;
  for (const auto& w : ref) {
    exact += (w == "alpha");
    with_prefix += (w.rfind("alpha", 0) == 0);
  }
  EXPECT_EQ(seq.Count("alpha"), exact);
  EXPECT_EQ(seq.CountPrefix("alpha"), with_prefix);
  EXPECT_GT(with_prefix, exact);
}

TEST(StringSequence, FullyDynamicUpdates) {
  StringSequence<DynamicWaveletTrie> seq;
  seq.Append("x");
  seq.Append("y");
  seq.Insert("brand-new", 1);
  EXPECT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq.Access(1), "brand-new");
  EXPECT_EQ(seq.NumDistinct(), 3u);
  seq.Delete(1);
  EXPECT_EQ(seq.NumDistinct(), 2u);
  EXPECT_EQ(seq.Access(1), "y");
}

TEST(StringSequence, RangeAnalytics) {
  std::vector<std::string> data;
  for (int i = 0; i < 100; ++i) data.push_back(i % 3 == 0 ? "dog" : "cat");
  StringSequence<WaveletTrie> seq(data);
  auto m = seq.RangeMajority(0, 100);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->first, "cat");
  EXPECT_EQ(m->second, 66u);
  std::vector<std::pair<std::string, size_t>> distinct;
  seq.DistinctInRange(0, 10, [&](const std::string& s, size_t c) {
    distinct.emplace_back(s, c);
  });
  ASSERT_EQ(distinct.size(), 2u);
  EXPECT_EQ(distinct[0].first, "cat");  // lexicographic under the codec
  EXPECT_EQ(distinct[0].second, 6u);
  EXPECT_EQ(distinct[1].second, 4u);
  size_t visited = 0;
  seq.ForEachInRange(50, 60, [&](size_t i, const std::string& s) {
    ASSERT_EQ(s, data[i]);
    ++visited;
  });
  EXPECT_EQ(visited, 10u);
  std::vector<std::string> frequent;
  seq.RangeFrequent(0, 100, 40, [&](const std::string& s, size_t) {
    frequent.push_back(s);
  });
  ASSERT_EQ(frequent.size(), 1u);
  EXPECT_EQ(frequent[0], "cat");
}

TEST(StringSequence, IntegerCodecStatic) {
  FixedIntCodec codec(16);
  std::vector<uint64_t> data = {7, 1, 7, 9, 7, 7, 500};
  StringSequence<WaveletTrie, FixedIntCodec> seq(data, codec);
  EXPECT_EQ(seq.size(), 7u);
  EXPECT_EQ(seq.Access(3), 9u);
  EXPECT_EQ(seq.Rank(7, 7), 4u);
  EXPECT_EQ(seq.Select(1, 0), std::optional<size_t>(1));
  auto m = seq.RangeMajority(0, 6);  // 7 occurs 4 of 6: strict majority
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->first, 7u);
  // Prefix methods do not exist for integer codecs (compile-time property).
  static_assert(!decltype(seq)::kHasPrefixCodec);
}

TEST(StringSequence, RawByteCodecVariant) {
  StringSequence<AppendOnlyWaveletTrie, RawByteCodec> seq;
  for (const char* s : {"aaa", "aab", "aaa", "b"}) seq.Append(std::string(s));
  EXPECT_EQ(seq.Count("aaa"), 2u);
  EXPECT_EQ(seq.CountPrefix("aa"), 3u);
  EXPECT_EQ(seq.Access(3), "b");
}

TEST(StringSequence, EmptyStringValue) {
  StringSequence<DynamicWaveletTrie> seq;
  seq.Append("");
  seq.Append("nonempty");
  seq.Append("");
  EXPECT_EQ(seq.Count(""), 2u);
  EXPECT_EQ(seq.Access(0), "");
  EXPECT_EQ(seq.Select("", 1), std::optional<size_t>(2));
  // The empty *prefix* matches everything.
  EXPECT_EQ(seq.CountPrefix(""), 3u);
}

TEST(StringSequence, LargeMixedWorkloadAgainstReference) {
  StringSequence<DynamicWaveletTrie> seq;
  std::vector<std::string> ref;
  std::mt19937_64 rng(9);
  const std::vector<std::string> words = {"a", "ab", "abc", "b", "ba", "z/q"};
  for (int step = 0; step < 2500; ++step) {
    if (ref.empty() || rng() % 3 != 0) {
      const auto& w = words[rng() % words.size()];
      const size_t pos = rng() % (ref.size() + 1);
      seq.Insert(w, pos);
      ref.insert(ref.begin() + static_cast<ptrdiff_t>(pos), w);
    } else {
      const size_t pos = rng() % ref.size();
      seq.Delete(pos);
      ref.erase(ref.begin() + static_cast<ptrdiff_t>(pos));
    }
  }
  ASSERT_EQ(seq.size(), ref.size());
  for (size_t i = 0; i < ref.size(); i += 3) ASSERT_EQ(seq.Access(i), ref[i]);
  for (const auto& w : words) {
    size_t count = 0;
    for (const auto& r : ref) count += (r == w);
    ASSERT_EQ(seq.Count(w), count);
  }
}

}  // namespace
}  // namespace wt
