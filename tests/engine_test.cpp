// Tests for the concurrent segmented engine (src/engine/, DESIGN.md #7):
//   * differential tests of Engine (several shard counts / memtable limits,
//     so freeze boundaries and compactions land mid-workload) against a
//     single Sequence<Static> oracle for Access/Rank/Select, their batch
//     forms, prefix operations, and the Section 5 analytics;
//   * snapshot semantics: consistent-prefix visibility, pinning across
//     concurrent freezes/compactions, ephemeral vs flushed reads;
//   * a multi-threaded stress test (one writer + N readers) asserting every
//     snapshot observes exactly a prefix of the append history;
//   * WAL crash recovery: reopen after an unflushed close replays the tail;
//     a torn final record and a missing batch slice (the two mid-batch
//     crash shapes) are discarded whole, complete batches survive;
//   * the capacity satellite: the RRR 2^32-1-bit cap surfaces as a clean
//     abort at the core boundary and as kCapacityExceeded Status on the
//     facade, with the boundary arithmetic unit-tested exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/sequence.hpp"
#include "engine/engine.hpp"
#include "util/workloads.hpp"

namespace wtrie {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> UrlWorkload(size_t n, uint64_t seed) {
  wt::UrlLogOptions opt;
  opt.num_domains = 24;
  opt.paths_per_domain = 12;
  opt.seed = seed;
  wt::UrlLogGenerator gen(opt);
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(gen.Next());
  return out;
}

/// A scratch directory removed on scope exit.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& name) {
    path = fs::temp_directory_path() / ("wtrie_engine_test_" + name + "_" +
                                        std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

using StrEngine = Engine<wt::ByteCodec>;
using StrSequence = Sequence<Static, wt::ByteCodec>;

/// Asserts one snapshot answers exactly like the oracle built from the
/// first snapshot.size() values.
void ExpectMatchesOracle(const StrEngine::SnapshotT& snap,
                         const std::vector<std::string>& values,
                         uint64_t seed) {
  const size_t n = snap.size();
  ASSERT_LE(n, values.size());
  const StrSequence oracle(
      std::vector<std::string>(values.begin(), values.begin() + n));
  std::mt19937_64 rng(seed);

  // Point queries + batch forms over a probe set.
  std::vector<uint64_t> access_pos;
  std::vector<std::string> probe_vals;
  std::vector<uint64_t> rank_pos, select_idx;
  for (size_t i = 0; i < 300 && n > 0; ++i) {
    access_pos.push_back(rng() % n);
    probe_vals.push_back(i % 5 == 4 ? "absent/" + std::to_string(i)
                                    : values[rng() % n]);
    rank_pos.push_back(rng() % (n + 1));
    select_idx.push_back(rng() % 40);
  }
  for (size_t i = 0; i < access_pos.size(); ++i) {
    EXPECT_EQ(snap.Access(access_pos[i]).value(),
              oracle.Access(access_pos[i]).value());
    EXPECT_EQ(snap.Rank(probe_vals[i], rank_pos[i]).value(),
              oracle.Rank(probe_vals[i], rank_pos[i]).value());
    const auto es = snap.Select(probe_vals[i], select_idx[i]);
    const auto os = oracle.Select(probe_vals[i], select_idx[i]);
    EXPECT_EQ(es.ok(), os.ok());
    if (es.ok()) EXPECT_EQ(es.value(), os.value());
    EXPECT_EQ(snap.Count(probe_vals[i]), oracle.Count(probe_vals[i]));
  }
  if (n > 0) {
    const auto ab = snap.AccessBatch(access_pos).value();
    const auto rb = snap.RankBatch(probe_vals, rank_pos).value();
    const auto sb = snap.SelectBatch(probe_vals, select_idx).value();
    for (size_t i = 0; i < access_pos.size(); ++i) {
      EXPECT_EQ(ab[i], oracle.Access(access_pos[i]).value());
      EXPECT_EQ(rb[i], oracle.Rank(probe_vals[i], rank_pos[i]).value());
      const auto os = oracle.Select(probe_vals[i], select_idx[i]);
      EXPECT_EQ(sb[i].has_value(), os.ok());
      if (os.ok()) EXPECT_EQ(*sb[i], os.value());
    }
  }

  // Prefix operations.
  for (const std::string& p : {std::string("www.domain0.example/"),
                               std::string("www."), std::string("zzz")}) {
    EXPECT_EQ(snap.CountPrefix(p), oracle.CountPrefix(p));
    const uint64_t mid = n / 2;
    EXPECT_EQ(snap.RankPrefix(p, mid).value(), oracle.RankPrefix(p, mid).value());
    const auto es = snap.SelectPrefix(p, 3);
    const auto os = oracle.SelectPrefix(p, 3);
    EXPECT_EQ(es.ok(), os.ok());
    if (es.ok()) EXPECT_EQ(es.value(), os.value());
  }

  // Section 5 analytics over a few ranges (entry order differs by design:
  // the snapshot merges per-segment results by decoded value — compare as
  // maps).
  for (int t = 0; t < 4 && n > 0; ++t) {
    uint64_t l = rng() % n, r = rng() % (n + 1);
    if (l > r) std::swap(l, r);
    std::map<std::string, size_t> got, want;
    auto gd = snap.Distinct(l, r).value();
    while (gd.Next()) got[gd.value()] = gd.count();
    auto wd = oracle.Distinct(l, r).value();
    while (wd.Next()) want[wd.value()] = wd.count();
    EXPECT_EQ(got, want) << "Distinct [" << l << ", " << r << ")";

    const auto gm = snap.Majority(l, r);
    const auto wm = oracle.Majority(l, r);
    EXPECT_EQ(gm.ok(), wm.ok());
    if (gm.ok()) {
      EXPECT_EQ(gm->first, wm->first);
      EXPECT_EQ(gm->second, wm->second);
    }

    const size_t threshold = std::max<size_t>(1, (r - l) / 8);
    got.clear();
    want.clear();
    auto gf = snap.Frequent(l, r, threshold).value();
    while (gf.Next()) got[gf.value()] = gf.count();
    auto wf = oracle.Frequent(l, r, threshold).value();
    while (wf.Next()) want[wf.value()] = wf.count();
    EXPECT_EQ(got, want) << "Frequent [" << l << ", " << r << ") t=" << threshold;

    const auto scan = snap.Scan(l, std::min<uint64_t>(r, l + 64)).value();
    for (size_t i = 0; i < scan.size(); ++i) {
      EXPECT_EQ(scan[i], values[l + i]);
    }
  }
}

// ------------------------------------------------------------ differential

TEST(EngineDifferential, MatchesSequenceOracleAcrossFreezeBoundaries) {
  const auto values = UrlWorkload(20000, 11);
  // Shard/limit combinations chosen so the workload crosses many freeze
  // boundaries and triggers tail compactions (limit 512: 39 freezes/shard).
  struct Config {
    size_t shards, limit;
  };
  for (const Config c : {Config{1, 4096}, Config{3, 512}, Config{4, 1024}}) {
    StrEngine::Options opt;
    opt.num_shards = c.shards;
    opt.memtable_limit = c.limit;
    auto eng = StrEngine::Open(opt).value();
    // Mixed batch sizes, including singletons.
    std::mt19937_64 rng(c.shards * 1000 + c.limit);
    size_t i = 0;
    while (i < values.size()) {
      const size_t k = 1 + rng() % 700;
      const size_t end = std::min(values.size(), i + k);
      ASSERT_TRUE(
          eng->AppendBatch({values.begin() + i, values.begin() + end}).ok());
      i = end;
    }
    EXPECT_EQ(eng->size(), values.size());
    // Before the flush the snapshot sees a consistent prefix only.
    const auto early = eng->GetSnapshot();
    EXPECT_LE(early.size(), values.size());
    ASSERT_TRUE(eng->Flush().ok());
    const auto snap = eng->GetSnapshot();
    EXPECT_EQ(snap.size(), values.size());
    ExpectMatchesOracle(snap, values, 997 * c.shards);
    ExpectMatchesOracle(early, values, 991 * c.shards);
    // Compaction to one segment per shard must not change any answer.
    ASSERT_TRUE(eng->Compact().ok());
    const auto compacted = eng->GetSnapshot();
    EXPECT_EQ(compacted.size(), values.size());
    EXPECT_LE(compacted.NumSegments(), c.shards);
    ExpectMatchesOracle(compacted, values, 983 * c.shards);
  }
}

TEST(EngineDifferential, FixedIntCodecEngine) {
  // A non-default, stateful codec exercises codec plumbing through WAL-less
  // ingest, freeze, and snapshot decode.
  Engine<wt::FixedIntCodec>::Options opt;
  opt.num_shards = 2;
  opt.memtable_limit = 256;
  auto eng = Engine<wt::FixedIntCodec>::Open(opt, wt::FixedIntCodec(24)).value();
  std::mt19937_64 rng(5);
  std::vector<uint64_t> values;
  for (size_t i = 0; i < 4000; ++i) values.push_back(rng() % 1000);
  ASSERT_TRUE(eng->AppendBatch(values).ok());
  ASSERT_TRUE(eng->Flush().ok());
  const auto snap = eng->GetSnapshot();
  ASSERT_EQ(snap.size(), values.size());
  const Sequence<Static, wt::FixedIntCodec> oracle(values, wt::FixedIntCodec(24));
  for (size_t i = 0; i < values.size(); i += 37) {
    EXPECT_EQ(snap.Access(i).value(), values[i]);
    EXPECT_EQ(snap.Rank(values[i], i).value(), oracle.Rank(values[i], i).value());
  }
}

// The observability seam (DESIGN.md #12): the caller-buffer Stats()
// overload matches the allocating shim (and resizes an over-sized reused
// buffer), the totals account for every appended string, and the registry
// gauges/counters the engine maintains are the same numbers — Stats() is
// a view, not a second ledger.
TEST(EngineObservability, StatsBufferReuseAndRegistryViews) {
  StrEngine::Options opt;
  opt.num_shards = 2;
  opt.memtable_limit = 256;
  auto eng = StrEngine::Open(opt).value();
  const auto values = UrlWorkload(1000, 13);
  ASSERT_TRUE(eng->AppendBatch(values).ok());
  // Quiesce first: strings riding the async freeze queue are transiently
  // in neither the memtable gauge nor a published view, so the totals
  // identity below only holds with no freeze in flight.
  ASSERT_TRUE(eng->Flush().ok());

  std::vector<StrEngine::ShardStats> buf(7);  // stale, over-sized: reused
  eng->Stats(&buf);
  ASSERT_EQ(buf.size(), 2u);
  const std::vector<StrEngine::ShardStats> alloc = eng->Stats();
  ASSERT_EQ(alloc.size(), buf.size());
  uint64_t mem = 0, frozen = 0;
  for (size_t s = 0; s < buf.size(); ++s) {
    EXPECT_EQ(buf[s].memtable_count, alloc[s].memtable_count);
    EXPECT_EQ(buf[s].frozen_count, alloc[s].frozen_count);
    EXPECT_EQ(buf[s].num_segments, alloc[s].num_segments);
    mem += buf[s].memtable_count;
    frozen += buf[s].frozen_count;
  }
  EXPECT_EQ(mem, 0u);  // flush froze every memtable
  EXPECT_EQ(frozen, values.size());

#if !defined(WT_OBS_OFF)
  eng->RefreshMetrics();
  const wt::obs::MetricsSnapshot snap = eng->metrics()->Snapshot();
  const int64_t* frozen_g = snap.FindGauge("wt_engine_frozen_strings");
  ASSERT_NE(frozen_g, nullptr);
  EXPECT_EQ(static_cast<uint64_t>(*frozen_g), values.size());
  const uint64_t* appends = snap.FindCounter("wt_engine_appends_total");
  ASSERT_NE(appends, nullptr);
  EXPECT_EQ(*appends, values.size());
  const uint64_t* freezes = snap.FindCounter("wt_engine_freezes_total");
  ASSERT_NE(freezes, nullptr);
  EXPECT_GE(*freezes, 1u);
  const wt::obs::HistogramSnapshot* fh =
      snap.FindHistogram("wt_engine_freeze_ms");
  ASSERT_NE(fh, nullptr);
  EXPECT_EQ(fh->count, *freezes);
#endif
}

// --------------------------------------------------------------- snapshots

TEST(EngineSnapshot, VisibleSizeIsConsistentPrefixAndPinned) {
  StrEngine::Options opt;
  opt.num_shards = 4;
  opt.memtable_limit = 100;
  auto eng = StrEngine::Open(opt).value();
  const auto values = UrlWorkload(5000, 3);
  ASSERT_TRUE(eng->AppendBatch(values).ok());
  ASSERT_TRUE(eng->Flush().ok());
  const auto pinned = eng->GetSnapshot();
  const uint64_t pinned_size = pinned.size();
  EXPECT_EQ(pinned_size, values.size());

  // More ingest + compaction must not disturb the pinned snapshot.
  ASSERT_TRUE(eng->AppendBatch(UrlWorkload(3000, 4)).ok());
  ASSERT_TRUE(eng->Flush().ok());
  ASSERT_TRUE(eng->Compact().ok());
  EXPECT_EQ(pinned.size(), pinned_size);
  ExpectMatchesOracle(pinned, values, 71);

  const auto later = eng->GetSnapshot();
  EXPECT_EQ(later.size(), 8000u);
}

TEST(EngineSnapshot, BoundsAndErrors) {
  StrEngine::Options opt;
  opt.num_shards = 2;
  auto eng = StrEngine::Open(opt).value();
  ASSERT_TRUE(eng->AppendBatch(UrlWorkload(100, 9)).ok());
  ASSERT_TRUE(eng->Flush().ok());
  const auto snap = eng->GetSnapshot();
  EXPECT_EQ(snap.Access(100).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(snap.Rank("x", 101).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(snap.Select("definitely-absent", 0).code(), ErrorCode::kNotFound);
  EXPECT_EQ(snap.Distinct(5, 3).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(snap.Frequent(0, 10, 0).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(snap.RankBatch({"a"}, {1, 2}).code(), ErrorCode::kInvalidArgument);
}

// ------------------------------------------------------------------ stress

TEST(EngineStress, WriterAndReadersSeeConsistentPrefixes) {
  StrEngine::Options opt;
  opt.num_shards = 3;
  opt.memtable_limit = 200;
  auto eng = StrEngine::Open(opt).value();
  const auto values = UrlWorkload(12000, 21);

  std::atomic<bool> done{false};
  std::atomic<size_t> snapshots_checked{0};
  auto reader = [&] {
    std::mt19937_64 rng(std::hash<std::thread::id>{}(std::this_thread::get_id()));
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = eng->GetSnapshot();
      const uint64_t n = snap.size();
      if (n == 0) continue;
      // Spot-check: every visible position holds exactly the appended
      // value — i.e. the snapshot is a prefix of the append history.
      for (int i = 0; i < 16; ++i) {
        const uint64_t pos = rng() % n;
        ASSERT_EQ(snap.Access(pos).value(), values[pos]);
      }
      // And size never exceeds what has been appended.
      ASSERT_LE(n, values.size());
      snapshots_checked.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) readers.emplace_back(reader);

  std::mt19937_64 rng(77);
  size_t i = 0;
  while (i < values.size()) {
    const size_t end = std::min(values.size(), i + 1 + rng() % 300);
    ASSERT_TRUE(
        eng->AppendBatch({values.begin() + i, values.begin() + end}).ok());
    i = end;
  }
  ASSERT_TRUE(eng->Flush().ok());
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_GT(snapshots_checked.load(), 0u);
  EXPECT_EQ(eng->GetSnapshot().size(), values.size());
}

// ---------------------------------------------------------------- recovery

TEST(EngineRecovery, ReopenReplaysWalTail) {
  TempDir dir("replay");
  const auto values = UrlWorkload(5000, 31);
  StrEngine::Options opt;
  opt.num_shards = 3;
  opt.memtable_limit = 600;
  opt.dir = dir.path.string();
  {
    auto eng = StrEngine::Open(opt).value();
    ASSERT_TRUE(eng->AppendBatch(values).ok());
    EXPECT_EQ(eng->size(), values.size());
    // No Flush: part of the data exists only in memtables + WAL when the
    // engine object dies (the crash-equivalent shutdown).
  }
  auto eng = StrEngine::Open(opt).value();
  EXPECT_EQ(eng->size(), values.size());
  ASSERT_TRUE(eng->Flush().ok());
  ExpectMatchesOracle(eng->GetSnapshot(), values, 55);
}

TEST(EngineRecovery, ReopenAfterFlushAndCompactLoadsSegments) {
  TempDir dir("segments");
  const auto values = UrlWorkload(4000, 41);
  StrEngine::Options opt;
  opt.num_shards = 2;
  opt.memtable_limit = 300;
  opt.dir = dir.path.string();
  {
    auto eng = StrEngine::Open(opt).value();
    ASSERT_TRUE(eng->AppendBatch(values).ok());
    ASSERT_TRUE(eng->Flush().ok());
    ASSERT_TRUE(eng->Compact().ok());
  }
  // Re-opening with a different shard count adopts the on-disk layout.
  StrEngine::Options opt2 = opt;
  opt2.num_shards = 7;
  auto eng = StrEngine::Open(opt2).value();
  EXPECT_EQ(eng->options().num_shards, 2u);
  EXPECT_EQ(eng->size(), values.size());
  ExpectMatchesOracle(eng->GetSnapshot(), values, 66);
}

TEST(EngineRecovery, TornTailRecordIsDiscardedWhole) {
  TempDir dir("torn");
  StrEngine::Options opt;
  opt.num_shards = 2;
  opt.memtable_limit = 1 << 20;  // keep everything in WAL + memtable
  opt.dir = dir.path.string();
  const auto values = UrlWorkload(900, 51);
  {
    auto eng = StrEngine::Open(opt).value();
    // Three batches of 300; the last will be torn below.
    for (size_t b = 0; b < 3; ++b) {
      ASSERT_TRUE(eng->AppendBatch({values.begin() + 300 * b,
                                    values.begin() + 300 * (b + 1)}).ok());
    }
  }
  // Simulate a crash mid-record: truncate the tail of shard 0's WAL by a
  // few bytes, invalidating its final record (the checksum cannot match).
  const fs::path wal0 = dir.path / "wal-0-0.log";
  ASSERT_TRUE(fs::exists(wal0));
  const auto sz = fs::file_size(wal0);
  fs::resize_file(wal0, sz - 5);

  auto eng = StrEngine::Open(opt).value();
  // The torn slice kills batch 3 on BOTH shards (batch atomicity), leaving
  // exactly the first two batches.
  EXPECT_EQ(eng->size(), 600u);
  ASSERT_TRUE(eng->Flush().ok());
  ExpectMatchesOracle(eng->GetSnapshot(), values, 77);

  // The engine keeps working after recovery: the discarded suffix can be
  // re-appended and everything lines up again.
  ASSERT_TRUE(eng->AppendBatch({values.begin() + 600, values.end()}).ok());
  ASSERT_TRUE(eng->Flush().ok());
  EXPECT_EQ(eng->GetSnapshot().size(), 900u);
  ExpectMatchesOracle(eng->GetSnapshot(), values, 78);
}

TEST(EngineRecovery, MissingShardSliceDiscardsWholeBatch) {
  TempDir dir("slice");
  StrEngine::Options opt;
  opt.num_shards = 2;
  opt.memtable_limit = 1 << 20;
  opt.dir = dir.path.string();
  const auto values = UrlWorkload(400, 61);
  {
    auto eng = StrEngine::Open(opt).value();
    ASSERT_TRUE(
        eng->AppendBatch({values.begin(), values.begin() + 200}).ok());
    ASSERT_TRUE(eng->AppendBatch({values.begin() + 200, values.end()}).ok());
  }
  // Crash shape 2: batch 2's slice reached shard 0's WAL but never shard
  // 1's. Deleting shard 1's entire second slice means truncating its WAL
  // back to the end of batch 1 — emulate by removing every record after
  // the first from wal-1-0.log.
  const fs::path wal1 = dir.path / "wal-1-0.log";
  ASSERT_TRUE(fs::exists(wal1));
  // Parse minimally: records are self-delimiting (header + payload_len).
  std::ifstream in(wal1, std::ios::binary);
  uint64_t id;
  uint32_t shards32, count;
  uint64_t len, sum;
  ASSERT_TRUE(wt::TryReadPod(in, &id));
  ASSERT_TRUE(wt::TryReadPod(in, &shards32));
  ASSERT_TRUE(wt::TryReadPod(in, &count));
  ASSERT_TRUE(wt::TryReadPod(in, &len));
  ASSERT_TRUE(wt::TryReadPod(in, &sum));
  const uint64_t first_record_end = 8 + 4 + 4 + 8 + 8 + len;
  in.close();
  fs::resize_file(wal1, first_record_end);

  auto eng = StrEngine::Open(opt).value();
  EXPECT_EQ(eng->size(), 200u);  // batch 2 discarded on shard 0 as well
  ASSERT_TRUE(eng->Flush().ok());
  ExpectMatchesOracle(eng->GetSnapshot(), values, 88);
}

TEST(EngineRecovery, RepeatedCrashAndRecoverCycles) {
  TempDir dir("cycles");
  StrEngine::Options opt;
  opt.num_shards = 3;
  opt.memtable_limit = 150;
  opt.dir = dir.path.string();
  const auto values = UrlWorkload(3000, 71);
  size_t appended = 0;
  std::mt19937_64 rng(4242);
  while (appended < values.size()) {
    auto eng = StrEngine::Open(opt).value();
    ASSERT_EQ(eng->size(), appended);
    const size_t end = std::min(values.size(), appended + 200 + rng() % 500);
    ASSERT_TRUE(eng->AppendBatch(
                       {values.begin() + appended, values.begin() + end})
                    .ok());
    appended = end;
    if (rng() % 2 == 0) ASSERT_TRUE(eng->Flush().ok());
    // ~half the cycles end without a flush: recovery must restore the
    // memtable tail from the WAL every time.
  }
  auto eng = StrEngine::Open(opt).value();
  EXPECT_EQ(eng->size(), values.size());
  ASSERT_TRUE(eng->Flush().ok());
  ExpectMatchesOracle(eng->GetSnapshot(), values, 99);
}

TEST(EngineRecovery, UnsavedSegmentStaysOutOfManifestAndWalFloor) {
  TempDir dir("unsaved");
  StrEngine::Options opt;
  opt.num_shards = 1;
  opt.memtable_limit = 1 << 20;  // rotate only via Flush, so sizes are ours
  opt.dir = dir.path.string();
  const auto values = UrlWorkload(1000, 81);
  {
    auto eng = StrEngine::Open(opt).value();
    // Block the first segment file (after Open — recovery's orphan scan
    // would remove it): SaveSegment's rename onto an existing directory
    // fails, so the frozen segment stays memory-only while its data lives
    // solely in the WAL.
    fs::create_directories(dir.path / "seg-0-0.wt");
    ASSERT_TRUE(eng->AppendBatch({values.begin(), values.begin() + 900}).ok());
    EXPECT_FALSE(eng->Flush().ok());  // the freeze ran, its save failed
    // A later, smaller freeze saves fine (and is too small for the
    // size-tiered policy to merge the blocked segment away: 900 > 3*100).
    ASSERT_TRUE(
        eng->AppendBatch({values.begin() + 900, values.begin() + 1000}).ok());
    EXPECT_FALSE(eng->Flush().ok());  // the background error is sticky;
                                      // the freeze itself succeeds
    EXPECT_EQ(eng->size(), 1000u);
    // The WAL generations feeding the unsaved segment must have survived
    // the second (successful) freeze's floor advance and cleaning pass.
    EXPECT_TRUE(fs::exists(dir.path / "wal-0-0.log"));
  }
  // The manifest must reference neither the unsaved segment nor anything
  // stacked after it, so reopening recovers every string from the log
  // instead of failing on a missing segment file.
  auto reopened = StrEngine::Open(opt);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  auto eng = std::move(reopened).value();
  EXPECT_EQ(eng->size(), 1000u);
  ASSERT_TRUE(eng->Flush().ok());
  ExpectMatchesOracle(eng->GetSnapshot(), values, 101);
}

TEST(EngineRecovery, FailedSegmentSaveIsRetriedByLaterFreezes) {
  TempDir dir("retry");
  StrEngine::Options opt;
  opt.num_shards = 1;
  opt.memtable_limit = 1 << 20;
  opt.dir = dir.path.string();
  const auto values = UrlWorkload(1000, 83);
  auto eng = StrEngine::Open(opt).value();
  fs::create_directories(dir.path / "seg-0-0.wt");  // block the first save
  ASSERT_TRUE(eng->AppendBatch({values.begin(), values.begin() + 900}).ok());
  EXPECT_FALSE(eng->Flush().ok());
  // Clear the blocker: the next freeze retries the failed save, after
  // which the manifest covers both segments and the floor advance lets
  // the subsumed WAL generations be cleaned.
  fs::remove(dir.path / "seg-0-0.wt");
  ASSERT_TRUE(
      eng->AppendBatch({values.begin() + 900, values.begin() + 1000}).ok());
  // The first failure is sticky in BackgroundError, so assert the retry's
  // success through the filesystem instead of the Flush status.
  EXPECT_FALSE(eng->Flush().ok());
  EXPECT_TRUE(fs::exists(dir.path / "seg-0-0.wt"));
  EXPECT_FALSE(fs::exists(dir.path / "wal-0-0.log"));
  EXPECT_FALSE(fs::exists(dir.path / "wal-0-1.log"));
  eng.reset();
  // With the WAL gone the segments are the only copy: reopening from them
  // proves the retried save (and the manifest entry) is real.
  eng = StrEngine::Open(opt).value();
  EXPECT_EQ(eng->size(), 1000u);
  ASSERT_TRUE(eng->Flush().ok());
  ExpectMatchesOracle(eng->GetSnapshot(), values, 103);
}

TEST(WalRobustness, OversizedBitLengthFieldIsRejected) {
  TempDir dir("walbits");
  const fs::path path = dir.path / "wal-0-0.log";
  // A record whose checksum matches but whose per-string bit length lies:
  // near UINT64_MAX the word count (bits+63)/64 would wrap to a tiny
  // buffer read far out of bounds; merely-huge values would balloon the
  // allocation. Both must drop the record cleanly.
  for (const uint64_t bits :
       {UINT64_MAX, UINT64_MAX - 63, uint64_t(1) << 40}) {
    std::ostringstream p;
    wt::WritePod<uint64_t>(p, bits);
    const std::string payload = std::move(p).str();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    wt::WritePod<uint64_t>(out, /*batch_id=*/0);
    wt::WritePod<uint32_t>(out, /*batch_shards=*/1);
    wt::WritePod<uint32_t>(out, /*string_count=*/1);
    wt::WritePod<uint64_t>(out, payload.size());
    wt::WritePod<uint64_t>(out, wt::Fnv1a(payload.data(), payload.size()));
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    out.close();
    EXPECT_TRUE(engine::ReadWalFile(path.string()).empty()) << bits;
  }
}

TEST(EngineRecovery, IncompleteMiddleBatchSalvagesLongestPrefix) {
  TempDir dir("salvage");
  // Hand-craft the sync_wal=false crash shape the replay rule alone cannot
  // absorb: the OS persisted WAL pages out of order, so batch 1 lost its
  // shard-1 slice while the *later* batch 2 is complete. Dropping batch 1
  // whole leaves batch 2's placement inconsistent with the round-robin
  // cursor; recovery must degrade to the longest consistent prefix
  // (batch 0) instead of refusing to open.
  const wt::ByteCodec codec;
  const auto values = UrlWorkload(6, 91);
  std::vector<wt::BitString> encs;
  for (const std::string& v : values) encs.push_back(codec.Encode(v));
  {
    engine::WalWriter w0, w1;
    ASSERT_TRUE(w0.Open((dir.path / "wal-0-0.log").string(), false).ok());
    ASSERT_TRUE(w1.Open((dir.path / "wal-1-0.log").string(), false).ok());
    // batch 0: strings 0,1 from cursor 0 -> shard0 {0}, shard1 {1}.
    ASSERT_TRUE(w0.Append(0, 2, {encs[0].Span()}).ok());
    ASSERT_TRUE(w1.Append(0, 2, {encs[1].Span()}).ok());
    // batch 1: strings 2,3,4 from cursor 0 -> shard0 {2,4}, shard1 {3};
    // shard 1's slice is the one the crash lost (never written here).
    ASSERT_TRUE(w0.Append(1, 2, {encs[2].Span(), encs[4].Span()}).ok());
    // batch 2: string 5 from cursor 1 -> shard1 only, and complete.
    ASSERT_TRUE(w1.Append(2, 1, {encs[5].Span()}).ok());
  }
  StrEngine::Options opt;
  opt.num_shards = 2;
  opt.dir = dir.path.string();
  auto opened = StrEngine::Open(opt);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  auto eng = std::move(opened).value();
  EXPECT_EQ(eng->size(), 2u);  // batch 0 survives; batches 1 and 2 do not
  ASSERT_TRUE(eng->Flush().ok());
  const auto snap = eng->GetSnapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.Access(0).value(), values[0]);
  EXPECT_EQ(snap.Access(1).value(), values[1]);
  // The salvage freezes the recovered memtables right away, so the
  // damaged generation is retired and cannot shadow later writes on the
  // next recovery.
  EXPECT_FALSE(fs::exists(dir.path / "wal-0-0.log"));
  EXPECT_FALSE(fs::exists(dir.path / "wal-1-0.log"));
  ASSERT_TRUE(eng->AppendBatch({values.begin() + 2, values.end()}).ok());
  ASSERT_TRUE(eng->Flush().ok());
  ExpectMatchesOracle(eng->GetSnapshot(), values, 105);
}

TEST(EngineRecovery, WhollyLostMiddleBatchSalvagesViaIdGap) {
  TempDir dir("gap");
  // A middle batch can lose ALL of its slices to out-of-order page
  // persistence; it then never appears in the decoded records and is
  // visible only as a gap in the batch-id sequence. The cut search must
  // consider that gap, not just incomplete ids.
  const wt::ByteCodec codec;
  const auto values = UrlWorkload(4, 93);
  std::vector<wt::BitString> encs;
  for (const std::string& v : values) encs.push_back(codec.Encode(v));
  {
    engine::WalWriter w0, w1;
    ASSERT_TRUE(w0.Open((dir.path / "wal-0-0.log").string(), false).ok());
    ASSERT_TRUE(w1.Open((dir.path / "wal-1-0.log").string(), false).ok());
    // batch 0: strings 0,1 from cursor 0 -> shard0 {0}, shard1 {1}.
    ASSERT_TRUE(w0.Append(0, 2, {encs[0].Span()}).ok());
    ASSERT_TRUE(w1.Append(0, 2, {encs[1].Span()}).ok());
    // batch 1 (string 2 -> shard0 only) was wholly lost — nothing logged.
    // batch 2: string 3 from cursor 1 -> shard1 only, complete.
    ASSERT_TRUE(w1.Append(2, 1, {encs[3].Span()}).ok());
  }
  StrEngine::Options opt;
  opt.num_shards = 2;
  opt.dir = dir.path.string();
  auto opened = StrEngine::Open(opt);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  auto eng = std::move(opened).value();
  EXPECT_EQ(eng->size(), 2u);  // batch 0 survives, the gap cuts the rest
  ASSERT_TRUE(eng->Flush().ok());
  const auto snap = eng->GetSnapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.Access(0).value(), values[0]);
  EXPECT_EQ(snap.Access(1).value(), values[1]);
}

TEST(EngineRecovery, SalvageRetiresDamagedGenerationsOnEveryShard) {
  TempDir dir("retire");
  // After a salvage, a shard whose memtable came back empty still held a
  // WAL file with a dropped-but-complete batch; left behind, that batch
  // would resurface on the next recovery and shadow — or render
  // unsalvageable — batches acknowledged after this open.
  const wt::ByteCodec codec;
  const auto values = UrlWorkload(9, 95);
  std::vector<wt::BitString> encs;
  for (const std::string& v : values) encs.push_back(codec.Encode(v));
  {
    engine::WalWriter w0, w1, w2;
    ASSERT_TRUE(w0.Open((dir.path / "wal-0-0.log").string(), false).ok());
    ASSERT_TRUE(w1.Open((dir.path / "wal-1-0.log").string(), false).ok());
    ASSERT_TRUE(w2.Open((dir.path / "wal-2-0.log").string(), false).ok());
    // batch 0: strings 0,1 from cursor 0 -> shard0 {0}, shard1 {1}.
    ASSERT_TRUE(w0.Append(0, 2, {encs[0].Span()}).ok());
    ASSERT_TRUE(w1.Append(0, 2, {encs[1].Span()}).ok());
    // batch 1: strings 2,3 from cursor 2 -> shard2 {2} (slice lost),
    // shard0 {3} — incomplete.
    ASSERT_TRUE(w0.Append(1, 2, {encs[3].Span()}).ok());
    // batches 2 and 3: singletons beyond the damage, both complete.
    ASSERT_TRUE(w1.Append(2, 1, {encs[4].Span()}).ok());
    ASSERT_TRUE(w2.Append(3, 1, {encs[5].Span()}).ok());
  }
  StrEngine::Options opt;
  opt.num_shards = 3;
  opt.dir = dir.path.string();
  auto opened = StrEngine::Open(opt);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  auto eng = std::move(opened).value();
  EXPECT_EQ(eng->size(), 2u);  // batch 0 only
  // The salvage settles before Open returns: shard 2 salvaged nothing,
  // yet its generation (holding only the dropped batch 3) must be gone
  // along with everyone else's.
  EXPECT_FALSE(fs::exists(dir.path / "wal-0-0.log"));
  EXPECT_FALSE(fs::exists(dir.path / "wal-1-0.log"));
  EXPECT_FALSE(fs::exists(dir.path / "wal-2-0.log"));
  // Writes acknowledged after the salvage survive the next crash+reopen.
  ASSERT_TRUE(eng->AppendBatch({values.begin() + 2, values.end()}).ok());
  eng.reset();
  eng = StrEngine::Open(opt).value();
  EXPECT_EQ(eng->size(), values.size());
  ASSERT_TRUE(eng->Flush().ok());
  ExpectMatchesOracle(eng->GetSnapshot(), values, 107);
}

// ---------------------------------------------------------------- capacity

TEST(Capacity, BoundaryArithmetic) {
  constexpr uint64_t kMax = wt::WaveletTrie::kMaxBetaBits;
  static_assert(kMax == (uint64_t(1) << 32) - 1);
  static_assert(kMax == wt::Rrr::kMaxBits);
  static_assert(StrSequence::kMaxEncodedBits == kMax);
  // Exactly at the limit: fine. One past: rejected. Overflow-wrapping
  // sums: rejected.
  EXPECT_FALSE(internal::CapacityWouldOverflow(0, kMax, kMax));
  EXPECT_FALSE(internal::CapacityWouldOverflow(kMax, 0, kMax));
  EXPECT_FALSE(internal::CapacityWouldOverflow(kMax - 1, 1, kMax));
  EXPECT_TRUE(internal::CapacityWouldOverflow(kMax, 1, kMax));
  EXPECT_TRUE(internal::CapacityWouldOverflow(1, kMax, kMax));
  EXPECT_TRUE(internal::CapacityWouldOverflow(kMax + 1, 0, kMax));
  EXPECT_TRUE(
      internal::CapacityWouldOverflow(UINT64_MAX, UINT64_MAX, kMax));
}

TEST(CapacityDeathTest, RrrAbortsCleanlyAtTheBitCap) {
  // The capacity check fires before any input word is read, so a lying
  // length over a tiny buffer exercises the exact boundary cheaply.
  uint64_t word = 0;
  EXPECT_DEATH(wt::Rrr(&word, (uint64_t(1) << 32)), "capped at 2\\^32-1 bits");
}

TEST(Capacity, SequenceAppendSurfacesStatusAtTheBudget) {
  // Appending huge identical strings crosses the encoded-bit budget while
  // the trie itself stays tiny (one distinct value = no beta bits), so the
  // facade's conservative guard is what must fire — all-or-nothing, with
  // the sequence untouched by the rejected batch.
  Sequence<AppendOnly, wt::RawByteCodec> seq;
  const std::string big(1 << 19, 'x');  // 2^22 + 8 encoded bits each
  const wt::BitString enc = wt::RawByteCodec::Encode(big);
  const std::vector<wt::BitString> batch(512, enc);  // just over 2^31 bits
  // First batch fits; the second would push the running total past
  // 2^32-1 and must be rejected whole, leaving the sequence untouched.
  ASSERT_TRUE(seq.AppendEncodedBatch(batch).ok());
  EXPECT_EQ(seq.size(), 512u);
  const Status st = seq.AppendEncodedBatch(batch);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kCapacityExceeded);
  EXPECT_EQ(seq.size(), 512u);
  // Drain the remaining budget one string at a time: the guard must admit
  // exactly while the running encoded total stays <= 2^32-1, then refuse.
  size_t extra = 0;
  Status single = Status::Ok();
  while ((single = seq.AppendEncodedBatch({enc})).ok()) ++extra;
  EXPECT_EQ(single.code(), ErrorCode::kCapacityExceeded);
  EXPECT_EQ(seq.size(), 512u + extra);
  EXPECT_LE((512u + extra) * uint64_t(enc.size()),
            StrSequence::kMaxEncodedBits);
  EXPECT_GT((513u + extra) * uint64_t(enc.size()),
            StrSequence::kMaxEncodedBits);
  // The Value-level Append path is guarded by the same budget.
  EXPECT_EQ(seq.Append(big).code(), ErrorCode::kCapacityExceeded);
  // The accepted prefix still freezes fine (it is under the real cap).
  EXPECT_EQ(seq.Freeze().size(), 512u + extra);
}

}  // namespace
}  // namespace wtrie
