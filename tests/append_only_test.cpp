// Tests for the append-only bitvector (paper Theorem 4.5 + the Theorem 4.3
// Init offset). Queries are interleaved with appends and cross-checked
// against a reference, across densities and with/without a virtual prefix.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "bitvector/append_only.hpp"

namespace wt {
namespace {

struct Ref {
  std::vector<bool> bits;
  size_t Rank1(size_t pos) const {
    size_t c = 0;
    for (size_t i = 0; i < pos; ++i) c += bits[i];
    return c;
  }
  size_t Select(bool b, size_t k) const {
    for (size_t i = 0; i < bits.size(); ++i) {
      if (bits[i] == b && k-- == 0) return i;
    }
    ADD_FAILURE() << "reference select out of range";
    return size_t(-1);
  }
};

struct Cfg {
  double density;
  bool prefix_bit;
  size_t prefix_len;
};

class AppendOnlyParamTest : public ::testing::TestWithParam<Cfg> {};

TEST_P(AppendOnlyParamTest, InterleavedAppendsAndQueries) {
  const Cfg cfg = GetParam();
  std::mt19937_64 rng(99 + size_t(cfg.density * 1000) + cfg.prefix_len);
  std::bernoulli_distribution coin(cfg.density);

  AppendOnlyBitVector v =
      cfg.prefix_len > 0
          ? AppendOnlyBitVector(cfg.prefix_bit, cfg.prefix_len)
          : AppendOnlyBitVector();
  Ref ref;
  for (size_t i = 0; i < cfg.prefix_len; ++i) ref.bits.push_back(cfg.prefix_bit);

  // Enough appends to cross several chunk boundaries (chunk = 4096 bits).
  const size_t kAppends = 3 * AppendOnlyBitVector::kChunkBits + 123;
  size_t ones = cfg.prefix_bit ? cfg.prefix_len : 0;
  for (size_t i = 0; i < kAppends; ++i) {
    const bool b = coin(rng);
    v.Append(b);
    ref.bits.push_back(b);
    ones += b;
    // Light interleaved checks at random points, heavier at chunk edges.
    const bool at_edge = (i % AppendOnlyBitVector::kChunkBits) < 2 ||
                         (i % AppendOnlyBitVector::kChunkBits) >
                             AppendOnlyBitVector::kChunkBits - 3;
    if (at_edge || i % 509 == 0) {
      ASSERT_EQ(v.size(), ref.bits.size());
      ASSERT_EQ(v.num_ones(), ones);
      const size_t pos = rng() % (v.size() + 1);
      size_t expect = 0;
      for (size_t j = 0; j < pos; ++j) expect += ref.bits[j];
      ASSERT_EQ(v.Rank1(pos), expect) << "pos=" << pos << " i=" << i;
      ASSERT_EQ(v.Rank0(pos), pos - expect);
      if (pos < v.size()) {
        ASSERT_EQ(v.Get(pos), ref.bits[pos]);
      }
    }
  }

  // Full verification at the end.
  ASSERT_EQ(v.size(), ref.bits.size());
  size_t running = 0;
  std::vector<size_t> ones_pos, zeros_pos;
  for (size_t i = 0; i < ref.bits.size(); ++i) {
    ASSERT_EQ(v.Rank1(i), running) << i;
    ASSERT_EQ(v.Get(i), ref.bits[i]) << i;
    if (ref.bits[i])
      ones_pos.push_back(i);
    else
      zeros_pos.push_back(i);
    running += ref.bits[i];
  }
  ASSERT_EQ(v.Rank1(v.size()), running);
  for (size_t k = 0; k < ones_pos.size(); k += 7) {
    ASSERT_EQ(v.Select1(k), ones_pos[k]) << "k=" << k;
  }
  for (size_t k = 0; k < zeros_pos.size(); k += 7) {
    ASSERT_EQ(v.Select0(k), zeros_pos[k]) << "k=" << k;
  }

  // Iterator sweep.
  AppendOnlyBitVector::Iterator it(&v, 0);
  for (size_t i = 0; i < ref.bits.size(); ++i) {
    ASSERT_EQ(it.Next(), ref.bits[i]) << "iterator at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AppendOnlyParamTest,
    ::testing::Values(Cfg{0.5, false, 0}, Cfg{0.05, false, 0},
                      Cfg{0.95, false, 0}, Cfg{0.5, false, 1000},
                      Cfg{0.5, true, 1000}, Cfg{0.2, true, 5000},
                      Cfg{0.8, false, 4096}),
    [](const auto& info) {
      const Cfg& c = info.param;
      return "d" + std::to_string(int(c.density * 100)) + "_p" +
             std::to_string(c.prefix_len) + (c.prefix_bit ? "1" : "0");
    });

TEST(AppendOnly, EmptyVector) {
  AppendOnlyBitVector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.num_ones(), 0u);
  EXPECT_EQ(v.Rank1(0), 0u);
}

TEST(AppendOnly, PureVirtualRun) {
  AppendOnlyBitVector v(true, 1 << 20);  // O(1) despite a million bits
  EXPECT_EQ(v.size(), 1u << 20);
  EXPECT_EQ(v.num_ones(), 1u << 20);
  EXPECT_EQ(v.Rank1(12345), 12345u);
  EXPECT_EQ(v.Select1(999), 999u);
  EXPECT_TRUE(v.Get(54321));

  AppendOnlyBitVector z(false, 777);
  EXPECT_EQ(z.num_ones(), 0u);
  EXPECT_EQ(z.Rank0(500), 500u);
  EXPECT_EQ(z.Select0(776), 776u);
}

TEST(AppendOnly, VirtualRunThenOppositeBits) {
  AppendOnlyBitVector v(false, 100);
  for (int i = 0; i < 50; ++i) v.Append(true);
  EXPECT_EQ(v.size(), 150u);
  EXPECT_EQ(v.num_ones(), 50u);
  EXPECT_EQ(v.Rank1(100), 0u);
  EXPECT_EQ(v.Rank1(150), 50u);
  EXPECT_EQ(v.Select1(0), 100u);
  EXPECT_EQ(v.Select1(49), 149u);
  EXPECT_EQ(v.Select0(99), 99u);
}

TEST(AppendOnly, InitIsConstantTimeShape) {
  // Init must not allocate proportionally to the run length: construct many
  // huge virtual runs; footprint stays tiny per instance.
  std::vector<AppendOnlyBitVector> vs;
  for (int i = 0; i < 1000; ++i) vs.emplace_back(true, size_t(1) << 40);
  size_t total_bits = 0;
  for (const auto& v : vs) total_bits += v.SizeInBits();
  EXPECT_LT(total_bits / 1000, 4096u);  // well under a chunk each
}

TEST(AppendOnly, CompressionOnSkewedStream) {
  AppendOnlyBitVector v;
  std::mt19937_64 rng(4);
  const size_t n = 1 << 18;
  for (size_t i = 0; i < n; ++i) v.Append(rng() % 100 == 0);  // 1% ones
  // Sealed chunks are RRR-compressed. At 1% density the entropy content is
  // ~0.08n; the per-chunk RRR directory overhead (6-bit classes, superblock
  // counters, struct) dominates, but the total must stay well below raw.
  EXPECT_LT(v.SizeInBits(), 4 * n / 5);
}

TEST(AppendOnly, RankSelectInverseProperty) {
  AppendOnlyBitVector v(true, 333);
  std::mt19937_64 rng(8);
  for (size_t i = 0; i < 3 * AppendOnlyBitVector::kChunkBits; ++i) {
    v.Append(rng() % 3 == 0);
  }
  for (size_t k = 0; k < v.num_ones(); k += 11) {
    ASSERT_EQ(v.Rank1(v.Select1(k)), k);
    ASSERT_TRUE(v.Get(v.Select1(k)));
  }
  for (size_t k = 0; k < v.num_zeros(); k += 11) {
    ASSERT_EQ(v.Rank0(v.Select0(k)), k);
    ASSERT_FALSE(v.Get(v.Select0(k)));
  }
}

}  // namespace
}  // namespace wt
