// Tests for the B+-tree substrate (index/btree.hpp) and the approach-(3)
// baseline BTreeIndexedSequence (core/btree_sequence.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "core/btree_sequence.hpp"
#include "index/btree.hpp"
#include "util/workloads.hpp"

namespace wt {
namespace {

// ------------------------------------------------------------------ BPlusTree

TEST(BPlusTree, EmptyTree) {
  BPlusTree<int, int> t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.Find(5), nullptr);
  EXPECT_FALSE(t.Erase(5));
  EXPECT_TRUE(t.Begin().AtEnd());
  EXPECT_TRUE(t.LowerBound(0).AtEnd());
  EXPECT_TRUE(t.CheckInvariants());
}

TEST(BPlusTree, InsertFindOverwrite) {
  BPlusTree<int, std::string> t;
  EXPECT_TRUE(t.Insert(3, "three"));
  EXPECT_TRUE(t.Insert(1, "one"));
  EXPECT_TRUE(t.Insert(2, "two"));
  EXPECT_FALSE(t.Insert(2, "TWO"));  // overwrite
  EXPECT_EQ(t.size(), 3u);
  ASSERT_NE(t.Find(2), nullptr);
  EXPECT_EQ(*t.Find(2), "TWO");
  EXPECT_EQ(t.Find(4), nullptr);
}

TEST(BPlusTree, OrderedIteration) {
  BPlusTree<int, int, 2> t;  // tiny fanout to force deep trees
  std::vector<int> keys;
  for (int k = 100; k >= 0; --k) {
    t.Insert(k, k * k);
    keys.push_back(k);
  }
  EXPECT_TRUE(t.CheckInvariants());
  std::sort(keys.begin(), keys.end());
  size_t i = 0;
  for (auto it = t.Begin(); !it.AtEnd(); it.Next(), ++i) {
    ASSERT_EQ(it.key(), keys[i]);
    ASSERT_EQ(it.value(), keys[i] * keys[i]);
  }
  EXPECT_EQ(i, keys.size());
}

TEST(BPlusTree, LowerBoundSemantics) {
  BPlusTree<int, int, 2> t;
  for (int k = 0; k < 50; k += 2) t.Insert(k, k);  // even keys 0..48
  auto exact = t.LowerBound(10);
  ASSERT_FALSE(exact.AtEnd());
  EXPECT_EQ(exact.key(), 10);
  auto between = t.LowerBound(11);
  ASSERT_FALSE(between.AtEnd());
  EXPECT_EQ(between.key(), 12);
  auto low = t.LowerBound(-5);
  ASSERT_FALSE(low.AtEnd());
  EXPECT_EQ(low.key(), 0);
  EXPECT_TRUE(t.LowerBound(49).AtEnd());
}

TEST(BPlusTree, EraseLeafBorrowAndMerge) {
  BPlusTree<int, int, 2> t;
  for (int k = 0; k < 40; ++k) t.Insert(k, k);
  EXPECT_GT(t.Height(), 1u);
  // Erase in an order that exercises left/right borrows and merges.
  for (int k = 0; k < 40; k += 2) {
    EXPECT_TRUE(t.Erase(k)) << k;
    EXPECT_TRUE(t.CheckInvariants()) << "after erase " << k;
  }
  for (int k = 39; k >= 1; k -= 2) {
    EXPECT_TRUE(t.Erase(k)) << k;
    EXPECT_TRUE(t.CheckInvariants()) << "after erase " << k;
  }
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.Begin().AtEnd());
}

TEST(BPlusTree, HeightIsLogarithmic) {
  BPlusTree<int, int, 8> t;
  for (int k = 0; k < 100000; ++k) t.Insert(k, k);
  // With >= B+1 = 9-way branching, 1e5 keys need at most ~6 levels.
  EXPECT_LE(t.Height(), 6u);
  EXPECT_TRUE(t.CheckInvariants());
}

struct FuzzParam {
  size_t ops;
  int key_space;
  uint64_t seed;
};

class BPlusTreeFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(BPlusTreeFuzz, MatchesStdMapUnderRandomOps) {
  const auto p = GetParam();
  std::mt19937_64 rng(p.seed);
  BPlusTree<int, int, 3> tree;
  std::map<int, int> oracle;
  for (size_t op = 0; op < p.ops; ++op) {
    const int key = int(rng() % p.key_space);
    switch (rng() % 4) {
      case 0:
      case 1: {  // insert biased so the tree actually grows
        const int val = int(rng() % 1000);
        const bool fresh = tree.Insert(key, val);
        ASSERT_EQ(fresh, oracle.find(key) == oracle.end());
        oracle[key] = val;
        break;
      }
      case 2: {
        ASSERT_EQ(tree.Erase(key), oracle.erase(key) > 0);
        break;
      }
      case 3: {
        const int* v = tree.Find(key);
        const auto it = oracle.find(key);
        if (it == oracle.end()) {
          ASSERT_EQ(v, nullptr);
        } else {
          ASSERT_NE(v, nullptr);
          ASSERT_EQ(*v, it->second);
        }
        break;
      }
    }
    if (op % 97 == 0) {
      ASSERT_TRUE(tree.CheckInvariants()) << "op " << op;
      ASSERT_EQ(tree.size(), oracle.size());
    }
  }
  // Final full sweep: identical ordered contents.
  ASSERT_TRUE(tree.CheckInvariants());
  ASSERT_EQ(tree.size(), oracle.size());
  auto it = tree.Begin();
  for (const auto& [k, v] : oracle) {
    ASSERT_FALSE(it.AtEnd());
    ASSERT_EQ(it.key(), k);
    ASSERT_EQ(it.value(), v);
    it.Next();
  }
  ASSERT_TRUE(it.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BPlusTreeFuzz,
    ::testing::Values(FuzzParam{500, 50, 1}, FuzzParam{2000, 100, 2},
                      FuzzParam{5000, 40, 3},  // heavy churn, small space
                      FuzzParam{3000, 5000, 4},  // sparse keys
                      FuzzParam{8000, 300, 5}));

TEST(BPlusTree, StringKeys) {
  BPlusTree<std::string, int, 4> t;
  UrlLogGenerator gen({.seed = 31});
  std::vector<std::string> urls = gen.Take(300);
  for (size_t i = 0; i < urls.size(); ++i) t.Insert(urls[i], int(i));
  EXPECT_TRUE(t.CheckInvariants());
  std::vector<std::string> sorted(urls);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  EXPECT_EQ(t.size(), sorted.size());
  size_t i = 0;
  for (auto it = t.Begin(); !it.AtEnd(); it.Next(), ++i) {
    ASSERT_EQ(it.key(), sorted[i]);
  }
}

// ------------------------------------------------------ BTreeIndexedSequence

class BTreeSequenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    UrlLogGenerator gen({.num_domains = 10, .paths_per_domain = 8, .seed = 77});
    seq_ = gen.Take(400);
    bts_ = BTreeIndexedSequence(seq_);
  }

  std::vector<std::string> seq_;
  BTreeIndexedSequence bts_;
};

TEST_F(BTreeSequenceTest, AccessReturnsOriginals) {
  ASSERT_EQ(bts_.size(), seq_.size());
  for (size_t i = 0; i < seq_.size(); ++i) ASSERT_EQ(bts_.Access(i), seq_[i]);
}

TEST_F(BTreeSequenceTest, RankSelectMatchNaive) {
  const std::string probe = seq_[42];
  size_t count = 0;
  for (size_t i = 0; i < seq_.size(); ++i) {
    if (i % 9 == 0) {
      ASSERT_EQ(bts_.Rank(probe, i), count) << i;
    }
    if (seq_[i] == probe) {
      ASSERT_EQ(bts_.Select(probe, count), std::optional<size_t>(i));
      ++count;
    }
  }
  ASSERT_EQ(bts_.Count(probe), count);
  EXPECT_EQ(bts_.Select(probe, count), std::nullopt);
  EXPECT_EQ(bts_.Rank("missing", seq_.size()), 0u);
}

TEST_F(BTreeSequenceTest, PrefixOpsMatchNaive) {
  const std::string p = "www.site1.com";
  size_t count = 0;
  for (size_t i = 0; i < seq_.size(); ++i) {
    if (i % 11 == 0) {
      ASSERT_EQ(bts_.RankPrefix(p, i), count);
    }
    if (seq_[i].compare(0, p.size(), p) == 0) {
      ASSERT_EQ(bts_.SelectPrefix(p, count), std::optional<size_t>(i));
      ++count;
    }
  }
  ASSERT_GT(count, 0u);
  EXPECT_EQ(bts_.SelectPrefix(p, count), std::nullopt);
}

TEST_F(BTreeSequenceTest, SpaceIsSeveralTimesTheRawStrings) {
  size_t raw_bits = 0;
  for (const auto& s : seq_) raw_bits += 8 * s.size();
  // The paper's point: a traditional index costs a multiple of the data.
  EXPECT_GT(bts_.SizeInBits(), 2 * raw_bits);
}

TEST(BTreeSequence, AppendStream) {
  BTreeIndexedSequence bts;
  bts.Append("b");
  bts.Append("a");
  bts.Append("b");
  EXPECT_EQ(bts.size(), 3u);
  EXPECT_EQ(bts.Count("b"), 2u);
  EXPECT_EQ(bts.Select("b", 1), std::optional<size_t>(2));
  EXPECT_EQ(bts.Rank("b", 2), 1u);
  EXPECT_EQ(bts.Access(1), "a");
}

}  // namespace
}  // namespace wt
