// Tests for the workload generators and the entropy / lower-bound
// calculators used by the space experiments.
#include <gtest/gtest.h>

#include <random>

#include "core/codec.hpp"
#include "util/entropy.hpp"
#include "util/workloads.hpp"
#include "util/zipf.hpp"

namespace wt {
namespace {

TEST(Zipf, HeadIsHeavier) {
  ZipfDistribution z(100, 1.0);
  std::mt19937_64 rng(1);
  std::vector<size_t> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[z(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 5000u);  // ~1/H_100 ~ 19% of the mass
  // All ranks reachable.
  EXPECT_GT(counts[99], 0u);
}

TEST(Zipf, SkewZeroIsUniformish) {
  ZipfDistribution z(10, 0.0);
  std::mt19937_64 rng(2);
  std::vector<size_t> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[z(rng)];
  for (size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]), 10000.0, 600.0);
  }
}

TEST(UrlLog, SharedPrefixesAndDeterminism) {
  UrlLogOptions opt;
  opt.seed = 5;
  UrlLogGenerator g1(opt), g2(opt);
  const auto a = g1.Take(100);
  const auto b = g2.Take(100);
  EXPECT_EQ(a, b);  // deterministic for a fixed seed
  // The most popular domain must dominate.
  size_t hits = 0;
  for (const auto& u : a) hits += (u.find("www.site0.com") == 0);
  EXPECT_GT(hits, 15u);
  for (const auto& u : a) EXPECT_EQ(u.substr(0, 8), "www.site");
}

TEST(GenerateIntegers, RespectsDistinctBound) {
  for (auto dist : {IntDistribution::kUniform, IntDistribution::kZipf,
                    IntDistribution::kClustered}) {
    const auto seq = GenerateIntegers(5000, 37, dist, 11);
    ASSERT_EQ(seq.size(), 5000u);
    std::set<uint64_t> distinct(seq.begin(), seq.end());
    EXPECT_LE(distinct.size(), 37u);
    EXPECT_GE(distinct.size(), 20u);  // should use most of the alphabet
  }
}

TEST(Entropy, Log2Binomial) {
  EXPECT_NEAR(Log2Binomial(4, 2), std::log2(6.0), 1e-9);
  EXPECT_NEAR(Log2Binomial(10, 0), 0.0, 1e-9);
  EXPECT_NEAR(Log2Binomial(64, 32), 61.0, 1.0);  // C(64,32) ~ 1.8e18
}

TEST(Entropy, SequenceEntropyKnownCases) {
  // Uniform over 2 values: H0 = 1 bit per element.
  std::vector<BitString> seq;
  for (int i = 0; i < 100; ++i) {
    seq.push_back(BitString::FromString(i % 2 ? "01" : "10"));
  }
  EXPECT_NEAR(SequenceEntropyBits(seq), 100.0, 1e-9);
  // Constant sequence: H0 = 0.
  std::vector<BitString> constant(50, BitString::FromString("111"));
  EXPECT_NEAR(SequenceEntropyBits(constant), 0.0, 1e-9);
}

TEST(Entropy, TrieLowerBoundSmallCase) {
  // {00, 01}: Patricia has |L| = 1 (root label "0"), e = 2.
  std::vector<BitString> seq = {BitString::FromString("00"),
                                BitString::FromString("01")};
  const auto lb = TrieLowerBoundBits(seq);
  EXPECT_EQ(lb.num_distinct, 2u);
  EXPECT_EQ(lb.label_bits, 1u);
  EXPECT_EQ(lb.edges, 2u);
  EXPECT_NEAR(lb.total_bits, 1.0 + 2.0 + Log2Binomial(3, 2), 1e-9);
}

TEST(Entropy, LowerBoundIsBelowMeasuredSize) {
  // Sanity: LB must lower-bound any honest representation of the sequence.
  UrlLogGenerator gen;
  std::vector<BitString> seq;
  for (const auto& u : gen.Take(2000)) seq.push_back(ByteCodec::Encode(u));
  const double lb = SequenceLowerBoundBits(seq);
  size_t raw = 0;
  for (const auto& s : seq) raw += s.size();
  EXPECT_LT(lb, static_cast<double>(raw));
  EXPECT_GT(lb, 0.0);
}

}  // namespace
}  // namespace wt
