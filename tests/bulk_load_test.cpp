// Differential tests for the bulk-load / word-parallel ingestion paths:
//   * AppendWord / AppendRun on both append-only bitvectors, including the
//     word-boundary and chunk-seal edge cases (len 1, 63, 64, crossing 4096);
//   * BitTree/DynamicBitVector run- and word-appends vs per-bit appends;
//   * DynamicWaveletTrieT::AppendBatch vs repeated Append — the structures
//     must be *identical* (same trie shape, same beta contents, same counts),
//     checked over >= 10k mixed Zipf/uniform strings;
//   * WaveletTrie::BulkBuild vs the reference constructor — byte-identical
//     serialization.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "bitvector/append_only.hpp"
#include "bitvector/append_only_deamortized.hpp"
#include "bitvector/dynamic_bit_vector.hpp"
#include "core/codec.hpp"
#include "core/dynamic_wavelet_trie.hpp"
#include "core/string_sequence.hpp"
#include "core/wavelet_trie.hpp"
#include "util/workloads.hpp"

namespace wt {
namespace {

// ---------------------------------------------------------- bitvector level

template <typename BV>
class AppendOnlyWordTest : public ::testing::Test {};

using AppendOnlyTypes =
    ::testing::Types<AppendOnlyBitVector, DeamortizedAppendOnlyBitVector>;
TYPED_TEST_SUITE(AppendOnlyWordTest, AppendOnlyTypes);

template <typename BV>
void CheckAgainstReference(const BV& bv, const std::vector<bool>& ref) {
  ASSERT_EQ(bv.size(), ref.size());
  size_t ones = 0;
  for (size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(bv.Get(i), ref[i]) << "bit " << i;
    ASSERT_EQ(bv.Rank1(i), ones) << "rank " << i;
    if (ref[i]) {
      ASSERT_EQ(bv.Select1(ones), i);
      ++ones;
    } else {
      ASSERT_EQ(bv.Select0(i - ones), i);
    }
  }
  ASSERT_EQ(bv.Rank1(ref.size()), ones);
  ASSERT_EQ(bv.num_ones(), ones);
}

void AppendWordRef(std::vector<bool>* ref, uint64_t value, size_t len) {
  for (size_t i = 0; i < len; ++i) ref->push_back((value >> i) & 1);
}

TYPED_TEST(AppendOnlyWordTest, WordBoundaryLengths) {
  // len 1, 63, 64, and unaligned mixes around every word boundary.
  for (size_t len : {size_t(1), size_t(63), size_t(64)}) {
    TypeParam bv;
    std::vector<bool> ref;
    std::mt19937_64 rng(len);
    for (int round = 0; round < 300; ++round) {
      const uint64_t v = rng();
      bv.AppendWord(v, len);
      AppendWordRef(&ref, v, len);
    }
    CheckAgainstReference(bv, ref);
  }
}

TYPED_TEST(AppendOnlyWordTest, MixedLengthsAndBits) {
  TypeParam bv;
  std::vector<bool> ref;
  std::mt19937_64 rng(7);
  for (int round = 0; round < 2000; ++round) {
    const size_t len = rng() % 65;  // includes len == 0
    const uint64_t v = rng();
    bv.AppendWord(v, len);
    AppendWordRef(&ref, v, len);
    if (round % 5 == 0) {
      const bool b = rng() & 1;
      bv.Append(b);
      ref.push_back(b);
    }
  }
  CheckAgainstReference(bv, ref);
}

TYPED_TEST(AppendOnlyWordTest, WordAppendsCrossChunkSeal) {
  // Fill to just below the 4096-bit chunk boundary, then cross it with a
  // 64-bit word so the seal splits the word.
  TypeParam bv;
  std::vector<bool> ref;
  std::mt19937_64 rng(11);
  while (bv.size() < TypeParam::kChunkBits - 17) {
    const bool b = rng() & 1;
    bv.Append(b);
    ref.push_back(b);
  }
  const uint64_t v = rng();
  bv.AppendWord(v, 64);  // 17 bits land in the old chunk, 47 in the next
  AppendWordRef(&ref, v, 64);
  for (int round = 0; round < 200; ++round) {
    const uint64_t w = rng();
    bv.AppendWord(w, 64);
    AppendWordRef(&ref, w, 64);
  }
  CheckAgainstReference(bv, ref);
}

TYPED_TEST(AppendOnlyWordTest, RunAppendsCrossChunkSeal) {
  TypeParam bv;
  std::vector<bool> ref;
  // A run spanning multiple chunks, then alternating short runs, on top of a
  // virtual constant-prefix Init.
  const size_t kInit = 1000;
  TypeParam bv2(true, kInit);
  std::vector<bool> ref2(kInit, true);
  std::mt19937_64 rng(13);
  size_t runs[] = {1, 63, 64, 65, 9000, 4096, 1, 2, 100};
  bool bit = false;
  for (size_t r : runs) {
    bv.AppendRun(bit, r);
    bv2.AppendRun(bit, r);
    for (size_t i = 0; i < r; ++i) {
      ref.push_back(bit);
      ref2.push_back(bit);
    }
    bit = !bit;
  }
  bv.AppendRun(true, 0);  // empty run is a no-op
  CheckAgainstReference(bv, ref);
  CheckAgainstReference(bv2, ref2);
}

TYPED_TEST(AppendOnlyWordTest, AppendSpanMatchesBits) {
  std::mt19937_64 rng(19);
  BitString s;
  for (int i = 0; i < 5000; ++i) s.PushBack(rng() % 3 == 0);
  TypeParam bv;
  bv.AppendSpan(s.Span().SubSpan(3, 4500));  // unaligned view
  ASSERT_EQ(bv.size(), 4500u);
  for (size_t i = 0; i < 4500; ++i) ASSERT_EQ(bv.Get(i), s.Get(3 + i));
}

TYPED_TEST(AppendOnlyWordTest, WordPathMatchesBitPath) {
  // The word-parallel path must answer every query identically to the
  // per-bit path (internal chunking may differ; queries may not).
  TypeParam word_bv;
  TypeParam bit_bv;
  std::mt19937_64 rng(17);
  for (int round = 0; round < 500; ++round) {
    const size_t len = 1 + rng() % 64;
    const uint64_t v = rng();
    word_bv.AppendWord(v, len);
    for (size_t i = 0; i < len; ++i) bit_bv.Append((v >> i) & 1);
  }
  ASSERT_EQ(word_bv.size(), bit_bv.size());
  ASSERT_EQ(word_bv.num_ones(), bit_bv.num_ones());
  for (size_t i = 0; i < word_bv.size(); i += 37) {
    ASSERT_EQ(word_bv.Get(i), bit_bv.Get(i));
    ASSERT_EQ(word_bv.Rank1(i), bit_bv.Rank1(i));
  }
  for (size_t k = 0; k < word_bv.num_ones(); k += 29) {
    ASSERT_EQ(word_bv.Select1(k), bit_bv.Select1(k));
  }
}

TEST(DynamicBitVectorBulk, RunAndWordAppendsMatchBitAppends) {
  DynamicBitVector fast;
  DynamicBitVector slow;
  std::mt19937_64 rng(23);
  for (int round = 0; round < 400; ++round) {
    switch (rng() % 3) {
      case 0: {
        const bool b = rng() & 1;
        const size_t n = rng() % 300;
        fast.AppendRun(b, n);
        for (size_t i = 0; i < n; ++i) slow.Append(b);
        break;
      }
      case 1: {
        const size_t len = rng() % 65;
        const uint64_t v = rng();
        fast.AppendWord(v, len);
        for (size_t i = 0; i < len; ++i) slow.Append((v >> i) & 1);
        break;
      }
      default: {
        const bool b = rng() & 1;
        fast.Append(b);
        slow.Append(b);
        break;
      }
    }
  }
  fast.CheckInvariants();
  ASSERT_EQ(fast.size(), slow.size());
  ASSERT_EQ(fast.num_ones(), slow.num_ones());
  for (size_t i = 0; i < fast.size(); ++i) {
    ASSERT_EQ(fast.Get(i), slow.Get(i)) << "bit " << i;
  }
  for (size_t i = 0; i <= fast.size(); i += 11) {
    ASSERT_EQ(fast.Rank1(i), slow.Rank1(i));
  }
  for (size_t k = 0; k < fast.num_ones(); k += 7) {
    ASSERT_EQ(fast.Select1(k), slow.Select1(k));
  }
  for (size_t k = 0; k < fast.num_zeros(); k += 7) {
    ASSERT_EQ(fast.Select0(k), slow.Select0(k));
  }
}

TEST(DynamicBitVectorBulk, BulkConstructorMatchesBits) {
  std::mt19937_64 rng(29);
  BitArray bits;
  for (int i = 0; i < 5000; ++i) bits.PushBack(rng() % 3 == 0);
  DynamicBitVector bv(bits);
  bv.CheckInvariants();
  ASSERT_EQ(bv.size(), bits.size());
  for (size_t i = 0; i < bits.size(); ++i) ASSERT_EQ(bv.Get(i), bits.Get(i));
}

// --------------------------------------------------------------- trie level

// Mixed workload per the paper's motivation: a Zipfian URL log plus uniform
// random byte strings, all ByteCodec-encoded (one prefix-free universe).
std::vector<BitString> MixedWorkload(size_t n_zipf, size_t n_uniform,
                                     uint64_t seed) {
  std::vector<BitString> seq;
  seq.reserve(n_zipf + n_uniform);
  UrlLogOptions opt;
  opt.num_domains = 40;
  opt.paths_per_domain = 25;
  opt.seed = seed;
  UrlLogGenerator gen(opt);
  for (size_t i = 0; i < n_zipf; ++i) seq.push_back(ByteCodec::Encode(gen.Next()));
  std::mt19937_64 rng(seed * 31 + 1);
  for (size_t i = 0; i < n_uniform; ++i) {
    std::string s;
    const size_t len = 1 + rng() % 10;
    for (size_t j = 0; j < len; ++j) s.push_back('a' + rng() % 26);
    seq.push_back(ByteCodec::Encode(s));
  }
  // Interleave deterministically so batches mix both distributions.
  std::shuffle(seq.begin(), seq.end(), std::mt19937_64(seed * 7 + 3));
  return seq;
}

template <typename Trie>
void ExpectIdenticalStructure(const Trie& a, const Trie& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.NumDistinct(), b.NumDistinct());
  ASSERT_EQ(a.Height(), b.Height());
  ASSERT_EQ(a.LabelBits(), b.LabelBits());
  const auto na = a.DebugNodes();
  const auto nb = b.DebugNodes();
  ASSERT_EQ(na.size(), nb.size());
  for (size_t i = 0; i < na.size(); ++i) {
    ASSERT_EQ(na[i].alpha, nb[i].alpha) << "node " << i;
    ASSERT_EQ(na[i].beta, nb[i].beta) << "node " << i;
    ASSERT_EQ(na[i].is_leaf, nb[i].is_leaf) << "node " << i;
    ASSERT_EQ(na[i].count, nb[i].count) << "node " << i;
  }
}

template <typename Trie>
void ExpectIdenticalQueries(const Trie& a, const Trie& b,
                            const std::vector<BitString>& seq) {
  const size_t n = seq.size();
  for (size_t i = 0; i < n; i += 97) {
    ASSERT_EQ(a.Access(i), b.Access(i)) << "pos " << i;
  }
  for (size_t i = 0; i < n; i += 131) {
    const BitSpan s = seq[i].Span();
    ASSERT_EQ(a.Rank(s, n / 3), b.Rank(s, n / 3));
    ASSERT_EQ(a.Rank(s, n), b.Rank(s, n));
    ASSERT_EQ(a.Select(s, 0), b.Select(s, 0));
    const size_t cnt = a.Count(s);
    ASSERT_EQ(cnt, b.Count(s));
    if (cnt > 0) ASSERT_EQ(a.Select(s, cnt - 1), b.Select(s, cnt - 1));
  }
}

template <typename Trie>
class AppendBatchTest : public ::testing::Test {};

using TrieTypes = ::testing::Types<AppendOnlyWaveletTrie,
                                   DeamortizedAppendOnlyWaveletTrie,
                                   DynamicWaveletTrie>;
TYPED_TEST_SUITE(AppendBatchTest, TrieTypes);

TYPED_TEST(AppendBatchTest, DifferentialMixedZipfUniform) {
  // >= 10k strings, one batch vs element-wise: bit-identical structures.
  const auto seq = MixedWorkload(8000, 4000, 42);
  TypeParam batched;
  batched.AppendBatch(seq);
  TypeParam incremental;
  for (const auto& s : seq) incremental.Append(s);
  ExpectIdenticalStructure(batched, incremental);
  ExpectIdenticalQueries(batched, incremental, seq);
}

TYPED_TEST(AppendBatchTest, BatchOntoExistingTrieAndSmallBatches) {
  const auto seq = MixedWorkload(2000, 1000, 99);
  TypeParam batched;
  TypeParam incremental;
  // Seed both element-wise, then append the rest in batches of varying size
  // (including size 1) so batches hit existing nodes, splits, and leaves.
  size_t i = 0;
  for (; i < 500; ++i) {
    batched.Append(seq[i]);
    incremental.Append(seq[i]);
  }
  const size_t batch_sizes[] = {1, 7, 64, 65, 1000, seq.size()};
  for (size_t bs : batch_sizes) {
    const size_t end = std::min(seq.size(), i + bs);
    std::vector<BitSpan> batch;
    for (size_t j = i; j < end; ++j) batch.push_back(seq[j].Span());
    batched.AppendBatch(std::span<const BitSpan>(batch));
    for (size_t j = i; j < end; ++j) incremental.Append(seq[j]);
    i = end;
  }
  ASSERT_EQ(i, seq.size());
  // An empty batch is a no-op.
  batched.AppendBatch(std::span<const BitSpan>{});
  ExpectIdenticalStructure(batched, incremental);
  ExpectIdenticalQueries(batched, incremental, seq);
}

TYPED_TEST(AppendBatchTest, HashedIntegerAlphabet) {
  // Balanced-shape coverage: Zipf and uniform integers under HashedIntCodec.
  HashedIntCodec codec(32);
  std::vector<BitString> seq;
  for (auto dist : {IntDistribution::kZipf, IntDistribution::kUniform}) {
    for (uint64_t v : GenerateIntegers(3000, 200, dist, 5)) {
      seq.push_back(codec.Encode(v & 0xFFFFFFFFull));
    }
  }
  TypeParam batched;
  // Two batches to cover batch-onto-batch.
  std::vector<BitSpan> first(seq.begin(), seq.begin() + 3000);
  std::vector<BitSpan> second(seq.begin() + 3000, seq.end());
  batched.AppendBatch(std::span<const BitSpan>(first));
  batched.AppendBatch(std::span<const BitSpan>(second));
  TypeParam incremental;
  for (const auto& s : seq) incremental.Append(s);
  ExpectIdenticalStructure(batched, incremental);
}

TEST(AppendBatch, SingletonAndDuplicateBatches) {
  AppendOnlyWaveletTrie batched;
  AppendOnlyWaveletTrie incremental;
  std::vector<BitString> seq;
  for (const char* s : {"0001", "0011", "0100", "00100", "0100", "00100",
                        "0100", "0001", "0011"}) {
    seq.push_back(BitString::FromString(s));
  }
  batched.AppendBatch(seq);
  for (const auto& s : seq) incremental.Append(s);
  ExpectIdenticalStructure(batched, incremental);
  // A batch of one duplicate string.
  std::vector<BitSpan> one{seq[0].Span()};
  batched.AppendBatch(std::span<const BitSpan>(one));
  incremental.Append(seq[0]);
  ExpectIdenticalStructure(batched, incremental);
}

TEST(DynamicWaveletTrieMove, MoveAssignmentStealsAndFrees) {
  AppendOnlyWaveletTrie a;
  a.Append(BitString::FromString("0101"));
  a.Append(BitString::FromString("0110"));
  AppendOnlyWaveletTrie b;
  b.Append(BitString::FromString("111"));
  b = std::move(a);
  ASSERT_EQ(b.size(), 2u);
  ASSERT_EQ(b.NumDistinct(), 2u);
  ASSERT_EQ(b.Access(0).ToString(), "0101");
  ASSERT_EQ(b.Access(1).ToString(), "0110");
  ASSERT_EQ(a.size(), 0u);   // NOLINT(bugprone-use-after-move): spec'd empty
  // Self-move must be a no-op.
  auto* pb = &b;
  b = std::move(*pb);
  ASSERT_EQ(b.size(), 2u);
  // Move assignment works for the fully dynamic variant too.
  DynamicWaveletTrie c;
  c.Append(BitString::FromString("00"));
  DynamicWaveletTrie d;
  d = std::move(c);
  ASSERT_EQ(d.size(), 1u);
}

// ------------------------------------------------------------- static level

TEST(BulkBuild, ByteIdenticalToReferenceConstructor) {
  const auto seq = MixedWorkload(3000, 1500, 7);
  WaveletTrie reference(seq);
  WaveletTrie bulk = WaveletTrie::BulkBuild(seq);
  std::ostringstream sa, sb;
  reference.Save(sa);
  bulk.Save(sb);
  ASSERT_EQ(sa.str(), sb.str());
  ASSERT_EQ(bulk.size(), seq.size());
  for (size_t i = 0; i < seq.size(); i += 113) {
    ASSERT_EQ(bulk.Access(i), reference.Access(i));
  }
}

TEST(BulkBuild, EmptyAndSingleton) {
  std::ostringstream sa, sb;
  WaveletTrie(std::vector<BitString>{}).Save(sa);
  WaveletTrie::BulkBuild({}).Save(sb);
  ASSERT_EQ(sa.str(), sb.str());
  std::vector<BitString> one{BitString::FromString("10101")};
  WaveletTrie ref(one);
  WaveletTrie bulk = WaveletTrie::BulkBuild(one);
  ASSERT_EQ(bulk.size(), 1u);
  ASSERT_EQ(bulk.Access(0), ref.Access(0));
}

TEST(StringSequenceBatch, AppendBatchMatchesAppendAndFreeze) {
  UrlLogGenerator gen;
  const auto urls = gen.Take(4000);
  StringSequence<AppendOnlyWaveletTrie> batched;
  batched.AppendBatch(urls);
  StringSequence<AppendOnlyWaveletTrie> incremental;
  for (const auto& u : urls) incremental.Append(u);
  ASSERT_EQ(batched.size(), incremental.size());
  ASSERT_EQ(batched.NumDistinct(), incremental.NumDistinct());
  for (size_t i = 0; i < urls.size(); i += 61) {
    ASSERT_EQ(batched.Access(i), urls[i]);
    ASSERT_EQ(batched.Rank(urls[i], urls.size()),
              incremental.Rank(urls[i], urls.size()));
  }
  // Freeze goes through BulkBuild; the snapshot must agree everywhere.
  auto frozen = batched.Freeze();
  ASSERT_EQ(frozen.size(), urls.size());
  for (size_t i = 0; i < urls.size(); i += 61) {
    ASSERT_EQ(frozen.Access(i), urls[i]);
  }
}

}  // namespace
}  // namespace wt
