// Tests for BinaryTreeShape (succinct full-binary-tree navigation via excess
// search) and the dynamic PatriciaTrie of Appendix B.
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <string>
#include <vector>

#include "common/bit_string.hpp"
#include "succinct/binary_tree_shape.hpp"
#include "trie/patricia_trie.hpp"

namespace wt {
namespace {

// ------------------------------------------------------ BinaryTreeShape

// Builds a random full binary tree's preorder bitmap with ~k internal nodes,
// and an oracle map of left/right children computed by brute force.
struct TreeOracle {
  std::vector<bool> preorder;  // 1 = internal
  std::vector<size_t> close;   // close[v] = last node of v's subtree
};

void GenTree(std::mt19937_64& rng, size_t budget, std::vector<bool>* out) {
  if (budget == 0 || rng() % 4 == 0) {
    out->push_back(false);
    return;
  }
  out->push_back(true);
  const size_t half = budget / 2;
  GenTree(rng, rng() % (half + 1), out);
  GenTree(rng, half, out);
}

TreeOracle MakeOracle(uint64_t seed, size_t budget) {
  TreeOracle o;
  std::mt19937_64 rng(seed);
  GenTree(rng, budget, &o.preorder);
  o.close.resize(o.preorder.size());
  // Brute-force close via excess scan.
  for (size_t v = 0; v < o.preorder.size(); ++v) {
    int excess = 0;
    for (size_t j = v; j < o.preorder.size(); ++j) {
      excess += o.preorder[j] ? 1 : -1;
      if (excess == -1) {
        o.close[v] = j;
        break;
      }
    }
  }
  return o;
}

BitArray ToBits(const std::vector<bool>& v) {
  BitArray a;
  for (bool b : v) a.PushBack(b);
  return a;
}

TEST(BinaryTreeShape, SingleLeaf) {
  BitArray a;
  a.PushBack(false);
  BinaryTreeShape t(a);
  EXPECT_EQ(t.NumNodes(), 1u);
  EXPECT_EQ(t.NumLeaves(), 1u);
  EXPECT_FALSE(t.IsInternal(0));
  EXPECT_EQ(t.Close(0), 0u);
}

TEST(BinaryTreeShape, ThreeNodes) {
  // root(internal), leaf, leaf -> preorder 1 0 0
  BitArray a;
  a.PushBack(true);
  a.PushBack(false);
  a.PushBack(false);
  BinaryTreeShape t(a);
  EXPECT_EQ(t.LeftChild(0), 1u);
  EXPECT_EQ(t.RightChild(0), 2u);
  EXPECT_EQ(t.Close(0), 2u);
  EXPECT_EQ(t.InternalRank(2), 1u);
  EXPECT_EQ(t.LeafRank(2), 1u);
}

TEST(BinaryTreeShape, NineNodeNavigation) {
  // A 4-internal/5-leaf full binary tree:
  // preorder: root(1), left-subtree [1,[1,leaf,leaf],leaf], right [1,0,0].
  const std::vector<bool> pre = {true, true, true,  false, false,
                                 false, true, false, false};
  BinaryTreeShape t(ToBits(pre));
  EXPECT_EQ(t.NumInternal(), 4u);
  EXPECT_EQ(t.NumLeaves(), 5u);
  EXPECT_EQ(t.LeftChild(0), 1u);
  EXPECT_EQ(t.RightChild(0), 6u);
  EXPECT_EQ(t.LeftChild(1), 2u);
  EXPECT_EQ(t.RightChild(1), 5u);
  EXPECT_EQ(t.LeftChild(2), 3u);
  EXPECT_EQ(t.RightChild(2), 4u);
  EXPECT_EQ(t.LeftChild(6), 7u);
  EXPECT_EQ(t.RightChild(6), 8u);
}

TEST(BinaryTreeShape, RandomTreesMatchBruteForce) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    // Budgets span within-block and multi-block (>512 nodes) regimes.
    const size_t budget = seed <= 6 ? 200 : 40000;
    TreeOracle o = MakeOracle(seed, budget);
    BinaryTreeShape t(ToBits(o.preorder));
    ASSERT_EQ(t.NumNodes(), o.preorder.size());
    for (size_t v = 0; v < o.preorder.size(); ++v) {
      ASSERT_EQ(t.Close(v), o.close[v]) << "seed=" << seed << " v=" << v;
      if (o.preorder[v]) {
        ASSERT_EQ(t.LeftChild(v), v + 1);
        ASSERT_EQ(t.RightChild(v), o.close[v + 1] + 1);
      }
    }
  }
}

TEST(BinaryTreeShape, DeepLeftSpine) {
  // Pathological all-left tree: 1^k 0^(k+1); Close spans nearly everything.
  const size_t k = 5000;
  BitArray a;
  for (size_t i = 0; i < k; ++i) a.PushBack(true);
  for (size_t i = 0; i <= k; ++i) a.PushBack(false);
  BinaryTreeShape t(a);
  EXPECT_EQ(t.Close(0), 2 * k);
  EXPECT_EQ(t.RightChild(0), 2u * k);
  EXPECT_EQ(t.Close(k), k);  // first leaf
  // Every internal node v on the spine closes at 2k - ... check a few.
  EXPECT_EQ(t.Close(1), 2 * k - 1);
  EXPECT_EQ(t.RightChild(k - 1), k + 1u);
}

// --------------------------------------------------------- PatriciaTrie

BitString BS(const std::string& s) { return BitString::FromString(s); }

TEST(PatriciaTrie, InsertAndContains) {
  PatriciaTrie t;
  EXPECT_TRUE(t.Insert(BS("0001")));
  EXPECT_TRUE(t.Insert(BS("0011")));
  EXPECT_TRUE(t.Insert(BS("0100")));
  EXPECT_TRUE(t.Insert(BS("00100")));
  EXPECT_FALSE(t.Insert(BS("0011")));  // duplicate
  EXPECT_EQ(t.size(), 4u);
  EXPECT_TRUE(t.Contains(BS("0001")));
  EXPECT_TRUE(t.Contains(BS("00100")));
  EXPECT_FALSE(t.Contains(BS("0000")));
  EXPECT_FALSE(t.Contains(BS("01")));
  EXPECT_FALSE(t.Contains(BS("010000")));
}

TEST(PatriciaTrie, EnumerationIsLexicographic) {
  PatriciaTrie t;
  const std::vector<std::string> strs = {"0001", "0011", "0100", "00100"};
  for (const auto& s : strs) t.Insert(BS(s));
  std::vector<std::string> got;
  t.ForEach([&](const BitString& b) { got.push_back(b.ToString()); });
  // Lexicographic bit order: 0001 < 00100 < 0011 < 0100.
  const std::vector<std::string> expect = {"0001", "00100", "0011", "0100"};
  EXPECT_EQ(got, expect);
}

TEST(PatriciaTrie, EraseMergesNodes) {
  PatriciaTrie t;
  t.Insert(BS("0001"));
  t.Insert(BS("0011"));
  t.Insert(BS("0100"));
  EXPECT_TRUE(t.Erase(BS("0011")));
  EXPECT_FALSE(t.Erase(BS("0011")));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(t.Contains(BS("0001")));
  EXPECT_TRUE(t.Contains(BS("0100")));
  EXPECT_TRUE(t.Erase(BS("0001")));
  EXPECT_TRUE(t.Erase(BS("0100")));
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.LabelBits(), 0u);
}

TEST(PatriciaTrie, LabelBitsMatchesRebuild) {
  // After arbitrary churn, |L| must equal the value from a fresh build.
  std::mt19937_64 rng(42);
  PatriciaTrie t;
  std::set<std::string> ref;
  auto random_string = [&]() {
    // Fixed length 12 => prefix-free guaranteed.
    std::string s;
    for (int i = 0; i < 12; ++i) s.push_back((rng() % 2) ? '1' : '0');
    return s;
  };
  for (int step = 0; step < 2000; ++step) {
    if (ref.empty() || rng() % 3 != 0) {
      const std::string s = random_string();
      ASSERT_EQ(t.Insert(BS(s)), ref.insert(s).second);
    } else {
      auto it = ref.begin();
      std::advance(it, rng() % ref.size());
      ASSERT_TRUE(t.Erase(BS(*it)));
      ref.erase(it);
    }
  }
  ASSERT_EQ(t.size(), ref.size());
  for (const auto& s : ref) ASSERT_TRUE(t.Contains(BS(s)));
  // Rebuild and compare |L| and node count.
  PatriciaTrie fresh;
  for (const auto& s : ref) fresh.Insert(BS(s));
  EXPECT_EQ(t.LabelBits(), fresh.LabelBits());
  EXPECT_EQ(t.NumNodes(), fresh.NumNodes());
  // Enumeration equals the sorted reference (fixed length => bit-lex ==
  // string-lex).
  std::vector<std::string> got;
  t.ForEach([&](const BitString& b) { got.push_back(b.ToString()); });
  std::vector<std::string> expect(ref.begin(), ref.end());
  EXPECT_EQ(got, expect);
}

TEST(PatriciaTrie, VariableLengthPrefixFreeSet) {
  // Strings ending in '1' with only '0's before: 1, 01, 001, ... prefix-free.
  PatriciaTrie t;
  std::vector<std::string> strs;
  std::string cur = "1";
  for (int i = 0; i < 50; ++i) {
    strs.push_back(cur);
    cur = "0" + cur;
  }
  std::mt19937_64 rng(7);
  std::shuffle(strs.begin(), strs.end(), rng);
  for (const auto& s : strs) ASSERT_TRUE(t.Insert(BS(s)));
  EXPECT_EQ(t.size(), 50u);
  for (const auto& s : strs) ASSERT_TRUE(t.Contains(BS(s)));
  std::shuffle(strs.begin(), strs.end(), rng);
  for (const auto& s : strs) ASSERT_TRUE(t.Erase(BS(s)));
  EXPECT_TRUE(t.empty());
}

TEST(PatriciaTrie, SingleString) {
  PatriciaTrie t;
  t.Insert(BS("10101"));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.LabelBits(), 5u);
  EXPECT_EQ(t.NumNodes(), 1u);
  EXPECT_TRUE(t.Contains(BS("10101")));
  EXPECT_FALSE(t.Contains(BS("1010")));
  EXPECT_TRUE(t.Erase(BS("10101")));
  EXPECT_EQ(t.LabelBits(), 0u);
}

TEST(PatriciaTrie, LabelBitsKnownSmallCase) {
  // {00, 01}: root label "0", two empty leaf labels; branch bits implicit.
  PatriciaTrie t;
  t.Insert(BS("00"));
  t.Insert(BS("01"));
  EXPECT_EQ(t.LabelBits(), 1u);
  EXPECT_EQ(t.NumNodes(), 3u);
  // Erase one: back to a single leaf "01" with 2 label bits.
  t.Erase(BS("00"));
  EXPECT_EQ(t.LabelBits(), 2u);
}

}  // namespace
}  // namespace wt
