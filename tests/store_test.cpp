// Tests for the column-store layer (store/column.hpp, store/table.hpp):
// typed columns over the paper's dynamic structures, windowed predicates,
// conjunctive filters and the Section 5 analytics surfaced as SQL-ish ops.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>
#include <vector>

#include "store/column.hpp"
#include "store/table.hpp"
#include "util/workloads.hpp"

namespace wt {
namespace {

// -------------------------------------------------------------- StringColumn

class StringColumnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    UrlLogGenerator gen({.num_domains = 9, .paths_per_domain = 7, .seed = 21});
    values_ = gen.Take(500);
    for (const auto& v : values_) col_.Append(v);
  }

  std::vector<std::string> values_;
  StringColumn col_;
};

TEST_F(StringColumnTest, GetReturnsAppendedValues) {
  ASSERT_EQ(col_.size(), values_.size());
  for (size_t i = 0; i < values_.size(); ++i) ASSERT_EQ(col_.Get(i), values_[i]);
}

TEST_F(StringColumnTest, WindowedCountsMatchNaive) {
  const std::string v = values_[33];
  const std::string p = "www.site2.com";
  for (size_t l = 0; l <= values_.size(); l += 111) {
    for (size_t r = l; r <= values_.size(); r += 97) {
      size_t eq = 0, pf = 0;
      for (size_t i = l; i < r; ++i) {
        eq += values_[i] == v;
        pf += values_[i].compare(0, p.size(), p) == 0;
      }
      ASSERT_EQ(col_.CountEquals(v, l, r), eq) << l << ":" << r;
      ASSERT_EQ(col_.CountPrefix(p, l, r), pf) << l << ":" << r;
    }
  }
}

TEST_F(StringColumnTest, RowsWithPrefixMatchesNaive) {
  const std::string p = "www.site1.com/sec3";
  const size_t l = 50, r = 400;
  std::vector<size_t> expect;
  for (size_t i = l; i < r; ++i) {
    if (values_[i].compare(0, p.size(), p) == 0) expect.push_back(i);
  }
  EXPECT_EQ(col_.RowsWithPrefix(p, l, r), expect);
  EXPECT_TRUE(col_.RowsWithPrefix("no.such.prefix", 0, values_.size()).empty());
}

TEST_F(StringColumnTest, GroupCountMatchesNaive) {
  const size_t l = 100, r = 350;
  std::map<std::string, size_t> expect;
  for (size_t i = l; i < r; ++i) ++expect[values_[i]];
  EXPECT_EQ(col_.GroupCount(l, r), expect);
}

TEST_F(StringColumnTest, GroupCountWithPrefixMatchesNaive) {
  const std::string p = "www.site0.com";
  const size_t l = 60, r = 410;
  std::map<std::string, size_t> expect;
  for (size_t i = l; i < r; ++i) {
    if (values_[i].compare(0, p.size(), p) == 0) ++expect[values_[i]];
  }
  EXPECT_EQ(col_.GroupCountWithPrefix(p, l, r), expect);
  EXPECT_TRUE(col_.GroupCountWithPrefix("no.such", 0, values_.size()).empty());
  // Empty prefix degenerates to the unrestricted group count.
  EXPECT_EQ(col_.GroupCountWithPrefix("", l, r), col_.GroupCount(l, r));
}

TEST_F(StringColumnTest, FrequentValuesRespectsThreshold) {
  const size_t l = 0, r = values_.size(), t = 10;
  std::map<std::string, size_t> expect;
  {
    std::map<std::string, size_t> all;
    for (size_t i = l; i < r; ++i) ++all[values_[i]];
    for (const auto& [v, c] : all) {
      if (c >= t) expect[v] = c;
    }
  }
  EXPECT_EQ(col_.FrequentValues(l, r, t), expect);
}

TEST_F(StringColumnTest, ScanVisitsWindowInOrder) {
  const size_t l = 77, r = 243;
  size_t expect_i = l;
  col_.Scan(l, r, [&](size_t i, const std::string& v) {
    ASSERT_EQ(i, expect_i);
    ASSERT_EQ(v, values_[i]);
    ++expect_i;
  });
  EXPECT_EQ(expect_i, r);
}

TEST(StringColumn, MajorityInWindow) {
  StringColumn col;
  for (int i = 0; i < 6; ++i) col.Append("alpha");
  for (int i = 0; i < 3; ++i) col.Append("beta");
  col.Append("gamma");
  auto m = col.Majority(0, 10);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->first, "alpha");
  EXPECT_EQ(m->second, 6u);
  EXPECT_EQ(col.Majority(4, 10), std::nullopt);  // alpha x2, beta x3, gamma x1
  auto window = col.Majority(6, 10);  // beta x3 of 4 is a strict majority
  ASSERT_TRUE(window.has_value());
  EXPECT_EQ(window->first, "beta");
}

// ----------------------------------------------------------------- IntColumn

TEST(IntColumn, EqualityAndGroupCount) {
  IntColumn col;
  std::mt19937_64 rng(5);
  std::vector<uint64_t> vals;
  // Large-universe values, small working alphabet (the Section 6 setting).
  std::vector<uint64_t> alphabet{7, uint64_t(1) << 60, 42, 999999999999ull};
  for (int i = 0; i < 300; ++i) {
    vals.push_back(alphabet[rng() % alphabet.size()]);
    col.Append(vals.back());
  }
  ASSERT_EQ(col.size(), vals.size());
  ASSERT_EQ(col.NumDistinct(), alphabet.size());
  for (size_t i = 0; i < vals.size(); i += 13) ASSERT_EQ(col.Get(i), vals[i]);
  for (uint64_t probe : alphabet) {
    size_t c = 0;
    for (size_t i = 100; i < 250; ++i) c += vals[i] == probe;
    ASSERT_EQ(col.CountEquals(probe, 100, 250), c) << probe;
  }
  std::map<uint64_t, size_t> expect;
  for (size_t i = 50; i < 200; ++i) ++expect[vals[i]];
  EXPECT_EQ(col.GroupCount(50, 200), expect);
  EXPECT_EQ(col.CountEquals(uint64_t(12345), 0, vals.size()), 0u);
}

TEST(IntColumn, SelectFindsKthOccurrence) {
  IntColumn col;
  for (uint64_t i = 0; i < 60; ++i) col.Append(i % 3);
  EXPECT_EQ(col.SelectEquals(1, 0), std::optional<size_t>(1));
  EXPECT_EQ(col.SelectEquals(1, 5), std::optional<size_t>(16));
  EXPECT_EQ(col.SelectEquals(1, 20), std::nullopt);
}

// --------------------------------------------------------------------- Table

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override
  {
    table_ = std::make_unique<Table>(std::vector<ColumnSpec>{
        {"url", ColumnType::kString},
        {"status", ColumnType::kInt},
        {"agent", ColumnType::kString},
    });
    UrlLogGenerator gen({.num_domains = 6, .paths_per_domain = 5, .seed = 3});
    std::mt19937_64 rng(9);
    const std::vector<std::string> agents{"bot", "firefox", "chrome"};
    const std::vector<uint64_t> statuses{200, 200, 200, 404, 500};
    for (int i = 0; i < 400; ++i) {
      urls_.push_back(gen.Next());
      status_.push_back(statuses[rng() % statuses.size()]);
      agent_.push_back(agents[rng() % agents.size()]);
      table_->AppendRow({urls_.back(), status_.back(), agent_.back()});
    }
  }

  std::unique_ptr<Table> table_;
  std::vector<std::string> urls_;
  std::vector<uint64_t> status_;
  std::vector<std::string> agent_;
};

TEST_F(TableTest, SchemaAndRowCount) {
  EXPECT_EQ(table_->num_rows(), 400u);
  EXPECT_EQ(table_->num_columns(), 3u);
  EXPECT_EQ(table_->schema()[1].name, "status");
}

TEST_F(TableTest, GetRowReconstructsAllColumns) {
  for (size_t row : {size_t(0), size_t(57), size_t(399)}) {
    const auto cells = table_->GetRow(row);
    ASSERT_EQ(cells.size(), 3u);
    EXPECT_EQ(std::get<std::string>(cells[0]), urls_[row]);
    EXPECT_EQ(std::get<uint64_t>(cells[1]), status_[row]);
    EXPECT_EQ(std::get<std::string>(cells[2]), agent_[row]);
  }
}

TEST_F(TableTest, WindowedCountsMatchNaive) {
  const size_t from = 100, to = 300;
  size_t eq404 = 0, prefix = 0, bots = 0;
  for (size_t i = from; i < to; ++i) {
    eq404 += status_[i] == 404;
    prefix += urls_[i].compare(0, 13, "www.site0.com") == 0;
    bots += agent_[i] == "bot";
  }
  EXPECT_EQ(table_->CountEquals("status", uint64_t(404), from, to), eq404);
  EXPECT_EQ(table_->CountPrefix("url", "www.site0.com", from, to), prefix);
  EXPECT_EQ(table_->CountEquals("agent", std::string("bot"), from, to), bots);
}

TEST_F(TableTest, ConjunctiveFilterMatchesNaive) {
  std::vector<size_t> expect;
  for (size_t i = 0; i < urls_.size(); ++i) {
    if (urls_[i].compare(0, 13, "www.site1.com") == 0 && status_[i] == 404) {
      expect.push_back(i);
    }
  }
  EXPECT_EQ(table_->RowsWherePrefixAndEquals("url", "www.site1.com", "status",
                                             CellValue(uint64_t(404))),
            expect);
}

TEST_F(TableTest, TopKOrdersByFrequency) {
  const auto top = table_->TopK("agent", 2);
  ASSERT_EQ(top.size(), 2u);
  std::map<std::string, size_t> counts;
  for (const auto& a : agent_) ++counts[a];
  // The top-1 must be the true argmax.
  size_t best = 0;
  for (const auto& [v, c] : counts) best = std::max(best, c);
  EXPECT_EQ(top[0].second, best);
  EXPECT_GE(top[0].second, top[1].second);
}

TEST_F(TableTest, MajorityStatusInStableWindow) {
  // Build a window guaranteed to have a 200-majority by construction check.
  size_t c200 = 0;
  for (size_t i = 0; i < 50; ++i) c200 += status_[i] == 200;
  Table t(std::vector<ColumnSpec>{{"s", ColumnType::kString}});
  for (size_t i = 0; i < 50; ++i) {
    t.AppendRow({std::to_string(status_[i])});
  }
  const auto m = t.Majority("s");
  if (2 * c200 > 50) {
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->first, "200");
    EXPECT_EQ(m->second, c200);
  } else {
    EXPECT_EQ(m, std::nullopt);
  }
}

TEST_F(TableTest, WindowClampsToRowCount) {
  EXPECT_EQ(table_->CountPrefix("url", "www.", 0, SIZE_MAX), 400u);
  EXPECT_EQ(table_->CountPrefix("url", "www.", 500, 600), 0u);
}

TEST_F(TableTest, ColumnSizesAreTracked) {
  EXPECT_GT(table_->ColumnSizeInBits("url"), 0u);
  EXPECT_GT(table_->SizeInBits(), table_->ColumnSizeInBits("url"));
}

TEST(Table, FrequentValuesWindowed) {
  Table t(std::vector<ColumnSpec>{{"k", ColumnType::kString}});
  for (int round = 0; round < 20; ++round) {
    t.AppendRow({std::string("hot")});
    if (round % 2 == 0) t.AppendRow({std::string("warm")});
    if (round % 10 == 0) t.AppendRow({std::string("cold")});
  }
  const auto freq = t.FrequentValues("k", 10);
  EXPECT_EQ(freq.count("hot"), 1u);
  EXPECT_EQ(freq.count("warm"), 1u);
  EXPECT_EQ(freq.count("cold"), 0u);
}

}  // namespace
}  // namespace wt
