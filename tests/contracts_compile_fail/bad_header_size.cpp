// MUST NOT COMPILE (ctest WILL_FAIL): a serialized struct whose size
// drifted from the pinned layout. Models the exact accident
// layout_contracts.hpp exists to catch — someone widens or appends a field
// to an on-disk header and every existing store becomes unreadable. The
// contract has to fire at compile time, and this target proves it does.
#include <cstdint>

#include "common/layout_contracts.hpp"

namespace {

// ImageHeader with one extra field: 64 bytes, not the pinned 56.
struct DriftedImageHeader {
  uint64_t magic = 0;
  uint32_t version = 0;
  uint32_t codec_id = 0;
  uint64_t total_bytes = 0;
  uint64_t n = 0;
  uint64_t encoded_bits = 0;
  uint32_t section_count = 0;
  uint32_t reserved = 0;
  uint64_t body_hash = 0;
  uint64_t sneaky_new_field = 0;  // the drift
};

static_assert(wt::contracts::PinnedLayout<DriftedImageHeader, 56, 8>());

}  // namespace

int main() { return 0; }
