// MUST NOT COMPILE (ctest WILL_FAIL): a sequence policy without the
// capability flags (kMutable/kFullyDynamic/...) does not model
// SequencePolicy — the facade's compile-time gates depend on them.
#include "common/layout_contracts.hpp"
#include "core/wavelet_trie.hpp"

namespace {

struct FlaglessPolicy {
  using Trie = wt::WaveletTrie;
  static constexpr uint8_t kPolicyId = 99;
  // no kMutable / kFullyDynamic / kName
};

static_assert(wt::contracts::SequencePolicy<FlaglessPolicy>);

}  // namespace

int main() { return 0; }
