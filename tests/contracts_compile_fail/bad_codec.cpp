// MUST NOT COMPILE (ctest WILL_FAIL): a codec missing Decode does not
// model the Codec concept. Proves the concept actually constrains custom
// codecs instead of silently accepting anything with an Encode.
#include <string>

#include "common/bit_string.hpp"
#include "common/layout_contracts.hpp"

namespace {

struct EncodeOnlyCodec {
  using Value = std::string;
  wt::BitString Encode(const std::string&) const { return {}; }
  // no Decode
};

static_assert(wt::contracts::Codec<EncodeOnlyCodec>);

}  // namespace

int main() { return 0; }
