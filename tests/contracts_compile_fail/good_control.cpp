// MUST COMPILE: positive control for the compile-fail suite. Uses the same
// headers, machinery, and build flags as the bad_* cases, so when those
// fail to build it is because their static_asserts fired — not because an
// include path or flag broke for everything.
#include "common/layout_contracts.hpp"

namespace {

static_assert(
    wt::contracts::PinnedLayout<wt::storage::ImageHeader, 56, 8>());
static_assert(wt::contracts::Codec<wt::ByteCodec>);
static_assert(wt::contracts::SequencePolicy<wtrie::Static>);

}  // namespace

int main() { return 0; }
