// Property tests for the dynamic bitvectors: DynamicBitVector (RLE+gamma,
// paper Theorem 4.9) and GapBitVector (gap+delta, the Makinen--Navarro [18]
// baseline kept for the Remark 4.2 ablation).
//
// The two share the BitTree machinery, so they are tested through a typed
// suite: long random interleavings of Insert/Erase/Append against a
// std::vector<bool> reference, with periodic full-structure invariant checks.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "bitvector/dynamic_bit_vector.hpp"
#include "bitvector/gap_bit_vector.hpp"

namespace wt {
namespace {

template <typename BV>
class DynamicBvTypedTest : public ::testing::Test {};

using Implementations = ::testing::Types<DynamicBitVector, GapBitVector>;
TYPED_TEST_SUITE(DynamicBvTypedTest, Implementations);

template <typename BV>
void FullCompare(const BV& bv, const std::vector<bool>& ref) {
  ASSERT_EQ(bv.size(), ref.size());
  size_t ones = 0;
  std::vector<size_t> ones_pos, zeros_pos;
  for (size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(bv.Get(i), ref[i]) << "Get at " << i;
    ASSERT_EQ(bv.Rank1(i), ones) << "Rank1 at " << i;
    if (ref[i])
      ones_pos.push_back(i);
    else
      zeros_pos.push_back(i);
    ones += ref[i];
  }
  ASSERT_EQ(bv.Rank1(ref.size()), ones);
  ASSERT_EQ(bv.num_ones(), ones);
  for (size_t k = 0; k < ones_pos.size(); ++k) {
    ASSERT_EQ(bv.Select1(k), ones_pos[k]) << "Select1 " << k;
  }
  for (size_t k = 0; k < zeros_pos.size(); ++k) {
    ASSERT_EQ(bv.Select0(k), zeros_pos[k]) << "Select0 " << k;
  }
}

TYPED_TEST(DynamicBvTypedTest, AppendOnlyStream) {
  TypeParam bv;
  std::vector<bool> ref;
  std::mt19937_64 rng(101);
  for (int i = 0; i < 20000; ++i) {
    const bool b = (rng() % 7) < 2;  // ~29% ones, runs appear naturally
    bv.Append(b);
    ref.push_back(b);
  }
  bv.CheckInvariants();
  FullCompare(bv, ref);
}

TYPED_TEST(DynamicBvTypedTest, RandomInsertions) {
  TypeParam bv;
  std::vector<bool> ref;
  std::mt19937_64 rng(202);
  for (int i = 0; i < 8000; ++i) {
    const size_t pos = rng() % (ref.size() + 1);
    const bool b = rng() % 2;
    bv.Insert(pos, b);
    ref.insert(ref.begin() + static_cast<ptrdiff_t>(pos), b);
    if (i % 1000 == 999) bv.CheckInvariants();
  }
  bv.CheckInvariants();
  FullCompare(bv, ref);
}

TYPED_TEST(DynamicBvTypedTest, InsertThenDrainWithErase) {
  TypeParam bv;
  std::vector<bool> ref;
  std::mt19937_64 rng(303);
  for (int i = 0; i < 6000; ++i) {
    const size_t pos = rng() % (ref.size() + 1);
    const bool b = (rng() % 4) == 0;
    bv.Insert(pos, b);
    ref.insert(ref.begin() + static_cast<ptrdiff_t>(pos), b);
  }
  bv.CheckInvariants();
  while (!ref.empty()) {
    const size_t pos = rng() % ref.size();
    const bool expect = ref[pos];
    ASSERT_EQ(bv.Erase(pos), expect) << "erase at " << pos;
    ref.erase(ref.begin() + static_cast<ptrdiff_t>(pos));
    if (ref.size() % 1024 == 0) {
      bv.CheckInvariants();
      // Spot-check a few queries mid-drain.
      if (!ref.empty()) {
        const size_t q = rng() % ref.size();
        size_t ones = 0;
        for (size_t j = 0; j < q; ++j) ones += ref[j];
        ASSERT_EQ(bv.Rank1(q), ones);
      }
    }
  }
  EXPECT_EQ(bv.size(), 0u);
  EXPECT_EQ(bv.num_ones(), 0u);
}

TYPED_TEST(DynamicBvTypedTest, MixedChurn) {
  TypeParam bv;
  std::vector<bool> ref;
  std::mt19937_64 rng(404);
  for (int step = 0; step < 30000; ++step) {
    const int op = rng() % 10;
    if (op < 5 || ref.empty()) {  // insert
      const size_t pos = rng() % (ref.size() + 1);
      const bool b = rng() % 2;
      bv.Insert(pos, b);
      ref.insert(ref.begin() + static_cast<ptrdiff_t>(pos), b);
    } else if (op < 8) {  // erase
      const size_t pos = rng() % ref.size();
      ASSERT_EQ(bv.Erase(pos), ref[pos]);
      ref.erase(ref.begin() + static_cast<ptrdiff_t>(pos));
    } else {  // query
      const size_t pos = rng() % (ref.size() + 1);
      size_t ones = 0;
      for (size_t j = 0; j < pos; ++j) ones += ref[j];
      ASSERT_EQ(bv.Rank1(pos), ones);
      if (pos < ref.size()) {
        ASSERT_EQ(bv.Get(pos), ref[pos]);
      }
    }
    if (step % 5000 == 4999) bv.CheckInvariants();
  }
  FullCompare(bv, ref);
}

TYPED_TEST(DynamicBvTypedTest, InitZeros) {
  TypeParam bv(false, 100000);
  EXPECT_EQ(bv.size(), 100000u);
  EXPECT_EQ(bv.num_ones(), 0u);
  EXPECT_EQ(bv.Rank1(50000), 0u);
  EXPECT_EQ(bv.Select0(99999), 99999u);
  bv.CheckInvariants();
  // Mutations after Init must behave.
  bv.Insert(500, true);
  EXPECT_EQ(bv.Select1(0), 500u);
  EXPECT_EQ(bv.Rank1(501), 1u);
  EXPECT_EQ(bv.size(), 100001u);
  EXPECT_FALSE(bv.Erase(0));
  EXPECT_EQ(bv.Select1(0), 499u);
  bv.CheckInvariants();
}

TYPED_TEST(DynamicBvTypedTest, InitOnes) {
  TypeParam bv(true, 20000);
  EXPECT_EQ(bv.size(), 20000u);
  EXPECT_EQ(bv.num_ones(), 20000u);
  EXPECT_EQ(bv.Rank1(12345), 12345u);
  EXPECT_EQ(bv.Select1(19999), 19999u);
  bv.CheckInvariants();
  bv.Insert(7, false);
  EXPECT_EQ(bv.Select0(0), 7u);
  EXPECT_TRUE(bv.Erase(20000));
  bv.CheckInvariants();
}

TYPED_TEST(DynamicBvTypedTest, IteratorFullScan) {
  TypeParam bv;
  std::vector<bool> ref;
  std::mt19937_64 rng(505);
  for (int i = 0; i < 15000; ++i) {
    const size_t pos = rng() % (ref.size() + 1);
    const bool b = (rng() % 5) == 0;
    bv.Insert(pos, b);
    ref.insert(ref.begin() + static_cast<ptrdiff_t>(pos), b);
  }
  for (size_t start : {size_t(0), size_t(1), size_t(777), ref.size() - 1}) {
    auto it = bv.IteratorAt(start);
    for (size_t i = start; i < ref.size(); ++i) {
      ASSERT_EQ(it.Next(), ref[i]) << "iterator at " << i << " from " << start;
    }
  }
}

TYPED_TEST(DynamicBvTypedTest, EmptyAndSingle) {
  TypeParam bv;
  EXPECT_EQ(bv.size(), 0u);
  EXPECT_EQ(bv.Rank1(0), 0u);
  bv.Append(true);
  EXPECT_EQ(bv.size(), 1u);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_EQ(bv.Select1(0), 0u);
  EXPECT_TRUE(bv.Erase(0));
  EXPECT_EQ(bv.size(), 0u);
  bv.CheckInvariants();
}

TYPED_TEST(DynamicBvTypedTest, SparseOnesCompressWell) {
  // 100k bits with ~200 isolated ones: both encodings compress (gap encodes
  // one delta code per 1; RLE encodes two runs per 1).
  TypeParam bv;
  std::mt19937_64 rng(606);
  size_t total = 0;
  for (int i = 0; i < 200; ++i) {
    const size_t zeros = 300 + rng() % 400;
    for (size_t j = 0; j < zeros; ++j) bv.Append(false);
    bv.Append(true);
    total += zeros + 1;
  }
  EXPECT_EQ(bv.size(), total);
  EXPECT_EQ(bv.num_ones(), 200u);
  bv.CheckInvariants();
  EXPECT_LT(bv.SizeInBits(), total / 4);
}

TEST(DynamicBitVector, AlternatingRunsCompressWell) {
  // Runs of *both* bit values compress under RLE (but not under gap
  // encoding, which pays one code per 1 — see Remark 4.2 ablation).
  DynamicBitVector bv;
  std::mt19937_64 rng(607);
  bool bit = false;
  size_t total = 0;
  for (int run = 0; run < 100; ++run) {
    const size_t len = 500 + rng() % 1000;
    for (size_t i = 0; i < len; ++i) bv.Append(bit);
    total += len;
    bit = !bit;
  }
  bv.CheckInvariants();
  EXPECT_LT(bv.SizeInBits(), total / 4);
}

// --------------------------------------------------------- RLE-specific

TEST(DynamicBitVector, InitIsCheapForBothBits) {
  // Remark 4.2: the RLE encoding admits O(log n) Init for *both* bit values.
  for (bool bit : {false, true}) {
    DynamicBitVector bv(bit, size_t(1) << 30);  // a billion bits
    EXPECT_EQ(bv.size(), size_t(1) << 30);
    EXPECT_EQ(bv.num_ones(), bit ? (size_t(1) << 30) : 0u);
    EXPECT_LT(bv.SizeInBits(), 10000u);  // constant-sized representation
    EXPECT_EQ(bv.Rank(bit, 123456789), 123456789u);
  }
}

TEST(GapBitVector, InitOnesIsLinearInN) {
  // The gap encoding materializes one code per 1: size grows with n.
  GapBitVector small(true, 1024);
  GapBitVector big(true, 64 * 1024);
  // 64x the ones -> ~linearly more encoded gaps (fixed overhead dilutes the
  // ratio slightly below the full 64x).
  EXPECT_GT(big.SizeInBits(), 16 * small.SizeInBits());
  // But zeros stay cheap (single tail field).
  GapBitVector zeros(false, size_t(1) << 30);
  EXPECT_LT(zeros.SizeInBits(), 10000u);
}

TEST(DynamicBitVector, BigInitThenEdits) {
  DynamicBitVector bv(false, 1 << 20);
  std::mt19937_64 rng(707);
  std::vector<size_t> one_positions;
  for (int i = 0; i < 300; ++i) {
    const size_t pos = rng() % bv.size();
    bv.Insert(pos, true);
  }
  EXPECT_EQ(bv.num_ones(), 300u);
  EXPECT_EQ(bv.size(), (1u << 20) + 300);
  bv.CheckInvariants();
  // Selects must enumerate exactly the inserted ones, in order.
  size_t prev = 0;
  for (size_t k = 0; k < 300; ++k) {
    const size_t p = bv.Select1(k);
    ASSERT_TRUE(bv.Get(p));
    ASSERT_GE(p, prev);
    prev = p;
  }
}

}  // namespace
}  // namespace wt
