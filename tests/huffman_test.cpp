// Tests for canonical Huffman codes (coding/huffman.hpp) and the
// Huffman-shaped Wavelet Tree (core/huffman_wavelet_tree.hpp) — the
// Section 3 "Huffman code mapping" instance of the Wavelet Trie.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <random>
#include <sstream>
#include <vector>

#include "coding/huffman.hpp"
#include "core/huffman_wavelet_tree.hpp"
#include "util/workloads.hpp"

namespace wt {
namespace {

// ---------------------------------------------------------------- HuffmanCode

TEST(HuffmanCode, SingleSymbolGetsOneBit) {
  HuffmanCode code({{42, 10}});
  EXPECT_EQ(code.num_symbols(), 1u);
  EXPECT_EQ(code.Encode(42).ToString(), "0");
  EXPECT_EQ(code.Decode(BitString::FromString("0").Span()),
            (std::pair<uint64_t, size_t>{42, 1}));
}

TEST(HuffmanCode, TwoEqualSymbolsGetOneBitEach) {
  HuffmanCode code({{5, 1}, {9, 1}});
  EXPECT_EQ(*code.Length(5), 1u);
  EXPECT_EQ(*code.Length(9), 1u);
  EXPECT_NE(code.Encode(5).ToString(), code.Encode(9).ToString());
}

TEST(HuffmanCode, SkewedFrequenciesGiveShorterCodesToFrequentSymbols) {
  // freqs 8:4:2:1:1 -> lengths 1,2,3,4,4 (textbook).
  HuffmanCode code({{0, 8}, {1, 4}, {2, 2}, {3, 1}, {4, 1}});
  EXPECT_EQ(*code.Length(0), 1u);
  EXPECT_EQ(*code.Length(1), 2u);
  EXPECT_EQ(*code.Length(2), 3u);
  EXPECT_EQ(*code.Length(3), 4u);
  EXPECT_EQ(*code.Length(4), 4u);
}

TEST(HuffmanCode, CodewordsArePrefixFree) {
  std::vector<std::pair<uint64_t, uint64_t>> freqs;
  std::mt19937_64 rng(3);
  for (uint64_t s = 0; s < 40; ++s) freqs.push_back({s * 977, 1 + rng() % 1000});
  HuffmanCode code(freqs);
  std::vector<BitString> words;
  for (const auto& [sym, f] : freqs) words.push_back(code.Encode(sym));
  for (size_t i = 0; i < words.size(); ++i) {
    for (size_t j = 0; j < words.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(words[i].Span().IsPrefixOf(words[j].Span()))
          << words[i].ToString() << " prefixes " << words[j].ToString();
    }
  }
}

TEST(HuffmanCode, DecodeInvertsEncode) {
  std::vector<std::pair<uint64_t, uint64_t>> freqs;
  std::mt19937_64 rng(11);
  for (uint64_t s = 0; s < 64; ++s) freqs.push_back({rng(), 1 + rng() % 500});
  HuffmanCode code(freqs);
  for (const auto& [sym, f] : freqs) {
    const BitString cw = code.Encode(sym);
    const auto [dec, len] = code.Decode(cw.Span());
    EXPECT_EQ(dec, sym);
    EXPECT_EQ(len, cw.size());
  }
}

TEST(HuffmanCode, DecodeConsumesOnlyTheCodeword) {
  HuffmanCode code({{1, 3}, {2, 2}, {3, 1}});
  BitString stream = code.Encode(3);
  stream.Append(code.Encode(1));
  const auto [first, len] = code.Decode(stream.Span());
  EXPECT_EQ(first, 3u);
  const auto [second, len2] = code.Decode(stream.SubSpan(len));
  EXPECT_EQ(second, 1u);
  EXPECT_EQ(len + len2, stream.size());
}

TEST(HuffmanCode, AverageLengthWithinOneBitOfEntropy) {
  // Shannon: H0 <= avg codeword length < H0 + 1.
  std::mt19937_64 rng(5);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::pair<uint64_t, uint64_t>> freqs;
    uint64_t total = 0;
    const size_t sigma = 2 + rng() % 100;
    for (uint64_t s = 0; s < sigma; ++s) {
      const uint64_t f = 1 + rng() % 10000;
      freqs.push_back({s, f});
      total += f;
    }
    double h0 = 0;
    for (const auto& [sym, f] : freqs) {
      const double p = double(f) / double(total);
      h0 -= p * std::log2(p);
    }
    const double avg = double(HuffmanCode(freqs).EncodedBits(freqs)) / double(total);
    EXPECT_GE(avg + 1e-9, h0) << "round " << round;
    EXPECT_LT(avg, h0 + 1.0) << "round " << round;
  }
}

TEST(HuffmanCode, CanonicalCodesAreOrderedWithinLength) {
  // Canonical property: among symbols of equal length, codes increase with
  // symbol order, and as integers code(len k) values are contiguous.
  HuffmanCode code({{10, 5}, {20, 5}, {30, 5}, {40, 5}});
  // All lengths are 2; codewords must be 00, 01, 10, 11 in symbol order.
  EXPECT_EQ(code.Encode(10).ToString(), "00");
  EXPECT_EQ(code.Encode(20).ToString(), "01");
  EXPECT_EQ(code.Encode(30).ToString(), "10");
  EXPECT_EQ(code.Encode(40).ToString(), "11");
}

TEST(HuffmanCode, SparseAlphabetSupported) {
  HuffmanCode code({{uint64_t(1) << 63, 4}, {0, 2}, {977, 1}});
  EXPECT_TRUE(code.Contains(uint64_t(1) << 63));
  EXPECT_TRUE(code.Contains(0));
  EXPECT_FALSE(code.Contains(976));
  EXPECT_EQ(code.Length(976), std::nullopt);
}

TEST(HuffmanCode, SaveLoadRoundTrip) {
  std::mt19937_64 rng(17);
  std::vector<std::pair<uint64_t, uint64_t>> freqs;
  for (uint64_t s = 0; s < 30; ++s) freqs.push_back({rng() % 10000, 1 + rng() % 99});
  std::sort(freqs.begin(), freqs.end());
  freqs.erase(std::unique(freqs.begin(), freqs.end(),
                          [](auto& a, auto& b) { return a.first == b.first; }),
              freqs.end());
  HuffmanCode code(freqs);
  std::stringstream ss;
  code.Save(ss);
  HuffmanCode loaded;
  loaded.Load(ss);
  for (const auto& [sym, f] : freqs) {
    EXPECT_EQ(loaded.Encode(sym).ToString(), code.Encode(sym).ToString());
  }
}

// ------------------------------------------------------- HuffmanWaveletTree

TEST(HuffmanWaveletTree, EmptySequence) {
  HuffmanWaveletTree hwt;
  EXPECT_EQ(hwt.size(), 0u);
  EXPECT_TRUE(hwt.empty());
  EXPECT_EQ(hwt.Rank(7, 0), 0u);
  EXPECT_EQ(hwt.Select(7, 0), std::nullopt);
}

TEST(HuffmanWaveletTree, ConstantSequence) {
  std::vector<uint64_t> seq(100, 9);
  HuffmanWaveletTree hwt(seq);
  EXPECT_EQ(hwt.NumDistinct(), 1u);
  EXPECT_EQ(hwt.Access(57), 9u);
  EXPECT_EQ(hwt.Rank(9, 100), 100u);
  EXPECT_EQ(*hwt.Select(9, 99), 99u);
  EXPECT_EQ(hwt.Select(9, 100), std::nullopt);
  EXPECT_EQ(hwt.Rank(8, 100), 0u);
}

TEST(HuffmanWaveletTree, MatchesNaiveOnAbracadabra) {
  // The paper's Figure 1 sequence, as integers a=0 b=1 c=2 d=3 r=4.
  const std::vector<uint64_t> seq{0, 1, 4, 0, 2, 0, 3, 0, 1, 4, 0};
  HuffmanWaveletTree hwt(seq);
  EXPECT_EQ(hwt.size(), seq.size());
  EXPECT_EQ(hwt.NumDistinct(), 5u);
  for (size_t i = 0; i < seq.size(); ++i) EXPECT_EQ(hwt.Access(i), seq[i]);
  // 'a' (freq 5 of 11) must get the shortest codeword.
  for (uint64_t s = 1; s <= 4; ++s) {
    EXPECT_LE(*hwt.code().Length(0), *hwt.code().Length(s));
  }
  EXPECT_EQ(hwt.Rank(0, 11), 5u);
  EXPECT_EQ(hwt.Rank(4, 11), 2u);
  EXPECT_EQ(*hwt.Select(4, 1), 9u);
}

struct HwtParam {
  size_t n;
  size_t distinct;
  IntDistribution dist;
  uint64_t seed;
};

class HuffmanWaveletTreeProperty : public ::testing::TestWithParam<HwtParam> {};

TEST_P(HuffmanWaveletTreeProperty, MatchesNaiveCounts) {
  const auto p = GetParam();
  const auto seq = GenerateIntegers(p.n, p.distinct, p.dist, p.seed);
  HuffmanWaveletTree hwt(seq);
  ASSERT_EQ(hwt.size(), seq.size());

  // Access everywhere.
  for (size_t i = 0; i < seq.size(); ++i) ASSERT_EQ(hwt.Access(i), seq[i]) << i;

  // Rank at sampled positions against a running count.
  std::map<uint64_t, size_t> counts;
  for (size_t i = 0; i <= seq.size(); ++i) {
    if (i % 97 == 0 || i == seq.size()) {
      for (const auto& [sym, c] : counts) {
        ASSERT_EQ(hwt.Rank(sym, i), c) << "sym " << sym << " pos " << i;
      }
    }
    if (i < seq.size()) ++counts[seq[i]];
  }

  // Select inverts Rank for every occurrence of a few symbols.
  size_t probed = 0;
  for (const auto& [sym, total] : counts) {
    if (probed++ % 5 != 0) continue;
    for (size_t k = 0; k < total; k += (total / 7 + 1)) {
      const auto pos = hwt.Select(sym, k);
      ASSERT_TRUE(pos.has_value());
      ASSERT_EQ(seq[*pos], sym);
      ASSERT_EQ(hwt.Rank(sym, *pos), k);
    }
    ASSERT_EQ(hwt.Select(sym, total), std::nullopt);
  }
}

TEST_P(HuffmanWaveletTreeProperty, SpaceTracksEntropy) {
  const auto p = GetParam();
  const auto seq = GenerateIntegers(p.n, p.distinct, p.dist, p.seed);
  HuffmanWaveletTree hwt(seq);
  std::map<uint64_t, size_t> counts;
  for (uint64_t v : seq) ++counts[v];
  double h0 = 0;
  for (const auto& [sym, c] : counts) {
    const double q = double(c) / double(seq.size());
    h0 -= q * std::log2(q);
  }
  // Bitvector payload ~ Huffman-encoded size < n(H0+1); the whole structure
  // also carries the model (symbols + lengths) and sub-linear directories.
  const double payload_budget =
      double(seq.size()) * (h0 + 1.0) +
      double(counts.size()) * 192.0 +  // model + per-node constants
      4096.0;
  EXPECT_LT(double(hwt.trie().SizeInBits()), payload_budget * 1.35);
}

TEST_P(HuffmanWaveletTreeProperty, DistinctInRangeMatchesNaive) {
  const auto p = GetParam();
  const auto seq = GenerateIntegers(p.n, p.distinct, p.dist, p.seed);
  HuffmanWaveletTree hwt(seq);
  const size_t l = p.n / 5, r = std::min(p.n, l + p.n / 3 + 1);
  std::map<uint64_t, size_t> expect;
  for (size_t i = l; i < r; ++i) ++expect[seq[i]];
  std::map<uint64_t, size_t> got;
  hwt.DistinctInRange(l, r, [&](uint64_t sym, size_t c) { got[sym] = c; });
  EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HuffmanWaveletTreeProperty,
    ::testing::Values(HwtParam{500, 3, IntDistribution::kUniform, 1},
                      HwtParam{1000, 17, IntDistribution::kZipf, 2},
                      HwtParam{2000, 64, IntDistribution::kUniform, 3},
                      HwtParam{3000, 200, IntDistribution::kZipf, 4},
                      HwtParam{1500, 40, IntDistribution::kClustered, 5},
                      HwtParam{4000, 999, IntDistribution::kZipf, 6}));

TEST(HuffmanWaveletTree, HuffmanShapeBeatsBalancedOnSkew) {
  // With a heavily skewed distribution the Huffman shape's total bitvector
  // length (~nH0) is far below the balanced shape's n*ceil(log sigma).
  const size_t n = 20000;
  std::mt19937_64 rng(8);
  std::vector<uint64_t> seq;
  seq.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // 95% symbol 0, rest uniform over 255 others.
    seq.push_back(rng() % 100 < 95 ? 0 : 1 + rng() % 255);
  }
  HuffmanWaveletTree hwt(seq);
  // Frequent symbol has a 1-2 bit code; average height << log2(256) = 8.
  EXPECT_LE(*hwt.code().Length(0), 2u);
  EXPECT_GE(hwt.Height(), 8u);
  double avg_len = 0;
  std::map<uint64_t, size_t> counts;
  for (uint64_t v : seq) ++counts[v];
  for (const auto& [sym, c] : counts) avg_len += double(c) * double(*hwt.code().Length(sym));
  avg_len /= double(n);
  EXPECT_LT(avg_len, 3.0);
}

TEST(HuffmanWaveletTree, SaveLoadRoundTrip) {
  const auto seq = GenerateIntegers(800, 33, IntDistribution::kZipf, 12);
  HuffmanWaveletTree hwt(seq);
  std::stringstream ss;
  hwt.Save(ss);
  HuffmanWaveletTree loaded;
  loaded.Load(ss);
  ASSERT_EQ(loaded.size(), seq.size());
  for (size_t i = 0; i < seq.size(); i += 7) EXPECT_EQ(loaded.Access(i), seq[i]);
  EXPECT_EQ(loaded.Rank(seq[0], seq.size()), hwt.Rank(seq[0], seq.size()));
}

}  // namespace
}  // namespace wt
