// Tests for the de-amortized append-only bitvector (Lemma 4.8 realization),
// the incremental Rrr::Builder it relies on, the wavelet trie instantiated
// on it, and the LatencyRecorder utility.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "bitvector/append_only.hpp"
#include "bitvector/append_only_deamortized.hpp"
#include "bitvector/rrr.hpp"
#include "core/dynamic_wavelet_trie.hpp"
#include "util/stats.hpp"

namespace wt {
namespace {

// ------------------------------------------------------------- Rrr::Builder

TEST(RrrBuilder, MatchesEagerConstructionStepByStep) {
  std::mt19937_64 rng(2);
  for (size_t n : {size_t(0), size_t(1), size_t(63), size_t(64), size_t(4096),
                   size_t(10000)}) {
    BitArray bits;
    for (size_t i = 0; i < n; ++i) bits.PushBack(rng() % 3 == 0);
    const Rrr eager(bits);
    Rrr::Builder builder(bits.data(), bits.size());
    size_t steps = 0;
    while (!builder.Step(1)) ++steps;
    const Rrr built = builder.Take();
    ASSERT_EQ(built.size(), eager.size()) << n;
    for (size_t i = 0; i < n; i += 17) ASSERT_EQ(built.Get(i), eager.Get(i));
    for (size_t i = 0; i <= n; i += 13) ASSERT_EQ(built.Rank1(i), eager.Rank1(i));
    // Work was actually spread: one block (or the finish step) per Step().
    ASSERT_GE(steps, n / Rrr::kBlockBits) << n;
  }
}

TEST(RrrBuilder, StepWithLargeBudgetFinishesImmediately) {
  BitArray bits;
  for (size_t i = 0; i < 1000; ++i) bits.PushBack(i % 7 == 0);
  Rrr::Builder builder(bits.data(), bits.size());
  EXPECT_TRUE(builder.Step(SIZE_MAX));
  EXPECT_TRUE(builder.done());
  const Rrr r = builder.Take();
  EXPECT_EQ(r.Rank1(1000), (1000 + 6) / 7);
}

// ---------------------------------------- DeamortizedAppendOnlyBitVector

struct DeamParam {
  size_t n;
  uint32_t density_pct;  // P(bit = 1) in percent
  uint64_t seed;
};

class DeamortizedProperty : public ::testing::TestWithParam<DeamParam> {};

TEST_P(DeamortizedProperty, MatchesEagerVariantEverywhere) {
  const auto p = GetParam();
  std::mt19937_64 rng(p.seed);
  AppendOnlyBitVector eager;
  DeamortizedAppendOnlyBitVector deam;
  std::vector<bool> ref;
  for (size_t i = 0; i < p.n; ++i) {
    const bool b = rng() % 100 < p.density_pct;
    eager.Append(b);
    deam.Append(b);
    ref.push_back(b);
  }
  ASSERT_EQ(deam.size(), p.n);
  ASSERT_EQ(deam.num_ones(), eager.num_ones());

  // Access + Rank at sampled positions, including around chunk boundaries.
  size_t ones = 0;
  for (size_t i = 0; i < p.n; ++i) {
    const bool probe = i % 61 == 0 || (i % 4096) < 2 || (i % 4096) > 4093;
    if (probe) {
      ASSERT_EQ(deam.Get(i), static_cast<bool>(ref[i])) << i;
      ASSERT_EQ(deam.Rank1(i), ones) << i;
    }
    ones += ref[i];
  }
  ASSERT_EQ(deam.Rank1(p.n), ones);

  // Select inverts Rank for sampled ks.
  const size_t m = deam.num_ones();
  for (size_t k = 0; k < m; k += m / 37 + 1) {
    const size_t pos = deam.Select1(k);
    ASSERT_EQ(pos, eager.Select1(k)) << k;
    ASSERT_TRUE(ref[pos]);
    ASSERT_EQ(deam.Rank1(pos), k);
  }
  const size_t z = deam.num_zeros();
  for (size_t k = 0; k < z; k += z / 37 + 1) {
    ASSERT_EQ(deam.Select0(k), eager.Select0(k)) << k;
  }
}

TEST_P(DeamortizedProperty, QueriesCorrectWhileBuildPending) {
  // Stop right after a seal so a build is guaranteed in flight, then query.
  const auto p = GetParam();
  if (p.n < 4100) GTEST_SKIP() << "needs at least one sealed chunk";
  std::mt19937_64 rng(p.seed ^ 0x5A5A);
  DeamortizedAppendOnlyBitVector deam;
  std::vector<bool> ref;
  for (size_t i = 0; i < 4097; ++i) {  // one bit past the first seal
    const bool b = rng() % 100 < p.density_pct;
    deam.Append(b);
    ref.push_back(b);
  }
  ASSERT_TRUE(deam.HasPendingBuild());
  size_t ones = 0;
  for (size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(deam.Get(i), static_cast<bool>(ref[i])) << i;
    if (i % 97 == 0) {
      ASSERT_EQ(deam.Rank1(i), ones);
    }
    ones += ref[i];
  }
  if (deam.num_ones() > 0) {
    ASSERT_EQ(deam.Rank1(deam.Select1(deam.num_ones() - 1)),
              deam.num_ones() - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeamortizedProperty,
    ::testing::Values(DeamParam{100, 50, 1}, DeamParam{4096, 50, 2},
                      DeamParam{5000, 10, 3}, DeamParam{20000, 50, 4},
                      DeamParam{20000, 1, 5}, DeamParam{20000, 99, 6},
                      DeamParam{65536, 30, 7}));

TEST(DeamortizedAppendOnly, InitConstantRun) {
  DeamortizedAppendOnlyBitVector v(true, 1000);
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_EQ(v.num_ones(), 1000u);
  v.Append(false);
  v.Append(true);
  EXPECT_EQ(v.Rank1(1001), 1000u);
  EXPECT_EQ(v.Rank1(1002), 1001u);
  EXPECT_EQ(v.Select0(0), 1000u);
  EXPECT_EQ(v.Select1(1000), 1001u);
  EXPECT_EQ(v.Get(999), true);
  EXPECT_EQ(v.Get(1000), false);
}

TEST(DeamortizedAppendOnly, BuildCompletesLongBeforeNextSeal) {
  DeamortizedAppendOnlyBitVector v;
  for (size_t i = 0; i < 4096; ++i) v.Append(i % 2 == 0);
  EXPECT_TRUE(v.HasPendingBuild());
  // Two 63-bit blocks per append: 66 blocks finish within ~40 appends.
  for (size_t i = 0; i < 64; ++i) v.Append(false);
  EXPECT_FALSE(v.HasPendingBuild());
}

TEST(DeamortizedAppendOnly, SpaceMatchesEagerVariantPlusOneProxyChunk) {
  // Lemma 4.8's cost is bounded: at most one uncompressed chunk alive, so
  // the footprint tracks the eager variant within one chunk + counters.
  std::mt19937_64 rng(9);
  AppendOnlyBitVector eager;
  DeamortizedAppendOnlyBitVector deam;
  const size_t n = 1 << 18;
  for (size_t i = 0; i < n; ++i) {
    const bool b = rng() % 100 < 2;
    eager.Append(b);
    deam.Append(b);
  }
  EXPECT_LE(deam.SizeInBits(),
            eager.SizeInBits() + DeamortizedAppendOnlyBitVector::kChunkBits +
                4096);
}

// -------------------------------------- trie on the de-amortized bitvector

TEST(DeamortizedWaveletTrie, AppendAndQueryLikeTheEagerVariant) {
  AppendOnlyWaveletTrie eager;
  DeamortizedAppendOnlyWaveletTrie deam;
  std::mt19937_64 rng(4);
  std::vector<BitString> values;
  for (int i = 0; i < 26; ++i) {
    BitString s;
    for (int b = 0; b < 8; ++b) s.PushBack((i >> b) & 1);
    s.PushBack(true);  // keep the set prefix-free
    values.push_back(s);
  }
  std::vector<size_t> counts(values.size(), 0);
  for (int i = 0; i < 5000; ++i) {
    const size_t pick = rng() % values.size();
    eager.Append(values[pick].Span());
    deam.Append(values[pick].Span());
    ++counts[pick];
  }
  ASSERT_EQ(deam.size(), eager.size());
  ASSERT_EQ(deam.NumDistinct(), eager.NumDistinct());
  for (size_t v = 0; v < values.size(); ++v) {
    ASSERT_EQ(deam.Rank(values[v].Span(), deam.size()), counts[v]);
  }
  for (size_t i = 0; i < deam.size(); i += 307) {
    ASSERT_EQ(deam.Access(i), eager.Access(i)) << i;
  }
}

// ------------------------------------------------------------ LatencyRecorder

TEST(LatencyRecorder, PercentilesOfKnownDistribution) {
  LatencyRecorder rec;
  for (uint64_t v = 1; v <= 1000; ++v) rec.Record(v);
  EXPECT_EQ(rec.count(), 1000u);
  EXPECT_EQ(rec.Min(), 1u);
  EXPECT_EQ(rec.Max(), 1000u);
  EXPECT_EQ(rec.Percentile(0.5), 501u);   // nearest-rank on sorted 1..1000
  EXPECT_EQ(rec.Percentile(0.999), 1000u);
  EXPECT_EQ(rec.Percentile(0.0), 1u);
  EXPECT_EQ(rec.Percentile(1.0), 1000u);
  EXPECT_DOUBLE_EQ(rec.Mean(), 500.5);
}

TEST(LatencyRecorder, RecordAfterPercentileResorts) {
  LatencyRecorder rec;
  rec.Record(10);
  rec.Record(30);
  EXPECT_EQ(rec.Percentile(1.0), 30u);
  rec.Record(20);
  EXPECT_EQ(rec.Percentile(0.5), 20u);
  rec.Clear();
  rec.Record(7);
  EXPECT_EQ(rec.Max(), 7u);
}

}  // namespace
}  // namespace wt
