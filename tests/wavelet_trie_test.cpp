// Tests for the static WaveletTrie: the paper's Figure 2 example verified
// node by node, the full query API cross-checked against the naive oracle
// over randomized workloads and codecs, and the Section 5 range algorithms.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "core/codec.hpp"
#include "core/naive.hpp"
#include "core/wavelet_trie.hpp"

namespace wt {
namespace {

BitString BS(const std::string& s) { return BitString::FromString(s); }

std::vector<BitString> Figure2Sequence() {
  // <0001, 0011, 0100, 00100, 0100, 00100, 0100> (paper Figure 2).
  std::vector<BitString> seq;
  for (const char* s :
       {"0001", "0011", "0100", "00100", "0100", "00100", "0100"}) {
    seq.push_back(BS(s));
  }
  return seq;
}

// ------------------------------------------------------------- Figure 2

TEST(WaveletTrieFigure2, ExactNodeStructure) {
  WaveletTrie trie(Figure2Sequence());
  // The paper's Figure 2, derived from Definition 3.1, in preorder
  // (|Sset| = 4 distinct strings -> 3 internal nodes + 4 leaves):
  //   v0 root:               alpha=0,  beta=0010101
  //   v1   0-child:          alpha="", beta=0111
  //   v2     0-child:        leaf, alpha=1          (string 0001)
  //   v3     1-child:        alpha="", beta=100
  //   v4       0-child:      leaf, alpha=0          (string 00100)
  //   v5       1-child:      leaf, alpha=""         (string 0011)
  //   v6   1-child:          leaf, alpha=00         (string 0100)
  const auto nodes = trie.DebugNodes();
  ASSERT_EQ(nodes.size(), 7u);
  EXPECT_EQ(nodes[0].alpha, "0");
  EXPECT_EQ(nodes[0].beta, "0010101");
  EXPECT_FALSE(nodes[0].is_leaf);
  EXPECT_EQ(nodes[1].alpha, "");
  EXPECT_EQ(nodes[1].beta, "0111");
  EXPECT_FALSE(nodes[1].is_leaf);
  EXPECT_EQ(nodes[2].alpha, "1");
  EXPECT_TRUE(nodes[2].is_leaf);
  EXPECT_EQ(nodes[3].alpha, "");
  EXPECT_EQ(nodes[3].beta, "100");
  EXPECT_FALSE(nodes[3].is_leaf);
  EXPECT_EQ(nodes[4].alpha, "0");
  EXPECT_TRUE(nodes[4].is_leaf);
  EXPECT_EQ(nodes[5].alpha, "");
  EXPECT_TRUE(nodes[5].is_leaf);
  EXPECT_EQ(nodes[6].alpha, "00");
  EXPECT_TRUE(nodes[6].is_leaf);
}

TEST(WaveletTrieFigure2, AccessReconstructsSequence) {
  const auto seq = Figure2Sequence();
  WaveletTrie trie(seq);
  ASSERT_EQ(trie.size(), 7u);
  EXPECT_EQ(trie.NumDistinct(), 4u);
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(trie.Access(i).ToString(), seq[i].ToString()) << "pos " << i;
  }
}

TEST(WaveletTrieFigure2, RankAndSelect) {
  WaveletTrie trie(Figure2Sequence());
  // "0100" occurs at positions 2, 4, 6.
  EXPECT_EQ(trie.Rank(BS("0100"), 7), 3u);
  EXPECT_EQ(trie.Rank(BS("0100"), 3), 1u);
  EXPECT_EQ(trie.Rank(BS("0100"), 2), 0u);
  EXPECT_EQ(trie.Select(BS("0100"), 0), std::optional<size_t>(2));
  EXPECT_EQ(trie.Select(BS("0100"), 1), std::optional<size_t>(4));
  EXPECT_EQ(trie.Select(BS("0100"), 2), std::optional<size_t>(6));
  EXPECT_EQ(trie.Select(BS("0100"), 3), std::nullopt);
  // "00100" occurs at positions 3, 5.
  EXPECT_EQ(trie.Rank(BS("00100"), 7), 2u);
  EXPECT_EQ(trie.Select(BS("00100"), 1), std::optional<size_t>(5));
  // Absent strings.
  EXPECT_EQ(trie.Rank(BS("0000"), 7), 0u);
  EXPECT_EQ(trie.Rank(BS("11"), 7), 0u);
  EXPECT_EQ(trie.Select(BS("0000"), 0), std::nullopt);
  // Exact-rank of a proper prefix of stored keys is 0 (prefix-free set).
  EXPECT_EQ(trie.Rank(BS("00"), 7), 0u);
}

TEST(WaveletTrieFigure2, PrefixOperations) {
  WaveletTrie trie(Figure2Sequence());
  // Prefix "00" matches 0001, 0011, 00100, 00100 -> positions 0,1,3,5.
  EXPECT_EQ(trie.RankPrefix(BS("00"), 7), 4u);
  EXPECT_EQ(trie.RankPrefix(BS("00"), 4), 3u);
  EXPECT_EQ(trie.SelectPrefix(BS("00"), 0), std::optional<size_t>(0));
  EXPECT_EQ(trie.SelectPrefix(BS("00"), 2), std::optional<size_t>(3));
  EXPECT_EQ(trie.SelectPrefix(BS("00"), 3), std::optional<size_t>(5));
  EXPECT_EQ(trie.SelectPrefix(BS("00"), 4), std::nullopt);
  // Prefix "01" matches the three 0100s.
  EXPECT_EQ(trie.RankPrefix(BS("01"), 7), 3u);
  // Prefix "0" matches everything.
  EXPECT_EQ(trie.RankPrefix(BS("0"), 7), 7u);
  EXPECT_EQ(trie.SelectPrefix(BS("0"), 6), std::optional<size_t>(6));
  // Empty prefix matches everything.
  EXPECT_EQ(trie.RankPrefix(BS(""), 5), 5u);
  // Prefix that mismatches inside a label.
  EXPECT_EQ(trie.RankPrefix(BS("1"), 7), 0u);
  EXPECT_EQ(trie.SelectPrefix(BS("1"), 0), std::nullopt);
  // Prefix longer than stored strings.
  EXPECT_EQ(trie.RankPrefix(BS("010000"), 7), 0u);
}

// ------------------------------------------------------------ edge cases

TEST(WaveletTrie, EmptySequence) {
  WaveletTrie trie{std::vector<BitString>{}};
  EXPECT_EQ(trie.size(), 0u);
  EXPECT_EQ(trie.NumDistinct(), 0u);
  EXPECT_EQ(trie.Rank(BS("01"), 0), 0u);
  EXPECT_EQ(trie.Select(BS("01"), 0), std::nullopt);
}

TEST(WaveletTrie, ConstantSequence) {
  std::vector<BitString> seq(100, BS("10110"));
  WaveletTrie trie(seq);
  EXPECT_EQ(trie.NumDistinct(), 1u);
  EXPECT_EQ(trie.Rank(BS("10110"), 100), 100u);
  EXPECT_EQ(trie.Access(57).ToString(), "10110");
  EXPECT_EQ(trie.Select(BS("10110"), 99), std::optional<size_t>(99));
  EXPECT_EQ(trie.RankPrefix(BS("101"), 100), 100u);
  EXPECT_EQ(trie.Rank(BS("1011"), 100), 0u);
}

TEST(WaveletTrie, TwoValues) {
  std::vector<BitString> seq;
  for (int i = 0; i < 50; ++i) seq.push_back(BS(i % 3 == 0 ? "0" : "1"));
  WaveletTrie trie(seq);
  EXPECT_EQ(trie.NumDistinct(), 2u);
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(trie.Access(i).ToString(), i % 3 == 0 ? "0" : "1");
  }
  EXPECT_EQ(trie.Rank(BS("0"), 50), 17u);
}

// ------------------------------------------- randomized vs naive oracle

struct Workload {
  const char* name;
  size_t n;
  size_t distinct;
  unsigned min_len, max_len;
};

class WaveletTrieRandomTest : public ::testing::TestWithParam<Workload> {};

std::vector<BitString> MakePrefixFreeSet(std::mt19937_64& rng, size_t count,
                                         unsigned min_len, unsigned max_len) {
  // Random byte strings through ByteCodec => automatically prefix-free.
  std::vector<BitString> out;
  std::set<std::string> seen;
  while (out.size() < count) {
    const size_t len = min_len + rng() % (max_len - min_len + 1);
    std::string s;
    for (size_t i = 0; i < len; ++i) s.push_back('a' + rng() % 4);
    if (seen.insert(s).second) out.push_back(ByteCodec::Encode(s));
  }
  return out;
}

TEST_P(WaveletTrieRandomTest, MatchesNaive) {
  const Workload w = GetParam();
  std::mt19937_64 rng(w.n * 31 + w.distinct);
  const auto alphabet = MakePrefixFreeSet(rng, w.distinct, w.min_len, w.max_len);
  std::vector<BitString> seq;
  for (size_t i = 0; i < w.n; ++i) {
    seq.push_back(alphabet[rng() % alphabet.size()]);
  }
  WaveletTrie trie(seq);
  NaiveIndexedSequence naive(seq);
  ASSERT_EQ(trie.size(), w.n);

  // Access at every position.
  for (size_t i = 0; i < w.n; ++i) {
    ASSERT_TRUE(trie.Access(i).Span().ContentEquals(naive.Access(i).Span()))
        << "Access " << i;
  }
  // Rank/Select for every alphabet string (plus absent ones) at random pos.
  for (const auto& s : alphabet) {
    for (int q = 0; q < 5; ++q) {
      const size_t pos = rng() % (w.n + 1);
      ASSERT_EQ(trie.Rank(s, pos), naive.Rank(s, pos));
    }
    const size_t total = naive.Rank(s, w.n);
    for (size_t k = 0; k < total; k += 1 + total / 8) {
      ASSERT_EQ(trie.Select(s, k), naive.Select(s, k));
    }
    ASSERT_EQ(trie.Select(s, total), std::nullopt);
  }
  // Absent strings.
  for (int q = 0; q < 10; ++q) {
    const BitString absent = ByteCodec::Encode("zz" + std::to_string(q));
    ASSERT_EQ(trie.Rank(absent, w.n), 0u);
    ASSERT_EQ(trie.Select(absent, 0), std::nullopt);
  }
  // Prefix operations over random byte prefixes.
  for (int q = 0; q < 30; ++q) {
    std::string p;
    const size_t len = rng() % 3;
    for (size_t i = 0; i < len; ++i) p.push_back('a' + rng() % 4);
    const BitString pb = ByteCodec::EncodePrefix(p);
    const size_t pos = rng() % (w.n + 1);
    ASSERT_EQ(trie.RankPrefix(pb, pos), naive.RankPrefix(pb, pos)) << "prefix " << p;
    const size_t total = naive.RankPrefix(pb, w.n);
    if (total > 0) {
      const size_t k = rng() % total;
      ASSERT_EQ(trie.SelectPrefix(pb, k), naive.SelectPrefix(pb, k));
    }
    ASSERT_EQ(trie.SelectPrefix(pb, total), std::nullopt);
  }
}

TEST_P(WaveletTrieRandomTest, RangeAlgorithmsMatchNaive) {
  const Workload w = GetParam();
  std::mt19937_64 rng(w.n * 57 + w.distinct);
  const auto alphabet = MakePrefixFreeSet(rng, w.distinct, w.min_len, w.max_len);
  std::vector<BitString> seq;
  // Skewed multiplicities so majority / frequent have interesting answers.
  for (size_t i = 0; i < w.n; ++i) {
    const size_t z = rng() % 100;
    seq.push_back(alphabet[z < 55 ? 0 : z % alphabet.size()]);
  }
  WaveletTrie trie(seq);
  NaiveIndexedSequence naive(seq);

  for (int q = 0; q < 15; ++q) {
    size_t l = rng() % (w.n + 1);
    size_t r = rng() % (w.n + 1);
    if (l > r) std::swap(l, r);

    // Distinct values.
    std::vector<std::pair<std::string, size_t>> got;
    trie.DistinctInRange(l, r, [&](const BitString& s, size_t c) {
      got.emplace_back(s.ToString(), c);
    });
    const auto expect_raw = naive.DistinctInRange(l, r);
    std::vector<std::pair<std::string, size_t>> expect;
    for (auto& [s, c] : expect_raw) expect.emplace_back(s.ToString(), c);
    ASSERT_EQ(got, expect) << "distinct in [" << l << "," << r << ")";

    // Majority.
    const auto m1 = trie.RangeMajority(l, r);
    const auto m2 = naive.RangeMajority(l, r);
    ASSERT_EQ(m1.has_value(), m2.has_value());
    if (m1) {
      EXPECT_EQ(m1->first.ToString(), m2->first.ToString());
      EXPECT_EQ(m1->second, m2->second);
    }

    // Frequent with a couple of thresholds.
    for (size_t t : {size_t(1), (r - l) / 4 + 1}) {
      std::vector<std::pair<std::string, size_t>> fgot;
      trie.RangeFrequent(l, r, t, [&](const BitString& s, size_t c) {
        fgot.emplace_back(s.ToString(), c);
      });
      std::vector<std::pair<std::string, size_t>> fexpect;
      for (auto& [s, c] : naive.RangeFrequent(l, r, t)) {
        fexpect.emplace_back(s.ToString(), c);
      }
      ASSERT_EQ(fgot, fexpect);
    }

    // Sequential access.
    size_t expect_i = l;
    trie.ForEachInRange(l, r, [&](size_t i, const BitString& s) {
      ASSERT_EQ(i, expect_i++);
      ASSERT_TRUE(s.Span().ContentEquals(naive.Access(i).Span()))
          << "sequential at " << i;
    });
    ASSERT_EQ(expect_i, r);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, WaveletTrieRandomTest,
    ::testing::Values(Workload{"tiny", 30, 5, 1, 3},
                      Workload{"small", 300, 20, 1, 6},
                      Workload{"medium", 2000, 100, 2, 10},
                      Workload{"many_distinct", 1500, 700, 3, 12},
                      Workload{"all_distinct_heavy", 400, 400, 4, 16}),
    [](const auto& info) { return info.param.name; });

// ------------------------------------------------------------ integer codec

TEST(WaveletTrieIntCodec, FixedWidthActsAsWaveletTree) {
  FixedIntCodec codec(16);
  std::mt19937_64 rng(9);
  std::vector<uint64_t> vals;
  std::vector<BitString> seq;
  for (int i = 0; i < 1000; ++i) {
    vals.push_back(rng() % 500);
    seq.push_back(codec.Encode(vals.back()));
  }
  WaveletTrie trie(seq);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(codec.Decode(trie.Access(i).Span()), vals[i]);
  }
  // Rank of a value = linear count.
  for (uint64_t v : {vals[0], vals[500], uint64_t(499), uint64_t(123)}) {
    size_t expect = 0;
    for (uint64_t x : vals) expect += (x == v);
    ASSERT_EQ(trie.Rank(codec.Encode(v), 1000), expect);
  }
}

TEST(WaveletTrie, SpaceIsCompressedVsNaive) {
  // Zipf-ish skew, shared prefixes: the trie must be much smaller than the
  // uncompressed vector-of-strings.
  std::mt19937_64 rng(77);
  std::vector<std::string> hosts = {"www.example.com/", "api.example.com/",
                                    "cdn.example.com/assets/",
                                    "www.example.com/images/"};
  std::vector<BitString> seq;
  for (int i = 0; i < 20000; ++i) {
    const auto& h = hosts[(i * i + int(rng() % 3)) % hosts.size()];
    seq.push_back(ByteCodec::Encode(h + std::to_string(rng() % 20)));
  }
  WaveletTrie trie(seq);
  NaiveIndexedSequence naive(seq);
  EXPECT_LT(trie.SizeInBits(), naive.SizeInBits() / 10);
}

}  // namespace
}  // namespace wt
