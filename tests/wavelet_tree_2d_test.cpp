// Tests for the 2D / analytics operations on the classic Wavelet Tree
// (RangeCount2d, RangeQuantile, RangeDistinct, RangeMajority) and for the
// lexicographic dictionary baseline (core/lex_sequence.hpp) — related-work
// approach (1), including the RankPrefix-via-RangeCount reduction and the
// binary-searched SelectPrefix fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/lex_sequence.hpp"
#include "core/wavelet_tree.hpp"
#include "util/workloads.hpp"

namespace wt {
namespace {

// ------------------------------------------------------------ 2D operations

struct Wt2dParam {
  size_t n;
  uint64_t sigma;
  IntDistribution dist;
  uint64_t seed;
};

class WaveletTree2dProperty : public ::testing::TestWithParam<Wt2dParam> {
 protected:
  void SetUp() override {
    const auto p = GetParam();
    std::mt19937_64 rng(p.seed);
    seq_.reserve(p.n);
    switch (p.dist) {
      case IntDistribution::kUniform:
        for (size_t i = 0; i < p.n; ++i) seq_.push_back(rng() % p.sigma);
        break;
      case IntDistribution::kZipf: {
        ZipfDistribution z(p.sigma, 1.0);
        for (size_t i = 0; i < p.n; ++i) seq_.push_back(z(rng));
        break;
      }
      case IntDistribution::kClustered: {
        size_t i = 0;
        while (i < p.n) {
          const uint64_t v = rng() % p.sigma;
          for (size_t j = rng() % 30 + 1; j > 0 && i < p.n; --j, ++i)
            seq_.push_back(v);
        }
        break;
      }
    }
    tree_ = WaveletTree(seq_, p.sigma);
    rng_.seed(p.seed ^ 0xABCD);
  }

  size_t NaiveRangeCount(size_t l, size_t r, uint64_t a, uint64_t b) const {
    size_t c = 0;
    for (size_t i = l; i < r; ++i) c += (seq_[i] >= a && seq_[i] < b);
    return c;
  }

  std::vector<uint64_t> seq_;
  WaveletTree tree_;
  std::mt19937_64 rng_;
};

TEST_P(WaveletTree2dProperty, RangeCountMatchesNaive) {
  const size_t n = seq_.size();
  const uint64_t sigma = GetParam().sigma;
  for (int probe = 0; probe < 200; ++probe) {
    size_t l = rng_() % (n + 1), r = rng_() % (n + 1);
    if (l > r) std::swap(l, r);
    uint64_t a = rng_() % (sigma + 2), b = rng_() % (sigma + 2);
    if (a > b) std::swap(a, b);
    ASSERT_EQ(tree_.RangeCount2d(l, r, a, b), NaiveRangeCount(l, r, a, b))
        << "l=" << l << " r=" << r << " a=" << a << " b=" << b;
  }
}

TEST_P(WaveletTree2dProperty, RangeCountDegenerateRanges) {
  const size_t n = seq_.size();
  EXPECT_EQ(tree_.RangeCount2d(0, 0, 0, GetParam().sigma), 0u);
  EXPECT_EQ(tree_.RangeCount2d(n, n, 0, GetParam().sigma), 0u);
  EXPECT_EQ(tree_.RangeCount2d(0, n, 5, 5), 0u);
  EXPECT_EQ(tree_.RangeCount2d(0, n, 0, GetParam().sigma), n);
}

TEST_P(WaveletTree2dProperty, QuantileMatchesSortedRange) {
  const size_t n = seq_.size();
  for (int probe = 0; probe < 40; ++probe) {
    size_t l = rng_() % n, r = l + 1 + rng_() % (n - l);
    std::vector<uint64_t> window(seq_.begin() + l, seq_.begin() + r);
    std::sort(window.begin(), window.end());
    for (size_t k = 0; k < window.size(); k += (window.size() / 9 + 1)) {
      ASSERT_EQ(tree_.RangeQuantile(l, r, k), window[k])
          << "l=" << l << " r=" << r << " k=" << k;
    }
    // Median and extremes.
    ASSERT_EQ(tree_.RangeQuantile(l, r, 0), window.front());
    ASSERT_EQ(tree_.RangeQuantile(l, r, window.size() - 1), window.back());
    ASSERT_EQ(tree_.RangeQuantile(l, r, window.size() / 2),
              window[window.size() / 2]);
  }
}

TEST_P(WaveletTree2dProperty, DistinctMatchesNaive) {
  const size_t n = seq_.size();
  for (int probe = 0; probe < 25; ++probe) {
    size_t l = rng_() % (n + 1), r = rng_() % (n + 1);
    if (l > r) std::swap(l, r);
    std::map<uint64_t, size_t> expect;
    for (size_t i = l; i < r; ++i) ++expect[seq_[i]];
    std::map<uint64_t, size_t> got;
    uint64_t prev = 0;
    bool first = true;
    tree_.RangeDistinct(l, r, [&](uint64_t v, size_t c) {
      got[v] = c;
      if (!first) {
        ASSERT_GT(v, prev) << "not in increasing order";
      }
      prev = v;
      first = false;
    });
    ASSERT_EQ(got, expect) << "l=" << l << " r=" << r;
  }
}

TEST_P(WaveletTree2dProperty, MajorityMatchesNaive) {
  const size_t n = seq_.size();
  for (int probe = 0; probe < 60; ++probe) {
    size_t l = rng_() % (n + 1), r = rng_() % (n + 1);
    if (l > r) std::swap(l, r);
    std::map<uint64_t, size_t> counts;
    for (size_t i = l; i < r; ++i) ++counts[seq_[i]];
    std::optional<std::pair<uint64_t, size_t>> expect;
    for (const auto& [v, c] : counts) {
      if (2 * c > r - l) expect = {v, c};
    }
    ASSERT_EQ(tree_.RangeMajority(l, r), expect) << "l=" << l << " r=" << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WaveletTree2dProperty,
    ::testing::Values(Wt2dParam{300, 2, IntDistribution::kUniform, 1},
                      Wt2dParam{1000, 16, IntDistribution::kZipf, 2},
                      Wt2dParam{2000, 100, IntDistribution::kUniform, 3},
                      Wt2dParam{1500, 7, IntDistribution::kClustered, 4},
                      Wt2dParam{2500, 1000, IntDistribution::kZipf, 5},
                      Wt2dParam{500, 1, IntDistribution::kUniform, 6},
                      Wt2dParam{4000, 256, IntDistribution::kClustered, 7}));

TEST(WaveletTree2d, MajorityOnConstantRuns) {
  std::vector<uint64_t> seq{5, 5, 5, 5, 2, 2, 9, 5, 5};
  WaveletTree tree(seq, 10);
  auto m = tree.RangeMajority(0, 9);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->first, 5u);
  EXPECT_EQ(m->second, 6u);
  auto two_of_three = tree.RangeMajority(4, 7);  // 2,2,9 -> 2 wins (2 of 3)
  ASSERT_TRUE(two_of_three.has_value());
  EXPECT_EQ(two_of_three->first, 2u);
  EXPECT_EQ(tree.RangeMajority(4, 8), std::nullopt);  // 2,2,9,5 -> tie, none
  auto single = tree.RangeMajority(6, 7);
  ASSERT_TRUE(single.has_value());
  EXPECT_EQ(single->first, 9u);
}

// ------------------------------------------------------- LexMappedSequence

class LexSequenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    UrlLogGenerator gen({.num_domains = 12, .paths_per_domain = 9, .seed = 99});
    seq_ = gen.Take(600);
    lex_ = LexMappedSequence(seq_);
  }

  size_t NaiveRankPrefix(const std::string& p, size_t pos) const {
    size_t c = 0;
    for (size_t i = 0; i < pos; ++i) c += seq_[i].compare(0, p.size(), p) == 0;
    return c;
  }

  std::vector<std::string> seq_;
  LexMappedSequence lex_;
};

TEST_F(LexSequenceTest, AccessRoundTrip) {
  for (size_t i = 0; i < seq_.size(); ++i) ASSERT_EQ(lex_.Access(i), seq_[i]);
}

TEST_F(LexSequenceTest, RankSelectMatchNaive) {
  const std::string probe = seq_[17];
  size_t count = 0;
  for (size_t i = 0; i < seq_.size(); ++i) {
    ASSERT_EQ(lex_.Rank(probe, i), count);
    if (seq_[i] == probe) {
      ASSERT_EQ(lex_.Select(probe, count), std::optional<size_t>(i));
      ++count;
    }
  }
  EXPECT_EQ(lex_.Select(probe, count), std::nullopt);
  EXPECT_EQ(lex_.Rank("absent-string", seq_.size()), 0u);
  EXPECT_EQ(lex_.Select("absent-string", 0), std::nullopt);
}

TEST_F(LexSequenceTest, RankPrefixViaRangeCountMatchesNaive) {
  const std::vector<std::string> prefixes{
      "www.site0.com", "www.site1.com/sec1", "www.site", "www.site11.com/",
      "nosuchprefix",   ""};
  for (const auto& p : prefixes) {
    for (size_t pos = 0; pos <= seq_.size(); pos += 61) {
      ASSERT_EQ(lex_.RankPrefix(p, pos), NaiveRankPrefix(p, pos))
          << "prefix '" << p << "' pos " << pos;
    }
    ASSERT_EQ(lex_.RankPrefix(p, seq_.size()),
              NaiveRankPrefix(p, seq_.size()));
  }
}

TEST_F(LexSequenceTest, SelectPrefixBinarySearchMatchesNaive) {
  const std::string p = "www.site0.com";
  std::vector<size_t> expect;
  for (size_t i = 0; i < seq_.size(); ++i) {
    if (seq_[i].compare(0, p.size(), p) == 0) expect.push_back(i);
  }
  ASSERT_FALSE(expect.empty());
  for (size_t k = 0; k < expect.size(); ++k) {
    ASSERT_EQ(lex_.SelectPrefix(p, k), std::optional<size_t>(expect[k])) << k;
  }
  EXPECT_EQ(lex_.SelectPrefix(p, expect.size()), std::nullopt);
  EXPECT_EQ(lex_.SelectPrefix("nosuchprefix", 0), std::nullopt);
}

TEST_F(LexSequenceTest, PrefixIdRangeBoundaries) {
  // Every dictionary entry with the prefix must fall inside the id range,
  // every entry without it outside.
  const std::string p = "www.site1";
  const auto [lo, hi] = lex_.PrefixIdRange(p);
  const auto& dict = lex_.dictionary();
  for (uint64_t id = 0; id < dict.size(); ++id) {
    const bool has = dict[id].compare(0, p.size(), p) == 0;
    EXPECT_EQ(id >= lo && id < hi, has) << dict[id];
  }
}

TEST_F(LexSequenceTest, EmptyPrefixCoversEverything) {
  EXPECT_EQ(lex_.RankPrefix("", seq_.size()), seq_.size());
  EXPECT_EQ(lex_.SelectPrefix("", 0), std::optional<size_t>(0));
}

TEST_F(LexSequenceTest, AppendWithRebuildGrowsAlphabet) {
  const size_t d = lex_.NumDistinct();
  const size_t n = lex_.size();
  EXPECT_TRUE(lex_.AppendWithRebuild("zzz.example.org/brand-new"));
  EXPECT_EQ(lex_.size(), n + 1);
  EXPECT_EQ(lex_.NumDistinct(), d + 1);
  EXPECT_EQ(lex_.Access(n), "zzz.example.org/brand-new");
  // Existing positions survive the rebuild.
  for (size_t i = 0; i < n; i += 37) EXPECT_EQ(lex_.Access(i), seq_[i]);
  // Appending a known value does not grow the alphabet.
  EXPECT_FALSE(lex_.AppendWithRebuild(seq_[0]));
  EXPECT_EQ(lex_.NumDistinct(), d + 1);
}

TEST(LexSequence, EmptyAndSingle) {
  LexMappedSequence empty;
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.Rank("x", 0), 0u);

  LexMappedSequence one(std::vector<std::string>{"solo"});
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(one.Access(0), "solo");
  EXPECT_EQ(one.RankPrefix("so", 1), 1u);
  EXPECT_EQ(one.SelectPrefix("so", 0), std::optional<size_t>(0));
}

TEST(LexSequence, PrefixThatIsAlsoAFullString) {
  // "ab" is both a stored string and a prefix of "abc": prefix queries must
  // count both, exact queries only the exact one.
  std::vector<std::string> seq{"ab", "abc", "ab", "b", "abc"};
  LexMappedSequence lex(seq);
  EXPECT_EQ(lex.RankPrefix("ab", 5), 4u);
  EXPECT_EQ(lex.Rank("ab", 5), 2u);
  EXPECT_EQ(lex.Rank("abc", 5), 2u);
  EXPECT_EQ(lex.SelectPrefix("ab", 3), std::optional<size_t>(4));
}

TEST(WaveletTreeSerialize, SaveLoadRoundTripPreservesAllOps) {
  const auto seq = GenerateIntegers(1500, 60, IntDistribution::kZipf, 42);
  uint64_t sigma = 0;
  for (uint64_t v : seq) sigma = std::max(sigma, v + 1);
  WaveletTree tree(seq, sigma);
  std::stringstream ss;
  tree.Save(ss);
  WaveletTree loaded;
  loaded.Load(ss);
  ASSERT_EQ(loaded.size(), tree.size());
  ASSERT_EQ(loaded.sigma(), tree.sigma());
  for (size_t i = 0; i < seq.size(); i += 11) {
    ASSERT_EQ(loaded.Access(i), seq[i]);
  }
  ASSERT_EQ(loaded.Rank(seq[3], 700), tree.Rank(seq[3], 700));
  ASSERT_EQ(loaded.RangeCount2d(100, 900, 5, 30),
            tree.RangeCount2d(100, 900, 5, 30));
  ASSERT_EQ(loaded.RangeQuantile(100, 900, 200),
            tree.RangeQuantile(100, 900, 200));
}

TEST(WaveletTreeSerialize, EmptyAndSingleValueTrees) {
  WaveletTree empty(std::vector<uint64_t>{}, 1);
  std::stringstream ss;
  empty.Save(ss);
  WaveletTree loaded;
  loaded.Load(ss);
  EXPECT_EQ(loaded.size(), 0u);

  WaveletTree constant(std::vector<uint64_t>(40, 0), 1);
  std::stringstream ss2;
  constant.Save(ss2);
  WaveletTree loaded2;
  loaded2.Load(ss2);
  EXPECT_EQ(loaded2.size(), 40u);
  EXPECT_EQ(loaded2.Access(17), 0u);
  EXPECT_EQ(loaded2.Rank(0, 40), 40u);
}

}  // namespace
}  // namespace wt
