// Tests for the common substrate: word-level bit primitives, BitArray,
// BitString/BitSpan, and Elias gamma/delta coding.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "coding/elias.hpp"
#include "common/bit_array.hpp"
#include "common/bit_string.hpp"
#include "common/bits.hpp"

namespace wt {
namespace {

// ---------------------------------------------------------------- bits.hpp

TEST(Bits, LowMask) {
  EXPECT_EQ(LowMask(0), 0u);
  EXPECT_EQ(LowMask(1), 1u);
  EXPECT_EQ(LowMask(8), 0xFFu);
  EXPECT_EQ(LowMask(63), ~uint64_t(0) >> 1);
  EXPECT_EQ(LowMask(64), ~uint64_t(0));
}

TEST(Bits, WordsFor) {
  EXPECT_EQ(WordsFor(0), 0u);
  EXPECT_EQ(WordsFor(1), 1u);
  EXPECT_EQ(WordsFor(64), 1u);
  EXPECT_EQ(WordsFor(65), 2u);
}

TEST(Bits, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(2), 1u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(4), 2u);
  EXPECT_EQ(CeilLog2(5), 3u);
  EXPECT_EQ(CeilLog2(uint64_t(1) << 40), 40u);
}

TEST(Bits, SelectInWordExhaustiveSmall) {
  // Check every 16-bit word against a linear scan.
  for (uint64_t x = 1; x < (1u << 16); ++x) {
    int k = 0;
    for (int i = 0; i < 16; ++i) {
      if ((x >> i) & 1) {
        ASSERT_EQ(SelectInWord(x, k), static_cast<unsigned>(i))
            << "x=" << x << " k=" << k;
        ++k;
      }
    }
  }
}

TEST(Bits, SelectInWordRandom64) {
  std::mt19937_64 rng(42);
  for (int iter = 0; iter < 2000; ++iter) {
    const uint64_t x = rng();
    int k = 0;
    for (int i = 0; i < 64; ++i) {
      if ((x >> i) & 1) {
        ASSERT_EQ(SelectInWord(x, k), static_cast<unsigned>(i));
        ++k;
      }
    }
  }
}

TEST(Bits, SelectZeroInWord) {
  EXPECT_EQ(SelectZeroInWord(0, 0), 0u);
  EXPECT_EQ(SelectZeroInWord(0, 63), 63u);
  EXPECT_EQ(SelectZeroInWord(1, 0), 1u);
  EXPECT_EQ(SelectZeroInWord(0b1011, 0), 2u);
}

TEST(Bits, LoadStoreRoundTrip) {
  std::mt19937_64 rng(7);
  std::vector<uint64_t> words(8, 0);
  // Write random values at random (start, len) and read them back.
  for (int iter = 0; iter < 5000; ++iter) {
    const size_t len = 1 + rng() % 64;
    const size_t start = rng() % (words.size() * 64 - len);
    const uint64_t v = rng() & LowMask(len);
    StoreBits(words.data(), start, len, v);
    ASSERT_EQ(LoadBits(words.data(), start, len), v) << "start=" << start << " len=" << len;
  }
}

TEST(Bits, StorePreservesNeighbours) {
  std::vector<uint64_t> words(4, ~uint64_t(0));
  StoreBits(words.data(), 60, 8, 0);  // spans words 0 and 1
  EXPECT_EQ(LoadBits(words.data(), 60, 8), 0u);
  EXPECT_EQ(LoadBits(words.data(), 0, 60), LowMask(60));
  EXPECT_EQ(LoadBits(words.data(), 68, 60), LowMask(60));
}

TEST(Bits, BitsLcpAgainstScan) {
  std::mt19937_64 rng(99);
  for (int iter = 0; iter < 300; ++iter) {
    const size_t n = 1 + rng() % 300;
    BitArray a, b;
    for (size_t i = 0; i < n; ++i) {
      const bool bit = rng() & 1;
      a.PushBack(bit);
      // With probability ~1/20 inject a difference.
      b.PushBack((rng() % 20 == 0) ? !bit : bit);
    }
    size_t expect = 0;
    while (expect < n && a.Get(expect) == b.Get(expect)) ++expect;
    ASSERT_EQ(BitsLcp(a.data(), 0, b.data(), 0, n), expect);
  }
}

TEST(Bits, BitsLcpWithOffsets) {
  BitArray a;
  for (int i = 0; i < 200; ++i) a.PushBack((i / 3) % 2);
  // Suffixes of the same array at distance 6 share the 3-periodic*2 pattern.
  EXPECT_EQ(BitsLcp(a.data(), 0, a.data(), 6, 194), 194u);
  EXPECT_EQ(BitsLcp(a.data(), 1, a.data(), 2, 10), 1u);
}

// ------------------------------------------------------------ BitArray

TEST(BitArray, PushBackAndGet) {
  BitArray a;
  for (int i = 0; i < 1000; ++i) a.PushBack(i % 3 == 0);
  ASSERT_EQ(a.size(), 1000u);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.Get(i), i % 3 == 0);
}

TEST(BitArray, ConstantConstructor) {
  BitArray ones(130, true);
  ASSERT_EQ(ones.size(), 130u);
  for (size_t i = 0; i < 130; ++i) ASSERT_TRUE(ones.Get(i));
  BitArray zeros(130, false);
  for (size_t i = 0; i < 130; ++i) ASSERT_FALSE(zeros.Get(i));
}

TEST(BitArray, AppendBitsMatchesPushBack) {
  std::mt19937_64 rng(3);
  BitArray a, b;
  for (int iter = 0; iter < 500; ++iter) {
    const size_t len = 1 + rng() % 64;
    const uint64_t v = rng() & LowMask(len);
    a.AppendBits(v, len);
    for (size_t i = 0; i < len; ++i) b.PushBack((v >> i) & 1);
  }
  EXPECT_EQ(a, b);
}

TEST(BitArray, AppendRange) {
  std::mt19937_64 rng(4);
  BitArray src;
  for (int i = 0; i < 500; ++i) src.PushBack(rng() & 1);
  for (int iter = 0; iter < 200; ++iter) {
    const size_t len = rng() % 200;
    const size_t start = rng() % (501 - len);
    BitArray dst;
    dst.PushBack(true);  // non-word-aligned destination
    dst.AppendRange(src, start, len);
    ASSERT_EQ(dst.size(), len + 1);
    for (size_t i = 0; i < len; ++i) ASSERT_EQ(dst.Get(i + 1), src.Get(start + i));
  }
}

TEST(BitArray, AppendRun) {
  BitArray a;
  a.AppendRun(true, 70);
  a.AppendRun(false, 3);
  a.AppendRun(true, 129);
  ASSERT_EQ(a.size(), 202u);
  for (size_t i = 0; i < 70; ++i) ASSERT_TRUE(a.Get(i));
  for (size_t i = 70; i < 73; ++i) ASSERT_FALSE(a.Get(i));
  for (size_t i = 73; i < 202; ++i) ASSERT_TRUE(a.Get(i));
}

TEST(BitArray, TruncateClearsTail) {
  BitArray a;
  for (int i = 0; i < 100; ++i) a.PushBack(true);
  a.Truncate(65);
  ASSERT_EQ(a.size(), 65u);
  // Pushing 0 bits after truncation must not resurrect stale 1s.
  a.PushBack(false);
  EXPECT_FALSE(a.Get(65));
  a.PushBack(true);
  EXPECT_TRUE(a.Get(66));
}

TEST(BitArray, GetBits) {
  BitArray a;
  a.AppendBits(0xDEADBEEFCAFEBABEull, 64);
  a.AppendBits(0x123456789ABCDEFull, 60);
  EXPECT_EQ(a.GetBits(0, 64), 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(a.GetBits(64, 60), 0x123456789ABCDEFull & LowMask(60));
  EXPECT_EQ(a.GetBits(4, 8), (0xDEADBEEFCAFEBABEull >> 4) & 0xFF);
  EXPECT_EQ(a.GetBits(10, 0), 0u);
}

// ------------------------------------------------------------ BitString

TEST(BitString, FromStringRoundTrip) {
  const std::string s = "001010111000110";
  BitString b = BitString::FromString(s);
  EXPECT_EQ(b.size(), s.size());
  EXPECT_EQ(b.ToString(), s);
}

TEST(BitString, SpanSubSpanAndLcp) {
  BitString a = BitString::FromString("0010101");
  BitString b = BitString::FromString("0011");
  EXPECT_EQ(a.Span().Lcp(b.Span()), 3u);
  EXPECT_EQ(a.SubSpan(3).ToString(), "0101");
  EXPECT_EQ(a.SubSpan(2, 3).ToString(), "101");
  EXPECT_TRUE(BitString::FromString("001").Span().IsPrefixOf(a.Span()));
  EXPECT_FALSE(BitString::FromString("01").Span().IsPrefixOf(a.Span()));
}

TEST(BitString, ContentEquals) {
  BitString a = BitString::FromString("10101");
  BitString b = BitString::FromString("10101");
  BitString c = BitString::FromString("10100");
  EXPECT_TRUE(a.Span().ContentEquals(b.Span()));
  EXPECT_FALSE(a.Span().ContentEquals(c.Span()));
  EXPECT_FALSE(a.Span().ContentEquals(a.SubSpan(1)));
}

TEST(BitString, LexicographicOrder) {
  auto S = [](const char* s) { return BitString::FromString(s); };
  EXPECT_LT(S("0"), S("1"));
  EXPECT_LT(S("0"), S("00"));   // prefix sorts first
  EXPECT_LT(S("011"), S("10"));
  EXPECT_FALSE(S("10") < S("10"));
  EXPECT_FALSE(S("1") < S("011"));
}

TEST(BitString, AppendSpanCrossesWords) {
  BitString a;
  for (int i = 0; i < 61; ++i) a.PushBack(i % 2);
  BitString b = BitString::FromString("110011");
  a.Append(b);
  ASSERT_EQ(a.size(), 67u);
  EXPECT_EQ(a.SubSpan(61).ToString(), "110011");
}

TEST(BitString, EqualityAfterMixedConstruction) {
  BitString a = BitString::FromString("111000111");
  BitString b;
  b.AppendBits(0b000111, 3);  // low 3 bits = 111
  b.AppendBits(0b0, 3);
  b.AppendBits(0b111, 3);
  EXPECT_EQ(a, b);
}

// ------------------------------------------------------------ Elias codes

TEST(Elias, GammaLengths) {
  EXPECT_EQ(GammaLen(1), 1u);
  EXPECT_EQ(GammaLen(2), 3u);
  EXPECT_EQ(GammaLen(3), 3u);
  EXPECT_EQ(GammaLen(4), 5u);
  EXPECT_EQ(GammaLen(uint64_t(1) << 62), 125u);
}

TEST(Elias, DeltaLengths) {
  EXPECT_EQ(DeltaLen(1), 1u);   // gamma(1)
  EXPECT_EQ(DeltaLen(2), 4u);   // gamma(2)+1
  EXPECT_EQ(DeltaLen(16), 9u);  // gamma(5)=5 bits + 4
}

TEST(Elias, GammaRoundTripSmall) {
  BitArray buf;
  BitWriter w(&buf);
  for (uint64_t v = 1; v <= 2000; ++v) w.WriteGamma(v);
  BitReader r(buf);
  for (uint64_t v = 1; v <= 2000; ++v) ASSERT_EQ(r.ReadGamma(), v);
  EXPECT_EQ(r.position(), buf.size());
}

TEST(Elias, DeltaRoundTripSmall) {
  BitArray buf;
  BitWriter w(&buf);
  for (uint64_t v = 1; v <= 2000; ++v) w.WriteDelta(v);
  BitReader r(buf);
  for (uint64_t v = 1; v <= 2000; ++v) ASSERT_EQ(r.ReadDelta(), v);
  EXPECT_EQ(r.position(), buf.size());
}

TEST(Elias, RoundTripHugeValues) {
  std::mt19937_64 rng(11);
  std::vector<uint64_t> vals;
  for (int i = 0; i < 500; ++i) {
    const unsigned width = 1 + rng() % 63;
    vals.push_back((rng() & LowMask(width)) | (uint64_t(1) << (width - 1)));
  }
  BitArray buf;
  BitWriter w(&buf);
  size_t expected_bits = 0;
  for (uint64_t v : vals) {
    w.WriteGamma(v);
    w.WriteDelta(v);
    expected_bits += GammaLen(v) + DeltaLen(v);
  }
  EXPECT_EQ(buf.size(), expected_bits);
  BitReader r(buf);
  for (uint64_t v : vals) {
    ASSERT_EQ(r.ReadGamma(), v);
    ASSERT_EQ(r.ReadDelta(), v);
  }
}

TEST(Elias, MixedWithRawBits) {
  BitArray buf;
  BitWriter w(&buf);
  w.WriteBits(0b1011, 4);
  w.WriteGamma(17);
  w.WriteBit(true);
  w.WriteDelta(100);
  BitReader r(buf);
  EXPECT_EQ(r.ReadBits(4), 0b1011u);
  EXPECT_EQ(r.ReadGamma(), 17u);
  EXPECT_TRUE(r.ReadBit());
  EXPECT_EQ(r.ReadDelta(), 100u);
}

}  // namespace
}  // namespace wt
