// Round-trip tests for the binary serialization of the static structures:
// every query result must be identical after Save + Load, directories are
// rebuilt on load, and corrupt streams are rejected.
#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "bitvector/bit_vector.hpp"
#include "bitvector/elias_fano.hpp"
#include "bitvector/rrr.hpp"
#include "core/codec.hpp"
#include "core/wavelet_trie.hpp"
#include "util/workloads.hpp"

namespace wt {
namespace {

BitArray RandomBits(size_t n, double density, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution coin(density);
  BitArray a;
  for (size_t i = 0; i < n; ++i) a.PushBack(coin(rng));
  return a;
}

TEST(Serialize, BitVectorRoundTrip) {
  BitVector orig(RandomBits(50000, 0.37, 1));
  std::stringstream ss;
  orig.Save(ss);
  BitVector loaded;
  loaded.Load(ss);
  ASSERT_EQ(loaded.size(), orig.size());
  ASSERT_EQ(loaded.num_ones(), orig.num_ones());
  for (size_t pos = 0; pos <= orig.size(); pos += 997) {
    ASSERT_EQ(loaded.Rank1(pos), orig.Rank1(pos));
  }
  for (size_t k = 0; k < orig.num_ones(); k += 991) {
    ASSERT_EQ(loaded.Select1(k), orig.Select1(k));
  }
}

TEST(Serialize, RrrRoundTrip) {
  Rrr orig(RandomBits(80000, 0.08, 2));
  std::stringstream ss;
  orig.Save(ss);
  Rrr loaded;
  loaded.Load(ss);
  ASSERT_EQ(loaded.size(), orig.size());
  ASSERT_EQ(loaded.num_ones(), orig.num_ones());
  for (size_t pos = 0; pos <= orig.size(); pos += 1009) {
    ASSERT_EQ(loaded.Rank1(pos), orig.Rank1(pos));
    if (pos < orig.size()) {
      ASSERT_EQ(loaded.Get(pos), orig.Get(pos));
    }
  }
  for (size_t k = 0; k < orig.num_ones(); k += 499) {
    ASSERT_EQ(loaded.Select1(k), orig.Select1(k));
  }
  for (size_t k = 0; k < orig.num_zeros(); k += 4999) {
    ASSERT_EQ(loaded.Select0(k), orig.Select0(k));
  }
}

TEST(Serialize, EliasFanoRoundTrip) {
  std::vector<uint64_t> vals;
  std::mt19937_64 rng(3);
  uint64_t cur = 0;
  for (int i = 0; i < 5000; ++i) {
    cur += rng() % 300;
    vals.push_back(cur);
  }
  EliasFano orig(vals, vals.back());
  std::stringstream ss;
  orig.Save(ss);
  EliasFano loaded;
  loaded.Load(ss);
  ASSERT_EQ(loaded.size(), orig.size());
  for (size_t i = 0; i < vals.size(); ++i) ASSERT_EQ(loaded.Access(i), vals[i]);
}

TEST(Serialize, WaveletTrieRoundTripFullQuerySurface) {
  UrlLogOptions opt;
  opt.num_domains = 24;
  opt.paths_per_domain = 12;
  opt.seed = 4;
  UrlLogGenerator gen(opt);
  std::vector<BitString> seq;
  std::vector<std::string> urls = gen.Take(5000);
  for (const auto& u : urls) seq.push_back(ByteCodec::Encode(u));
  WaveletTrie orig(seq);

  std::stringstream ss;
  orig.Save(ss);
  WaveletTrie loaded;
  loaded.Load(ss);

  ASSERT_EQ(loaded.size(), orig.size());
  ASSERT_EQ(loaded.NumDistinct(), orig.NumDistinct());
  std::mt19937_64 rng(5);
  for (int q = 0; q < 300; ++q) {
    const size_t pos = rng() % orig.size();
    ASSERT_TRUE(loaded.Access(pos).Span().ContentEquals(orig.Access(pos).Span()));
    const BitString probe = ByteCodec::Encode(urls[rng() % urls.size()]);
    const size_t upto = rng() % (orig.size() + 1);
    ASSERT_EQ(loaded.Rank(probe, upto), orig.Rank(probe, upto));
    const BitString p = ByteCodec::EncodePrefix(gen.Domain(rng() % 24));
    ASSERT_EQ(loaded.RankPrefix(p, upto), orig.RankPrefix(p, upto));
  }
  // Range analytics survive the round trip.
  auto m1 = orig.RangeMajority(100, 4000);
  auto m2 = loaded.RangeMajority(100, 4000);
  ASSERT_EQ(m1.has_value(), m2.has_value());
  size_t d1 = 0, d2 = 0;
  orig.DistinctInRange(0, 2000, [&](const BitString&, size_t) { ++d1; });
  loaded.DistinctInRange(0, 2000, [&](const BitString&, size_t) { ++d2; });
  ASSERT_EQ(d1, d2);
}

TEST(Serialize, EmptyTrieRoundTrip) {
  WaveletTrie orig{std::vector<BitString>{}};
  std::stringstream ss;
  orig.Save(ss);
  WaveletTrie loaded;
  loaded.Load(ss);
  EXPECT_EQ(loaded.size(), 0u);
  EXPECT_EQ(loaded.Rank(BitString::FromString("01"), 0), 0u);
}

TEST(SerializeDeath, RejectsGarbageMagic) {
  std::stringstream ss;
  WritePod<uint64_t>(ss, 0xDEADBEEFull);  // wrong magic
  WritePod<uint32_t>(ss, 1);
  WritePod<uint64_t>(ss, 0);
  WaveletTrie t;
  EXPECT_DEATH(t.Load(ss), "not a wavelet-trie stream");
}

TEST(SerializeDeath, RejectsTruncatedStream) {
  // A valid header followed by nothing.
  WaveletTrie orig(std::vector<BitString>{BitString::FromString("01"),
                                          BitString::FromString("10")});
  std::stringstream full;
  orig.Save(full);
  const std::string bytes = full.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  WaveletTrie t;
  EXPECT_DEATH(t.Load(truncated), "truncated|corrupt");
}

}  // namespace
}  // namespace wt
