// Tests for the observability core (src/obs/, DESIGN.md #12):
//   * bucket map: monotone, bounds self-consistent, <=25% relative error;
//   * histogram quantiles differentially against a sorted-vector oracle —
//     the selected bucket must be EXACTLY the bucket holding the oracle's
//     rank element, including the empty / single-sample / overflow edges;
//   * counters and the registry under concurrency (runs under TSan in
//     CI): values exact after join, monotone across live snapshots;
//   * snapshot wire format: round trip, then an exhaustive one-byte
//     corruption sweep — every flip must be rejected (checksum or header
//     validation), and truncations never over-read;
//   * text exposition name splicing (suffix + label merge);
//   * slow-request ring: threshold gating and oldest-first eviction.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/slow_ring.hpp"
#include "obs/snapshot.hpp"

namespace wt::obs {
namespace {

TEST(HistogramBuckets, BoundsAreConsistentAndMonotone) {
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    EXPECT_EQ(HistogramBucketOf(HistogramBucketLowerBound(i)), i) << i;
    if (i + 1 < kHistogramBuckets) {
      EXPECT_EQ(HistogramBucketOf(HistogramBucketUpperBound(i)), i) << i;
      EXPECT_EQ(HistogramBucketUpperBound(i) + 1,
                HistogramBucketLowerBound(i + 1))
          << i;
    }
  }
  EXPECT_EQ(HistogramBucketOf(UINT64_MAX), kHistogramBuckets - 1);
  size_t prev = 0;
  for (uint64_t v = 0; v < 300000; v += 11) {
    const size_t b = HistogramBucketOf(v);
    EXPECT_GE(b, prev);
    prev = b;
  }
  // The advertised accuracy: below the overflow bucket, a bucket's width
  // is at most a quarter of its lower bound.
  for (size_t i = 16; i + 1 < kHistogramBuckets; ++i) {
    const uint64_t lo = HistogramBucketLowerBound(i);
    const uint64_t hi = HistogramBucketUpperBound(i);
    EXPECT_LE(hi - lo + 1, lo / 4 + 1) << i;
  }
}

// The oracle contract: for any recorded multiset and any q, the histogram
// must select exactly the bucket the sorted vector's rank-ceil(q*n)
// element was recorded into. Bucketing is monotone in the value, so this
// is achievable — and any off-by-one in the cumulative walk breaks it.
TEST(Histogram, QuantilesMatchSortedOracle) {
  std::mt19937_64 rng(12345);
  std::vector<uint64_t> vals;
  for (int i = 0; i < 5000; ++i) {
    switch (rng() % 4) {
      case 0: vals.push_back(rng() % 16); break;          // unit buckets
      case 1: vals.push_back(rng() % 1024); break;        // low octaves
      case 2: vals.push_back(rng() % 300000); break;      // spans overflow
      default: vals.push_back(rng() % (uint64_t{1} << 40)); break;
    }
  }
  Histogram h;
  for (uint64_t v : vals) h.Record(v);
  const HistogramSnapshot s = h.Snap();
  ASSERT_EQ(s.count, vals.size());

  std::vector<uint64_t> sorted = vals;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.001, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    rank = std::min<uint64_t>(std::max<uint64_t>(rank, 1), sorted.size());
    const uint64_t oracle = sorted[rank - 1];
    const size_t b = s.QuantileBucket(q);
    ASSERT_EQ(b, HistogramBucketOf(oracle)) << "q=" << q;
    // And the reported value brackets the oracle within the bucket's
    // advertised error.
    EXPECT_GE(oracle, HistogramBucketLowerBound(b)) << "q=" << q;
    EXPECT_LE(oracle, HistogramBucketUpperBound(b)) << "q=" << q;
    if (b < 16) EXPECT_EQ(s.Quantile(q), oracle);  // unit buckets are exact
  }
}

TEST(Histogram, EmptySingleAndOverflowEdges) {
  Histogram h;
  const HistogramSnapshot empty = h.Snap();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.QuantileBucket(0.5), kHistogramBuckets);
  EXPECT_EQ(empty.Quantile(0.99), 0u);
  EXPECT_EQ(empty.Mean(), 0u);

  h.Record(7);
  const HistogramSnapshot one = h.Snap();
  EXPECT_EQ(one.count, 1u);
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(one.Quantile(q), 7u);  // a unit bucket reports exactly
  }
  EXPECT_EQ(one.max, 7u);
  EXPECT_EQ(one.Mean(), 7u);

  // Overflow bucket: every sample >= 57344 shares bucket 63, and the
  // reported quantile there is the recorded max (the honest upper bound).
  Histogram of;
  of.Record(1000000);
  of.Record(2000000);
  const HistogramSnapshot o = of.Snap();
  EXPECT_EQ(o.QuantileBucket(0.5), kHistogramBuckets - 1);
  EXPECT_EQ(o.Quantile(0.5), 2000000u);
  EXPECT_EQ(o.Quantile(1.0), 2000000u);
}

TEST(Histogram, MergeEqualsRecordingTheUnion) {
  std::mt19937_64 rng(7);
  Histogram a, b, all;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng() % 100000;
    ((i % 2) == 0 ? a : b).Record(v);
    all.Record(v);
  }
  HistogramSnapshot merged = a.Snap();
  merged.Merge(b.Snap());
  const HistogramSnapshot want = all.Snap();
  EXPECT_EQ(merged.count, want.count);
  EXPECT_EQ(merged.sum, want.sum);
  EXPECT_EQ(merged.max, want.max);
  EXPECT_EQ(merged.buckets, want.buckets);
}

TEST(Counter, ExactUnderConcurrentWriters) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : ts) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(Registry, GetOrCreateIsPointerStable) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("wt_x_total");
  // Force storage growth, then re-look-up: same instrument.
  for (int i = 0; i < 100; ++i) {
    reg.GetCounter("wt_churn_" + std::to_string(i) + "_total");
  }
  EXPECT_EQ(reg.GetCounter("wt_x_total"), a);
  a->Add(3);
  const MetricsSnapshot s = reg.Snapshot();
  const uint64_t* v = s.FindCounter("wt_x_total");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 3u);
  EXPECT_TRUE(std::is_sorted(
      s.counters.begin(), s.counters.end(),
      [](const auto& x, const auto& y) { return x.first < y.first; }));
}

// The TSan contract: writers hammer all three instrument kinds while a
// reader snapshots — no data race, and a counter observed across
// successive snapshots never regresses (striped relaxed loads are
// monotone per reader).
TEST(Registry, SnapshotsAreMonotoneUnderConcurrentWrites) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("wt_test_ops_total");
  Gauge* g = reg.GetGauge("wt_test_depth");
  Histogram* h = reg.GetHistogram("wt_test_lat_us");
  constexpr int kWriters = 4;
  constexpr uint64_t kOps = 50000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kWriters; ++t) {
    ts.emplace_back([&, t] {
      for (uint64_t i = 0; i < kOps; ++i) {
        c->Increment();
        g->Set(static_cast<int64_t>(i));
        h->Record((i * 37 + static_cast<uint64_t>(t)) % 100000);
      }
    });
  }
  uint64_t prev_count = 0, prev_hist = 0;
  for (int i = 0; i < 200; ++i) {
    const MetricsSnapshot s = reg.Snapshot();
    const uint64_t* cv = s.FindCounter("wt_test_ops_total");
    const HistogramSnapshot* hv = s.FindHistogram("wt_test_lat_us");
    ASSERT_NE(cv, nullptr);
    ASSERT_NE(hv, nullptr);
    EXPECT_GE(*cv, prev_count);
    EXPECT_GE(hv->count, prev_hist);
    prev_count = *cv;
    prev_hist = hv->count;
  }
  for (std::thread& t : ts) t.join();
  const MetricsSnapshot s = reg.Snapshot();
  EXPECT_EQ(*s.FindCounter("wt_test_ops_total"), kWriters * kOps);
  EXPECT_EQ(s.FindHistogram("wt_test_lat_us")->count, kWriters * kOps);
}

MetricsSnapshot SampleSnapshot() {
  MetricsRegistry reg;
  reg.GetCounter("wt_a_total")->Add(42);
  reg.GetCounter("wt_engine_memtable_strings{shard=\"0\"}")->Add(7);
  reg.GetGauge("wt_depth")->Set(-13);
  Histogram* h = reg.GetHistogram("wt_lat_us");
  for (uint64_t v : {0ull, 3ull, 900ull, 70000ull}) h->Record(v);
  reg.GetHistogram("wt_shard_lat_us{shard=\"1\"}")->Record(5);
  return reg.Snapshot();
}

TEST(SnapshotWire, RoundTripsExactly) {
  const MetricsSnapshot s = SampleSnapshot();
  const std::string bytes = SerializeMetricsSnapshot(s);
  MetricsSnapshot back;
  ASSERT_TRUE(ParseMetricsSnapshot(bytes.data(), bytes.size(), &back));
  EXPECT_EQ(back.counters, s.counters);
  EXPECT_EQ(back.gauges, s.gauges);
  ASSERT_EQ(back.histograms.size(), s.histograms.size());
  for (size_t i = 0; i < s.histograms.size(); ++i) {
    EXPECT_EQ(back.histograms[i].first, s.histograms[i].first);
    EXPECT_EQ(back.histograms[i].second.buckets,
              s.histograms[i].second.buckets);
    EXPECT_EQ(back.histograms[i].second.count, s.histograms[i].second.count);
    EXPECT_EQ(back.histograms[i].second.sum, s.histograms[i].second.sum);
    EXPECT_EQ(back.histograms[i].second.max, s.histograms[i].second.max);
  }
  // Re-serialization is byte-identical: the parse preserved order.
  EXPECT_EQ(SerializeMetricsSnapshot(back), bytes);
}

TEST(SnapshotWire, EveryByteFlipIsRejected) {
  const std::string bytes = SerializeMetricsSnapshot(SampleSnapshot());
  MetricsSnapshot sink;
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string bad = bytes;
    bad[i] = static_cast<char>(bad[i] ^ 0x5A);
    EXPECT_FALSE(ParseMetricsSnapshot(bad.data(), bad.size(), &sink))
        << "flip at byte " << i << " was accepted";
  }
  // Truncations: torn bytes must fail cleanly, never over-read.
  for (size_t len = 0; len < bytes.size(); len += 13) {
    EXPECT_FALSE(ParseMetricsSnapshot(bytes.data(), len, &sink)) << len;
  }
  // Trailing garbage is a format violation, not padding.
  const std::string padded = bytes + std::string(4, '\0');
  EXPECT_FALSE(ParseMetricsSnapshot(padded.data(), padded.size(), &sink));
}

TEST(SnapshotText, NameSplicingAndRendering) {
  EXPECT_EQ(MetricNameWith("wt_lat_us", "_count"), "wt_lat_us_count");
  EXPECT_EQ(MetricNameWith("wt_m{shard=\"0\"}", "_sum"),
            "wt_m_sum{shard=\"0\"}");
  EXPECT_EQ(MetricNameWith("wt_m{shard=\"0\"}", "", "quantile=\"0.5\""),
            "wt_m{shard=\"0\",quantile=\"0.5\"}");
  EXPECT_EQ(MetricNameWith("wt_m", "", "quantile=\"0.99\""),
            "wt_m{quantile=\"0.99\"}");
  const std::string text = RenderPromText(SampleSnapshot());
  EXPECT_NE(text.find("wt_a_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("wt_depth -13\n"), std::string::npos);
  EXPECT_NE(text.find("wt_lat_us_count 4\n"), std::string::npos);
  EXPECT_NE(text.find("wt_lat_us{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("wt_engine_memtable_strings{shard=\"0\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("wt_shard_lat_us_count{shard=\"1\"} 1\n"),
            std::string::npos)
      << "labeled histogram names must splice suffixes before the brace";
}

TEST(SlowRing, ThresholdGatesAndEvictsOldestFirst) {
  SlowRequestRing ring(/*capacity=*/3, /*threshold_ns=*/100);
  SlowRequestRecord r;
  r.total_ns = 99;
  r.request_id = 1;
  ring.MaybeRecord(r);  // below threshold: dropped
  EXPECT_TRUE(ring.Snapshot().empty());
  for (uint64_t id = 2; id <= 6; ++id) {
    r.request_id = id;
    r.total_ns = 100 + id;
    ring.MaybeRecord(r);
  }
  const std::vector<SlowRequestRecord> got = ring.Snapshot();
  ASSERT_EQ(got.size(), 3u);  // capacity bound
  // Last three survive, oldest first.
  EXPECT_EQ(got[0].request_id, 4u);
  EXPECT_EQ(got[1].request_id, 5u);
  EXPECT_EQ(got[2].request_id, 6u);

  // A zero capacity is coerced to one slot, not a divide-by-zero.
  SlowRequestRing tiny(/*capacity=*/0, /*threshold_ns=*/0);
  for (uint64_t id = 1; id <= 3; ++id) {
    r.request_id = id;
    r.total_ns = id;
    tiny.MaybeRecord(r);
  }
  const std::vector<SlowRequestRecord> last = tiny.Snapshot();
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(last[0].request_id, 3u);
}

}  // namespace
}  // namespace wt::obs
