// Cross-representation integration tests: every indexed-sequence
// representation in the library — the three Wavelet Trie variants and the
// three related-work baselines — answers the same queries on the same
// workloads. Any divergence between two representations is a bug in one of
// them; the naive vector-of-strings oracle arbitrates.
//
// Also covers lifecycle paths a database would exercise: streaming into an
// append-only trie and snapshotting it into the static structure, and
// mixed insert/delete/query traffic against the fully dynamic trie.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>
#include <vector>

#include "core/btree_sequence.hpp"
#include "core/lex_sequence.hpp"
#include "core/string_sequence.hpp"
#include "core/wavelet_trie.hpp"
#include "text/text_collection.hpp"
#include "util/workloads.hpp"

namespace wt {
namespace {

struct WorkloadParam {
  size_t n;
  size_t domains;
  size_t paths;
  uint64_t seed;
  bool add_edge_strings;  // inject empty/one-char/nested-prefix values
};

class AllRepresentations : public ::testing::TestWithParam<WorkloadParam> {
 protected:
  void SetUp() override {
    const auto p = GetParam();
    UrlLogGenerator gen(
        {.num_domains = p.domains, .paths_per_domain = p.paths, .seed = p.seed});
    seq_ = gen.Take(p.n);
    if (p.add_edge_strings) {
      std::mt19937_64 rng(p.seed ^ 0xE);
      const std::vector<std::string> edges{"", "a", "ab", "abc", "b",
                                           seq_[0] + "/deeper"};
      for (const auto& e : edges) {
        seq_.insert(seq_.begin() + rng() % seq_.size(), e);
        seq_.insert(seq_.begin() + rng() % seq_.size(), e);
      }
    }
    static_trie_ = StringSequence<WaveletTrie>(seq_);
    for (const auto& s : seq_) {
      append_trie_.Append(s);
      deam_trie_.Append(s);
    }
    lex_ = LexMappedSequence(seq_);
    text_ = TextCollection(seq_);
    btree_ = BTreeIndexedSequence(seq_);
  }

  std::vector<std::string> Probes() const {
    std::vector<std::string> probes{seq_[0], seq_[seq_.size() / 2],
                                    seq_.back(), "not-in-the-sequence"};
    if (GetParam().add_edge_strings) {
      probes.push_back("");
      probes.push_back("ab");
    }
    return probes;
  }

  std::vector<std::string> seq_;
  StringSequence<WaveletTrie> static_trie_;
  StringSequence<AppendOnlyWaveletTrie> append_trie_;
  StringSequence<DeamortizedAppendOnlyWaveletTrie> deam_trie_;
  LexMappedSequence lex_;
  TextCollection text_;
  BTreeIndexedSequence btree_;
};

TEST_P(AllRepresentations, AccessAgreesEverywhere) {
  for (size_t i = 0; i < seq_.size(); i += 7) {
    const std::string& expect = seq_[i];
    ASSERT_EQ(static_trie_.Access(i), expect) << i;
    ASSERT_EQ(append_trie_.Access(i), expect) << i;
    ASSERT_EQ(deam_trie_.Access(i), expect) << i;
    ASSERT_EQ(lex_.Access(i), expect) << i;
    ASSERT_EQ(text_.Access(i), expect) << i;
    ASSERT_EQ(btree_.Access(i), expect) << i;
  }
}

TEST_P(AllRepresentations, RankAgreesEverywhere) {
  for (const auto& probe : Probes()) {
    size_t count = 0;
    for (size_t i = 0; i <= seq_.size(); i += 97) {
      count = 0;
      for (size_t j = 0; j < i; ++j) count += seq_[j] == probe;
      ASSERT_EQ(static_trie_.Rank(probe, i), count) << probe << "@" << i;
      ASSERT_EQ(append_trie_.Rank(probe, i), count);
      ASSERT_EQ(deam_trie_.Rank(probe, i), count);
      ASSERT_EQ(lex_.Rank(probe, i), count);
      ASSERT_EQ(text_.Rank(probe, i), count);
      ASSERT_EQ(btree_.Rank(probe, i), count);
    }
  }
}

TEST_P(AllRepresentations, SelectAgreesEverywhere) {
  for (const auto& probe : Probes()) {
    std::vector<size_t> positions;
    for (size_t i = 0; i < seq_.size(); ++i) {
      if (seq_[i] == probe) positions.push_back(i);
    }
    for (size_t k = 0; k <= positions.size(); k += (positions.size() / 5 + 1)) {
      const std::optional<size_t> expect =
          k < positions.size() ? std::optional<size_t>(positions[k])
                               : std::nullopt;
      ASSERT_EQ(static_trie_.Select(probe, k), expect) << probe << " k=" << k;
      ASSERT_EQ(append_trie_.Select(probe, k), expect);
      ASSERT_EQ(deam_trie_.Select(probe, k), expect);
      ASSERT_EQ(lex_.Select(probe, k), expect);
      ASSERT_EQ(text_.Select(probe, k), expect);
      ASSERT_EQ(btree_.Select(probe, k), expect);
    }
  }
}

TEST_P(AllRepresentations, PrefixOpsAgreeEverywhere) {
  UrlLogGenerator gen({.num_domains = GetParam().domains, .seed = 1});
  const std::vector<std::string> prefixes{gen.Domain(0), gen.Domain(1) + "/",
                                          "www.", "zzz-nothing", ""};
  for (const auto& p : prefixes) {
    // RankPrefix at sampled positions.
    for (size_t i = 0; i <= seq_.size(); i += 131) {
      size_t count = 0;
      for (size_t j = 0; j < i; ++j) {
        count += seq_[j].compare(0, p.size(), p) == 0;
      }
      ASSERT_EQ(static_trie_.RankPrefix(p, i), count) << p << "@" << i;
      ASSERT_EQ(append_trie_.RankPrefix(p, i), count);
      ASSERT_EQ(lex_.RankPrefix(p, i), count);
      ASSERT_EQ(text_.RankPrefix(p, i), count);
      ASSERT_EQ(btree_.RankPrefix(p, i), count);
    }
    // SelectPrefix for sampled ks.
    std::vector<size_t> positions;
    for (size_t i = 0; i < seq_.size(); ++i) {
      if (seq_[i].compare(0, p.size(), p) == 0) positions.push_back(i);
    }
    for (size_t k = 0; k <= positions.size(); k += (positions.size() / 4 + 1)) {
      const std::optional<size_t> expect =
          k < positions.size() ? std::optional<size_t>(positions[k])
                               : std::nullopt;
      ASSERT_EQ(static_trie_.SelectPrefix(p, k), expect) << p << " k=" << k;
      ASSERT_EQ(append_trie_.SelectPrefix(p, k), expect);
      ASSERT_EQ(lex_.SelectPrefix(p, k), expect);
      ASSERT_EQ(text_.SelectPrefix(p, k), expect);
      ASSERT_EQ(btree_.SelectPrefix(p, k), expect);
    }
  }
}

TEST_P(AllRepresentations, DistinctCountsAgree) {
  std::vector<std::string> sorted(seq_);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  EXPECT_EQ(static_trie_.NumDistinct(), sorted.size());
  EXPECT_EQ(append_trie_.NumDistinct(), sorted.size());
  EXPECT_EQ(deam_trie_.NumDistinct(), sorted.size());
  EXPECT_EQ(lex_.NumDistinct(), sorted.size());
}

TEST_P(AllRepresentations, CompressedBeatsUncompressedBaselines) {
  // The headline space claim, checked as an invariant on every workload:
  // the static trie is smaller than the lex dictionary + balanced tree and
  // far smaller than the B-tree index.
  EXPECT_LT(static_trie_.SizeInBits(), lex_.SizeInBits());
  EXPECT_LT(static_trie_.SizeInBits(), btree_.SizeInBits() / 4);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, AllRepresentations,
    ::testing::Values(WorkloadParam{300, 5, 4, 11, false},
                      WorkloadParam{800, 20, 10, 12, false},
                      WorkloadParam{500, 3, 30, 13, true},
                      WorkloadParam{1200, 40, 3, 14, true}));

TEST_P(AllRepresentations, PrefixRestrictedDistinctMatchesNaive) {
  UrlLogGenerator gen({.num_domains = GetParam().domains, .seed = 1});
  const std::vector<std::string> prefixes{gen.Domain(0), gen.Domain(1) + "/sec",
                                          "www.", "", "zzz-nothing"};
  const size_t l = seq_.size() / 5, r = seq_.size() - seq_.size() / 7;
  for (const auto& p : prefixes) {
    std::map<std::string, size_t> expect;
    for (size_t i = l; i < r; ++i) {
      if (seq_[i].compare(0, p.size(), p) == 0) ++expect[seq_[i]];
    }
    std::map<std::string, size_t> from_static;
    static_trie_.DistinctInRangeWithPrefix(
        p, l, r, [&](const std::string& v, size_t c) { from_static[v] = c; });
    ASSERT_EQ(from_static, expect) << "static, prefix '" << p << "'";
    std::map<std::string, size_t> from_append;
    append_trie_.DistinctInRangeWithPrefix(
        p, l, r, [&](const std::string& v, size_t c) { from_append[v] = c; });
    ASSERT_EQ(from_append, expect) << "append-only, prefix '" << p << "'";
  }
}

// ------------------------------------------------------- lifecycle paths

TEST(Lifecycle, StreamingThenSnapshotToStatic) {
  // Ingest through the append-only trie, then "compact" into the static
  // structure (a database flush); both must agree, and the static one must
  // not be larger.
  UrlLogGenerator gen({.num_domains = 15, .seed = 31});
  StringSequence<AppendOnlyWaveletTrie> stream;
  std::vector<std::string> log;
  for (int i = 0; i < 3000; ++i) {
    log.push_back(gen.Next());
    stream.Append(log.back());
  }
  // Snapshot by sequential range access (Section 5), not by re-reading the
  // input: this exercises ForEachInRange as the extraction path.
  std::vector<std::string> extracted;
  extracted.reserve(stream.size());
  stream.ForEachInRange(0, stream.size(), [&](size_t i, const std::string& s) {
    ASSERT_EQ(i, extracted.size());
    extracted.push_back(s);
  });
  ASSERT_EQ(extracted, log);
  StringSequence<WaveletTrie> snapshot(extracted);
  ASSERT_EQ(snapshot.size(), stream.size());
  for (size_t i = 0; i < log.size(); i += 101) {
    ASSERT_EQ(snapshot.Access(i), stream.Access(i));
  }
  const std::string domain = gen.Domain(2);
  ASSERT_EQ(snapshot.CountPrefix(domain), stream.CountPrefix(domain));
  EXPECT_LE(snapshot.SizeInBits(), stream.SizeInBits());
}

TEST(Lifecycle, FreezeSnapshotsStreamingSequence) {
  UrlLogGenerator gen({.num_domains = 10, .seed = 8});
  StringSequence<AppendOnlyWaveletTrie> stream;
  std::vector<std::string> log;
  for (int i = 0; i < 2000; ++i) {
    log.push_back(gen.Next());
    stream.Append(log.back());
  }
  const StringSequence<WaveletTrie> frozen = stream.Freeze();
  ASSERT_EQ(frozen.size(), stream.size());
  ASSERT_EQ(frozen.NumDistinct(), stream.NumDistinct());
  for (size_t i = 0; i < log.size(); i += 53) {
    ASSERT_EQ(frozen.Access(i), log[i]);
  }
  const std::string d = gen.Domain(1);
  EXPECT_EQ(frozen.CountPrefix(d), stream.CountPrefix(d));
  EXPECT_EQ(frozen.Rank(log[7], 1500), stream.Rank(log[7], 1500));
  EXPECT_LE(frozen.SizeInBits(), stream.SizeInBits());
}

// Fixed seed kept out-of-line so a failure message identifies the run.
uint64_t committed_seed() { return 0xC0FFEE; }

TEST(Lifecycle, DynamicChurnAgainstNaive) {
  // Mixed insert/delete/append/query traffic vs a plain vector oracle.
  std::mt19937_64 rng(committed_seed());
  StringSequence<DynamicWaveletTrie> dyn;
  std::vector<std::string> oracle;
  UrlLogGenerator gen({.num_domains = 8, .paths_per_domain = 5, .seed = 77});
  for (int op = 0; op < 4000; ++op) {
    const unsigned dice = rng() % 10;
    if (dice < 5 || oracle.empty()) {  // insert at random position
      const std::string s = gen.Next();
      const size_t pos = rng() % (oracle.size() + 1);
      dyn.Insert(s, pos);
      oracle.insert(oracle.begin() + pos, s);
    } else if (dice < 7) {  // delete
      const size_t pos = rng() % oracle.size();
      dyn.Delete(pos);
      oracle.erase(oracle.begin() + pos);
    } else {  // probe
      ASSERT_EQ(dyn.size(), oracle.size());
      const size_t pos = rng() % oracle.size();
      ASSERT_EQ(dyn.Access(pos), oracle[pos]) << "op " << op;
      const std::string& probe = oracle[rng() % oracle.size()];
      size_t count = 0;
      for (size_t j = 0; j < pos; ++j) count += oracle[j] == probe;
      ASSERT_EQ(dyn.Rank(probe, pos), count) << "op " << op;
    }
  }
  // Full final sweep.
  for (size_t i = 0; i < oracle.size(); ++i) {
    ASSERT_EQ(dyn.Access(i), oracle[i]);
  }

  // Empty it out completely: alphabet must shrink back to nothing.
  while (!oracle.empty()) {
    dyn.Delete(oracle.size() - 1);
    oracle.pop_back();
  }
  EXPECT_EQ(dyn.size(), 0u);
  EXPECT_EQ(dyn.NumDistinct(), 0u);
}

}  // namespace
}  // namespace wt
