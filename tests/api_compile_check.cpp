// Compile-time check of the public API surface: explicitly instantiates
// every policy (and both codec families) so the api/ headers are fully
// compiled under -Wall -Wextra -Werror (see CMakeLists.txt). Not a runtime
// test — building this TU is the assertion.
#include "api/sequence.hpp"

template class wtrie::Sequence<wtrie::Static>;
template class wtrie::Sequence<wtrie::AppendOnly>;
template class wtrie::Sequence<wtrie::Dynamic>;
template class wtrie::Sequence<wtrie::Static, wt::RawByteCodec>;
template class wtrie::Sequence<wtrie::Static, wt::FixedIntCodec>;
template class wtrie::Sequence<wtrie::Dynamic, wt::HashedIntCodec>;
template class wtrie::ScanCursor<wt::WaveletTrie, wt::ByteCodec>;
template class wtrie::DistinctCursor<std::string>;

// The member templates Freeze/Thaw are not reached by explicit class
// instantiation; force them too.
template wtrie::Sequence<wtrie::AppendOnly, wt::ByteCodec>
wtrie::Sequence<wtrie::Static, wt::ByteCodec>::Thaw<wtrie::AppendOnly>() const;
template wtrie::Sequence<wtrie::Dynamic, wt::ByteCodec>
wtrie::Sequence<wtrie::Static, wt::ByteCodec>::Thaw<wtrie::Dynamic>() const;

int main() { return 0; }
