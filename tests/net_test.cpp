// Tests for the serving layer (src/net/, DESIGN.md #11):
//   * frame parse taxonomy: round trip, torn (kNeedMore), garbage magic,
//     version skew, unknown opcodes, oversized announcements, checksum
//     failures — and the DecodeRequest bounds (lying counts, trailing
//     bytes, item ceilings);
//   * session state machine: incremental extraction across torn reads,
//     the backpressure ladder (soft pause / hard disconnect), lazy write
//     buffer compaction;
//   * admission queue with a ManualClock: shed-at-the-door on both bounds
//     with honest retry-after, deadline-at-dequeue, drain-mode refusal,
//     the admitted == completed + expired accounting identity;
//   * server loopback fault tests (Linux): differential round trips vs a
//     pinned snapshot oracle, per-request errors that keep the connection,
//     stream errors that end it, shed-under-burst with manual dispatch,
//     deadline expiry mid-queue with a manual clock, slow-client
//     disconnect, and graceful shutdown that answers everything admitted.
//
// All server tests run under TSan in CI (two server threads + client
// threads exercise the completion handoff and the atomics).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/admission.hpp"
#include "net/clock.hpp"
#include "net/frame.hpp"
#include "net/session.hpp"

#if defined(__linux__)
#include <chrono>
#include <thread>

#include "engine/engine.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "util/workloads.hpp"
#endif

namespace wt::net {
namespace {

// ----------------------------------------------------------------- framing

std::string AccessPayloadOf(const std::vector<uint64_t>& pos) {
  PayloadWriter w;
  w.Pod<uint32_t>(static_cast<uint32_t>(pos.size()));
  for (uint64_t p : pos) w.Pod<uint64_t>(p);
  return w.Take();
}

TEST(Frame, RoundTrip) {
  const std::string payload = AccessPayloadOf({1, 2, 3});
  const std::string bytes = EncodeFrame(
      static_cast<uint8_t>(MsgType::kAccess), /*request_id=*/42,
      /*deadline_ms=*/7, payload);
  Frame f;
  size_t consumed = 0;
  ASSERT_EQ(TryParseFrame(bytes.data(), bytes.size(), kDefaultMaxPayload, &f,
                          &consumed),
            FrameParse::kFrame);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(f.header.request_id, 42u);
  EXPECT_EQ(f.header.deadline_ms, 7u);
  EXPECT_EQ(f.header.type, static_cast<uint8_t>(MsgType::kAccess));
  EXPECT_EQ(f.payload, payload);
}

TEST(Frame, TornWaitsConsumingNothing) {
  const std::string bytes = EncodeFrame(
      static_cast<uint8_t>(MsgType::kPing), 1, 0, "");
  Frame f;
  size_t consumed = 99;
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    ASSERT_EQ(TryParseFrame(bytes.data(), cut, kDefaultMaxPayload, &f,
                            &consumed),
              FrameParse::kNeedMore)
        << "cut=" << cut;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(Frame, ErrorTaxonomy) {
  std::string ok = EncodeFrame(static_cast<uint8_t>(MsgType::kAccess), 1, 0,
                               AccessPayloadOf({5}));
  Frame f;
  size_t consumed = 0;
  auto parse = [&](const std::string& b, uint32_t max_payload) {
    return TryParseFrame(b.data(), b.size(), max_payload, &f, &consumed);
  };

  std::string bad = ok;
  bad[0] ^= 0x5A;  // magic
  EXPECT_EQ(parse(bad, kDefaultMaxPayload), FrameParse::kBadMagic);

  bad = ok;
  bad[4] ^= 0x5A;  // version
  EXPECT_EQ(parse(bad, kDefaultMaxPayload), FrameParse::kBadVersion);

  bad = ok;
  bad[6] = 0x55;  // unknown opcode
  EXPECT_EQ(parse(bad, kDefaultMaxPayload), FrameParse::kBadType);

  bad = ok;
  bad[7] = 1;  // reserved flags must be zero
  EXPECT_EQ(parse(bad, kDefaultMaxPayload), FrameParse::kBadType);

  // Oversized is judged from the announced length, before any body bytes
  // arrive — a lying length field must not grow the read buffer.
  EXPECT_EQ(parse(ok, /*max_payload=*/4), FrameParse::kOversized);

  bad = ok;
  bad[sizeof(FrameHeader) + 1] ^= 0x5A;  // payload byte
  EXPECT_EQ(parse(bad, kDefaultMaxPayload), FrameParse::kBadChecksum);
}

TEST(Frame, DecodeRequestBounds) {
  RequestBody body;

  // Valid access request.
  ASSERT_TRUE(DecodeRequest(MsgType::kAccess, AccessPayloadOf({9, 11}), &body));
  EXPECT_EQ(body.nums, (std::vector<uint64_t>{9, 11}));

  // Trailing bytes after the last item are a malformed payload.
  EXPECT_FALSE(
      DecodeRequest(MsgType::kAccess, AccessPayloadOf({9}) + "x", &body));

  // A count the remaining bytes cannot cover is rejected before reserve.
  PayloadWriter lying;
  lying.Pod<uint32_t>(1000);
  lying.Pod<uint64_t>(1);
  EXPECT_FALSE(DecodeRequest(MsgType::kAccess, lying.Take(), &body));

  // Item ceiling: even a self-consistent payload cannot ask for more than
  // kMaxItemsPerRequest items in one frame.
  PayloadWriter big;
  big.Pod<uint32_t>(kMaxItemsPerRequest + 1);
  for (uint32_t i = 0; i <= kMaxItemsPerRequest; ++i) big.Pod<uint64_t>(i);
  EXPECT_FALSE(DecodeRequest(MsgType::kAccess, big.Take(), &body));

  // Rank interleaves (pos, value) pairs.
  PayloadWriter rank;
  rank.Pod<uint32_t>(1);
  rank.Pod<uint64_t>(3);
  rank.Str("abc");
  ASSERT_TRUE(DecodeRequest(MsgType::kRank, rank.Take(), &body));
  EXPECT_EQ(body.nums, (std::vector<uint64_t>{3}));
  EXPECT_EQ(body.strings, (std::vector<std::string>{"abc"}));

  // An inner string length past the payload end is caught by the reader.
  PayloadWriter torn;
  torn.Pod<uint32_t>(1);
  torn.Pod<uint32_t>(1000);  // string claims 1000 bytes, none follow
  EXPECT_FALSE(DecodeRequest(MsgType::kCountPrefix, torn.Take(), &body));

  // Ping and Stats carry no payload.
  EXPECT_TRUE(DecodeRequest(MsgType::kPing, "", &body));
  EXPECT_FALSE(DecodeRequest(MsgType::kPing, "x", &body));

  PayloadWriter freq;
  freq.Pod<uint64_t>(0);
  freq.Pod<uint64_t>(100);
  freq.Pod<uint64_t>(2);
  ASSERT_TRUE(DecodeRequest(MsgType::kFrequent, freq.Take(), &body));
  EXPECT_EQ(body.range_hi, 100u);
  EXPECT_EQ(body.threshold, 2u);
}

// ----------------------------------------------------------------- session

TEST(Session, ExtractsFramesAcrossTornReads) {
  Session s(/*conn_id=*/1, SessionLimits{});
  const std::string two =
      EncodeFrame(static_cast<uint8_t>(MsgType::kPing), 1, 0, "") +
      EncodeFrame(static_cast<uint8_t>(MsgType::kAccess), 2, 0,
                  AccessPayloadOf({7}));
  std::vector<Frame> frames;
  // Feed a byte at a time: a mid-frame buffer parses kNeedMore, a byte
  // that completes a frame parses kFrame — never an error, and frames
  // appear exactly when complete.
  for (char c : two) {
    s.AppendReadBytes(&c, 1);
    const size_t before = frames.size();
    const FrameParse r = s.ExtractFrames(&frames);
    if (frames.size() > before) {
      ASSERT_EQ(r, FrameParse::kFrame);
    } else {
      ASSERT_EQ(r, FrameParse::kNeedMore);
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].header.request_id, 1u);
  EXPECT_EQ(frames[1].header.request_id, 2u);

  // A stream error after a valid frame still yields the valid frame.
  frames.clear();
  std::string tail = EncodeFrame(static_cast<uint8_t>(MsgType::kPing), 3, 0, "");
  tail += "garbage garbage garbage garbage ";
  s.AppendReadBytes(tail.data(), tail.size());
  EXPECT_EQ(s.ExtractFrames(&frames), FrameParse::kBadMagic);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.request_id, 3u);
}

TEST(Session, BackpressureLadder) {
  SessionLimits limits;
  limits.write_buffer_soft = 64;
  limits.write_buffer_hard = 256;
  Session s(1, limits);
  EXPECT_FALSE(s.ReadPaused());
  s.EnqueueWrite(std::string(65, 'a'));
  EXPECT_TRUE(s.ReadPaused());
  EXPECT_FALSE(s.OverHardLimit());
  s.EnqueueWrite(std::string(200, 'b'));
  EXPECT_TRUE(s.OverHardLimit());

  // Draining re-enables reading; partially consumed data stays readable
  // through compaction.
  s.ConsumeWritten(230);
  EXPECT_EQ(s.PendingWriteBytes(), 35u);
  EXPECT_FALSE(s.ReadPaused());
  s.EnqueueWrite("zz");  // triggers lazy compaction internally
  EXPECT_EQ(s.PendingWriteBytes(), 37u);
  std::string rest(s.PendingWriteData(), s.PendingWriteBytes());
  EXPECT_EQ(rest, std::string(35, 'b') + "zz");
}

// --------------------------------------------------------------- admission

PendingRequest Req(uint64_t id, uint64_t deadline_ns, size_t cost = 100) {
  PendingRequest r;
  r.conn_id = 1;
  r.request_id = id;
  r.type = static_cast<uint8_t>(MsgType::kAccess);
  r.deadline_ns = deadline_ns;
  r.cost_bytes = cost;
  return r;
}

TEST(AdmissionQueue, ShedsAtCountBoundWithRetryHint) {
  ManualClock clock;
  AdmissionQueue q({.max_requests = 2, .max_bytes = 1u << 20}, &clock);
  uint32_t retry = 0;
  EXPECT_EQ(q.TryOffer(Req(1, 0), &retry), AdmissionQueue::Offer::kAdmitted);
  EXPECT_EQ(q.TryOffer(Req(2, 0), &retry), AdmissionQueue::Offer::kAdmitted);
  EXPECT_EQ(q.TryOffer(Req(3, 0), &retry), AdmissionQueue::Offer::kShed);
  EXPECT_GE(retry, 1u);

  // The hint tracks observed service time: after slow requests the backoff
  // for the same backlog grows.
  q.NoteServiced(50 * 1000000ull);  // 50ms each
  uint32_t slow_retry = 0;
  EXPECT_EQ(q.TryOffer(Req(4, 0), &slow_retry), AdmissionQueue::Offer::kShed);
  EXPECT_GT(slow_retry, retry);

  const AdmissionStats st = q.stats();
  EXPECT_EQ(st.offered, 4u);
  EXPECT_EQ(st.admitted, 2u);
  EXPECT_EQ(st.shed, 2u);
}

TEST(AdmissionQueue, ShedsAtByteBound) {
  ManualClock clock;
  AdmissionQueue q({.max_requests = 1000, .max_bytes = 250}, &clock);
  uint32_t retry = 0;
  EXPECT_EQ(q.TryOffer(Req(1, 0, 200), &retry),
            AdmissionQueue::Offer::kAdmitted);
  EXPECT_EQ(q.TryOffer(Req(2, 0, 200), &retry), AdmissionQueue::Offer::kShed);

  // Draining the queue frees its byte claim.
  std::vector<PendingRequest> batch, expired;
  ASSERT_TRUE(q.TryPopBatch(16, &batch, &expired));
  EXPECT_EQ(q.TryOffer(Req(3, 0, 200), &retry),
            AdmissionQueue::Offer::kAdmitted);
}

TEST(AdmissionQueue, DeadlineEnforcedAtDequeue) {
  ManualClock clock;
  AdmissionQueue q({}, &clock);
  uint32_t retry = 0;
  const uint64_t now = clock.NowNanos();
  // One request expiring at +10ms, one at +100ms, one without a deadline.
  ASSERT_EQ(q.TryOffer(Req(1, now + 10 * 1000000ull), &retry),
            AdmissionQueue::Offer::kAdmitted);
  ASSERT_EQ(q.TryOffer(Req(2, now + 100 * 1000000ull), &retry),
            AdmissionQueue::Offer::kAdmitted);
  ASSERT_EQ(q.TryOffer(Req(3, 0), &retry), AdmissionQueue::Offer::kAdmitted);

  clock.AdvanceMillis(50);  // request 1 is now stale in the queue
  std::vector<PendingRequest> batch, expired;
  ASSERT_TRUE(q.PopBatch(16, &batch, &expired));
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].request_id, 1u);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].request_id, 2u);
  EXPECT_EQ(batch[1].request_id, 3u);
  EXPECT_EQ(q.stats().expired_at_dequeue, 1u);
}

TEST(AdmissionQueue, CloseRefusesNewAndDrainsAdmitted) {
  ManualClock clock;
  AdmissionQueue q({}, &clock);
  uint32_t retry = 0;
  ASSERT_EQ(q.TryOffer(Req(1, 0), &retry), AdmissionQueue::Offer::kAdmitted);
  q.Close();
  EXPECT_EQ(q.TryOffer(Req(2, 0), &retry), AdmissionQueue::Offer::kClosed);

  // Already-admitted work still drains; then Pop reports drained-and-done.
  std::vector<PendingRequest> batch, expired;
  ASSERT_TRUE(q.PopBatch(16, &batch, &expired));
  ASSERT_EQ(batch.size(), 1u);
  q.NoteServiced(1000);
  EXPECT_FALSE(q.PopBatch(16, &batch, &expired));

  const AdmissionStats st = q.stats();
  EXPECT_EQ(st.refused_closed, 1u);
  // The accounting identity that "nothing vanishes" rests on.
  EXPECT_EQ(st.admitted, st.completed + st.expired_at_dequeue +
                             st.expired_before_reply);
}

// ------------------------------------------------------- server (loopback)

#if defined(__linux__)

using StrEngine = wtrie::Engine<wt::ByteCodec>;
using StrServer = Server<wt::ByteCodec>;

std::vector<std::string> UrlWorkload(size_t n, uint64_t seed) {
  wt::UrlLogOptions opt;
  opt.num_domains = 24;
  opt.paths_per_domain = 12;
  opt.seed = seed;
  wt::UrlLogGenerator gen(opt);
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(gen.Next());
  return out;
}

/// An in-memory engine preloaded with `values`, flushed so reads see all
/// of it, plus a pinned snapshot to use as the oracle.
struct ServedStore {
  explicit ServedStore(const std::vector<std::string>& values) {
    auto opened = StrEngine::Open({.num_shards = 2});
    EXPECT_TRUE(opened.ok());
    engine = std::move(*opened);
    EXPECT_TRUE(engine->AppendBatch(values).ok());
    EXPECT_TRUE(engine->Flush().ok());
  }
  std::unique_ptr<StrEngine> engine;
};

uint8_t ReplyType(MsgType req) {
  return static_cast<uint8_t>(req) | kResponseBit;
}

/// Decodes a response frame: returns the status and leaves *r positioned
/// after the status byte.
WireStatus StatusOf(const Frame& f, PayloadReader* r) {
  WireStatus st = WireStatus::kError;
  EXPECT_TRUE(Client::DecodeStatus(f, &st, r));
  return st;
}

TEST(ServerTest, DifferentialRoundTrip) {
  const std::vector<std::string> values = UrlWorkload(4096, 77);
  ServedStore store(values);
  auto snap = store.engine->GetSnapshot();

  auto server = StrServer::Start(store.engine.get(), {});
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect((*server)->port());
  ASSERT_TRUE(client.ok());

  // Ping.
  {
    auto resp = client->Call(MsgType::kPing, 1, 0, "");
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->header.type, ReplyType(MsgType::kPing));
    EXPECT_EQ(resp->header.request_id, 1u);
    PayloadReader r(nullptr, 0);
    EXPECT_EQ(StatusOf(*resp, &r), WireStatus::kOk);
  }

  // Access vs the snapshot oracle.
  {
    std::vector<uint64_t> pos;
    for (uint64_t p = 0; p < values.size(); p += 97) pos.push_back(p);
    auto resp = client->Call(MsgType::kAccess, 2, 0,
                             Client::AccessPayload(pos));
    ASSERT_TRUE(resp.ok());
    PayloadReader r(nullptr, 0);
    ASSERT_EQ(StatusOf(*resp, &r), WireStatus::kOk);
    uint32_t n = 0;
    ASSERT_TRUE(r.Pod(&n));
    ASSERT_EQ(n, pos.size());
    auto want = snap.AccessBatch(pos);
    ASSERT_TRUE(want.ok());
    for (uint32_t i = 0; i < n; ++i) {
      std::string got;
      ASSERT_TRUE(r.Str(&got));
      EXPECT_EQ(got, (*want)[i]);
    }
    EXPECT_TRUE(r.AtEnd());
  }

  // Rank and Select vs the oracle.
  {
    std::vector<std::string> vals = {values[0], values[1], "not-present"};
    std::vector<uint64_t> pos = {values.size(), values.size() / 2, 10};
    auto resp = client->Call(MsgType::kRank, 3, 0,
                             Client::RankPayload(vals, pos));
    ASSERT_TRUE(resp.ok());
    PayloadReader r(nullptr, 0);
    ASSERT_EQ(StatusOf(*resp, &r), WireStatus::kOk);
    uint32_t n = 0;
    ASSERT_TRUE(r.Pod(&n));
    auto want = snap.RankBatch(vals, pos);
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(n, want->size());
    for (uint32_t i = 0; i < n; ++i) {
      uint64_t got = 0;
      ASSERT_TRUE(r.Pod(&got));
      EXPECT_EQ(got, (*want)[i]);
    }

    auto sresp = client->Call(MsgType::kSelect, 4, 0,
                              Client::SelectPayload(vals, {0, 1, 0}));
    ASSERT_TRUE(sresp.ok());
    PayloadReader sr(nullptr, 0);
    ASSERT_EQ(StatusOf(*sresp, &sr), WireStatus::kOk);
    ASSERT_TRUE(sr.Pod(&n));
    auto swant = snap.SelectBatch(vals, {0, 1, 0});
    ASSERT_TRUE(swant.ok());
    ASSERT_EQ(n, swant->size());
    for (uint32_t i = 0; i < n; ++i) {
      uint8_t has = 0;
      uint64_t v = 0;
      ASSERT_TRUE(sr.Pod(&has));
      ASSERT_TRUE(sr.Pod(&v));
      EXPECT_EQ(has != 0, (*swant)[i].has_value());
      if (has != 0) EXPECT_EQ(v, (*swant)[i].value());
    }
  }

  // CountPrefix and Frequent vs the oracle.
  {
    std::vector<std::string> prefixes = {"www.site1", "www.", "zzz"};
    auto resp = client->Call(MsgType::kCountPrefix, 5, 0,
                             Client::StringsPayload(prefixes));
    ASSERT_TRUE(resp.ok());
    PayloadReader r(nullptr, 0);
    ASSERT_EQ(StatusOf(*resp, &r), WireStatus::kOk);
    uint32_t n = 0;
    ASSERT_TRUE(r.Pod(&n));
    ASSERT_EQ(n, prefixes.size());
    for (uint32_t i = 0; i < n; ++i) {
      uint64_t got = 0;
      ASSERT_TRUE(r.Pod(&got));
      EXPECT_EQ(got, snap.CountPrefix(prefixes[i]));
    }

    auto fresp = client->Call(MsgType::kFrequent, 6, 0,
                              Client::FrequentPayload(0, values.size(), 100));
    ASSERT_TRUE(fresp.ok());
    PayloadReader fr(nullptr, 0);
    ASSERT_EQ(StatusOf(*fresp, &fr), WireStatus::kOk);
    ASSERT_TRUE(fr.Pod(&n));
    std::map<std::string, uint64_t> got;
    for (uint32_t i = 0; i < n; ++i) {
      std::string v;
      uint64_t c = 0;
      ASSERT_TRUE(fr.Str(&v));
      ASSERT_TRUE(fr.Pod(&c));
      got[v] = c;
    }
    auto want = snap.Frequent(0, values.size(), 100);
    ASSERT_TRUE(want.ok());
    std::map<std::string, uint64_t> expect;
    while (want->Next()) expect[want->value()] = want->count();
    EXPECT_EQ(got, expect);
  }

  // Append through the wire, then flush: the acked values are visible to
  // the next frozen snapshot (snapshots cover the frozen prefix by
  // design; the ack itself promises durability, not instant visibility).
  {
    auto resp = client->Call(MsgType::kAppend, 7, 0,
                             Client::StringsPayload({"net-a", "net-b"}));
    ASSERT_TRUE(resp.ok());
    PayloadReader r(nullptr, 0);
    EXPECT_EQ(StatusOf(*resp, &r), WireStatus::kOk);
    ASSERT_TRUE(store.engine->Flush().ok());
    auto after = store.engine->GetSnapshot();
    EXPECT_EQ(after.size(), values.size() + 2);
    auto rank = after.Rank("net-b", after.size());
    ASSERT_TRUE(rank.ok());
    EXPECT_EQ(*rank, 1u);
  }

  // Stats reports the admission counters.
  {
    auto resp = client->Call(MsgType::kStats, 8, 0, "");
    ASSERT_TRUE(resp.ok());
    PayloadReader r(nullptr, 0);
    ASSERT_EQ(StatusOf(*resp, &r), WireStatus::kOk);
    uint64_t offered = 0, admitted = 0, shed = 0;
    ASSERT_TRUE(r.Pod(&offered));
    ASSERT_TRUE(r.Pod(&admitted));
    ASSERT_TRUE(r.Pod(&shed));
    EXPECT_GE(offered, 6u);  // access, rank, select, countprefix, frequent,
                             // append (ping/stats are served inline)
    EXPECT_EQ(offered, admitted);
    EXPECT_EQ(shed, 0u);
  }

  ASSERT_TRUE((*server)->Stop().ok());
}

TEST(ServerTest, PerRequestErrorsKeepTheConnection) {
  ServedStore store(UrlWorkload(256, 3));
  auto server = StrServer::Start(store.engine.get(), {});
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect((*server)->port());
  ASSERT_TRUE(client.ok());

  // Out-of-range access answers kOutOfRange for that request only.
  {
    auto resp = client->Call(MsgType::kAccess, 1, 0,
                             Client::AccessPayload({1u << 20}));
    ASSERT_TRUE(resp.ok());
    PayloadReader r(nullptr, 0);
    EXPECT_EQ(StatusOf(*resp, &r), WireStatus::kOutOfRange);
  }

  // A checksum-valid frame whose payload does not decode is kBadRequest —
  // and the framing survives, so the next request still works.
  {
    auto resp = client->Call(MsgType::kAccess, 2, 0, "malformed!");
    ASSERT_TRUE(resp.ok());
    PayloadReader r(nullptr, 0);
    EXPECT_EQ(StatusOf(*resp, &r), WireStatus::kBadRequest);

    auto ping = client->Call(MsgType::kPing, 3, 0, "");
    ASSERT_TRUE(ping.ok());
    EXPECT_EQ(StatusOf(*ping, &r), WireStatus::kOk);
  }
  ASSERT_TRUE((*server)->Stop().ok());
}

TEST(ServerTest, StreamErrorsEndTheConnection) {
  ServedStore store(UrlWorkload(64, 5));
  auto server = StrServer::Start(store.engine.get(), {});
  ASSERT_TRUE(server.ok());

  // Garbage bytes: one typed error frame, then close.
  {
    auto client = Client::Connect((*server)->port());
    ASSERT_TRUE(client.ok());
    const std::string garbage(128, '!');
    ASSERT_TRUE(WriteAll(client->fd(), garbage.data(), garbage.size()).ok());
    auto resp = client->Recv();
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->header.request_id, 0u);  // id unknowable from garbage
    PayloadReader r(nullptr, 0);
    EXPECT_EQ(StatusOf(*resp, &r), WireStatus::kBadRequest);
    EXPECT_FALSE(client->Recv().ok());  // server closed after the error
  }

  // Oversized announcement: rejected from the header alone.
  {
    auto client = Client::Connect((*server)->port());
    ASSERT_TRUE(client.ok());
    FrameHeader h;
    h.magic = kFrameMagic;
    h.version = kFrameVersion;
    h.type = static_cast<uint8_t>(MsgType::kAccess);
    h.payload_len = kDefaultMaxPayload + 1;
    ASSERT_TRUE(WriteAll(client->fd(), &h, sizeof(h)).ok());
    auto resp = client->Recv();
    ASSERT_TRUE(resp.ok());
    PayloadReader r(nullptr, 0);
    EXPECT_EQ(StatusOf(*resp, &r), WireStatus::kBadRequest);
    EXPECT_FALSE(client->Recv().ok());
  }

  EXPECT_GE((*server)->stats().protocol_errors, 2u);
  ASSERT_TRUE((*server)->Stop().ok());
}

TEST(ServerTest, ShedUnderBurstIsExactWithManualDispatch) {
  ServedStore store(UrlWorkload(256, 9));
  ManualClock clock;
  StrServer::Options opt;
  opt.admission.max_requests = 16;
  opt.clock = &clock;
  opt.manual_dispatch = true;
  auto server = StrServer::Start(store.engine.get(), opt);
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect((*server)->port());
  ASSERT_TRUE(client.ok());

  // Burst 100 requests with nothing dispatching: exactly 16 admitted, 84
  // shed with a retry-after hint — synchronously, so the counts are exact.
  constexpr int kBurst = 100;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(client->Send(MsgType::kAccess, uint64_t(i), 0,
                             Client::AccessPayload({uint64_t(i) % 256}))
                    .ok());
  }
  int shed = 0;
  for (int i = 0; i < kBurst - 16; ++i) {
    auto resp = client->Recv();
    ASSERT_TRUE(resp.ok());
    PayloadReader r(nullptr, 0);
    ASSERT_EQ(StatusOf(*resp, &r), WireStatus::kOverloaded);
    uint32_t retry_ms = 0;
    ASSERT_TRUE(r.Pod(&retry_ms));
    EXPECT_GE(retry_ms, 1u);
    shed++;
  }
  EXPECT_EQ(shed, kBurst - 16);

  // Pump the dispatcher: the 16 admitted requests all answer kOk.
  while ((*server)->DispatchOnce()) {
  }
  for (int i = 0; i < 16; ++i) {
    auto resp = client->Recv();
    ASSERT_TRUE(resp.ok());
    PayloadReader r(nullptr, 0);
    EXPECT_EQ(StatusOf(*resp, &r), WireStatus::kOk);
  }

  const auto stats = (*server)->stats();
  EXPECT_EQ(stats.admission.offered, uint64_t(kBurst));
  EXPECT_EQ(stats.admission.admitted, 16u);
  EXPECT_EQ(stats.admission.shed, uint64_t(kBurst - 16));
  EXPECT_EQ(stats.admission.completed, 16u);
  ASSERT_TRUE((*server)->Stop().ok());
}

TEST(ServerTest, DeadlineExpiresMidQueue) {
  ServedStore store(UrlWorkload(256, 11));
  ManualClock clock;
  StrServer::Options opt;
  opt.clock = &clock;
  opt.manual_dispatch = true;
  auto server = StrServer::Start(store.engine.get(), opt);
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect((*server)->port());
  ASSERT_TRUE(client.ok());

  // Two requests: 10ms deadline and no deadline. Time passes (manually)
  // while both sit in the queue.
  ASSERT_TRUE(client->Send(MsgType::kAccess, 1, /*deadline_ms=*/10,
                           Client::AccessPayload({0}))
                  .ok());
  ASSERT_TRUE(client->Send(MsgType::kAccess, 2, /*deadline_ms=*/0,
                           Client::AccessPayload({0}))
                  .ok());
  // Wait until the I/O thread has admitted both before advancing time.
  while ((*server)->queue_depth() < 2) {
    std::this_thread::yield();
  }
  clock.AdvanceMillis(50);
  ASSERT_TRUE((*server)->DispatchOnce());

  auto first = client->Recv();
  ASSERT_TRUE(first.ok());
  auto second = client->Recv();
  ASSERT_TRUE(second.ok());
  const Frame& expired = first->header.request_id == 1 ? *first : *second;
  const Frame& served = first->header.request_id == 1 ? *second : *first;
  PayloadReader r(nullptr, 0);
  EXPECT_EQ(StatusOf(expired, &r), WireStatus::kDeadlineExceeded);
  EXPECT_EQ(StatusOf(served, &r), WireStatus::kOk);

  const auto stats = (*server)->stats();
  EXPECT_EQ(stats.admission.expired_at_dequeue, 1u);
  EXPECT_EQ(stats.admission.completed, 1u);
  EXPECT_EQ(stats.admission.admitted,
            stats.admission.completed + stats.admission.expired_at_dequeue +
                stats.admission.expired_before_reply);
  ASSERT_TRUE((*server)->Stop().ok());
}

TEST(ServerTest, SlowClientIsDisconnectedAtTheHardCap) {
  // ~20k distinct strings make a kFrequent reply of ~1MB from a 24-byte
  // request: the amplification lets a non-reading client overwhelm its
  // write buffer long before the test has to send much of anything.
  std::vector<std::string> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    values.push_back("distinct.example.com/item/" + std::to_string(i));
  }
  ServedStore store(values);
  StrServer::Options opt;
  opt.session.write_buffer_soft = 64u << 10;
  opt.session.write_buffer_hard = 256u << 10;
  auto server = StrServer::Start(store.engine.get(), opt);
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect((*server)->port());
  ASSERT_TRUE(client.ok());

  // Pipeline many amplifying requests and never read.
  for (int i = 0; i < 16; ++i) {
    if (!client
             ->Send(MsgType::kFrequent, uint64_t(i), 0,
                    Client::FrequentPayload(0, values.size(), 1))
             .ok()) {
      break;  // server already cut us off mid-write: also a pass
    }
  }
  // The server must disconnect us rather than buffer unboundedly.
  for (int spin = 0; spin < 10000; ++spin) {
    if ((*server)->stats().slow_client_disconnects > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE((*server)->stats().slow_client_disconnects, 1u);
  ASSERT_TRUE((*server)->Stop().ok());
}

TEST(ServerTest, GracefulShutdownAnswersEverythingAdmitted) {
  ServedStore store(UrlWorkload(512, 13));
  StrServer::Options opt;
  opt.manual_dispatch = true;  // hold requests in-queue across Stop()
  auto server = StrServer::Start(store.engine.get(), opt);
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect((*server)->port());
  ASSERT_TRUE(client.ok());

  constexpr int kInFlight = 8;
  for (int i = 0; i < kInFlight; ++i) {
    ASSERT_TRUE(client->Send(MsgType::kAccess, uint64_t(i), 0,
                             Client::AccessPayload({uint64_t(i)}))
                    .ok());
  }
  while ((*server)->queue_depth() < kInFlight) {
    std::this_thread::yield();
  }

  // Stop with the queue loaded: every admitted request must still answer.
  std::thread stopper([&] { ASSERT_TRUE((*server)->Stop().ok()); });
  int ok_replies = 0;
  for (int i = 0; i < kInFlight; ++i) {
    auto resp = client->Recv();
    ASSERT_TRUE(resp.ok());
    PayloadReader r(nullptr, 0);
    if (StatusOf(*resp, &r) == WireStatus::kOk) ok_replies++;
  }
  EXPECT_EQ(ok_replies, kInFlight);
  EXPECT_FALSE(client->Recv().ok());  // then the server goes away
  stopper.join();

  const auto stats = (*server)->stats();
  EXPECT_EQ(stats.admission.admitted, uint64_t(kInFlight));
  EXPECT_EQ(stats.admission.completed, uint64_t(kInFlight));
}

TEST(ServerTest, RequestsAfterCloseAnswerShuttingDown) {
  ServedStore store(UrlWorkload(64, 17));
  ManualClock clock;
  StrServer::Options opt;
  opt.clock = &clock;
  opt.manual_dispatch = true;
  auto server = StrServer::Start(store.engine.get(), opt);
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect((*server)->port());
  ASSERT_TRUE(client.ok());

  // Race-free variant of "request arrives during drain": Stop() in manual
  // mode drains synchronously, but the I/O thread keeps flushing until its
  // write buffers are empty — a request sent just before the close either
  // gets served or gets kShuttingDown, never silence. Here we assert the
  // post-close answer specifically by stopping first.
  std::thread stopper([&] { ASSERT_TRUE((*server)->Stop().ok()); });
  // The reply is either kShuttingDown (admission closed first) or a lost
  // connection (I/O thread exited first) — both are clean refusals; what
  // must never happen is an accepted-then-dropped request.
  auto resp = client->Call(MsgType::kAccess, 1, 0, Client::AccessPayload({0}));
  if (resp.ok()) {
    PayloadReader r(nullptr, 0);
    const WireStatus st = StatusOf(*resp, &r);
    EXPECT_TRUE(st == WireStatus::kShuttingDown || st == WireStatus::kOk);
  }
  stopper.join();
  const auto stats = (*server)->stats();
  EXPECT_EQ(stats.admission.admitted,
            stats.admission.completed + stats.admission.expired_at_dequeue +
                stats.admission.expired_before_reply);
}

TEST(ServerTest, CoalescesAcrossConnectionsAndEpochsTrackPublishes) {
  ServedStore store(UrlWorkload(512, 19));
  const uint64_t epoch0 = store.engine->PublishEpoch();

  ManualClock clock;
  StrServer::Options opt;
  opt.clock = &clock;
  opt.manual_dispatch = true;
  auto server = StrServer::Start(store.engine.get(), opt);
  ASSERT_TRUE(server.ok());

  // Two clients, three requests total, one DispatchOnce: the coalescer
  // merges them into single batch calls and every reply still routes to
  // the right connection and request id.
  auto c1 = Client::Connect((*server)->port());
  auto c2 = Client::Connect((*server)->port());
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  ASSERT_TRUE(
      c1->Send(MsgType::kAccess, 101, 0, Client::AccessPayload({1, 2})).ok());
  ASSERT_TRUE(
      c2->Send(MsgType::kAccess, 201, 0, Client::AccessPayload({3})).ok());
  ASSERT_TRUE(c2->Send(MsgType::kRank, 202, 0,
                       Client::RankPayload({"zzz"}, {100}))
                  .ok());
  while ((*server)->queue_depth() < 3) std::this_thread::yield();
  ASSERT_TRUE((*server)->DispatchOnce());

  auto snap = store.engine->GetSnapshot();
  {
    auto resp = c1->Recv();
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->header.request_id, 101u);
    PayloadReader r(nullptr, 0);
    ASSERT_EQ(StatusOf(*resp, &r), WireStatus::kOk);
    uint32_t n = 0;
    ASSERT_TRUE(r.Pod(&n));
    ASSERT_EQ(n, 2u);
    auto want = snap.AccessBatch({1, 2});
    ASSERT_TRUE(want.ok());
    for (uint32_t i = 0; i < n; ++i) {
      std::string got;
      ASSERT_TRUE(r.Str(&got));
      EXPECT_EQ(got, (*want)[i]);
    }
  }
  for (uint64_t want_id : {201u, 202u}) {
    auto resp = c2->Recv();
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->header.request_id, want_id);
    PayloadReader r(nullptr, 0);
    EXPECT_EQ(StatusOf(*resp, &r), WireStatus::kOk);
  }

  // Ingest + flush publishes new segments and bumps the epoch the
  // dispatcher keys its snapshot cache on.
  ASSERT_TRUE(store.engine->AppendBatch({"epoch-probe"}).ok());
  ASSERT_TRUE(store.engine->Flush().ok());
  EXPECT_GT(store.engine->PublishEpoch(), epoch0);

  // A post-publish request sees the new value through the re-pinned snap.
  ASSERT_TRUE(c1->Send(MsgType::kRank, 102, 0,
                       Client::RankPayload({"epoch-probe"},
                                           {store.engine->size()}))
                  .ok());
  while ((*server)->queue_depth() < 1) std::this_thread::yield();
  ASSERT_TRUE((*server)->DispatchOnce());
  auto resp = c1->Recv();
  ASSERT_TRUE(resp.ok());
  PayloadReader r(nullptr, 0);
  ASSERT_EQ(StatusOf(*resp, &r), WireStatus::kOk);
  uint32_t n = 0;
  ASSERT_TRUE(r.Pod(&n));
  ASSERT_EQ(n, 1u);
  uint64_t rank = 0;
  ASSERT_TRUE(r.Pod(&rank));
  EXPECT_EQ(rank, 1u);

  ASSERT_TRUE((*server)->Stop().ok());
}

TEST(ServerTest, CoalescedBatchDedupsRepeatedAccessPositions) {
  ServedStore store(UrlWorkload(512, 23));

  ManualClock clock;
  StrServer::Options opt;
  opt.clock = &clock;
  opt.manual_dispatch = true;
  auto server = StrServer::Start(store.engine.get(), opt);
  ASSERT_TRUE(server.ok());

  // Three requests hammer position 7, one asks {7, 9}: one dispatch batch
  // holds five requested positions but only two distinct ones. The dedup
  // (singleflight per dispatch) must answer every request correctly and
  // account for the three saved engine walks.
  auto c1 = Client::Connect((*server)->port());
  auto c2 = Client::Connect((*server)->port());
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  ASSERT_TRUE(
      c1->Send(MsgType::kAccess, 1, 0, Client::AccessPayload({7})).ok());
  ASSERT_TRUE(
      c1->Send(MsgType::kAccess, 2, 0, Client::AccessPayload({7})).ok());
  ASSERT_TRUE(
      c2->Send(MsgType::kAccess, 3, 0, Client::AccessPayload({7})).ok());
  ASSERT_TRUE(
      c2->Send(MsgType::kAccess, 4, 0, Client::AccessPayload({7, 9})).ok());
  while ((*server)->queue_depth() < 4) std::this_thread::yield();
  ASSERT_TRUE((*server)->DispatchOnce());

  auto snap = store.engine->GetSnapshot();
  auto want = snap.AccessBatch({7, 9});
  ASSERT_TRUE(want.ok());
  auto expect_access = [&](Client& c, uint64_t want_id,
                           std::vector<std::string> vals) {
    auto resp = c.Recv();
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->header.request_id, want_id);
    PayloadReader r(nullptr, 0);
    ASSERT_EQ(StatusOf(*resp, &r), WireStatus::kOk);
    uint32_t n = 0;
    ASSERT_TRUE(r.Pod(&n));
    ASSERT_EQ(n, vals.size());
    for (const std::string& v : vals) {
      std::string got;
      ASSERT_TRUE(r.Str(&got));
      EXPECT_EQ(got, v);
    }
  };
  expect_access(*c1, 1, {(*want)[0]});
  expect_access(*c1, 2, {(*want)[0]});
  expect_access(*c2, 3, {(*want)[0]});
  expect_access(*c2, 4, {(*want)[0], (*want)[1]});
  EXPECT_EQ((*server)->stats().coalesced_dup_hits, 3u);
  EXPECT_EQ((*server)->stats().access_cache_hits, 0u);

  // A LATER batch against the same epoch answers position 7 from the
  // per-epoch memo instead of a fresh engine walk.
  ASSERT_TRUE(
      c1->Send(MsgType::kAccess, 5, 0, Client::AccessPayload({7})).ok());
  while ((*server)->queue_depth() < 1) std::this_thread::yield();
  ASSERT_TRUE((*server)->DispatchOnce());
  expect_access(*c1, 5, {(*want)[0]});
  EXPECT_EQ((*server)->stats().access_cache_hits, 1u);

  // A publish bumps the epoch and invalidates the memo: the next request
  // walks the engine again (no new cache hit) and still answers right.
  ASSERT_TRUE(store.engine->AppendBatch({"memo-epoch-probe"}).ok());
  ASSERT_TRUE(store.engine->Flush().ok());
  ASSERT_TRUE(
      c1->Send(MsgType::kAccess, 6, 0, Client::AccessPayload({7})).ok());
  while ((*server)->queue_depth() < 1) std::this_thread::yield();
  ASSERT_TRUE((*server)->DispatchOnce());
  expect_access(*c1, 6, {(*want)[0]});
  EXPECT_EQ((*server)->stats().access_cache_hits, 1u);

  ASSERT_TRUE((*server)->Stop().ok());
}

TEST(ServerTest, ZeroItemRequestsGetFreshEmptyRepliesNotStaleScratch) {
  ServedStore store(UrlWorkload(512, 29));

  ManualClock clock;
  StrServer::Options opt;
  opt.clock = &clock;
  opt.manual_dispatch = true;
  auto server = StrServer::Start(store.engine.get(), opt);
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect((*server)->port());
  ASSERT_TRUE(client.ok());

  // Batch A fills reply scratch slot 0 with a real multi-value body, so a
  // later batch that forgets to write slot 0 would leak these bytes.
  ASSERT_TRUE(client
                  ->Send(MsgType::kRank, 1, 0,
                         Client::RankPayload({"a", "b", "c"}, {10, 20, 30}))
                  .ok());
  while ((*server)->queue_depth() < 1) std::this_thread::yield();
  ASSERT_TRUE((*server)->DispatchOnce());
  {
    auto resp = client->Recv();
    ASSERT_TRUE(resp.ok());
    PayloadReader r(nullptr, 0);
    ASSERT_EQ(StatusOf(*resp, &r), WireStatus::kOk);
  }

  // A zero-item request of each batched opcode, each ALONE in its dispatch
  // batch (no same-opcode sibling with items): the reply must be a freshly
  // written kOk with count 0 — never the scratch slot's previous contents.
  auto expect_empty_ok = [&](MsgType type, uint64_t id,
                             const std::string& payload) {
    ASSERT_TRUE(client->Send(type, id, 0, payload).ok());
    while ((*server)->queue_depth() < 1) std::this_thread::yield();
    ASSERT_TRUE((*server)->DispatchOnce());
    auto resp = client->Recv();
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->header.request_id, id);
    EXPECT_EQ(resp->header.type, ReplyType(type));
    PayloadReader r(nullptr, 0);
    ASSERT_EQ(StatusOf(*resp, &r), WireStatus::kOk);
    uint32_t n = 99;
    ASSERT_TRUE(r.Pod(&n));
    EXPECT_EQ(n, 0u);
    EXPECT_TRUE(r.AtEnd());
  };
  expect_empty_ok(MsgType::kRank, 2, Client::RankPayload({}, {}));
  expect_empty_ok(MsgType::kSelect, 3, Client::SelectPayload({}, {}));
  expect_empty_ok(MsgType::kAccess, 4, Client::AccessPayload({}));

  ASSERT_TRUE((*server)->Stop().ok());
}

// The kMetrics endpoint: a live server answers with a parseable registry
// snapshot whose per-stage tracing histograms are non-zero after real
// traffic, the admission counters agree with the stats() view (satellite:
// no counter is maintained twice), the engine's instruments ride along in
// the same snapshot, the slow-request ring holds ordered stamps — and the
// kStats reply stays exactly ten u64s, so pre-metrics monitors keep
// working.
TEST(ServerTest, MetricsEndpointExposesRequestLifecycle) {
  ServedStore store(UrlWorkload(1024, 9));

  StrServer::Options opt;
  opt.slow_request_threshold_ns = 0;  // ring records every request
  auto server = StrServer::Start(store.engine.get(), opt);
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect((*server)->port());
  ASSERT_TRUE(client.ok());

  for (uint64_t i = 0; i < 8; ++i) {
    auto resp = client->Call(MsgType::kAccess, i + 1, 0,
                             Client::AccessPayload({i, i + 7, i + 200}));
    ASSERT_TRUE(resp.ok());
    PayloadReader r(nullptr, 0);
    ASSERT_EQ(StatusOf(*resp, &r), WireStatus::kOk);
  }

  auto resp = client->Call(MsgType::kMetrics, 100, 0, "");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->header.type, ReplyType(MsgType::kMetrics));
  PayloadReader r(nullptr, 0);
  ASSERT_EQ(StatusOf(*resp, &r), WireStatus::kOk);
  std::string bytes;
  ASSERT_TRUE(r.Str(&bytes));
  EXPECT_TRUE(r.AtEnd());

  wt::obs::MetricsSnapshot snap;
  ASSERT_TRUE(
      wt::obs::ParseMetricsSnapshot(bytes.data(), bytes.size(), &snap));

  // Every lifecycle stage saw the access round trips. reply_flush is
  // recorded by the I/O thread AFTER flushing each completion, but that
  // same thread processed this kMetrics frame afterwards, so the ordering
  // is guaranteed, not racy.
  for (const char* stage :
       {"wt_serving_admit_wait_us", "wt_serving_coalesce_us",
        "wt_serving_engine_batch_us", "wt_serving_reply_flush_us",
        "wt_serving_batch_size", "wt_serving_total_us"}) {
    const wt::obs::HistogramSnapshot* h = snap.FindHistogram(stage);
    ASSERT_NE(h, nullptr) << stage;
    EXPECT_GT(h->count, 0u) << stage;
  }

  // The registry counters ARE the admission stats; the view read now can
  // only have grown past what the earlier snapshot carried.
  const uint64_t* admitted = snap.FindCounter("wt_admission_admitted_total");
  ASSERT_NE(admitted, nullptr);
  EXPECT_GE(*admitted, 8u);
  EXPECT_GE((*server)->stats().admission.admitted, *admitted);

  // Engine instruments share the snapshot (one registry end to end).
  const int64_t* segs = snap.FindGauge("wt_engine_segments");
  ASSERT_NE(segs, nullptr);
  EXPECT_GE(*segs, 1);
  EXPECT_NE(snap.FindCounter("wt_engine_appends_total"), nullptr);

  // Threshold 0: every dispatched request landed in the ring with ordered
  // stamps.
  const auto slow = (*server)->slow_ring().Snapshot();
  ASSERT_FALSE(slow.empty());
  for (const wt::obs::SlowRequestRecord& rec : slow) {
    EXPECT_LE(rec.enqueued_ns, rec.dequeued_ns);
    EXPECT_LE(rec.dequeued_ns, rec.done_ns);
    EXPECT_EQ(rec.total_ns, rec.done_ns - rec.enqueued_ns);
  }

  // kStats wire compat: exactly ten u64s, nothing more.
  auto sresp = client->Call(MsgType::kStats, 101, 0, "");
  ASSERT_TRUE(sresp.ok());
  PayloadReader sr(nullptr, 0);
  ASSERT_EQ(StatusOf(*sresp, &sr), WireStatus::kOk);
  for (int i = 0; i < 10; ++i) {
    uint64_t v = 0;
    ASSERT_TRUE(sr.Pod(&v)) << i;
  }
  EXPECT_TRUE(sr.AtEnd());

  ASSERT_TRUE((*server)->Stop().ok());
}

#endif  // __linux__

}  // namespace
}  // namespace wt::net
