// Tests for the baselines and Section 6:
//   * classic WaveletTree — exact Figure 1 reproduction + randomized checks;
//   * cross-validation: WaveletTree == WaveletTrie-with-FixedIntCodec
//     (the paper's observation that every Wavelet Tree is a Wavelet Trie);
//   * DynamicWaveletTreeFixed (known-alphabet dynamic baseline);
//   * InvertedIndexBaseline;
//   * BalancedWaveletTree (Theorem 6.2): correctness and height bound;
//   * codec round-trips.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>
#include <vector>

#include "core/balanced_wavelet_tree.hpp"
#include "core/codec.hpp"
#include "core/dynamic_wavelet_tree_fixed.hpp"
#include "core/inverted_index.hpp"
#include "core/wavelet_tree.hpp"
#include "core/wavelet_trie.hpp"

namespace wt {
namespace {

// --------------------------------------------------------------- codecs

TEST(ByteCodec, RoundTrip) {
  for (const std::string& s :
       std::vector<std::string>{"", "a", "abracadabra", "www.example.com/x?y=1",
                                std::string("\x00\x01\xff\x7f", 4)}) {
    EXPECT_EQ(ByteCodec::Decode(ByteCodec::Encode(s).Span()), s);
  }
}

TEST(ByteCodec, PrefixRelationPreserved) {
  const BitString full = ByteCodec::Encode("abcdef");
  EXPECT_TRUE(ByteCodec::EncodePrefix("abc").Span().IsPrefixOf(full.Span()));
  EXPECT_TRUE(ByteCodec::EncodePrefix("").Span().IsPrefixOf(full.Span()));
  EXPECT_FALSE(ByteCodec::EncodePrefix("abd").Span().IsPrefixOf(full.Span()));
  // The terminator guarantees prefix-freeness of full encodings.
  EXPECT_FALSE(
      ByteCodec::Encode("abc").Span().IsPrefixOf(ByteCodec::Encode("abcdef").Span()));
}

TEST(RawByteCodec, RoundTripAndCompactness) {
  for (const std::string s : {"", "hello", "path/to/file"}) {
    EXPECT_EQ(RawByteCodec::Decode(RawByteCodec::Encode(s).Span()), s);
  }
  // 8 bits/char + 8 vs 9 bits/char + 1: raw wins for strings over 7 bytes.
  EXPECT_LT(RawByteCodec::Encode("path/to/file").size(),
            ByteCodec::Encode("path/to/file").size());
}

TEST(FixedIntCodec, RoundTripAndOrder) {
  FixedIntCodec c(20);
  std::mt19937_64 rng(3);
  uint64_t prev_val = 0;
  BitString prev;
  for (int i = 0; i < 200; ++i) {
    const uint64_t v = rng() % (1 << 20);
    const BitString e = c.Encode(v);
    EXPECT_EQ(e.size(), 20u);
    EXPECT_EQ(c.Decode(e.Span()), v);
    if (i > 0) {
      // MSB-first fixed width: bit-lex order == numeric order.
      EXPECT_EQ(prev < e, prev_val < v);
    }
    prev = e;
    prev_val = v;
  }
}

TEST(HashedIntCodec, RoundTripAllWidths) {
  for (unsigned width : {8u, 16u, 33u, 64u}) {
    HashedIntCodec c(width, 12345);
    std::mt19937_64 rng(width);
    for (int i = 0; i < 200; ++i) {
      const uint64_t v = width == 64 ? rng() : rng() % (uint64_t(1) << width);
      const BitString e = c.Encode(v);
      EXPECT_EQ(e.size(), width);
      EXPECT_EQ(c.Decode(e.Span()), v) << "width " << width;
    }
  }
}

// ------------------------------------------------------------- Figure 1

TEST(WaveletTreeFigure1, AbracadabraExactBitvectors) {
  // Figure 1: "abracadabra" on {a,b,c,d,r} = {0,1,2,3,4}.
  const std::string text = "abracadabra";
  std::map<char, uint64_t> code = {{'a', 0}, {'b', 1}, {'c', 2}, {'d', 3}, {'r', 4}};
  std::vector<uint64_t> seq;
  for (char ch : text) seq.push_back(code[ch]);
  WaveletTree tree(seq, 5);
  const auto nodes = tree.DebugNodes();
  // Preorder: root [0,5) = "00101010010"; [0,2) {a,b} = "0100010";
  // [2,5) {c,d,r} = "1011"; [3,5) {d,r} = "101".
  ASSERT_EQ(nodes.size(), 4u);
  EXPECT_EQ(nodes[0].bits, "00101010010");
  EXPECT_EQ(nodes[0].lo, 0u);
  EXPECT_EQ(nodes[0].hi, 5u);
  EXPECT_EQ(nodes[1].bits, "0100010");  // abaaaba -> a=0, b=1
  EXPECT_EQ(nodes[2].bits, "1011");     // rcdr vs mid=3
  EXPECT_EQ(nodes[3].bits, "101");      // rdr vs mid=4
  // And the operations on the example.
  EXPECT_EQ(tree.Access(0), 0u);                      // a
  EXPECT_EQ(tree.Access(2), 4u);                      // r
  EXPECT_EQ(tree.Rank(0, 11), 5u);                    // five a's
  EXPECT_EQ(tree.Rank(4, 11), 2u);                    // two r's
  EXPECT_EQ(tree.Select(4, 1), std::optional<size_t>(9));
  EXPECT_EQ(tree.Select(2, 0), std::optional<size_t>(4));  // the c
  EXPECT_EQ(tree.Select(2, 1), std::nullopt);
}

TEST(WaveletTree, RandomAgainstScan) {
  std::mt19937_64 rng(17);
  for (uint64_t sigma : {1u, 2u, 3u, 5u, 17u, 300u}) {
    std::vector<uint64_t> seq;
    for (int i = 0; i < 2000; ++i) seq.push_back(rng() % sigma);
    WaveletTree tree(seq, sigma);
    for (size_t i = 0; i < seq.size(); i += 7) {
      ASSERT_EQ(tree.Access(i), seq[i]) << "sigma " << sigma;
    }
    for (uint64_t v = 0; v < std::min<uint64_t>(sigma, 20); ++v) {
      size_t count = 0;
      for (size_t i = 0; i < seq.size(); ++i) {
        if (i % 251 == 0) {
          ASSERT_EQ(tree.Rank(v, i), count);
        }
        if (seq[i] == v) {
          if (count % 3 == 0) {
            ASSERT_EQ(tree.Select(v, count), i);
          }
          ++count;
        }
      }
      ASSERT_EQ(tree.Rank(v, seq.size()), count);
      ASSERT_EQ(tree.Select(v, count), std::nullopt);
    }
  }
}

// Every Wavelet Tree is a Wavelet Trie under the fixed-width MSB codec
// (paper Section 3: "any Wavelet Tree can be seen as a Wavelet Trie").
TEST(CrossValidation, WaveletTreeEqualsWaveletTrieWithIntCodec) {
  std::mt19937_64 rng(23);
  const unsigned width = 10;
  const uint64_t sigma = 1 << width;
  FixedIntCodec codec(width);
  std::vector<uint64_t> seq;
  std::vector<BitString> enc;
  for (int i = 0; i < 3000; ++i) {
    // Clustered values: only 64 distinct, so the trie path-compresses.
    seq.push_back((rng() % 64) * 16 + 3);
    enc.push_back(codec.Encode(seq.back()));
  }
  WaveletTree tree(seq, sigma);
  WaveletTrie trie(enc);
  for (size_t i = 0; i < seq.size(); i += 11) {
    ASSERT_EQ(codec.Decode(trie.Access(i).Span()), tree.Access(i));
  }
  for (int q = 0; q < 200; ++q) {
    const uint64_t v = (rng() % 64) * 16 + 3;
    const size_t pos = rng() % (seq.size() + 1);
    ASSERT_EQ(trie.Rank(codec.Encode(v), pos), tree.Rank(v, pos));
  }
  // The trie is *shallower* than the balanced tree: 64 distinct values need
  // ~6 levels, not 10 (path compression on the clustered universe).
  EXPECT_LT(trie.Height(), width);
}

// ------------------------------------------- fixed-alphabet dynamic tree

TEST(DynamicWaveletTreeFixed, ChurnAgainstReference) {
  std::mt19937_64 rng(29);
  const uint64_t sigma = 37;  // non-power-of-two exercises uneven splits
  DynamicWaveletTreeFixed tree(sigma);
  std::vector<uint64_t> ref;
  for (int step = 0; step < 6000; ++step) {
    const int op = static_cast<int>(rng() % 10);
    if (op < 6 || ref.empty()) {
      const uint64_t v = rng() % sigma;
      const size_t pos = rng() % (ref.size() + 1);
      tree.Insert(v, pos);
      ref.insert(ref.begin() + static_cast<ptrdiff_t>(pos), v);
    } else if (op < 8) {
      const size_t pos = rng() % ref.size();
      tree.Delete(pos);
      ref.erase(ref.begin() + static_cast<ptrdiff_t>(pos));
    } else {
      const size_t pos = rng() % (ref.size() + 1);
      const uint64_t v = rng() % sigma;
      size_t expect = 0;
      for (size_t i = 0; i < pos; ++i) expect += (ref[i] == v);
      ASSERT_EQ(tree.Rank(v, pos), expect);
      if (!ref.empty()) {
        const size_t p2 = rng() % ref.size();
        ASSERT_EQ(tree.Access(p2), ref[p2]);
      }
    }
  }
  ASSERT_EQ(tree.size(), ref.size());
  for (size_t i = 0; i < ref.size(); i += 3) ASSERT_EQ(tree.Access(i), ref[i]);
  for (uint64_t v = 0; v < sigma; ++v) {
    size_t count = 0;
    for (size_t i = 0; i < ref.size(); ++i) {
      if (ref[i] == v) {
        ASSERT_EQ(tree.Select(v, count), i);
        ++count;
      }
    }
    ASSERT_EQ(tree.Select(v, count), std::nullopt);
  }
}

TEST(DynamicWaveletTreeFixed, SigmaOne) {
  DynamicWaveletTreeFixed tree(1);
  tree.Append(0);
  tree.Append(0);
  EXPECT_EQ(tree.Access(1), 0u);
  EXPECT_EQ(tree.Rank(0, 2), 2u);
  EXPECT_EQ(tree.Select(0, 1), std::optional<size_t>(1));
  tree.Delete(0);
  EXPECT_EQ(tree.size(), 1u);
}

// --------------------------------------------------------- inverted index

TEST(InvertedIndexBaseline, MatchesScan) {
  std::mt19937_64 rng(31);
  std::vector<std::string> words = {"be", "bee", "beer", "cat", "car", "dog"};
  InvertedIndexBaseline idx;
  std::vector<std::string> ref;
  for (int i = 0; i < 2000; ++i) {
    const auto& w = words[rng() % words.size()];
    idx.Append(w);
    ref.push_back(w);
  }
  for (size_t i = 0; i < ref.size(); i += 17) ASSERT_EQ(idx.Access(i), ref[i]);
  for (const auto& w : words) {
    size_t count = 0;
    for (size_t i = 0; i < ref.size(); ++i) {
      if (i % 101 == 0) {
        ASSERT_EQ(idx.Rank(w, i), count);
      }
      if (ref[i] == w) {
        if (count % 5 == 0) {
          ASSERT_EQ(idx.Select(w, count), i);
        }
        ++count;
      }
    }
  }
  // Prefix ops.
  size_t be_count = 0;
  std::vector<size_t> be_positions;
  for (size_t i = 0; i < ref.size(); ++i) {
    if (ref[i].compare(0, 2, "be") == 0) {
      be_positions.push_back(i);
      ++be_count;
    }
  }
  ASSERT_EQ(idx.RankPrefix("be", ref.size()), be_count);
  ASSERT_EQ(idx.SelectPrefix("be", 0), be_positions.front());
  ASSERT_EQ(idx.SelectPrefix("be", be_count - 1), be_positions.back());
  ASSERT_EQ(idx.SelectPrefix("be", be_count), std::nullopt);
}

// ------------------------------------------------- Section 6 (Thm 6.2)

TEST(BalancedWaveletTree, CorrectnessAgainstReference) {
  BalancedWaveletTree tree(64, /*seed=*/777);
  std::mt19937_64 rng(37);
  // Working alphabet: 100 arbitrary 64-bit values (universe 2^64).
  std::vector<uint64_t> alphabet;
  for (int i = 0; i < 100; ++i) alphabet.push_back(rng());
  std::vector<uint64_t> ref;
  for (int step = 0; step < 3000; ++step) {
    const int op = static_cast<int>(rng() % 10);
    if (op < 6 || ref.empty()) {
      const uint64_t v = alphabet[rng() % alphabet.size()];
      const size_t pos = rng() % (ref.size() + 1);
      tree.Insert(v, pos);
      ref.insert(ref.begin() + static_cast<ptrdiff_t>(pos), v);
    } else if (op < 8) {
      const size_t pos = rng() % ref.size();
      tree.Delete(pos);
      ref.erase(ref.begin() + static_cast<ptrdiff_t>(pos));
    } else if (!ref.empty()) {
      const size_t pos = rng() % ref.size();
      ASSERT_EQ(tree.Access(pos), ref[pos]);
      const uint64_t v = alphabet[rng() % alphabet.size()];
      size_t expect = 0;
      for (size_t i = 0; i < pos; ++i) expect += (ref[i] == v);
      ASSERT_EQ(tree.Rank(v, pos), expect);
    }
  }
  for (size_t i = 0; i < ref.size(); i += 3) ASSERT_EQ(tree.Access(i), ref[i]);
  for (const uint64_t v : alphabet) {
    size_t count = 0;
    for (size_t i = 0; i < ref.size(); ++i) {
      if (ref[i] == v) {
        if (count % 2 == 0) {
          ASSERT_EQ(tree.Select(v, count), i);
        }
        ++count;
      }
    }
    ASSERT_EQ(tree.Rank(v, ref.size()), count);
  }
}

TEST(BalancedWaveletTree, HeightIsLogSigmaNotLogUniverse) {
  // Theorem 6.2: with |Sigma| = 256 values from a 2^64 universe, the trie
  // height should be ~(alpha+2) log 256 = O(24), nowhere near 64. Check
  // several seeds; allow the probabilistic bound generous slack.
  std::mt19937_64 rng(41);
  for (uint64_t seed : {1ull, 99ull, 31337ull}) {
    BalancedWaveletTree tree(64, seed);
    for (int i = 0; i < 4096; ++i) {
      tree.Append(rng() % 256 + (uint64_t(1) << 60));  // 256 distinct, huge values
    }
    EXPECT_EQ(tree.NumDistinct(), 256u);
    EXPECT_LE(tree.Height(), 4 * 8u) << "seed " << seed;  // 4 log2(256)
    EXPECT_LT(tree.Height(), 64u);
  }
}

TEST(BalancedWaveletTree, BalancesAdversarialChainAlphabet) {
  // Alphabet {2^k - 1}: consecutive values differ only in one high bit, so
  // without hashing the trie is a chain of depth ~|Sigma|. The MSB-first
  // multiplicative hash (see HashedIntCodec's reproduction note) must bring
  // the height down to O(log |Sigma|) regardless.
  std::mt19937_64 rng(43);
  const size_t sigma = 48;
  // Unhashed control: chain depth ~ sigma.
  {
    FixedIntCodec codec(64);
    DynamicWaveletTrie trie;
    for (int i = 0; i < 2000; ++i) {
      trie.Append(codec.Encode((uint64_t(1) << (rng() % sigma)) - 1));
    }
    EXPECT_GE(trie.Height(), sigma - 5);
  }
  // Hashed: height ~ c log sigma across seeds.
  for (uint64_t seed : {7ull, 1234ull, 987654321ull}) {
    BalancedWaveletTree tree(64, seed);
    for (int i = 0; i < 2000; ++i) {
      tree.Append((uint64_t(1) << (rng() % sigma)) - 1);
    }
    EXPECT_LE(tree.Height(), 30u) << "seed " << seed;  // ~5 log2(48)
  }
}

TEST(BalancedWaveletTree, SameSeedReproducesStructure) {
  BalancedWaveletTree a(32, 5), b(32, 5);
  for (uint64_t v : {7u, 9u, 7u, 1u}) {
    a.Append(v);
    b.Append(v);
  }
  EXPECT_EQ(a.Height(), b.Height());
  EXPECT_EQ(a.SizeInBits(), b.SizeInBits());
  EXPECT_EQ(a.Access(2), 7u);
}

}  // namespace
}  // namespace wt
