#!/usr/bin/env python3
"""Repo-specific lint for project invariants (DESIGN.md #10).

Checks that hold the library's correctness story together but that no
compiler flag can express:

  raw-io            File I/O primitives (fopen/fwrite/fsync/rename/...,
                    std::ifstream/ofstream, std::filesystem mutations)
                    outside the VFS seam (src/io/vfs.hpp) and the pager's
                    mmap path (src/storage/pager.hpp). Everything durable
                    must go through Vfs so the crash-torture harness can
                    fault-inject every operation.
  parse-abort       WT_ASSERT / abort() inside the untrusted-input parse
                    functions (image reader, WAL parser, envelope reader,
                    manifest reader). Corrupt bytes must surface as a
                    clean Status/error code, never a process abort.
                    Scope: the curated function bodies in PARSE_FUNCTIONS
                    (direct bodies, not transitive callees — reachability
                    is the ASan corruption sweeps' job). WT_DASSERT is
                    allowed: debug-only caller contracts, compiled out of
                    release parsing.
  unchecked-tryread TryReadPod(...) whose boolean result is discarded — a
                    short read would be silently treated as success.
  raw-socket        Socket/epoll syscalls (::socket, ::bind, accept4,
                    ::recv, ::send, epoll_*, eventfd, ...) outside the
                    one wrapped seam (src/net/socket.hpp). Everything
                    network-facing must go through the RAII/Status
                    primitives there so EINTR, partial transfers, and
                    fd lifetimes are handled in exactly one place.
  raw-mutex         std::mutex / lock_guard / unique_lock / condition
                    variables outside common/thread_annotations.hpp. A
                    raw mutex is invisible to Clang's -Wthread-safety
                    analysis, silently opting its critical sections out
                    of the compile-time locking proof.
  tsa-escape        WT_NO_THREAD_SAFETY_ANALYSIS outside the macro's own
                    header without an explicit waiver. Escape hatches
                    must be visible and justified.
  bare-atomic-counter
                    An integer std::atomic outside src/obs/. Ad-hoc atomic
                    counters are how stats get maintained twice and drift;
                    countable quantities belong in the MetricsRegistry
                    (obs/metrics.hpp). Genuine sequencing/state atomics
                    (epochs, ids, flags) take a waiver stating they are
                    not telemetry. atomic<bool> is exempt (a flag, never
                    a counter).
  raw-stderr        fprintf(stderr, ...) outside the structured logger
                    (src/obs/log.hpp). Library code must report through
                    WT_LOG so events come out as bounded, rate-limited
                    key=value lines on the Vfs seam, not interleaved
                    free-text on a shared stream. Crash-path diagnostics
                    that must survive a broken logger take a waiver.

Waivers: append `// wt-lint: allow(<rule>)` to the offending line, with a
reason. Use sparingly; CI reviews every new waiver.

Usage: tools/wt_lint.py [--root REPO_ROOT] [--list-rules]
Stdlib-only; exits 1 when any finding is reported.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# --------------------------------------------------------------- stripping


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure.

    Lint patterns must not fire on prose ("fsync the directory...") or on
    message strings ("vfs: fsync failed"), so everything non-code becomes
    spaces before matching. Newlines survive so line numbers stay true.
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    raw_delim = None
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"' and text[max(0, i - 1):i] == "R":
                # Raw string literal R"delim( ... )delim"
                m = re.match(r'"([^(\s]*)\(', text[i:])
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    end = text.find(raw_delim, i + m.end())
                    end = n if end < 0 else end + len(raw_delim)
                    out.append(re.sub(r"[^\n]", " ", text[i:end]))
                    i = end
                else:
                    state = "string"
                    out.append(" ")
                    i += 1
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char
            if c == "\\":
                out.append("  ")
                i += 2
            elif (state == "string" and c == '"') or (
                state == "char" and c == "'"
            ):
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


# ------------------------------------------------------------------- rules

# socket.hpp is the syscall seam for the serving layer: it owns fds
# (::close) the same way vfs.hpp owns file descriptors.
RAW_IO_ALLOWED = {"src/io/vfs.hpp", "src/storage/pager.hpp",
                  "src/net/socket.hpp"}
RAW_IO_PATTERN = re.compile(
    r"\b(?:fopen|fwrite|fread|fclose|fflush|fsync|fdatasync|fileno"
    r"|std::ifstream|std::ofstream|std::fstream"
    r"|std::filesystem::(?:rename|remove|remove_all|create_directories)"
    r"|::open|::close|::write|::read|::rename|::unlink|::mkdir)\s*\("
)

RAW_SOCKET_ALLOWED = {"src/net/socket.hpp"}
RAW_SOCKET_PATTERN = re.compile(
    r"\b(?:::socket|::bind|::listen|::accept4?|::connect"
    r"|::recv|::send|::sendmsg|::recvmsg|::sendto|::recvfrom"
    r"|::epoll_create1?|::epoll_ctl|::epoll_wait|::eventfd"
    r"|::setsockopt|::getsockopt|::getsockname|::shutdown|::fcntl)\s*\("
)

RAW_MUTEX_ALLOWED = {"src/common/thread_annotations.hpp"}
RAW_MUTEX_PATTERN = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|shared_mutex"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock"
    r"|condition_variable(?:_any)?)\b"
)

TSA_ESCAPE_ALLOWED = {"src/common/thread_annotations.hpp"}

# The async logger is the one place allowed to write raw stderr (its own
# last-resort path); everything else goes through WT_LOG.
RAW_STDERR_ALLOWED = {"src/obs/log.hpp"}
RAW_STDERR_PATTERN = re.compile(r"\b(?:std::\s*)?fprintf\s*\(\s*stderr\b")

# The obs layer IS the sanctioned home for atomic counters; everything else
# either registers an instrument or waives with a sequencing rationale.
BARE_ATOMIC_ALLOWED_PREFIX = "src/obs/"
BARE_ATOMIC_PATTERN = re.compile(
    r"\bstd::atomic<\s*(?:std::)?"
    r"(?:u?int(?:8|16|32|64)_t|size_t|ptrdiff_t|int|unsigned"
    r"(?:\s+(?:int|long(?:\s+long)?))?|long(?:\s+long)?)\s*>"
)

# Parse functions over untrusted bytes: (file suffix, function name).
# The rule scans each function's direct body.
PARSE_FUNCTIONS = [
    ("src/storage/image.hpp", "Parse"),
    ("src/storage/image.hpp", "OpenSection"),
    ("src/storage/image.hpp", "Pod"),
    ("src/storage/image.hpp", "Array"),
    ("src/storage/image.hpp", "LooksLikeImage"),
    ("src/engine/wal.hpp", "ParseWalBytes"),
    ("src/common/serialize.hpp", "TryReadPod"),
    ("src/common/serialize.hpp", "Read"),  # VersionedEnvelope::Read
    ("src/engine/manifest.hpp", "ReadManifest"),
    ("src/engine/manifest.hpp", "ParseEngineFileName"),
    ("src/core/wavelet_trie.hpp", "LoadImage"),
    ("src/api/sequence.hpp", "Load"),
    ("src/api/sequence.hpp", "LoadImage"),
]
PARSE_ABORT_PATTERN = re.compile(r"\b(?:WT_ASSERT|WT_ASSERT_MSG|abort)\s*\(")

TRYREAD_PATTERN = re.compile(r"\bTryReadPod\b")

WAIVER_PATTERN = re.compile(r"//\s*wt-lint:\s*allow\(([a-z-]+)\)")

RULES = {
    "raw-io": "file I/O outside the VFS seam",
    "parse-abort": "abort/WT_ASSERT in an untrusted-input parse function",
    "unchecked-tryread": "TryReadPod result discarded",
    "raw-socket": "socket/epoll syscall outside the net/socket.hpp seam",
    "raw-mutex": "raw std::mutex family outside the annotated wrapper",
    "tsa-escape": "unwaived WT_NO_THREAD_SAFETY_ANALYSIS",
    "bare-atomic-counter":
        "integer std::atomic outside src/obs/ (use the MetricsRegistry, "
        "or waive as sequencing state)",
    "raw-stderr":
        "fprintf(stderr) outside the structured logger (use WT_LOG, "
        "or waive for crash-path diagnostics)",
}


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def waived(original_lines: list[str], lineno: int, rule: str) -> bool:
    m = WAIVER_PATTERN.search(original_lines[lineno - 1])
    return bool(m) and m.group(1) == rule


def function_body_span(stripped: str, name: str) -> list[tuple[int, int]]:
    """(start, end) character spans of every `name(...)...{` body."""
    spans = []
    for m in re.finditer(r"\b" + re.escape(name) + r"\s*\(", stripped):
        # Find the opening brace of the definition: skip the parameter
        # list, then accept `{` before the next `;` (a declaration).
        depth = 0
        i = m.end() - 1
        while i < len(stripped):
            if stripped[i] == "(":
                depth += 1
            elif stripped[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        j = i + 1
        while j < len(stripped) and stripped[j] not in "{;":
            j += 1
        if j >= len(stripped) or stripped[j] == ";":
            continue
        depth = 0
        k = j
        while k < len(stripped):
            if stripped[k] == "{":
                depth += 1
            elif stripped[k] == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        spans.append((j, k + 1))
    return spans


def lint_file(root: pathlib.Path, path: pathlib.Path) -> list[Finding]:
    rel = path.relative_to(root).as_posix()
    text = path.read_text(encoding="utf-8")
    stripped = strip_comments_and_strings(text)
    original_lines = text.splitlines()
    findings: list[Finding] = []

    def line_of(pos: int) -> int:
        return stripped.count("\n", 0, pos) + 1

    def report(pos: int, rule: str, message: str) -> None:
        ln = line_of(pos)
        if not waived(original_lines, ln, rule):
            findings.append(Finding(rel, ln, rule, message))

    if rel not in RAW_IO_ALLOWED:
        for m in RAW_IO_PATTERN.finditer(stripped):
            report(m.start(), "raw-io",
                   f"`{m.group(0).rstrip('(').strip()}`: durable I/O must "
                   "go through the Vfs seam (io/vfs.hpp)")

    if rel not in RAW_SOCKET_ALLOWED:
        for m in RAW_SOCKET_PATTERN.finditer(stripped):
            report(m.start(), "raw-socket",
                   f"`{m.group(0).rstrip('(').strip()}`: network syscalls "
                   "must go through the net/socket.hpp primitives")

    if rel not in RAW_MUTEX_ALLOWED:
        for m in RAW_MUTEX_PATTERN.finditer(stripped):
            report(m.start(), "raw-mutex",
                   f"`{m.group(0)}` is invisible to -Wthread-safety; use "
                   "wt::Mutex / wt::MutexLock / wt::CondVar")

    if rel not in TSA_ESCAPE_ALLOWED:
        for m in re.finditer(r"\bWT_NO_THREAD_SAFETY_ANALYSIS\b", stripped):
            report(m.start(), "tsa-escape",
                   "escape hatch from the locking proof; waive with a "
                   "reason if genuinely inexpressible")

    if rel not in RAW_STDERR_ALLOWED:
        for m in RAW_STDERR_PATTERN.finditer(stripped):
            report(m.start(), "raw-stderr",
                   "raw stderr write: structured events go through WT_LOG "
                   "(obs/log.hpp); waive only for crash-path diagnostics")

    if not rel.startswith(BARE_ATOMIC_ALLOWED_PREFIX):
        for m in BARE_ATOMIC_PATTERN.finditer(stripped):
            report(m.start(), "bare-atomic-counter",
                   f"`{m.group(0)}`: countable quantities belong in the "
                   "MetricsRegistry (obs/metrics.hpp); waive if this is "
                   "sequencing state, not telemetry")

    for suffix, fn in PARSE_FUNCTIONS:
        if rel != suffix:
            continue
        for start, end in function_body_span(stripped, fn):
            body = stripped[start:end]
            for m in PARSE_ABORT_PATTERN.finditer(body):
                report(start + m.start(), "parse-abort",
                       f"`{m.group(0).rstrip('(').strip()}` in parse "
                       f"function `{fn}`: corrupt input must return an "
                       "error, not abort")

    for m in TRYREAD_PATTERN.finditer(stripped):
        after = stripped[m.end():m.end() + 1]
        if after not in "(<":  # comment mention or stray identifier
            continue
        # A call is consumed when ANYTHING precedes it in its statement
        # (a `!`, an `if (`, an assignment, a `return`, ...). Walk back to
        # the statement start and strip the namespace qualifier, which is
        # part of the call itself.
        stmt_start = max(
            stripped.rfind(";", 0, m.start()),
            stripped.rfind("{", 0, m.start()),
            stripped.rfind("}", 0, m.start()),
        )
        prefix = stripped[stmt_start + 1:m.start()]
        core = re.sub(r"(?:[A-Za-z_]\w*\s*::\s*)+$", "", prefix).rstrip()
        if re.search(r"\b(?:bool|auto)$", core):
            continue  # the function's own definition/declaration
        if core == "":
            report(m.start(), "unchecked-tryread",
                   "TryReadPod result ignored: a short read would "
                   "silently pass")

    return findings


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script's dir)")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:20} {desc}")
        return 0

    root = pathlib.Path(args.root) if args.root else \
        pathlib.Path(__file__).resolve().parent.parent
    src = root / "src"
    if not src.is_dir():
        print(f"wt_lint: no src/ under {root}", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for path in sorted(src.rglob("*")):
        if path.suffix in (".hpp", ".cpp", ".h", ".cc"):
            findings.extend(lint_file(root, path))

    for f in findings:
        print(f)
    if findings:
        print(f"wt_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"wt_lint: clean ({sum(1 for _ in src.rglob('*.hpp'))} headers)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
