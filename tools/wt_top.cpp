// wt_top — live serving-daemon monitor (DESIGN.md #12).
//
// Polls a running daemon's kMetrics endpoint and renders a refreshing
// top-style view: throughput (derived from counter deltas between polls),
// admission/queue state, engine shape, and the per-stage latency
// histograms the request-lifecycle tracing feeds (admit wait, coalesce,
// engine batch, reply flush, end-to-end).
//
//   wt_top --port N [--interval-ms 1000] [--iterations 0] [--plain]
//          [--require-stages] [--pane=serving|background|all]
//
//   --iterations 0     poll forever (Ctrl-C to quit); N polls otherwise
//   --plain            no screen clearing — append one block per poll
//                      (what CI logs want)
//   --require-stages   exit 1 unless the admit-wait, engine-batch and
//                      reply-flush histograms all have samples by the
//                      final poll — the smoke check that tracing is
//                      actually wired through a live daemon
//   --pane             which panel(s) to render (default all): "serving"
//                      is the request-side view (admission, coalescing,
//                      stage histograms); "background" is the engine's
//                      own work — compaction debt, per-shard segment
//                      stacks, WAL append bytes + fsync latency, pager
//                      mapped bytes (DESIGN.md #13)
//
// Reconnects on every poll, so a daemon restart mid-watch shows up as one
// failed poll, not a dead tool.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>

#if defined(__linux__)

#include "net/client.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"

namespace {

using wt::obs::HistogramSnapshot;
using wt::obs::MetricsSnapshot;

bool FetchSnapshot(uint16_t port, MetricsSnapshot* out, std::string* err) {
  wtrie::Result<wt::net::Client> c = wt::net::Client::Connect(port);
  if (!c.ok()) {
    *err = c.status().message();
    return false;
  }
  wtrie::Result<wt::net::Frame> f =
      c->Call(wt::net::MsgType::kMetrics, /*request_id=*/1,
              /*deadline_ms=*/0, "");
  if (!f.ok()) {
    *err = f.status().message();
    return false;
  }
  wt::net::WireStatus st{};
  wt::net::PayloadReader r("", 0);
  std::string bytes;
  if (!wt::net::Client::DecodeStatus(*f, &st, &r) ||
      st != wt::net::WireStatus::kOk || !r.Str(&bytes)) {
    *err = "malformed kMetrics reply";
    return false;
  }
  if (!wt::obs::ParseMetricsSnapshot(bytes.data(), bytes.size(), out)) {
    *err = "metrics snapshot failed to parse (version skew?)";
    return false;
  }
  return true;
}

uint64_t CounterOr0(const MetricsSnapshot& s, const char* name) {
  const uint64_t* v = s.FindCounter(name);
  return v != nullptr ? *v : 0;
}

int64_t GaugeOr0(const MetricsSnapshot& s, const char* name) {
  const int64_t* v = s.FindGauge(name);
  return v != nullptr ? *v : 0;
}

/// "12us" / "3.4ms" / "1.2s" — quantiles are microseconds in-protocol.
std::string HumanUs(uint64_t us) {
  char buf[32];
  if (us < 1000) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 "us", us);
  } else if (us < 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(us) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(us) / 1e6);
  }
  return buf;
}

void PrintStageRow(const MetricsSnapshot& s, const char* label,
                   const char* metric, bool is_duration) {
  const HistogramSnapshot* h = s.FindHistogram(metric);
  if (h == nullptr || h->count == 0) {
    std::printf("  %-14s %10s %10s %10s %12s\n", label, "-", "-", "-", "0");
    return;
  }
  auto cell = [is_duration](uint64_t v) {
    return is_duration ? HumanUs(v) : std::to_string(v);
  };
  std::printf("  %-14s %10s %10s %10s %12" PRIu64 "\n", label,
              cell(h->Quantile(0.5)).c_str(), cell(h->Quantile(0.99)).c_str(),
              cell(h->max).c_str(), h->count);
}

struct Totals {
  uint64_t completed = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
};

Totals TotalsOf(const MetricsSnapshot& s) {
  Totals t;
  t.completed = CounterOr0(s, "wt_admission_completed_total");
  t.admitted = CounterOr0(s, "wt_admission_admitted_total");
  t.shed = CounterOr0(s, "wt_admission_shed_total");
  return t;
}

enum class Pane { kServing, kBackground, kAll };

void RenderServing(const MetricsSnapshot& s, const Totals& cur) {
  std::printf("  admission         %" PRIu64 " offered, %" PRIu64
              " admitted, %" PRIu64 " shed, %" PRIu64 " expired\n",
              CounterOr0(s, "wt_admission_offered_total"), cur.admitted,
              cur.shed,
              CounterOr0(s, "wt_admission_expired_at_dequeue_total") +
                  CounterOr0(s, "wt_admission_expired_before_reply_total"));
  std::printf("  queue             depth %" PRId64 ", %" PRId64 " bytes\n",
              GaugeOr0(s, "wt_admission_queue_depth"),
              GaugeOr0(s, "wt_admission_queued_bytes"));
  std::printf("  conns             %" PRIu64 " accepted, %" PRIu64
              " closed, %" PRIu64 " slow-client drops\n",
              CounterOr0(s, "wt_serving_conns_accepted_total"),
              CounterOr0(s, "wt_serving_conns_closed_total"),
              CounterOr0(s, "wt_serving_slow_client_disconnects_total"));
  std::printf("  coalescing        %" PRIu64 " dup hits, %" PRIu64
              " memo hits / %" PRIu64 " access positions\n",
              CounterOr0(s, "wt_serving_coalesced_dup_hits_total"),
              CounterOr0(s, "wt_serving_access_memo_hits_total"),
              CounterOr0(s, "wt_serving_access_positions_total"));
  std::printf("  engine            %" PRId64 " segments, %" PRId64
              " frozen strings, epoch %" PRId64 " (age %" PRId64
              " ms), freeze queue %" PRId64 "\n",
              GaugeOr0(s, "wt_engine_segments"),
              GaugeOr0(s, "wt_engine_frozen_strings"),
              GaugeOr0(s, "wt_engine_publish_epoch"),
              GaugeOr0(s, "wt_engine_snapshot_epoch_age_ms"),
              GaugeOr0(s, "wt_engine_freeze_queue_depth"));
  std::printf("  wal               %" PRIu64 " appends, %" PRIu64
              " fsyncs; pager %" PRIu64 " maps (%" PRIu64 " cache hits), %"
              PRIu64 " unmaps\n\n",
              CounterOr0(s, "wt_wal_appends_total"),
              CounterOr0(s, "wt_wal_fsyncs_total"),
              CounterOr0(s, "wt_pager_maps_total"),
              CounterOr0(s, "wt_pager_map_cache_hits_total"),
              CounterOr0(s, "wt_pager_unmaps_total"));
  std::printf("  %-14s %10s %10s %10s %12s\n", "stage", "p50", "p99", "max",
              "samples");
  PrintStageRow(s, "admit_wait", "wt_serving_admit_wait_us", true);
  PrintStageRow(s, "coalesce", "wt_serving_coalesce_us", true);
  PrintStageRow(s, "engine_batch", "wt_serving_engine_batch_us", true);
  PrintStageRow(s, "reply_flush", "wt_serving_reply_flush_us", true);
  PrintStageRow(s, "total", "wt_serving_total_us", true);
  PrintStageRow(s, "batch_size", "wt_serving_batch_size", false);
  PrintStageRow(s, "wal_append", "wt_wal_append_us", true);
}

/// The engine's own work: what it owes (compaction debt, per-shard stack
/// heights), what the WAL is costing (append bytes, fsync tail), and what
/// the pager holds mapped. The trace timeline (wt_trace) shows WHEN this
/// work ran; this panel shows HOW MUCH is outstanding right now.
void RenderBackground(const MetricsSnapshot& s) {
  std::printf("  background work\n");
  std::printf("  compaction debt   %" PRId64
              " segment(s) over target, %" PRIu64 " freezes, %" PRIu64
              " compactions\n",
              GaugeOr0(s, "wt_engine_compaction_debt"),
              CounterOr0(s, "wt_engine_freezes_total"),
              CounterOr0(s, "wt_engine_compactions_total"));
  // Per-shard stack heights, in shard order (the gauges were registered
  // shard 0..N-1 and the snapshot preserves registration order).
  std::printf("  shard segments   ");
  bool any = false;
  for (const auto& [name, v] : s.gauges) {
    constexpr std::string_view kPrefix = "wt_engine_segments{shard=\"";
    if (std::string_view(name).substr(0, kPrefix.size()) != kPrefix) continue;
    std::printf(" %s:%" PRId64,
                std::string(name.begin() + static_cast<long>(kPrefix.size()),
                            name.end() - 2)
                    .c_str(),
                v);
    any = true;
  }
  std::printf(any ? "\n" : " -\n");
  const HistogramSnapshot* fsync = s.FindHistogram("wt_wal_fsync_us");
  std::printf("  wal fsync p99     %s (%" PRIu64 " fsyncs)\n",
              fsync != nullptr && fsync->count > 0
                  ? HumanUs(fsync->Quantile(0.99)).c_str()
                  : "-",
              CounterOr0(s, "wt_wal_fsyncs_total"));
  std::printf("  pager mapped      %" PRId64 " bytes\n",
              GaugeOr0(s, "wt_pager_mapped_bytes"));
  std::printf("  %-14s %10s %10s %10s %12s\n", "background", "p50", "p99",
              "max", "samples");
  PrintStageRow(s, "freeze_ms", "wt_engine_freeze_ms", false);
  PrintStageRow(s, "compaction_ms", "wt_engine_compaction_ms", false);
  PrintStageRow(s, "wal_bytes", "wt_wal_append_bytes", false);
  PrintStageRow(s, "wal_fsync", "wt_wal_fsync_us", true);
}

void Render(const MetricsSnapshot& s, const Totals& prev, double dt_s,
            uint16_t port, uint64_t poll, bool plain, Pane pane) {
  if (!plain) std::printf("\x1b[H\x1b[2J");
  const Totals cur = TotalsOf(s);
  const double qps =
      dt_s > 0 ? static_cast<double>(cur.completed - prev.completed) / dt_s
               : 0.0;
  const double shed_ps =
      dt_s > 0 ? static_cast<double>(cur.shed - prev.shed) / dt_s : 0.0;
  std::printf("wt_top — port %u, poll %" PRIu64 "\n\n", port, poll);
  std::printf("  qps (completed)   %12.1f      shed/s %10.1f\n", qps, shed_ps);
  if (pane != Pane::kBackground) RenderServing(s, cur);
  if (pane == Pane::kAll) std::printf("\n");
  if (pane != Pane::kServing) RenderBackground(s);
  std::fflush(stdout);
}

bool StagesLive(const MetricsSnapshot& s) {
  for (const char* name :
       {"wt_serving_admit_wait_us", "wt_serving_engine_batch_us",
        "wt_serving_reply_flush_us"}) {
    const HistogramSnapshot* h = s.FindHistogram(name);
    if (h == nullptr || h->count == 0) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 0;
  uint64_t interval_ms = 1000;
  uint64_t iterations = 0;  // 0 = forever
  bool plain = false;
  bool require_stages = false;
  Pane pane = Pane::kAll;
  bool bad = false;
  for (int i = 1; i < argc; ++i) {
    // Both spellings, matching the daemon/loadgen flags: --port 7411
    // and --port=7411.
    std::string a = argv[i];
    std::string inline_v;
    bool has_inline = false;
    if (const size_t eq = a.find('='); eq != std::string::npos) {
      inline_v = a.substr(eq + 1);
      a = a.substr(0, eq);
      has_inline = true;
    }
    auto value = [&]() -> std::string {
      if (has_inline) return inline_v;
      if (i + 1 < argc) return argv[++i];
      bad = true;
      return "0";
    };
    if (a == "--port") {
      port = static_cast<uint16_t>(std::stoul(value()));
    } else if (a == "--interval-ms") {
      interval_ms = std::stoull(value());
    } else if (a == "--iterations") {
      iterations = std::stoull(value());
    } else if (a == "--plain") {
      plain = true;
    } else if (a == "--require-stages") {
      require_stages = true;
    } else if (a == "--pane") {
      const std::string v = value();
      if (v == "serving") {
        pane = Pane::kServing;
      } else if (v == "background") {
        pane = Pane::kBackground;
      } else if (v == "all") {
        pane = Pane::kAll;
      } else {
        bad = true;
      }
    } else {
      bad = true;
    }
    if (bad) {
      std::fprintf(stderr,
                   "usage: %s --port N [--interval-ms 1000] [--iterations 0] "
                   "[--plain] [--require-stages] "
                   "[--pane=serving|background|all]\n",
                   argv[0]);
      return 2;
    }
  }
  if (port == 0) {
    std::fprintf(stderr, "%s: --port is required\n", argv[0]);
    return 2;
  }
  Totals prev;
  bool have_prev = false;
  bool stages_live = false;
  for (uint64_t poll = 1; iterations == 0 || poll <= iterations; ++poll) {
    MetricsSnapshot snap;
    std::string err;
    if (!FetchSnapshot(port, &snap, &err)) {
      std::fprintf(stderr, "wt_top: poll %" PRIu64 " failed: %s\n", poll,
                   err.c_str());
      if (iterations != 0 && poll == iterations) return 1;
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      continue;
    }
    Render(snap, have_prev ? prev : TotalsOf(snap),
           have_prev ? static_cast<double>(interval_ms) / 1e3 : 0.0, port,
           poll, plain, pane);
    prev = TotalsOf(snap);
    have_prev = true;
    stages_live = StagesLive(snap);
    if (iterations == 0 || poll < iterations) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  }
  if (require_stages && !stages_live) {
    std::fprintf(stderr,
                 "wt_top: --require-stages: a per-stage histogram is empty "
                 "(tracing not live)\n");
    return 1;
  }
  return 0;
}

#else  // !__linux__

int main() {
  std::fprintf(stderr, "wt_top: the serving layer is Linux-only\n");
  return 2;
}

#endif
