// wt_trace — span-trace export CLI (DESIGN.md #13).
//
//   wt_trace <trace.bin>                  convert a saved binary snapshot
//                                         to Chrome/Perfetto trace_event
//                                         JSON on stdout
//   wt_trace --port <port>                fetch a live daemon's kTrace
//                                         snapshot and convert it
//   wt_trace --validate <trace.bin>       structural audit instead of
//   wt_trace --validate --port <port>     conversion (see below)
//   ... --save <trace.bin>                also write the raw snapshot
//                                         bytes (fetch modes only)
//
// The JSON output loads directly into chrome://tracing or
// https://ui.perfetto.dev: begin/end slots become "B"/"E" duration slices
// nested by timestamp on their thread's track, instants become "i" marks,
// and the dotted span name splits into category ("engine", "wal", "pager",
// "serving") and slice name. Span/parent ids and the argument word ride
// in "args" so a click on any slice shows the linkage wt_top's slow-pane
// join uses.
//
// --validate runs ValidateTraceSnapshot (obs/trace.hpp) — monotone
// timestamps, no duplicate begin/end per span id, matched halves agree on
// name and thread, every compaction parented under a freeze or tier-merge
// — and prints a per-name event census. Exit codes: 0 valid, 1 invalid or
// unreadable, 2 usage. The same checks gate bench_serving's trace
// artifact, so a CI failure here reproduces locally from the .bin file.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/trace.hpp"

#if defined(__linux__)
#include "net/client.hpp"
#endif

namespace {

bool ReadFileBytes(const char* path, std::string* out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.good()) return false;
  const std::streamoff size = in.tellg();
  in.seekg(0);
  out->resize(static_cast<size_t>(size));
  in.read(out->data(), size);
  return in.gcount() == size;
}

#if defined(__linux__)
bool FetchTrace(uint16_t port, std::string* out) {
  wtrie::Result<wt::net::Client> c = wt::net::Client::Connect(port);
  if (!c.ok()) {
    std::fprintf(stderr, "cannot connect to port %u: %s\n", port,
                 c.status().message());
    return false;
  }
  wtrie::Result<wt::net::Frame> f =
      c->Call(wt::net::MsgType::kTrace, /*request_id=*/1, /*deadline_ms=*/0,
              "");
  if (!f.ok()) {
    std::fprintf(stderr, "kTrace call failed: %s\n", f.status().message());
    return false;
  }
  wt::net::WireStatus st{};
  wt::net::PayloadReader r("", 0);
  if (!wt::net::Client::DecodeStatus(*f, &st, &r) ||
      st != wt::net::WireStatus::kOk || !r.Str(out)) {
    std::fprintf(stderr, "malformed kTrace reply\n");
    return false;
  }
  return true;
}
#endif

/// Splits "engine.freeze" into category "engine" + slice name "freeze".
void SplitName(wt::obs::TraceName name, std::string* cat, std::string* leaf) {
  const std::string full = wt::obs::TraceNameString(name);
  const size_t dot = full.find('.');
  *cat = full.substr(0, dot);
  *leaf = dot == std::string::npos ? full : full.substr(dot + 1);
}

int EmitJson(const wt::obs::TraceSnapshot& snap, std::FILE* out) {
  std::fputs("{\"traceEvents\":[", out);
  bool first = true;
  for (const wt::obs::TraceWireEvent& e : snap.events) {
    std::string cat, leaf;
    SplitName(static_cast<wt::obs::TraceName>(e.name), &cat, &leaf);
    const char* ph = "i";
    if (e.kind == static_cast<uint8_t>(wt::obs::TraceKind::kBegin)) ph = "B";
    if (e.kind == static_cast<uint8_t>(wt::obs::TraceKind::kEnd)) ph = "E";
    if (!first) std::fputs(",", out);
    first = false;
    // trace_event timestamps are microseconds; keep nanosecond precision
    // with a fractional part.
    std::fprintf(out,
                 "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\","
                 "\"ts\":%" PRIu64 ".%03u,\"pid\":1,\"tid\":%u",
                 leaf.c_str(), cat.c_str(), ph, e.ts_ns / 1000,
                 static_cast<unsigned>(e.ts_ns % 1000), e.tid);
    if (ph[0] == 'i') std::fputs(",\"s\":\"t\"", out);
    std::fprintf(out,
                 ",\"args\":{\"span_id\":\"%" PRIx64
                 "\",\"parent_id\":\"%" PRIx64 "\",\"arg\":%" PRIu64 "}}",
                 e.span_id, e.parent_id, e.arg);
  }
  std::fprintf(out,
               "\n],\"otherData\":{\"dropped_events\":\"%" PRIu64 "\"}}\n",
               snap.dropped);
  return 0;
}

int Validate(const wt::obs::TraceSnapshot& snap) {
  uint64_t by_name[wt::obs::kTraceNameCount] = {};
  for (const wt::obs::TraceWireEvent& e : snap.events) {
    if (e.name < wt::obs::kTraceNameCount) by_name[e.name]++;
  }
  std::printf("events   %zu\n", snap.events.size());
  std::printf("dropped  %" PRIu64 "\n", snap.dropped);
  for (uint8_t n = 0; n < wt::obs::kTraceNameCount; ++n) {
    if (by_name[n] == 0) continue;
    std::printf("  %-24s %" PRIu64 "\n",
                wt::obs::TraceNameString(static_cast<wt::obs::TraceName>(n)),
                by_name[n]);
  }
  std::string err;
  if (!wt::obs::ValidateTraceSnapshot(snap, &err)) {
    std::fprintf(stderr, "INVALID: %s\n", err.c_str());
    return 1;
  }
  std::printf("valid\n");
  return 0;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--validate] <trace.bin>\n"
               "       %s [--validate] --port <port> [--save <trace.bin>]\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool validate = false;
  const char* file = nullptr;
  const char* save = nullptr;
  long port = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--validate") == 0) {
      validate = true;
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::strtol(argv[++i], nullptr, 10);
    } else if (std::strncmp(argv[i], "--port=", 7) == 0) {
      port = std::strtol(argv[i] + 7, nullptr, 10);
    } else if (std::strcmp(argv[i], "--save") == 0 && i + 1 < argc) {
      save = argv[++i];
    } else if (std::strncmp(argv[i], "--save=", 7) == 0) {
      save = argv[i] + 7;
    } else if (argv[i][0] != '-' && file == nullptr) {
      file = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if ((file == nullptr) == (port < 0)) return Usage(argv[0]);

  std::string bytes;
  if (file != nullptr) {
    if (!ReadFileBytes(file, &bytes)) {
      std::fprintf(stderr, "%s: unreadable\n", file);
      return 1;
    }
  } else {
#if defined(__linux__)
    if (port <= 0 || port > 65535 ||
        !FetchTrace(static_cast<uint16_t>(port), &bytes)) {
      return 1;
    }
#else
    std::fprintf(stderr, "--port needs the Linux serving layer\n");
    return 2;
#endif
  }
  if (save != nullptr) {
    std::ofstream out(save, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) {
      std::fprintf(stderr, "%s: write failed\n", save);
      return 1;
    }
  }

  wt::obs::TraceSnapshot snap;
  if (!wt::obs::ParseTraceSnapshot(bytes.data(), bytes.size(), &snap)) {
    std::fprintf(stderr, "trace snapshot failed to parse\n");
    return 1;
  }
  if (validate) return Validate(snap);
  return EmitJson(snap, stdout);
}
