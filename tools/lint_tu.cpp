// One translation unit that pulls in the library's entire public surface —
// every api/, core/, engine/, storage/, io/, common/, and util/ header —
// so single-TU analyzers have something to chew on:
//
//   * clang-tidy runs over this file (via the exported compile_commands)
//     and, through HeaderFilterRegex, reports findings in every header it
//     drags in;
//   * the clang -Wthread-safety CI job gets the whole locking surface
//     analyzed even if some header were missed by the test binaries;
//   * building it in the regular (GCC) build proves all headers coexist
//     in one TU — no include-order traps, no duplicate definitions.
//
// layout_contracts.hpp also runs its static_assert audit as a side effect.

#include "api/cursor.hpp"
#include "api/result.hpp"
#include "api/sequence.hpp"
#include "common/layout_contracts.hpp"
#include "common/thread_annotations.hpp"
#include "core/balanced_wavelet_tree.hpp"
#include "core/batch_dedup.hpp"
#include "core/btree_sequence.hpp"
#include "core/codec.hpp"
#include "core/dynamic_wavelet_tree_fixed.hpp"
#include "core/dynamic_wavelet_trie.hpp"
#include "core/huffman_wavelet_tree.hpp"
#include "core/inverted_index.hpp"
#include "core/lex_sequence.hpp"
#include "core/naive.hpp"
#include "core/string_sequence.hpp"
#include "core/wavelet_tree.hpp"
#include "core/wavelet_trie.hpp"
#include "engine/engine.hpp"
#include "io/vfs.hpp"
#include "net/admission.hpp"
#include "net/client.hpp"
#include "net/clock.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "net/session.hpp"
#include "net/socket.hpp"
#include "util/entropy.hpp"
#include "util/stats.hpp"
#include "util/workloads.hpp"
#include "util/zipf.hpp"

int main() { return 0; }
