// wt_inspect — storage introspection CLI (DESIGN.md #8).
//
//   wt_inspect <engine-dir>         dump the MANIFEST (shards, WAL floors,
//                                   segment stacks) and every referenced
//                                   segment file's format + section table
//   wt_inspect <file.wt|.img>       dump one segment/image file
//   wt_inspect --fsck <engine-dir>  offline consistency audit (see below)
//   wt_inspect --metrics <port>     fetch a live daemon's kMetrics snapshot
//                                   and print it as Prometheus-style text
//                                   (DESIGN.md #12; Linux only)
//
// For a v4 image it prints the header (strings, encoded bits, codec id,
// checksum state) and the per-section table: tag, offset, size — the
// offset-addressed layout a mapped open borrows from. v3 stream files are
// identified and sized but not parsed (they have no section table; the
// payload is one opaque checksummed blob).
//
// --fsck cross-checks manifest <-> segments <-> WAL without opening an
// engine, running the same decision logic recovery runs
// (engine/recovery_invariants.hpp, DESIGN.md #9): every referenced segment
// must exist, parse, hash-verify, and hold the string count the manifest
// claims; the surviving WAL records plus the manifest's frozen_through
// watermarks must admit a replay prefix satisfying the round-robin
// placement invariant. Exit codes:
//
//   0  clean — a reopen recovers the full surviving history (orphan
//      files, stale WAL generations, and torn log tails are benign crash
//      artifacts and are reported, not fatal);
//   2  degraded — the store opens but only a salvaged prefix replays
//      (the documented sync_wal=false crash tradeoff);
//   1  broken — a reopen would refuse: missing/corrupt segment, count
//      mismatch, unreadable manifest, or no consistent replay prefix.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "engine/manifest.hpp"
#include "engine/recovery_invariants.hpp"
#include "engine/wal.hpp"
#include "io/vfs.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "storage/image.hpp"
#include "storage/pager.hpp"

#if defined(__linux__)
#include "net/client.hpp"
#endif

namespace fs = std::filesystem;
namespace stor = wt::storage;

namespace {

int InspectFile(const fs::path& path, const char* indent) {
  std::string err;
  auto blob = stor::ReadFileBlob(path.string(), &err);
  if (blob == nullptr) {
    std::printf("%s%s: unreadable (%s)\n", indent, path.filename().c_str(),
                err.c_str());
    return 1;
  }
  if (!stor::LooksLikeImage(blob->data(), blob->size())) {
    std::printf("%s%s: v3 stream, %zu bytes (no section table)\n", indent,
                path.filename().c_str(), blob->size());
    return 0;
  }
  stor::ImageReader r;
  stor::ImageError verified =
      stor::ImageReader::Parse(blob->data(), blob->size(),
                               stor::VerifyMode::kFull, &r);
  const char* checksum = "ok";
  if (verified == stor::ImageError::kChecksumMismatch) {
    checksum = "MISMATCH";
    // Still dump the (bounds-checked) table so the damage is locatable.
    verified = stor::ImageReader::Parse(blob->data(), blob->size(),
                                        stor::VerifyMode::kNone, &r);
  }
  if (verified != stor::ImageError::kOk) {
    std::printf("%s%s: v4 image, %zu bytes — malformed (error %d)\n", indent,
                path.filename().c_str(), blob->size(),
                static_cast<int>(verified));
    return 1;
  }
  const stor::ImageHeader& h = r.header();
  std::printf("%s%s: v4 image, %" PRIu64
              " bytes, %" PRIu64 " strings, %" PRIu64
              " encoded bits, codec id %u, checksum %s\n",
              indent, path.filename().c_str(), h.total_bytes, h.n,
              h.encoded_bits, h.codec_id & 0xFF, checksum);
  std::printf("%s  %-14s %10s %12s\n", indent, "section", "offset", "bytes");
  for (const stor::SectionEntry& s : r.sections()) {
    std::printf("%s  %-14s %10" PRIu64 " %12" PRIu64 "\n", indent,
                stor::SectionTagName(s.tag), s.offset, s.bytes);
  }
  return std::strcmp(checksum, "ok") == 0 ? 0 : 1;
}

int InspectDir(const fs::path& dir) {
  wtrie::Result<wtrie::engine::Manifest> m =
      wtrie::engine::ReadManifest(dir.string());
  if (!m.ok()) {
    std::printf("%s: no readable MANIFEST (%s)\n", dir.c_str(),
                m.status().message());
    return 1;
  }
  std::printf("MANIFEST: %u shards, next batch id %" PRIu64 "\n",
              m->num_shards, m->next_batch_id);
  int rc = 0;
  for (size_t s = 0; s < m->shards.size(); ++s) {
    const wtrie::engine::ShardMeta& sm = m->shards[s];
    std::printf("shard %zu: wal floor %" PRIu64 ", next seg seq %" PRIu64
                ", frozen through batch %" PRIu64 ", %zu segment(s)\n",
                s, sm.wal_floor, sm.next_seg_seq, sm.frozen_through,
                sm.segments.size());
    for (const wtrie::engine::SegmentMeta& seg : sm.segments) {
      const fs::path p = dir / wtrie::engine::SegmentFileName(s, seg.seq);
      std::printf("  seq %" PRIu64 " (%" PRIu64 " strings)\n", seg.seq,
                  seg.count);
      rc |= InspectFile(p, "    ");
    }
  }
  // Unreferenced leftovers are worth surfacing too. error_code overloads
  // throughout: a racing engine may rotate/delete files mid-scan, and a
  // vanished entry must not abort the diagnostic.
  std::error_code ec;
  fs::directory_iterator it(dir, ec), end;
  for (; !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.rfind("wal-", 0) == 0) {
      const uintmax_t size = fs::file_size(it->path(), ec);
      std::printf("wal file: %s, %ju bytes\n", name.c_str(),
                  ec ? static_cast<uintmax_t>(0) : size);
      ec.clear();
    }
  }
  return rc;
}

// ------------------------------------------------------------------- fsck

// Verifies one manifest-referenced segment file: it must exist, and a v4
// image must parse, hash-verify, and hold exactly the string count the
// manifest records. v3 stream files have no cheap count field; their count
// is noted as unverified (the engine re-checks it at open). Returns true
// when the segment would load.
bool FsckSegment(const fs::path& path, uint64_t expected_count) {
  std::string err;
  auto blob = stor::ReadFileBlob(path.string(), &err);
  if (blob == nullptr) {
    std::printf("BROKEN: %s unreadable (%s)\n", path.filename().c_str(),
                err.c_str());
    return false;
  }
  if (!stor::LooksLikeImage(blob->data(), blob->size())) {
    std::printf("  %s: v3 stream, %zu bytes (count not verified offline)\n",
                path.filename().c_str(), blob->size());
    return true;
  }
  stor::ImageReader r;
  const stor::ImageError verified = stor::ImageReader::Parse(
      blob->data(), blob->size(), stor::VerifyMode::kFull, &r);
  if (verified != stor::ImageError::kOk) {
    std::printf("BROKEN: %s fails verification (error %d)\n",
                path.filename().c_str(), static_cast<int>(verified));
    return false;
  }
  if (r.header().n != expected_count) {
    std::printf("BROKEN: %s holds %" PRIu64
                " strings, manifest says %" PRIu64 "\n",
                path.filename().c_str(), r.header().n, expected_count);
    return false;
  }
  std::printf("  %s: v4 image, %" PRIu64 " strings, checksum ok\n",
              path.filename().c_str(), r.header().n);
  return true;
}

// Offline store audit: the same evidence and the same decision logic
// Engine::Recover uses, read-only. Exit 0 clean, 2 degraded/salvageable,
// 1 broken.
int FsckDir(const fs::path& dir) {
  namespace eng = wtrie::engine;
  wt::io::Vfs& vfs = wt::io::RealVfs::Instance();

  bool broken = false;
  eng::Manifest m;
  bool have_manifest = false;
  {
    wtrie::Result<eng::Manifest> r = eng::ReadManifest(dir.string());
    if (r.ok()) {
      m = std::move(r).value();
      have_manifest = true;
    } else if (r.status().code() == wtrie::ErrorCode::kNotFound) {
      std::printf("no MANIFEST (store never published one)\n");
    } else {
      std::printf("BROKEN: MANIFEST unreadable (%s)\n", r.status().message());
      broken = true;
    }
  }

  // Directory census: live WAL files per shard (generation order), plus
  // the benign leftovers recovery would delete.
  std::map<std::string, bool> referenced;  // segment name -> seen on disk
  size_t n = have_manifest ? m.num_shards : 0;
  std::vector<std::map<uint64_t, std::string>> wal_files;
  std::vector<std::pair<size_t, uint64_t>> all_wals;
  std::error_code ec;
  fs::directory_iterator it(dir, ec), end;
  for (; !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    size_t shard = 0;
    uint64_t num = 0;
    if (eng::ParseEngineFileName(name, "wal-", ".log", &shard, &num)) {
      all_wals.push_back({shard, num});
      if (shard + 1 > n) n = shard + 1;  // without a manifest, infer width
    } else if (eng::ParseEngineFileName(name, "seg-", ".wt", &shard, &num)) {
      referenced[name] = false;  // orphan until the manifest claims it
    } else if (name != "MANIFEST") {
      std::printf("benign: stale leftover %s (recovery deletes it)\n",
                  name.c_str());
    }
  }
  if (have_manifest && !broken) {
    for (size_t s = 0; s < m.shards.size(); ++s) {
      for (const eng::SegmentMeta& seg : m.shards[s].segments) {
        const std::string name = eng::SegmentFileName(s, seg.seq);
        auto found = referenced.find(name);
        if (found == referenced.end()) {
          std::printf("BROKEN: manifest references missing %s\n", name.c_str());
          broken = true;
        } else {
          found->second = true;
          if (!FsckSegment(dir / name, seg.count)) broken = true;
        }
      }
    }
  }
  for (const auto& [name, claimed] : referenced) {
    if (!claimed) {
      std::printf("benign: orphan segment %s (recovery deletes it)\n",
                  name.c_str());
    }
  }
  wal_files.resize(n);
  for (const auto& [shard, gen] : all_wals) {
    const uint64_t floor =
        have_manifest && shard < m.shards.size() ? m.shards[shard].wal_floor : 0;
    if (gen < floor) {
      std::printf("benign: stale wal-%zu-%" PRIu64
                  ".log below floor (recovery deletes it)\n",
                  shard, gen);
    } else if (shard < n) {
      wal_files[shard][gen] = (dir / eng::WalFileName(shard, gen)).string();
    }
  }
  if (broken) return 1;
  if (n == 0) {
    std::printf("clean: empty store\n");
    return 0;
  }

  // The recovery decision, re-run read-only: tabulate surviving batch
  // slices and ask for a replay prefix satisfying round-robin placement.
  std::vector<std::vector<eng::WalRecord>> records(n);
  for (size_t s = 0; s < n; ++s) {
    for (const auto& [gen, path] : wal_files[s]) {
      std::vector<eng::WalRecord> recs = eng::ReadWalFile(vfs, path);
      std::printf("  wal-%zu-%" PRIu64 ".log: %zu intact record(s)\n", s, gen,
                  recs.size());
      for (auto& r : recs) records[s].push_back(std::move(r));
    }
  }
  std::vector<uint64_t> base_counts(n, 0), frozen_through(n, 0);
  if (have_manifest) {
    for (size_t s = 0; s < m.shards.size(); ++s) {
      for (const eng::SegmentMeta& seg : m.shards[s].segments) {
        base_counts[s] += seg.count;
      }
      frozen_through[s] = m.shards[s].frozen_through;
    }
  }
  const eng::BatchTable batches = eng::BuildBatchTable(records);
  const std::optional<eng::ReplayPlan> plan =
      eng::PlanReplay(base_counts, frozen_through, records, batches);
  if (!plan.has_value()) {
    std::printf("BROKEN: no replay prefix satisfies the round-robin "
                "placement invariant — a reopen would refuse this store\n");
    return 1;
  }
  if (plan->salvaged()) {
    std::printf("DEGRADED: only batches below id %" PRIu64
                " replay consistently; a reopen salvages %" PRIu64
                " string(s) and drops the rest\n",
                plan->cut, plan->total);
    return 2;
  }
  std::printf("clean: a reopen recovers %" PRIu64 " string(s)\n", plan->total);
  return 0;
}

// --------------------------------------------------------------- metrics

// Scrape mode: one kMetrics round trip, rendered as the text exposition.
// Pipe it to a file and diff two scrapes, or feed an actual scraper.
int DumpMetrics(uint16_t port) {
#if defined(__linux__)
  wtrie::Result<wt::net::Client> c = wt::net::Client::Connect(port);
  if (!c.ok()) {
    std::fprintf(stderr, "cannot connect to port %u: %s\n", port,
                 c.status().message());
    return 1;
  }
  wtrie::Result<wt::net::Frame> f =
      c->Call(wt::net::MsgType::kMetrics, /*request_id=*/1, /*deadline_ms=*/0,
              "");
  if (!f.ok()) {
    std::fprintf(stderr, "kMetrics call failed: %s\n", f.status().message());
    return 1;
  }
  wt::net::WireStatus st{};
  wt::net::PayloadReader r("", 0);
  std::string bytes;
  if (!wt::net::Client::DecodeStatus(*f, &st, &r) ||
      st != wt::net::WireStatus::kOk || !r.Str(&bytes)) {
    std::fprintf(stderr, "malformed kMetrics reply\n");
    return 1;
  }
  wt::obs::MetricsSnapshot snap;
  if (!wt::obs::ParseMetricsSnapshot(bytes.data(), bytes.size(), &snap)) {
    std::fprintf(stderr, "metrics snapshot failed to parse\n");
    return 1;
  }
  std::fputs(wt::obs::RenderPromText(snap).c_str(), stdout);
  return 0;
#else
  (void)port;
  std::fprintf(stderr, "--metrics needs the Linux serving layer\n");
  return 2;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--metrics") == 0) {
    return DumpMetrics(static_cast<uint16_t>(std::strtoul(argv[2], nullptr,
                                                          10)));
  }
  if (argc == 3 && std::strcmp(argv[1], "--fsck") == 0) {
    const fs::path target(argv[2]);
    std::error_code ec;
    if (!fs::is_directory(target, ec)) {
      std::fprintf(stderr, "%s: not a directory\n", argv[2]);
      return 1;
    }
    return FsckDir(target);
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: %s <engine-dir | segment-file>\n"
                 "       %s --fsck <engine-dir>\n"
                 "       %s --metrics <port>\n",
                 argv[0], argv[0], argv[0]);
    return 2;
  }
  const fs::path target(argv[1]);
  std::error_code ec;
  if (fs::is_directory(target, ec)) return InspectDir(target);
  if (fs::is_regular_file(target, ec)) return InspectFile(target, "");
  std::fprintf(stderr, "%s: not a file or directory\n", argv[1]);
  return 2;
}
