// wt_inspect — storage introspection CLI (DESIGN.md #8).
//
//   wt_inspect <engine-dir>      dump the MANIFEST (shards, WAL floors,
//                                segment stacks) and every referenced
//                                segment file's format + section table
//   wt_inspect <file.wt|.img>    dump one segment/image file
//
// For a v4 image it prints the header (strings, encoded bits, codec id,
// checksum state) and the per-section table: tag, offset, size — the
// offset-addressed layout a mapped open borrows from. v3 stream files are
// identified and sized but not parsed (they have no section table; the
// payload is one opaque checksummed blob).
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "engine/manifest.hpp"
#include "storage/image.hpp"
#include "storage/pager.hpp"

namespace fs = std::filesystem;
namespace stor = wt::storage;

namespace {

int InspectFile(const fs::path& path, const char* indent) {
  std::string err;
  auto blob = stor::ReadFileBlob(path.string(), &err);
  if (blob == nullptr) {
    std::printf("%s%s: unreadable (%s)\n", indent, path.filename().c_str(),
                err.c_str());
    return 1;
  }
  if (!stor::LooksLikeImage(blob->data(), blob->size())) {
    std::printf("%s%s: v3 stream, %zu bytes (no section table)\n", indent,
                path.filename().c_str(), blob->size());
    return 0;
  }
  stor::ImageReader r;
  stor::ImageError verified =
      stor::ImageReader::Parse(blob->data(), blob->size(),
                               stor::VerifyMode::kFull, &r);
  const char* checksum = "ok";
  if (verified == stor::ImageError::kChecksumMismatch) {
    checksum = "MISMATCH";
    // Still dump the (bounds-checked) table so the damage is locatable.
    verified = stor::ImageReader::Parse(blob->data(), blob->size(),
                                        stor::VerifyMode::kNone, &r);
  }
  if (verified != stor::ImageError::kOk) {
    std::printf("%s%s: v4 image, %zu bytes — malformed (error %d)\n", indent,
                path.filename().c_str(), blob->size(),
                static_cast<int>(verified));
    return 1;
  }
  const stor::ImageHeader& h = r.header();
  std::printf("%s%s: v4 image, %" PRIu64
              " bytes, %" PRIu64 " strings, %" PRIu64
              " encoded bits, codec id %u, checksum %s\n",
              indent, path.filename().c_str(), h.total_bytes, h.n,
              h.encoded_bits, h.codec_id & 0xFF, checksum);
  std::printf("%s  %-14s %10s %12s\n", indent, "section", "offset", "bytes");
  for (const stor::SectionEntry& s : r.sections()) {
    std::printf("%s  %-14s %10" PRIu64 " %12" PRIu64 "\n", indent,
                stor::SectionTagName(s.tag), s.offset, s.bytes);
  }
  return std::strcmp(checksum, "ok") == 0 ? 0 : 1;
}

int InspectDir(const fs::path& dir) {
  wtrie::Result<wtrie::engine::Manifest> m =
      wtrie::engine::ReadManifest(dir.string());
  if (!m.ok()) {
    std::printf("%s: no readable MANIFEST (%s)\n", dir.c_str(),
                m.status().message());
    return 1;
  }
  std::printf("MANIFEST: %u shards, next batch id %" PRIu64 "\n",
              m->num_shards, m->next_batch_id);
  int rc = 0;
  for (size_t s = 0; s < m->shards.size(); ++s) {
    const wtrie::engine::ShardMeta& sm = m->shards[s];
    std::printf("shard %zu: wal floor %" PRIu64 ", next seg seq %" PRIu64
                ", %zu segment(s)\n",
                s, sm.wal_floor, sm.next_seg_seq, sm.segments.size());
    for (const wtrie::engine::SegmentMeta& seg : sm.segments) {
      const fs::path p = dir / wtrie::engine::SegmentFileName(s, seg.seq);
      std::printf("  seq %" PRIu64 " (%" PRIu64 " strings)\n", seg.seq,
                  seg.count);
      rc |= InspectFile(p, "    ");
    }
  }
  // Unreferenced leftovers are worth surfacing too. error_code overloads
  // throughout: a racing engine may rotate/delete files mid-scan, and a
  // vanished entry must not abort the diagnostic.
  std::error_code ec;
  fs::directory_iterator it(dir, ec), end;
  for (; !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.rfind("wal-", 0) == 0) {
      const uintmax_t size = fs::file_size(it->path(), ec);
      std::printf("wal file: %s, %ju bytes\n", name.c_str(),
                  ec ? static_cast<uintmax_t>(0) : size);
      ec.clear();
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <engine-dir | segment-file>\n", argv[0]);
    return 2;
  }
  const fs::path target(argv[1]);
  std::error_code ec;
  if (fs::is_directory(target, ec)) return InspectDir(target);
  if (fs::is_regular_file(target, ec)) return InspectFile(target, "");
  std::fprintf(stderr, "%s: not a file or directory\n", argv[1]);
  return 2;
}
