// Section 5 range analytics: distinct-values, range majority, frequent
// elements and sequential access on the static Wavelet Trie, against the
// naive full-scan baseline.
//
// Verified shapes:
//   * distinct-in-range cost tracks the number of *distinct* values reported
//     (not the range length) — the naive scan tracks the range length;
//   * majority is O(h log n)-ish regardless of range length;
//   * frequent-elements with a high threshold prunes almost everything;
//   * sequential access via iterators beats per-position Access.
#include <benchmark/benchmark.h>

#include <random>

#include "core/codec.hpp"
#include "core/naive.hpp"
#include "core/wavelet_trie.hpp"
#include "util/workloads.hpp"

namespace {

using namespace wt;

constexpr size_t kN = 1 << 18;

const std::vector<BitString>& Sequence() {
  static const std::vector<BitString>* seq = [] {
    UrlLogOptions opt;
    opt.num_domains = 32;
    opt.paths_per_domain = 16;
    opt.domain_skew = 1.2;
    UrlLogGenerator gen(opt);
    auto* s = new std::vector<BitString>();
    for (const auto& u : gen.Take(kN)) s->push_back(ByteCodec::Encode(u));
    return s;
  }();
  return *seq;
}

const WaveletTrie& Trie() {
  static const WaveletTrie* trie = new WaveletTrie(Sequence());
  return *trie;
}

void BM_DistinctInRange(benchmark::State& state) {
  const size_t range = size_t(1) << state.range(0);
  const auto& trie = Trie();
  std::mt19937_64 rng(1);
  size_t reported = 0, calls = 0;
  for (auto _ : state) {
    const size_t l = rng() % (kN - range);
    size_t count = 0;
    trie.DistinctInRange(l, l + range, [&](const BitString&, size_t) { ++count; });
    benchmark::DoNotOptimize(count);
    reported += count;
    ++calls;
  }
  state.counters["distinct"] = double(reported) / double(calls);
  state.SetLabel("cost ~ #distinct, not range length");
}
BENCHMARK(BM_DistinctInRange)->DenseRange(8, 16, 2);

void BM_DistinctNaiveScan(benchmark::State& state) {
  const size_t range = size_t(1) << state.range(0);
  static const NaiveIndexedSequence* naive = new NaiveIndexedSequence(Sequence());
  std::mt19937_64 rng(2);
  for (auto _ : state) {
    const size_t l = rng() % (kN - range);
    benchmark::DoNotOptimize(naive->DistinctInRange(l, l + range).size());
  }
  state.SetLabel("naive scan ~ range length");
}
BENCHMARK(BM_DistinctNaiveScan)->DenseRange(8, 14, 2);

void BM_RangeMajority(benchmark::State& state) {
  const size_t range = size_t(1) << state.range(0);
  const auto& trie = Trie();
  std::mt19937_64 rng(3);
  for (auto _ : state) {
    const size_t l = rng() % (kN - range);
    benchmark::DoNotOptimize(trie.RangeMajority(l, l + range));
  }
  state.SetLabel("~flat in range length");
}
BENCHMARK(BM_RangeMajority)->DenseRange(8, 16, 2);

void BM_RangeFrequent(benchmark::State& state) {
  const size_t range = 1 << 14;
  const size_t divisor = static_cast<size_t>(state.range(0));
  const auto& trie = Trie();
  std::mt19937_64 rng(4);
  for (auto _ : state) {
    const size_t l = rng() % (kN - range);
    size_t found = 0;
    trie.RangeFrequent(l, l + range, range / divisor,
                       [&](const BitString&, size_t) { ++found; });
    benchmark::DoNotOptimize(found);
  }
  state.SetLabel("threshold = range/arg; higher threshold prunes more");
}
BENCHMARK(BM_RangeFrequent)->Arg(2)->Arg(8)->Arg(64)->Arg(512);

void BM_SequentialIterate(benchmark::State& state) {
  const size_t range = size_t(1) << state.range(0);
  const auto& trie = Trie();
  std::mt19937_64 rng(5);
  for (auto _ : state) {
    const size_t l = rng() % (kN - range);
    size_t bits = 0;
    trie.ForEachInRange(l, l + range,
                        [&](size_t, const BitString& s) { bits += s.size(); });
    benchmark::DoNotOptimize(bits);
  }
  state.SetItemsProcessed(state.iterations() * range);
  state.SetLabel("iterator-based: one Rank per node per range");
}
BENCHMARK(BM_SequentialIterate)->DenseRange(8, 14, 2);

void BM_SequentialViaAccess(benchmark::State& state) {
  const size_t range = size_t(1) << state.range(0);
  const auto& trie = Trie();
  std::mt19937_64 rng(6);
  for (auto _ : state) {
    const size_t l = rng() % (kN - range);
    size_t bits = 0;
    for (size_t i = l; i < l + range; ++i) bits += trie.Access(i).size();
    benchmark::DoNotOptimize(bits);
  }
  state.SetItemsProcessed(state.iterations() * range);
  state.SetLabel("per-position Access baseline");
}
BENCHMARK(BM_SequentialViaAccess)->DenseRange(8, 14, 2);

void BM_RangeCountPrefix(benchmark::State& state) {
  const size_t range = size_t(1) << state.range(0);
  const auto& trie = Trie();
  const BitString p = ByteCodec::EncodePrefix("www.site0.com/");
  std::mt19937_64 rng(7);
  for (auto _ : state) {
    const size_t l = rng() % (kN - range);
    benchmark::DoNotOptimize(trie.RangeCountPrefix(p, l, l + range));
  }
  state.SetLabel("two RankPrefix calls, flat in range");
}
BENCHMARK(BM_RangeCountPrefix)->DenseRange(8, 16, 4);

}  // namespace

BENCHMARK_MAIN();
