// Table 1, space column: measured footprint of each Wavelet Trie variant
// against the information-theoretic lower bound LB(S) = LT(Sset) + n*H0(S)
// (paper Theorem 3.6 + Section 3).
//
// Paper claims to verify:
//   static       LB + o(~h n)            -> smallest, overhead shrinking-ish
//   append-only  LB + PT + o(~h n)       -> + O(|Sset| w) pointer term
//   dynamic      LB + PT + O(n H0)       -> largest, constant-factor entropy
// Ordering static < append-only < dynamic must hold; the static overhead
// over LB should be a modest fraction of ~h n.
//
// The three variants are built and measured through the unified public API
// (wtrie::Sequence<Policy>::SizeInBits(), which counts the trie
// representation plus codec state) so the reported numbers are exactly what
// an application pays, and stay comparable across API changes.
//
// This is a measurement table, not a timing microbenchmark, so it prints
// directly instead of using the google-benchmark loop.
#include <cstdio>
#include <vector>

#include "api/sequence.hpp"
#include "core/naive.hpp"
#include "util/entropy.hpp"
#include "util/workloads.hpp"

using namespace wt;

namespace {

template <typename Codec>
void Report(const char* workload, const std::vector<typename Codec::Value>& values,
            Codec codec = {}) {
  const size_t n = values.size();
  std::vector<BitString> seq;
  seq.reserve(n);
  for (const auto& v : values) seq.push_back(codec.Encode(v));
  const double nh0 = SequenceEntropyBits(seq);
  const auto lt = TrieLowerBoundBits(seq);
  const double lb = lt.total_bits + nh0;

  const wtrie::Sequence<wtrie::Static, Codec> st(values, codec);
  const wtrie::Sequence<wtrie::AppendOnly, Codec> ao(values, codec);
  const wtrie::Sequence<wtrie::Dynamic, Codec> dy(values, codec);
  NaiveIndexedSequence naive(seq);

  // ~h n = total beta bits = sum over elements of h_s; measure via heights.
  size_t total_bits = 0;
  for (const auto& s : seq) total_bits += s.size();

  std::printf("\nworkload: %s  (n=%zu, |Sset|=%zu, input=%zu bits)\n", workload,
              n, lt.num_distinct, total_bits);
  std::printf("  lower bound LB = LT + nH0 = %.0f + %.0f = %.0f bits\n",
              lt.total_bits, nh0, lb);
  std::printf("  %-22s %14s %10s %9s\n", "structure", "bits", "bits/elem",
              "vs LB");
  auto row = [&](const char* name, size_t bits) {
    std::printf("  %-22s %14zu %10.1f %8.2fx\n", name, bits,
                double(bits) / double(n), double(bits) / lb);
  };
  row("static (Thm 3.7)", st.SizeInBits());
  row("append-only (Thm 4.3)", ao.SizeInBits());
  row("dynamic (Thm 4.4)", dy.SizeInBits());
  row("uncompressed naive", naive.SizeInBits());
}

}  // namespace

int main() {
  std::printf("=== Table 1, space column: measured vs LB(S) = LT(Sset) + nH0(S) ===\n");

  {
    UrlLogOptions opt;
    opt.num_domains = 64;
    opt.paths_per_domain = 32;
    UrlLogGenerator gen(opt);
    Report("URL access log (Zipf domains)", gen.Take(1 << 17), ByteCodec{});
  }
  {
    // Skewed small alphabet: entropy far below the raw size.
    UrlLogOptions opt;
    opt.num_domains = 8;
    opt.paths_per_domain = 4;
    opt.domain_skew = 1.4;
    UrlLogGenerator gen(opt);
    Report("low-entropy log (32 URLs, heavy skew)", gen.Take(1 << 17),
           ByteCodec{});
  }
  {
    // Integer column via the fixed-width codec.
    std::vector<uint64_t> vals;
    for (uint64_t v :
         GenerateIntegers(1 << 17, 256, IntDistribution::kZipf, 5)) {
      vals.push_back(v & 0xFFFFFFFFu);
    }
    Report("32-bit integer column (Zipf, 256 distinct)", vals,
           FixedIntCodec(32));
  }
  return 0;
}
