// Storage-layer acceptance bench (DESIGN.md #8): what the v4 flat image +
// pager buy on the 1M Zipf-URL workload, written to BENCH_storage.json.
//
//   * cold open — wall time from file to first-query-ready Sequence:
//     the v3 stream loader (envelope checksum, payload parse, directory
//     and header rebuilds, O(alphabet) budget walk) vs the v4 image
//     mapped (mmap + one streaming hash verify + pointer fix-up; the
//     kNone and heap variants are reported alongside). Gated at >= 50x.
//     All trials run warm-cache — the realistic restart, and the fair
//     comparison (both sides read the same cached bytes).
//   * first query after open — the page-fault cost the mapped path defers;
//   * steady state — AccessBatch throughput mapped vs heap-resident;
//   * engine cold open — Engine::Open on a flushed durable store, mapped
//     vs heap image loads;
//   * correctness — Access/Rank/Select batch answers asserted
//     byte-identical across built / v3-loaded / v4-heap / v4-mapped on
//     every run; the binary exits nonzero on any mismatch.
//
// WT_BENCH_SMOKE shrinks the run for CI (and skips the ratio gate: at
// smoke sizes the fixed mmap/syscall overheads dominate the ratio).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "api/sequence.hpp"
#include "engine/engine.hpp"
#include "storage/image.hpp"
#include "storage/pager.hpp"
#include "util/workloads.hpp"

namespace {

using namespace wtrie;
namespace fs = std::filesystem;
namespace stor = wt::storage;

using clock_type = std::chrono::steady_clock;
using StrSequence = Sequence<Static, wt::ByteCodec>;
using StrEngine = Engine<wt::ByteCodec>;

double Seconds(clock_type::time_point a, clock_type::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// A 1M-entry log over a realistically wide URL alphabet (~up to 256k
// distinct strings): cold open is dominated by the per-distinct-node work
// the v3 loader redoes (flat header rebuild, Elias–Fano selects, rank
// cursor walks) — exactly the work the v4 image persists.
std::vector<std::string> MakeLog(size_t n) {
  wt::UrlLogOptions opt;
  opt.num_domains = 4096;
  opt.paths_per_domain = 64;
  opt.seed = 7;
  wt::UrlLogGenerator gen(opt);
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(gen.Next());
  return out;
}

void WriteFile(const fs::path& p, const std::string& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ------------------------------------------------------------ benchmark
// tables (spot measurements; the gate below is what CI tracks)

void BM_V3StreamLoad(benchmark::State& state) {
  const StrSequence seq(MakeLog(size_t(1) << state.range(0)));
  std::ostringstream os;
  (void)seq.Save(os);
  const std::string bytes = std::move(os).str();
  for (auto _ : state) {
    std::istringstream is(bytes);
    benchmark::DoNotOptimize(StrSequence::Load(is));
  }
}
BENCHMARK(BM_V3StreamLoad)->Arg(14)->Arg(17)->Unit(benchmark::kMillisecond);

void BM_V4ImageOpen(benchmark::State& state) {
  const StrSequence seq(MakeLog(size_t(1) << state.range(0)));
  const std::string img = seq.SerializeImage();
  auto blob = std::make_shared<stor::HeapBlob>(img.size());
  std::memcpy(blob->mutable_data(), img.data(), img.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(StrSequence::LoadImage(blob));
  }
}
BENCHMARK(BM_V4ImageOpen)->Arg(14)->Arg(17)->Unit(benchmark::kMillisecond);

// ----------------------------------------------------------------- the gate

struct GateResult {
  size_t n = 0;
  size_t v3_bytes = 0;
  size_t v4_bytes = 0;
  double v3_load_ms = 1e300;        // best-of-trials minima
  double v4_mmap_default_ms = 1e300;  // engine default: structural checks only
  double v4_mmap_verified_ms = 1e300;
  double v4_heap_ms = 1e300;
  double first_query_v3_us = 0;
  double first_query_v4_us = 0;
  double steady_heap_qps = 0;
  double steady_mapped_qps = 0;
  double engine_open_mapped_ms = 1e300;
  double engine_open_heap_ms = 1e300;
  size_t engine_segments = 0;
  bool identical = true;
};

template <typename A, typename B>
bool SameAnswers(const A& a, const B& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

bool RunGate(GateResult* out, size_t n, size_t q) {
  const fs::path dir =
      fs::temp_directory_path() / ("wtrie_bench_storage_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto values = MakeLog(n);
  out->n = n;
  const StrSequence built(values);

  // ---- files.
  std::ostringstream os;
  if (!built.Save(os).ok()) return false;
  const std::string v3_bytes = std::move(os).str();
  const std::string v4_bytes = built.SerializeImage();
  out->v3_bytes = v3_bytes.size();
  out->v4_bytes = v4_bytes.size();
  const fs::path v3_file = dir / "seq.v3";
  const fs::path v4_file = dir / "seq.v4img";
  WriteFile(v3_file, v3_bytes);
  WriteFile(v4_file, v4_bytes);

  // Query sets.
  std::mt19937_64 rng(13);
  std::vector<size_t> positions(q);
  for (auto& p : positions) p = rng() % n;
  std::vector<std::string> rank_vals;
  std::vector<size_t> rank_pos(q / 4), sel_idx(q / 8);
  for (size_t i = 0; i < q / 4; ++i) {
    rank_vals.push_back(values[rng() % n]);
    rank_pos[i] = rng() % (n + 1);
  }
  std::vector<std::string> sel_vals;
  for (size_t i = 0; i < q / 8; ++i) {
    sel_vals.push_back(values[rng() % n]);
    sel_idx[i] = rng() % 500;
  }

  // ---- cold opens (best of 3; the timed unit is file -> query-ready).
  constexpr int kTrials = 3;
  std::optional<StrSequence> v3_loaded, mapped_loaded;
  for (int t = 0; t < kTrials; ++t) {
    {
      const auto t0 = clock_type::now();
      std::ifstream in(v3_file, std::ios::binary);
      Result<StrSequence> r = StrSequence::Load(in);
      const auto t1 = clock_type::now();
      if (!r.ok()) return false;
      out->v3_load_ms = std::min(out->v3_load_ms, Seconds(t0, t1) * 1e3);
      if (t == 0) {
        const auto q0 = clock_type::now();
        benchmark::DoNotOptimize(r->Access(positions[0]));
        out->first_query_v3_us = Seconds(q0, clock_type::now()) * 1e6;
        v3_loaded = std::move(r).value();
      }
    }
    {
      // The engine-default open: mmap + structural checks, no hash pass
      // (the serving configuration the acceptance gate tracks).
      stor::Pager pager;  // fresh pager: a real (re)map each trial
      std::string err;
      const auto t0 = clock_type::now();
      Result<StrSequence> r = StrSequence::LoadImage(
          pager.Map(v4_file.string(), &err), {}, stor::VerifyMode::kNone);
      const auto t1 = clock_type::now();
      if (!r.ok()) return false;
      out->v4_mmap_default_ms =
          std::min(out->v4_mmap_default_ms, Seconds(t0, t1) * 1e3);
      if (t == 0) {
        const auto q0 = clock_type::now();
        benchmark::DoNotOptimize(r->Access(positions[0]));
        out->first_query_v4_us = Seconds(q0, clock_type::now()) * 1e6;
        mapped_loaded = std::move(r).value();
      }
    }
    {
      // The paranoid open: full-image hash first.
      stor::Pager pager;
      std::string err;
      const auto t0 = clock_type::now();
      Result<StrSequence> r = StrSequence::LoadImage(
          pager.Map(v4_file.string(), &err), {}, stor::VerifyMode::kFull);
      if (!r.ok()) return false;
      benchmark::DoNotOptimize(r->size());
      out->v4_mmap_verified_ms =
          std::min(out->v4_mmap_verified_ms, Seconds(t0, clock_type::now()) * 1e3);
    }
    {
      std::string err;
      const auto t0 = clock_type::now();
      Result<StrSequence> r =
          StrSequence::LoadImage(stor::ReadFileBlob(v4_file.string(), &err));
      if (!r.ok()) return false;
      benchmark::DoNotOptimize(r->size());
      out->v4_heap_ms = std::min(out->v4_heap_ms, Seconds(t0, clock_type::now()) * 1e3);
    }
  }

  // ---- correctness: all three loaded forms answer like the built one.
  {
    const auto oa = built.AccessBatch(positions).value();
    const auto orr = built.RankBatch(rank_vals, rank_pos).value();
    const auto osel = built.SelectBatch(sel_vals, sel_idx).value();
    for (const StrSequence* s : {&*v3_loaded, &*mapped_loaded}) {
      out->identical = out->identical &&
                       SameAnswers(oa, s->AccessBatch(positions).value()) &&
                       SameAnswers(orr, s->RankBatch(rank_vals, rank_pos).value()) &&
                       SameAnswers(osel, s->SelectBatch(sel_vals, sel_idx).value()) &&
                       s->SizeInBits() == built.SizeInBits() &&
                       s->EncodedBits() == built.EncodedBits();
    }
  }

  // ---- steady state: batched point lookups, heap-resident vs mapped.
  for (int t = 0; t < kTrials; ++t) {
    auto t0 = clock_type::now();
    benchmark::DoNotOptimize(v3_loaded->AccessBatch(positions));
    out->steady_heap_qps = std::max(
        out->steady_heap_qps, double(positions.size()) / Seconds(t0, clock_type::now()));
    t0 = clock_type::now();
    benchmark::DoNotOptimize(mapped_loaded->AccessBatch(positions));
    out->steady_mapped_qps = std::max(
        out->steady_mapped_qps, double(positions.size()) / Seconds(t0, clock_type::now()));
  }

  // ---- engine cold open on a flushed durable store.
  const fs::path edir = dir / "engine";
  StrEngine::Options eopt;
  eopt.num_shards = 4;
  eopt.dir = edir.string();
  {
    auto eng = StrEngine::Open(eopt).value();
    if (!eng->AppendBatch(values).ok()) return false;
    if (!eng->Flush().ok()) return false;
  }
  for (int t = 0; t < kTrials; ++t) {
    {
      const auto t0 = clock_type::now();
      auto eng = StrEngine::Open(eopt);
      if (!eng.ok()) return false;
      out->engine_open_mapped_ms =
          std::min(out->engine_open_mapped_ms, Seconds(t0, clock_type::now()) * 1e3);
      if ((*eng)->size() != n) return false;
      out->engine_segments = 0;
      for (const auto& st : (*eng)->Stats()) out->engine_segments += st.num_segments;
    }
    {
      auto heap_opt = eopt;
      heap_opt.map_segments = false;
      const auto t0 = clock_type::now();
      auto eng = StrEngine::Open(heap_opt);
      if (!eng.ok()) return false;
      out->engine_open_heap_ms =
          std::min(out->engine_open_heap_ms, Seconds(t0, clock_type::now()) * 1e3);
    }
  }
  fs::remove_all(dir);
  return true;
}

bool WriteAcceptanceJson() {
  const bool smoke = std::getenv("WT_BENCH_SMOKE") != nullptr;
  const size_t n = smoke ? 50'000 : 1'000'000;
  const size_t q = smoke ? 16'384 : 131'072;

  GateResult g;
  const bool ran = RunGate(&g, n, q);
  const double speedup =
      g.v4_mmap_default_ms > 0 ? g.v3_load_ms / g.v4_mmap_default_ms : 0;
  // The >= 50x open gate is enforced on full runs only: at smoke sizes the
  // fixed mmap/open syscall cost dominates the v4 side of the ratio.
  bool ok = ran && g.identical;
  if (!smoke) ok = ok && speedup >= 50.0;

  FILE* f = std::fopen("BENCH_storage.json", "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"workload\": \"url_log_zipf\", \"num_strings\": %zu,\n", g.n);
  std::fprintf(f, "  \"file_bytes\": {\"v3_stream\": %zu, \"v4_image\": %zu,\n",
               g.v3_bytes, g.v4_bytes);
  std::fprintf(f, "    \"note\": \"the image persists every derived directory; "
               "that is the space cost of rebuilding nothing on open\"},\n");
  std::fprintf(f, "  \"cold_open_ms\": {\n");
  std::fprintf(f, "    \"note\": \"warm page cache (the realistic restart); "
               "file -> query-ready, best of 3\",\n");
  std::fprintf(f, "    \"v3_stream_load\": %.2f,\n", g.v3_load_ms);
  std::fprintf(f, "    \"v4_image_mmap_default\": %.3f,\n", g.v4_mmap_default_ms);
  std::fprintf(f, "    \"v4_image_mmap_hash_verified\": %.3f,\n",
               g.v4_mmap_verified_ms);
  std::fprintf(f, "    \"v4_image_heap_loaded\": %.3f,\n", g.v4_heap_ms);
  std::fprintf(f, "    \"speedup_v4_mmap_default_vs_v3\": %.1f\n", speedup);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"first_query_after_open_us\": {\"v3_loaded\": %.1f, "
               "\"v4_mapped\": %.1f},\n",
               g.first_query_v3_us, g.first_query_v4_us);
  std::fprintf(f, "  \"steady_state_access_batch_qps\": {\n");
  std::fprintf(f, "    \"heap_resident\": %.0f,\n", g.steady_heap_qps);
  std::fprintf(f, "    \"mapped\": %.0f,\n", g.steady_mapped_qps);
  std::fprintf(f, "    \"mapped_vs_heap\": %.3f\n",
               g.steady_heap_qps > 0 ? g.steady_mapped_qps / g.steady_heap_qps : 0);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"engine_cold_open_ms\": {\"mapped_v4\": %.2f, "
               "\"heap_v4\": %.2f, \"num_segments\": %zu},\n",
               g.engine_open_mapped_ms, g.engine_open_heap_ms,
               g.engine_segments);
  std::fprintf(f, "  \"gate\": {\n");
  std::fprintf(f, "    \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "    \"answers_identical\": %s,\n", g.identical ? "true" : "false");
  std::fprintf(f, "    \"open_speedup_required\": 50.0,\n");
  std::fprintf(f, "    \"open_speedup\": %.1f,\n", speedup);
  std::fprintf(f, "    \"pass\": %s\n", ok ? "true" : "false");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf(
      "BENCH_storage.json: v3 load %.1f ms vs v4 mmap %.3f ms (%.0fx; "
      "hash-verified %.2f ms, heap %.2f ms); first query %.1f/%.1f us; steady "
      "mapped/heap %.3f; engine open %.2f ms (%zu segs); identical=%s, "
      "pass=%s\n",
      g.v3_load_ms, g.v4_mmap_default_ms, speedup, g.v4_mmap_verified_ms,
      g.v4_heap_ms, g.first_query_v3_us, g.first_query_v4_us,
      g.steady_heap_qps > 0 ? g.steady_mapped_qps / g.steady_heap_qps : 0,
      g.engine_open_mapped_ms, g.engine_segments, g.identical ? "yes" : "no",
      ok ? "yes" : "no");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return WriteAcceptanceJson() ? 0 : 1;
}
