// Theorem 4.9 + Remark 4.2: the dynamic RLE+gamma bitvector supports all
// operations including Init in O(log n); the gap+delta encoding of [18]
// cannot support Init(1, n) in under Theta(n) — the ablation that justifies
// the paper's encoding switch.
//
// Verified shapes:
//   * Insert/Erase/Rank/Select grow ~log n for the RLE tree;
//   * Init(0, n) cheap for both; Init(1, n) O(log n) for RLE vs Theta(n)
//     for gap (time ratio exploding with n);
//   * space: RLE compresses runs of both bit values, gap only zeros.
#include <benchmark/benchmark.h>

#include <random>

#include "bitvector/dynamic_bit_vector.hpp"
#include "bitvector/gap_bit_vector.hpp"

namespace {

using namespace wt;

template <typename BV>
BV MakeRandom(size_t n, double density, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution coin(density);
  BV v;
  for (size_t i = 0; i < n; ++i) v.Append(coin(rng));
  return v;
}

template <typename BV>
void BM_Insert(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  auto v = MakeRandom<BV>(n, 0.3, 1);
  std::mt19937_64 rng(2);
  for (auto _ : state) {
    v.Insert(rng() % (v.size() + 1), rng() & 1);
  }
  state.SetLabel("O(log n) insert");
}
BENCHMARK(BM_Insert<DynamicBitVector>)->DenseRange(12, 22, 2);
BENCHMARK(BM_Insert<GapBitVector>)->DenseRange(12, 22, 2);

template <typename BV>
void BM_RankDyn(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto v = MakeRandom<BV>(n, 0.3, 3);
  std::mt19937_64 rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.Rank1(rng() % (n + 1)));
  }
}
BENCHMARK(BM_RankDyn<DynamicBitVector>)->DenseRange(12, 22, 2);
BENCHMARK(BM_RankDyn<GapBitVector>)->DenseRange(12, 22, 2);

template <typename BV>
void BM_EraseDyn(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  auto v = MakeRandom<BV>(n, 0.3, 5);
  std::mt19937_64 rng(6);
  for (auto _ : state) {
    v.Erase(rng() % v.size());
    state.PauseTiming();
    v.Append(rng() & 1);  // keep size constant
    state.ResumeTiming();
  }
}
BENCHMARK(BM_EraseDyn<DynamicBitVector>)->DenseRange(12, 18, 2);
BENCHMARK(BM_EraseDyn<GapBitVector>)->DenseRange(12, 18, 2);

// ------------------------- the Remark 4.2 ablation: Init(1, n) ------------

template <typename BV>
void BM_InitOnes(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  for (auto _ : state) {
    BV v(true, n);
    benchmark::DoNotOptimize(v.size());
  }
  state.SetLabel("Init(1,n): RLE O(log n) vs gap Theta(n)");
}
BENCHMARK(BM_InitOnes<DynamicBitVector>)->DenseRange(10, 22, 4);
BENCHMARK(BM_InitOnes<GapBitVector>)->DenseRange(10, 22, 4);

template <typename BV>
void BM_InitZeros(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  for (auto _ : state) {
    BV v(false, n);
    benchmark::DoNotOptimize(v.size());
  }
  state.SetLabel("Init(0,n): cheap for both encodings");
}
BENCHMARK(BM_InitZeros<DynamicBitVector>)->DenseRange(10, 22, 4);
BENCHMARK(BM_InitZeros<GapBitVector>)->DenseRange(10, 22, 4);

// Space on run-structured data: RLE compresses both bit values.
template <typename BV>
void BM_SpaceOnRuns(benchmark::State& state) {
  const size_t n = 1 << 20;
  std::mt19937_64 rng(7);
  BV v;
  bool bit = false;
  size_t filled = 0;
  while (filled < n) {
    const size_t run = 1 + rng() % 200;
    for (size_t i = 0; i < run && filled < n; ++i, ++filled) v.Append(bit);
    bit = !bit;
  }
  for (auto _ : state) benchmark::DoNotOptimize(v.SizeInBits());
  state.counters["bits_per_bit"] = double(v.SizeInBits()) / double(n);
}
BENCHMARK(BM_SpaceOnRuns<DynamicBitVector>);
BENCHMARK(BM_SpaceOnRuns<GapBitVector>);

}  // namespace

BENCHMARK_MAIN();
