// Theorem 6.2: the randomized Wavelet Tree over a universe u = 2^64
// supports Access/Rank/Select/Insert/Delete in time governed by the
// *working alphabet* size |Sigma|, not the universe: the hashed trie height
// is <= (alpha+2) log |Sigma| w.h.p.
//
// Verified shapes:
//   * measured height ~ c * log2(sigma) with small c, far below 64;
//   * op latency grows with sigma, not with the magnitude of the values;
//   * ablation: the same trie WITHOUT hashing (fixed-width MSB codec on raw
//     64-bit values) collapses to height ~64 on an adversarial alphabet.
#include <benchmark/benchmark.h>

#include <random>

#include "core/balanced_wavelet_tree.hpp"
#include "core/codec.hpp"
#include "core/dynamic_wavelet_trie.hpp"
#include "util/workloads.hpp"

namespace {

using namespace wt;

void BM_HashedInsert(benchmark::State& state) {
  const size_t sigma = size_t(1) << state.range(0);
  const auto vals = GenerateIntegers(1 << 14, sigma, IntDistribution::kUniform, 9);
  BalancedWaveletTree tree(64, 42);
  for (uint64_t v : vals) tree.Append(v);
  std::mt19937_64 rng(1);
  size_t i = 0;
  for (auto _ : state) {
    tree.Insert(vals[i++ % vals.size()], rng() % (tree.size() + 1));
  }
  state.counters["height"] = static_cast<double>(tree.Height());
  state.counters["log2_sigma"] = static_cast<double>(state.range(0));
  state.SetLabel("height tracks log|Sigma|, u=2^64 (Thm 6.2)");
}
BENCHMARK(BM_HashedInsert)->DenseRange(4, 14, 2);

void BM_HashedRank(benchmark::State& state) {
  const size_t sigma = size_t(1) << state.range(0);
  const auto vals = GenerateIntegers(1 << 15, sigma, IntDistribution::kUniform, 10);
  BalancedWaveletTree tree(64, 43);
  for (uint64_t v : vals) tree.Append(v);
  std::mt19937_64 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Rank(vals[rng() % vals.size()], rng() % (tree.size() + 1)));
  }
  state.counters["height"] = static_cast<double>(tree.Height());
}
BENCHMARK(BM_HashedRank)->DenseRange(4, 14, 2);

void BM_HashedAccess(benchmark::State& state) {
  const size_t sigma = size_t(1) << state.range(0);
  const auto vals = GenerateIntegers(1 << 15, sigma, IntDistribution::kUniform, 11);
  BalancedWaveletTree tree(64, 44);
  for (uint64_t v : vals) tree.Append(v);
  std::mt19937_64 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Access(rng() % tree.size()));
  }
}
BENCHMARK(BM_HashedAccess)->DenseRange(4, 14, 2);

// Ablation: unhashed trie on an adversarial alphabet (dense low integers
// share long MSB prefixes, but a *chain* alphabet forces depth): values
// 2^k - 1 produce a maximally unbalanced trie without hashing.
void BM_UnhashedAdversarial(benchmark::State& state) {
  const size_t sigma = 48;  // alphabet {2^0-1, ..., 2^47-1}: chain trie
  FixedIntCodec codec(64);
  DynamicWaveletTrie trie;
  std::mt19937_64 rng(4);
  for (int i = 0; i < 1 << 14; ++i) {
    const uint64_t v = (uint64_t(1) << (rng() % sigma)) - 1;
    trie.Append(codec.Encode(v));
  }
  for (auto _ : state) {
    const uint64_t v = (uint64_t(1) << (rng() % sigma)) - 1;
    benchmark::DoNotOptimize(trie.Rank(codec.Encode(v), rng() % trie.size()));
  }
  state.counters["height"] = static_cast<double>(trie.Height());
  state.SetLabel("no hashing: height ~ |Sigma| on a chain alphabet");
}
BENCHMARK(BM_UnhashedAdversarial);

void BM_HashedAdversarial(benchmark::State& state) {
  // Same chain alphabet through the Section 6 hash: height collapses to
  // O(log sigma).
  const size_t sigma = 48;
  BalancedWaveletTree tree(64, 45);
  std::mt19937_64 rng(5);
  for (int i = 0; i < 1 << 14; ++i) {
    tree.Append((uint64_t(1) << (rng() % sigma)) - 1);
  }
  for (auto _ : state) {
    const uint64_t v = (uint64_t(1) << (rng() % sigma)) - 1;
    benchmark::DoNotOptimize(tree.Rank(v, rng() % tree.size()));
  }
  state.counters["height"] = static_cast<double>(tree.Height());
  state.SetLabel("with hashing: height ~ log|Sigma| on the same alphabet");
}
BENCHMARK(BM_HashedAdversarial);

}  // namespace

BENCHMARK_MAIN();
