// Tree-shape ablation (paper Section 3: any Wavelet Tree is a Wavelet Trie
// under a suitable binarization): the same integer sequence stored as
//
//   * balanced        — classic WaveletTree, n*ceil(log sigma) bitvector bits;
//   * huffman         — HuffmanWaveletTree (Wavelet Trie on Huffman codes),
//                       ~nH0 bitvector bits, frequent symbols near the root;
//   * fixed-int trie  — WaveletTrie under FixedIntCodec (the balanced shape
//                       realized as a trie, with RRR-compressed bitvectors).
//
// Swept over Zipf skew: as skew grows, H0 drops and the Huffman shape's
// space and average access depth pull away from the balanced shape.
// Counters report bits-per-element and measured average codeword depth.
#include <benchmark/benchmark.h>

#include <cmath>
#include <map>
#include <vector>

#include "core/codec.hpp"
#include "core/huffman_wavelet_tree.hpp"
#include "core/string_sequence.hpp"
#include "core/wavelet_tree.hpp"
#include "core/wavelet_trie.hpp"
#include "util/workloads.hpp"
#include "util/zipf.hpp"

namespace {

using namespace wt;

constexpr size_t kN = 1 << 15;
constexpr uint64_t kSigma = 512;

// Zipf exponent = arg / 10 (benchmark args must be integers).
std::vector<uint64_t> MakeSeq(double skew) {
  std::mt19937_64 rng(77);
  std::vector<uint64_t> seq;
  seq.reserve(kN);
  if (skew == 0.0) {
    for (size_t i = 0; i < kN; ++i) seq.push_back(rng() % kSigma);
  } else {
    ZipfDistribution z(kSigma, skew);
    for (size_t i = 0; i < kN; ++i) seq.push_back(z(rng));
  }
  return seq;
}

double EntropyBits(const std::vector<uint64_t>& seq) {
  std::map<uint64_t, size_t> counts;
  for (uint64_t v : seq) ++counts[v];
  double h = 0;
  for (const auto& [v, c] : counts) {
    const double p = double(c) / double(seq.size());
    h -= p * std::log2(p);
  }
  return h;
}

void BM_Shape_Balanced(benchmark::State& state) {
  const auto seq = MakeSeq(double(state.range(0)) / 10.0);
  const WaveletTree tree(seq, kSigma);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Rank(seq[i], i));
    i = (i + 4099) % kN;
  }
  state.counters["bits_per_elem"] = double(tree.SizeInBits()) / double(kN);
  state.counters["H0"] = EntropyBits(seq);
  state.counters["depth"] = std::ceil(std::log2(double(kSigma)));
}
BENCHMARK(BM_Shape_Balanced)->Arg(0)->Arg(8)->Arg(10)->Arg(13)->Arg(16);

void BM_Shape_Huffman(benchmark::State& state) {
  const auto seq = MakeSeq(double(state.range(0)) / 10.0);
  const HuffmanWaveletTree tree(seq);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Rank(seq[i], i));
    i = (i + 4099) % kN;
  }
  state.counters["bits_per_elem"] = double(tree.SizeInBits()) / double(kN);
  state.counters["H0"] = EntropyBits(seq);
  // Average access depth = expected codeword length.
  double depth = 0;
  std::map<uint64_t, size_t> counts;
  for (uint64_t v : seq) ++counts[v];
  for (const auto& [v, c] : counts) {
    depth += double(c) * double(*tree.code().Length(v));
  }
  state.counters["depth"] = depth / double(kN);
}
BENCHMARK(BM_Shape_Huffman)->Arg(0)->Arg(8)->Arg(10)->Arg(13)->Arg(16);

void BM_Shape_FixedIntTrie(benchmark::State& state) {
  const auto seq = MakeSeq(double(state.range(0)) / 10.0);
  const FixedIntCodec codec(9);  // 512 values -> 9-bit fixed codes
  std::vector<BitString> enc;
  enc.reserve(seq.size());
  for (uint64_t v : seq) enc.push_back(codec.Encode(v));
  const WaveletTrie trie(enc);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.Rank(enc[i].Span(), i));
    i = (i + 4099) % kN;
  }
  state.counters["bits_per_elem"] = double(trie.SizeInBits()) / double(kN);
  state.counters["H0"] = EntropyBits(seq);
  state.counters["depth"] = 9.0;
}
BENCHMARK(BM_Shape_FixedIntTrie)->Arg(0)->Arg(8)->Arg(10)->Arg(13)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
