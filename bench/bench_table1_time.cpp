// Table 1, time column: per-operation latency of the three Wavelet Trie
// variants as the sequence length n grows.
//
// Paper claims to verify (shape, not absolute numbers):
//   static      Query  O(|s| + h_s)          -> flat in n
//   append-only Query  O(|s| + h_s)          -> flat in n
//   append-only Append O(|s| + h_s)          -> flat in n
//   dynamic     Query  O(|s| + h_s log n)    -> grows ~log n
//   dynamic     Insert/Delete O(|s|+h_s log n) -> grows ~log n
//
// Workload: synthetic URL access log (Zipfian domains, shared prefixes),
// the paper's motivating application. |s| and h_s are held ~constant across
// n by fixing the URL universe.
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "core/codec.hpp"
#include "core/dynamic_wavelet_trie.hpp"
#include "core/wavelet_trie.hpp"
#include "util/workloads.hpp"

namespace {

using namespace wt;

std::vector<BitString> MakeLog(size_t n) {
  UrlLogOptions opt;
  opt.num_domains = 64;
  opt.paths_per_domain = 32;
  opt.seed = 1234;
  UrlLogGenerator gen(opt);
  std::vector<BitString> seq;
  seq.reserve(n);
  for (size_t i = 0; i < n; ++i) seq.push_back(ByteCodec::Encode(gen.Next()));
  return seq;
}

std::vector<BitString> MakeProbes() {
  UrlLogOptions opt;
  opt.num_domains = 64;
  opt.paths_per_domain = 32;
  opt.seed = 1234;
  UrlLogGenerator gen(opt);
  std::vector<BitString> probes;
  for (size_t d = 0; d < 16; ++d) {
    probes.push_back(ByteCodec::Encode(gen.Url(d, d % 32)));
  }
  return probes;
}

// ------------------------------------------------------------- static

void BM_StaticRank(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto seq = MakeLog(n);
  WaveletTrie trie(seq);
  const auto probes = MakeProbes();
  std::mt19937_64 rng(1);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.Rank(probes[i++ % probes.size()], rng() % (n + 1)));
  }
  state.SetLabel("query flat in n (Thm 3.7)");
}
BENCHMARK(BM_StaticRank)->DenseRange(12, 20, 2);

void BM_StaticAccess(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  WaveletTrie trie(MakeLog(n));
  std::mt19937_64 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.Access(rng() % n));
  }
}
BENCHMARK(BM_StaticAccess)->DenseRange(12, 20, 2);

void BM_StaticSelectPrefix(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  WaveletTrie trie(MakeLog(n));
  const BitString p = ByteCodec::EncodePrefix("www.site0.com/");
  const size_t total = trie.RankPrefix(p, n);
  std::mt19937_64 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.SelectPrefix(p, rng() % total));
  }
}
BENCHMARK(BM_StaticSelectPrefix)->DenseRange(12, 20, 2);

// ---------------------------------------------------------- append-only

void BM_AppendOnlyAppend(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto seq = MakeLog(n);
  // Amortized per-append cost at size ~n: rebuild on each iteration batch.
  for (auto _ : state) {
    state.PauseTiming();
    AppendOnlyWaveletTrie trie;
    for (size_t i = 0; i + n / 4 < n; ++i) trie.Append(seq[i]);  // prefill 3/4
    state.ResumeTiming();
    for (size_t i = n - n / 4; i < n; ++i) trie.Append(seq[i]);
  }
  state.SetItemsProcessed(state.iterations() * (n / 4));
  state.SetLabel("amortized append, flat in n (Thm 4.3)");
}
BENCHMARK(BM_AppendOnlyAppend)
    ->DenseRange(12, 18, 2)
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

void BM_AppendOnlyRank(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto seq = MakeLog(n);
  AppendOnlyWaveletTrie trie;
  for (const auto& s : seq) trie.Append(s);
  const auto probes = MakeProbes();
  std::mt19937_64 rng(4);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.Rank(probes[i++ % probes.size()], rng() % (n + 1)));
  }
}
BENCHMARK(BM_AppendOnlyRank)->DenseRange(12, 20, 2);

void BM_AppendOnlyAccess(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto seq = MakeLog(n);
  AppendOnlyWaveletTrie trie;
  for (const auto& s : seq) trie.Append(s);
  std::mt19937_64 rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.Access(rng() % n));
  }
}
BENCHMARK(BM_AppendOnlyAccess)->DenseRange(12, 20, 2);

// -------------------------------------------------------- fully dynamic

void BM_DynamicRank(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto seq = MakeLog(n);
  DynamicWaveletTrie trie;
  for (const auto& s : seq) trie.Append(s);
  const auto probes = MakeProbes();
  std::mt19937_64 rng(6);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.Rank(probes[i++ % probes.size()], rng() % (n + 1)));
  }
  state.SetLabel("query ~log n (Thm 4.4)");
}
BENCHMARK(BM_DynamicRank)->DenseRange(12, 18, 2);

void BM_DynamicInsert(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto seq = MakeLog(n);
  DynamicWaveletTrie trie;
  for (const auto& s : seq) trie.Append(s);
  std::mt19937_64 rng(7);
  size_t i = 0;
  for (auto _ : state) {
    trie.Insert(seq[i++ % seq.size()], rng() % (trie.size() + 1));
  }
  state.SetLabel("insert ~log n (Thm 4.4)");
}
BENCHMARK(BM_DynamicInsert)->DenseRange(12, 18, 2);

void BM_DynamicDelete(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto seq = MakeLog(n);
  DynamicWaveletTrie trie;
  for (const auto& s : seq) trie.Append(s);
  std::mt19937_64 rng(8);
  size_t i = 0;
  for (auto _ : state) {
    // Keep the size roughly constant: delete one, insert one.
    trie.Delete(rng() % trie.size());
    state.PauseTiming();
    trie.Append(seq[i++ % seq.size()]);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_DynamicDelete)->DenseRange(12, 16, 2);

}  // namespace

BENCHMARK_MAIN();
