// Related-work comparison (paper Section 1, "Related work"): the Wavelet
// Trie against
//   (1) dictionary + classic Wavelet Tree (integer alphabet, fixed mapping);
//   (2) fixed-alphabet *dynamic* Wavelet Tree ([12,16,18] model);
//   (3) inverted-index / explicit-sequence baseline;
//   naive uncompressed scan.
//
// Verified claims:
//   * query speed comparable to the dictionary+tree approach, while also
//     supporting prefix queries and a dynamic alphabet;
//   * handling a previously-unseen value: O(|s|+h log n) insert for the
//     trie vs full rebuild for the fixed-alphabet tree (the paper's
//     issue (a));
//   * space: trie ~ entropy, inverted index and naive far above.
#include <benchmark/benchmark.h>

#include <map>
#include <random>
#include <string>
#include <vector>

#include "core/codec.hpp"
#include "core/dynamic_wavelet_tree_fixed.hpp"
#include "core/dynamic_wavelet_trie.hpp"
#include "core/inverted_index.hpp"
#include "core/naive.hpp"
#include "core/wavelet_tree.hpp"
#include "core/wavelet_trie.hpp"
#include "util/workloads.hpp"

namespace {

using namespace wt;

constexpr size_t kN = 1 << 16;

struct Data {
  std::vector<std::string> urls;
  std::vector<BitString> encoded;
  std::vector<uint64_t> ids;  // dictionary-mapped
  std::map<std::string, uint64_t> dict;
  size_t sigma;
};

const Data& Dataset() {
  static const Data* d = [] {
    auto* data = new Data();
    UrlLogOptions opt;
    opt.num_domains = 48;
    opt.paths_per_domain = 24;
    UrlLogGenerator gen(opt);
    data->urls = gen.Take(kN);
    for (const auto& u : data->urls) {
      data->encoded.push_back(ByteCodec::Encode(u));
      auto [it, _] = data->dict.emplace(u, data->dict.size());
      data->ids.push_back(it->second);
    }
    data->sigma = data->dict.size();
    return data;
  }();
  return *d;
}

void BM_RankWaveletTrie(benchmark::State& state) {
  const auto& d = Dataset();
  WaveletTrie trie(d.encoded);
  std::mt19937_64 rng(1);
  for (auto _ : state) {
    const auto& probe = d.encoded[rng() % d.encoded.size()];
    benchmark::DoNotOptimize(trie.Rank(probe, rng() % (kN + 1)));
  }
  state.counters["MiB"] = double(trie.SizeInBits()) / 8e6;
}
BENCHMARK(BM_RankWaveletTrie);

void BM_RankDictWaveletTree(benchmark::State& state) {
  const auto& d = Dataset();
  WaveletTree tree(d.ids, d.sigma);
  std::mt19937_64 rng(2);
  for (auto _ : state) {
    // A fair comparison includes the dictionary lookup the approach needs.
    const auto& url = d.urls[rng() % d.urls.size()];
    const uint64_t id = d.dict.at(url);
    benchmark::DoNotOptimize(tree.Rank(id, rng() % (kN + 1)));
  }
  size_t dict_bits = 0;
  for (const auto& [s, _] : d.dict) dict_bits += 8 * (s.size() + 48);
  state.counters["MiB"] = (double(tree.SizeInBits()) + dict_bits) / 8e6;
  state.SetLabel("no prefix ops, alphabet frozen at build");
}
BENCHMARK(BM_RankDictWaveletTree);

void BM_RankInvertedIndex(benchmark::State& state) {
  const auto& d = Dataset();
  InvertedIndexBaseline idx;
  for (const auto& u : d.urls) idx.Append(u);
  std::mt19937_64 rng(3);
  for (auto _ : state) {
    const auto& url = d.urls[rng() % d.urls.size()];
    benchmark::DoNotOptimize(idx.Rank(url, rng() % (kN + 1)));
  }
  state.counters["MiB"] = double(idx.SizeInBits()) / 8e6;
  state.SetLabel("fast but uncompressed");
}
BENCHMARK(BM_RankInvertedIndex);

void BM_RankNaive(benchmark::State& state) {
  const auto& d = Dataset();
  NaiveIndexedSequence naive(d.encoded);
  std::mt19937_64 rng(4);
  for (auto _ : state) {
    const auto& probe = d.encoded[rng() % d.encoded.size()];
    benchmark::DoNotOptimize(naive.Rank(probe, rng() % (kN + 1)));
  }
  state.counters["MiB"] = double(naive.SizeInBits()) / 8e6;
}
BENCHMARK(BM_RankNaive);

// ---------------- dynamic alphabet: unseen value arrives ----------------

void BM_UnseenValueWaveletTrie(benchmark::State& state) {
  const auto& d = Dataset();
  DynamicWaveletTrie trie;
  for (const auto& e : d.encoded) trie.Append(e);
  size_t serial = 0;
  for (auto _ : state) {
    // A URL never seen before: one insert, alphabet grows in place.
    trie.Append(ByteCodec::Encode("www.brandnew.org/" + std::to_string(serial++)));
  }
  state.SetLabel("O(|s| + h log n): no rebuild");
}
BENCHMARK(BM_UnseenValueWaveletTrie);

void BM_UnseenValueFixedTree(benchmark::State& state) {
  const auto& d = Dataset();
  for (auto _ : state) {
    // The fixed-alphabet tree must be rebuilt with sigma+1 to accept an
    // unseen value (the mapping cannot change: paper issue (a)).
    DynamicWaveletTreeFixed rebuilt(d.sigma + 1);
    for (uint64_t id : d.ids) rebuilt.Append(id);
    rebuilt.Append(d.sigma);  // the new value
    benchmark::DoNotOptimize(rebuilt.size());
  }
  state.SetLabel("full rebuild required");
}
BENCHMARK(BM_UnseenValueFixedTree)->Iterations(3)->Unit(benchmark::kMillisecond);

// -------------------- prefix queries: trie vs inverted index -------------

void BM_PrefixCountWaveletTrie(benchmark::State& state) {
  const auto& d = Dataset();
  WaveletTrie trie(d.encoded);
  const BitString p = ByteCodec::EncodePrefix("www.site1.com/");
  std::mt19937_64 rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.RankPrefix(p, rng() % (kN + 1)));
  }
  state.SetLabel("O(|p| + h_p)");
}
BENCHMARK(BM_PrefixCountWaveletTrie);

void BM_PrefixCountInvertedIndex(benchmark::State& state) {
  const auto& d = Dataset();
  InvertedIndexBaseline idx;
  for (const auto& u : d.urls) idx.Append(u);
  std::mt19937_64 rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.RankPrefix("www.site1.com/", rng() % (kN + 1)));
  }
  state.SetLabel("scans every matching dictionary entry");
}
BENCHMARK(BM_PrefixCountInvertedIndex);

}  // namespace

BENCHMARK_MAIN();
