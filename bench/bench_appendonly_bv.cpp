// Theorem 4.5: the append-only bitvector supports Access, Rank, Select and
// Append in O(1) with nH0 + o(n) bits.
//
// Verified shapes:
//   * Rank/Access latency flat in n (worst-case O(1));
//   * Append amortized O(1) (throughput flat in n);
//   * Select near-flat (our engineering substitute binary-searches chunk
//     partial sums, see DESIGN.md #3.2 — the bench quantifies it);
//   * space/nH0 -> small constant across densities.
#include <benchmark/benchmark.h>

#include <cmath>
#include <random>

#include "bitvector/append_only.hpp"

namespace {

using namespace wt;

AppendOnlyBitVector MakeVector(size_t n, double density, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution coin(density);
  AppendOnlyBitVector v;
  for (size_t i = 0; i < n; ++i) v.Append(coin(rng));
  return v;
}

void BM_Append(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  std::mt19937_64 rng(1);
  for (auto _ : state) {
    AppendOnlyBitVector v;
    for (size_t i = 0; i < n; ++i) v.Append(rng() & 1);
    benchmark::DoNotOptimize(v.num_ones());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("amortized O(1) append");
}
BENCHMARK(BM_Append)->DenseRange(14, 22, 2)->Unit(benchmark::kMillisecond);

void BM_Rank(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto v = MakeVector(n, 0.3, 2);
  std::mt19937_64 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.Rank1(rng() % (n + 1)));
  }
  state.SetLabel("worst-case O(1) rank");
}
BENCHMARK(BM_Rank)->DenseRange(14, 24, 2);

void BM_Access(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto v = MakeVector(n, 0.3, 4);
  std::mt19937_64 rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.Get(rng() % n));
  }
}
BENCHMARK(BM_Access)->DenseRange(14, 24, 2);

void BM_Select(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto v = MakeVector(n, 0.3, 6);
  std::mt19937_64 rng(7);
  const size_t ones = v.num_ones();
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.Select1(rng() % ones));
  }
  state.SetLabel("O(log(n/L)) engineering select");
}
BENCHMARK(BM_Select)->DenseRange(14, 24, 2);

// Space vs entropy across densities: reported as counters.
void BM_SpaceVsEntropy(benchmark::State& state) {
  const size_t n = 1 << 22;
  const double density = state.range(0) / 1000.0;
  const auto v = MakeVector(n, density, 8);
  const double p = double(v.num_ones()) / double(n);
  const double h = (p <= 0 || p >= 1)
                       ? 0.0
                       : -p * std::log2(p) - (1 - p) * std::log2(1 - p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.SizeInBits());
  }
  state.counters["bits_per_bit"] = double(v.SizeInBits()) / double(n);
  state.counters["H0"] = h;
  state.counters["overhead_vs_H0"] =
      h > 0 ? double(v.SizeInBits()) / (h * n) : 0.0;
}
BENCHMARK(BM_SpaceVsEntropy)->Arg(1)->Arg(10)->Arg(50)->Arg(200)->Arg(500);

// Init(b, m): must be O(1) regardless of m (the Theorem 4.3 offset trick).
void BM_InitVirtualRun(benchmark::State& state) {
  const size_t m = size_t(1) << state.range(0);
  for (auto _ : state) {
    AppendOnlyBitVector v(true, m);
    benchmark::DoNotOptimize(v.size());
  }
  state.SetLabel("O(1) Init for any run length");
}
BENCHMARK(BM_InitVirtualRun)->Arg(10)->Arg(20)->Arg(30)->Arg(40);

}  // namespace

BENCHMARK_MAIN();
