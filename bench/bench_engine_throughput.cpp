// Engine throughput (DESIGN.md #7): the acceptance numbers of the
// concurrent segmented engine on the 1M Zipf-URL workload.
//
//   * query serving — aggregate throughput of 4 reader threads running the
//     point-lookup serving stream (batched snapshot Access, 4 shards)
//     against engine snapshots, gated at >= 3x a single thread running the
//     same stream per-query on one Sequence<Static>. The single-threaded
//     *batched* Sequence number is reported alongside so the two effects
//     (batch amortization vs reader parallelism) stay distinguishable.
//     Point lookups are the serving aggregate because they are the one
//     operation positional sharding answers with single-shard work; the
//     cross-shard operations are tracked separately:
//   * rank — every global rank sums one rank per shard by construction, so
//     its engine-vs-monolith multiplier (~#shards of per-shard work, less
//     after batching) is reported as its own metric, not hidden in an
//     aggregate;
//   * select — cross-shard positional select is a lockstep binary search
//     costing O(log n) batched cross-shard ranks; same treatment;
//   * ingest — strings/s sustained through the memtable path
//     (AppendEncodedBatch: round-robin span split + WAL-less word-parallel
//     memtable appends, no freeze in the measured window), gated at
//     >= 10M strings/s; the end-to-end number (codec + background freezes
//     + final Flush) and the WAL-durable number are reported alongside;
//   * correctness — Access/Rank/Select batch answers are asserted
//     byte-identical to the single-Sequence oracle on every run; the
//     binary exits nonzero on any mismatch.
//
// Writes BENCH_engine.json (committed at the repo root, uploaded by CI).
// WT_BENCH_SMOKE shrinks the run for CI; the tracked numbers come from
// full runs without it.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "api/sequence.hpp"
#include "engine/engine.hpp"
#include "util/workloads.hpp"

namespace {

using namespace wtrie;

using clock_type = std::chrono::steady_clock;
using StrEngine = Engine<wt::ByteCodec>;
using StrSequence = Sequence<Static, wt::ByteCodec>;

double Seconds(clock_type::time_point a, clock_type::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::vector<std::string> MakeLog(size_t n) {
  wt::UrlLogOptions opt;
  opt.num_domains = 64;
  opt.paths_per_domain = 32;
  opt.seed = 7;
  wt::UrlLogGenerator gen(opt);
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(gen.Next());
  return out;
}

std::vector<uint64_t> MakePositions(size_t n, size_t q, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<uint64_t> out;
  out.reserve(q);
  for (size_t i = 0; i < q; ++i) out.push_back(rng() % n);
  return out;
}

struct RankSet {
  std::vector<std::string> vals;
  std::vector<uint64_t> pos;
};

RankSet MakeRanks(const std::vector<std::string>& values, size_t q,
                  uint64_t seed) {
  RankSet rs;
  std::mt19937_64 rng(seed);
  for (size_t i = 0; i < q; ++i) {
    rs.vals.push_back(i % 7 == 6 ? "www.absent.example/none"
                                 : values[rng() % values.size()]);
    rs.pos.push_back(rng() % (values.size() + 1));
  }
  return rs;
}

struct SelectSet {
  std::vector<std::string> vals;
  std::vector<uint64_t> idx;
};

SelectSet MakeSelects(const std::vector<std::string>& values, size_t q,
                      uint64_t seed) {
  SelectSet ss;
  std::mt19937_64 rng(seed);
  for (size_t i = 0; i < q; ++i) {
    ss.vals.push_back(values[rng() % values.size()]);
    ss.idx.push_back(rng() % 500);
  }
  return ss;
}

// ------------------------------------------------------------ benchmark
// tables (spot measurements; the gate below is what CI tracks)

void BM_EngineIngestEncoded(benchmark::State& state) {
  const auto values = MakeLog(size_t(1) << state.range(0));
  std::vector<wt::BitString> enc;
  enc.reserve(values.size());
  for (const auto& v : values) enc.push_back(wt::ByteCodec::Encode(v));
  for (auto _ : state) {
    state.PauseTiming();
    StrEngine::Options opt;
    opt.num_shards = 4;
    opt.memtable_limit = size_t(1) << 30;  // pure memtable path
    auto eng = StrEngine::Open(opt).value();
    state.ResumeTiming();
    benchmark::DoNotOptimize(eng->AppendEncodedBatch(enc));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_EngineIngestEncoded)->Arg(17)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_EngineSnapshotAccessBatch(benchmark::State& state) {
  const auto values = MakeLog(size_t(1) << state.range(0));
  StrEngine::Options opt;
  opt.num_shards = 4;
  auto eng = StrEngine::Open(opt).value();
  (void)eng->AppendBatch(values);
  (void)eng->Flush();
  const auto snap = eng->GetSnapshot();
  const auto positions = MakePositions(values.size(), 8192, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(snap.AccessBatch(positions));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(positions.size()));
}
BENCHMARK(BM_EngineSnapshotAccessBatch)
    ->Arg(17)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond);

// ----------------------------------------------------------------- the gate

struct GateResult {
  size_t n = 0;
  size_t num_segments = 0;
  double baseline_loop_qps = 0;    // single thread, per-query Sequence<Static>
  double baseline_batch_qps = 0;   // single thread, batched Sequence<Static>
  double engine_qps = 0;           // 4 reader threads, batched snapshots
  double rank_engine_ns = 0;       // cross-shard RankBatch, ns/query
  double rank_oracle_ns = 0;       // Sequence<Static> RankBatch, ns/query
  double select_engine_ns = 0;     // cross-shard SelectBatch, ns/query
  double select_oracle_ns = 0;     // Sequence<Static> SelectBatch, ns/query
  double ingest_memtable_sps = 0;  // encoded strings/s, memtable path
  double ingest_e2e_sps = 0;       // values/s incl. codec, freezes, Flush
  double ingest_wal_sps = 0;       // values/s with WAL durability on
  bool identical = true;
};

bool RunGate(GateResult* out, size_t n, size_t q, size_t rounds) {
  const auto values = MakeLog(n);
  out->n = n;

  // Every gated metric is the best of three trials: the container's
  // timing noise is one-sided (a busy neighbour only ever slows a trial
  // down), and the same rule is applied to the baseline denominators, so
  // the ratios stay fair.
  constexpr int kTrials = 3;

  // ---- ingest: pure memtable path (pre-encoded, no freeze in window).
  {
    std::vector<wt::BitString> enc;
    enc.reserve(n);
    for (const auto& v : values) enc.push_back(wt::ByteCodec::Encode(v));
    for (int trial = 0; trial < kTrials; ++trial) {
      StrEngine::Options opt;
      opt.num_shards = 4;
      opt.memtable_limit = size_t(1) << 30;
      auto eng = StrEngine::Open(opt).value();
      const auto t0 = clock_type::now();
      if (!eng->AppendEncodedBatch(enc).ok()) return false;
      const auto t1 = clock_type::now();
      out->ingest_memtable_sps =
          std::max(out->ingest_memtable_sps, double(n) / Seconds(t0, t1));
    }
  }
  // ---- ingest: end to end (codec, default freezes, final Flush).
  {
    StrEngine::Options opt;
    opt.num_shards = 4;
    auto eng = StrEngine::Open(opt).value();
    const auto t0 = clock_type::now();
    if (!eng->AppendBatch(values).ok()) return false;
    if (!eng->Flush().ok()) return false;
    const auto t1 = clock_type::now();
    out->ingest_e2e_sps = double(n) / Seconds(t0, t1);
  }
  // ---- ingest: WAL-durable end to end.
  {
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "wtrie_bench_engine_wal";
    fs::remove_all(dir);
    StrEngine::Options opt;
    opt.num_shards = 4;
    opt.dir = dir.string();
    auto eng = StrEngine::Open(opt).value();
    const auto t0 = clock_type::now();
    if (!eng->AppendBatch(values).ok()) return false;
    if (!eng->Flush().ok()) return false;
    const auto t1 = clock_type::now();
    out->ingest_wal_sps = double(n) / Seconds(t0, t1);
    fs::remove_all(dir);
  }

  // ---- serving: engine (4 shards, flushed + compacted steady state).
  StrEngine::Options opt;
  opt.num_shards = 4;
  auto eng = StrEngine::Open(opt).value();
  if (!eng->AppendBatch(values).ok()) return false;
  if (!eng->Flush().ok() || !eng->Compact().ok()) return false;
  const auto snap = eng->GetSnapshot();
  out->num_segments = snap.NumSegments();

  const StrSequence oracle = StrSequence::FromEncoded([&] {
    std::vector<wt::BitString> enc;
    enc.reserve(n);
    for (const auto& v : values) enc.push_back(wt::ByteCodec::Encode(v));
    return enc;
  }());

  // Correctness: engine batches byte-identical to the oracle (all three
  // operations).
  {
    const auto apos = MakePositions(n, q / 4, 17);
    const RankSet rs = MakeRanks(values, q / 8, 18);
    const SelectSet ss = MakeSelects(values, q / 16, 19);
    const auto ea = snap.AccessBatch(apos).value();
    const auto er = snap.RankBatch(rs.vals, rs.pos).value();
    const auto es = snap.SelectBatch(ss.vals, ss.idx).value();
    const auto oa =
        oracle.AccessBatch({apos.begin(), apos.end()}).value();
    const auto orr =
        oracle.RankBatch(rs.vals, {rs.pos.begin(), rs.pos.end()}).value();
    const auto os =
        oracle.SelectBatch(ss.vals, {ss.idx.begin(), ss.idx.end()}).value();
    for (size_t i = 0; i < ea.size(); ++i) {
      out->identical = out->identical && ea[i] == oa[i];
    }
    for (size_t i = 0; i < er.size(); ++i) {
      out->identical = out->identical && er[i] == orr[i];
    }
    for (size_t i = 0; i < es.size(); ++i) {
      const bool same = es[i].has_value() == os[i].has_value() &&
                        (!es[i].has_value() || *es[i] == *os[i]);
      out->identical = out->identical && same;
    }
    if (!out->identical) return false;
  }

  // ---- baseline: one thread, per-query loop on the Sequence.
  const auto positions = MakePositions(n, q, 29);
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::vector<size_t> apos(positions.begin(), positions.end());
    const auto t0 = clock_type::now();
    size_t issued = 0;
    for (size_t r = 0; r < rounds; ++r) {
      for (const size_t p : apos) {
        benchmark::DoNotOptimize(oracle.Access(p));
      }
      issued += apos.size();
    }
    out->baseline_loop_qps =
        std::max(out->baseline_loop_qps,
                 double(issued) / Seconds(t0, clock_type::now()));
  }

  // ---- baseline: one thread, batched Sequence API.
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::vector<size_t> apos(positions.begin(), positions.end());
    const auto t0 = clock_type::now();
    size_t issued = 0;
    for (size_t r = 0; r < rounds; ++r) {
      benchmark::DoNotOptimize(oracle.AccessBatch(apos));
      issued += apos.size();
    }
    out->baseline_batch_qps =
        std::max(out->baseline_batch_qps,
                 double(issued) / Seconds(t0, clock_type::now()));
  }

  // ---- engine: 4 reader threads over snapshots, same stream per thread.
  for (int trial = 0; trial < kTrials; ++trial) {
    constexpr size_t kReaders = 4;
    std::vector<std::vector<uint64_t>> streams;
    for (size_t t = 0; t < kReaders; ++t) {
      streams.push_back(MakePositions(n, q, 100 + t));
    }
    std::atomic<size_t> issued{0};
    const auto t0 = clock_type::now();
    std::vector<std::thread> readers;
    for (size_t t = 0; t < kReaders; ++t) {
      readers.emplace_back([&, t] {
        size_t mine = 0;
        for (size_t r = 0; r < rounds; ++r) {
          const auto s = eng->GetSnapshot();  // re-pin per round, like a server
          benchmark::DoNotOptimize(s.AccessBatch(streams[t]));
          mine += streams[t].size();
        }
        issued.fetch_add(mine, std::memory_order_relaxed);
      });
    }
    for (auto& th : readers) th.join();
    out->engine_qps = std::max(
        out->engine_qps, double(issued.load()) / Seconds(t0, clock_type::now()));
  }

  // ---- rank and select, measured separately (see the file comment).
  {
    const RankSet rs = MakeRanks(values, q / 4, 37);
    const std::vector<size_t> rpos(rs.pos.begin(), rs.pos.end());
    auto t0 = clock_type::now();
    benchmark::DoNotOptimize(snap.RankBatch(rs.vals, rs.pos));
    auto t1 = clock_type::now();
    out->rank_engine_ns = Seconds(t0, t1) / double(rs.vals.size()) * 1e9;
    t0 = clock_type::now();
    benchmark::DoNotOptimize(oracle.RankBatch(rs.vals, rpos));
    t1 = clock_type::now();
    out->rank_oracle_ns = Seconds(t0, t1) / double(rs.vals.size()) * 1e9;
  }
  {
    const SelectSet ss = MakeSelects(values, q / 8, 38);
    const std::vector<size_t> sidx(ss.idx.begin(), ss.idx.end());
    auto t0 = clock_type::now();
    benchmark::DoNotOptimize(snap.SelectBatch(ss.vals, ss.idx));
    auto t1 = clock_type::now();
    out->select_engine_ns = Seconds(t0, t1) / double(ss.vals.size()) * 1e9;
    t0 = clock_type::now();
    benchmark::DoNotOptimize(oracle.SelectBatch(ss.vals, sidx));
    t1 = clock_type::now();
    out->select_oracle_ns = Seconds(t0, t1) / double(ss.vals.size()) * 1e9;
  }
  return true;
}

bool WriteAcceptanceJson() {
  const bool smoke = std::getenv("WT_BENCH_SMOKE") != nullptr;
  const size_t n = smoke ? 50'000 : 1'000'000;
  const size_t q = smoke ? 16'384 : 262'144;
  const size_t rounds = smoke ? 1 : 2;

  GateResult g;
  const bool ran = RunGate(&g, n, q, rounds);
  const double speedup_vs_loop =
      g.baseline_loop_qps > 0 ? g.engine_qps / g.baseline_loop_qps : 0;
  // The >=3x and >=10M/s gates are enforced on full (non-smoke) runs only:
  // smoke runs exist to exercise the whole path quickly in CI, where n is
  // too small for the amortizations the gates assume.
  bool ok = ran && g.identical;
  if (!smoke) {
    ok = ok && speedup_vs_loop >= 3.0 && g.ingest_memtable_sps >= 10e6;
  }

  FILE* f = std::fopen("BENCH_engine.json", "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"workload\": \"url_log_zipf\", \"num_strings\": %zu,\n",
               g.n);
  std::fprintf(f,
               "  \"engine\": {\"num_shards\": 4, \"reader_threads\": 4, "
               "\"segments_after_compaction\": %zu},\n",
               g.num_segments);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"serving_stream\": \"point lookups (Access), %zu "
               "queries per round, %zu rounds\",\n", q, rounds);
  std::fprintf(f, "  \"query_throughput_qps\": {\n");
  std::fprintf(f, "    \"sequence_static_single_thread_loop\": %.0f,\n",
               g.baseline_loop_qps);
  std::fprintf(f, "    \"sequence_static_single_thread_batched\": %.0f,\n",
               g.baseline_batch_qps);
  std::fprintf(f, "    \"engine_4_readers_batched\": %.0f,\n", g.engine_qps);
  std::fprintf(f, "    \"engine_vs_single_thread_loop\": %.2f,\n",
               speedup_vs_loop);
  std::fprintf(f, "    \"engine_vs_single_thread_batched\": %.2f\n",
               g.baseline_batch_qps > 0 ? g.engine_qps / g.baseline_batch_qps
                                        : 0);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"rank_ns_per_query\": {\n");
  std::fprintf(f, "    \"note\": \"a global rank sums one per-shard rank by "
               "construction (~num_shards of per-shard work, partly amortized "
               "by batching); tracked separately from the serving "
               "aggregate\",\n");
  std::fprintf(f, "    \"engine_batched\": %.0f,\n", g.rank_engine_ns);
  std::fprintf(f, "    \"sequence_static_batched\": %.0f\n", g.rank_oracle_ns);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"select_ns_per_query\": {\n");
  std::fprintf(f, "    \"note\": \"cross-shard positional select = lockstep "
               "binary search, O(log n) batched cross-shard ranks\",\n");
  std::fprintf(f, "    \"engine_batched\": %.0f,\n", g.select_engine_ns);
  std::fprintf(f, "    \"sequence_static_batched\": %.0f\n",
               g.select_oracle_ns);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"ingest_strings_per_s\": {\n");
  std::fprintf(f, "    \"memtable_path_encoded\": %.0f,\n",
               g.ingest_memtable_sps);
  std::fprintf(f, "    \"end_to_end_with_freeze\": %.0f,\n", g.ingest_e2e_sps);
  std::fprintf(f, "    \"end_to_end_wal_durable\": %.0f\n", g.ingest_wal_sps);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"gate\": {\n");
  std::fprintf(f, "    \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "    \"engine_identical_to_oracle\": %s,\n",
               g.identical ? "true" : "false");
  std::fprintf(f, "    \"query_speedup_vs_loop_required\": 3.0,\n");
  std::fprintf(f, "    \"ingest_memtable_required\": 10000000,\n");
  std::fprintf(f, "    \"pass\": %s\n", ok ? "true" : "false");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf(
      "BENCH_engine.json: engine %.2fM qps vs loop %.2fM (%.1fx) / batched "
      "%.2fM; rank %.1f/%.1f us, select %.1f/%.1f us; ingest memtable "
      "%.1fM/s, e2e %.1fM/s, wal %.1fM/s; identical=%s, pass=%s\n",
      g.engine_qps / 1e6, g.baseline_loop_qps / 1e6, speedup_vs_loop,
      g.baseline_batch_qps / 1e6, g.rank_engine_ns / 1e3,
      g.rank_oracle_ns / 1e3, g.select_engine_ns / 1e3,
      g.select_oracle_ns / 1e3, g.ingest_memtable_sps / 1e6,
      g.ingest_e2e_sps / 1e6, g.ingest_wal_sps / 1e6,
      g.identical ? "yes" : "no", ok ? "yes" : "no");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return WriteAcceptanceJson() ? 0 : 1;
}
