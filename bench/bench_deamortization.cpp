// De-amortization ablation (Lemma 4.7 vs Lemma 4.8): per-append latency
// *tails* of the eager append-only bitvector (seals a whole 4096-bit chunk
// on the boundary append) against the de-amortized variant (spreads the RRR
// build over subsequent appends via Rrr::Builder).
//
// The claim under test: means are indistinguishable (both O(1) amortized),
// but the eager p99.98+/max is a chunk-compression spike that the
// de-amortized variant removes. Reported as counters (nanoseconds):
// p50 / p99 / p9998 / max over 2^20 appends.
#include <benchmark/benchmark.h>

#include <random>

#include "bitvector/append_only.hpp"
#include "bitvector/append_only_deamortized.hpp"
#include "util/stats.hpp"

namespace {

using namespace wt;

constexpr size_t kAppends = 1 << 20;

template <typename BV>
void MeasureAppendTail(benchmark::State& state) {
  for (auto _ : state) {
    std::mt19937_64 rng(3);
    BV v;
    LatencyRecorder rec;
    rec.Reserve(kAppends);
    for (size_t i = 0; i < kAppends; ++i) {
      const bool b = rng() % 4 == 0;
      const uint64_t t0 = NowNanos();
      v.Append(b);
      rec.Record(NowNanos() - t0);
    }
    benchmark::DoNotOptimize(v.Rank1(v.size()));
    state.counters["p50_ns"] = double(rec.Percentile(0.50));
    state.counters["p99_ns"] = double(rec.Percentile(0.99));
    state.counters["p9998_ns"] = double(rec.Percentile(0.9998));
    state.counters["max_ns"] = double(rec.Max());
    state.counters["mean_ns"] = rec.Mean();
  }
}

void BM_AppendTail_Eager(benchmark::State& state) {
  MeasureAppendTail<AppendOnlyBitVector>(state);
}
BENCHMARK(BM_AppendTail_Eager)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_AppendTail_Deamortized(benchmark::State& state) {
  MeasureAppendTail<DeamortizedAppendOnlyBitVector>(state);
}
BENCHMARK(BM_AppendTail_Deamortized)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Throughput view of the same pair: ns/append over bulk streams, to show
// the de-amortization does not cost mean performance.
template <typename BV>
void MeasureAppendThroughput(benchmark::State& state) {
  std::mt19937_64 rng(7);
  BV v;
  for (auto _ : state) {
    v.Append(rng() % 4 == 0);
  }
  benchmark::DoNotOptimize(v.size());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_AppendThroughput_Eager(benchmark::State& state) {
  MeasureAppendThroughput<AppendOnlyBitVector>(state);
}
BENCHMARK(BM_AppendThroughput_Eager);

void BM_AppendThroughput_Deamortized(benchmark::State& state) {
  MeasureAppendThroughput<DeamortizedAppendOnlyBitVector>(state);
}
BENCHMARK(BM_AppendThroughput_Deamortized);

}  // namespace

BENCHMARK_MAIN();
