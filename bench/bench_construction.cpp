// Construction throughput (Theorems 3.7 / 4.3 / 4.4): bulk static build vs
// streaming appends vs fully-dynamic appends, on the URL-log workload.
//
// Verified shapes:
//   * static build O(total input bits): throughput flat in n;
//   * append-only streaming O(|s| + h_s) per element: flat in n — the
//     paper's "compressing and indexing a sequential log on the fly";
//   * dynamic appends pay the extra log n of the RLE bitvectors.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/codec.hpp"
#include "core/dynamic_wavelet_trie.hpp"
#include "core/wavelet_trie.hpp"
#include "util/workloads.hpp"

namespace {

using namespace wt;

std::vector<BitString> MakeLog(size_t n) {
  UrlLogOptions opt;
  opt.num_domains = 64;
  opt.paths_per_domain = 32;
  opt.seed = 7;
  UrlLogGenerator gen(opt);
  std::vector<BitString> seq;
  seq.reserve(n);
  for (size_t i = 0; i < n; ++i) seq.push_back(ByteCodec::Encode(gen.Next()));
  return seq;
}

void BM_BuildStatic(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto seq = MakeLog(n);
  for (auto _ : state) {
    WaveletTrie trie(seq);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BuildStatic)->DenseRange(12, 18, 2)->Unit(benchmark::kMillisecond);

void BM_BuildAppendOnly(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto seq = MakeLog(n);
  for (auto _ : state) {
    AppendOnlyWaveletTrie trie;
    for (const auto& s : seq) trie.Append(s);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("streaming, flat per-item (Thm 4.3)");
}
BENCHMARK(BM_BuildAppendOnly)->DenseRange(12, 18, 2)->Unit(benchmark::kMillisecond);

void BM_BuildDynamic(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto seq = MakeLog(n);
  for (auto _ : state) {
    DynamicWaveletTrie trie;
    for (const auto& s : seq) trie.Append(s);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("pays the RLE log n (Thm 4.4)");
}
BENCHMARK(BM_BuildDynamic)->DenseRange(12, 16, 2)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
