// Construction throughput (Theorems 3.7 / 4.3 / 4.4): bulk static build vs
// streaming appends vs fully-dynamic appends, on the URL-log workload — plus
// the word-parallel bulk-load paths (AppendBatch / BulkBuild, DESIGN.md #4).
//
// Verified shapes:
//   * static build O(total input bits): throughput flat in n;
//   * append-only streaming O(|s| + h_s) per element: flat in n — the
//     paper's "compressing and indexing a sequential log on the fly";
//   * dynamic appends pay the extra log n of the RLE bitvectors;
//   * AppendBatch amortizes the per-bit bookkeeping over 64-bit words and
//     visits each trie node once per batch: a constant-factor win tracked
//     against the >= 3x acceptance target at 1M strings. The binary exits
//     nonzero if batch and per-string ingestion ever disagree on queries
//     or the batch structure grows larger (speedup itself is reported, not
//     gated, because container timing jitters).
//
// Besides the google-benchmark tables, the binary always writes
// BENCH_construction.json (strings/sec, bits/string, old vs new ingestion,
// speedups) so the perf trajectory is tracked across PRs.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "core/codec.hpp"
#include "core/dynamic_wavelet_trie.hpp"
#include "core/wavelet_trie.hpp"
#include "util/workloads.hpp"

namespace {

using namespace wt;

std::vector<BitString> MakeLog(size_t n) {
  UrlLogOptions opt;
  opt.num_domains = 64;
  opt.paths_per_domain = 32;
  opt.seed = 7;
  UrlLogGenerator gen(opt);
  std::vector<BitString> seq;
  seq.reserve(n);
  for (size_t i = 0; i < n; ++i) seq.push_back(ByteCodec::Encode(gen.Next()));
  return seq;
}

std::vector<BitSpan> Spans(const std::vector<BitString>& seq) {
  std::vector<BitSpan> spans;
  spans.reserve(seq.size());
  for (const auto& s : seq) spans.push_back(s.Span());
  return spans;
}

void BM_BuildStatic(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto seq = MakeLog(n);
  for (auto _ : state) {
    WaveletTrie trie(seq);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BuildStatic)->DenseRange(12, 18, 2)->Unit(benchmark::kMillisecond);

void BM_BulkBuildStatic(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto seq = MakeLog(n);
  for (auto _ : state) {
    WaveletTrie trie = WaveletTrie::BulkBuild(seq);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("word-packed beta emission");
}
BENCHMARK(BM_BulkBuildStatic)->DenseRange(12, 18, 2)->Unit(benchmark::kMillisecond);

void BM_BuildAppendOnly(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto seq = MakeLog(n);
  for (auto _ : state) {
    AppendOnlyWaveletTrie trie;
    for (const auto& s : seq) trie.Append(s);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("streaming, flat per-item (Thm 4.3)");
}
BENCHMARK(BM_BuildAppendOnly)->DenseRange(12, 18, 2)->Unit(benchmark::kMillisecond);

void BM_BuildAppendBatch(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto seq = MakeLog(n);
  const auto spans = Spans(seq);
  for (auto _ : state) {
    AppendOnlyWaveletTrie trie;
    trie.AppendBatch(std::span<const BitSpan>(spans));
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("bulk-load, word-parallel (DESIGN.md #4)");
}
BENCHMARK(BM_BuildAppendBatch)->DenseRange(12, 18, 2)->Unit(benchmark::kMillisecond);

void BM_BuildAppendBatchChunked(benchmark::State& state) {
  // Streaming realism: the batch arrives in fixed-size chunks (e.g. one
  // network buffer at a time) rather than as one giant span.
  const size_t n = size_t(1) << state.range(0);
  const size_t chunk = 4096;
  const auto seq = MakeLog(n);
  const auto spans = Spans(seq);
  for (auto _ : state) {
    AppendOnlyWaveletTrie trie;
    for (size_t i = 0; i < spans.size(); i += chunk) {
      const size_t len = std::min(chunk, spans.size() - i);
      trie.AppendBatch(std::span<const BitSpan>(spans.data() + i, len));
    }
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("bulk-load in 4096-string chunks");
}
BENCHMARK(BM_BuildAppendBatchChunked)
    ->DenseRange(12, 18, 2)
    ->Unit(benchmark::kMillisecond);

void BM_BuildDynamic(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto seq = MakeLog(n);
  for (auto _ : state) {
    DynamicWaveletTrie trie;
    for (const auto& s : seq) trie.Append(s);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("pays the RLE log n (Thm 4.4)");
}
BENCHMARK(BM_BuildDynamic)->DenseRange(12, 16, 2)->Unit(benchmark::kMillisecond);

void BM_BuildDynamicBatch(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto seq = MakeLog(n);
  const auto spans = Spans(seq);
  for (auto _ : state) {
    DynamicWaveletTrie trie;
    trie.AppendBatch(std::span<const BitSpan>(spans));
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("bulk-load, run-coalesced RLE appends");
}
BENCHMARK(BM_BuildDynamicBatch)->DenseRange(12, 16, 2)->Unit(benchmark::kMillisecond);

// ----------------------------------------------------------------- the gate
//
// Single-shot 1M-string comparison written to BENCH_construction.json —
// the acceptance numbers the PR trajectory tracks.

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

bool WriteAcceptanceJson() {
  // WT_BENCH_SMOKE shrinks the acceptance run so CI can exercise the whole
  // path (build + ingest + identical-result checks) in seconds; the
  // tracked perf numbers come from full runs without it.
  const bool smoke = std::getenv("WT_BENCH_SMOKE") != nullptr;
  const size_t n = smoke ? 50'000 : 1'000'000;
  const auto seq = MakeLog(n);
  size_t input_bits = 0;
  for (const auto& s : seq) input_bits += s.size();
  const auto spans = Spans(seq);
  using clock = std::chrono::steady_clock;

  const auto t0 = clock::now();
  AppendOnlyWaveletTrie incremental;
  for (const auto& s : seq) incremental.Append(s);
  const auto t1 = clock::now();
  AppendOnlyWaveletTrie batched;
  batched.AppendBatch(std::span<const BitSpan>(spans));
  const auto t2 = clock::now();
  WaveletTrie static_ref(seq);
  const auto t3 = clock::now();
  WaveletTrie static_bulk = WaveletTrie::BulkBuild(seq);
  const auto t4 = clock::now();

  const double append_s = Seconds(t0, t1);
  const double batch_s = Seconds(t1, t2);
  const double static_s = Seconds(t2, t3);
  const double bulk_s = Seconds(t3, t4);

  // Identical-result sanity before reporting any speedup.
  bool ok = incremental.size() == batched.size() &&
            incremental.NumDistinct() == batched.NumDistinct() &&
            batched.SizeInBits() <= incremental.SizeInBits() &&
            static_bulk.size() == static_ref.size();
  for (size_t i = 0; ok && i < n; i += 10007) {
    ok = incremental.Access(i) == batched.Access(i) &&
         static_bulk.Access(i) == static_ref.Access(i);
  }

  FILE* f = std::fopen("BENCH_construction.json", "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"workload\": \"url_log_zipf\",\n");
  std::fprintf(f, "  \"num_strings\": %zu,\n", n);
  std::fprintf(f, "  \"bits_per_string\": %.2f,\n",
               static_cast<double>(input_bits) / static_cast<double>(n));
  std::fprintf(f, "  \"results_identical\": %s,\n", ok ? "true" : "false");
  std::fprintf(f, "  \"append_only\": {\n");
  std::fprintf(f, "    \"per_string_append_strings_per_sec\": %.0f,\n",
               static_cast<double>(n) / append_s);
  std::fprintf(f, "    \"append_batch_strings_per_sec\": %.0f,\n",
               static_cast<double>(n) / batch_s);
  std::fprintf(f, "    \"speedup\": %.2f,\n", append_s / batch_s);
  std::fprintf(f, "    \"size_in_bits_per_string_append\": %.2f,\n",
               static_cast<double>(incremental.SizeInBits()) /
                   static_cast<double>(n));
  std::fprintf(f, "    \"size_in_bits_per_string_batch\": %.2f\n",
               static_cast<double>(batched.SizeInBits()) /
                   static_cast<double>(n));
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"static\": {\n");
  std::fprintf(f, "    \"constructor_strings_per_sec\": %.0f,\n",
               static_cast<double>(n) / static_s);
  std::fprintf(f, "    \"bulk_build_strings_per_sec\": %.0f,\n",
               static_cast<double>(n) / bulk_s);
  std::fprintf(f, "    \"speedup\": %.2f\n", static_s / bulk_s);
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf(
      "BENCH_construction.json: append-only %.2fx (%.0f -> %.0f strings/s), "
      "static %.2fx, identical=%s\n",
      append_s / batch_s, static_cast<double>(n) / append_s,
      static_cast<double>(n) / batch_s, static_s / bulk_s, ok ? "yes" : "no");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return WriteAcceptanceJson() ? 0 : 1;
}
