// Serving-layer throughput and overload behaviour (DESIGN.md #11): the
// acceptance numbers for the epoll front end on the 1M Zipf-URL store,
// measured while a background writer keeps ingesting (the serving path
// must coexist with epoch publishes, not assume a quiescent store).
//
//   * coalescing — C pipelined clients issue single-position Access
//     requests with YCSB-style Zipf(0.99) key popularity; the coalesced
//     arm (max_dispatch_batch=1024) groups every queued request behind
//     ONE snapshot pin + AccessBatch and dedups in-batch repeats of hot
//     keys (singleflight per dispatch), the baseline arm
//     (max_dispatch_batch=1) degenerates to one-snapshot-one-query per
//     dispatch. Gate: coalesced goodput >= 3x baseline AND coalesced
//     p99 latency < 1 ms.
//   * overload — the same coalesced server offered ~2x the saturation
//     load (2x clients, deeper pipelines) against a bounded admission
//     queue. Gates: goodput holds >= 80% of the peak arm, the excess is
//     visibly shed as kOverloaded (no silent drops: the admission
//     accounting identity admitted == completed + expired must balance),
//     and RSS growth across the overload window stays bounded — queue
//     and write-buffer caps, not client behaviour, bound memory.
//
//   * observability — each arm runs against its own metrics registry and
//     reports the request-lifecycle stage histograms (admit wait,
//     coalesce, engine batch, reply flush, batch size) from the server's
//     own tracing, not client-side guesses. The same source compiled with
//     WT_OBS_OFF (target bench_serving_obs_off) writes
//     BENCH_serving_obs_off.json; when that baseline is present, the
//     instrumented build gates coalesced goodput >= 98% of it — the
//     DESIGN.md #12 overhead budget, measured not asserted.
//
// Writes BENCH_serving.json (uploaded by CI via the BENCH_*.json glob).
// WT_BENCH_SMOKE shrinks the run and skips the gates, same policy as
// BENCH_engine.json: smoke exists to exercise the path in CI, where the
// scale is too small for the amortizations the gates assume.
#include <cstdio>
#include <cstdlib>

#if !defined(__linux__)
int main() {
  std::printf("bench_serving: epoll serving layer is Linux-only, skipping\n");
  return 0;
}
#else

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/workloads.hpp"
#include "util/zipf.hpp"

namespace {

using StrEngine = wtrie::Engine<wt::ByteCodec>;
using StrServer = wt::net::Server<wt::ByteCodec>;
using clock_type = std::chrono::steady_clock;

double Seconds(clock_type::time_point a, clock_type::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::vector<std::string> MakeLog(size_t n) {
  wt::UrlLogOptions opt;
  opt.num_domains = 64;
  opt.paths_per_domain = 32;
  opt.seed = 7;
  wt::UrlLogGenerator gen(opt);
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(gen.Next());
  return out;
}

long RssKb() {
  std::ifstream in("/proc/self/status");
  std::string key;
  while (in >> key) {
    if (key == "VmRSS:") {
      long kb = 0;
      in >> kb;
      return kb;
    }
    in.ignore(4096, '\n');
  }
  return 0;
}

// One pipelined client: keeps `window` single-position Access requests in
// flight for `run_s` seconds, recording per-request latency for replies
// that answered kOk and counting kOverloaded sheds separately.
struct ClientTally {
  std::vector<double> lat_us;  // kOk replies only
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t other = 0;  // transport errors, kShuttingDown, ...
};

void RunClient(uint16_t port, size_t store_n, size_t window, double run_s,
               uint64_t seed, ClientTally* out) {
  auto fd = wt::net::TcpConnect(port);
  if (!fd.ok()) return;
  std::mt19937_64 rng(seed);
  const auto t_end = clock_type::now() + std::chrono::duration<double>(run_s);
  std::string rx;
  size_t rx_off = 0;  // parse cursor; compacted lazily, not per frame
  std::vector<char> chunk(64 * 1024);
  // Burst-pipelined closed loop: one write() carries a whole window of
  // single-position Access frames, then replies are parsed out of bulk
  // reads. Bursts are pre-encoded (a rotating set, so the position stream
  // is not one fixed batch): the client costs a handful of syscalls per
  // window instead of three-plus-allocations per request, so the measured
  // ratio reflects the SERVER's dispatch policy, not client overhead both
  // arms share equally. Positions follow YCSB-style Zipf(0.99) popularity
  // — serving traffic is skewed, which is exactly what the server's
  // in-batch access dedup (singleflight per dispatch) exists for.
  wt::ZipfDistribution zipf(store_n, 0.99);
  constexpr size_t kBurstVariants = 4;
  std::vector<std::string> bursts(kBurstVariants);
  for (std::string& burst : bursts) {
    for (size_t i = 0; i < window; ++i) {
      burst += wt::net::EncodeFrame(
          static_cast<uint8_t>(wt::net::MsgType::kAccess), /*request_id=*/i,
          /*deadline_ms=*/0, wt::net::Client::AccessPayload({zipf(rng)}));
    }
  }
  // AIMD congestion window over the burst size: halve on any shed, grow
  // additively on clean rounds. Every frame in a burst encodes one u64
  // position, so all frames are the same length and a sub-window burst is
  // a prefix of the precomputed one.
  const size_t frame_sz = bursts[0].size() / window;
  const size_t min_window = std::max<size_t>(1, window / 4);
  size_t cur_window = window;
  for (size_t round = 0; clock_type::now() < t_end; ++round) {
    const std::string& burst = bursts[round % kBurstVariants];
    const auto t_burst = clock_type::now();
    if (!wt::net::WriteAll(fd->get(), burst.data(), cur_window * frame_sz)
             .ok()) {
      return;
    }
    uint32_t backoff_ms = 0;  // max retry-after hint seen this burst
    uint64_t ok_this_round = 0;
    // Latency = reply arrival minus burst write: the queueing the request
    // experienced behind its own window is part of what we measure.
    wt::net::Frame f;  // reused: payload capacity survives across replies
    for (size_t got = 0; got < cur_window;) {
      size_t consumed = 0;
      const auto parse =
          wt::net::TryParseFrame(rx.data() + rx_off, rx.size() - rx_off,
                                 wt::net::kDefaultMaxResponsePayload, &f,
                                 &consumed);
      if (parse == wt::net::FrameParse::kFrame) {
        rx_off += consumed;
        ++got;
        const auto now = clock_type::now();
        wt::net::WireStatus st;
        wt::net::PayloadReader r(nullptr, 0);
        if (!wt::net::Client::DecodeStatus(f, &st, &r)) return;
        if (st == wt::net::WireStatus::kOk) {
          out->ok++;
          ok_this_round++;
          out->lat_us.push_back(Seconds(t_burst, now) * 1e6);
        } else if (st == wt::net::WireStatus::kOverloaded) {
          out->shed++;
          uint32_t hint_ms = 0;
          if (r.Pod(&hint_ms)) backoff_ms = std::max(backoff_ms, hint_ms);
        } else {
          out->other++;
        }
        continue;
      }
      if (parse != wt::net::FrameParse::kNeedMore) return;
      if (rx_off > 0) {
        rx.erase(0, rx_off);  // one compaction per refill, not per frame
        rx_off = 0;
      }
      auto io = wt::net::ReadSome(fd->get(), chunk.data(), chunk.size());
      if (!io.ok() || io->eof) return;
      rx.append(chunk.data(), io->n);
    }
    // A well-behaved client shrinks its window like TCP under loss:
    // retrying the full burst against a queue that just refused it only
    // burns server cycles on more shed replies. The retry-after hint is
    // honored as a hard pause only when the round was fully locked out
    // (nothing admitted) — on a partial shed the halved window already
    // spaces this client out, and sleeping on top of that just idles
    // capacity the server is offering. Clean rounds earn the window back
    // additively, so offered load converges to capacity.
    if (backoff_ms > 0) {
      cur_window = std::max(min_window, cur_window / 2);
      if (ok_this_round == 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(std::min(backoff_ms, 20u)));
      }
    } else {
      // +1 per clean round: rounds are ~100us here, so steeper growth
      // re-overshoots the queue every few ms and the shed tax dominates.
      cur_window = std::min(window, cur_window + 1);
    }
  }
}

struct ArmResult {
  double goodput_qps = 0;
  double p50_us = 0;
  double p99_us = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t other = 0;
  StrServer::Stats stats;
  wt::obs::MetricsSnapshot metrics;  // the arm's own registry, post-run
  bool accounting_ok = false;
};

// Starts a server over `engine` with the given dispatch batch, runs
// `clients` pipelined workers for `run_s`, stops the server, and checks
// the admitted-work accounting identity (nothing admitted may vanish).
bool RunArm(StrEngine* engine, size_t store_n, size_t dispatch_batch,
            size_t clients, size_t window, double run_s, size_t max_requests,
            ArmResult* out) {
  StrServer::Options opt;
  opt.max_dispatch_batch = dispatch_batch;
  // A private registry per arm: stage histograms measure THIS arm, not
  // the cumulative run (the engine keeps its own registry untouched).
  auto registry = std::make_shared<wt::obs::MetricsRegistry>();
  opt.metrics = registry;
  // The one-per-dispatch baseline is the full coalescing ablation: it
  // dispatches each request to the engine individually, so it also runs
  // without the per-epoch access memo — the memo IS coalescing (requests
  // for the same key under the same pinned snapshot share one engine
  // walk, just across dispatches instead of within one).
  if (dispatch_batch == 1) opt.access_cache_entries = 0;
  opt.admission.max_requests = max_requests;
  auto server = StrServer::Start(engine, opt);
  if (!server.ok()) return false;
  const uint16_t port = (*server)->port();

  std::vector<ClientTally> tallies(clients);
  std::vector<std::thread> workers;
  const auto t0 = clock_type::now();
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back(RunClient, port, store_n, window, run_s,
                         /*seed=*/1000 + c, &tallies[c]);
  }
  for (auto& w : workers) w.join();
  const double elapsed = Seconds(t0, clock_type::now());
  if (!(*server)->Stop().ok()) return false;

  std::vector<double> lat;
  for (const ClientTally& t : tallies) {
    out->ok += t.ok;
    out->shed += t.shed;
    out->other += t.other;
    lat.insert(lat.end(), t.lat_us.begin(), t.lat_us.end());
  }
  out->goodput_qps = elapsed > 0 ? double(out->ok) / elapsed : 0;
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    out->p50_us = lat[lat.size() / 2];
    out->p99_us = lat[lat.size() * 99 / 100];
  }
  out->stats = (*server)->stats();
  out->metrics = registry->Snapshot();
  const auto& a = out->stats.admission;
  out->accounting_ok = a.admitted == a.completed + a.expired_at_dequeue +
                                        a.expired_before_reply;
  return out->accounting_ok;
}

// Coalesced-arm goodput from a prior WT_OBS_OFF run's JSON, 0 when the
// baseline has not been produced (the overhead gate then self-skips).
double ReadObsOffBaselineQps() {
  std::ifstream in("BENCH_serving_obs_off.json");
  if (!in) return 0;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const size_t arm = text.find("\"coalesced_batch_1024\"");
  if (arm == std::string::npos) return 0;
  const size_t key = text.find("\"goodput_qps\": ", arm);
  if (key == std::string::npos) return 0;
  return std::atof(text.c_str() + key + 15);
}

bool RunAll() {
  const bool smoke = std::getenv("WT_BENCH_SMOKE") != nullptr;
  const size_t n = smoke ? 50'000 : 1'000'000;
  const double run_s = smoke ? 0.5 : 3.0;
  const size_t clients = smoke ? 2 : 4;
  const size_t window = smoke ? 16 : 128;

  // The served store, plus a writer that keeps appending (and thereby
  // publishing epochs) for the whole measurement: coalescing batches are
  // formed per snapshot pin, so publishes mid-run are the realistic case.
  const auto values = MakeLog(n);
  // A real on-disk store, not the in-memory engine: the trace gate below
  // requires WAL-fsync and pager spans, which only exist when freezes
  // persist segments and queries map them back. Both obs arms get the
  // same dir shape, so the overhead ratio still compares like with like.
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("wt_bench_serving_" + std::to_string(static_cast<long>(getpid())));
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  StrEngine::Options eopt;
  eopt.num_shards = 4;
  eopt.dir = dir.string();
  auto engine = StrEngine::Open(eopt).value();
  if (!engine->AppendBatch(values).ok()) return false;
  if (!engine->Flush().ok()) return false;

  std::atomic<bool> stop_ingest{false};
  std::thread ingester([&] {
    wt::UrlLogOptions opt;
    opt.seed = 99;
    wt::UrlLogGenerator gen(opt);
    while (!stop_ingest.load(std::memory_order_acquire)) {
      std::vector<std::string> batch;
      for (int i = 0; i < 64; ++i) batch.push_back(gen.Next());
      if (!engine->AppendBatch(batch).ok()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  // Arm 1: coalesced (the production shape). Arm 2: one-per-dispatch.
  // Full runs take best-of-N per arm (applied symmetrically): everything
  // here shares one core with the clients, so a single run's goodput moves
  // by double-digit percents on scheduler luck alone. Three reps because
  // the obs-overhead gate compares this binary's max against the obs-off
  // twin's max from a separate process — both maxima need to sit near the
  // noise-free ceiling for their ratio to read overhead, not luck.
  const int reps = smoke ? 1 : 3;
  auto best_arm = [&](size_t dispatch_batch, size_t n_clients, size_t win,
                      size_t max_requests, ArmResult* out) {
    ArmResult best;
    bool any = false;
    for (int rep = 0; rep < reps; ++rep) {
      ArmResult r;
      if (!RunArm(engine.get(), n, dispatch_batch, n_clients, win, run_s,
                  max_requests, &r)) {
        return false;
      }
      if (!any || r.goodput_qps > best.goodput_qps) best = r;
      any = true;
    }
    *out = best;
    return true;
  };
  ArmResult coalesced, baseline;
  bool ok = best_arm(/*dispatch_batch=*/1024, clients, window,
                     /*max_requests=*/1024, &coalesced);
  ok = ok && best_arm(/*dispatch_batch=*/1, clients, window,
                      /*max_requests=*/1024, &baseline);

  // Arm 3: ~4x the peak-arm outstanding requests (2x clients, 2x windows)
  // against the same bounded queue, so the overload is visible as
  // shedding, not buffering. The queue bound is also the goodput ceiling
  // once well-behaved clients converge (Little's law: admitted
  // outstanding <= queue), so shrinking it below the peak arm's would cap
  // retained goodput by the bench's own arm geometry, not by the server.
  const long rss_before_kb = RssKb();
  ArmResult overload;
  ok = ok && RunArm(engine.get(), n, /*dispatch_batch=*/1024, clients * 2,
                    window * 2, run_s, /*max_requests=*/1024, &overload);
  const long rss_after_kb = RssKb();

  stop_ingest.store(true, std::memory_order_release);
  ingester.join();

  // Trace gate (DESIGN.md #13): the run above — freezes and compactions
  // from the concurrent ingester, WAL and pager traffic from the on-disk
  // store, dispatch batches from the serving path — must leave a
  // publishable span timeline. Serialize the process tracer to
  // BENCH_serving_trace.bin (load it in chrome://tracing via wt_trace),
  // then require the validator clean AND every span family present.
  bool trace_ok = true;
  size_t trace_events = 0;
  uint64_t trace_dropped = 0;
  std::string trace_why;
  if (wt::obs::kObsEnabled) {
    wt::obs::Tracer& tracer = wt::obs::Tracer::Get();
    tracer.FlushThisThread();
    const wt::obs::TraceSnapshot snap = tracer.Snapshot();
    trace_events = snap.events.size();
    trace_dropped = snap.dropped;
    const std::string bytes = wt::obs::SerializeTraceSnapshot(snap);
    if (FILE* tf = std::fopen("BENCH_serving_trace.bin", "wb")) {
      std::fwrite(bytes.data(), 1, bytes.size(), tf);
      std::fclose(tf);
    }
    trace_ok = wt::obs::ValidateTraceSnapshot(snap, &trace_why);
    const wt::obs::TraceName required[] = {
        wt::obs::TraceName::kFreeze, wt::obs::TraceName::kCompaction,
        wt::obs::TraceName::kWalFsync, wt::obs::TraceName::kPagerMap,
        wt::obs::TraceName::kEngineBatch};
    for (const wt::obs::TraceName need : required) {
      bool found = false;
      for (const auto& e : snap.events) {
        if (e.name == static_cast<uint8_t>(need)) {
          found = true;
          break;
        }
      }
      if (!found) {
        trace_ok = false;
        trace_why += std::string(trace_why.empty() ? "" : "; ") + "missing " +
                     wt::obs::TraceNameString(need) + " spans";
      }
    }
  }

  const double speedup = baseline.goodput_qps > 0
                             ? coalesced.goodput_qps / baseline.goodput_qps
                             : 0;
  const double retained =
      coalesced.goodput_qps > 0 ? overload.goodput_qps / coalesced.goodput_qps
                                : 0;
  const long rss_growth_kb = rss_after_kb - rss_before_kb;
  // Overhead gate: only the instrumented build checks, and only against a
  // baseline the obs-off twin actually produced (absent -> self-skip, so
  // the bench stays runnable standalone).
  const double obs_baseline_qps =
      wt::obs::kObsEnabled ? ReadObsOffBaselineQps() : 0;
  const double obs_ratio =
      obs_baseline_qps > 0 ? coalesced.goodput_qps / obs_baseline_qps : 0;
  bool pass = ok;
  if (!smoke) {
    pass = pass && speedup >= 3.0 && coalesced.p99_us < 1000.0 &&
           retained >= 0.8 && overload.shed > 0 &&
           rss_growth_kb < 256 * 1024;
    if (obs_baseline_qps > 0) pass = pass && obs_ratio >= 0.98;
    if (wt::obs::kObsEnabled) pass = pass && trace_ok;
  }

  FILE* f = std::fopen(wt::obs::kObsEnabled ? "BENCH_serving.json"
                                            : "BENCH_serving_obs_off.json",
                       "w");
  if (f == nullptr) return false;
  auto arm = [&](const char* name, const ArmResult& a, bool last) {
    std::fprintf(f, "  \"%s\": {\n", name);
    std::fprintf(f, "    \"goodput_qps\": %.0f,\n", a.goodput_qps);
    std::fprintf(f, "    \"p50_us\": %.1f, \"p99_us\": %.1f,\n", a.p50_us,
                 a.p99_us);
    std::fprintf(f,
                 "    \"replies\": {\"ok\": %llu, \"overloaded\": %llu, "
                 "\"other\": %llu},\n",
                 (unsigned long long)a.ok, (unsigned long long)a.shed,
                 (unsigned long long)a.other);
    const auto& s = a.stats.admission;
    std::fprintf(f,
                 "    \"admission\": {\"offered\": %llu, \"admitted\": %llu, "
                 "\"shed\": %llu, \"completed\": %llu, \"expired\": %llu},\n",
                 (unsigned long long)s.offered, (unsigned long long)s.admitted,
                 (unsigned long long)s.shed, (unsigned long long)s.completed,
                 (unsigned long long)(s.expired_at_dequeue +
                                      s.expired_before_reply));
    std::fprintf(f, "    \"coalesced_dup_hits\": %llu,\n",
                 (unsigned long long)a.stats.coalesced_dup_hits);
    std::fprintf(f, "    \"access_cache_hits\": %llu,\n",
                 (unsigned long long)a.stats.access_cache_hits);
    if (wt::obs::kObsEnabled) {
      // The server's own lifecycle tracing for this arm, per stage.
      std::fprintf(f, "    \"stages\": {\n");
      const struct {
        const char* label;
        const char* metric;
      } kStages[] = {
          {"admit_wait_us", "wt_serving_admit_wait_us"},
          {"coalesce_us", "wt_serving_coalesce_us"},
          {"engine_batch_us", "wt_serving_engine_batch_us"},
          {"reply_flush_us", "wt_serving_reply_flush_us"},
          {"batch_size", "wt_serving_batch_size"},
      };
      constexpr size_t kNumStages = sizeof(kStages) / sizeof(kStages[0]);
      for (size_t i = 0; i < kNumStages; ++i) {
        const wt::obs::HistogramSnapshot* h =
            a.metrics.FindHistogram(kStages[i].metric);
        const wt::obs::HistogramSnapshot empty;
        if (h == nullptr) h = &empty;
        std::fprintf(f,
                     "      \"%s\": {\"p50\": %llu, \"p99\": %llu, "
                     "\"max\": %llu, \"count\": %llu}%s\n",
                     kStages[i].label, (unsigned long long)h->Quantile(0.5),
                     (unsigned long long)h->Quantile(0.99),
                     (unsigned long long)h->max, (unsigned long long)h->count,
                     i + 1 < kNumStages ? "," : "");
      }
      std::fprintf(f, "    },\n");
    }
    std::fprintf(f, "    \"admitted_equals_completed_plus_expired\": %s\n",
                 a.accounting_ok ? "true" : "false");
    std::fprintf(f, "  }%s\n", last ? "" : ",");
  };
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"workload\": \"url_log_zipf\", \"num_strings\": %zu,\n",
               n);
  std::fprintf(f,
               "  \"load\": {\"clients\": %zu, \"pipeline_window\": %zu, "
               "\"run_s\": %.1f, \"best_of\": %d, "
               "\"concurrent_ingest\": true},\n",
               clients, window, run_s, reps);
  arm("coalesced_batch_1024", coalesced, false);
  arm("one_per_dispatch", baseline, false);
  arm("overload_2x_bounded_queue_1024", overload, false);
  std::fprintf(f, "  \"rss_kb\": {\"before_overload\": %ld, "
               "\"after_overload\": %ld},\n", rss_before_kb, rss_after_kb);
  std::fprintf(f, "  \"gate\": {\n");
  std::fprintf(f, "    \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "    \"coalesced_vs_one_per_dispatch\": %.2f,\n", speedup);
  std::fprintf(f, "    \"coalesced_speedup_required\": 3.0,\n");
  std::fprintf(f, "    \"coalesced_p99_us_required\": 1000,\n");
  std::fprintf(f, "    \"overload_goodput_retained\": %.2f,\n", retained);
  std::fprintf(f, "    \"overload_retained_required\": 0.8,\n");
  std::fprintf(f, "    \"obs_enabled\": %s,\n",
               wt::obs::kObsEnabled ? "true" : "false");
  std::fprintf(f, "    \"obs_off_baseline_qps\": %.0f,\n", obs_baseline_qps);
  std::fprintf(f, "    \"obs_overhead_ratio\": %.3f,\n", obs_ratio);
  std::fprintf(f, "    \"obs_overhead_required\": 0.98,\n");
  if (wt::obs::kObsEnabled) {
    std::fprintf(f,
                 "    \"trace\": {\"events\": %zu, \"dropped\": %llu, "
                 "\"valid\": %s},\n",
                 trace_events, (unsigned long long)trace_dropped,
                 trace_ok ? "true" : "false");
  }
  std::fprintf(f, "    \"pass\": %s\n", pass ? "true" : "false");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf(
      "%s: coalesced %.0f qps (p99 %.0f us) vs one-per "
      "%.0f qps (%.1fx); overload %.0f qps (%.0f%% retained, %llu shed, "
      "rss +%ld KB); accounting %s; obs ratio %.3f (baseline %.0f); "
      "trace %zu events (%llu dropped) %s%s%s; pass=%s\n",
      wt::obs::kObsEnabled ? "BENCH_serving.json"
                           : "BENCH_serving_obs_off.json",
      coalesced.goodput_qps, coalesced.p99_us, baseline.goodput_qps, speedup,
      overload.goodput_qps, retained * 100,
      (unsigned long long)overload.shed, rss_growth_kb,
      ok ? "balanced" : "VIOLATED", obs_ratio, obs_baseline_qps, trace_events,
      (unsigned long long)trace_dropped, trace_ok ? "valid" : "INVALID: ",
      trace_ok ? "" : trace_why.c_str(), wt::obs::kObsEnabled ? "" : " (off)",
      pass ? "yes" : "no");
  engine.reset();
  fs::remove_all(dir, ec);
  return pass;
}

}  // namespace

int main() { return RunAll() ? 0 : 1; }

#endif  // __linux__
