// Related-work benchmark: the Wavelet Trie against all three alternatives
// the paper's Related Work section describes, on the same URL-log workload.
//
//   (1) LexMappedSequence — lexicographic dictionary + balanced Wavelet
//       Tree; RankPrefix via RangeCount2d [17], SelectPrefix only by binary
//       search, alphabet frozen (append of an unseen value = full rebuild).
//   (2) TextCollection — concatenation + FM-index (Dynamic Text Collection
//       [18]); Rank/Select pay O(occ) Locates.
//   (3) BTreeIndexedSequence — (s_i, i) keys in a B+-tree plus a plain copy
//       of the sequence; no compression, Rank by range scan.
//
// Counters: bits_per_string reports each structure's space on the shared
// input, so one run reproduces both the time and the space comparison.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/btree_sequence.hpp"
#include "core/lex_sequence.hpp"
#include "core/string_sequence.hpp"
#include "core/wavelet_trie.hpp"
#include "text/text_collection.hpp"
#include "util/workloads.hpp"

namespace {

using namespace wt;

constexpr size_t kLogSize = 1 << 14;

const std::vector<std::string>& Log() {
  static const std::vector<std::string> log = [] {
    UrlLogGenerator gen({.num_domains = 30, .paths_per_domain = 20, .seed = 5});
    return gen.Take(kLogSize);
  }();
  return log;
}

const StringSequence<WaveletTrie>& Trie() {
  static const StringSequence<WaveletTrie> t{Log()};
  return t;
}
const LexMappedSequence& Lex() {
  static const LexMappedSequence l{Log()};
  return l;
}
const TextCollection& Text() {
  static const TextCollection t{Log()};
  return t;
}
const BTreeIndexedSequence& BTree() {
  static const BTreeIndexedSequence b{Log()};
  return b;
}

const std::string& Probe() { return Log()[kLogSize / 3]; }
const std::string kPrefix = "www.site1.com";

template <typename F>
void RunOp(benchmark::State& state, size_t bits, F&& op) {
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(op(i));
    i = (i + 7919) % kLogSize;
  }
  state.counters["bits_per_string"] =
      static_cast<double>(bits) / static_cast<double>(kLogSize);
}

// ------------------------------------------------------------------- Access

void BM_Access_WaveletTrie(benchmark::State& state) {
  RunOp(state, Trie().SizeInBits(), [&](size_t i) { return Trie().Access(i); });
}
BENCHMARK(BM_Access_WaveletTrie);

void BM_Access_LexMapped(benchmark::State& state) {
  RunOp(state, Lex().SizeInBits(), [&](size_t i) { return Lex().Access(i); });
}
BENCHMARK(BM_Access_LexMapped);

void BM_Access_TextCollection(benchmark::State& state) {
  RunOp(state, Text().SizeInBits(), [&](size_t i) { return Text().Access(i); });
}
BENCHMARK(BM_Access_TextCollection);

void BM_Access_BTree(benchmark::State& state) {
  RunOp(state, BTree().SizeInBits(),
        [&](size_t i) { return BTree().Access(i); });
}
BENCHMARK(BM_Access_BTree);

// --------------------------------------------------------------------- Rank

void BM_Rank_WaveletTrie(benchmark::State& state) {
  RunOp(state, Trie().SizeInBits(),
        [&](size_t i) { return Trie().Rank(Probe(), i); });
}
BENCHMARK(BM_Rank_WaveletTrie);

void BM_Rank_LexMapped(benchmark::State& state) {
  RunOp(state, Lex().SizeInBits(),
        [&](size_t i) { return Lex().Rank(Probe(), i); });
}
BENCHMARK(BM_Rank_LexMapped);

void BM_Rank_TextCollection(benchmark::State& state) {
  // O(occ) locates per call: expect orders of magnitude slower.
  RunOp(state, Text().SizeInBits(),
        [&](size_t i) { return Text().Rank(Probe(), i); });
}
BENCHMARK(BM_Rank_TextCollection)->Unit(benchmark::kMicrosecond);

void BM_Rank_BTree(benchmark::State& state) {
  // O(log n + occ) leaf scan.
  RunOp(state, BTree().SizeInBits(),
        [&](size_t i) { return BTree().Rank(Probe(), i); });
}
BENCHMARK(BM_Rank_BTree)->Unit(benchmark::kMicrosecond);

// --------------------------------------------------------------- RankPrefix

void BM_RankPrefix_WaveletTrie(benchmark::State& state) {
  RunOp(state, Trie().SizeInBits(),
        [&](size_t i) { return Trie().RankPrefix(kPrefix, i); });
}
BENCHMARK(BM_RankPrefix_WaveletTrie);

void BM_RankPrefix_LexMapped(benchmark::State& state) {
  // The efficient reduction: RangeCount2d on the id interval.
  RunOp(state, Lex().SizeInBits(),
        [&](size_t i) { return Lex().RankPrefix(kPrefix, i); });
}
BENCHMARK(BM_RankPrefix_LexMapped);

void BM_RankPrefix_TextCollection(benchmark::State& state) {
  RunOp(state, Text().SizeInBits(),
        [&](size_t i) { return Text().RankPrefix(kPrefix, i); });
}
BENCHMARK(BM_RankPrefix_TextCollection)->Unit(benchmark::kMicrosecond);

// ------------------------------------------------------------- SelectPrefix

void BM_SelectPrefix_WaveletTrie(benchmark::State& state) {
  const size_t total = Trie().CountPrefix(kPrefix);
  size_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Trie().SelectPrefix(kPrefix, k));
    k = (k + 13) % total;
  }
}
BENCHMARK(BM_SelectPrefix_WaveletTrie);

void BM_SelectPrefix_LexMapped(benchmark::State& state) {
  // No direct algorithm (paper): binary search over RangeCount2d.
  const size_t total = Lex().RankPrefix(kPrefix, kLogSize);
  size_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Lex().SelectPrefix(kPrefix, k));
    k = (k + 13) % total;
  }
}
BENCHMARK(BM_SelectPrefix_LexMapped);

// --------------------------------------- dynamic alphabet: append new value

void BM_AppendUnseen_AppendOnlyTrie(benchmark::State& state) {
  // O(|s| + h_s): the paper's headline dynamic-alphabet result.
  StringSequence<AppendOnlyWaveletTrie> seq;
  for (const auto& s : Log()) seq.Append(s);
  size_t serial = 0;
  for (auto _ : state) {
    seq.Append("zz.new-domain" + std::to_string(serial++) + ".org/x");
  }
}
BENCHMARK(BM_AppendUnseen_AppendOnlyTrie);

void BM_AppendUnseen_LexMappedRebuild(benchmark::State& state) {
  // Issue (a): frozen alphabet, full rebuild per unseen value.
  LexMappedSequence lex(Log());
  size_t serial = 0;
  for (auto _ : state) {
    lex.AppendWithRebuild("zz.new-domain" + std::to_string(serial++) + ".org/x");
  }
}
BENCHMARK(BM_AppendUnseen_LexMappedRebuild)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

void BM_AppendUnseen_BTree(benchmark::State& state) {
  // Uncompressed index: fast appends, but several times the space.
  BTreeIndexedSequence bts(Log());
  size_t serial = 0;
  for (auto _ : state) {
    bts.Append("zz.new-domain" + std::to_string(serial++) + ".org/x");
  }
}
BENCHMARK(BM_AppendUnseen_BTree);

}  // namespace

BENCHMARK_MAIN();
