// Query-path throughput (DESIGN.md #6): single-query Access/Rank/Select
// latency on the static wavelet trie — the paper's headline O(|s| + h_s)
// operations (Theorem 3.7) — and the batched AccessBatch/RankBatch/
// SelectBatch variants that amortize one node-grouped traversal per batch.
//
// Verified shapes:
//   * single queries: flat node headers + fused RRR rank-and-get make each
//     level one header load and one directory walk (no EF selects, no shape
//     excess search, no paired ranks);
//   * batches: each touched trie node is located once per batch and its
//     beta positions are walked monotonically, so throughput scales with
//     nodes-touched, not queries x height.
//
// Besides the google-benchmark tables, the binary always writes
// BENCH_query.json (ns/query single vs batched, batch-vs-loop speedups,
// size accounting against the seed baseline) so the perf trajectory is
// tracked across PRs. The binary exits nonzero if batched and per-query
// results ever disagree, or if the query fast path costs more than 5% extra
// space on the 1M-string acceptance workload (speedups themselves are
// reported, not gated, because container timing jitters).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "core/codec.hpp"
#include "core/wavelet_trie.hpp"
#include "util/workloads.hpp"

namespace {

using namespace wt;

// Seed-commit baseline, measured on the same container with the same
// workload (url_log_zipf, 1M strings, 64 domains x 32 paths, seed 7) before
// this fast path landed; BENCH_query.json reports current numbers as
// multiples of these.
constexpr double kSeedAccessNs = 11375;
constexpr double kSeedRankNs = 9074;
constexpr double kSeedSelectNs = 8909;
constexpr double kSeedSizeBits = 10775200;

std::vector<BitString> MakeLog(size_t n, bool zipf) {
  UrlLogOptions opt;
  opt.num_domains = 64;
  opt.paths_per_domain = 32;
  opt.seed = 7;
  UrlLogGenerator gen(opt);
  std::vector<BitString> seq;
  seq.reserve(n);
  if (zipf) {
    for (size_t i = 0; i < n; ++i) seq.push_back(ByteCodec::Encode(gen.Next()));
  } else {
    // Uniform popularity over the same URL universe.
    std::mt19937_64 rng(opt.seed);
    for (size_t i = 0; i < n; ++i) {
      seq.push_back(ByteCodec::Encode(gen.Url(rng() % 64, rng() % 32)));
    }
  }
  return seq;
}

struct QuerySet {
  std::vector<size_t> access_pos;
  std::vector<size_t> rank_pos;
  std::vector<size_t> select_idx;
  std::vector<BitString> values;   // storage for the value strings
  std::vector<BitSpan> value_spans;
};

QuerySet MakeQueries(const std::vector<BitString>& seq, size_t q,
                     uint64_t seed) {
  QuerySet qs;
  std::mt19937_64 rng(seed);
  const size_t n = seq.size();
  // Value mix: strings drawn from the sequence itself (so their frequency
  // follows the workload), plus a few absent strings.
  const size_t distinct_pool = 256;
  for (size_t i = 0; i < distinct_pool; ++i) {
    qs.values.push_back(seq[rng() % n]);
  }
  qs.values.push_back(ByteCodec::Encode("www.absent.example/none"));
  qs.values.push_back(ByteCodec::Encode("www.absent.example/other"));
  qs.access_pos.reserve(q);
  qs.rank_pos.reserve(q);
  qs.select_idx.reserve(q);
  qs.value_spans.reserve(q);
  for (size_t i = 0; i < q; ++i) {
    qs.access_pos.push_back(rng() % n);
    qs.rank_pos.push_back(rng() % (n + 1));
    qs.select_idx.push_back(rng() % 1000);
    qs.value_spans.push_back(qs.values[rng() % qs.values.size()].Span());
  }
  return qs;
}

// ------------------------------------------------------ benchmark tables

void BM_AccessSingle(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto seq = MakeLog(n, /*zipf=*/true);
  const WaveletTrie trie = WaveletTrie::BulkBuild(seq);
  const QuerySet qs = MakeQueries(seq, 4096, 13);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.Access(qs.access_pos[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AccessSingle)->DenseRange(14, 20, 3)->Unit(benchmark::kMicrosecond);

void BM_RankSingle(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto seq = MakeLog(n, true);
  const WaveletTrie trie = WaveletTrie::BulkBuild(seq);
  const QuerySet qs = MakeQueries(seq, 4096, 13);
  size_t i = 0;
  for (auto _ : state) {
    const size_t j = i++ & 4095;
    benchmark::DoNotOptimize(trie.Rank(qs.value_spans[j], qs.rank_pos[j]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RankSingle)->DenseRange(14, 20, 3)->Unit(benchmark::kMicrosecond);

void BM_SelectSingle(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto seq = MakeLog(n, true);
  const WaveletTrie trie = WaveletTrie::BulkBuild(seq);
  const QuerySet qs = MakeQueries(seq, 4096, 13);
  size_t i = 0;
  for (auto _ : state) {
    const size_t j = i++ & 4095;
    benchmark::DoNotOptimize(trie.Select(qs.value_spans[j], qs.select_idx[j]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SelectSingle)->DenseRange(14, 20, 3)->Unit(benchmark::kMicrosecond);

void BM_AccessBatch(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto seq = MakeLog(n, true);
  const WaveletTrie trie = WaveletTrie::BulkBuild(seq);
  const QuerySet qs = MakeQueries(seq, 8192, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.AccessBatch(qs.access_pos));
  }
  state.SetItemsProcessed(state.iterations() * qs.access_pos.size());
  state.SetLabel("one node-grouped traversal per batch");
}
BENCHMARK(BM_AccessBatch)->DenseRange(14, 20, 3)->Unit(benchmark::kMillisecond);

void BM_RankBatch(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto seq = MakeLog(n, true);
  const WaveletTrie trie = WaveletTrie::BulkBuild(seq);
  const QuerySet qs = MakeQueries(seq, 8192, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.RankBatch(qs.value_spans, qs.rank_pos));
  }
  state.SetItemsProcessed(state.iterations() * qs.rank_pos.size());
}
BENCHMARK(BM_RankBatch)->DenseRange(14, 20, 3)->Unit(benchmark::kMillisecond);

void BM_SelectBatch(benchmark::State& state) {
  const size_t n = size_t(1) << state.range(0);
  const auto seq = MakeLog(n, true);
  const WaveletTrie trie = WaveletTrie::BulkBuild(seq);
  const QuerySet qs = MakeQueries(seq, 8192, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.SelectBatch(qs.value_spans, qs.select_idx));
  }
  state.SetItemsProcessed(state.iterations() * qs.select_idx.size());
}
BENCHMARK(BM_SelectBatch)->DenseRange(14, 20, 3)->Unit(benchmark::kMillisecond);

// ----------------------------------------------------------------- the gate
//
// Single-shot comparison written to BENCH_query.json — the acceptance
// numbers the PR trajectory tracks.

using clock_type = std::chrono::steady_clock;

double NsPer(clock_type::time_point a, clock_type::time_point b, size_t q) {
  return std::chrono::duration<double, std::nano>(b - a).count() /
         static_cast<double>(q);
}

struct RunResult {
  const char* workload;
  size_t n;
  size_t size_bits;
  double single_access_ns, single_rank_ns, single_select_ns;
  double batch_access_ns, batch_rank_ns, batch_select_ns;
  bool identical;
};

RunResult RunOne(const char* workload, bool zipf, size_t n, size_t q) {
  const auto seq = MakeLog(n, zipf);
  const WaveletTrie trie = WaveletTrie::BulkBuild(seq);
  const QuerySet qs = MakeQueries(seq, q, 17);

  RunResult r{};
  r.workload = workload;
  r.n = n;
  r.size_bits = trie.SizeInBits();

  auto t0 = clock_type::now();
  std::vector<BitString> access_loop;
  access_loop.reserve(q);
  for (size_t i = 0; i < q; ++i) access_loop.push_back(trie.Access(qs.access_pos[i]));
  auto t1 = clock_type::now();
  std::vector<size_t> rank_loop(q);
  for (size_t i = 0; i < q; ++i) {
    rank_loop[i] = trie.Rank(qs.value_spans[i], qs.rank_pos[i]);
  }
  auto t2 = clock_type::now();
  std::vector<std::optional<size_t>> select_loop(q);
  for (size_t i = 0; i < q; ++i) {
    select_loop[i] = trie.Select(qs.value_spans[i], qs.select_idx[i]);
  }
  auto t3 = clock_type::now();
  const auto access_batch = trie.AccessBatch(qs.access_pos);
  auto t4 = clock_type::now();
  const auto rank_batch = trie.RankBatch(qs.value_spans, qs.rank_pos);
  auto t5 = clock_type::now();
  const auto select_batch = trie.SelectBatch(qs.value_spans, qs.select_idx);
  auto t6 = clock_type::now();

  r.single_access_ns = NsPer(t0, t1, q);
  r.single_rank_ns = NsPer(t1, t2, q);
  r.single_select_ns = NsPer(t2, t3, q);
  r.batch_access_ns = NsPer(t3, t4, q);
  r.batch_rank_ns = NsPer(t4, t5, q);
  r.batch_select_ns = NsPer(t5, t6, q);
  r.identical = access_batch == access_loop && rank_batch == rank_loop &&
                select_batch == select_loop;
  return r;
}

bool WriteAcceptanceJson() {
  // WT_BENCH_SMOKE shrinks the run so CI exercises the whole path (build +
  // queries + batch-vs-loop identity) in seconds; the tracked perf numbers
  // come from full runs without it.
  const bool smoke = std::getenv("WT_BENCH_SMOKE") != nullptr;
  const size_t small_n = smoke ? 20'000 : 100'000;
  const size_t big_n = smoke ? 50'000 : 1'000'000;
  // Batch size: one analytics burst. Batch-vs-loop amortization scales with
  // queries-per-node (the google-benchmark tables cover smaller batches).
  const size_t q = smoke ? 8'192 : 131'072;

  std::vector<RunResult> runs;
  runs.push_back(RunOne("url_log_zipf", true, small_n, q));
  runs.push_back(RunOne("url_log_uniform", false, small_n, q));
  runs.push_back(RunOne("url_log_zipf", true, big_n, q));
  runs.push_back(RunOne("url_log_uniform", false, big_n, q));
  const RunResult& gate = runs[2];  // zipf at the largest size

  bool ok = true;
  for (const auto& r : runs) ok = ok && r.identical;
  // Space gate: only meaningful against the seed baseline at the full
  // acceptance size (deterministic — same workload, same seed).
  double size_regression_pct = 0.0;
  if (!smoke) {
    size_regression_pct =
        100.0 * (static_cast<double>(gate.size_bits) / kSeedSizeBits - 1.0);
    ok = ok && size_regression_pct <= 5.0;
  }

  FILE* f = std::fopen("BENCH_query.json", "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"seed_baseline\": {\n");
  std::fprintf(f, "    \"note\": \"seed commit, same container, url_log_zipf 1M\",\n");
  std::fprintf(f, "    \"access_ns\": %.0f, \"rank_ns\": %.0f, \"select_ns\": %.0f,\n",
               kSeedAccessNs, kSeedRankNs, kSeedSelectNs);
  std::fprintf(f, "    \"size_in_bits\": %.0f\n", kSeedSizeBits);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"workload\": \"%s\", \"num_strings\": %zu,\n",
                 r.workload, r.n);
    std::fprintf(f, "      \"size_in_bits\": %zu,\n", r.size_bits);
    std::fprintf(f,
                 "      \"single_ns\": {\"access\": %.0f, \"rank\": %.0f, "
                 "\"select\": %.0f},\n",
                 r.single_access_ns, r.single_rank_ns, r.single_select_ns);
    std::fprintf(f,
                 "      \"batch_ns\": {\"access\": %.0f, \"rank\": %.0f, "
                 "\"select\": %.0f},\n",
                 r.batch_access_ns, r.batch_rank_ns, r.batch_select_ns);
    std::fprintf(f,
                 "      \"batch_vs_loop_speedup\": {\"access\": %.2f, "
                 "\"rank\": %.2f, \"select\": %.2f},\n",
                 r.single_access_ns / r.batch_access_ns,
                 r.single_rank_ns / r.batch_rank_ns,
                 r.single_select_ns / r.batch_select_ns);
    std::fprintf(f, "      \"batch_identical_to_loop\": %s\n",
                 r.identical ? "true" : "false");
    std::fprintf(f, "    }%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"gate\": {\n");
  std::fprintf(f, "    \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "    \"results_identical\": %s,\n", ok ? "true" : "false");
  if (!smoke) {
    std::fprintf(f, "    \"size_regression_pct_vs_seed\": %.2f,\n",
                 size_regression_pct);
    std::fprintf(f, "    \"single_speedup_vs_seed\": {\"access\": %.2f, "
                 "\"rank\": %.2f, \"select\": %.2f},\n",
                 kSeedAccessNs / gate.single_access_ns,
                 kSeedRankNs / gate.single_rank_ns,
                 kSeedSelectNs / gate.single_select_ns);
  }
  std::fprintf(f, "    \"batch_vs_loop_speedup_at_gate\": {\"access\": %.2f, "
               "\"rank\": %.2f, \"select\": %.2f}\n",
               gate.single_access_ns / gate.batch_access_ns,
               gate.single_rank_ns / gate.batch_rank_ns,
               gate.single_select_ns / gate.batch_select_ns);
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf(
      "BENCH_query.json: single A/R/S %.0f/%.0f/%.0f ns (seed %.0f/%.0f/%.0f), "
      "batch speedup %.1fx/%.1fx/%.1fx, size %+.2f%%, identical=%s\n",
      gate.single_access_ns, gate.single_rank_ns, gate.single_select_ns,
      kSeedAccessNs, kSeedRankNs, kSeedSelectNs,
      gate.single_access_ns / gate.batch_access_ns,
      gate.single_rank_ns / gate.batch_rank_ns,
      gate.single_select_ns / gate.batch_select_ns, size_regression_pct,
      ok ? "yes" : "no");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return WriteAcceptanceJson() ? 0 : 1;
}
