// serving_daemon: the wavelet-trie store as a network service.
//
// Opens (or creates) a durable engine directory and serves the binary
// frame protocol (src/net/) on loopback: coalesced Access/Rank/Select/
// prefix/analytics queries, durable appends, admission control with
// load shedding, per-request deadlines, slow-client backpressure.
//
//   ./example_serving_daemon --dir=/tmp/store --port=7411
//   ./example_serving_daemon --dir=/tmp/store --port=0 --port-file=/tmp/p \
//       --preload=1000000
//
// --port=0 picks an ephemeral port; --port-file writes the chosen port so
// harnesses (tests, CI smoke, the bench) can find it. --preload seeds the
// store with N synthetic URL-log strings and flushes, so read benchmarks
// have a frozen corpus to query. SIGINT/SIGTERM trigger the graceful
// drain: admitted requests finish, replies flush, ingest is frozen and the
// WAL fsynced — the directory reopens clean. SIGKILL at any moment is the
// crash-recovery path: acknowledged appends survive via the WAL
// (tests/serving_crash_test.cpp proves it).
//
// Linux-only (epoll). Elsewhere it prints a notice and exits 0.

#if !defined(__linux__)
#include <cstdio>
int main() {
  std::printf("serving_daemon: requires Linux (epoll)\n");
  return 0;
}
#else

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "net/server.hpp"
#include "util/workloads.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

struct Flags {
  std::string dir;
  std::string port_file;
  uint16_t port = 0;
  size_t shards = 4;
  size_t memtable_limit = 1 << 16;
  size_t preload = 0;
  size_t max_queue = 1024;
  size_t max_batch = 1024;
  bool sync_wal = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

bool ParseFlags(int argc, char** argv, Flags* f) {
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "--dir", &v)) {
      f->dir = v;
    } else if (ParseFlag(argv[i], "--port", &v)) {
      f->port = static_cast<uint16_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--port-file", &v)) {
      f->port_file = v;
    } else if (ParseFlag(argv[i], "--shards", &v)) {
      f->shards = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--memtable-limit", &v)) {
      f->memtable_limit = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--preload", &v)) {
      f->preload = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--max-queue", &v)) {
      f->max_queue = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--max-batch", &v)) {
      f->max_batch = std::strtoull(v.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--sync-wal") == 0) {
      f->sync_wal = true;
    } else {
      std::fprintf(stderr, "serving_daemon: unknown flag %s\n", argv[i]);
      return false;
    }
  }
  if (f->dir.empty()) {
    std::fprintf(stderr,
                 "usage: serving_daemon --dir=PATH [--port=N] "
                 "[--port-file=PATH] [--shards=N] [--memtable-limit=N] "
                 "[--preload=N] [--max-queue=N] [--max-batch=N] "
                 "[--sync-wal]\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  wtrie::Engine<wt::ByteCodec>::Options opt;
  opt.dir = flags.dir;
  opt.num_shards = flags.shards;
  opt.memtable_limit = flags.memtable_limit;
  opt.sync_wal = flags.sync_wal;
  auto engine = wtrie::Engine<wt::ByteCodec>::Open(opt);
  if (!engine.ok()) {
    std::fprintf(stderr, "serving_daemon: open failed: %s\n",
                 engine.status().message());
    return 1;
  }

  if (flags.preload > (*engine)->size()) {
    const size_t need = flags.preload - (*engine)->size();
    std::fprintf(stderr, "serving_daemon: preloading %zu strings...\n", need);
    wt::UrlLogGenerator gen;
    size_t left = need;
    while (left > 0) {
      const size_t chunk = left < 65536 ? left : 65536;
      if (wtrie::Status st = (*engine)->AppendBatch(gen.Take(chunk));
          !st.ok()) {
        std::fprintf(stderr, "serving_daemon: preload failed: %s\n",
                     st.message());
        return 1;
      }
      left -= chunk;
    }
    if (wtrie::Status st = (*engine)->Flush(); !st.ok()) {
      std::fprintf(stderr, "serving_daemon: flush failed: %s\n",
                   st.message());
      return 1;
    }
  }

  wt::net::Server<wt::ByteCodec>::Options sopt;
  sopt.port = flags.port;
  sopt.admission.max_requests = flags.max_queue;
  sopt.max_dispatch_batch = flags.max_batch;
  auto server = wt::net::Server<wt::ByteCodec>::Start(engine->get(), sopt);
  if (!server.ok()) {
    std::fprintf(stderr, "serving_daemon: listen failed: %s\n",
                 server.status().message());
    return 1;
  }

  if (!flags.port_file.empty()) {
    // tmp+rename so a reader never sees a half-written port number.
    const std::string tmp = flags.port_file + ".tmp";
    std::FILE* pf = std::fopen(tmp.c_str(), "w");
    if (pf == nullptr) {
      std::fprintf(stderr, "serving_daemon: cannot write port file\n");
      return 1;
    }
    std::fprintf(pf, "%u\n", (*server)->port());
    std::fclose(pf);
    if (std::rename(tmp.c_str(), flags.port_file.c_str()) != 0) {
      std::fprintf(stderr, "serving_daemon: cannot publish port file\n");
      return 1;
    }
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::fprintf(stderr, "serving_daemon: serving %s on 127.0.0.1:%u (%llu strings)\n",
               flags.dir.c_str(), (*server)->port(),
               static_cast<unsigned long long>((*engine)->size()));

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::fprintf(stderr, "serving_daemon: draining...\n");
  if (wtrie::Status st = (*server)->Stop(); !st.ok()) {
    std::fprintf(stderr, "serving_daemon: shutdown error: %s\n",
                 st.message());
    return 1;
  }
  const auto stats = (*server)->stats();
  std::fprintf(stderr,
               "serving_daemon: done. admitted=%llu completed=%llu shed=%llu "
               "expired=%llu\n",
               static_cast<unsigned long long>(stats.admission.admitted),
               static_cast<unsigned long long>(stats.admission.completed),
               static_cast<unsigned long long>(stats.admission.shed),
               static_cast<unsigned long long>(
                   stats.admission.expired_at_dequeue +
                   stats.admission.expired_before_reply));
  return 0;
}

#endif  // __linux__
