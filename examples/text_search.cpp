// Text-search example: the FM-index substrate and the approach-(2) baseline
// side by side with the Wavelet Trie.
//
// The same query log is stored twice:
//   * TextCollection — concatenated with separators and full-text indexed
//     (related-work approach (2), "Dynamic Text Collection");
//   * wtrie::Sequence<wtrie::Static> — the paper's structure, behind the
//     unified API facade (src/api/sequence.hpp).
// Both answer sequence queries (Access / Count / prefix counts); only the
// text index answers substring queries, and only the Wavelet Trie answers
// Rank/Select in time independent of the number of occurrences. The printed
// numbers make the paper's trade-off concrete.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "api/sequence.hpp"
#include "text/text_collection.hpp"
#include "util/workloads.hpp"

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using namespace wt;

  UrlLogGenerator gen({.num_domains = 25, .paths_per_domain = 20, .seed = 17});
  const std::vector<std::string> log = gen.Take(20000);

  auto t0 = std::chrono::steady_clock::now();
  TextCollection text(log);
  std::printf("TextCollection built in %.1f ms, %.2f MB\n", MsSince(t0),
              text.SizeInBits() / 8e6);

  t0 = std::chrono::steady_clock::now();
  wtrie::Sequence<wtrie::Static> trie(log);
  std::printf("WaveletTrie    built in %.1f ms, %.2f MB\n", MsSince(t0),
              trie.SizeInBits() / 8e6);

  // Both support the sequence API.
  const std::string probe = log[4242];
  std::printf("\ndoc 4242: '%s'\n", text.Access(4242).c_str());
  std::printf("count('%s'): text=%zu trie=%zu\n", probe.c_str(),
              text.Count(probe), trie.Count(probe));
  const std::string domain = gen.Domain(2);
  std::printf("count(prefix '%s'): text=%zu trie=%zu\n", domain.c_str(),
              text.CountPrefix(domain), trie.CountPrefix(domain));

  // Rank: one backward search costs the text index O(occ) locates; the
  // Wavelet Trie pays O(|s| + h_s) regardless of occurrences.
  t0 = std::chrono::steady_clock::now();
  const size_t rank_text = text.Rank(probe, 15000);
  const double ms_text = MsSince(t0);
  t0 = std::chrono::steady_clock::now();
  const size_t rank_trie = trie.Rank(probe, 15000).value();
  const double ms_trie = MsSince(t0);
  std::printf("rank@15000: text=%zu (%.3f ms) trie=%zu (%.3f ms)\n", rank_text,
              ms_text, rank_trie, ms_trie);

  // What only the text index can do: substring search inside documents.
  const auto hits = text.DocsContaining("/sec3/page17");
  std::printf("\ndocs containing '/sec3/page17': %zu", hits.size());
  if (!hits.empty()) std::printf(" (first: doc %zu)", hits.front());
  std::printf("\n");

  // What only the Wavelet Trie does in O(h): the idx-th doc with a prefix.
  if (auto pos = trie.SelectPrefix(domain, 99); pos.ok()) {
    std::printf("100th request under %s is at position %zu\n", domain.c_str(),
                *pos);
  }
  return 0;
}
