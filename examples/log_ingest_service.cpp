// Log-ingest service demo: the engine layer end to end (DESIGN.md #7).
//
// The paper's flagship scenario — "the accessed URLs are chronologically
// stored as a sequence of strings" — run the way a service would actually
// deploy it: a `wtrie::Engine` sharding the stream across LSM-style
// memtable/segment pairs, with
//
//   * two writer threads streaming URL batches in (WAL-durable),
//   * three reader threads concurrently answering Access/Rank and
//     Section 5 analytics on lock-free snapshots while freezes and
//     compactions run in the background,
//   * a crash-recovery epilogue: the engine object is dropped without a
//     flush and reopened, replaying the WAL tail.
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "util/workloads.hpp"

int main() {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "wtrie_log_ingest_demo";
  fs::remove_all(dir);

  constexpr size_t kBatches = 200;
  constexpr size_t kBatchSize = 2000;
  constexpr size_t kWriters = 2;

  wtrie::Engine<>::Options opt;
  opt.num_shards = 4;
  opt.memtable_limit = 1 << 15;
  opt.dir = dir.string();

  size_t recovered = 0;
  {
    auto eng = wtrie::Engine<>::Open(opt).value();

    std::atomic<long long> batches_left{kBatches};
    std::atomic<bool> done{false};
    std::atomic<size_t> reads{0};

    auto writer = [&](unsigned seed) {
      wt::UrlLogOptions wopt;
      wopt.num_domains = 64;
      wopt.paths_per_domain = 32;
      wopt.seed = seed;
      wt::UrlLogGenerator gen(wopt);
      while (batches_left.fetch_sub(1) > 0) {
        std::vector<std::string> batch;
        batch.reserve(kBatchSize);
        for (size_t i = 0; i < kBatchSize; ++i) batch.push_back(gen.Next());
        if (!eng->AppendBatch(batch).ok()) return;
      }
    };

    auto reader = [&](unsigned seed) {
      std::mt19937_64 rng(seed);
      while (!done.load(std::memory_order_acquire)) {
        const auto snap = eng->GetSnapshot();
        if (snap.empty()) continue;
        // A small analytic dashboard per tick: point lookups, a domain
        // count, and the most frequent URLs of a recent window.
        const uint64_t n = snap.size();
        for (int i = 0; i < 8; ++i) {
          (void)snap.Access(rng() % n);
        }
        (void)snap.CountPrefix("www.domain1.example/");
        const uint64_t l = n > 5000 ? n - 5000 : 0;
        (void)snap.Frequent(l, n, std::max<uint64_t>(1, (n - l) / 20));
        reads.fetch_add(10, std::memory_order_relaxed);
      }
    };

    std::vector<std::thread> threads;
    for (size_t w = 0; w < kWriters; ++w) {
      threads.emplace_back(writer, static_cast<unsigned>(2026 + w));
    }
    for (unsigned r = 0; r < 3; ++r) threads.emplace_back(reader, 99 + r);
    for (size_t w = 0; w < kWriters; ++w) threads[w].join();

    if (!eng->Flush().ok()) return 1;
    done.store(true, std::memory_order_release);
    for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

    const auto snap = eng->GetSnapshot();
    std::printf("ingested %llu URLs across %zu shards (%zu segments)\n",
                static_cast<unsigned long long>(snap.size()), opt.num_shards,
                snap.NumSegments());
    std::printf("reader threads completed %zu queries during ingest\n",
                reads.load());
    auto top = snap.Frequent(0, snap.size(), snap.size() / 50).value();
    std::printf("URLs with >= 2%% of all traffic:\n");
    while (top.Next()) {
      std::printf("  %-34s %7zu\n", top.value().c_str(), top.count());
    }

    // Keep ingesting, then "crash": drop the engine without flushing —
    // the tail lives only in the WAL.
    std::vector<std::string> tail;
    wt::UrlLogOptions wopt;
    wopt.seed = 777;
    wt::UrlLogGenerator gen(wopt);
    for (size_t i = 0; i < 5000; ++i) tail.push_back(gen.Next());
    if (!eng->AppendBatch(tail).ok()) return 1;
    recovered = eng->size();
  }

  auto eng = wtrie::Engine<>::Open(opt).value();
  std::printf("reopened after crash: %llu URLs (%llu replayed from WAL)\n",
              static_cast<unsigned long long>(eng->size()),
              static_cast<unsigned long long>(5000));
  const bool ok = eng->size() == recovered;
  std::printf("recovery check: %s\n", ok ? "OK" : "MISMATCH");
  fs::remove_all(dir);
  return ok ? 0 : 1;
}
