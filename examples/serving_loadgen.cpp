// serving_loadgen: closed-loop load generator for serving_daemon.
//
// Opens N connections, keeps W requests pipelined on each (closed loop:
// a new request is sent only when a response comes back, so offered load
// tracks service capacity instead of ballooning unboundedly), and reports
// throughput, latency percentiles, and the shed/deadline counts that show
// the admission policy working.
//
//   ./example_serving_loadgen --port=7411 --connections=4 --pipeline=8 \
//       --duration-s=5 --mix=read --key-space=100000
//
// --mix=read     kAccess/kRank/kSelect/kCountPrefix round-robin
// --mix=mixed    reads plus ~10% kAppend frames
// --mix=append   kAppend only
// --batch=N      queries packed per frame (the client-side batching knob)
// --deadline-ms  per-request deadline sent in the frame header
//
// Exit code 0 when every connection ran to the end of the duration; 1 on
// connect/protocol failure.
//
// Linux-only (epoll server); prints a notice elsewhere.

#if !defined(__linux__)
#include <cstdio>
int main() {
  std::printf("serving_loadgen: requires Linux\n");
  return 0;
}
#else

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "util/workloads.hpp"

namespace {

struct Flags {
  uint16_t port = 0;
  size_t connections = 4;
  size_t pipeline = 8;
  size_t batch = 16;
  size_t duration_s = 5;
  size_t key_space = 100000;
  uint32_t deadline_ms = 0;
  std::string mix = "read";
};

struct WorkerResult {
  uint64_t frames_ok = 0;
  uint64_t queries_ok = 0;
  uint64_t shed = 0;
  uint64_t deadline = 0;
  uint64_t other_error = 0;
  bool io_failed = false;
  std::vector<uint64_t> latencies_us;
};

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Worker(const Flags& flags, size_t worker_id, std::atomic<bool>* stop,
            WorkerResult* out) {
  auto client = wt::net::Client::Connect(flags.port);
  if (!client.ok()) {
    out->io_failed = true;
    return;
  }
  std::mt19937_64 rng(0x9E3779B97F4A7C15ull ^ worker_id);
  wt::UrlLogGenerator gen({.seed = 1000 + worker_id});
  const bool do_append = flags.mix == "append" || flags.mix == "mixed";
  const bool do_read = flags.mix != "append";

  uint64_t next_id = 1;
  // request_id -> send time; responses echo the id, so pipelined latencies
  // are matched exactly even if a reply type is unexpected.
  std::vector<std::pair<uint64_t, uint64_t>> inflight;

  auto send_one = [&]() -> bool {
    const uint64_t id = next_id++;
    wt::net::MsgType type;
    std::string payload;
    const int roll = static_cast<int>(rng() % 10);
    if (do_append && (!do_read || roll == 0)) {
      std::vector<std::string> vals;
      vals.reserve(flags.batch);
      for (size_t i = 0; i < flags.batch; ++i) vals.push_back(gen.Next());
      type = wt::net::MsgType::kAppend;
      payload = wt::net::Client::StringsPayload(vals);
    } else {
      switch (roll % 4) {
        case 0: {
          std::vector<uint64_t> pos(flags.batch);
          for (auto& p : pos) p = rng() % flags.key_space;
          type = wt::net::MsgType::kAccess;
          payload = wt::net::Client::AccessPayload(pos);
          break;
        }
        case 1: {
          std::vector<std::string> vals;
          std::vector<uint64_t> pos(flags.batch);
          for (size_t i = 0; i < flags.batch; ++i) {
            vals.push_back(gen.Next());
            pos[i] = rng() % flags.key_space;
          }
          type = wt::net::MsgType::kRank;
          payload = wt::net::Client::RankPayload(vals, pos);
          break;
        }
        case 2: {
          std::vector<std::string> vals;
          std::vector<uint64_t> idx(flags.batch);
          for (size_t i = 0; i < flags.batch; ++i) {
            vals.push_back(gen.Next());
            idx[i] = rng() % 4;
          }
          type = wt::net::MsgType::kSelect;
          payload = wt::net::Client::SelectPayload(vals, idx);
          break;
        }
        default: {
          std::vector<std::string> prefixes;
          for (size_t i = 0; i < flags.batch; ++i) {
            prefixes.push_back("www.site" + std::to_string(rng() % 50));
          }
          type = wt::net::MsgType::kCountPrefix;
          payload = wt::net::Client::StringsPayload(prefixes);
          break;
        }
      }
    }
    if (!client->Send(type, id, flags.deadline_ms, payload).ok()) {
      out->io_failed = true;
      return false;
    }
    inflight.push_back({id, NowUs()});
    return true;
  };

  for (size_t i = 0; i < flags.pipeline; ++i) {
    if (!send_one()) return;
  }
  while (!stop->load(std::memory_order_relaxed)) {
    auto resp = client->Recv();
    if (!resp.ok()) {
      out->io_failed = true;
      return;
    }
    const uint64_t done_us = NowUs();
    for (size_t i = 0; i < inflight.size(); ++i) {
      if (inflight[i].first == resp->header.request_id) {
        out->latencies_us.push_back(done_us - inflight[i].second);
        inflight.erase(inflight.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
    wt::net::WireStatus st;
    wt::net::PayloadReader r(nullptr, 0);
    if (!wt::net::Client::DecodeStatus(*resp, &st, &r)) {
      out->other_error++;
    } else if (st == wt::net::WireStatus::kOk) {
      out->frames_ok++;
      out->queries_ok += flags.batch;
    } else if (st == wt::net::WireStatus::kOverloaded) {
      out->shed++;
    } else if (st == wt::net::WireStatus::kDeadlineExceeded) {
      out->deadline++;
    } else {
      out->other_error++;
    }
    if (!send_one()) return;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const auto eat = [&](const char* name, std::string* v) {
      const size_t n = std::strlen(name);
      if (std::strncmp(argv[i], name, n) != 0 || argv[i][n] != '=') {
        return false;
      }
      *v = argv[i] + n + 1;
      return true;
    };
    std::string v;
    if (eat("--port", &v)) {
      flags.port = static_cast<uint16_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (eat("--connections", &v)) {
      flags.connections = std::strtoull(v.c_str(), nullptr, 10);
    } else if (eat("--pipeline", &v)) {
      flags.pipeline = std::strtoull(v.c_str(), nullptr, 10);
    } else if (eat("--batch", &v)) {
      flags.batch = std::strtoull(v.c_str(), nullptr, 10);
    } else if (eat("--duration-s", &v)) {
      flags.duration_s = std::strtoull(v.c_str(), nullptr, 10);
    } else if (eat("--key-space", &v)) {
      flags.key_space = std::strtoull(v.c_str(), nullptr, 10);
    } else if (eat("--deadline-ms", &v)) {
      flags.deadline_ms =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (eat("--mix", &v)) {
      flags.mix = v;
    } else {
      std::fprintf(stderr, "serving_loadgen: unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (flags.port == 0) {
    std::fprintf(stderr,
                 "usage: serving_loadgen --port=N [--connections=N] "
                 "[--pipeline=N] [--batch=N] [--duration-s=N] "
                 "[--key-space=N] [--deadline-ms=N] [--mix=read|mixed|append]\n");
    return 2;
  }

  std::atomic<bool> stop{false};
  std::vector<WorkerResult> results(flags.connections);
  std::vector<std::thread> workers;
  const uint64_t t0 = NowUs();
  workers.reserve(flags.connections);
  for (size_t i = 0; i < flags.connections; ++i) {
    workers.emplace_back(Worker, std::cref(flags), i, &stop, &results[i]);
  }
  std::this_thread::sleep_for(std::chrono::seconds(flags.duration_s));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : workers) t.join();
  const double secs = double(NowUs() - t0) / 1e6;

  WorkerResult total;
  bool failed = false;
  for (WorkerResult& r : results) {
    total.frames_ok += r.frames_ok;
    total.queries_ok += r.queries_ok;
    total.shed += r.shed;
    total.deadline += r.deadline;
    total.other_error += r.other_error;
    failed = failed || r.io_failed;
    total.latencies_us.insert(total.latencies_us.end(),
                              r.latencies_us.begin(), r.latencies_us.end());
  }
  std::sort(total.latencies_us.begin(), total.latencies_us.end());
  const auto pct = [&](double p) -> uint64_t {
    if (total.latencies_us.empty()) return 0;
    const size_t i = static_cast<size_t>(p * double(total.latencies_us.size() - 1));
    return total.latencies_us[i];
  };
  std::printf(
      "serving_loadgen: %.1fs  frames_ok=%llu  qps=%.0f  shed=%llu  "
      "deadline=%llu  errors=%llu\n",
      secs, static_cast<unsigned long long>(total.frames_ok),
      double(total.queries_ok) / secs,
      static_cast<unsigned long long>(total.shed),
      static_cast<unsigned long long>(total.deadline),
      static_cast<unsigned long long>(total.other_error));
  std::printf("serving_loadgen: latency_us p50=%llu p99=%llu p999=%llu\n",
              static_cast<unsigned long long>(pct(0.50)),
              static_cast<unsigned long long>(pct(0.99)),
              static_cast<unsigned long long>(pct(0.999)));
  return failed ? 1 : 0;
}

#endif  // __linux__
