// Access-log analytics (the paper's flagship motivation, Section 1):
// "The accessed URLs are chronologically stored as a sequence of strings,
//  and a common prefix denotes a common domain [...] we can retrieve access
//  statistics using RankPrefix and report the corresponding items by
//  iterating SelectPrefix (e.g. what has been the most accessed domain
//  during winter vacation?)".
//
// This example streams a synthetic URL log into the unified API facade
// under the *append-only* policy (Theorem 4.3: O(|s| + h_s) per append —
// compress-and-index on the fly), then answers time-windowed questions with
// the prefix and range operations. Positions are timestamps: position i =
// the i-th request.
#include <cstdio>
#include <string>
#include <vector>

#include "api/sequence.hpp"
#include "util/workloads.hpp"

int main() {
  using namespace wt;

  // A year of traffic: 100k requests across 40 domains.
  constexpr size_t kRequests = 100000;
  UrlLogOptions opt;
  opt.num_domains = 40;
  opt.paths_per_domain = 60;
  opt.seed = 2026;
  UrlLogGenerator gen(opt);

  wtrie::Sequence<wtrie::AppendOnly> log;
  size_t raw_bits = 0;
  for (size_t i = 0; i < kRequests; ++i) {
    const std::string url = gen.Next();
    raw_bits += 9 * url.size() + 1;  // ByteCodec: 9 bits/byte + terminator
    (void)log.Append(url);           // indexed the moment it arrives
  }
  std::printf("indexed %zu requests, %zu distinct URLs\n", log.size(),
              log.NumDistinct());
  std::printf("space: %.2f MB vs %.2f MB raw (%.1fx)\n",
              log.SizeInBits() / 8e6, raw_bits / 8e6,
              double(raw_bits) / double(log.SizeInBits()));

  // "Winter vacation": requests 20k..30k.
  const size_t l = 20000, r = 30000;

  // Q1: accesses per domain in the window, via RankPrefix — O(|p| + h_p)
  // each, no scan.
  std::printf("\ntop domains in window [%zu, %zu):\n", l, r);
  for (size_t d = 0; d < 5; ++d) {
    const std::string domain = gen.Domain(d) + "/";
    const size_t hits = log.RangeCountPrefix(domain, l, r).value();
    std::printf("  %-18s %6zu hits\n", domain.c_str(), hits);
  }

  // Q2: was any single URL the majority of the window? (Section 5)
  if (auto m = log.Majority(l, r); m.ok()) {
    std::printf("\nmajority URL: %s (%zu of %zu)\n", m->first.c_str(),
                m->second, r - l);
  } else {
    std::printf("\nno majority URL in the window\n");
  }

  // Q3: all URLs with >= 2%% of the window's traffic (Section 5 heuristic:
  // branches below the threshold are pruned, so this touches only the
  // heavy part of the trie).
  std::printf("\nURLs with >= 2%% of window traffic:\n");
  auto frequent = log.Frequent(l, r, (r - l) / 50).value();
  while (frequent.Next()) {
    std::printf("  %-34s %5zu\n", frequent.value().c_str(), frequent.count());
  }

  // Q4: when did the most popular URL get its 1000th hit? Select gives the
  // position (= timestamp) directly.
  if (auto pos = log.Select(gen.Url(0, 0), 999); pos.ok()) {
    std::printf("\n1000th hit of %s at request #%zu\n", gen.Url(0, 0).c_str(),
                *pos);
  }

  // Q5: distinct URLs under one domain in the window, with counts
  // (Section 5 distinct-values restricted by prefix: the descent maps the
  // window through the node bitvectors and never leaves the subtree).
  const std::string d0 = gen.Domain(0) + "/";
  std::printf("\n%s URLs seen in window: %zu distinct paths\n", d0.c_str(),
              log.DistinctWithPrefix(d0, l, r).value().size());

  // Q6: replay a slice of the log in order (Section 5 sequential access:
  // one Rank per trie node per cursor chunk, then O(1)-advance iterators).
  std::printf("\nfirst 5 requests of the window:\n");
  auto scan = log.Scan(l, l + 5).value();
  while (scan.Next()) {
    std::printf("  #%zu %s\n", scan.position(), scan.value().c_str());
  }
  return 0;
}
