// Access-log analytics (the paper's flagship motivation, Section 1):
// "The accessed URLs are chronologically stored as a sequence of strings,
//  and a common prefix denotes a common domain [...] we can retrieve access
//  statistics using RankPrefix and report the corresponding items by
//  iterating SelectPrefix (e.g. what has been the most accessed domain
//  during winter vacation?)".
//
// This example streams a synthetic URL log into the *append-only* Wavelet
// Trie (Theorem 4.3: O(|s| + h_s) per append — compress-and-index on the
// fly), then answers time-windowed questions with the prefix and range
// operations. Positions are timestamps: position i = the i-th request.
#include <cstdio>
#include <string>
#include <vector>

#include "core/codec.hpp"
#include "core/dynamic_wavelet_trie.hpp"
#include "util/workloads.hpp"

int main() {
  using namespace wt;

  // A year of traffic: 100k requests across 40 domains.
  constexpr size_t kRequests = 100000;
  UrlLogOptions opt;
  opt.num_domains = 40;
  opt.paths_per_domain = 60;
  opt.seed = 2026;
  UrlLogGenerator gen(opt);

  AppendOnlyWaveletTrie log;
  size_t raw_bits = 0;
  for (size_t i = 0; i < kRequests; ++i) {
    const BitString enc = ByteCodec::Encode(gen.Next());
    raw_bits += enc.size();
    log.Append(enc);  // indexed the moment it arrives
  }
  std::printf("indexed %zu requests, %zu distinct URLs\n", log.size(),
              log.NumDistinct());
  std::printf("space: %.2f MB vs %.2f MB raw (%.1fx)\n",
              log.SizeInBits() / 8e6, raw_bits / 8e6,
              double(raw_bits) / double(log.SizeInBits()));

  // "Winter vacation": requests 20k..30k.
  const size_t l = 20000, r = 30000;

  // Q1: accesses per domain in the window, via RankPrefix — O(|p| + h_p)
  // each, no scan.
  std::printf("\ntop domains in window [%zu, %zu):\n", l, r);
  for (size_t d = 0; d < 5; ++d) {
    const std::string domain = gen.Domain(d) + "/";
    const BitString p = ByteCodec::EncodePrefix(domain);
    const size_t hits = log.RankPrefix(p, r) - log.RankPrefix(p, l);
    std::printf("  %-18s %6zu hits\n", domain.c_str(), hits);
  }

  // Q2: was any single URL the majority of the window? (Section 5)
  if (auto m = log.RangeMajority(l, r)) {
    std::printf("\nmajority URL: %s (%zu of %zu)\n",
                ByteCodec::Decode(m->first.Span()).c_str(), m->second, r - l);
  } else {
    std::printf("\nno majority URL in the window\n");
  }

  // Q3: all URLs with >= 2%% of the window's traffic (Section 5 heuristic:
  // branches below the threshold are pruned, so this touches only the
  // heavy part of the trie).
  std::printf("\nURLs with >= 2%% of window traffic:\n");
  log.RangeFrequent(l, r, (r - l) / 50, [](const BitString& s, size_t count) {
    std::printf("  %-34s %5zu\n", ByteCodec::Decode(s.Span()).c_str(), count);
  });

  // Q4: when did the most popular URL get its 1000th hit? Select gives the
  // position (= timestamp) directly.
  const BitString top = ByteCodec::Encode(gen.Url(0, 0));
  if (auto pos = log.Select(top, 999)) {
    std::printf("\n1000th hit of %s at request #%zu\n", gen.Url(0, 0).c_str(),
                *pos);
  }

  // Q5: distinct URLs under one domain in the window, with counts
  // (Section 5 distinct-values, restricted by prefix via counting first).
  const std::string d0 = gen.Domain(0) + "/";
  const BitString p0 = ByteCodec::EncodePrefix(d0);
  std::printf("\n%s URLs seen in window: %zu distinct paths\n", d0.c_str(),
              [&] {
                size_t distinct = 0;
                log.DistinctInRange(l, r, [&](const BitString& s, size_t) {
                  if (p0.Span().IsPrefixOf(s.Span())) ++distinct;
                });
                return distinct;
              }());

  // Q6: replay a slice of the log in order (Section 5 sequential access:
  // one Rank per trie node for the whole range, then O(1)-advance
  // iterators).
  std::printf("\nfirst 5 requests of the window:\n");
  log.ForEachInRange(l, l + 5, [](size_t i, const BitString& s) {
    std::printf("  #%zu %s\n", i, ByteCodec::Decode(s.Span()).c_str());
  });
  return 0;
}
