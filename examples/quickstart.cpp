// Quickstart: the indexed-sequence-of-strings API in five minutes.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
//
// The sequence model (paper Section 1): a list of strings where order and
// multiplicity matter, supporting Access / Rank / Select plus the prefix
// variants, in compressed space, with optional dynamic updates.
#include <cstdio>
#include <string>
#include <vector>

#include "core/codec.hpp"
#include "core/dynamic_wavelet_trie.hpp"
#include "core/wavelet_trie.hpp"

int main() {
  using namespace wt;

  // ------------------------------------------------ static construction
  // Encode application strings into prefix-free binary strings with a
  // codec, then build the static Wavelet Trie.
  const std::vector<std::string> log = {
      "api/users", "api/orders", "web/home",   "api/users",
      "web/cart",  "api/users",  "api/orders", "web/home",
  };
  std::vector<BitString> encoded;
  for (const auto& s : log) encoded.push_back(ByteCodec::Encode(s));
  WaveletTrie trie(encoded);

  std::printf("sequence length: %zu, distinct strings: %zu\n", trie.size(),
              trie.NumDistinct());

  // Access: the string at a position.
  std::printf("Access(3) = %s\n", ByteCodec::Decode(trie.Access(3).Span()).c_str());

  // Rank: occurrences of a string before a position.
  std::printf("Rank(\"api/users\", 6) = %zu\n",
              trie.Rank(ByteCodec::Encode("api/users"), 6));

  // Select: position of the k-th occurrence (0-based).
  if (auto pos = trie.Select(ByteCodec::Encode("api/users"), 2)) {
    std::printf("Select(\"api/users\", 2) = %zu\n", *pos);
  }

  // Prefix operations: count / locate strings by shared prefix. Note the
  // prefix is encoded WITHOUT the terminator.
  const BitString api = ByteCodec::EncodePrefix("api/");
  std::printf("RankPrefix(\"api/\", 8) = %zu\n", trie.RankPrefix(api, 8));
  if (auto pos = trie.SelectPrefix(api, 3)) {
    std::printf("SelectPrefix(\"api/\", 3) = %zu\n", *pos);
  }

  // Range analytics (paper Section 5).
  std::printf("distinct values in [2, 7):\n");
  trie.DistinctInRange(2, 7, [](const BitString& s, size_t count) {
    std::printf("  %-12s x%zu\n", ByteCodec::Decode(s.Span()).c_str(), count);
  });
  if (auto m = trie.RangeMajority(0, 6)) {
    std::printf("majority of [0, 6): %s (%zu times)\n",
                ByteCodec::Decode(m->first.Span()).c_str(), m->second);
  }

  // ------------------------------------------------ dynamic updates
  // The fully dynamic variant supports Insert/Delete of *previously unseen*
  // strings — the alphabet grows and shrinks with the data.
  DynamicWaveletTrie dyn;
  for (const auto& s : log) dyn.Append(ByteCodec::Encode(s));
  dyn.Insert(ByteCodec::Encode("api/payments"), 4);  // brand new string
  std::printf("after insert: distinct = %zu, Access(4) = %s\n", dyn.NumDistinct(),
              ByteCodec::Decode(dyn.Access(4).Span()).c_str());
  dyn.Delete(4);  // last occurrence: the alphabet shrinks back
  std::printf("after delete: distinct = %zu, size = %zu\n", dyn.NumDistinct(),
              dyn.size());

  // Space accounting.
  size_t raw_bits = 0;
  for (const auto& e : encoded) raw_bits += e.size();
  std::printf("static trie: %zu bits vs %zu raw encoded bits\n",
              trie.SizeInBits(), raw_bits);
  return 0;
}
