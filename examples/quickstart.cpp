// Quickstart: the unified indexed-sequence-of-strings API in five minutes.
//
// Build & run:   cmake -B build && cmake --build build
//                ./build/example_quickstart
//
// The sequence model (paper Section 1): a list of strings where order and
// multiplicity matter, supporting Access / Rank / Select plus the prefix
// variants, in compressed space, with optional dynamic updates. One facade,
// three policies (src/api/sequence.hpp):
//
//   wtrie::Sequence<wtrie::Static>      — immutable, smallest (Theorem 3.7)
//   wtrie::Sequence<wtrie::AppendOnly>  — streaming ingest (Theorem 4.3)
//   wtrie::Sequence<wtrie::Dynamic>     — Insert/Delete (Theorem 4.4)
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "api/sequence.hpp"

int main() {
  // ------------------------------------------------ static construction
  // Values are encoded into prefix-free binary strings by the codec
  // (ByteCodec by default), and built through the word-parallel bulk path.
  const std::vector<std::string> log = {
      "api/users", "api/orders", "web/home",   "api/users",
      "web/cart",  "api/users",  "api/orders", "web/home",
  };
  wtrie::Sequence<wtrie::Static> seq(log);

  std::printf("sequence length: %zu, distinct strings: %zu\n", seq.size(),
              seq.NumDistinct());

  // Access: the string at a position. Out-of-range positions return an
  // error instead of aborting — the public boundary is bounds-checked.
  std::printf("Access(3) = %s\n", seq.Access(3).value().c_str());
  if (auto bad = seq.Access(999); !bad.ok()) {
    std::printf("Access(999) -> error: %s\n", bad.status().message());
  }

  // Rank: occurrences of a string before a position.
  std::printf("Rank(\"api/users\", 6) = %zu\n",
              seq.Rank("api/users", 6).value());

  // Select: position of the k-th occurrence (0-based); kNotFound past the
  // last occurrence.
  if (auto pos = seq.Select("api/users", 2); pos.ok()) {
    std::printf("Select(\"api/users\", 2) = %zu\n", *pos);
  }

  // Prefix operations: count / locate strings by shared prefix.
  std::printf("RankPrefix(\"api/\", 8) = %zu\n",
              seq.RankPrefix("api/", 8).value());
  if (auto pos = seq.SelectPrefix("api/", 3); pos.ok()) {
    std::printf("SelectPrefix(\"api/\", 3) = %zu\n", *pos);
  }

  // Range analytics (paper Section 5), as cursors.
  std::printf("distinct values in [2, 7):\n");
  auto distinct = seq.Distinct(2, 7).value();
  while (distinct.Next()) {
    std::printf("  %-12s x%zu\n", distinct.value().c_str(), distinct.count());
  }
  if (auto m = seq.Majority(0, 6); m.ok()) {
    std::printf("majority of [0, 6): %s (%zu times)\n", m->first.c_str(),
                m->second);
  }
  auto scan = seq.Scan(0, 3).value();
  while (scan.Next()) {
    std::printf("scan[%zu] = %s\n", scan.position(), scan.value().c_str());
  }

  // ------------------------------------------------ lifecycle: Thaw/Freeze
  // A static sequence re-opens under a mutable policy (enumerate-and-replay),
  // takes updates, and freezes back into the compact static form.
  auto dyn = seq.Thaw<wtrie::Dynamic>();
  (void)dyn.Insert("api/payments", 4);  // brand new string: alphabet grows
  std::printf("after insert: distinct = %zu, Access(4) = %s\n",
              dyn.NumDistinct(), dyn.Access(4).value().c_str());
  (void)dyn.Delete(4);  // last occurrence: the alphabet shrinks back
  std::printf("after delete: distinct = %zu, size = %zu\n", dyn.NumDistinct(),
              dyn.size());
  wtrie::Sequence<wtrie::Static> frozen = dyn.Freeze();

  // ------------------------------------------------ persistence
  // Save/Load work for every policy (mutable ones persist through their
  // canonical static image); corrupt bytes are a recoverable error.
  std::stringstream file;
  if (frozen.Save(file).ok()) {
    auto loaded = wtrie::Sequence<wtrie::Static>::Load(file);
    std::printf("reloaded: size = %zu, Access(0) = %s\n", loaded->size(),
                loaded->Access(0).value().c_str());
  }
  std::stringstream garbage("not a wtrie stream");
  if (auto bad = wtrie::Sequence<wtrie::Static>::Load(garbage); !bad.ok()) {
    std::printf("loading garbage -> error: %s\n", bad.status().message());
  }

  // Space accounting.
  std::printf("static: %zu bits; thawed dynamic: %zu bits\n",
              frozen.SizeInBits(), dyn.SizeInBits());
  return 0;
}
