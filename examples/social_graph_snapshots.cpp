// Evolving-graph example (paper Section 1: "web graphs and social networks
// [...] each edge is conceptually a pair of URLs or hierarchical references.
// Edges can change over time, so we can report what changed in the
// adjacency list of a given vertex in a given time frame, allowing us to
// produce snapshots on the fly").
//
// Each edge event is the string "<src>#<dst>" appended chronologically to a
// `wtrie::Sequence<wtrie::AppendOnly>` (Theorem 4.3) behind the unified API
// facade; an even occurrence count of an edge at time t means "absent", odd
// means "present" (add/remove toggling). The adjacency list of v at time t
// is recovered with prefix operations on "<src>#": DistinctWithPrefix
// enumerates the edges with their event parities, SelectPrefix walks the
// events of a time frame — all on one append-only Wavelet Trie, no
// per-time-version storage.
#include <cstdio>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "api/sequence.hpp"

namespace {

class TemporalGraph {
 public:
  bool AddOrRemoveEdge(const std::string& src, const std::string& dst) {
    return log_.Append(src + "#" + dst).ok();
  }

  size_t Now() const { return log_.size(); }

  /// Neighbours of `src` at time `t` (edge present iff its event count in
  /// [0, t) is odd), via Section 5 distinct-values restricted to the
  /// prefix — the traversal never leaves the "<src>#" subtree.
  std::vector<std::string> Neighbours(const std::string& src, size_t t) const {
    std::vector<std::string> out;
    auto events = log_.DistinctWithPrefix(src + "#", 0, t).value();
    while (events.Next()) {
      if (events.count() % 2 == 1) {  // odd parity = currently present
        const std::string& edge = events.value();
        out.push_back(edge.substr(edge.find('#') + 1));
      }
    }
    return out;
  }

  /// Edge events touching `src` during [t0, t1) — "what changed in the
  /// adjacency list in a given time frame".
  std::vector<std::pair<size_t, std::string>> ChangesIn(const std::string& src,
                                                        size_t t0,
                                                        size_t t1) const {
    const std::string prefix = src + "#";
    std::vector<std::pair<size_t, std::string>> events;
    const size_t before = log_.RankPrefix(prefix, t0).value();
    const size_t until = log_.RankPrefix(prefix, t1).value();
    for (size_t k = before; k < until; ++k) {
      const size_t pos = log_.SelectPrefix(prefix, k).value();
      const std::string edge = log_.Access(pos).value();
      events.emplace_back(pos, edge.substr(edge.find('#') + 1));
    }
    return events;
  }

  size_t SizeInBits() const { return log_.SizeInBits(); }

 private:
  wtrie::Sequence<wtrie::AppendOnly> log_;
};

}  // namespace

int main() {
  TemporalGraph g;
  std::mt19937_64 rng(7);
  const std::vector<std::string> users = {"ada", "bob", "cyd", "dan", "eva",
                                          "fay", "gus", "hal"};
  // A stream of friendship changes; ~30k events.
  std::map<std::pair<int, int>, bool> truth;
  std::vector<size_t> ada_checkpoints;
  for (int i = 0; i < 30000; ++i) {
    const int a = static_cast<int>(rng() % users.size());
    int b = static_cast<int>(rng() % users.size());
    if (a == b) b = (b + 1) % static_cast<int>(users.size());
    if (!g.AddOrRemoveEdge(users[a], users[b])) return 1;
    truth[{a, b}] = !truth[{a, b}];
    if (i == 9999 || i == 19999) ada_checkpoints.push_back(g.Now());
  }

  std::printf("event log: %zu events, %.2f KB compressed\n", g.Now(),
              g.SizeInBits() / 8e3);

  // Snapshots on the fly: ada's neighbours at three points in time.
  for (size_t t : {ada_checkpoints[0], ada_checkpoints[1], g.Now()}) {
    const auto nb = g.Neighbours("ada", t);
    std::printf("ada's friends at t=%zu (%zu): ", t, nb.size());
    for (const auto& n : nb) std::printf("%s ", n.c_str());
    std::printf("\n");
  }

  // "How did friendship links change during winter vacation?"
  const auto changes = g.ChangesIn("ada", 15000, 15200);
  std::printf("ada's %zu link changes in [15000, 15200):\n", changes.size());
  for (const auto& [t, who] : changes) {
    std::printf("  t=%-6zu toggled %s\n", t, who.c_str());
  }

  // Verify the final snapshot against ground truth.
  const auto final_nb = g.Neighbours("ada", g.Now());
  size_t expect = 0;
  for (const auto& [edge, present] : truth) {
    if (edge.first == 0 && present) ++expect;
  }
  std::printf("final snapshot check: %zu neighbours, ground truth %zu -> %s\n",
              final_nb.size(), expect,
              final_nb.size() == expect ? "OK" : "MISMATCH");
  return final_nb.size() == expect ? 0 : 1;
}
