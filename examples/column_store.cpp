// Column-store example (paper Section 1: "Column-oriented databases
// represent relations by storing individually each column as a sequence; if
// each column is indexed, efficient operations on the relations are
// possible").
//
// A table of orders with two string columns (city, status), each a
// `wtrie::Sequence<wtrie::Dynamic>` (Theorem 4.4) behind the unified API
// facade: row order is the sequence order, so row i is column[i] across all
// columns, and inserting/deleting a row is an Insert/Delete at the same
// position in every column — including values never seen before, which is
// where the dynamic alphabet matters: "the set of values of a column (or
// even its cardinality) is very rarely known in advance".
#include <cstdio>
#include <string>
#include <vector>

#include "api/sequence.hpp"
#include "util/zipf.hpp"

namespace {

using Column = wtrie::Sequence<wtrie::Dynamic>;

struct OrdersTable {
  Column city;
  Column status;

  size_t rows() const { return city.size(); }

  bool InsertRow(size_t pos, const std::string& c, const std::string& s) {
    return city.Insert(c, pos).ok() && status.Insert(s, pos).ok();
  }
  bool AppendRow(const std::string& c, const std::string& s) {
    return city.Append(c).ok() && status.Append(s).ok();
  }
  bool DeleteRow(size_t pos) {
    return city.Delete(pos).ok() && status.Delete(pos).ok();
  }
  std::pair<std::string, std::string> GetRow(size_t pos) const {
    return {city.Access(pos).value(), status.Access(pos).value()};
  }
};

}  // namespace

int main() {
  const std::vector<std::string> cities = {
      "amsterdam", "berlin", "barcelona", "boston", "bangalore",
      "paris",     "pisa",   "prague",    "porto",  "perth"};
  const std::vector<std::string> statuses = {"shipped", "pending", "cancelled"};

  OrdersTable table;
  std::mt19937_64 rng(99);
  wt::ZipfDistribution city_dist(cities.size(), 1.0);
  size_t raw_bits = 0;
  for (int i = 0; i < 50000; ++i) {
    const auto& c = cities[city_dist(rng)];
    const auto& s = statuses[rng() % (1 + rng() % statuses.size())];
    raw_bits += 8 * (c.size() + s.size());
    if (!table.AppendRow(c, s)) return 1;
  }
  std::printf("table: %zu rows, %zu distinct cities, %zu distinct statuses\n",
              table.rows(), table.city.NumDistinct(),
              table.status.NumDistinct());
  std::printf("columns: %.2f MB vs %.2f MB raw strings\n",
              (table.city.SizeInBits() + table.status.SizeInBits()) / 8e6,
              raw_bits / 8e6);

  // Point lookups reconstruct rows.
  auto [c0, s0] = table.GetRow(12345);
  std::printf("row 12345 = (%s, %s)\n", c0.c_str(), s0.c_str());

  // Predicate counting: COUNT(*) WHERE city = 'pisa' — one Rank.
  std::printf("orders from pisa: %zu\n", table.city.Count("pisa"));

  // Prefix predicate: COUNT(*) WHERE city LIKE 'b%' — one RankPrefix.
  std::printf("orders from b* cities: %zu\n", table.city.CountPrefix("b"));

  // Conjunctive query via Select iteration: the k-th pisa order's status.
  // (SELECT status WHERE city='pisa' LIMIT 3)
  std::printf("first three pisa orders:\n");
  for (size_t k = 0; k < 3; ++k) {
    if (auto row = table.city.Select("pisa", k); row.ok()) {
      std::printf("  row %-7zu status=%s\n", *row,
                  table.status.Access(*row).value().c_str());
    }
  }

  // DML with unseen values: a brand-new city enters the alphabet...
  if (!table.InsertRow(0, "zanzibar", "pending")) return 1;
  std::printf("after insert: distinct cities = %zu, row 0 = (%s, %s)\n",
              table.city.NumDistinct(), table.GetRow(0).first.c_str(),
              table.GetRow(0).second.c_str());
  // ...and leaves it again when its last row is deleted (no rebuild).
  if (!table.DeleteRow(0)) return 1;
  std::printf("after delete: distinct cities = %zu, rows = %zu\n",
              table.city.NumDistinct(), table.rows());

  // Analytics over a row range (Section 5): status histogram for rows
  // [10000, 20000), via the facade's distinct-values cursor.
  std::printf("status histogram for rows [10000, 20000):\n");
  auto hist = table.status.Distinct(10000, 20000).value();
  while (hist.Next()) {
    std::printf("  %-10s %6zu\n", hist.value().c_str(), hist.count());
  }

  // Out-of-range DML is a recoverable error at the API boundary, not an
  // abort — the facade validates before the core structures see it.
  const wtrie::Status bad = table.city.Delete(table.rows());
  std::printf("delete past the end: %s\n", wtrie::ErrorCodeName(bad.code()));
  return 0;
}
