// Column-store example (paper Section 1: "Column-oriented databases
// represent relations by storing individually each column as a sequence; if
// each column is indexed, efficient operations on the relations are
// possible").
//
// A table of orders with two string columns (city, status) stored as fully
// dynamic Wavelet Tries (Theorem 4.4): row order is the sequence order, so
// row i is column[i] across all columns. Inserting/deleting a row is an
// Insert/Delete at the same position in every column — including values
// never seen before, which is where the dynamic alphabet matters: "the set
// of values of a column (or even its cardinality) is very rarely known in
// advance".
#include <cstdio>
#include <string>
#include <vector>

#include "core/codec.hpp"
#include "core/dynamic_wavelet_trie.hpp"
#include "util/zipf.hpp"

namespace {

struct OrdersTable {
  wt::DynamicWaveletTrie city;
  wt::DynamicWaveletTrie status;

  size_t rows() const { return city.size(); }

  void InsertRow(size_t pos, const std::string& c, const std::string& s) {
    city.Insert(wt::ByteCodec::Encode(c), pos);
    status.Insert(wt::ByteCodec::Encode(s), pos);
  }
  void AppendRow(const std::string& c, const std::string& s) {
    InsertRow(rows(), c, s);
  }
  void DeleteRow(size_t pos) {
    city.Delete(pos);
    status.Delete(pos);
  }
  std::pair<std::string, std::string> GetRow(size_t pos) const {
    return {wt::ByteCodec::Decode(city.Access(pos).Span()),
            wt::ByteCodec::Decode(status.Access(pos).Span())};
  }
};

}  // namespace

int main() {
  using namespace wt;

  const std::vector<std::string> cities = {
      "amsterdam", "berlin", "barcelona", "boston", "bangalore",
      "paris",     "pisa",   "prague",    "porto",  "perth"};
  const std::vector<std::string> statuses = {"shipped", "pending", "cancelled"};

  OrdersTable table;
  std::mt19937_64 rng(99);
  ZipfDistribution city_dist(cities.size(), 1.0);
  size_t raw_bits = 0;
  for (int i = 0; i < 50000; ++i) {
    const auto& c = cities[city_dist(rng)];
    const auto& s = statuses[rng() % (1 + rng() % statuses.size())];
    raw_bits += 8 * (c.size() + s.size());
    table.AppendRow(c, s);
  }
  std::printf("table: %zu rows, %zu distinct cities, %zu distinct statuses\n",
              table.rows(), table.city.NumDistinct(), table.status.NumDistinct());
  std::printf("columns: %.2f MB vs %.2f MB raw strings\n",
              (table.city.SizeInBits() + table.status.SizeInBits()) / 8e6,
              raw_bits / 8e6);

  // Point lookups reconstruct rows.
  auto [c0, s0] = table.GetRow(12345);
  std::printf("row 12345 = (%s, %s)\n", c0.c_str(), s0.c_str());

  // Predicate counting: COUNT(*) WHERE city = 'pisa' — one Rank.
  const BitString pisa = ByteCodec::Encode("pisa");
  std::printf("orders from pisa: %zu\n", table.city.Count(pisa));

  // Prefix predicate: COUNT(*) WHERE city LIKE 'b%' — one RankPrefix.
  const BitString b = ByteCodec::EncodePrefix("b");
  std::printf("orders from b* cities: %zu\n", table.city.CountPrefix(b));

  // Conjunctive query via Select iteration: the k-th pisa order's status.
  // (SELECT status WHERE city='pisa' LIMIT 3)
  std::printf("first three pisa orders:\n");
  for (size_t k = 0; k < 3; ++k) {
    if (auto row = table.city.Select(pisa, k)) {
      auto [c, s] = table.GetRow(*row);
      std::printf("  row %-7zu status=%s\n", *row, s.c_str());
    }
  }

  // DML with unseen values: a brand-new city enters the alphabet...
  table.InsertRow(0, "zanzibar", "pending");
  std::printf("after insert: distinct cities = %zu, row 0 = (%s, %s)\n",
              table.city.NumDistinct(), table.GetRow(0).first.c_str(),
              table.GetRow(0).second.c_str());
  // ...and leaves it again when its last row is deleted (no rebuild).
  table.DeleteRow(0);
  std::printf("after delete: distinct cities = %zu, rows = %zu\n",
              table.city.NumDistinct(), table.rows());

  // Analytics over a row range (Section 5): status histogram for rows
  // [10000, 20000).
  std::printf("status histogram for rows [10000, 20000):\n");
  table.status.DistinctInRange(10000, 20000, [](const BitString& s, size_t c) {
    std::printf("  %-10s %6zu\n", ByteCodec::Decode(s.Span()).c_str(), c);
  });
  return 0;
}
