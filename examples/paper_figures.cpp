// Regenerates the paper's three figures exactly, from this implementation:
//   Figure 1 — the Wavelet Tree of "abracadabra" over {a,b,c,d,r};
//   Figure 2 — the Wavelet Trie of <0001,0011,0100,00100,0100,00100,0100>;
//   Figure 3 — the node split caused by inserting a new string.
// The same structures are asserted bit-for-bit in the test suite
// (wavelet_trie_test.cpp, baselines_test.cpp, dynamic_wavelet_trie_test.cpp).
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/bit_string.hpp"
#include "core/dynamic_wavelet_trie.hpp"
#include "core/wavelet_tree.hpp"
#include "core/wavelet_trie.hpp"

namespace {

void Figure1() {
  std::printf("=== Figure 1: Wavelet Tree of \"abracadabra\", {a,b,c,d,r} ===\n");
  const std::string text = "abracadabra";
  const std::string alpha = "abcdr";
  std::map<char, uint64_t> code;
  for (size_t i = 0; i < alpha.size(); ++i) code[alpha[i]] = i;
  std::vector<uint64_t> seq;
  for (char c : text) seq.push_back(code[c]);
  wt::WaveletTree tree(seq, alpha.size());
  for (const auto& node : tree.DebugNodes()) {
    std::string range;
    for (uint64_t v = node.lo; v < node.hi && v < alpha.size(); ++v) {
      range.push_back(alpha[static_cast<size_t>(v)]);
    }
    std::printf("  node {%s}: %s\n", range.c_str(), node.bits.c_str());
  }
  std::printf("  (paper: root 00101010010, {a,b} 0100010, {c,d,r} 1011,"
              " {d,r} 101)\n\n");
}

void PrintTrieNodes(const std::vector<wt::WaveletTrie::NodeDebug>& nodes) {
  for (const auto& n : nodes) {
    if (n.is_leaf) {
      std::printf("  leaf     alpha=%-8s\n",
                  n.alpha.empty() ? "(empty)" : n.alpha.c_str());
    } else {
      std::printf("  internal alpha=%-8s beta=%s\n",
                  n.alpha.empty() ? "(empty)" : n.alpha.c_str(), n.beta.c_str());
    }
  }
}

void Figure2() {
  std::printf(
      "=== Figure 2: Wavelet Trie of <0001,0011,0100,00100,0100,00100,0100> "
      "===\n");
  std::vector<wt::BitString> seq;
  for (const char* s : {"0001", "0011", "0100", "00100", "0100", "00100", "0100"}) {
    seq.push_back(wt::BitString::FromString(s));
  }
  wt::WaveletTrie trie(seq);
  PrintTrieNodes(trie.DebugNodes());
  std::printf("  (paper: root alpha=0 beta=0010101; then alpha=eps beta=0111;"
              " ...)\n\n");
}

void Figure3() {
  std::printf("=== Figure 3: inserting s = ...gamma 1 lambda splits a node ===\n");
  wt::DynamicWaveletTrie trie;
  for (int i = 0; i < 4; ++i) trie.Append(wt::BitString::FromString("1011"));
  std::printf("before (node labeled gamma0delta = 1011):\n");
  for (const auto& n : trie.DebugNodes()) {
    std::printf("  %s alpha=%s count=%zu\n", n.is_leaf ? "leaf" : "internal",
                n.alpha.c_str(), n.count);
  }
  trie.Insert(wt::BitString::FromString("100"), 3);
  std::printf("after Insert(\"100\", 3) — gamma=10, new internal node with a\n"
              "constant-run bitvector plus a new leaf (lambda = eps):\n");
  for (const auto& n : trie.DebugNodes()) {
    if (n.is_leaf) {
      std::printf("  leaf     alpha=%-4s count=%zu\n",
                  n.alpha.empty() ? "(empty)" : n.alpha.c_str(), n.count);
    } else {
      std::printf("  internal alpha=%-4s beta=%s\n",
                  n.alpha.empty() ? "(empty)" : n.alpha.c_str(), n.beta.c_str());
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Figure1();
  Figure2();
  Figure3();
  return 0;
}
