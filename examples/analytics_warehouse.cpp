// Analytics warehouse example: the store/ layer end to end.
//
// An append-only web access log lands in a three-column table
// (url: string, status: int, agent: string); every column is its own
// compressed index (url/agent: append-only Wavelet Tries, status: Section 6
// randomized Wavelet Tree). Row ids double as timestamps, so the paper's
// motivating query — "what has been the most accessed domain during winter
// vacation?" — is TopK over a row window, with no scan and no second copy
// of the data.
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "store/table.hpp"
#include "util/workloads.hpp"

int main() {
  using namespace wt;

  Table log(std::vector<ColumnSpec>{
      {"url", ColumnType::kString},
      {"status", ColumnType::kInt},
      {"agent", ColumnType::kString},
  });

  // Ingest a day of traffic: 60k requests, Zipf-popular URLs.
  UrlLogGenerator urls({.num_domains = 40, .paths_per_domain = 25, .seed = 7});
  std::mt19937_64 rng(13);
  const std::vector<std::string> agents{"chrome", "firefox", "safari",
                                        "curl", "googlebot"};
  size_t raw_bits = 0;
  for (int i = 0; i < 60000; ++i) {
    const std::string url = urls.Next();
    const uint64_t status = (rng() % 100 < 93) ? 200 : (rng() % 2 ? 404 : 500);
    const std::string& agent = agents[rng() % agents.size()];
    raw_bits += 8 * (url.size() + agent.size()) + 64;
    log.AppendRow({url, status, agent});
  }
  std::printf("ingested %zu rows; index %.2f MB vs %.2f MB raw\n",
              log.num_rows(), log.SizeInBits() / 8e6, raw_bits / 8e6);

  // Point lookup: reconstruct one row across all columns.
  const auto row = log.GetRow(31337);
  std::printf("row 31337 = (%s, %llu, %s)\n",
              std::get<std::string>(row[0]).c_str(),
              static_cast<unsigned long long>(std::get<uint64_t>(row[1])),
              std::get<std::string>(row[2]).c_str());

  // Windowed predicate counting: errors in the "afternoon" third.
  const size_t from = 20000, to = 40000;
  std::printf("status=404 in rows [%zu, %zu): %zu\n", from, to,
              log.CountEquals("status", uint64_t(404), from, to));

  // The paper's motivating query: most accessed domains in a time window.
  std::printf("top 3 domains in the window:\n");
  for (const auto& [domain, hits] :
       log.TopK("url", 3, from, to)) {  // full-URL top-k
    std::printf("  %-34s %5zu hits\n", domain.c_str(), hits);
  }

  // Prefix analytics: all traffic under one domain, per window.
  const std::string site = urls.Domain(0);
  std::printf("requests to %s: morning %zu, afternoon %zu\n", site.c_str(),
              log.CountPrefix("url", site, 0, 20000),
              log.CountPrefix("url", site, from, to));

  // Conjunctive filter: 404s under the hottest domain (probe prefix index,
  // verify status column).
  const auto hits404 = log.RowsWherePrefixAndEquals(
      "url", site, "status", CellValue(uint64_t(404)), from, to);
  std::printf("404s under %s in the window: %zu rows", site.c_str(),
              hits404.size());
  if (!hits404.empty()) std::printf(" (first at row %zu)", hits404.front());
  std::printf("\n");

  // Section 5 heuristics: values covering >= 1%% of a window.
  const auto frequent = log.FrequentValues("agent", (to - from) / 100, from, to);
  std::printf("agents with >=1%% share of the window:\n");
  for (const auto& [agent, c] : frequent) {
    std::printf("  %-10s %6zu\n", agent.c_str(), c);
  }

  // Per-column compressed footprints.
  for (const auto& spec : log.schema()) {
    std::printf("column %-7s %8.2f KB\n", spec.name.c_str(),
                log.ColumnSizeInBits(spec.name) / 8e3);
  }

  // Whole-table persistence: schema + every column through the versioned
  // envelope; string columns ship their canonical static image.
  std::stringstream file;
  if (log.Save(file).ok()) {
    const auto bytes = file.str().size();
    auto reloaded = Table::Load(file);
    std::printf("round-trip: %.2f MB on disk, %zu rows reloaded, "
                "top domain still %s\n",
                bytes / 1e6, reloaded->num_rows(),
                reloaded->TopK("url", 1, from, to).front().first.c_str());
  }
  return 0;
}
