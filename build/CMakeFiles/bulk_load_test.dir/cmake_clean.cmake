file(REMOVE_RECURSE
  "CMakeFiles/bulk_load_test.dir/tests/bulk_load_test.cpp.o"
  "CMakeFiles/bulk_load_test.dir/tests/bulk_load_test.cpp.o.d"
  "bulk_load_test"
  "bulk_load_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulk_load_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
