# Empty dependencies file for bench_deamortization.
# This may be replaced when dependencies are built.
