file(REMOVE_RECURSE
  "CMakeFiles/bench_deamortization.dir/bench/bench_deamortization.cpp.o"
  "CMakeFiles/bench_deamortization.dir/bench/bench_deamortization.cpp.o.d"
  "bench_deamortization"
  "bench_deamortization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deamortization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
