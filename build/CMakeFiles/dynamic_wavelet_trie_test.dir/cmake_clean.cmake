file(REMOVE_RECURSE
  "CMakeFiles/dynamic_wavelet_trie_test.dir/tests/dynamic_wavelet_trie_test.cpp.o"
  "CMakeFiles/dynamic_wavelet_trie_test.dir/tests/dynamic_wavelet_trie_test.cpp.o.d"
  "dynamic_wavelet_trie_test"
  "dynamic_wavelet_trie_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_wavelet_trie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
