# Empty dependencies file for dynamic_wavelet_trie_test.
# This may be replaced when dependencies are built.
