file(REMOVE_RECURSE
  "CMakeFiles/deamortized_test.dir/tests/deamortized_test.cpp.o"
  "CMakeFiles/deamortized_test.dir/tests/deamortized_test.cpp.o.d"
  "deamortized_test"
  "deamortized_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deamortized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
