# Empty dependencies file for deamortized_test.
# This may be replaced when dependencies are built.
