# Empty dependencies file for example_social_graph_snapshots.
# This may be replaced when dependencies are built.
