file(REMOVE_RECURSE
  "CMakeFiles/example_social_graph_snapshots.dir/examples/social_graph_snapshots.cpp.o"
  "CMakeFiles/example_social_graph_snapshots.dir/examples/social_graph_snapshots.cpp.o.d"
  "example_social_graph_snapshots"
  "example_social_graph_snapshots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_social_graph_snapshots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
