# Empty dependencies file for bench_shapes.
# This may be replaced when dependencies are built.
