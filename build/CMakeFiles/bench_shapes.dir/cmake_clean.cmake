file(REMOVE_RECURSE
  "CMakeFiles/bench_shapes.dir/bench/bench_shapes.cpp.o"
  "CMakeFiles/bench_shapes.dir/bench/bench_shapes.cpp.o.d"
  "bench_shapes"
  "bench_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
