# Empty dependencies file for bench_appendonly_bv.
# This may be replaced when dependencies are built.
