file(REMOVE_RECURSE
  "CMakeFiles/bench_appendonly_bv.dir/bench/bench_appendonly_bv.cpp.o"
  "CMakeFiles/bench_appendonly_bv.dir/bench/bench_appendonly_bv.cpp.o.d"
  "bench_appendonly_bv"
  "bench_appendonly_bv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendonly_bv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
