file(REMOVE_RECURSE
  "CMakeFiles/example_analytics_warehouse.dir/examples/analytics_warehouse.cpp.o"
  "CMakeFiles/example_analytics_warehouse.dir/examples/analytics_warehouse.cpp.o.d"
  "example_analytics_warehouse"
  "example_analytics_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_analytics_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
