# Empty dependencies file for example_analytics_warehouse.
# This may be replaced when dependencies are built.
