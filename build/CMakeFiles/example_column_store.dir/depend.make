# Empty dependencies file for example_column_store.
# This may be replaced when dependencies are built.
