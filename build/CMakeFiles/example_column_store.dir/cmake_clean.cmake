file(REMOVE_RECURSE
  "CMakeFiles/example_column_store.dir/examples/column_store.cpp.o"
  "CMakeFiles/example_column_store.dir/examples/column_store.cpp.o.d"
  "example_column_store"
  "example_column_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_column_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
