# Empty dependencies file for example_paper_figures.
# This may be replaced when dependencies are built.
