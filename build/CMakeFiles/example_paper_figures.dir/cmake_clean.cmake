file(REMOVE_RECURSE
  "CMakeFiles/example_paper_figures.dir/examples/paper_figures.cpp.o"
  "CMakeFiles/example_paper_figures.dir/examples/paper_figures.cpp.o.d"
  "example_paper_figures"
  "example_paper_figures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_paper_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
