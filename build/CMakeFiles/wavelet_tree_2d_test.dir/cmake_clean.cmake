file(REMOVE_RECURSE
  "CMakeFiles/wavelet_tree_2d_test.dir/tests/wavelet_tree_2d_test.cpp.o"
  "CMakeFiles/wavelet_tree_2d_test.dir/tests/wavelet_tree_2d_test.cpp.o.d"
  "wavelet_tree_2d_test"
  "wavelet_tree_2d_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavelet_tree_2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
