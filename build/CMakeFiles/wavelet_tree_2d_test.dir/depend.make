# Empty dependencies file for wavelet_tree_2d_test.
# This may be replaced when dependencies are built.
