file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_time.dir/bench/bench_table1_time.cpp.o"
  "CMakeFiles/bench_table1_time.dir/bench/bench_table1_time.cpp.o.d"
  "bench_table1_time"
  "bench_table1_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
