# Empty dependencies file for bench_table1_time.
# This may be replaced when dependencies are built.
