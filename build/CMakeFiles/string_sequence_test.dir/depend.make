# Empty dependencies file for string_sequence_test.
# This may be replaced when dependencies are built.
