file(REMOVE_RECURSE
  "CMakeFiles/string_sequence_test.dir/tests/string_sequence_test.cpp.o"
  "CMakeFiles/string_sequence_test.dir/tests/string_sequence_test.cpp.o.d"
  "string_sequence_test"
  "string_sequence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_sequence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
