file(REMOVE_RECURSE
  "CMakeFiles/append_only_test.dir/tests/append_only_test.cpp.o"
  "CMakeFiles/append_only_test.dir/tests/append_only_test.cpp.o.d"
  "append_only_test"
  "append_only_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/append_only_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
