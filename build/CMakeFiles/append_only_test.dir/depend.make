# Empty dependencies file for append_only_test.
# This may be replaced when dependencies are built.
