file(REMOVE_RECURSE
  "CMakeFiles/dynamic_bv_test.dir/tests/dynamic_bv_test.cpp.o"
  "CMakeFiles/dynamic_bv_test.dir/tests/dynamic_bv_test.cpp.o.d"
  "dynamic_bv_test"
  "dynamic_bv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_bv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
