# Empty dependencies file for dynamic_bv_test.
# This may be replaced when dependencies are built.
