# Empty dependencies file for bench_range_queries.
# This may be replaced when dependencies are built.
