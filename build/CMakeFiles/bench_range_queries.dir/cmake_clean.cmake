file(REMOVE_RECURSE
  "CMakeFiles/bench_range_queries.dir/bench/bench_range_queries.cpp.o"
  "CMakeFiles/bench_range_queries.dir/bench/bench_range_queries.cpp.o.d"
  "bench_range_queries"
  "bench_range_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_range_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
