# Empty dependencies file for wavelet_trie_test.
# This may be replaced when dependencies are built.
