file(REMOVE_RECURSE
  "CMakeFiles/wavelet_trie_test.dir/tests/wavelet_trie_test.cpp.o"
  "CMakeFiles/wavelet_trie_test.dir/tests/wavelet_trie_test.cpp.o.d"
  "wavelet_trie_test"
  "wavelet_trie_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavelet_trie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
