# Empty dependencies file for example_access_log_analytics.
# This may be replaced when dependencies are built.
