file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamic_bv.dir/bench/bench_dynamic_bv.cpp.o"
  "CMakeFiles/bench_dynamic_bv.dir/bench/bench_dynamic_bv.cpp.o.d"
  "bench_dynamic_bv"
  "bench_dynamic_bv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_bv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
