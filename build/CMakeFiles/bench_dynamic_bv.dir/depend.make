# Empty dependencies file for bench_dynamic_bv.
# This may be replaced when dependencies are built.
