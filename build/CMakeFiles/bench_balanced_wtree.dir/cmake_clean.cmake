file(REMOVE_RECURSE
  "CMakeFiles/bench_balanced_wtree.dir/bench/bench_balanced_wtree.cpp.o"
  "CMakeFiles/bench_balanced_wtree.dir/bench/bench_balanced_wtree.cpp.o.d"
  "bench_balanced_wtree"
  "bench_balanced_wtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_balanced_wtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
