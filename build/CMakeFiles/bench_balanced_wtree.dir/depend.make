# Empty dependencies file for bench_balanced_wtree.
# This may be replaced when dependencies are built.
