// TextCollection: the related-work approach (2) baseline, "Dynamic Text
// Collection" [18], in its static engineered form — the string sequence is
// concatenated with separators and the concatenation is full-text indexed
// with an FM-index.
//
// Layout of the indexed symbol stream (FmIndex appends the final sentinel):
//
//   SEP d0 SEP d1 SEP ... SEP d_{n-1} SEP
//
// with SEP = 1 and document bytes mapped to b + 2, so a document equals s
// exactly where the pattern SEP enc(s) SEP occurs, and a document starts
// with prefix p exactly where SEP enc(p) occurs.
//
// The point of the baseline (paper, Related work): it is *slower* — Rank and
// Select must locate pattern occurrences through the sampled suffix array at
// O(occ) cost instead of O(h_s) — and its space tracks the k-order entropy
// of the concatenation rather than nH0(S) of the sequence, so it cannot
// exploit whole-string repetition. bench_related_work measures both claims.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bitvector/bit_vector.hpp"
#include "common/assert.hpp"
#include "text/fm_index.hpp"

namespace wt {

class TextCollection {
 public:
  TextCollection() = default;

  explicit TextCollection(const std::vector<std::string>& docs)
      : num_docs_(docs.size()) {
    std::vector<uint32_t> text;
    size_t total = 0;
    for (const auto& d : docs) total += d.size() + 1;
    text.reserve(total + 1);
    BitArray starts;  // over text positions: 1 at each SEP opening a doc
    for (const auto& d : docs) {
      starts.PushBack(true);
      text.push_back(kSep);
      for (unsigned char c : d) {
        starts.PushBack(false);
        text.push_back(uint32_t(c) + 2);
      }
    }
    starts.PushBack(true);
    text.push_back(kSep);  // closing separator for the last document
    fm_ = FmIndex(text);
    starts_ = BitVector(std::move(starts));
  }

  size_t size() const { return num_docs_; }
  bool empty() const { return num_docs_ == 0; }

  /// The document at position `idx` — extracted from the index itself (the
  /// collection keeps no plain copy).
  std::string Access(size_t idx) const {
    WT_ASSERT(idx < num_docs_);
    const size_t begin = starts_.Select1(idx) + 1;  // skip the opening SEP
    const size_t end = starts_.Select1(idx + 1);
    const auto symbols = fm_.Extract(begin, end - begin);
    std::string out;
    out.reserve(symbols.size());
    for (uint32_t c : symbols) {
      WT_ASSERT_MSG(c >= 2, "TextCollection: separator inside a document");
      out.push_back(static_cast<char>(c - 2));
    }
    return out;
  }

  /// Total number of documents equal to `s`: one backward search.
  size_t Count(std::string_view s) const {
    if (num_docs_ == 0) return 0;
    return fm_.Count(ExactPattern(s));
  }

  /// Documents equal to `s` among the first `pos`: requires locating every
  /// occurrence — the O(occ) cost the paper points out.
  size_t Rank(std::string_view s, size_t pos) const {
    WT_ASSERT(pos <= num_docs_);
    size_t c = 0;
    for (size_t text_pos : fm_.Locate(ExactPattern(s))) {
      c += DocOf(text_pos) < pos;
    }
    return c;
  }

  /// Position of the (idx+1)-th document equal to `s`.
  std::optional<size_t> Select(std::string_view s, size_t idx) const {
    std::vector<size_t> doc_ids = MatchingDocs(ExactPattern(s));
    if (idx >= doc_ids.size()) return std::nullopt;
    return doc_ids[idx];
  }

  /// Documents whose content starts with `p`, in the whole collection.
  size_t CountPrefix(std::string_view p) const {
    if (num_docs_ == 0) return 0;
    // The empty prefix's pattern [SEP] would also match the closing SEP.
    if (p.empty()) return num_docs_;
    return fm_.Count(PrefixPattern(p));
  }

  size_t RankPrefix(std::string_view p, size_t pos) const {
    WT_ASSERT(pos <= num_docs_);
    size_t c = 0;
    for (size_t text_pos : fm_.Locate(PrefixPattern(p))) {
      c += DocOf(text_pos) < pos;
    }
    return c;
  }

  std::optional<size_t> SelectPrefix(std::string_view p, size_t idx) const {
    std::vector<size_t> doc_ids = MatchingDocs(PrefixPattern(p));
    if (idx >= doc_ids.size()) return std::nullopt;
    return doc_ids[idx];
  }

  /// Bonus the other representations lack: substring search *within*
  /// documents. Returns doc ids containing `needle`, deduplicated.
  std::vector<size_t> DocsContaining(std::string_view needle) const {
    std::vector<uint32_t> pat;
    pat.reserve(needle.size());
    for (unsigned char c : needle) pat.push_back(uint32_t(c) + 2);
    std::vector<size_t> docs = MatchingDocs(pat);
    docs.erase(std::unique(docs.begin(), docs.end()), docs.end());
    return docs;
  }

  size_t SizeInBits() const {
    return fm_.SizeInBits() + starts_.SizeInBits() + 8 * sizeof(*this);
  }

  const FmIndex& fm() const { return fm_; }

 private:
  static constexpr uint32_t kSep = 1;

  static std::vector<uint32_t> PrefixPattern(std::string_view p) {
    std::vector<uint32_t> pat;
    pat.reserve(p.size() + 1);
    pat.push_back(kSep);
    for (unsigned char c : p) pat.push_back(uint32_t(c) + 2);
    return pat;
  }

  static std::vector<uint32_t> ExactPattern(std::string_view s) {
    std::vector<uint32_t> pat = PrefixPattern(s);
    pat.push_back(kSep);
    return pat;
  }

  /// The document whose body (or opening SEP) covers text position `pos`.
  size_t DocOf(size_t pos) const { return starts_.Rank1(pos + 1) - 1; }

  /// Sorted document ids of all occurrences of `pat` (one per occurrence).
  std::vector<size_t> MatchingDocs(const std::vector<uint32_t>& pat) const {
    std::vector<size_t> docs;
    if (num_docs_ == 0) return docs;
    for (size_t text_pos : fm_.Locate(pat)) {
      const size_t d = DocOf(text_pos);
      if (d < num_docs_) docs.push_back(d);  // drop the closing-SEP match
    }
    std::sort(docs.begin(), docs.end());
    return docs;
  }

  size_t num_docs_ = 0;
  FmIndex fm_;
  BitVector starts_;
};

}  // namespace wt
