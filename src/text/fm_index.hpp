// FM-index: compressed full-text index with backward search — the engine of
// the related-work approach (2) baseline (Dynamic Text Collection [18]).
//
// Composition:
//   * suffix array + BWT from text/suffix_array.hpp;
//   * the BWT sequence stored in a HuffmanWaveletTree, i.e. a Wavelet Trie
//     on Huffman codewords with RRR-compressed node bitvectors. RRR on the
//     run-clustered BWT is what gives the index its k-th order entropy
//     compression (the "only compresses according to the k-order entropy of
//     the string" the paper contrasts with the Wavelet Trie's nH0(S) over
//     whole strings);
//   * C[] symbol-prefix counts for backward search;
//   * sampled SA (every kSampleRate-th text position) for Locate, and
//     sampled ISA for Extract.
//
// Symbols are uint32 values >= 1; value 0 is reserved for the internal
// sentinel appended at construction. Count/Locate take patterns over the
// same symbol space.
#pragma once

#include <algorithm>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string_view>
#include <vector>

#include "bitvector/bit_vector.hpp"
#include "common/assert.hpp"
#include "common/serialize.hpp"
#include "core/huffman_wavelet_tree.hpp"
#include "text/suffix_array.hpp"

namespace wt {

class FmIndex {
 public:
  /// Every kSampleRate-th text position keeps its SA/ISA sample: Locate and
  /// Extract pay O(kSampleRate) LF steps against ~2n/kSampleRate * log n
  /// sample bits.
  static constexpr size_t kSampleRate = 32;

  FmIndex() = default;

  /// Indexes `text` (symbols >= 1; 0 is reserved). The sentinel is appended
  /// internally, so size() == text.size().
  explicit FmIndex(const std::vector<uint32_t>& text) {
    for (uint32_t c : text) WT_ASSERT_MSG(c != 0, "FmIndex: symbol 0 is reserved");
    std::vector<uint32_t> t(text);
    t.push_back(0);  // unique smallest sentinel
    n_ = t.size();
    const std::vector<uint32_t> sa = BuildSuffixArray(t);
    const std::vector<uint32_t> bwt32 = BuildBwt(t, sa);

    // C[c] = number of text symbols strictly smaller than c.
    uint32_t max_sym = 0;
    for (uint32_t c : t) max_sym = std::max(max_sym, c);
    c_.assign(size_t(max_sym) + 2, 0);
    for (uint32_t c : t) ++c_[c + 1];
    for (size_t i = 1; i < c_.size(); ++i) c_[i] += c_[i - 1];

    // BWT sequence in a Huffman-shaped Wavelet Trie (RRR bitvectors).
    std::vector<uint64_t> bwt64(bwt32.begin(), bwt32.end());
    bwt_ = HuffmanWaveletTree(bwt64);

    // SA samples at text positions that are multiples of kSampleRate, plus
    // an ISA sample for every such position and for the last position.
    BitArray sampled(n_, false);
    std::vector<uint32_t> sa_vals;
    isa_samples_.assign(n_ / kSampleRate + 1, 0);
    for (size_t row = 0; row < n_; ++row) {
      if (sa[row] % kSampleRate == 0) {
        sampled.Set(row, true);
        isa_samples_[sa[row] / kSampleRate] = static_cast<uint32_t>(row);
      }
    }
    for (size_t row = 0; row < n_; ++row) {
      if (sampled.Get(row)) sa_vals.push_back(sa[row]);
    }
    sampled_ = BitVector(std::move(sampled));
    sa_samples_ = std::move(sa_vals);
    isa_last_ = InverseSuffixArray(sa)[n_ - 1];
  }

  /// Convenience: index a byte string (bytes are mapped to byte value + 1).
  static FmIndex FromString(std::string_view text) {
    return FmIndex(MapBytes(text));
  }

  /// Original text length (without the sentinel).
  size_t size() const { return n_ == 0 ? 0 : n_ - 1; }
  bool empty() const { return size() == 0; }

  /// Number of occurrences of `pattern` in the text (overlapping). The empty
  /// pattern matches before every position and at the end: size() + 1.
  size_t Count(const std::vector<uint32_t>& pattern) const {
    const auto [lo, hi] = BackwardSearch(pattern);
    return hi - lo;
  }

  size_t CountString(std::string_view pattern) const {
    return Count(MapBytes(pattern));
  }

  /// All start positions of `pattern`, in increasing order.
  /// O(occ * kSampleRate) LF steps after the backward search.
  std::vector<size_t> Locate(const std::vector<uint32_t>& pattern) const {
    const auto [lo, hi] = BackwardSearch(pattern);
    std::vector<size_t> out;
    out.reserve(hi - lo);
    for (size_t row = lo; row < hi; ++row) out.push_back(PositionOfRow(row));
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<size_t> LocateString(std::string_view pattern) const {
    return Locate(MapBytes(pattern));
  }

  /// The text symbols in [start, start + len). O(len + kSampleRate) LF steps.
  std::vector<uint32_t> Extract(size_t start, size_t len) const {
    WT_ASSERT(start + len <= size());
    if (len == 0) return {};
    // Walk the LF chain backwards from the nearest sampled position at or
    // after start + len (or from the sentinel row for the text end).
    size_t anchor = (start + len + kSampleRate - 1) / kSampleRate * kSampleRate;
    size_t row;
    if (anchor >= n_ - 1) {
      anchor = n_ - 1;  // position of the sentinel
      row = isa_last_;
    } else {
      row = isa_samples_[anchor / kSampleRate];
    }
    // bwt[row] is the symbol at text position anchor - 1.
    std::vector<uint32_t> out(len);
    size_t pos = anchor;
    while (pos > start) {
      const uint32_t c = static_cast<uint32_t>(bwt_.Access(row));
      --pos;
      if (pos < start + len) out[pos - start] = c;
      row = Lf(row, c);
    }
    return out;
  }

  std::string ExtractString(size_t start, size_t len) const {
    std::string out;
    for (uint32_t c : Extract(start, len)) {
      WT_ASSERT_MSG(c >= 1 && c <= 256, "ExtractString: non-byte symbol");
      out.push_back(static_cast<char>(c - 1));
    }
    return out;
  }

  void Save(std::ostream& out) const {
    WritePod<uint64_t>(out, kMagic);
    WritePod<uint64_t>(out, n_);
    if (n_ == 0) return;
    WriteVec(out, c_);
    bwt_.Save(out);
    sampled_.Save(out);
    WriteVec(out, sa_samples_);
    WriteVec(out, isa_samples_);
    WritePod<uint64_t>(out, isa_last_);
  }

  void Load(std::istream& in) {
    WT_ASSERT_MSG(ReadPod<uint64_t>(in) == kMagic, "FmIndex: bad magic");
    n_ = ReadPod<uint64_t>(in);
    if (n_ == 0) return;
    c_ = ReadVec<uint64_t>(in);
    bwt_.Load(in);
    sampled_.Load(in);
    sa_samples_ = ReadVec<uint32_t>(in);
    isa_samples_ = ReadVec<uint32_t>(in);
    isa_last_ = ReadPod<uint64_t>(in);
  }

  size_t SizeInBits() const {
    return bwt_.SizeInBits() + sampled_.SizeInBits() + 64 * c_.capacity() +
           32 * (sa_samples_.capacity() + isa_samples_.capacity()) +
           8 * sizeof(*this);
  }

  const HuffmanWaveletTree& bwt() const { return bwt_; }

 private:
  static constexpr uint64_t kMagic = 0x464D494E44455831ull;  // "FMINDEX1"

  static std::vector<uint32_t> MapBytes(std::string_view s) {
    std::vector<uint32_t> out;
    out.reserve(s.size());
    for (unsigned char c : s) out.push_back(uint32_t(c) + 1);
    return out;
  }

  /// The half-open BWT row interval of suffixes prefixed by `pattern`.
  std::pair<size_t, size_t> BackwardSearch(
      const std::vector<uint32_t>& pattern) const {
    size_t lo = 0, hi = n_;
    for (size_t j = pattern.size(); j-- > 0;) {
      const uint32_t c = pattern[j];
      if (c + 1 >= c_.size()) return {0, 0};  // symbol absent from the text
      lo = c_[c] + bwt_.Rank(c, lo);
      hi = c_[c] + bwt_.Rank(c, hi);
      if (lo >= hi) return {0, 0};
    }
    return {lo, hi};
  }

  size_t Lf(size_t row, uint32_t c) const {
    return c_[c] + bwt_.Rank(c, row);
  }

  /// Text position of the suffix at BWT row `row`, via LF steps to the
  /// nearest sampled row.
  size_t PositionOfRow(size_t row) const {
    size_t steps = 0;
    while (!sampled_.Get(row)) {
      const uint32_t c = static_cast<uint32_t>(bwt_.Access(row));
      row = Lf(row, c);
      ++steps;
    }
    return sa_samples_[sampled_.Rank1(row)] + steps;
  }

  size_t n_ = 0;                       // text length including the sentinel
  std::vector<uint64_t> c_;            // C[c]: #symbols < c
  HuffmanWaveletTree bwt_;             // BWT in a compressed wavelet trie
  BitVector sampled_;                  // rows whose SA value is sampled
  std::vector<uint32_t> sa_samples_;   // SA values at sampled rows, row order
  std::vector<uint32_t> isa_samples_;  // row of suffix at position k*rate
  uint64_t isa_last_ = 0;              // row of the sentinel suffix's pred
};

}  // namespace wt
