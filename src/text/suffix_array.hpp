// Suffix array, Burrows-Wheeler transform and LCP array over an integer
// symbol alphabet — the text-indexing substrate behind the related-work
// approach (2) baseline ("Dynamic Text Collection" [18]): concatenate the
// string sequence, compress and full-text index the result. text/fm_index.hpp
// builds the FM-index on top of these.
//
// Construction is Manber-Myers prefix doubling with radix-free comparison
// sorting: O(n log^2 n) time, O(n) extra words. For the corpus sizes the
// benchmarks use (<= a few MB) this is comfortably fast and has no tricky
// corner cases; the asymptotically optimal SA-IS construction is a drop-in
// replacement behind the same free function if ever needed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/assert.hpp"

namespace wt {

/// Builds the suffix array of `text`: sa[k] is the start position of the
/// k-th smallest suffix. The caller must terminate the text with a unique
/// smallest symbol (a sentinel) for the classical prefix-free suffix order;
/// the function itself works for any input, comparing suffixes as plain
/// sequences (shorter prefix-suffix sorts first).
inline std::vector<uint32_t> BuildSuffixArray(const std::vector<uint32_t>& text) {
  const size_t n = text.size();
  std::vector<uint32_t> sa(n);
  std::iota(sa.begin(), sa.end(), 0);
  if (n <= 1) return sa;

  std::vector<uint32_t> rank(text.begin(), text.end());
  std::vector<uint32_t> next_rank(n);
  for (size_t k = 1;; k *= 2) {
    // Order by (rank[i], rank[i+k]), with out-of-range treated as smallest.
    const auto key = [&](uint32_t i) {
      const uint64_t hi = uint64_t(rank[i]) + 1;  // +1 so 0 means "past end"
      const uint64_t lo = (i + k < n) ? uint64_t(rank[i + k]) + 1 : 0;
      return (hi << 32) | lo;
    };
    std::sort(sa.begin(), sa.end(),
              [&](uint32_t a, uint32_t b) { return key(a) < key(b); });
    next_rank[sa[0]] = 0;
    for (size_t i = 1; i < n; ++i) {
      next_rank[sa[i]] =
          next_rank[sa[i - 1]] + (key(sa[i - 1]) < key(sa[i]) ? 1 : 0);
    }
    rank.swap(next_rank);
    if (rank[sa[n - 1]] == n - 1) break;  // all ranks distinct
  }
  return sa;
}

/// Inverse permutation: isa[sa[k]] = k.
inline std::vector<uint32_t> InverseSuffixArray(const std::vector<uint32_t>& sa) {
  std::vector<uint32_t> isa(sa.size());
  for (size_t k = 0; k < sa.size(); ++k) isa[sa[k]] = static_cast<uint32_t>(k);
  return isa;
}

/// Burrows-Wheeler transform: bwt[k] = text[sa[k] - 1], cyclically.
inline std::vector<uint32_t> BuildBwt(const std::vector<uint32_t>& text,
                                      const std::vector<uint32_t>& sa) {
  WT_ASSERT(text.size() == sa.size());
  const size_t n = text.size();
  std::vector<uint32_t> bwt(n);
  for (size_t k = 0; k < n; ++k) {
    bwt[k] = sa[k] == 0 ? text[n - 1] : text[sa[k] - 1];
  }
  return bwt;
}

/// Kasai's algorithm: lcp[k] = longest common prefix of the suffixes at
/// sa[k] and sa[k+1], for k in [0, n-1). O(n) time.
inline std::vector<uint32_t> BuildLcpArray(const std::vector<uint32_t>& text,
                                           const std::vector<uint32_t>& sa) {
  const size_t n = text.size();
  WT_ASSERT(sa.size() == n);
  if (n == 0) return {};
  const std::vector<uint32_t> isa = InverseSuffixArray(sa);
  std::vector<uint32_t> lcp(n == 0 ? 0 : n - 1, 0);
  size_t h = 0;
  for (size_t i = 0; i < n; ++i) {
    if (isa[i] + 1 == n) {
      h = 0;
      continue;
    }
    const size_t j = sa[isa[i] + 1];
    while (i + h < n && j + h < n && text[i + h] == text[j + h]) ++h;
    lcp[isa[i]] = static_cast<uint32_t>(h);
    if (h > 0) --h;
  }
  return lcp;
}

}  // namespace wt
