// Dynamic Patricia trie over a prefix-free set of binary strings
// (paper Lemma 4.1 / Appendix B).
//
// Pointer-based nodes, each owning its label bits. Splitting a label
// gamma·b·delta into gamma (new internal) and delta (surviving node)
// conserves total label length |L|, so the space matches Appendix B without
// shared-suffix pointers (DESIGN.md #3.7). Costs: Insert O(|s|), Delete
// O(max string length) — the label concatenation on merge — Search O(|s|).
//
// This standalone class is the set-dictionary substrate; the wavelet tries
// embed the same trie logic with per-node bitvector payloads.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "common/assert.hpp"
#include "common/bit_string.hpp"

namespace wt {

class PatriciaTrie {
 public:
  PatriciaTrie() = default;
  ~PatriciaTrie() { Free(root_); }

  PatriciaTrie(const PatriciaTrie&) = delete;
  PatriciaTrie& operator=(const PatriciaTrie&) = delete;
  PatriciaTrie(PatriciaTrie&& o) noexcept
      : root_(o.root_), size_(o.size_), label_bits_(o.label_bits_) {
    o.root_ = nullptr;
    o.size_ = 0;
    o.label_bits_ = 0;
  }

  /// Inserts `s`. Returns false if already present. Aborts if `s` violates
  /// prefix-freeness (is a proper prefix of a stored string or vice versa) —
  /// callers encode strings with a prefix-free codec (core/codec.hpp).
  bool Insert(BitSpan s) {
    if (root_ == nullptr) {
      root_ = new Node{BitString::FromSpan(s), {nullptr, nullptr}};
      label_bits_ += s.size();
      ++size_;
      return true;
    }
    Node* node = root_;
    size_t depth = 0;  // bits of s consumed so far
    for (;;) {
      const BitSpan rest = s.SubSpan(depth);
      const size_t lcp = rest.Lcp(node->label.Span());
      if (lcp < node->label.size()) {
        // Mismatch inside the label (or s exhausted inside it).
        WT_ASSERT_MSG(depth + lcp < s.size(),
                      "PatriciaTrie: insert would break prefix-freeness");
        SplitNode(node, lcp, rest);
        ++size_;
        return true;
      }
      depth += lcp;
      if (node->IsLeaf()) {
        WT_ASSERT_MSG(depth == s.size(),
                      "PatriciaTrie: insert would break prefix-freeness");
        return false;  // already present
      }
      WT_ASSERT_MSG(depth < s.size(),
                    "PatriciaTrie: insert would break prefix-freeness");
      node = node->child[s.Get(depth)];
      ++depth;  // branch bit consumed
    }
  }

  bool Contains(BitSpan s) const {
    const Node* node = root_;
    size_t depth = 0;
    while (node != nullptr) {
      const BitSpan rest = s.SubSpan(depth);
      const size_t lcp = rest.Lcp(node->label.Span());
      if (lcp < node->label.size()) return false;
      depth += lcp;
      if (node->IsLeaf()) return depth == s.size();
      if (depth >= s.size()) return false;
      node = node->child[s.Get(depth)];
      ++depth;
    }
    return false;
  }

  /// Removes `s`; returns false if not present. O(max stored string length)
  /// because the sibling's label is re-concatenated (Appendix B).
  bool Erase(BitSpan s) {
    Node* node = root_;
    Node* parent = nullptr;
    Node* grandparent = nullptr;
    bool parent_branch = false, grand_branch = false;
    size_t depth = 0;
    while (node != nullptr) {
      const BitSpan rest = s.SubSpan(depth);
      const size_t lcp = rest.Lcp(node->label.Span());
      if (lcp < node->label.size()) return false;
      depth += lcp;
      if (node->IsLeaf()) {
        if (depth != s.size()) return false;
        RemoveLeaf(node, parent, grandparent, parent_branch, grand_branch);
        --size_;
        return true;
      }
      if (depth >= s.size()) return false;
      grandparent = parent;
      grand_branch = parent_branch;
      parent = node;
      parent_branch = s.Get(depth);
      node = node->child[parent_branch];
      ++depth;
    }
    return false;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Total label bits |L| (Theorem 3.6's L).
  size_t LabelBits() const { return label_bits_; }
  /// Number of trie nodes (2|Sset| - 1 for |Sset| >= 1).
  size_t NumNodes() const { return size_ == 0 ? 0 : 2 * size_ - 1; }

  /// Enumerates the stored strings in lexicographic order.
  void ForEach(const std::function<void(const BitString&)>& fn) const {
    BitString prefix;
    Walk(root_, &prefix, fn);
  }

  size_t SizeInBits() const { return NodeBits(root_); }

 private:
  struct Node {
    BitString label;
    Node* child[2];  // both null for leaves
    bool IsLeaf() const { return child[0] == nullptr; }
  };

  // Splits `node` at label offset `lcp`; `rest` is the not-yet-consumed part
  // of the inserted string (rest starts with the lcp bits that match).
  void SplitNode(Node* node, size_t lcp, BitSpan rest) {
    // Old node keeps label[lcp+1..]; new internal keeps label[0..lcp).
    // The discriminating bits label[lcp] / rest[lcp] become child indices.
    const bool old_bit = node->label.Get(lcp);
    auto* old_half = new Node{
        BitString::FromSpan(node->label.SubSpan(lcp + 1)), {nullptr, nullptr}};
    old_half->child[0] = node->child[0];
    old_half->child[1] = node->child[1];
    auto* new_leaf = new Node{
        BitString::FromSpan(rest.SubSpan(lcp + 1)), {nullptr, nullptr}};
    // Label accounting: the split consumes one stored bit (the old label's
    // branch bit becomes implicit; the new string's branch bit was never
    // stored) and adds the new leaf's label.
    label_bits_ -= 1;
    label_bits_ += new_leaf->label.size();
    node->label.Truncate(lcp);
    node->child[old_bit] = old_half;
    node->child[!old_bit] = new_leaf;
  }

  void RemoveLeaf(Node* leaf, Node* parent, Node* grandparent,
                  bool parent_branch, bool grand_branch) {
    if (parent == nullptr) {  // removing the last string
      label_bits_ -= leaf->label.size();
      delete leaf;
      root_ = nullptr;
      return;
    }
    Node* sibling = parent->child[!parent_branch];
    // Merged label: parent.label + sibling_branch_bit + sibling.label.
    BitString merged = parent->label;
    merged.PushBack(!parent_branch);
    merged.Append(sibling->label);
    // The sibling's branch bit becomes an explicit label bit again; the
    // removed leaf's label (and its implicit branch bit) disappear.
    label_bits_ += 1;
    label_bits_ -= leaf->label.size();
    sibling->label = std::move(merged);
    if (grandparent == nullptr) {
      root_ = sibling;
    } else {
      grandparent->child[grand_branch] = sibling;
    }
    delete leaf;
    delete parent;
  }

  static void Walk(const Node* node, BitString* prefix,
                   const std::function<void(const BitString&)>& fn) {
    if (node == nullptr) return;
    const size_t mark = prefix->size();
    prefix->Append(node->label);
    if (node->IsLeaf()) {
      fn(*prefix);
    } else {
      prefix->PushBack(false);
      Walk(node->child[0], prefix, fn);
      prefix->Truncate(mark + node->label.size());  // rewind the branch bit
      prefix->PushBack(true);
      Walk(node->child[1], prefix, fn);
    }
    prefix->Truncate(mark);
  }

  static void Free(Node* node) {
    if (node == nullptr) return;
    Free(node->child[0]);
    Free(node->child[1]);
    delete node;
  }

  static size_t NodeBits(const Node* node) {
    if (node == nullptr) return 0;
    return 8 * sizeof(Node) + node->label.SizeInBits() +
           NodeBits(node->child[0]) + NodeBits(node->child[1]);
  }

  Node* root_ = nullptr;
  size_t size_ = 0;
  size_t label_bits_ = 0;
};

}  // namespace wt
