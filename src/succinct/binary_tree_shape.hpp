// Succinct shape of a *full* binary tree (every node has 0 or 2 children),
// stored as its preorder bitmap: bit v is 1 if node v is internal, 0 if it
// is a leaf.
//
// This carries the same information as the paper's DFUDS encoding of the
// first-child/next-sibling transform (Section 3): 1 bit per node plus
// o(n)-style directories. Navigation:
//   LeftChild(v)  = v + 1                                  (preorder)
//   RightChild(v) = Close(v + 1) + 1
// where Close(u) — the last node of u's subtree — is an excess search:
// weighting internal nodes +1 and leaves -1, Close(u) is the smallest j >= u
// with excess(u..j) = -1. The search uses a range-min (RMM) segment tree
// over 512-bit blocks, O(log n) worst case and one block scan in practice —
// the standard engineering substitute for O(1) balanced-parentheses
// directories (cf. sdsl bp_support_sada); see DESIGN.md #3.5.
//
// InternalRank/LeafRank (for indexing per-node payloads) reuse BitVector's
// O(1) rank.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "bitvector/bit_vector.hpp"
#include "common/assert.hpp"
#include "common/bit_array.hpp"
#include "common/bits.hpp"
#include "storage/image.hpp"
#include "storage/vec.hpp"

namespace wt {

namespace shape_internal {

// Per-byte excess tables, LSB-first bit order (bit 0 is visited first).
// excess = (#1s - #0s); min_excess = minimum running excess over prefixes.
struct ByteExcessTables {
  std::array<int8_t, 256> total{};
  std::array<int8_t, 256> min{};
};

constexpr ByteExcessTables MakeByteExcessTables() {
  ByteExcessTables t{};
  for (int b = 0; b < 256; ++b) {
    int run = 0, mn = 127;
    for (int i = 0; i < 8; ++i) {
      run += (b >> i) & 1 ? 1 : -1;
      if (run < mn) mn = run;
    }
    t.total[b] = static_cast<int8_t>(run);
    t.min[b] = static_cast<int8_t>(mn);
  }
  return t;
}

inline constexpr ByteExcessTables kByteExcess = MakeByteExcessTables();

}  // namespace shape_internal

class BinaryTreeShape {
 public:
  static constexpr size_t kBlockBits = 512;

  BinaryTreeShape() = default;

  /// `preorder`: 1 = internal, 0 = leaf, in preorder. Must describe a full
  /// binary tree (k internal nodes, k+1 leaves) or be empty.
  explicit BinaryTreeShape(BitArray preorder) : bits_(std::move(preorder)) {
    BuildDirectory();
  }

  size_t NumNodes() const { return bits_.size(); }
  size_t NumInternal() const { return bits_.num_ones(); }
  size_t NumLeaves() const { return bits_.size() - bits_.num_ones(); }

  bool IsInternal(size_t v) const { return bits_.Get(v); }
  size_t LeftChild(size_t v) const {
    WT_DASSERT(IsInternal(v));
    return v + 1;
  }
  size_t RightChild(size_t v) const {
    WT_DASSERT(IsInternal(v));
    return Close(v + 1) + 1;
  }

  /// Index of the last node of v's subtree (v itself if v is a leaf).
  size_t Close(size_t v) const {
    WT_DASSERT(v < bits_.size());
    return ForwardSearch(v, -1);
  }

  size_t SubtreeSize(size_t v) const { return Close(v) - v + 1; }

  /// Number of internal nodes before v in preorder (payload index of v).
  size_t InternalRank(size_t v) const { return bits_.Rank1(v); }
  /// Number of leaves before v in preorder.
  size_t LeafRank(size_t v) const { return bits_.Rank0(v); }

  void Save(std::ostream& out) const { bits_.Save(out); }
  void Load(std::istream& in) {
    bits_.Load(in);
    seg_tot_.clear();
    seg_min_.clear();
    BuildDirectory();
  }

  /// v4 flat image: the preorder bitmap (with its rank directory) and the
  /// excess segment tree are persisted; load borrows both.
  void SaveImage(storage::ImageWriter& w) const {
    bits_.SaveImage(w);
    WT_DASSERT(seg_tot_.size() == 2 * seg_leaves_ &&
               seg_min_.size() == 2 * seg_leaves_);
    w.Array(seg_tot_.data(), seg_tot_.size());
    w.Array(seg_min_.data(), seg_min_.size());
  }
  bool LoadImage(storage::ImageReader& r) {
    if (!bits_.LoadImage(r)) return false;
    const size_t n = bits_.size();
    const size_t blocks = (n + kBlockBits - 1) / kBlockBits;
    const size_t leaves =
        blocks == 0 ? 0 : size_t(1) << CeilLog2(std::max<size_t>(blocks, 1));
    const int32_t* tot = nullptr;
    const int32_t* mn = nullptr;
    if (!r.Array(&tot, 2 * leaves) || !r.Array(&mn, 2 * leaves)) return false;
    num_blocks_ = blocks;
    seg_leaves_ = leaves;
    seg_tot_ = storage::Vec<int32_t>::Borrow(tot, 2 * leaves);
    seg_min_ = storage::Vec<int32_t>::Borrow(mn, 2 * leaves);
    return true;
  }

  size_t SizeInBits() const {
    return bits_.SizeInBits() + 32 * (seg_tot_.capacity() + seg_min_.capacity());
  }

 private:
  // Smallest j >= from with excess(from..j) == target (target < 0).
  size_t ForwardSearch(size_t from, int target) const {
    const uint64_t* words = bits_.bits().data();
    const size_t n = bits_.size();
    const size_t from_block = from / kBlockBits;
    int need = target;
    // 1. Scan the remainder of from's block.
    {
      const size_t block_end = std::min(n, (from_block + 1) * kBlockBits);
      const size_t found = ScanRange(words, from, block_end, need);
      if (found != kNotFound) return found;
    }
    if (num_blocks_ <= from_block + 1) {
      WT_ASSERT_MSG(false, "BinaryTreeShape: malformed tree (no close)");
    }
    // 2. Find the first later block whose internal min excess reaches `need`
    //    (need has been updated by ScanRange to be relative to the block
    //    start), via the segment tree.
    const size_t b = SegFind(from_block + 1, need);
    WT_ASSERT_MSG(b != kNotFound, "BinaryTreeShape: malformed tree (no close)");
    // 3. Scan the found block.
    const size_t begin = b * kBlockBits;
    const size_t block_end = std::min(n, begin + kBlockBits);
    const size_t found = ScanRange(words, begin, block_end, need);
    WT_ASSERT(found != kNotFound);
    return found;
  }

  static constexpr size_t kNotFound = static_cast<size_t>(-1);

  // Scans bits [from, end); if the running excess hits `need`, returns the
  // position. Otherwise returns kNotFound and decrements `need` by the range
  // excess (so it stays "remaining target relative to `end`").
  static size_t ScanRange(const uint64_t* words, size_t from, size_t end,
                          int& need) {
    using shape_internal::kByteExcess;
    size_t i = from;
    while (i < end) {
      const size_t chunk = std::min<size_t>(64 - (i % 64), end - i);
      uint64_t w = LoadBits(words, i, chunk);
      // Byte-at-a-time with the min-excess table; bit-at-a-time within the
      // byte that must contain the hit.
      size_t done = 0;
      while (done < chunk) {
        const size_t blen = std::min<size_t>(8, chunk - done);
        const uint8_t byte = static_cast<uint8_t>(w & 0xFF);
        if (blen == 8 && kByteExcess.min[byte] > need) {
          need -= kByteExcess.total[byte];
          w >>= 8;
          done += 8;
          continue;
        }
        for (size_t j = 0; j < blen; ++j) {
          need -= (byte >> j) & 1 ? 1 : -1;
          if (need == 0) return i + done + j;
        }
        w >>= blen;
        done += blen;
      }
      i += chunk;
    }
    return kNotFound;
  }

  // First block >= from_block whose internal prefix excess reaches `need`;
  // on success `need` is made relative to that block's start. kNotFound
  // otherwise.
  size_t SegFind(size_t from_block, int& need) const {
    if (from_block >= num_blocks_) return kNotFound;
    // Walk leaves of the implicit segment tree from `from_block`, using
    // subtree aggregates to skip. Simple two-phase: ascend right-looking,
    // then descend.
    size_t node = seg_leaves_ + from_block;
    // Check this leaf directly first.
    if (seg_min_[node] <= need) return DescendSeg(node, need);
    need -= seg_tot_[node];
    // Ascend: whenever we are a left child, test the right sibling subtree.
    while (node > 1) {
      const bool is_left = (node % 2 == 0);
      node /= 2;
      if (is_left) {
        const size_t right = 2 * node + 1;
        if (seg_min_[right] <= need) return DescendSeg(right, need);
        need -= seg_tot_[right];
      }
    }
    return kNotFound;
  }

  // Descends to the first leaf in `node`'s subtree where the prefix excess
  // reaches need; adjusts need to be relative to that leaf's block start.
  size_t DescendSeg(size_t node, int& need) const {
    while (node < seg_leaves_) {
      const size_t l = 2 * node, r = 2 * node + 1;
      if (seg_min_[l] <= need) {
        node = l;
      } else {
        need -= seg_tot_[l];
        node = r;
      }
    }
    return node - seg_leaves_;
  }

  void BuildDirectory() {
    using shape_internal::kByteExcess;
    const size_t n = bits_.size();
    num_blocks_ = (n + kBlockBits - 1) / kBlockBits;
    if (num_blocks_ == 0) return;
    seg_leaves_ = size_t(1) << CeilLog2(std::max<size_t>(num_blocks_, 1));
    seg_tot_.assign(2 * seg_leaves_, 0);
    // Empty padding blocks: total 0, min "+inf" so they never match.
    seg_min_.assign(2 * seg_leaves_, INT32_MAX / 2);
    const uint64_t* words = bits_.bits().data();
    for (size_t b = 0; b < num_blocks_; ++b) {
      const size_t begin = b * kBlockBits;
      const size_t end = std::min(n, begin + kBlockBits);
      int run = 0, mn = INT32_MAX / 2;
      for (size_t i = begin; i < end; i += 8) {
        const size_t blen = std::min<size_t>(8, end - i);
        const uint8_t byte = static_cast<uint8_t>(LoadBits(words, i, blen));
        if (blen == 8) {
          if (run + kByteExcess.min[byte] < mn) mn = run + kByteExcess.min[byte];
          run += kByteExcess.total[byte];
        } else {
          for (size_t j = 0; j < blen; ++j) {
            run += (byte >> j) & 1 ? 1 : -1;
            if (run < mn) mn = run;
          }
        }
      }
      seg_tot_[seg_leaves_ + b] = run;
      seg_min_[seg_leaves_ + b] = mn;
    }
    for (size_t node = seg_leaves_ - 1; node >= 1; --node) {
      const size_t l = 2 * node, r = 2 * node + 1;
      seg_tot_[node] = seg_tot_[l] + seg_tot_[r];
      seg_min_[node] = std::min(seg_min_[l], seg_tot_[l] + seg_min_[r]);
    }
  }

  BitVector bits_;
  size_t num_blocks_ = 0;
  size_t seg_leaves_ = 0;
  storage::Vec<int32_t> seg_tot_;
  storage::Vec<int32_t> seg_min_;
};

}  // namespace wt
