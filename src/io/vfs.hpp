// Virtual filesystem seam for every durability path (DESIGN.md #9).
//
// The engine promises crash-atomic batches and a store that always reopens,
// but those claims are only as good as the code's behavior under ENOSPC,
// EIO, short writes, torn pages, and power loss at *every* syscall — none
// of which a real filesystem will produce on demand. This header puts one
// minimal seam under all of it:
//
//   * `Vfs` — open/append/fsync/fsync-dir/rename/remove/read/list/map. The
//     durability layers (engine/wal.hpp, engine/manifest.hpp, the engine's
//     SaveSegment/orphan scan, storage/pager.hpp via `BlobSource`) perform
//     file I/O exclusively through it.
//   * `RealVfs` — the production implementation: the exact syscalls the
//     code made before the seam existed, plus checked fwrite/fclose
//     returns and real fsync/fsync-dir. Stateless singleton; zero overhead
//     on hot paths (reads are mapped once at open, never per-query).
//   * `FaultVfs` — a deterministic, fully in-memory filesystem for tests:
//     fail the N-th operation with an errno-style error, tear the tail of
//     a write, or simulate power loss. Every file tracks its *synced*
//     prefix (committed by Fsync) separately from its current content, and
//     the namespace (which names exist, what they point at) tracks which
//     creations/renames/removes a directory fsync has committed. At a
//     chosen operation index the "power fails": every later operation
//     returns an error, and `CrashFiles()` reconstructs the possible
//     post-crash disk states — metadata journaled eagerly or only at
//     fsync-dir, unsynced data dropped / torn / fully present — for a
//     fresh Engine::Open to recover from. tests/crash_torture_test.cpp
//     sweeps every prefix of a scripted workload through this.
//
// The model is deliberately adversarial but realistic: file data survives a
// crash only up to the last Fsync; a rename/create/remove survives either
// always (journaling filesystems commit metadata on their own schedule —
// possibly *before* the file's data) or only once the parent directory was
// fsynced. Durable code must therefore fsync file contents before
// publishing a name that refers to them, and fsync the directory before
// depending on the name itself — exactly the ordering the engine's
// SaveSegment/PersistManifest now follow.
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "api/result.hpp"
#include "common/thread_annotations.hpp"
#include "storage/pager.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define WT_IO_HAS_FSYNC 1
#include <fcntl.h>
#include <unistd.h>
#endif

namespace wt::io {

using wtrie::ErrorCode;
using wtrie::Result;
using wtrie::Status;

/// A writable file handle. Append-only or truncate-created by Vfs::OpenWrite;
/// every operation reports failure as Status (never silently, never by
/// aborting). Destroying an open handle closes it, discarding any error.
class VfsFile {
 public:
  virtual ~VfsFile() = default;
  virtual Status Append(const void* data, size_t n) = 0;
  /// Flushes and makes the file's current content crash-durable.
  virtual Status Sync() = 0;
  /// Idempotent; returns the first error the close path hit.
  virtual Status Close() = 0;
};

/// The filesystem operations every durability path goes through. Thread-safe
/// (the engine calls it from ingest and background threads concurrently).
class Vfs : public wt::storage::BlobSource {
 public:
  ~Vfs() override = default;

  /// Opens for writing; `truncate` replaces existing content, otherwise
  /// appends. Creates the file when absent either way.
  virtual Result<std::unique_ptr<VfsFile>> OpenWrite(const std::string& path,
                                                     bool truncate) = 0;
  /// Whole-file read; kNotFound when the file does not exist.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status Remove(const std::string& path) = 0;
  /// Makes the directory's namespace (creations, renames, removals of
  /// entries) crash-durable.
  virtual Status SyncDir(const std::string& dir) = 0;
  virtual Status CreateDirs(const std::string& dir) = 0;
  virtual bool Exists(const std::string& path) = 0;
  /// Names (not paths) of the directory's entries.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;
  // BlobSource::MapOrRead(path, prefer_mmap, advise, err) completes the
  // surface: zero-copy (or buffered) reads for segment images.
};

/// The directory component of a path ("." when there is none).
inline std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// ---------------------------------------------------------------- RealVfs

class RealVfs final : public Vfs {
 public:
  /// The production filesystem; stateless, shared by every engine that does
  /// not inject its own.
  static RealVfs& Instance() {
    static RealVfs vfs;
    return vfs;
  }

  Result<std::unique_ptr<VfsFile>> OpenWrite(const std::string& path,
                                             bool truncate) override {
    std::FILE* f = std::fopen(path.c_str(), truncate ? "wb" : "ab");
    if (f == nullptr) {
      return Status::Error(ErrorCode::kIoError, "vfs: cannot open for write");
    }
    return std::unique_ptr<VfsFile>(new RealFile(f));
  }

  Result<std::string> ReadFile(const std::string& path) override {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in.good()) {
      std::error_code ec;
      if (!std::filesystem::exists(path, ec)) {
        return Status::Error(ErrorCode::kNotFound, "vfs: no such file");
      }
      return Status::Error(ErrorCode::kIoError, "vfs: cannot open for read");
    }
    const std::streamoff size = in.tellg();
    in.seekg(0);
    std::string out(static_cast<size_t>(size), '\0');
    in.read(out.data(), size);
    if (in.gcount() != size) {
      return Status::Error(ErrorCode::kIoError, "vfs: short read");
    }
    return out;
  }

  Status Rename(const std::string& from, const std::string& to) override {
    std::error_code ec;
    std::filesystem::rename(from, to, ec);
    if (ec) return Status::Error(ErrorCode::kIoError, "vfs: rename failed");
    return Status::Ok();
  }

  Status Remove(const std::string& path) override {
    std::error_code ec;
    if (!std::filesystem::remove(path, ec) || ec) {
      if (ec) return Status::Error(ErrorCode::kIoError, "vfs: remove failed");
      return Status::Error(ErrorCode::kNotFound, "vfs: no such file");
    }
    return Status::Ok();
  }

  Status SyncDir(const std::string& dir) override {
#if WT_IO_HAS_FSYNC
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::Error(ErrorCode::kIoError, "vfs: cannot open directory");
    }
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) {
      return Status::Error(ErrorCode::kIoError, "vfs: directory fsync failed");
    }
#else
    (void)dir;
#endif
    return Status::Ok();
  }

  Status CreateDirs(const std::string& dir) override {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) return Status::Error(ErrorCode::kIoError, "vfs: mkdir failed");
    return Status::Ok();
  }

  bool Exists(const std::string& path) override {
    std::error_code ec;
    return std::filesystem::exists(path, ec);
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec), end;
    if (ec) {
      return Status::Error(ErrorCode::kIoError, "vfs: cannot list directory");
    }
    std::vector<std::string> names;
    for (; !ec && it != end; it.increment(ec)) {
      names.push_back(it->path().filename().string());
    }
    if (ec) {
      return Status::Error(ErrorCode::kIoError, "vfs: directory walk failed");
    }
    return names;
  }

  std::shared_ptr<const wt::storage::Blob> MapOrRead(
      const std::string& path, bool prefer_mmap, wt::storage::Advise adv,
      std::string* err) override {
    return wt::storage::MapFileBlob(path, prefer_mmap, adv, err);
  }

 private:
  /// FILE*-backed handle with every libc return value checked: a partial
  /// fwrite, a failed fflush, or an error surfaced at fclose all become
  /// Status the caller must handle (previously the WAL dropped them).
  class RealFile final : public VfsFile {
   public:
    explicit RealFile(std::FILE* f) : file_(f) {}
    ~RealFile() override { (void)CloseImpl(); }

    Status Append(const void* data, size_t n) override {
      if (file_ == nullptr) {
        return Status::Error(ErrorCode::kIoError, "vfs: file is closed");
      }
      if (n > 0 && std::fwrite(data, 1, n, file_) != n) {
        return Status::Error(ErrorCode::kIoError, "vfs: short write");
      }
      if (std::fflush(file_) != 0) {
        return Status::Error(ErrorCode::kIoError, "vfs: flush failed");
      }
      return Status::Ok();
    }

    Status Sync() override {
      if (file_ == nullptr) {
        return Status::Error(ErrorCode::kIoError, "vfs: file is closed");
      }
      if (std::fflush(file_) != 0) {
        return Status::Error(ErrorCode::kIoError, "vfs: flush failed");
      }
#if WT_IO_HAS_FSYNC
      if (::fsync(fileno(file_)) != 0) {
        return Status::Error(ErrorCode::kIoError, "vfs: fsync failed");
      }
#endif
      return Status::Ok();
    }

    Status Close() override { return CloseImpl(); }

   private:
    Status CloseImpl() {
      if (file_ == nullptr) return Status::Ok();
      std::FILE* f = file_;
      file_ = nullptr;
      if (std::fclose(f) != 0) {
        return Status::Error(ErrorCode::kIoError, "vfs: close failed");
      }
      return Status::Ok();
    }

    std::FILE* file_;
  };
};

// --------------------------------------------------------------- FaultVfs

/// Deterministic fault-injecting in-memory filesystem (tests only; lives in
/// the library because it *is* the product's testability seam, the way
/// SQLite ships its test VFSes). Not a persistence backend: contents live
/// in process memory, mapped blobs are heap copies.
class FaultVfs final : public Vfs {
 public:
  /// Operation kinds, for traces and fault targeting. Every kind is
  /// counted by the global operation index that FailOpAt/CrashAt key on.
  enum class Op {
    kOpenWrite,
    kWrite,
    kSync,
    kSyncDir,
    kRename,
    kRemove,
    kRead,
    kMap,
    kList,
    kMkdir,
    kClose,
  };

  struct TraceEntry {
    Op op;
    std::string path;
  };

  /// What the metadata journal had committed when the power failed.
  enum class MetadataMode {
    /// Namespace changes survive only if SyncDir covered them — the
    /// conservative reading of POSIX.
    kConservative,
    /// Every namespace change survives (journaling filesystems commit
    /// metadata on their own schedule, often *before* file data) — the
    /// mode that exposes a rename published over unsynced bytes.
    kEager,
  };

  /// What happened to file bytes written after their last Fsync.
  enum class DataMode {
    kDropUnsynced,  // none of them reached the platter
    kTornTail,      // half of them did, and the last surviving byte is
                    // corrupt (a torn page)
    kKeepAll,       // all of them did (also models a process-only crash)
  };

  FaultVfs() = default;

  /// A filesystem seeded with a post-crash state (everything it contains is
  /// considered synced).
  explicit FaultVfs(std::map<std::string, std::string> files) {
    for (auto& [path, data] : files) {
      auto node = std::make_shared<Inode>();
      node->synced = data.size();
      node->data = std::move(data);
      current_[path] = node;
      durable_[path] = node;
    }
  }

  // ------------------------------------------------------- fault scripting

  /// Fails the operation with global index `index` (0-based) once, with a
  /// clean I/O error — the deterministic stand-in for ENOSPC/EIO. When
  /// `torn` and the operation is a write, the first half of the buffer is
  /// applied with its final byte bit-flipped before the error returns (a
  /// short write that also corrupted its tail).
  void FailOpAt(uint64_t index, bool torn = false) {
    wt::MutexLock lk(mu_);
    fail_at_ = index;
    fail_torn_ = torn;
    fail_armed_ = true;
  }

  /// Simulates power loss: operations with index >= `index` fail and change
  /// nothing; CrashFiles() then reconstructs what a disk could hold.
  void CrashAt(uint64_t index) {
    wt::MutexLock lk(mu_);
    crash_at_ = index;
  }

  /// When set, Sync/SyncDir succeed without committing anything — replays
  /// the pre-seam code (which never called them) through the same call
  /// sites, so a test can prove the fsyncs are load-bearing.
  void SetFsyncNoop(bool noop) {
    wt::MutexLock lk(mu_);
    fsync_noop_ = noop;
  }

  uint64_t OpCount() const {
    wt::MutexLock lk(mu_);
    return op_count_;
  }

  bool CrashTriggered() const {
    wt::MutexLock lk(mu_);
    return crashed_;
  }

  std::vector<TraceEntry> Trace() const {
    wt::MutexLock lk(mu_);
    return trace_;
  }

  // ------------------------------------------------------ state extraction

  /// The current (live-process) content of every file — what a clean
  /// shutdown leaves behind.
  std::map<std::string, std::string> CurrentFiles() const {
    wt::MutexLock lk(mu_);
    std::map<std::string, std::string> out;
    for (const auto& [path, node] : current_) out[path] = node->data;
    return out;
  }

  /// One possible post-crash disk state. The namespace comes from the
  /// durable view (kConservative) or the live view (kEager); each file's
  /// content is its synced prefix plus whatever DataMode says survived of
  /// the unsynced tail.
  std::map<std::string, std::string> CrashFiles(MetadataMode meta,
                                                DataMode data) const {
    wt::MutexLock lk(mu_);
    const auto& ns = meta == MetadataMode::kEager ? current_ : durable_;
    std::map<std::string, std::string> out;
    for (const auto& [path, node] : ns) {
      std::string content = node->data.substr(0, node->synced);
      const size_t unsynced = node->data.size() - node->synced;
      switch (data) {
        case DataMode::kDropUnsynced:
          break;
        case DataMode::kTornTail:
          if (unsynced > 0) {
            const size_t keep = unsynced / 2;
            content.append(node->data, node->synced, keep);
            if (keep > 0) content.back() ^= 1;  // the torn page's bit flip
          }
          break;
        case DataMode::kKeepAll:
          content.append(node->data, node->synced, unsynced);
          break;
      }
      out[path] = std::move(content);
    }
    return out;
  }

  // --------------------------------------------------------- Vfs interface

  Result<std::unique_ptr<VfsFile>> OpenWrite(const std::string& path,
                                             bool truncate) override {
    wt::MutexLock lk(mu_);
    if (Status st = Enter(Op::kOpenWrite, path); !st.ok()) return st;
    auto it = current_.find(path);
    std::shared_ptr<Inode> node;
    if (it == current_.end() || truncate) {
      // A truncate of an existing name gets a fresh inode: the durable
      // namespace may still reference the old one, which then survives a
      // crash with its old content — the worst case a journal allows.
      node = std::make_shared<Inode>();
      current_[path] = node;
    } else {
      node = it->second;
    }
    return std::unique_ptr<VfsFile>(new FaultFile(this, path, std::move(node)));
  }

  Result<std::string> ReadFile(const std::string& path) override {
    wt::MutexLock lk(mu_);
    if (Status st = Enter(Op::kRead, path); !st.ok()) return st;
    auto it = current_.find(path);
    if (it == current_.end()) {
      return Status::Error(ErrorCode::kNotFound, "faultvfs: no such file");
    }
    return it->second->data;
  }

  Status Rename(const std::string& from, const std::string& to) override {
    wt::MutexLock lk(mu_);
    if (Status st = Enter(Op::kRename, from); !st.ok()) return st;
    auto it = current_.find(from);
    if (it == current_.end()) {
      return Status::Error(ErrorCode::kNotFound, "faultvfs: rename source");
    }
    current_[to] = std::move(it->second);
    current_.erase(from);
    return Status::Ok();
  }

  Status Remove(const std::string& path) override {
    wt::MutexLock lk(mu_);
    if (Status st = Enter(Op::kRemove, path); !st.ok()) return st;
    if (current_.erase(path) == 0) {
      return Status::Error(ErrorCode::kNotFound, "faultvfs: no such file");
    }
    return Status::Ok();
  }

  Status SyncDir(const std::string& dir) override {
    wt::MutexLock lk(mu_);
    if (Status st = Enter(Op::kSyncDir, dir); !st.ok()) return st;
    if (fsync_noop_) return Status::Ok();
    // Commit the directory's namespace: durable entries under `dir` become
    // exactly the live ones. Inodes reachable only from stale durable names
    // disappear; newly created/renamed names appear.
    for (auto it = durable_.begin(); it != durable_.end();) {
      if (ParentDir(it->first) == dir && current_.find(it->first) == current_.end()) {
        it = durable_.erase(it);
      } else {
        ++it;
      }
    }
    for (const auto& [path, node] : current_) {
      if (ParentDir(path) == dir) durable_[path] = node;
    }
    return Status::Ok();
  }

  Status CreateDirs(const std::string& dir) override {
    wt::MutexLock lk(mu_);
    if (Status st = Enter(Op::kMkdir, dir); !st.ok()) return st;
    return Status::Ok();  // the namespace is flat; directories are implicit
  }

  bool Exists(const std::string& path) override {
    // A stat: free and infallible (it mutates nothing, and a dead process
    // does not stat).
    wt::MutexLock lk(mu_);
    return current_.find(path) != current_.end();
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    wt::MutexLock lk(mu_);
    if (Status st = Enter(Op::kList, dir); !st.ok()) return st;
    std::vector<std::string> names;
    for (const auto& [path, node] : current_) {
      if (ParentDir(path) == dir) {
        names.push_back(path.substr(path.find_last_of('/') + 1));
      }
    }
    return names;  // map order: deterministic
  }

  std::shared_ptr<const wt::storage::Blob> MapOrRead(
      const std::string& path, bool /*prefer_mmap*/,
      wt::storage::Advise /*adv*/, std::string* err) override {
    wt::MutexLock lk(mu_);
    if (Status st = Enter(Op::kMap, path); !st.ok()) {
      if (err != nullptr) *err = st.message();
      return nullptr;
    }
    auto it = current_.find(path);
    if (it == current_.end()) {
      if (err != nullptr) *err = "faultvfs: no such file";
      return nullptr;
    }
    auto blob = std::make_shared<wt::storage::HeapBlob>(it->second->data.size());
    std::copy(it->second->data.begin(), it->second->data.end(),
              blob->mutable_data());
    return blob;
  }

 private:
  struct Inode {
    std::string data;
    size_t synced = 0;  // prefix of `data` committed by the last Sync
  };

  /// Counts the operation, records it, and applies scripted faults. Caller
  /// holds mu_. A crashed filesystem fails everything; a scripted one-shot
  /// fault fails exactly its operation. Returns Ok when the operation may
  /// proceed (torn-write handling lives in FaultFile::Append).
  Status Enter(Op op, const std::string& path) WT_REQUIRES(mu_) {
    const uint64_t idx = op_count_++;
    trace_.push_back({op, path});
    if (crashed_ || idx >= crash_at_) {
      crashed_ = true;
      return Status::Error(ErrorCode::kIoError, "faultvfs: simulated crash");
    }
    if (fail_armed_ && idx == fail_at_) {
      fail_armed_ = false;
      pending_torn_ = fail_torn_ && op == Op::kWrite;
      if (!pending_torn_) {
        return Status::Error(ErrorCode::kIoError, "faultvfs: injected fault");
      }
    }
    return Status::Ok();
  }

  class FaultFile final : public VfsFile {
   public:
    FaultFile(FaultVfs* owner, std::string path, std::shared_ptr<Inode> node)
        : owner_(owner), path_(std::move(path)), node_(std::move(node)) {}
    ~FaultFile() override = default;

    Status Append(const void* data, size_t n) override {
      wt::MutexLock lk(owner_->mu_);
      if (closed_) {
        return Status::Error(ErrorCode::kIoError, "faultvfs: file is closed");
      }
      if (Status st = owner_->Enter(Op::kWrite, path_); !st.ok()) return st;
      const char* bytes = static_cast<const char*>(data);
      if (owner_->pending_torn_) {
        // A short write whose last surviving byte is corrupt: apply half
        // the buffer, flip a bit, report the error.
        owner_->pending_torn_ = false;
        const size_t keep = n / 2;
        node_->data.append(bytes, keep);
        if (keep > 0) node_->data.back() ^= 1;
        return Status::Error(ErrorCode::kIoError, "faultvfs: torn write");
      }
      node_->data.append(bytes, n);
      return Status::Ok();
    }

    Status Sync() override {
      wt::MutexLock lk(owner_->mu_);
      if (closed_) {
        return Status::Error(ErrorCode::kIoError, "faultvfs: file is closed");
      }
      if (Status st = owner_->Enter(Op::kSync, path_); !st.ok()) return st;
      if (!owner_->fsync_noop_) node_->synced = node_->data.size();
      return Status::Ok();
    }

    Status Close() override {
      wt::MutexLock lk(owner_->mu_);
      if (closed_) return Status::Ok();
      closed_ = true;
      return owner_->Enter(Op::kClose, path_);
    }

   private:
    FaultVfs* owner_;  // outlives the handle: the engine holds the Vfs
    std::string path_;
    std::shared_ptr<Inode> node_;
    bool closed_ WT_GUARDED_BY(owner_->mu_) = false;
  };

  mutable wt::Mutex mu_;
  // Live namespace.
  std::map<std::string, std::shared_ptr<Inode>> current_ WT_GUARDED_BY(mu_);
  // fsync-dir'd view of the namespace.
  std::map<std::string, std::shared_ptr<Inode>> durable_ WT_GUARDED_BY(mu_);
  std::vector<TraceEntry> trace_ WT_GUARDED_BY(mu_);
  uint64_t op_count_ WT_GUARDED_BY(mu_) = 0;
  uint64_t crash_at_ WT_GUARDED_BY(mu_) = UINT64_MAX;
  bool crashed_ WT_GUARDED_BY(mu_) = false;
  uint64_t fail_at_ WT_GUARDED_BY(mu_) = 0;
  bool fail_armed_ WT_GUARDED_BY(mu_) = false;
  bool fail_torn_ WT_GUARDED_BY(mu_) = false;
  bool pending_torn_ WT_GUARDED_BY(mu_) = false;
  bool fsync_noop_ WT_GUARDED_BY(mu_) = false;
};

// ----------------------------------------------------------------- helpers

/// The tmp-write/fsync/rename/fsync-dir recipe every atomic file
/// publication uses: content is durable *before* the name points at it, and
/// the name is durable before the caller may rely on it (a power cut at any
/// step leaves either the old state or the new one, never a name over
/// unwritten bytes). On failure the tmp file is best-effort removed; the
/// recovery orphan scan deletes anything that slips through.
inline Status AtomicWriteFileDurable(Vfs& vfs, const std::string& tmp,
                                     const std::string& final_path,
                                     std::string_view data) {
  Result<std::unique_ptr<VfsFile>> file = vfs.OpenWrite(tmp, /*truncate=*/true);
  if (!file.ok()) return file.status();
  Status st = (*file)->Append(data.data(), data.size());
  if (st.ok()) st = (*file)->Sync();
  const Status close_st = (*file)->Close();
  if (st.ok()) st = close_st;
  if (st.ok()) st = vfs.Rename(tmp, final_path);
  if (st.ok()) st = vfs.SyncDir(ParentDir(final_path));
  if (!st.ok()) (void)vfs.Remove(tmp);
  return st;
}

}  // namespace wt::io
