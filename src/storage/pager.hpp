// Pager: memory-mapped (or heap-buffered) blobs with a per-engine cache
// (DESIGN.md #8).
//
// A Blob is an immutable byte range with shared ownership. Two concrete
// kinds:
//
//   * MappedBlob — POSIX mmap(PROT_READ, MAP_PRIVATE) with optional
//     madvise residency hints; pages fault in on demand, the OS page cache
//     is the buffer pool, and the dataset may exceed RAM;
//   * HeapBlob — the file read into an 8-aligned heap buffer; the
//     portability fallback (and the "heap-loaded twin" the differential
//     tests compare the mapped path against).
//
// Lifetime/pinning: blobs are handed out as shared_ptr. A borrowed segment
// (api/sequence.hpp) keeps its blob alive; engine snapshots keep segments
// alive; so a mapping is pinned for the lifetime of every snapshot that
// can reach it, and unmapped exactly when the last reference drops. On
// POSIX an unlinked-but-mapped file stays readable, so compaction may
// delete a victim segment's file while old snapshots still serve from it —
// the Pager's cache holds weak_ptrs precisely so it never extends that
// lifetime itself.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/assert.hpp"
#include "common/thread_annotations.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define WT_STORAGE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace wt::storage {

class Blob {
 public:
  virtual ~Blob() = default;
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool mapped() const { return mapped_; }

 protected:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
};

/// Residency hint applied when a file is mapped.
enum class Advise {
  kNormal,    // default kernel readahead
  kRandom,    // point-query serving: don't over-read around faults
  kWillNeed,  // prefetch the whole file (verification passes do this anyway)
};

class HeapBlob final : public Blob {
 public:
  explicit HeapBlob(size_t size)  // for_overwrite: the caller fills it —
      : words_(std::make_unique_for_overwrite<uint64_t[]>((size + 7) / 8)) {
    data_ = reinterpret_cast<const uint8_t*>(words_.get());
    size_ = size;
  }
  uint8_t* mutable_data() {
    return reinterpret_cast<uint8_t*>(words_.get());
  }

 private:
  // uint64_t backing guarantees the 8-byte alignment borrowed arrays need.
  std::unique_ptr<uint64_t[]> words_;
};

/// Reads a whole file into a HeapBlob; null + *err on failure.
inline std::shared_ptr<const Blob> ReadFileBlob(const std::string& path,
                                                std::string* err) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.good()) {
    if (err != nullptr) *err = "cannot open " + path;
    return nullptr;
  }
  const std::streamoff size = in.tellg();
  in.seekg(0);
  auto blob = std::make_shared<HeapBlob>(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(blob->mutable_data()), size);
  if (in.gcount() != size) {
    if (err != nullptr) *err = "short read on " + path;
    return nullptr;
  }
  return blob;
}

#if WT_STORAGE_HAS_MMAP
class MappedBlob final : public Blob {
 public:
  ~MappedBlob() override {
    if (addr_ != nullptr && len_ != 0) ::munmap(addr_, len_);
  }

  static std::shared_ptr<const Blob> Map(const std::string& path, Advise adv,
                                         std::string* err) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (err != nullptr) *err = "cannot open " + path;
      return nullptr;
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      if (err != nullptr) *err = "cannot stat " + path;
      return nullptr;
    }
    const size_t len = static_cast<size_t>(st.st_size);
    auto blob = std::make_shared<MappedBlob>();
    if (len > 0) {
      void* addr = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
      if (addr == MAP_FAILED) {
        ::close(fd);
        if (err != nullptr) *err = "mmap failed on " + path;
        return nullptr;
      }
      blob->addr_ = addr;
      blob->len_ = len;
      blob->data_ = static_cast<const uint8_t*>(addr);
      blob->size_ = len;
      blob->mapped_ = true;
      switch (adv) {
        case Advise::kNormal:
          break;
        case Advise::kRandom:
          ::madvise(addr, len, MADV_RANDOM);
          break;
        case Advise::kWillNeed:
          ::madvise(addr, len, MADV_WILLNEED);
          break;
      }
    }
    ::close(fd);  // the mapping outlives the descriptor
    return blob;
  }

 private:
  void* addr_ = nullptr;
  size_t len_ = 0;
};
#endif  // WT_STORAGE_HAS_MMAP

/// Maps a file (heap-reads where mmap is unavailable or declined).
inline std::shared_ptr<const Blob> MapFileBlob(const std::string& path,
                                               bool prefer_mmap, Advise adv,
                                               std::string* err) {
#if WT_STORAGE_HAS_MMAP
  if (prefer_mmap) return MappedBlob::Map(path, adv, err);
#else
  (void)prefer_mmap;
  (void)adv;
#endif
  return ReadFileBlob(path, err);
}

/// Where the pager gets its bytes. The default is the real filesystem
/// (MapFileBlob); a VFS (io/vfs.hpp) implements this so fault-injection
/// reaches segment opens too. Lives here rather than in io/ so the pager
/// stays dependency-free; err-string style matches the Blob loaders.
class BlobSource {
 public:
  virtual ~BlobSource() = default;
  virtual std::shared_ptr<const Blob> MapOrRead(const std::string& path,
                                                bool prefer_mmap, Advise adv,
                                                std::string* err) = 0;
};

/// Per-engine blob cache: path -> live mapping. Map() returns the existing
/// mapping when one is still pinned somewhere (so N snapshots of one
/// segment share one mapping), otherwise maps afresh. Weak entries mean
/// the cache itself never delays an unmap; Drop() is bookkeeping hygiene
/// after a file is deleted (seg seqs are never reused, so a stale entry
/// could never be *wrong*, just dead weight).
class Pager {
 public:
  struct Options {
    bool prefer_mmap = true;
    Advise advise = Advise::kNormal;
    /// Byte provider; null means the real filesystem. Not owned — must
    /// outlive the pager (the engine owns both).
    BlobSource* source = nullptr;
    /// Optional instrumentation (DESIGN.md #12): wt_pager_maps_total,
    /// wt_pager_map_cache_hits_total, wt_pager_unmaps_total, plus the
    /// wt_pager_mapped_bytes gauge (DESIGN.md #13). Shared ownership on
    /// purpose — unmaps are counted (and mapped bytes released) when the
    /// last snapshot pinning a blob drops it, which can be after the
    /// engine (and its registry handle) is gone.
    std::shared_ptr<wt::obs::MetricsRegistry> metrics;
  };

  Pager() = default;
  explicit Pager(Options opt) : opt_(std::move(opt)) {
    if (opt_.metrics != nullptr) {
      maps_ = opt_.metrics->GetCounter("wt_pager_maps_total");
      cache_hits_ = opt_.metrics->GetCounter("wt_pager_map_cache_hits_total");
      unmaps_ = opt_.metrics->GetCounter("wt_pager_unmaps_total");
      mapped_bytes_ = opt_.metrics->GetGauge("wt_pager_mapped_bytes");
    }
  }

  std::shared_ptr<const Blob> Map(const std::string& path, std::string* err) {
    {
      wt::MutexLock lk(mu_);
      auto it = cache_.find(path);
      if (it != cache_.end()) {
        if (std::shared_ptr<const Blob> live = it->second.lock()) {
          if (cache_hits_ != nullptr) cache_hits_->Increment();
          return live;
        }
        cache_.erase(it);
      }
    }
    // A span per fresh mapping (cache hits stay silent — they touch no
    // kernel state). End arg = mapped size; the advise instant records
    // which residency hint the mapping was opened with.
    wt::obs::ScopedSpan map_span(wt::obs::Tracer::Get(),
                                 wt::obs::TraceName::kPagerMap);
    std::shared_ptr<const Blob> blob =
        opt_.source != nullptr
            ? opt_.source->MapOrRead(path, opt_.prefer_mmap, opt_.advise, err)
            : MapFileBlob(path, opt_.prefer_mmap, opt_.advise, err);
    if (blob != nullptr) {
      map_span.SetEndArg(blob->size());
      wt::obs::Tracer::Get().Instant(wt::obs::TraceName::kPagerAdvise,
                                     static_cast<uint64_t>(opt_.advise));
      if (maps_ != nullptr) {
        maps_->Increment();
        if (mapped_bytes_ != nullptr) {
          mapped_bytes_->Add(static_cast<int64_t>(blob->size()));
        }
        // The wrapper counts the unmap when the last pin drops; caching
        // the wrapper (not the inner blob) keeps one count per mapping.
        blob = std::make_shared<TrackedBlob>(std::move(blob), opt_.metrics,
                                             unmaps_, mapped_bytes_);
      }
      wt::MutexLock lk(mu_);
      cache_[path] = blob;
    }
    return blob;
  }

  void Drop(const std::string& path) {
    wt::MutexLock lk(mu_);
    cache_.erase(path);
  }

  /// Cache entries whose mapping is still alive (observability/tests).
  size_t LiveMappings() const {
    wt::MutexLock lk(mu_);
    size_t live = 0;
    for (const auto& [path, weak] : cache_) {
      live += weak.expired() ? 0 : 1;
    }
    return live;
  }

 private:
  /// Forwards to an inner blob; on destruction bumps the unmap counter,
  /// releases the mapped-bytes gauge, and drops an unmap instant on the
  /// trace timeline. Holds the registry shared_ptr so the instruments stay
  /// valid even when a long-lived snapshot outlives the pager that mapped
  /// the file.
  class TrackedBlob final : public Blob {
   public:
    TrackedBlob(std::shared_ptr<const Blob> inner,
                std::shared_ptr<wt::obs::MetricsRegistry> keepalive,
                wt::obs::Counter* unmaps, wt::obs::Gauge* mapped_bytes)
        : inner_(std::move(inner)),
          keepalive_(std::move(keepalive)),
          unmaps_(unmaps),
          mapped_bytes_(mapped_bytes) {
      data_ = inner_->data();
      size_ = inner_->size();
      mapped_ = inner_->mapped();
    }
    ~TrackedBlob() override {
      if (unmaps_ != nullptr) unmaps_->Increment();
      if (mapped_bytes_ != nullptr) {
        mapped_bytes_->Add(-static_cast<int64_t>(size_));
      }
      wt::obs::Tracer::Get().Instant(wt::obs::TraceName::kPagerUnmap, size_);
    }

   private:
    std::shared_ptr<const Blob> inner_;
    std::shared_ptr<wt::obs::MetricsRegistry> keepalive_;
    wt::obs::Counter* unmaps_;
    wt::obs::Gauge* mapped_bytes_;
  };

  Options opt_;
  wt::obs::Counter* maps_ = nullptr;
  wt::obs::Counter* cache_hits_ = nullptr;
  wt::obs::Counter* unmaps_ = nullptr;
  wt::obs::Gauge* mapped_bytes_ = nullptr;
  mutable wt::Mutex mu_;
  std::unordered_map<std::string, std::weak_ptr<const Blob>> cache_
      WT_GUARDED_BY(mu_);
};

}  // namespace wt::storage
