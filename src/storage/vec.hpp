// storage::Vec<T> — THE owned-or-borrowed storage seam (DESIGN.md #8).
//
// Every succinct structure in this library stores its payload and derived
// directories in flat trivially-copyable arrays. Vec<T> is the one type
// those arrays go through, and it has exactly two modes:
//
//   * owned    — a growable heap buffer (a minimal vector for trivial T),
//                what every construction and the v3 stream loaders produce;
//   * borrowed — a (const T*, count) window over bytes somebody else keeps
//                alive (a mapped v4 image or its heap-loaded twin). Zero
//                copies, zero allocation; the structure is query-ready the
//                instant the bytes are visible.
//
// Layout is deliberately {data, size, capacity} — 24 bytes, the same as
// std::vector — with "borrowed" encoded as a capacity sentinel, so hot
// read paths (data/size/operator[]) are single loads with no mode branch
// and sizeof(every structure) is unchanged by the seam (the append-only
// bitvector's space accounting counts 8*sizeof(Rrr) per chunk; a fatter
// Vec would be a real space regression, not a bookkeeping one).
//
// Mutating a borrowed Vec is a programming error (asserted) except for
// clear()/assign(), which detach back to an empty owned buffer — that is
// what the v3 Load paths do before rebuilding.
//
// Lifetime contract: a borrowed Vec never extends the life of the bytes it
// points into. Owners of borrowed structures must pin the backing blob
// (api/sequence.hpp keeps a shared_ptr to it; the engine's snapshots pin
// segments, hence blobs, transitively).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>

#include "common/assert.hpp"

namespace wt::storage {

template <typename T>
class Vec {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  Vec() = default;

  ~Vec() { FreeOwned(); }

  Vec(const Vec& o) { CopyFrom(o); }
  Vec& operator=(const Vec& o) {
    if (this != &o) {
      FreeOwned();
      CopyFrom(o);
    }
    return *this;
  }
  Vec(Vec&& o) noexcept : data_(o.data_), size_(o.size_), cap_(o.cap_) {
    o.data_ = nullptr;
    o.size_ = 0;
    o.cap_ = 0;
  }
  Vec& operator=(Vec&& o) noexcept {
    if (this != &o) {
      FreeOwned();
      data_ = o.data_;
      size_ = o.size_;
      cap_ = o.cap_;
      o.data_ = nullptr;
      o.size_ = 0;
      o.cap_ = 0;
    }
    return *this;
  }

  /// A borrowed view over `count` elements at `p` (8-byte alignment of `p`
  /// is the image layer's contract). The bytes must outlive the Vec.
  static Vec Borrow(const T* p, size_t count) {
    Vec v;
    v.data_ = const_cast<T*>(p);  // never written: every mutator asserts
    v.size_ = count;
    v.cap_ = kBorrowed;
    return v;
  }

  bool borrowed() const { return cap_ == kBorrowed; }

  // ------------------------------------------------------- read accessors

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T& back() const { return data_[size_ - 1]; }
  /// Heap-accounting convention: a borrowed view reports its size as its
  /// capacity, matching what an exactly-sized owned buffer reports — so
  /// SizeInBits() is identical between a mapped structure and its
  /// heap-rebuilt twin (asserted by the storage differential tests).
  size_t capacity() const { return borrowed() ? size_ : cap_; }

  friend bool operator==(const Vec& a, const Vec& b) {
    if (a.size_ != b.size_) return false;
    return a.size_ == 0 ||
           std::memcmp(a.data_, b.data_, a.size_ * sizeof(T)) == 0;
  }

  // -------------------------------------------- mutators (owned mode only)

  T& operator[](size_t i) {
    WT_DASSERT(!borrowed());
    return data_[i];
  }
  T& back() {
    WT_DASSERT(!borrowed());
    return data_[size_ - 1];
  }
  T* mutable_data() {
    WT_DASSERT(!borrowed());
    return data_;
  }
  void push_back(const T& v) {
    WT_DASSERT(!borrowed());
    if (size_ == cap_) Grow(size_ + 1);
    data_[size_++] = v;
  }
  void reserve(size_t n) {
    WT_DASSERT(!borrowed());
    if (n > cap_) Grow(n);
  }
  void resize(size_t n, T fill = T{}) {
    WT_DASSERT(!borrowed());
    if (n > cap_) Grow(n);
    for (size_t i = size_; i < n; ++i) data_[i] = fill;
    size_ = n;
  }
  void shrink_to_fit() {
    if (borrowed() || cap_ == size_) return;
    Reallocate(size_);
  }

  // ------------------------------------- mutators that detach a borrow

  void clear() {
    if (borrowed()) {
      data_ = nullptr;
      size_ = 0;
      cap_ = 0;
    } else {
      size_ = 0;
    }
  }
  void assign(size_t n, const T& fill) {
    clear();
    resize(n, fill);
  }

 private:
  static constexpr size_t kBorrowed = static_cast<size_t>(-1);

  void FreeOwned() {
    if (!borrowed()) delete[] data_;
  }

  void CopyFrom(const Vec& o) {
    if (o.borrowed()) {
      data_ = o.data_;
      size_ = o.size_;
      cap_ = kBorrowed;
      return;
    }
    // Exact-size copy (capacity == size), like copying a shrunk vector.
    data_ = o.size_ == 0 ? nullptr : new T[o.size_];
    size_ = cap_ = o.size_;
    if (size_ != 0) std::memcpy(data_, o.data_, size_ * sizeof(T));
  }

  // Geometric growth so repeated push_backs stay amortized O(1). `new T[]`
  // default-initialization is vacuous for these trivial types, so reserved
  // slack costs no writes.
  void Grow(size_t need) { Reallocate(std::max(need, cap_ * 2)); }

  void Reallocate(size_t new_cap) {
    T* fresh = new_cap == 0 ? nullptr : new T[new_cap];
    if (size_ != 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    delete[] data_;
    data_ = fresh;
    cap_ = new_cap;
  }

  T* data_ = nullptr;  // owned allocation, or the borrow (never written)
  size_t size_ = 0;
  size_t cap_ = 0;  // kBorrowed marks a borrow
};

}  // namespace wt::storage
