// Flat image format v4 — the zero-copy persistence format (DESIGN.md #8).
//
// A v4 image is ONE relocatable blob holding a frozen structure with *all*
// derived state persisted — BitVector rank9 directories, RRR interleaved
// superblocks, select samples, shape excess trees, flat node headers,
// Elias–Fano arrays, codec state, encoded-bits budget — at offset-addressed,
// 8-byte-aligned positions. Nothing is rebuilt on open: the structure
// borrows (storage/vec.hpp) straight into the blob, so a segment is
// query-ready the instant its bytes are visible (mmap) and the OS page
// cache is the buffer pool.
//
// Layout (all offsets relative to the blob start, which must be 8-aligned):
//
//   [ImageHeader 56B][SectionEntry × section_count][section bodies ...]
//
// Each section body starts 8-aligned and holds scalars (raw PODs, packed)
// followed by arrays (each padded to the next 8-byte boundary). The header
// carries a fast word-at-a-time FNV hash of every byte of the image except
// the hash field itself, so any byte flip or truncation is a clean error at
// open (VerifyMode::kFull, the default) — never an abort or an OOB read.
// Section offsets/sizes are bounds-checked against the blob regardless of
// verification mode, and every Pod/Array read is bounds-checked against its
// section, so even a forged table cannot read out of bounds. As with the
// checksummed v3 envelope, content *within* a verified image is trusted by
// the query paths; VerifyMode::kNone (for datasets larger than RAM, where
// the verification pass would fault every page) extends that trust to the
// whole file and is only for storage you control.
//
// Version policy: v3 is the streaming format (payload only, directories
// rebuilt on load; common/serialize.hpp + each structure's Save/Load). v4
// is this flat format. Readers keep v3 support as the compat path; writers
// emit v4 (engine segments) or v3 (whole-Sequence envelopes, which favor
// minimal bytes over instant open).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace wt::storage {

inline constexpr uint64_t kImageMagic = 0x3476474D49545721ull;  // "!WTIMGv4"
inline constexpr uint32_t kImageVersion = 4;
inline constexpr uint32_t kMaxSections = 64;

/// Section tags of the static wavelet-trie image (wt_inspect prints them).
enum SectionTag : uint32_t {
  kSecCodecState = 1,  // opaque codec SaveState bytes
  kSecTrie = 2,        // WaveletTrie scalars (n)
  kSecShape = 3,       // BinaryTreeShape: preorder BitVector + excess tree
  kSecLabels = 4,      // concatenated labels BitArray
  kSecLabelEnds = 5,   // Elias–Fano label delimiters
  kSecBeta = 6,        // global RRR (classes, offsets, superblocks, samples)
  kSecBetaEnds = 7,    // Elias–Fano beta delimiters
  kSecHeaders = 8,     // flat 16-byte node headers
};

inline const char* SectionTagName(uint32_t tag) {
  switch (tag) {
    case kSecCodecState: return "codec-state";
    case kSecTrie: return "trie-meta";
    case kSecShape: return "shape";
    case kSecLabels: return "labels";
    case kSecLabelEnds: return "label-ends";
    case kSecBeta: return "beta-rrr";
    case kSecBetaEnds: return "beta-ends";
    case kSecHeaders: return "node-headers";
  }
  return "unknown";
}

struct ImageHeader {
  uint64_t magic = kImageMagic;
  uint32_t version = kImageVersion;
  uint32_t codec_id = 0;
  uint64_t total_bytes = 0;   // exact image size; must equal the blob size
  uint64_t n = 0;             // stored strings
  uint64_t encoded_bits = 0;  // capacity budget consumed (Sequence accounting)
  uint32_t section_count = 0;
  uint32_t reserved = 0;
  uint64_t body_hash = 0;  // ImageHash over the image minus this field
};
static_assert(sizeof(ImageHeader) == 56);

struct SectionEntry {
  uint32_t tag = 0;
  uint32_t reserved = 0;
  uint64_t offset = 0;  // from blob start; 8-aligned
  uint64_t bytes = 0;
};
static_assert(sizeof(SectionEntry) == 24);

/// Word-parallel FNV-1a variant: four independent lanes over 32-byte
/// strides (the multiply latency of a single FNV chain caps it near
/// 2.5 GB/s; four lanes pipeline to memory bandwidth), folded into one
/// 64-bit digest. The tail (< 32 bytes) runs word-at-a-time on lane 0 with
/// the residual length folded in, making the chained two-range use below
/// unambiguous.
inline uint64_t ImageHash(uint64_t h, const void* data, size_t len) {
  constexpr uint64_t kPrime = 0x100000001B3ull;
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t lane[4] = {h, h ^ 0x9E3779B97F4A7C15ull, h ^ 0xC2B2AE3D27D4EB4Full,
                      h ^ 0x165667B19E3779F9ull};
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    uint64_t w[4];
    std::memcpy(w, p + i, 32);
    lane[0] = (lane[0] ^ w[0]) * kPrime;
    lane[1] = (lane[1] ^ w[1]) * kPrime;
    lane[2] = (lane[2] ^ w[2]) * kPrime;
    lane[3] = (lane[3] ^ w[3]) * kPrime;
  }
  h = lane[0];
  for (int l = 1; l < 4; ++l) h = (h ^ lane[l]) * kPrime;
  for (; i + 8 <= len; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    h = (h ^ w) * kPrime;
  }
  if (i < len) {
    uint64_t w = 0;
    std::memcpy(&w, p + i, len - i);
    h = (h ^ w) * kPrime;
    h = (h ^ static_cast<uint64_t>(len & 7)) * kPrime;
  }
  return h;
}

inline constexpr uint64_t kImageHashSeed = 0xCBF29CE484222325ull;
inline constexpr size_t kBodyHashOffset = offsetof(ImageHeader, body_hash);

/// Hash of a finished image with the body_hash field itself skipped.
inline uint64_t HashImageBytes(const uint8_t* base, size_t len) {
  WT_DASSERT(len >= sizeof(ImageHeader));
  uint64_t h = ImageHash(kImageHashSeed, base, kBodyHashOffset);
  const size_t after = kBodyHashOffset + sizeof(uint64_t);
  return ImageHash(h, base + after, len - after);
}

// ----------------------------------------------------------------- writer

/// Builds a v4 image in memory: BeginSection/Pod/Array/EndSection, then
/// Finish() lays out header + table + body and seals the hash. Arrays are
/// 8-byte aligned (zero padding, covered by the hash); scalars are packed.
class ImageWriter {
 public:
  void BeginSection(uint32_t tag) {
    WT_DASSERT(!in_section_);
    Align8();
    sections_.push_back({tag, 0, body_.size(), 0});
    in_section_ = true;
  }

  void EndSection() {
    WT_DASSERT(in_section_);
    sections_.back().bytes = body_.size() - sections_.back().offset;
    in_section_ = false;
  }

  template <typename T>
  void Pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WT_DASSERT(in_section_);
    body_.append(reinterpret_cast<const char*>(&v), sizeof(T));
  }

  template <typename T>
  void Array(const T* p, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    WT_DASSERT(in_section_);
    Align8();
    body_.append(reinterpret_cast<const char*>(p), count * sizeof(T));
  }

  /// Seals the image. The returned string IS the blob (write it to a file
  /// verbatim; it loads from any 8-aligned copy of these bytes).
  std::string Finish(uint32_t codec_id, uint64_t n, uint64_t encoded_bits) {
    WT_DASSERT(!in_section_);
    WT_ASSERT_MSG(sections_.size() <= kMaxSections, "image: too many sections");
    Align8();
    const size_t table_bytes = sections_.size() * sizeof(SectionEntry);
    const size_t body_base = sizeof(ImageHeader) + table_bytes;  // 8-aligned
    ImageHeader h;
    h.codec_id = codec_id;
    h.total_bytes = body_base + body_.size();
    h.n = n;
    h.encoded_bits = encoded_bits;
    h.section_count = static_cast<uint32_t>(sections_.size());
    std::string out;
    out.reserve(h.total_bytes);
    out.append(reinterpret_cast<const char*>(&h), sizeof(h));
    for (SectionEntry s : sections_) {
      s.offset += body_base;  // relative-to-body -> absolute
      out.append(reinterpret_cast<const char*>(&s), sizeof(s));
    }
    out += body_;
    const uint64_t hash =
        HashImageBytes(reinterpret_cast<const uint8_t*>(out.data()), out.size());
    std::memcpy(out.data() + kBodyHashOffset, &hash, sizeof(hash));
    return out;
  }

 private:
  void Align8() {
    while (body_.size() % 8 != 0) body_.push_back('\0');
  }

  std::string body_;
  std::vector<SectionEntry> sections_;
  bool in_section_ = false;
};

// ----------------------------------------------------------------- reader

enum class VerifyMode {
  kNone,  // structural bounds checks only; content trusted (see header note)
  kFull,  // one streaming hash pass over the whole image
};

enum class ImageError {
  kOk,
  kBadMagic,    // not a v4 image (e.g. a v3 stream — try the compat path)
  kBadVersion,  // v4 magic but a version this reader does not understand
  kTruncated,   // blob shorter than the header/table/total_bytes claim
  kBadLayout,   // section table inconsistent with the blob bounds
  kChecksumMismatch,
};

/// Zero-copy cursor over a parsed image. Parse() validates the header and
/// every table entry against the blob bounds (and the hash under kFull);
/// afterwards Pod/Array reads are bounds-checked against their section, so
/// no read ever leaves the blob. The reader borrows the blob — the caller
/// keeps it alive.
class ImageReader {
 public:
  /// `base` must be 8-byte aligned (mmap pages and uint64_t heap buffers
  /// both are).
  static ImageError Parse(const uint8_t* base, size_t len, VerifyMode verify,
                          ImageReader* out) {
    WT_DASSERT(reinterpret_cast<uintptr_t>(base) % 8 == 0);
    if (len < sizeof(ImageHeader)) return ImageError::kTruncated;
    ImageHeader h;
    std::memcpy(&h, base, sizeof(h));
    if (h.magic != kImageMagic) return ImageError::kBadMagic;
    if (h.version != kImageVersion) return ImageError::kBadVersion;
    if (h.total_bytes != len) return ImageError::kTruncated;
    if (h.section_count > kMaxSections) return ImageError::kBadLayout;
    const size_t table_end =
        sizeof(ImageHeader) + size_t(h.section_count) * sizeof(SectionEntry);
    if (table_end > len) return ImageError::kTruncated;
    std::vector<SectionEntry> sections(h.section_count);
    std::memcpy(sections.data(), base + sizeof(ImageHeader),
                sections.size() * sizeof(SectionEntry));
    for (const SectionEntry& s : sections) {
      if (s.offset % 8 != 0 || s.offset < table_end || s.offset > len ||
          s.bytes > len - s.offset) {
        return ImageError::kBadLayout;
      }
    }
    if (verify == VerifyMode::kFull && HashImageBytes(base, len) != h.body_hash) {
      return ImageError::kChecksumMismatch;
    }
    out->base_ = base;
    out->len_ = len;
    out->header_ = h;
    out->sections_ = std::move(sections);
    out->cursor_ = out->section_end_ = 0;
    return ImageError::kOk;
  }

  const ImageHeader& header() const { return header_; }
  const std::vector<SectionEntry>& sections() const { return sections_; }

  /// Positions the cursor at the start of the section with `tag`; false if
  /// the image has no such section.
  bool OpenSection(uint32_t tag) {
    for (const SectionEntry& s : sections_) {
      if (s.tag == tag) {
        cursor_ = s.offset;
        section_end_ = s.offset + s.bytes;
        return true;
      }
    }
    return false;
  }

  template <typename T>
  bool Pod(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (sizeof(T) > section_end_ - cursor_) return false;
    std::memcpy(out, base_ + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return true;
  }

  /// Borrows `count` elements from the section (after 8-alignment); the
  /// returned pointer lives as long as the blob.
  template <typename T>
  bool Array(const T** out, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    size_t at = (cursor_ + 7) & ~size_t(7);
    if (at > section_end_) return false;
    if (count > (section_end_ - at) / sizeof(T)) return false;
    *out = reinterpret_cast<const T*>(base_ + at);
    cursor_ = at + count * sizeof(T);
    return true;
  }

 private:
  const uint8_t* base_ = nullptr;
  size_t len_ = 0;
  ImageHeader header_;
  std::vector<SectionEntry> sections_;
  size_t cursor_ = 0;
  size_t section_end_ = 0;
};

/// True when the bytes begin with the v4 image magic — the format dispatch
/// used by segment loading (v4 image vs v3 stream) and wt_inspect.
inline bool LooksLikeImage(const uint8_t* data, size_t len) {
  if (len < sizeof(uint64_t)) return false;
  uint64_t m;
  std::memcpy(&m, data, sizeof(m));
  return m == kImageMagic;
}

}  // namespace wt::storage
