// Table: a miniature column store assembled from the paper's structures —
// the "column-oriented databases" application of Section 1. Each column is
// independently indexed (store/column.hpp); rows are append-only and the row
// index doubles as the timestamp, so every predicate takes an optional
// [from, to) time window exactly like the paper's log-analytics examples
// ("what has been the most accessed domain during winter vacation?").
//
// Supported queries (all compressed-index native, no scans unless noted):
//   * point row reconstruction across columns;
//   * equality / prefix counting per window;
//   * row retrieval by prefix predicate (SelectPrefix iteration);
//   * conjunctive filters across columns (probe the rarer predicate, verify
//     the other — a classic column-store plan);
//   * group-by counts, top-k, majority and >= t frequent values per window.
#pragma once

#include <algorithm>
#include <cstdint>
#include <istream>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/assert.hpp"
#include "common/serialize.hpp"
#include "store/column.hpp"

namespace wt {

enum class ColumnType { kString, kInt };

struct ColumnSpec {
  std::string name;
  ColumnType type;
};

/// A typed cell value for row ingestion and reconstruction.
using CellValue = std::variant<std::string, uint64_t>;

class Table {
 public:
  explicit Table(std::vector<ColumnSpec> schema) : schema_(std::move(schema)) {
    WT_ASSERT_MSG(!schema_.empty(), "Table: empty schema");
    for (const auto& spec : schema_) {
      if (spec.type == ColumnType::kString) {
        string_cols_.push_back(std::make_unique<StringColumn>());
        col_index_.push_back({ColumnType::kString, string_cols_.size() - 1});
      } else {
        int_cols_.push_back(std::make_unique<IntColumn>());
        col_index_.push_back({ColumnType::kInt, int_cols_.size() - 1});
      }
    }
  }

  const std::vector<ColumnSpec>& schema() const { return schema_; }
  size_t num_rows() const { return rows_; }
  size_t num_columns() const { return schema_.size(); }

  /// Appends one row; `cells` must match the schema arity and types.
  void AppendRow(const std::vector<CellValue>& cells) {
    WT_ASSERT_MSG(cells.size() == schema_.size(), "Table: arity mismatch");
    for (size_t c = 0; c < cells.size(); ++c) {
      const auto [type, idx] = col_index_[c];
      if (type == ColumnType::kString) {
        WT_ASSERT_MSG(std::holds_alternative<std::string>(cells[c]),
                      "Table: expected string cell");
        string_cols_[idx]->Append(std::get<std::string>(cells[c]));
      } else {
        WT_ASSERT_MSG(std::holds_alternative<uint64_t>(cells[c]),
                      "Table: expected integer cell");
        int_cols_[idx]->Append(std::get<uint64_t>(cells[c]));
      }
    }
    ++rows_;
  }

  /// Reconstructs row `row` across all columns (an Access per column).
  std::vector<CellValue> GetRow(size_t row) const {
    WT_ASSERT(row < rows_);
    std::vector<CellValue> out;
    out.reserve(schema_.size());
    for (size_t c = 0; c < schema_.size(); ++c) {
      const auto [type, idx] = col_index_[c];
      if (type == ColumnType::kString) {
        out.emplace_back(string_cols_[idx]->Get(row));
      } else {
        out.emplace_back(int_cols_[idx]->Get(row));
      }
    }
    return out;
  }

  // ------------------------------------------------------------- predicates

  /// Rows in [from, to) where string column `col` == value.
  size_t CountEquals(std::string_view col, const std::string& value,
                     size_t from = 0, size_t to = SIZE_MAX) const {
    const auto [l, r] = Window(from, to);
    return StringCol(col).CountEquals(value, l, r);
  }

  size_t CountEquals(std::string_view col, uint64_t value, size_t from = 0,
                     size_t to = SIZE_MAX) const {
    const auto [l, r] = Window(from, to);
    return IntCol(col).CountEquals(value, l, r);
  }

  /// Rows in [from, to) where string column `col` starts with `prefix`.
  size_t CountPrefix(std::string_view col, const std::string& prefix,
                     size_t from = 0, size_t to = SIZE_MAX) const {
    const auto [l, r] = Window(from, to);
    return StringCol(col).CountPrefix(prefix, l, r);
  }

  /// Row ids in [from, to) where `col` starts with `prefix`.
  std::vector<size_t> RowsWithPrefix(std::string_view col,
                                     const std::string& prefix, size_t from = 0,
                                     size_t to = SIZE_MAX) const {
    const auto [l, r] = Window(from, to);
    return StringCol(col).RowsWithPrefix(prefix, l, r);
  }

  /// Conjunction: rows in the window where `prefix_col` starts with `prefix`
  /// AND `eq_col` == value. Probes the prefix index, verifies the equality
  /// column — the standard "filter on the selective predicate first" plan.
  std::vector<size_t> RowsWherePrefixAndEquals(
      std::string_view prefix_col, const std::string& prefix,
      std::string_view eq_col, const CellValue& value, size_t from = 0,
      size_t to = SIZE_MAX) const {
    std::vector<size_t> rows = RowsWithPrefix(prefix_col, prefix, from, to);
    const auto [type, idx] = col_index_[ColumnIndex(eq_col)];
    std::vector<size_t> out;
    for (size_t row : rows) {
      if (type == ColumnType::kString) {
        if (string_cols_[idx]->Get(row) == std::get<std::string>(value)) {
          out.push_back(row);
        }
      } else {
        if (int_cols_[idx]->Get(row) == std::get<uint64_t>(value)) {
          out.push_back(row);
        }
      }
    }
    return out;
  }

  // -------------------------------------------------------------- analytics

  /// Distinct values with counts for a string column in the window.
  std::map<std::string, size_t> GroupCount(std::string_view col,
                                           size_t from = 0,
                                           size_t to = SIZE_MAX) const {
    const auto [l, r] = Window(from, to);
    return StringCol(col).GroupCount(l, r);
  }

  /// The k most frequent values of string column `col` in the window,
  /// most-frequent first (ties broken by value).
  std::vector<std::pair<std::string, size_t>> TopK(std::string_view col,
                                                   size_t k, size_t from = 0,
                                                   size_t to = SIZE_MAX) const {
    const auto groups = GroupCount(col, from, to);
    std::vector<std::pair<std::string, size_t>> items(groups.begin(),
                                                      groups.end());
    std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    if (items.size() > k) items.resize(k);
    return items;
  }

  /// Majority value of string column `col` in the window, if any.
  std::optional<std::pair<std::string, size_t>> Majority(
      std::string_view col, size_t from = 0, size_t to = SIZE_MAX) const {
    const auto [l, r] = Window(from, to);
    return StringCol(col).Majority(l, r);
  }

  /// Values of `col` occurring at least `threshold` times in the window.
  std::map<std::string, size_t> FrequentValues(std::string_view col,
                                               size_t threshold, size_t from = 0,
                                               size_t to = SIZE_MAX) const {
    const auto [l, r] = Window(from, to);
    return StringCol(col).FrequentValues(l, r, threshold);
  }

  // ------------------------------------------------------------ persistence

  static constexpr uint64_t kMagic = 0x575454424C453031ull;  // "WTTBLE01"
  static constexpr uint32_t kFormatVersion = 1;

  /// Whole-table persistence: schema, row count, then every column —
  /// string columns through the facade's versioned envelope (canonical
  /// static image), integer columns as their decoded value sequence — all
  /// inside one checksummed outer envelope.
  wtrie::Status Save(std::ostream& out) const {
    std::ostringstream payload;
    WritePod<uint64_t>(payload, schema_.size());
    for (const auto& spec : schema_) {
      WritePod<uint8_t>(payload, spec.type == ColumnType::kString ? 0 : 1);
      WritePod<uint64_t>(payload, spec.name.size());
      payload.write(spec.name.data(),
                    static_cast<std::streamsize>(spec.name.size()));
    }
    WritePod<uint64_t>(payload, rows_);
    for (size_t c = 0; c < schema_.size(); ++c) {
      const auto [type, idx] = col_index_[c];
      if (type == ColumnType::kString) {
        const wtrie::Status s = string_cols_[idx]->Save(payload);
        if (!s.ok()) return s;
      } else {
        int_cols_[idx]->Save(payload);
      }
    }
    VersionedEnvelope::Write(out, kMagic, kFormatVersion, 0,
                             std::move(payload).str());
    if (!out.good()) {
      return wtrie::Status::Error(wtrie::ErrorCode::kIoError,
                                  "Table::Save: stream write failed");
    }
    return wtrie::Status::Ok();
  }

  static wtrie::Result<Table> Load(std::istream& in) {
    uint32_t tag = 0;
    std::string payload;
    const wtrie::Status env = wtrie::StatusFromEnvelopeError(
        VersionedEnvelope::Read(in, kMagic, kFormatVersion, &tag, &payload));
    if (!env.ok()) return env;
    std::istringstream body(payload);
    const uint64_t num_cols = ReadPod<uint64_t>(body);
    std::vector<ColumnSpec> schema;
    schema.reserve(num_cols);
    for (uint64_t c = 0; c < num_cols; ++c) {
      const uint8_t type = ReadPod<uint8_t>(body);
      const uint64_t len = ReadPod<uint64_t>(body);
      std::string name(len, '\0');
      body.read(name.data(), static_cast<std::streamsize>(len));
      schema.push_back(
          {std::move(name), type == 0 ? ColumnType::kString : ColumnType::kInt});
    }
    Table table(std::move(schema));
    table.rows_ = ReadPod<uint64_t>(body);
    for (size_t c = 0; c < table.schema_.size(); ++c) {
      const auto [type, idx] = table.col_index_[c];
      if (type == ColumnType::kString) {
        auto col = StringColumn::Load(body);
        if (!col.ok()) return col.status();
        *table.string_cols_[idx] = std::move(col).value();
      } else {
        table.int_cols_[idx]->Load(body);
      }
    }
    return table;
  }

  // ------------------------------------------------------------------ admin

  /// Compressed footprint of one column, in bits.
  size_t ColumnSizeInBits(std::string_view col) const {
    const auto [type, idx] = col_index_[ColumnIndex(col)];
    return type == ColumnType::kString ? string_cols_[idx]->SizeInBits()
                                       : int_cols_[idx]->SizeInBits();
  }

  size_t SizeInBits() const {
    size_t bits = 8 * sizeof(*this);
    for (const auto& c : string_cols_) bits += c->SizeInBits();
    for (const auto& c : int_cols_) bits += c->SizeInBits();
    return bits;
  }

  const StringColumn& StringCol(std::string_view name) const {
    const auto [type, idx] = col_index_[ColumnIndex(name)];
    WT_ASSERT_MSG(type == ColumnType::kString, "Table: not a string column");
    return *string_cols_[idx];
  }

  const IntColumn& IntCol(std::string_view name) const {
    const auto [type, idx] = col_index_[ColumnIndex(name)];
    WT_ASSERT_MSG(type == ColumnType::kInt, "Table: not an integer column");
    return *int_cols_[idx];
  }

 private:
  size_t ColumnIndex(std::string_view name) const {
    for (size_t c = 0; c < schema_.size(); ++c) {
      if (schema_[c].name == name) return c;
    }
    WT_ASSERT_MSG(false, "Table: unknown column");
    return 0;
  }

  /// Clamps a [from, to) request to the current row count.
  std::pair<size_t, size_t> Window(size_t from, size_t to) const {
    const size_t r = std::min(to, rows_);
    return {std::min(from, r), r};
  }

  std::vector<ColumnSpec> schema_;
  std::vector<std::pair<ColumnType, size_t>> col_index_;  // per schema column
  std::vector<std::unique_ptr<StringColumn>> string_cols_;
  std::vector<std::unique_ptr<IntColumn>> int_cols_;
  size_t rows_ = 0;
};

}  // namespace wt
