// Typed columns for the column store (store/table.hpp) — the paper's lead
// motivation: "column-oriented databases represent relations by storing
// individually each column as a sequence; if each column is indexed,
// efficient operations on the relations are possible."
//
// Two column types, each a thin façade over a paper structure:
//
//   StringColumn — the unified API facade wtrie::Sequence under the
//     AppendOnly policy (Theorem 4.3) with the ByteCodec: O(|s| + h_s)
//     appends while streaming rows in, prefix filters
//     (RankPrefix/SelectPrefix) and the Section 5 analytics (distinct /
//     majority / frequent / sequential scan) per time range, plus
//     whole-column persistence through the facade's versioned Save/Load.
//
//   IntColumn — the Section 6 probabilistically-balanced dynamic Wavelet
//     Tree: 64-bit universe, working alphabet discovered on the fly,
//     equality count/select/distinct in O(log sigma) w.h.p. Value-*range*
//     predicates are deliberately absent: the randomizing hash that buys
//     balance destroys value order (Section 6 gives up prefix operations,
//     and numeric ranges are the prefix operations of fixed-width integers).
//
// Columns trust their own invariants (Table clamps windows before calling),
// so they unwrap the facade's Result values; the recoverable-error surface
// for untrusted input is wtrie::Sequence itself.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "api/sequence.hpp"
#include "common/assert.hpp"
#include "core/balanced_wavelet_tree.hpp"

namespace wt {

/// Append-only string column over a Wavelet Trie. Row positions double as
/// timestamps (arrival order), so [l, r) selects a time window.
class StringColumn {
 public:
  using Sequence = wtrie::Sequence<wtrie::AppendOnly, ByteCodec>;

  StringColumn() = default;

  void Append(const std::string& value) {
    const wtrie::Status s = seq_.Append(value);
    WT_ASSERT_MSG(s.ok(), "StringColumn: append failed");
  }

  /// Bulk ingest: one word-parallel trie pass for the whole batch.
  void AppendBatch(const std::vector<std::string>& values) {
    const wtrie::Status s = seq_.AppendBatch(values);
    WT_ASSERT_MSG(s.ok(), "StringColumn: batch append failed");
  }

  size_t size() const { return seq_.size(); }
  size_t NumDistinct() const { return seq_.NumDistinct(); }

  std::string Get(size_t row) const { return seq_.Access(row).value(); }

  /// Rows in [l, r) equal to `value`.
  size_t CountEquals(const std::string& value, size_t l, size_t r) const {
    return seq_.RangeCount(value, l, r).value();
  }

  /// Rows in [l, r) whose value starts with `prefix`.
  size_t CountPrefix(const std::string& prefix, size_t l, size_t r) const {
    return seq_.RangeCountPrefix(prefix, l, r).value();
  }

  /// Global row of the (k+1)-th occurrence of `value`.
  std::optional<size_t> SelectEquals(const std::string& value, size_t k) const {
    const auto row = seq_.Select(value, k);
    if (!row.ok()) return std::nullopt;
    return row.value();
  }

  /// Global row of the (k+1)-th row matching `prefix`.
  std::optional<size_t> SelectPrefix(const std::string& prefix, size_t k) const {
    const auto row = seq_.SelectPrefix(prefix, k);
    if (!row.ok()) return std::nullopt;
    return row.value();
  }

  /// All rows in [l, r) matching `prefix`, via repeated SelectPrefix.
  std::vector<size_t> RowsWithPrefix(const std::string& prefix, size_t l,
                                     size_t r) const {
    std::vector<size_t> rows;
    const size_t skip = seq_.RankPrefix(prefix, l).value();
    for (size_t k = skip;; ++k) {
      const auto row = SelectPrefix(prefix, k);
      if (!row || *row >= r) break;
      rows.push_back(*row);
    }
    return rows;
  }

  /// Distinct values with multiplicities in [l, r) (Section 5).
  std::map<std::string, size_t> GroupCount(size_t l, size_t r) const {
    std::map<std::string, size_t> out;
    auto cur = seq_.Distinct(l, r).value();
    while (cur.Next()) out[cur.value()] = cur.count();
    return out;
  }

  /// Distinct values with `prefix` in [l, r), with counts (Section 5's
  /// "distinct hostnames in a given time range").
  std::map<std::string, size_t> GroupCountWithPrefix(const std::string& prefix,
                                                     size_t l, size_t r) const {
    std::map<std::string, size_t> out;
    auto cur = seq_.DistinctWithPrefix(prefix, l, r).value();
    while (cur.Next()) out[cur.value()] = cur.count();
    return out;
  }

  /// Majority value of [l, r), if one exists (Section 5).
  std::optional<std::pair<std::string, size_t>> Majority(size_t l,
                                                         size_t r) const {
    const auto m = seq_.Majority(l, r);
    if (!m.ok()) return std::nullopt;  // kNotFound: no majority in the window
    return m.value();
  }

  /// Values occurring at least `threshold` times in [l, r) (Section 5
  /// heuristic; exact output, pruned traversal).
  std::map<std::string, size_t> FrequentValues(size_t l, size_t r,
                                               size_t threshold) const {
    std::map<std::string, size_t> out;
    auto cur = seq_.Frequent(l, r, threshold).value();
    while (cur.Next()) out[cur.value()] = cur.count();
    return out;
  }

  /// Sequential scan of [l, r) — one Rank per trie node per cursor chunk
  /// (Section 5, "sequential access"). fn(size_t row, const std::string&).
  template <typename F>
  void Scan(size_t l, size_t r, const F& fn) const {
    auto cur = seq_.Scan(l, r).value();
    while (cur.Next()) fn(cur.position(), cur.value());
  }

  /// Whole-column persistence through the facade's versioned envelope.
  wtrie::Status Save(std::ostream& out) const { return seq_.Save(out); }
  static wtrie::Result<StringColumn> Load(std::istream& in) {
    auto seq = Sequence::Load(in);
    if (!seq.ok()) return seq.status();
    StringColumn col;
    col.seq_ = std::move(seq).value();
    return col;
  }

  size_t SizeInBits() const { return seq_.SizeInBits(); }

  const Sequence& sequence() const { return seq_; }

 private:
  Sequence seq_;
};

/// Dynamic integer column over the Section 6 randomized Wavelet Tree:
/// equality predicates only (see header comment).
class IntColumn {
 public:
  explicit IntColumn(uint64_t seed = 0x5EEDC01DULL) : tree_(64, seed) {}

  void Append(uint64_t value) { tree_.Append(value); }

  size_t size() const { return tree_.size(); }
  size_t NumDistinct() const { return tree_.NumDistinct(); }

  uint64_t Get(size_t row) const { return tree_.Access(row); }

  size_t CountEquals(uint64_t value, size_t l, size_t r) const {
    return tree_.RangeCount(value, l, r);
  }

  std::optional<size_t> SelectEquals(uint64_t value, size_t k) const {
    return tree_.Select(value, k);
  }

  /// Distinct values in [l, r) with multiplicities. Order follows the
  /// hashed codes, so results are collected into a sorted map.
  std::map<uint64_t, size_t> GroupCount(size_t l, size_t r) const {
    std::map<uint64_t, size_t> out;
    tree_.trie().DistinctInRange(l, r, [&](const BitString& code, size_t c) {
      out[tree_.codec().Decode(code)] = c;
    });
    return out;
  }

  std::optional<std::pair<uint64_t, size_t>> Majority(size_t l, size_t r) const {
    const auto m = tree_.trie().RangeMajority(l, r);
    if (!m) return std::nullopt;
    // The majority descent can stop at a leaf only; its label is a full code.
    return std::make_pair(tree_.codec().Decode(m->first), m->second);
  }

  /// Persists the column as its decoded value sequence (extracted with the
  /// Section 5 sequential scan); Load replays the values through the hash
  /// codec, rediscovering the working alphabet.
  void Save(std::ostream& out) const {
    std::vector<uint64_t> values;
    values.reserve(tree_.size());
    tree_.trie().ForEachInRange(0, tree_.size(),
                                [&](size_t, const BitString& code) {
                                  values.push_back(tree_.codec().Decode(code));
                                });
    WriteVec(out, values);
  }
  void Load(std::istream& in) {
    WT_ASSERT_MSG(tree_.size() == 0, "IntColumn: Load into non-empty column");
    for (uint64_t v : ReadVec<uint64_t>(in)) tree_.Append(v);
  }

  size_t SizeInBits() const { return tree_.SizeInBits(); }

 private:
  BalancedWaveletTree tree_;
};

}  // namespace wt
