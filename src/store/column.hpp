// Typed columns for the column store (store/table.hpp) — the paper's lead
// motivation: "column-oriented databases represent relations by storing
// individually each column as a sequence; if each column is indexed,
// efficient operations on the relations are possible."
//
// Two column types, each a thin façade over a paper structure:
//
//   StringColumn — an append-only Wavelet Trie (Theorem 4.3) behind the
//     ByteCodec: O(|s| + h_s) appends while streaming rows in, prefix
//     filters (RankPrefix/SelectPrefix) and the Section 5 analytics
//     (distinct / majority / frequent / sequential scan) per time range.
//
//   IntColumn — the Section 6 probabilistically-balanced dynamic Wavelet
//     Tree: 64-bit universe, working alphabet discovered on the fly,
//     equality count/select/distinct in O(log sigma) w.h.p. Value-*range*
//     predicates are deliberately absent: the randomizing hash that buys
//     balance destroys value order (Section 6 gives up prefix operations,
//     and numeric ranges are the prefix operations of fixed-width integers).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "core/balanced_wavelet_tree.hpp"
#include "core/dynamic_wavelet_trie.hpp"
#include "core/string_sequence.hpp"

namespace wt {

/// Append-only string column over a Wavelet Trie. Row positions double as
/// timestamps (arrival order), so [l, r) selects a time window.
class StringColumn {
 public:
  StringColumn() = default;

  void Append(const std::string& value) { seq_.Append(value); }

  size_t size() const { return seq_.size(); }
  size_t NumDistinct() const { return seq_.NumDistinct(); }

  std::string Get(size_t row) const { return seq_.Access(row); }

  /// Rows in [l, r) equal to `value`.
  size_t CountEquals(const std::string& value, size_t l, size_t r) const {
    return seq_.RangeCount(value, l, r);
  }

  /// Rows in [l, r) whose value starts with `prefix`.
  size_t CountPrefix(const std::string& prefix, size_t l, size_t r) const {
    return seq_.RangeCountPrefix(prefix, l, r);
  }

  /// Global row of the (k+1)-th occurrence of `value`.
  std::optional<size_t> SelectEquals(const std::string& value, size_t k) const {
    return seq_.Select(value, k);
  }

  /// Global row of the (k+1)-th row matching `prefix`.
  std::optional<size_t> SelectPrefix(const std::string& prefix, size_t k) const {
    return seq_.SelectPrefix(prefix, k);
  }

  /// All rows in [l, r) matching `prefix`, via repeated SelectPrefix.
  std::vector<size_t> RowsWithPrefix(const std::string& prefix, size_t l,
                                     size_t r) const {
    std::vector<size_t> rows;
    const size_t skip = seq_.RankPrefix(prefix, l);
    for (size_t k = skip;; ++k) {
      const auto row = seq_.SelectPrefix(prefix, k);
      if (!row || *row >= r) break;
      rows.push_back(*row);
    }
    return rows;
  }

  /// Distinct values with multiplicities in [l, r) (Section 5).
  std::map<std::string, size_t> GroupCount(size_t l, size_t r) const {
    std::map<std::string, size_t> out;
    seq_.DistinctInRange(l, r, [&](const std::string& v, size_t c) { out[v] = c; });
    return out;
  }

  /// Distinct values with `prefix` in [l, r), with counts (Section 5's
  /// "distinct hostnames in a given time range").
  std::map<std::string, size_t> GroupCountWithPrefix(const std::string& prefix,
                                                     size_t l, size_t r) const {
    std::map<std::string, size_t> out;
    seq_.DistinctInRangeWithPrefix(
        prefix, l, r, [&](const std::string& v, size_t c) { out[v] = c; });
    return out;
  }

  /// Majority value of [l, r), if one exists (Section 5).
  std::optional<std::pair<std::string, size_t>> Majority(size_t l,
                                                         size_t r) const {
    return seq_.RangeMajority(l, r);
  }

  /// Values occurring at least `threshold` times in [l, r) (Section 5
  /// heuristic; exact output, pruned traversal).
  std::map<std::string, size_t> FrequentValues(size_t l, size_t r,
                                               size_t threshold) const {
    std::map<std::string, size_t> out;
    seq_.RangeFrequent(l, r, threshold,
                       [&](const std::string& v, size_t c) { out[v] = c; });
    return out;
  }

  /// Sequential scan of [l, r) — one Rank per trie node for the whole range
  /// (Section 5, "sequential access").
  void Scan(size_t l, size_t r,
            const std::function<void(size_t, const std::string&)>& fn) const {
    seq_.ForEachInRange(l, r, fn);
  }

  size_t SizeInBits() const { return seq_.SizeInBits(); }

  const StringSequence<AppendOnlyWaveletTrie, ByteCodec>& sequence() const {
    return seq_;
  }

 private:
  StringSequence<AppendOnlyWaveletTrie, ByteCodec> seq_;
};

/// Dynamic integer column over the Section 6 randomized Wavelet Tree:
/// equality predicates only (see header comment).
class IntColumn {
 public:
  explicit IntColumn(uint64_t seed = 0x5EEDC01DULL) : tree_(64, seed) {}

  void Append(uint64_t value) { tree_.Append(value); }

  size_t size() const { return tree_.size(); }
  size_t NumDistinct() const { return tree_.NumDistinct(); }

  uint64_t Get(size_t row) const { return tree_.Access(row); }

  size_t CountEquals(uint64_t value, size_t l, size_t r) const {
    return tree_.RangeCount(value, l, r);
  }

  std::optional<size_t> SelectEquals(uint64_t value, size_t k) const {
    return tree_.Select(value, k);
  }

  /// Distinct values in [l, r) with multiplicities. Order follows the
  /// hashed codes, so results are collected into a sorted map.
  std::map<uint64_t, size_t> GroupCount(size_t l, size_t r) const {
    std::map<uint64_t, size_t> out;
    tree_.trie().DistinctInRange(l, r, [&](const BitString& code, size_t c) {
      out[tree_.codec().Decode(code)] = c;
    });
    return out;
  }

  std::optional<std::pair<uint64_t, size_t>> Majority(size_t l, size_t r) const {
    const auto m = tree_.trie().RangeMajority(l, r);
    if (!m) return std::nullopt;
    // The majority descent can stop at a leaf only; its label is a full code.
    return std::make_pair(tree_.codec().Decode(m->first), m->second);
  }

  size_t SizeInBits() const { return tree_.SizeInBits(); }

 private:
  BalancedWaveletTree tree_;
};

}  // namespace wt
