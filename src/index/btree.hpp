// In-memory B+-tree: the classical uncompressed ordered index the paper's
// related-work approach (3) stores (s_i, i) pairs in ("a string dictionary
// such as a B-Tree"), and the Section 1 example of a traditional index whose
// occupancy is "several times the space of the sequence alone".
//
// Design: values live only in leaves; internal nodes hold separator keys
// (separator[i] = smallest key reachable in child i+1). Leaves are linked
// for ordered scans. Insert uses preemptive splitting on the descent, Erase
// preemptive borrowing/merging, so neither ever walks back up. Unique keys;
// inserting an existing key overwrites its value.
//
// This is a teaching-grade but complete substrate: O(log n) point ops,
// ordered iteration, and byte-accurate space accounting for the baseline
// comparisons (bench_related_work).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace wt {

/// B = fanout parameter: nodes hold between B and 2B keys (root exempt).
template <typename Key, typename Value, size_t B = 8>
class BPlusTree {
  static_assert(B >= 2, "BPlusTree: B must be at least 2");

  struct Node;  // defined below; Iterator stores a leaf pointer

 public:
  BPlusTree() : root_(std::make_unique<Node>(/*leaf=*/true)) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Inserts (key, value); overwrites the value if the key exists.
  /// Returns true iff the key was new.
  bool Insert(const Key& key, Value value) {
    if (root_->keys.size() == kMax) {
      auto new_root = std::make_unique<Node>(/*leaf=*/false);
      new_root->children.push_back(std::move(root_));
      root_ = std::move(new_root);
      SplitChild(root_.get(), 0);
    }
    Node* v = root_.get();
    for (;;) {
      if (v->leaf) {
        const size_t i = LowerBoundIndex(v, key);
        if (i < v->keys.size() && !(key < v->keys[i])) {
          v->values[i] = std::move(value);  // overwrite
          return false;
        }
        v->keys.insert(v->keys.begin() + i, key);
        v->values.insert(v->values.begin() + i, std::move(value));
        ++size_;
        return true;
      }
      size_t i = ChildIndex(v, key);
      if (v->children[i]->keys.size() == kMax) {
        SplitChild(v, i);
        if (!(key < v->keys[i])) ++i;  // key now routes right of the split
      }
      v = v->children[i].get();
    }
  }

  /// Removes `key`; returns true iff it was present.
  bool Erase(const Key& key) {
    const bool erased = EraseFrom(root_.get(), key);
    if (!root_->leaf && root_->children.size() == 1) {
      root_ = std::move(root_->children[0]);  // shrink height
    }
    if (erased) --size_;
    return erased;
  }

  /// The value stored under `key`, if present.
  const Value* Find(const Key& key) const {
    const Node* v = root_.get();
    while (!v->leaf) v = v->children[ChildIndex(v, key)].get();
    const size_t i = LowerBoundIndex(v, key);
    if (i < v->keys.size() && !(key < v->keys[i])) return &v->values[i];
    return nullptr;
  }

  bool Contains(const Key& key) const { return Find(key) != nullptr; }

  /// Forward iterator over (key, value) in key order.
  class Iterator {
   public:
    Iterator() = default;
    bool AtEnd() const { return node_ == nullptr; }
    const Key& key() const { return node_->keys[idx_]; }
    const Value& value() const { return node_->values[idx_]; }
    void Next() {
      WT_DASSERT(node_ != nullptr);
      if (++idx_ >= node_->keys.size()) {
        node_ = node_->next;
        idx_ = 0;
      }
    }

   private:
    friend class BPlusTree;
    Iterator(const Node* node, size_t idx) : node_(node), idx_(idx) {}
    const Node* node_ = nullptr;
    size_t idx_ = 0;
  };

  /// Iterator at the smallest key >= `key` (end iterator if none).
  Iterator LowerBound(const Key& key) const {
    const Node* v = root_.get();
    while (!v->leaf) v = v->children[ChildIndex(v, key)].get();
    const size_t i = LowerBoundIndex(v, key);
    if (i < v->keys.size()) return Iterator(v, i);
    return Iterator(v->next, 0);
  }

  Iterator Begin() const {
    const Node* v = root_.get();
    while (!v->leaf) v = v->children.front().get();
    if (v->keys.empty()) return Iterator();
    return Iterator(v, 0);
  }

  /// Total heap footprint in bits (nodes, key/value payload slots).
  size_t SizeInBits() const { return 8 * NodeBytes(root_.get()) + 8 * sizeof(*this); }

  /// Depth of the tree (single-node tree has height 1); for tests.
  size_t Height() const {
    size_t h = 1;
    const Node* v = root_.get();
    while (!v->leaf) {
      v = v->children.front().get();
      ++h;
    }
    return h;
  }

  /// Validates all structural invariants (key order, fill bounds, separator
  /// correctness, leaf-link order); for tests. Returns true when consistent.
  bool CheckInvariants() const {
    bool ok = true;
    CheckRec(root_.get(), /*is_root=*/true, nullptr, nullptr, &ok);
    return ok;
  }

 private:
  // Classic B-tree fill bounds (CLRS, minimum degree B): a merge of two
  // minimum-fill internal nodes plus the pulled-down separator is exactly
  // kMax, and splits leave both halves at >= kMin.
  static constexpr size_t kMax = 2 * B - 1;  // max keys per node
  static constexpr size_t kMin = B - 1;      // min keys per non-root node

  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    bool leaf;
    std::vector<Key> keys;
    // Leaves: values[i] pairs with keys[i]; next links the leaf chain.
    std::vector<Value> values;
    const Node* next = nullptr;
    // Internal: children.size() == keys.size() + 1; keys are separators.
    std::vector<std::unique_ptr<Node>> children;
  };

  static size_t LowerBoundIndex(const Node* v, const Key& key) {
    size_t lo = 0, hi = v->keys.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (v->keys[mid] < key)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  }

  /// Child to descend into: child i covers keys < sep[i] (and >= sep[i-1]).
  static size_t ChildIndex(const Node* v, const Key& key) {
    size_t i = LowerBoundIndex(v, key);
    // Equal separator routes right (separator = smallest key of child i+1).
    if (i < v->keys.size() && !(key < v->keys[i])) ++i;
    return i;
  }

  /// Smallest key in v's subtree.
  static const Key& SubtreeMin(const Node* v) {
    while (!v->leaf) v = v->children.front().get();
    return v->keys.front();
  }

  /// Splits the full child `i` of `parent` into two half-full nodes.
  void SplitChild(Node* parent, size_t i) {
    Node* child = parent->children[i].get();
    WT_DASSERT(child->keys.size() == kMax);
    auto right = std::make_unique<Node>(child->leaf);
    if (child->leaf) {
      // Leaves keep all keys; the separator is the first right key.
      // Split 2B-1 keys into B left and B-1 right.
      right->keys.assign(child->keys.begin() + B, child->keys.end());
      right->values.assign(std::make_move_iterator(child->values.begin() + B),
                           std::make_move_iterator(child->values.end()));
      child->keys.resize(B);
      child->values.resize(B);
      right->next = child->next;
      child->next = right.get();
      parent->keys.insert(parent->keys.begin() + i, right->keys.front());
    } else {
      // Internal: the middle key keys[B-1] moves up; B-1 keys (and B
      // children) stay on each side.
      right->keys.assign(child->keys.begin() + B, child->keys.end());
      right->children.assign(
          std::make_move_iterator(child->children.begin() + B),
          std::make_move_iterator(child->children.end()));
      const Key up = child->keys[B - 1];
      child->keys.resize(B - 1);
      child->children.resize(B);
      parent->keys.insert(parent->keys.begin() + i, up);
    }
    parent->children.insert(parent->children.begin() + i + 1, std::move(right));
  }

  /// Erase with preemptive rebalancing: every internal node we descend
  /// through first guarantees the target child has > kMin keys.
  bool EraseFrom(Node* v, const Key& key) {
    if (v->leaf) {
      const size_t i = LowerBoundIndex(v, key);
      if (i >= v->keys.size() || key < v->keys[i]) return false;
      v->keys.erase(v->keys.begin() + i);
      v->values.erase(v->values.begin() + i);
      return true;
    }
    size_t i = ChildIndex(v, key);
    if (v->children[i]->keys.size() <= kMin) i = FixChild(v, i);
    const bool erased = EraseFrom(v->children[i].get(), key);
    // The child's minimum may have changed; refresh the separator.
    if (erased && i > 0) v->keys[i - 1] = SubtreeMin(v->children[i].get());
    return erased;
  }

  /// Ensures child `i` of `v` has more than kMin keys by borrowing from a
  /// sibling or merging with one. Returns the (possibly shifted) index of
  /// the child that now covers the original key range.
  size_t FixChild(Node* v, size_t i) {
    Node* child = v->children[i].get();
    // Borrow from the left sibling.
    if (i > 0 && v->children[i - 1]->keys.size() > kMin) {
      Node* left = v->children[i - 1].get();
      if (child->leaf) {
        child->keys.insert(child->keys.begin(), left->keys.back());
        child->values.insert(child->values.begin(), std::move(left->values.back()));
        left->keys.pop_back();
        left->values.pop_back();
        v->keys[i - 1] = child->keys.front();
      } else {
        child->keys.insert(child->keys.begin(), v->keys[i - 1]);
        child->children.insert(child->children.begin(),
                               std::move(left->children.back()));
        v->keys[i - 1] = left->keys.back();
        left->keys.pop_back();
        left->children.pop_back();
      }
      return i;
    }
    // Borrow from the right sibling.
    if (i + 1 < v->children.size() && v->children[i + 1]->keys.size() > kMin) {
      Node* right = v->children[i + 1].get();
      if (child->leaf) {
        child->keys.push_back(right->keys.front());
        child->values.push_back(std::move(right->values.front()));
        right->keys.erase(right->keys.begin());
        right->values.erase(right->values.begin());
        v->keys[i] = right->keys.front();
      } else {
        child->keys.push_back(v->keys[i]);
        child->children.push_back(std::move(right->children.front()));
        v->keys[i] = right->keys.front();
        right->keys.erase(right->keys.begin());
        right->children.erase(right->children.begin());
      }
      return i;
    }
    // Merge with a sibling (left preferred so the kept node is children[i-1]).
    const size_t li = (i > 0) ? i - 1 : i;  // merge children[li] and [li+1]
    MergeChildren(v, li);
    return li;
  }

  /// Merges child li+1 into child li and drops separator li.
  void MergeChildren(Node* v, size_t li) {
    Node* left = v->children[li].get();
    Node* right = v->children[li + 1].get();
    if (left->leaf) {
      left->keys.insert(left->keys.end(), right->keys.begin(), right->keys.end());
      left->values.insert(left->values.end(),
                          std::make_move_iterator(right->values.begin()),
                          std::make_move_iterator(right->values.end()));
      left->next = right->next;
    } else {
      left->keys.push_back(v->keys[li]);
      left->keys.insert(left->keys.end(), right->keys.begin(), right->keys.end());
      left->children.insert(left->children.end(),
                            std::make_move_iterator(right->children.begin()),
                            std::make_move_iterator(right->children.end()));
    }
    v->keys.erase(v->keys.begin() + li);
    v->children.erase(v->children.begin() + li + 1);
  }

  static size_t NodeBytes(const Node* v) {
    size_t bytes = sizeof(Node) + v->keys.capacity() * sizeof(Key) +
                   v->values.capacity() * sizeof(Value) +
                   v->children.capacity() * sizeof(std::unique_ptr<Node>);
    for (const auto& c : v->children) bytes += NodeBytes(c.get());
    return bytes;
  }

  void CheckRec(const Node* v, bool is_root, const Key* lo, const Key* hi,
                bool* ok) const {
    if (!is_root && v->keys.size() < kMin) *ok = false;
    if (v->keys.size() > kMax) *ok = false;
    for (size_t i = 0; i + 1 < v->keys.size(); ++i) {
      if (!(v->keys[i] < v->keys[i + 1])) *ok = false;
    }
    for (const Key& k : v->keys) {
      if (lo != nullptr && k < *lo) *ok = false;
      if (hi != nullptr && !(k < *hi)) *ok = false;
    }
    if (v->leaf) {
      if (v->values.size() != v->keys.size()) *ok = false;
      return;
    }
    if (v->children.size() != v->keys.size() + 1) {
      *ok = false;
      return;
    }
    for (size_t i = 0; i < v->children.size(); ++i) {
      const Key* clo = (i == 0) ? lo : &v->keys[i - 1];
      const Key* chi = (i == v->keys.size()) ? hi : &v->keys[i];
      CheckRec(v->children[i].get(), false, clo, chi, ok);
      if (i > 0) {
        // Separator must equal the right subtree's minimum (compare with <
        // only, so Key needs no operator==).
        const Key& min = SubtreeMin(v->children[i].get());
        if (min < v->keys[i - 1] || v->keys[i - 1] < min) *ok = false;
      }
    }
  }

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace wt
