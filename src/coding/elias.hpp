// Elias gamma and delta codes [Elias 1975] over the library's LSB-first bit
// order, plus streaming BitWriter/BitReader.
//
// gamma(v), v >= 1:  (N-1) zero bits, a one bit, then the N-1 bits of v below
// its MSB (LSB-first), where N = bit_width(v). Length: 2N-1 bits.
// delta(v), v >= 1:  gamma(N) followed by the N-1 bits of v below its MSB.
//
// These are the run-length codes used by the dynamic RLE+gamma bitvector
// (paper Sec. 4.2) and the gap+delta baseline of Makinen--Navarro [18].
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "common/bit_array.hpp"
#include "common/bits.hpp"

namespace wt {

/// Encoded length of gamma(v) in bits.
constexpr size_t GammaLen(uint64_t v) {
  WT_DASSERT(v >= 1);
  return 2 * BitWidth(v) - 1;
}

/// Encoded length of delta(v) in bits.
constexpr size_t DeltaLen(uint64_t v) {
  WT_DASSERT(v >= 1);
  const unsigned n = BitWidth(v);
  return GammaLen(n) + (n - 1);
}

/// Appends bits to a BitArray.
class BitWriter {
 public:
  explicit BitWriter(BitArray* out) : out_(out) {}

  void WriteBit(bool b) { out_->PushBack(b); }
  void WriteBits(uint64_t value, size_t len) { out_->AppendBits(value, len); }

  void WriteGamma(uint64_t v) {
    WT_DASSERT(v >= 1);
    const unsigned n = BitWidth(v);
    // (n-1) zeros then a one: the value 2^(n-1) written LSB-first in n bits.
    out_->AppendBits(uint64_t(1) << (n - 1), n);
    out_->AppendBits(v & LowMask(n - 1), n - 1);
  }

  void WriteDelta(uint64_t v) {
    WT_DASSERT(v >= 1);
    const unsigned n = BitWidth(v);
    WriteGamma(n);
    out_->AppendBits(v & LowMask(n - 1), n - 1);
  }

 private:
  BitArray* out_;
};

/// Reads bits from a word array starting at a given bit position.
/// `end` bounds the readable range so that word loads never run past the
/// backing storage.
class BitReader {
 public:
  BitReader(const uint64_t* words, size_t pos, size_t end)
      : words_(words), pos_(pos), end_(end) {}
  explicit BitReader(const BitArray& a, size_t pos = 0)
      : words_(a.data()), pos_(pos), end_(a.size()) {}

  bool ReadBit() {
    WT_DASSERT(pos_ < end_);
    const bool b = (words_[pos_ >> 6] >> (pos_ & 63)) & 1;
    ++pos_;
    return b;
  }

  uint64_t ReadBits(size_t len) {
    WT_DASSERT(pos_ + len <= end_);
    const uint64_t v = LoadBits(words_, pos_, len);
    pos_ += len;
    return v;
  }

  uint64_t ReadGamma() {
    // Find the terminating 1 of the unary part. A valid gamma code always
    // has its terminator within 64 bits of the current position, so one
    // bounded load suffices.
    const uint64_t probe = LoadBits(words_, pos_, std::min<size_t>(64, end_ - pos_));
    WT_DASSERT(probe != 0);
    const unsigned zeros = static_cast<unsigned>(std::countr_zero(probe));
    pos_ += zeros + 1;
    const uint64_t low = ReadBits(zeros);
    return (uint64_t(1) << zeros) | low;
  }

  uint64_t ReadDelta() {
    const uint64_t n = ReadGamma();
    const uint64_t low = ReadBits(static_cast<size_t>(n - 1));
    return (uint64_t(1) << (n - 1)) | low;
  }

  size_t position() const { return pos_; }
  void Seek(size_t pos) { pos_ = pos; }

 private:
  const uint64_t* words_;
  size_t pos_;
  size_t end_;
};

}  // namespace wt
