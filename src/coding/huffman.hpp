// Canonical Huffman codes over an arbitrary (sparse) integer alphabet.
//
// Section 3 of the paper observes that "the Huffman-tree shaped Wavelet Tree
// ... can be obtained as a Wavelet Trie by mapping each symbol to its Huffman
// code": the codewords of a Huffman code form a prefix-free set, so they are
// a valid Wavelet Trie alphabet, and the induced Patricia trie *is* the
// Huffman tree. core/huffman_wavelet_tree.hpp instantiates exactly that; this
// header provides the code construction.
//
// Codes are canonicalized (within each length, codewords are assigned in
// increasing symbol order), so the code is fully described by the sorted
// symbol list plus one length per symbol — which is also what Save/Load
// serialize. Construction is the standard two-queue O(sigma log sigma)
// algorithm on sorted frequencies.
#pragma once

#include <algorithm>
#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/bit_string.hpp"
#include "common/serialize.hpp"

namespace wt {

/// A canonical Huffman code for a set of (symbol, frequency) pairs.
/// Symbols are arbitrary uint64 values (the alphabet need not be
/// contiguous); every frequency must be positive.
class HuffmanCode {
 public:
  HuffmanCode() = default;

  /// Builds the code from positive symbol frequencies. Duplicated symbols
  /// are rejected. A single-symbol alphabet gets the 1-bit codeword "0"
  /// (a zero-length codeword cannot label a Wavelet Trie leaf usefully and
  /// would make the code non-instantaneous on decode).
  explicit HuffmanCode(const std::vector<std::pair<uint64_t, uint64_t>>& freqs) {
    WT_ASSERT_MSG(!freqs.empty(), "HuffmanCode: empty alphabet");
    symbols_.reserve(freqs.size());
    for (const auto& [sym, f] : freqs) {
      WT_ASSERT_MSG(f > 0, "HuffmanCode: zero frequency");
      symbols_.push_back(sym);
    }
    std::sort(symbols_.begin(), symbols_.end());
    WT_ASSERT_MSG(std::adjacent_find(symbols_.begin(), symbols_.end()) ==
                      symbols_.end(),
                  "HuffmanCode: duplicate symbol");
    lengths_ = CodeLengths(freqs);
    FinishFromLengths();
  }

  /// Convenience: builds from a sequence by counting symbol frequencies.
  static HuffmanCode FromSequence(const std::vector<uint64_t>& seq) {
    WT_ASSERT_MSG(!seq.empty(), "HuffmanCode: empty sequence");
    std::unordered_map<uint64_t, uint64_t> counts;
    for (uint64_t v : seq) ++counts[v];
    std::vector<std::pair<uint64_t, uint64_t>> freqs(counts.begin(), counts.end());
    return HuffmanCode(freqs);
  }

  size_t num_symbols() const { return symbols_.size(); }
  const std::vector<uint64_t>& symbols() const { return symbols_; }

  /// True iff `sym` has a codeword.
  bool Contains(uint64_t sym) const { return IndexOf(sym).has_value(); }

  /// The codeword of `sym`, MSB-first. Asserts that sym is in the alphabet.
  BitString Encode(uint64_t sym) const {
    const auto idx = IndexOf(sym);
    WT_ASSERT_MSG(idx.has_value(), "HuffmanCode: symbol not in alphabet");
    return CodewordAt(*idx);
  }

  /// Codeword length in bits of `sym`; nullopt if not in the alphabet.
  std::optional<size_t> Length(uint64_t sym) const {
    const auto idx = IndexOf(sym);
    if (!idx) return std::nullopt;
    return lengths_[*idx];
  }

  /// Decodes one codeword from the front of `bits`; the codeword must be a
  /// prefix of the span. Returns (symbol, codeword length). O(length) time
  /// via the canonical first-code table.
  std::pair<uint64_t, size_t> Decode(BitSpan bits) const {
    uint64_t code = 0;
    for (size_t len = 1; len <= max_length_; ++len) {
      WT_ASSERT_MSG(len <= bits.size(), "HuffmanCode: truncated codeword");
      code = (code << 1) | (bits.Get(len - 1) ? 1 : 0);
      const uint64_t first = first_code_[len];
      const uint64_t count = length_count_[len];
      if (count > 0 && code < first + count) {
        const size_t idx = first_index_[len] + static_cast<size_t>(code - first);
        return {sorted_by_code_[idx], len};
      }
    }
    WT_ASSERT_MSG(false, "HuffmanCode: invalid codeword");
    return {0, 0};
  }

  /// Total encoded size of a sequence with these frequencies:
  /// sum freq(sym) * len(sym). By Huffman optimality this is within one bit
  /// per symbol of the entropy.
  uint64_t EncodedBits(const std::vector<std::pair<uint64_t, uint64_t>>& freqs) const {
    uint64_t total = 0;
    for (const auto& [sym, f] : freqs) {
      const auto len = Length(sym);
      WT_ASSERT(len.has_value());
      total += f * *len;
    }
    return total;
  }

  size_t max_length() const { return max_length_; }

  void Save(std::ostream& out) const {
    WriteVec(out, symbols_);
    std::vector<uint32_t> lens(lengths_.begin(), lengths_.end());
    WriteVec(out, lens);
  }

  void Load(std::istream& in) {
    symbols_ = ReadVec<uint64_t>(in);
    const auto lens = ReadVec<uint32_t>(in);
    WT_ASSERT_MSG(lens.size() == symbols_.size(), "HuffmanCode: corrupt stream");
    lengths_.assign(lens.begin(), lens.end());
    FinishFromLengths();
  }

  size_t SizeInBits() const {
    return 64 * symbols_.capacity() + 8 * sizeof(size_t) * lengths_.capacity() +
           8 * sizeof(*this);
  }

 private:
  /// Optimal code lengths via the two-queue method (queue one: sorted leaf
  /// weights; queue two: internal-node weights, produced in increasing
  /// order). Depths are recovered by walking the parent links.
  std::vector<size_t> CodeLengths(
      const std::vector<std::pair<uint64_t, uint64_t>>& freqs) const {
    const size_t k = freqs.size();
    if (k == 1) return {1};
    // Leaves sorted by (frequency, symbol) for determinism.
    std::vector<std::pair<uint64_t, uint64_t>> leaves(freqs);  // (freq, sym)
    for (auto& p : leaves) std::swap(p.first, p.second);
    std::sort(leaves.begin(), leaves.end());
    // Node arena: first k entries are leaves, then k-1 internal nodes.
    std::vector<uint64_t> weight(2 * k - 1);
    std::vector<size_t> parent(2 * k - 1, SIZE_MAX);
    for (size_t i = 0; i < k; ++i) weight[i] = leaves[i].first;
    size_t leaf_head = 0, internal_head = k, next_internal = k;
    auto pop_min = [&]() -> size_t {
      const bool take_leaf =
          leaf_head < k && (internal_head >= next_internal ||
                            weight[leaf_head] <= weight[internal_head]);
      return take_leaf ? leaf_head++ : internal_head++;
    };
    while (next_internal < 2 * k - 1) {
      const size_t a = pop_min();
      const size_t b = pop_min();
      weight[next_internal] = weight[a] + weight[b];
      parent[a] = parent[b] = next_internal;
      ++next_internal;
    }
    // Depth of each leaf = number of parent hops to the root.
    std::vector<size_t> depth(2 * k - 1, 0);
    for (size_t i = 2 * k - 2; i-- > 0;) depth[i] = depth[parent[i]] + 1;
    // Map back to the symbol-sorted order used by symbols_.
    std::vector<size_t> lens(k);
    for (size_t i = 0; i < k; ++i) {
      const uint64_t sym = leaves[i].second;
      const size_t pos = static_cast<size_t>(
          std::lower_bound(symbols_.begin(), symbols_.end(), sym) -
          symbols_.begin());
      lens[pos] = depth[i];
    }
    return lens;
  }

  /// Assigns canonical codewords from lengths_ and builds decode tables.
  void FinishFromLengths() {
    const size_t k = symbols_.size();
    max_length_ = 0;
    for (size_t len : lengths_) max_length_ = std::max(max_length_, len);
    WT_ASSERT_MSG(max_length_ <= 63, "HuffmanCode: codeword longer than 63 bits");
    length_count_.assign(max_length_ + 1, 0);
    for (size_t len : lengths_) ++length_count_[len];
    // Kraft check: sum 2^(max-len) must equal 2^max for a complete code.
    uint64_t kraft = 0;
    for (size_t len = 1; len <= max_length_; ++len) {
      kraft += length_count_[len] << (max_length_ - len);
    }
    WT_ASSERT_MSG(kraft == (uint64_t(1) << max_length_) || k == 1,
                  "HuffmanCode: lengths violate Kraft equality");
    // Canonical numbering: first code of each length.
    first_code_.assign(max_length_ + 2, 0);
    uint64_t code = 0;
    for (size_t len = 1; len <= max_length_; ++len) {
      code = (code + length_count_[len - 1]) << 1;
      first_code_[len] = code;
    }
    // Codeword of symbol i = first_code_[len] + (rank of i among same-length
    // symbols in symbol order). Precompute per-symbol code values.
    std::vector<uint64_t> next(max_length_ + 1);
    for (size_t len = 1; len <= max_length_; ++len) next[len] = first_code_[len];
    codes_.resize(k);
    for (size_t i = 0; i < k; ++i) codes_[i] = next[lengths_[i]]++;
    // Decode tables: symbols grouped by length, each group in code order.
    first_index_.assign(max_length_ + 1, 0);
    for (size_t len = 1; len <= max_length_; ++len) {
      first_index_[len] = first_index_[len - 1] + length_count_[len - 1];
    }
    sorted_by_code_.resize(k);
    std::vector<size_t> fill = first_index_;
    for (size_t i = 0; i < k; ++i) sorted_by_code_[fill[lengths_[i]]++] = symbols_[i];
  }

  std::optional<size_t> IndexOf(uint64_t sym) const {
    const auto it = std::lower_bound(symbols_.begin(), symbols_.end(), sym);
    if (it == symbols_.end() || *it != sym) return std::nullopt;
    return static_cast<size_t>(it - symbols_.begin());
  }

  BitString CodewordAt(size_t idx) const {
    BitString out;
    const size_t len = lengths_[idx];
    for (size_t b = len; b-- > 0;) out.PushBack((codes_[idx] >> b) & 1);
    return out;
  }

  std::vector<uint64_t> symbols_;      // sorted
  std::vector<size_t> lengths_;        // per symbol, same order as symbols_
  std::vector<uint64_t> codes_;        // canonical code values
  size_t max_length_ = 0;
  std::vector<uint64_t> length_count_;  // #codewords per length
  std::vector<uint64_t> first_code_;    // canonical first code per length
  std::vector<size_t> first_index_;     // cumulative count per length
  std::vector<uint64_t> sorted_by_code_;  // symbols grouped by (length, code)
};

}  // namespace wt
