// Cursors: pull-style enumeration for the public wtrie API.
//
// The core structures expose push-style visitors (ForEachInRange,
// DistinctInRange) — natural for the trie traversals, awkward at an API
// boundary: the caller cannot pause, compose, or early-exit without
// exceptions. The facade converts them into forward cursors:
//
//   auto cur = seq.Scan(l, r).value();
//   while (cur.Next()) use(cur.position(), cur.value());
//
// ScanCursor pulls the underlying Section 5 sequential scan in fixed-size
// chunks, so the one-Rank-per-node amortization of ForEachInRange is kept
// within each chunk while memory stays O(chunk). DistinctCursor materializes
// its entries up front (the distinct set of a range is the natural result
// granularity, and the lexicographic traversal cannot be usefully paused).
//
// Cursors borrow the sequence they came from: the Sequence must outlive
// them, and (for mutable policies) must not be mutated while a cursor is
// live.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/bit_string.hpp"

namespace wtrie {

/// Forward cursor over the decoded values of positions [l, r), in order.
template <typename Trie, typename Codec>
class ScanCursor {
 public:
  using Value = typename Codec::Value;

  ScanCursor(const Trie* trie, const Codec* codec, size_t l, size_t r)
      : trie_(trie), codec_(codec), next_(l), end_(r) {
    WT_DASSERT(l <= r);
    buf_.reserve(kChunk < r - l ? kChunk : r - l);
  }

  /// Advances to the next entry. Returns false once the range is exhausted;
  /// position()/value() are valid only after a Next() that returned true.
  bool Next() {
    if (buf_pos_ + 1 < buf_.size()) {
      ++buf_pos_;
      return true;
    }
    if (next_ >= end_) return false;
    Refill();
    return true;
  }

  /// Sequence position of the current entry.
  size_t position() const { return buf_base_ + buf_pos_; }
  /// Decoded value of the current entry.
  const Value& value() const { return buf_[buf_pos_]; }

  /// Entries not yet returned by Next().
  size_t remaining() const {
    const size_t buffered = buf_.empty() ? 0 : buf_.size() - (buf_pos_ + 1);
    return (end_ - next_) + buffered;
  }

 private:
  static constexpr size_t kChunk = 1024;

  void Refill() {
    const size_t chunk_end = next_ + kChunk < end_ ? next_ + kChunk : end_;
    buf_.clear();
    trie_->ForEachInRange(next_, chunk_end,
                          [this](size_t, const wt::BitString& s) {
                            buf_.push_back(codec_->Decode(s.Span()));
                          });
    buf_base_ = next_;
    buf_pos_ = 0;
    next_ = chunk_end;
  }

  const Trie* trie_;
  const Codec* codec_;
  size_t next_;  // first position not yet buffered
  size_t end_;
  size_t buf_base_ = 0;           // sequence position of buf_[0]
  size_t buf_pos_ = size_t(-1);   // index of the current entry within buf_
  std::vector<Value> buf_;
};

/// Forward cursor over (distinct value, multiplicity) pairs of a range, in
/// lexicographic order of the encoded strings. Also used for the Section 5
/// frequent-elements result.
template <typename Value>
class DistinctCursor {
 public:
  struct Entry {
    Value value;
    size_t count;
  };

  explicit DistinctCursor(std::vector<Entry> entries)
      : entries_(std::move(entries)) {}

  bool Next() {
    if (pos_ == entries_.size()) return false;
    ++pos_;
    return pos_ < entries_.size();
  }

  const Value& value() const { return entries_[pos_].value; }
  size_t count() const { return entries_[pos_].count; }

  /// Total number of entries (independent of cursor progress).
  size_t size() const { return entries_.size(); }

 private:
  std::vector<Entry> entries_;
  size_t pos_ = size_t(-1);
};

}  // namespace wtrie
