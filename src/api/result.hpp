// Error model of the public wtrie API (src/api/sequence.hpp).
//
// The core structures treat precondition violations as programming errors
// and abort (common/assert.hpp). The public boundary must not: callers feed
// it untrusted positions, ranges, and serialized bytes. Every fallible
// operation on wtrie::Sequence therefore returns a Status or a Result<T> —
// a value-or-Status sum type in the absl/leveldb tradition — and the facade
// validates its arguments *before* touching the asserting core.
//
// No exceptions, no allocation on the success path: Status carries an enum
// plus a static message string.
#pragma once

#include <optional>
#include <utility>

#include "common/assert.hpp"
#include "common/serialize.hpp"

namespace wtrie {

enum class ErrorCode {
  kOk = 0,
  kOutOfRange,       // position/range outside [0, size()]
  kInvalidArgument,  // e.g. l > r, threshold 0
  kNotFound,         // Select past the last occurrence, no majority, ...
  kCorruptStream,    // bad magic / checksum mismatch / garbage payload
  kVersionMismatch,  // format version outside what this reader supports
  kTruncatedStream,  // stream ended inside the envelope
  kIoError,          // underlying stream write failure
  kCapacityExceeded, // append would outgrow the 2^32-1-beta-bit static image
};

/// Human-readable name of an error code (static storage).
inline const char* ErrorCodeName(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kOutOfRange: return "out of range";
    case ErrorCode::kInvalidArgument: return "invalid argument";
    case ErrorCode::kNotFound: return "not found";
    case ErrorCode::kCorruptStream: return "corrupt stream";
    case ErrorCode::kVersionMismatch: return "version mismatch";
    case ErrorCode::kTruncatedStream: return "truncated stream";
    case ErrorCode::kIoError: return "i/o error";
    case ErrorCode::kCapacityExceeded: return "capacity exceeded";
  }
  return "unknown";
}

/// Outcome of a void operation. [[nodiscard]] so mutation failures cannot be
/// silently dropped.
class [[nodiscard]] Status {
 public:
  Status() = default;  // ok
  static Status Ok() { return Status(); }
  static Status Error(ErrorCode code, const char* message) {
    WT_DASSERT(code != ErrorCode::kOk);
    return Status(code, message);
  }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  /// Static explanatory string ("" when ok).
  const char* message() const { return message_; }

 private:
  Status(ErrorCode code, const char* message) : code_(code), message_(message) {}

  ErrorCode code_ = ErrorCode::kOk;
  const char* message_ = "";
};

/// The one translation from envelope read failures to API errors, shared by
/// every Load at the public boundary (Sequence, Table).
inline Status StatusFromEnvelopeError(wt::VersionedEnvelope::ReadError err) {
  using RE = wt::VersionedEnvelope::ReadError;
  switch (err) {
    case RE::kOk:
      return Status::Ok();
    case RE::kBadMagic:
      return Status::Error(ErrorCode::kCorruptStream,
                           "Load: stream magic mismatch");
    case RE::kBadVersion:
      return Status::Error(ErrorCode::kVersionMismatch,
                           "Load: format version not supported");
    case RE::kTruncated:
      return Status::Error(ErrorCode::kTruncatedStream,
                           "Load: stream ended inside the envelope");
    case RE::kChecksumMismatch:
      return Status::Error(ErrorCode::kCorruptStream,
                           "Load: payload checksum mismatch");
  }
  return Status::Error(ErrorCode::kCorruptStream, "Load: unknown read error");
}

/// Value-or-Status. Supports move-only T (Sequence<AppendOnly> and
/// Sequence<Dynamic> own move-only tries).
template <typename T>
class [[nodiscard]] Result {
 public:
  /*implicit*/ Result(T value)  // NOLINT: ergonomic returns
      : value_(std::move(value)) {}
  /*implicit*/ Result(Status status)  // NOLINT
      : status_(std::move(status)) {
    WT_DASSERT(!status_.ok());  // an ok Result must carry a value
  }

  bool ok() const { return status_.ok(); }
  ErrorCode code() const { return status_.code(); }
  const Status& status() const { return status_; }

  /// The contained value; asserts ok(). Check ok() (or value_or) first when
  /// the input was untrusted.
  const T& value() const& {
    WT_ASSERT_MSG(ok(), "Result: value() on an error");
    return *value_;
  }
  T& value() & {
    WT_ASSERT_MSG(ok(), "Result: value() on an error");
    return *value_;
  }
  T&& value() && {
    WT_ASSERT_MSG(ok(), "Result: value() on an error");
    return std::move(*value_);
  }

  T value_or(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace wtrie
