// wtrie::Sequence<Policy, Codec> — the unified public API of the library.
//
// The paper (Grossi & Ottaviano, PODS 2012) defines ONE abstract interface —
// Access / Rank / Select, the prefix variants RankPrefix / SelectPrefix, the
// Section 5 range analytics, and Insert / Delete — realized by three
// structures: the static succinct representation (Theorem 3.7), the
// append-only Wavelet Trie (Theorem 4.3), and the fully-dynamic Wavelet Trie
// (Theorem 4.4). This header is that interface as a single facade:
//
//   wtrie::Sequence<wtrie::Static>      — Theorem 3.7 (immutable, smallest)
//   wtrie::Sequence<wtrie::AppendOnly>  — Theorem 4.3 (streaming ingest)
//   wtrie::Sequence<wtrie::Dynamic>     — Theorem 4.4 (Insert/Delete)
//
// One operation set across the policies; mutations are compile-time gated by
// the policy's capability flags (`requires Policy::kMutable`), everything
// else is uniform. Differences from the core classes it wraps:
//
//   * bounds-checked Result<T>/Status returns at the boundary (result.hpp)
//     instead of aborting asserts — untrusted positions, ranges, and bytes
//     are the caller's prerogative here;
//   * cursor-based enumeration (cursor.hpp) instead of std::function
//     visitors;
//   * explicit lifecycle transitions: Freeze() (any policy -> Static, via
//     the word-parallel BulkBuild) and Thaw<P>() (Static -> a mutable
//     policy, via enumerate-and-replay: the Section 5 sequential scan feeds
//     AppendBatch, so extraction pays one Rank per trie node and replay is
//     word-parallel end to end);
//   * whole-structure persistence for ALL policies: Save/Load wrap a
//     versioned, checksummed envelope (common/serialize.hpp). Mutable
//     policies persist through their canonical static image and thaw on
//     load, so a file written by any policy can be loaded into any other.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "api/cursor.hpp"
#include "api/result.hpp"
#include "common/serialize.hpp"
#include "core/codec.hpp"
#include "core/dynamic_wavelet_trie.hpp"
#include "core/wavelet_trie.hpp"
#include "storage/image.hpp"
#include "storage/pager.hpp"

namespace wtrie {

// ----------------------------------------------------------------- policies

/// Theorem 3.7: immutable succinct representation. Smallest footprint,
/// O(|s| + h_s) queries, no updates.
struct Static {
  using Trie = wt::WaveletTrie;
  static constexpr uint8_t kPolicyId = 0;
  static constexpr bool kMutable = false;
  static constexpr bool kFullyDynamic = false;
  static constexpr const char* kName = "Static";
};

/// Theorem 4.3: append-only Wavelet Trie. O(|s| + h_s) Append, queries as
/// Static plus the streaming ingest path (AppendBatch).
struct AppendOnly {
  using Trie = wt::AppendOnlyWaveletTrie;
  static constexpr uint8_t kPolicyId = 1;
  static constexpr bool kMutable = true;
  static constexpr bool kFullyDynamic = false;
  static constexpr const char* kName = "AppendOnly";
};

/// Theorem 4.4: fully-dynamic Wavelet Trie. Insert/Delete at arbitrary
/// positions in O(|s| + h_s log n).
struct Dynamic {
  using Trie = wt::DynamicWaveletTrie;
  static constexpr uint8_t kPolicyId = 2;
  static constexpr bool kMutable = true;
  static constexpr bool kFullyDynamic = true;
  static constexpr const char* kName = "Dynamic";
};

namespace internal {

template <typename C>
constexpr uint8_t CodecIdOf() {
  if constexpr (requires { C::kCodecId; }) {
    return C::kCodecId;
  } else {
    return 0;  // custom codec: id not checked on load
  }
}

template <typename C>
constexpr bool kHasCodecState = requires(const C& c, std::ostream& o) {
  c.SaveState(o);
};

/// Overflow-safe test for "would appending `add` more encoded bits push the
/// running total past `max`". Kept as a pure function so the boundary
/// arithmetic is unit-testable without materializing 2^32 bits.
constexpr bool CapacityWouldOverflow(uint64_t current, uint64_t add,
                                     uint64_t max) {
  return current > max || add > max - current;
}

}  // namespace internal

// ----------------------------------------------------------------- Sequence

template <typename Policy, typename Codec = wt::ByteCodec>
class Sequence {
 public:
  using Value = typename Codec::Value;
  using Trie = typename Policy::Trie;
  using Cursor = ScanCursor<Trie, Codec>;

  static constexpr bool kMutable = Policy::kMutable;
  static constexpr bool kFullyDynamic = Policy::kFullyDynamic;
  static constexpr bool kHasPrefixCodec = requires(const Codec& c, Value v) {
    { c.EncodePrefix(v) } -> std::convertible_to<wt::BitString>;
  };

  Sequence() = default;
  explicit Sequence(Codec codec) : codec_(std::move(codec)) {}

  /// Uniform bulk construction for every policy: Static builds through the
  /// word-parallel BulkBuild, mutable policies through AppendBatch (one trie
  /// traversal per node per batch).
  explicit Sequence(const std::vector<Value>& values, Codec codec = {})
      : codec_(std::move(codec)) {
    std::vector<wt::BitString> enc = EncodeAll(values);
    encoded_bits_ = TotalBits(enc);
    if constexpr (kMutable) {
      trie_.AppendBatch(enc);
    } else {
      trie_ = Trie::BulkBuild(enc);
    }
  }

  /// Builds from strings already encoded by (an equal instantiation of)
  /// `codec` — the engine layer's hook for WAL replay and segment
  /// compaction, where values were encoded once at ingest and round-trip as
  /// bits. The distinct set must be prefix-free, as with every codec here.
  static Sequence FromEncoded(const std::vector<wt::BitString>& enc,
                              Codec codec = {}) {
    Sequence out(std::move(codec));
    out.encoded_bits_ = TotalBits(enc);
    if constexpr (kMutable) {
      out.trie_.AppendBatch(enc);
    } else {
      out.trie_ = Trie::BulkBuild(enc);
    }
    return out;
  }

  // ------------------------------------------------------------- mutations

  /// Appends v at the end (paper: Insert(s, n)). O(|s| + h_s), plus the
  /// log n factor under the Dynamic policy.
  Status Append(const Value& v)
    requires kMutable
  {
    wt::BitString enc = codec_.Encode(v);
    if (const Status s = ReserveBits(enc.size()); !s.ok()) return s;
    trie_.Append(enc);
    return Status::Ok();
  }

  /// Appends a whole batch in one word-parallel trie pass — observably
  /// identical to Append on each value, in order. All-or-nothing: a batch
  /// that would overflow the capacity budget is rejected whole.
  Status AppendBatch(const std::vector<Value>& values)
    requires kMutable
  {
    return AppendEncodedBatch(EncodeAll(values));
  }

  /// AppendBatch over strings already encoded by (an equal instantiation
  /// of) this sequence's codec — the engine layer's ingest hook: values are
  /// encoded once, logged to the WAL as bits, and land here without a
  /// second codec pass.
  Status AppendEncodedBatch(const std::vector<wt::BitString>& enc)
    requires kMutable
  {
    if (const Status s = ReserveBits(TotalBits(enc)); !s.ok()) return s;
    trie_.AppendBatch(enc);
    return Status::Ok();
  }

  /// Zero-copy variant: the spans must stay valid for the duration of the
  /// call. The engine's ingest path splits one batch across shards as
  /// spans over the caller's buffer, so nothing is moved or re-owned.
  Status AppendEncodedSpans(std::span<const wt::BitSpan> enc)
    requires kMutable
  {
    uint64_t bits = 0;
    for (const wt::BitSpan& s : enc) bits += s.size();
    return AppendEncodedSpans(enc, bits);
  }

  /// As above with the summed span bits precomputed by the caller (the
  /// engine accumulates them while splitting a batch, saving a pass over
  /// the spans). `total_bits` must equal the sum of the span lengths.
  Status AppendEncodedSpans(std::span<const wt::BitSpan> enc,
                            uint64_t total_bits)
    requires kMutable
  {
    if (const Status s = ReserveBits(total_bits); !s.ok()) return s;
    trie_.AppendBatch(enc);
    return Status::Ok();
  }

  /// Inserts v before position pos (paper: Insert(s, pos)).
  Status Insert(const Value& v, size_t pos)
    requires kFullyDynamic
  {
    if (pos > size()) {
      return Status::Error(ErrorCode::kOutOfRange, "Insert: pos > size()");
    }
    wt::BitString enc = codec_.Encode(v);
    if (const Status s = ReserveBits(enc.size()); !s.ok()) return s;
    trie_.Insert(enc, pos);
    return Status::Ok();
  }

  /// Deletes the value at position pos (paper: Delete(pos)). Deleting the
  /// last occurrence shrinks the alphabet.
  Status Delete(size_t pos)
    requires kFullyDynamic
  {
    if (pos >= size()) {
      return Status::Error(ErrorCode::kOutOfRange, "Delete: pos >= size()");
    }
    trie_.Delete(pos);
    return Status::Ok();
  }

  // --------------------------------------------------------------- queries

  size_t size() const { return trie_.size(); }
  bool empty() const { return trie_.size() == 0; }
  /// Number of distinct values (the alphabet Sset).
  size_t NumDistinct() const { return trie_.NumDistinct(); }

  /// The value at position pos (paper: Access). O(|result| + h).
  Result<Value> Access(size_t pos) const {
    if (pos >= size()) {
      return Status::Error(ErrorCode::kOutOfRange, "Access: pos >= size()");
    }
    return codec_.Decode(trie_.Access(pos).Span());
  }

  /// Occurrences of v in positions [0, pos) (paper: Rank).
  Result<size_t> Rank(const Value& v, size_t pos) const {
    if (pos > size()) {
      return Status::Error(ErrorCode::kOutOfRange, "Rank: pos > size()");
    }
    return trie_.Rank(codec_.Encode(v), pos);
  }

  /// Position of the (idx+1)-th occurrence of v (paper: Select; idx
  /// 0-based). kNotFound when v occurs fewer than idx+1 times.
  Result<size_t> Select(const Value& v, size_t idx) const {
    const auto pos = trie_.Select(codec_.Encode(v), idx);
    if (!pos) {
      return Status::Error(ErrorCode::kNotFound,
                           "Select: fewer than idx+1 occurrences");
    }
    return *pos;
  }

  /// Total occurrences of v.
  size_t Count(const Value& v) const {
    return trie_.Rank(codec_.Encode(v), size());
  }

  /// Occurrences of v in [l, r).
  Result<size_t> RangeCount(const Value& v, size_t l, size_t r) const {
    if (const Status s = CheckRange(l, r); !s.ok()) return s;
    const wt::BitString enc = codec_.Encode(v);
    return trie_.Rank(enc, r) - trie_.Rank(enc, l);
  }

  // -------------------------------------------------------- batched queries
  // Observably identical to the per-element loops, but executed as ONE
  // node-grouped trie traversal per batch (DESIGN.md #6) under the Static
  // policy: each touched node's directory lines are loaded once per batch
  // instead of once per query. Policies whose trie has no native batch path
  // (AppendOnly/Dynamic) fall back to the loop, so the API is uniform.

  /// out[i] == Access(positions[i]); positions in any order, duplicates ok.
  Result<std::vector<Value>> AccessBatch(
      const std::vector<size_t>& positions) const {
    for (const size_t p : positions) {
      if (p >= size()) {
        return Status::Error(ErrorCode::kOutOfRange,
                             "AccessBatch: pos >= size()");
      }
    }
    std::vector<Value> out;
    out.reserve(positions.size());
    if constexpr (requires { trie_.AccessBatch(std::span<const size_t>()); }) {
      for (const wt::BitString& s :
           trie_.AccessBatch(std::span<const size_t>(positions))) {
        out.push_back(codec_.Decode(s.Span()));
      }
    } else {
      for (const size_t p : positions) {
        out.push_back(codec_.Decode(trie_.Access(p).Span()));
      }
    }
    return out;
  }

  /// out[i] == Rank(values[i], positions[i]). values and positions must
  /// have equal lengths.
  Result<std::vector<size_t>> RankBatch(
      const std::vector<Value>& values,
      const std::vector<size_t>& positions) const {
    if (values.size() != positions.size()) {
      return Status::Error(ErrorCode::kInvalidArgument,
                           "RankBatch: values/positions length mismatch");
    }
    for (const size_t p : positions) {
      if (p > size()) {
        return Status::Error(ErrorCode::kOutOfRange, "RankBatch: pos > size()");
      }
    }
    const std::vector<wt::BitString> enc = EncodeAll(values);
    if constexpr (requires {
                    trie_.RankBatch(std::span<const wt::BitSpan>(),
                                    std::span<const size_t>());
                  }) {
      return trie_.RankBatch(Spans(enc), std::span<const size_t>(positions));
    } else {
      std::vector<size_t> out;
      out.reserve(values.size());
      for (size_t i = 0; i < values.size(); ++i) {
        out.push_back(trie_.Rank(enc[i], positions[i]));
      }
      return out;
    }
  }

  /// out[i] == Select(values[i], indices[i]), with nullopt where the value
  /// occurs fewer than indices[i]+1 times (the batch analogue of the single
  /// query's kNotFound).
  Result<std::vector<std::optional<size_t>>> SelectBatch(
      const std::vector<Value>& values,
      const std::vector<size_t>& indices) const {
    if (values.size() != indices.size()) {
      return Status::Error(ErrorCode::kInvalidArgument,
                           "SelectBatch: values/indices length mismatch");
    }
    const std::vector<wt::BitString> enc = EncodeAll(values);
    if constexpr (requires {
                    trie_.SelectBatch(std::span<const wt::BitSpan>(),
                                      std::span<const size_t>());
                  }) {
      return trie_.SelectBatch(Spans(enc), std::span<const size_t>(indices));
    } else {
      std::vector<std::optional<size_t>> out;
      out.reserve(values.size());
      for (size_t i = 0; i < values.size(); ++i) {
        out.push_back(trie_.Select(enc[i], indices[i]));
      }
      return out;
    }
  }

  // ------------------------------------------------------ prefix operations
  // Exposed when the codec preserves prefixes (ByteCodec / RawByteCodec);
  // Section 6's randomized codecs give them up by design.

  /// Values with prefix p in [0, pos) (paper: RankPrefix).
  Result<size_t> RankPrefix(const Value& p, size_t pos) const
    requires kHasPrefixCodec
  {
    if (pos > size()) {
      return Status::Error(ErrorCode::kOutOfRange, "RankPrefix: pos > size()");
    }
    return trie_.RankPrefix(codec_.EncodePrefix(p), pos);
  }

  /// Position of the (idx+1)-th value having prefix p (paper: SelectPrefix).
  Result<size_t> SelectPrefix(const Value& p, size_t idx) const
    requires kHasPrefixCodec
  {
    const auto pos = trie_.SelectPrefix(codec_.EncodePrefix(p), idx);
    if (!pos) {
      return Status::Error(ErrorCode::kNotFound,
                           "SelectPrefix: fewer than idx+1 matches");
    }
    return *pos;
  }

  /// Total values with prefix p.
  size_t CountPrefix(const Value& p) const
    requires kHasPrefixCodec
  {
    return trie_.RankPrefix(codec_.EncodePrefix(p), size());
  }

  /// Values with prefix p in [l, r).
  Result<size_t> RangeCountPrefix(const Value& p, size_t l, size_t r) const
    requires kHasPrefixCodec
  {
    if (const Status s = CheckRange(l, r); !s.ok()) return s;
    const wt::BitString enc = codec_.EncodePrefix(p);
    return trie_.RankPrefix(enc, r) - trie_.RankPrefix(enc, l);
  }

  // ------------------------------------------------- Section 5 analytics

  /// Sequential access over [l, r) as a forward cursor — one Rank per
  /// traversed trie node per cursor chunk, not per element.
  Result<Cursor> Scan(size_t l, size_t r) const {
    if (const Status s = CheckRange(l, r); !s.ok()) return s;
    return Cursor(&trie_, &codec_, l, r);
  }

  /// Distinct values in [l, r) with multiplicities, in lexicographic order
  /// of the encoded strings.
  Result<DistinctCursor<Value>> Distinct(size_t l, size_t r) const {
    if (const Status s = CheckRange(l, r); !s.ok()) return s;
    std::vector<typename DistinctCursor<Value>::Entry> entries;
    trie_.DistinctInRange(l, r, [&](const wt::BitString& s, size_t c) {
      entries.push_back({codec_.Decode(s.Span()), c});
    });
    return DistinctCursor<Value>(std::move(entries));
  }

  /// Distinct values with prefix p in [l, r) ("the distinct hostnames in a
  /// given time range").
  Result<DistinctCursor<Value>> DistinctWithPrefix(const Value& p, size_t l,
                                                   size_t r) const
    requires kHasPrefixCodec
  {
    if (const Status s = CheckRange(l, r); !s.ok()) return s;
    std::vector<typename DistinctCursor<Value>::Entry> entries;
    trie_.DistinctInRangeWithPrefix(codec_.EncodePrefix(p).Span(), l, r,
                                    [&](const wt::BitString& s, size_t c) {
                                      entries.push_back({codec_.Decode(s.Span()), c});
                                    });
    return DistinctCursor<Value>(std::move(entries));
  }

  /// The value occurring more than (r-l)/2 times in [l, r); kNotFound when
  /// no majority exists.
  Result<std::pair<Value, size_t>> Majority(size_t l, size_t r) const {
    if (const Status s = CheckRange(l, r); !s.ok()) return s;
    auto m = trie_.RangeMajority(l, r);
    if (!m) {
      return Status::Error(ErrorCode::kNotFound, "Majority: no majority");
    }
    return std::make_pair(codec_.Decode(m->first.Span()), m->second);
  }

  /// Values occurring at least `threshold` times in [l, r) (threshold >= 1).
  Result<DistinctCursor<Value>> Frequent(size_t l, size_t r,
                                         size_t threshold) const {
    if (const Status s = CheckRange(l, r); !s.ok()) return s;
    if (threshold == 0) {
      return Status::Error(ErrorCode::kInvalidArgument,
                           "Frequent: threshold must be >= 1");
    }
    std::vector<typename DistinctCursor<Value>::Entry> entries;
    trie_.RangeFrequent(l, r, threshold, [&](const wt::BitString& s, size_t c) {
      entries.push_back({codec_.Decode(s.Span()), c});
    });
    return DistinctCursor<Value>(std::move(entries));
  }

  // -------------------------------------------------------------- lifecycle

  /// Snapshots this sequence into the Static policy (Theorem 3.7) — the
  /// "flush" of a streaming ingest path. Extraction uses the Section 5
  /// sequential scan; construction uses the word-parallel BulkBuild.
  Sequence<Static, Codec> Freeze() const {
    Sequence<Static, Codec> out(codec_);
    out.encoded_bits_ = encoded_bits_;
    if constexpr (kMutable) {
      out.trie_ = wt::WaveletTrie::BulkBuild(ExtractEncoded());
    } else {
      out.trie_ = trie_;      // already static: plain copy
      out.storage_ = storage_;  // a borrowed trie needs its blob alive
    }
    return out;
  }

  /// Re-opens a Static sequence under a mutable policy — the inverse of
  /// Freeze. Enumerate-and-replay: the sequential scan extracts the encoded
  /// strings (one Rank per trie node for the whole sequence), AppendBatch
  /// replays them word-parallel. Queries are identical before and after.
  template <typename P2>
  Sequence<P2, Codec> Thaw() const
    requires(!kMutable && P2::kMutable)
  {
    Sequence<P2, Codec> out(codec_);
    std::vector<wt::BitString> enc = ExtractEncoded();
    out.encoded_bits_ = TotalBits(enc);
    out.trie_.AppendBatch(enc);
    return out;
  }

  // ------------------------------------------------------------ persistence

  static constexpr uint64_t kMagic = 0x5754534551415031ull;  // "WTSEQAP1"
  // v2: the embedded WaveletTrie image switched to the directory-free RRR
  // payload (trie stream version 3); v1 files fail the envelope version
  // check with a clean Load error instead of tripping the core loader's
  // aborting assert. v3: the consumed encoded-bits budget is persisted in
  // the payload, so static Load no longer reconstructs it with the
  // O(alphabet) distinct walk — that walk survives only as the v2 compat
  // path (kMinFormatVersion stays at 2; both payloads embed the same trie
  // stream).
  static constexpr uint32_t kFormatVersion = 3;
  static constexpr uint32_t kMinFormatVersion = 2;

  /// Serializes the whole structure: versioned, checksummed envelope around
  /// [codec state][canonical static image]. Mutable policies are frozen into
  /// the static image on the fly — every policy writes the same payload
  /// format, so any policy can Load any file.
  Status Save(std::ostream& out) const {
    // Known limitation: saving a mutable policy materializes the extracted
    // strings and the static image in memory before the envelope is
    // written (the checksum needs the whole payload). Shard very large
    // sequences at the application level before saving.
    std::ostringstream payload;
    if constexpr (internal::kHasCodecState<Codec>) {
      codec_.SaveState(payload);
    }
    wt::WritePod<uint64_t>(payload, encoded_bits_);  // v3 payload field
    if constexpr (kMutable) {
      wt::WaveletTrie::BulkBuild(ExtractEncoded()).Save(payload);
    } else {
      trie_.Save(payload);
    }
    wt::VersionedEnvelope::Write(out, kMagic, kFormatVersion, Tag(),
                                 std::move(payload).str());
    if (!out.good()) {
      return Status::Error(ErrorCode::kIoError, "Save: stream write failed");
    }
    return Status::Ok();
  }

  /// Deserializes a Sequence written by Save (under any policy). The codec
  /// instantiation must match the one the file was written with. Corrupt,
  /// truncated, or mismatched input yields an error instead of an abort:
  /// the payload is checksum-verified before the aborting core loaders
  /// parse it. Note the checksum is an *integrity* check (accidental
  /// corruption), not authentication — a deliberately forged payload with
  /// a matching checksum can still trip the core loaders' asserts.
  static Result<Sequence> Load(std::istream& in) {
    uint32_t tag = 0;
    uint32_t version = 0;
    std::string payload;
    const Status env = StatusFromEnvelopeError(
        wt::VersionedEnvelope::Read(in, kMagic, kFormatVersion, &tag, &payload,
                                    /*min_version=*/kMinFormatVersion,
                                    &version));
    if (!env.ok()) return env;
    // The saved codec id must match the loading instantiation's. Custom
    // codecs without kCodecId all share id 0 — two *different* custom
    // codecs are indistinguishable to this check (documented limitation),
    // but any custom/built-in mix is rejected.
    const uint8_t codec_id = static_cast<uint8_t>(tag & 0xFF);
    if (codec_id != internal::CodecIdOf<Codec>()) {
      return Status::Error(ErrorCode::kInvalidArgument,
                           "Load: stream was saved with a different codec");
    }
    std::istringstream body(payload);
    Sequence out;
    if constexpr (internal::kHasCodecState<Codec>) {
      out.codec_.LoadState(body);
    }
    uint64_t saved_bits = 0;
    bool have_saved_bits = false;
    if (version >= 3) {
      // v3 payloads persist the consumed budget outright.
      if (!wt::TryReadPod(body, &saved_bits)) {
        return Status::Error(ErrorCode::kTruncatedStream,
                             "Load: payload ended before encoded-bits field");
      }
      have_saved_bits = true;
    }
    wt::WaveletTrie image;
    image.Load(body);
    if constexpr (kMutable) {
      std::vector<wt::BitString> enc;
      enc.reserve(image.size());
      image.ForEachInRange(0, image.size(),
                           [&](size_t, const wt::BitString& s) {
                             enc.push_back(s);
                           });
      out.encoded_bits_ = TotalBits(enc);
      out.trie_.AppendBatch(enc);
    } else {
      // Capacity accounting downstream (e.g. the engine's compaction
      // guard) relies on EncodedBits() being faithful for loaded segments,
      // not just freshly built ones. v2 compat path: reconstruct the sum
      // with the O(alphabet) distinct walk the pre-v3 loader used.
      if (!have_saved_bits) {
        image.ForEachDistinct([&](const wt::BitString& s, size_t count) {
          saved_bits += static_cast<uint64_t>(s.size()) * count;
        });
      }
      out.encoded_bits_ = saved_bits;
      out.trie_ = std::move(image);
    }
    return out;
  }

  // --------------------------------------------------- v4 flat image
  // (DESIGN.md #8). Where Save/Load stream the minimal payload and rebuild
  // directories on load, the image persists ALL derived state at aligned,
  // offset-addressed positions: loading borrows straight into the blob —
  // no per-element work — and the blob can be a mapped file, so the
  // engine's restart is O(#segments), not O(data).

  /// The image bytes of this static sequence (codec state + trie with all
  /// directories + the encoded-bits budget). Write them to a file
  /// verbatim; they load from any 8-aligned copy.
  std::string SerializeImage() const
    requires(!kMutable)
  {
    wt::storage::ImageWriter w;
    if constexpr (internal::kHasCodecState<Codec>) {
      std::ostringstream st;
      codec_.SaveState(st);
      const std::string bytes = std::move(st).str();
      w.BeginSection(wt::storage::kSecCodecState);
      w.Pod<uint64_t>(bytes.size());
      w.Array(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
      w.EndSection();
    }
    trie_.SaveImage(w);
    return w.Finish(internal::CodecIdOf<Codec>(), size(), encoded_bits_);
  }

  /// Borrows a static sequence out of a v4 image blob (mapped or heap) —
  /// zero-copy, no rebuild; the sequence pins the blob for its lifetime.
  /// VerifyMode::kFull (default) hashes the whole image first, so corrupt
  /// or truncated blobs fail with a clean Status; kNone skips that pass
  /// (trusted storage / datasets larger than RAM) while still
  /// bounds-checking the layout.
  static Result<Sequence> LoadImage(
      std::shared_ptr<const wt::storage::Blob> blob, Codec codec = {},
      wt::storage::VerifyMode verify = wt::storage::VerifyMode::kFull)
    requires(!kMutable)
  {
    namespace stor = wt::storage;
    if (blob == nullptr) {
      return Status::Error(ErrorCode::kInvalidArgument, "LoadImage: null blob");
    }
    stor::ImageReader r;
    switch (stor::ImageReader::Parse(blob->data(), blob->size(), verify, &r)) {
      case stor::ImageError::kOk:
        break;
      case stor::ImageError::kBadMagic:
        return Status::Error(ErrorCode::kCorruptStream,
                             "LoadImage: not a v4 image");
      case stor::ImageError::kBadVersion:
        return Status::Error(ErrorCode::kVersionMismatch,
                             "LoadImage: image version not supported");
      case stor::ImageError::kTruncated:
        return Status::Error(ErrorCode::kTruncatedStream,
                             "LoadImage: image truncated");
      case stor::ImageError::kBadLayout:
        return Status::Error(ErrorCode::kCorruptStream,
                             "LoadImage: section table out of bounds");
      case stor::ImageError::kChecksumMismatch:
        return Status::Error(ErrorCode::kCorruptStream,
                             "LoadImage: image checksum mismatch");
    }
    if ((r.header().codec_id & 0xFF) != internal::CodecIdOf<Codec>()) {
      return Status::Error(ErrorCode::kInvalidArgument,
                           "LoadImage: image was saved with a different codec");
    }
    Sequence out(std::move(codec));
    if constexpr (internal::kHasCodecState<Codec>) {
      uint64_t len = 0;
      const uint8_t* bytes = nullptr;
      if (!r.OpenSection(stor::kSecCodecState) || !r.Pod(&len) ||
          !r.Array(&bytes, len)) {
        return Status::Error(ErrorCode::kCorruptStream,
                             "LoadImage: bad codec-state section");
      }
      std::istringstream ss(
          std::string(reinterpret_cast<const char*>(bytes), len));
      out.codec_.LoadState(ss);
    }
    if (!out.trie_.LoadImage(r) || out.trie_.size() != r.header().n) {
      return Status::Error(ErrorCode::kCorruptStream,
                           "LoadImage: inconsistent trie sections");
    }
    out.encoded_bits_ = r.header().encoded_bits;
    out.storage_ = std::move(blob);
    return out;
  }

  /// The blob this sequence borrows from (null when heap-owned). Exposed
  /// for lifetime observability: engine snapshots pin segments, segments
  /// pin blobs, so a mapping unmaps exactly when the last snapshot drops.
  const std::shared_ptr<const wt::storage::Blob>& storage() const {
    return storage_;
  }

  // ------------------------------------------------------------------ admin

  /// Compressed footprint in bits (trie representation + codec state).
  size_t SizeInBits() const { return trie_.SizeInBits() + 8 * sizeof(Codec); }

  const Trie& trie() const { return trie_; }
  const Codec& codec() const { return codec_; }

  // ------------------------------------------------------------- capacity
  //
  // A static image (Freeze, Save, the Static constructor) stores all branch
  // bitvectors in one RRR capped at 2^32-1 total beta bits (DESIGN.md #6).
  // Each string contributes at most one beta bit per encoded bit, so the
  // facade budgets *encoded* bits — a conservative, cheaply-maintained
  // upper bound — and rejects mutations that could make the sequence
  // unfreezable, as kCapacityExceeded at the boundary instead of the core
  // loader's abort. Delete does not refund budget (the deleted length is
  // not known without an extra Access); sequences that churn near the
  // limit should shard through the engine layer instead.

  /// Upper bound on the summed encoded length this sequence accepts.
  static constexpr uint64_t kMaxEncodedBits = wt::WaveletTrie::kMaxBetaBits;

  /// Encoded bits appended so far (the budget consumed against
  /// kMaxEncodedBits). An upper bound on the static image's beta bits.
  uint64_t EncodedBits() const { return encoded_bits_; }

  /// The whole sequence as encoded strings, extracted with the Section 5
  /// sequential scan (one Rank per trie node total, not per element). This
  /// is the engine layer's segment-merge hook: segments are re-linearized
  /// and rebuilt through FromEncoded without a decode/encode round trip.
  std::vector<wt::BitString> ExtractEncoded() const {
    std::vector<wt::BitString> enc;
    enc.reserve(size());
    trie_.ForEachInRange(0, size(), [&](size_t, const wt::BitString& s) {
      enc.push_back(s);
    });
    return enc;
  }

 private:
  template <typename P2, typename C2>
  friend class Sequence;  // Freeze/Thaw build sibling instantiations

  static constexpr uint32_t Tag() {
    return (uint32_t(Policy::kPolicyId) << 8) |
           uint32_t(internal::CodecIdOf<Codec>());
  }

  Status CheckRange(size_t l, size_t r) const {
    if (l > r) {
      return Status::Error(ErrorCode::kInvalidArgument, "range: l > r");
    }
    if (r > size()) {
      return Status::Error(ErrorCode::kOutOfRange, "range: r > size()");
    }
    return Status::Ok();
  }

  std::vector<wt::BitString> EncodeAll(const std::vector<Value>& values) const {
    std::vector<wt::BitString> enc;
    enc.reserve(values.size());
    for (const auto& v : values) enc.push_back(codec_.Encode(v));
    return enc;
  }

  static std::vector<wt::BitSpan> Spans(const std::vector<wt::BitString>& enc) {
    std::vector<wt::BitSpan> spans;
    spans.reserve(enc.size());
    for (const auto& s : enc) spans.push_back(s.Span());
    return spans;
  }

  static uint64_t TotalBits(const std::vector<wt::BitString>& enc) {
    uint64_t bits = 0;
    for (const auto& s : enc) bits += s.size();
    return bits;
  }

  /// Charges `bits` against the capacity budget, or reports
  /// kCapacityExceeded without mutating anything.
  Status ReserveBits(uint64_t bits) {
    if (internal::CapacityWouldOverflow(encoded_bits_, bits,
                                        kMaxEncodedBits)) {
      return Status::Error(
          ErrorCode::kCapacityExceeded,
          "append: sequence would exceed the 2^32-1-beta-bit static image "
          "capacity; shard through the engine layer");
    }
    encoded_bits_ += bits;
    return Status::Ok();
  }

  Codec codec_;
  Trie trie_;
  uint64_t encoded_bits_ = 0;
  // Pins the mapped/heap image blob a borrowed static trie points into;
  // null for heap-owned structures (set only by LoadImage, carried by
  // copies and Freeze).
  std::shared_ptr<const wt::storage::Blob> storage_;
};

}  // namespace wtrie
