// Synthetic workload generators for the examples and benchmarks, modeled on
// the applications in the paper's introduction: URL/path access logs with a
// hierarchical prefix structure and Zipfian popularity, column values for a
// column store, and integer sequences for the Section 6 experiments.
//
// The paper evaluates no proprietary datasets (it is a theory paper); these
// generators provide the "query logs and access logs" workload family its
// motivation describes, with controllable skew, alphabet size and prefix
// sharing (DESIGN.md substitution note).
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "util/zipf.hpp"

namespace wt {

struct UrlLogOptions {
  size_t num_domains = 50;
  size_t paths_per_domain = 40;
  double domain_skew = 1.0;  // Zipf exponent for domain popularity
  double path_skew = 0.8;    // Zipf exponent for paths within a domain
  uint64_t seed = 42;
};

/// Generates a chronological access log of URLs "domainX.com/secY/pageZ".
/// Domains follow a Zipf distribution; within a domain, paths follow another.
/// Consecutive entries share long prefixes exactly as real logs do.
class UrlLogGenerator {
 public:
  explicit UrlLogGenerator(const UrlLogOptions& opt = {})
      : opt_(opt),
        rng_(opt.seed),
        domain_dist_(opt.num_domains, opt.domain_skew),
        path_dist_(opt.paths_per_domain, opt.path_skew) {}

  std::string Next() {
    const size_t d = domain_dist_(rng_);
    const size_t p = path_dist_(rng_);
    return Url(d, p);
  }

  /// The URL for an explicit (domain rank, path rank) pair; rank 0 is the
  /// most popular. Useful for building queries with known frequencies.
  std::string Url(size_t domain_rank, size_t path_rank) const {
    return Domain(domain_rank) + "/sec" + std::to_string(path_rank % 7) +
           "/page" + std::to_string(path_rank);
  }

  std::string Domain(size_t domain_rank) const {
    return "www.site" + std::to_string(domain_rank) + ".com";
  }

  std::vector<std::string> Take(size_t n) {
    std::vector<std::string> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) out.push_back(Next());
    return out;
  }

 private:
  UrlLogOptions opt_;
  std::mt19937_64 rng_;
  ZipfDistribution domain_dist_;
  ZipfDistribution path_dist_;
};

enum class IntDistribution { kUniform, kZipf, kClustered };

/// Integer sequences over a working alphabet much smaller than the universe
/// (the Section 6 setting).
inline std::vector<uint64_t> GenerateIntegers(size_t n, size_t distinct,
                                              IntDistribution dist,
                                              uint64_t seed = 7) {
  std::mt19937_64 rng(seed);
  // Draw the working alphabet from the full 64-bit universe.
  std::vector<uint64_t> alphabet(distinct);
  for (auto& v : alphabet) v = rng();
  std::vector<uint64_t> out;
  out.reserve(n);
  switch (dist) {
    case IntDistribution::kUniform:
      for (size_t i = 0; i < n; ++i) out.push_back(alphabet[rng() % distinct]);
      break;
    case IntDistribution::kZipf: {
      ZipfDistribution z(distinct, 1.0);
      for (size_t i = 0; i < n; ++i) out.push_back(alphabet[z(rng)]);
      break;
    }
    case IntDistribution::kClustered: {
      // Runs of repeated values, as in sorted/partitioned columns.
      size_t i = 0;
      while (i < n) {
        const uint64_t v = alphabet[rng() % distinct];
        const size_t run = 1 + rng() % 40;
        for (size_t j = 0; j < run && i < n; ++j, ++i) out.push_back(v);
      }
      break;
    }
  }
  return out;
}

}  // namespace wt
