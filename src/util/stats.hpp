// Latency statistics for the benchmark harness: record per-operation
// durations, report percentiles. Used by the de-amortization benches, where
// the interesting quantity is the *tail* (p99.9/max) of Append, not the
// mean (Lemma 4.7 gives the mean; Lemma 4.8 is about the worst case).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace wt {

/// Accumulates sample values (typically nanoseconds) and reports order
/// statistics. Samples are stored raw; Percentile() sorts lazily.
class LatencyRecorder {
 public:
  void Reserve(size_t n) { samples_.reserve(n); }

  void Record(uint64_t value) {
    samples_.push_back(value);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }

  /// The q-quantile (q in [0, 1]) by the nearest-rank method.
  uint64_t Percentile(double q) {
    WT_ASSERT_MSG(!samples_.empty(), "LatencyRecorder: no samples");
    WT_ASSERT(q >= 0.0 && q <= 1.0);
    EnsureSorted();
    const size_t rank = std::min(
        samples_.size() - 1,
        static_cast<size_t>(q * static_cast<double>(samples_.size())));
    return samples_[rank];
  }

  uint64_t Max() {
    EnsureSorted();
    return samples_.back();
  }

  uint64_t Min() {
    EnsureSorted();
    return samples_.front();
  }

  double Mean() const {
    WT_ASSERT_MSG(!samples_.empty(), "LatencyRecorder: no samples");
    double sum = 0;
    for (uint64_t s : samples_) sum += static_cast<double>(s);
    return sum / static_cast<double>(samples_.size());
  }

  void Clear() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  void EnsureSorted() {
    WT_ASSERT_MSG(!samples_.empty(), "LatencyRecorder: no samples");
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::vector<uint64_t> samples_;
  bool sorted_ = false;
};

/// Monotonic nanosecond timestamp for latency sampling.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace wt
