// Information-theoretic quantities from the paper's Section 2/3, used by
// the space experiments (EXPERIMENTS.md) to compare measured footprints
// against the lower bound LB(S) = LT(Sset) + n*H0(S):
//
//   * n*H0(S)     — zero-order entropy of the sequence (Shannon);
//   * LT(Sset)    — Theorem 3.6 lower bound for the string set:
//                   |L| + e + B(e, |L| + e), where L concatenates the
//                   Patricia-trie labels and e = 2(|Sset| - 1);
//   * B(m, n)     — log2 C(n, m), via lgamma;
//   * ~h          — average height (Definition 3.4), the per-element number
//                   of internal trie nodes, reported by the benches.
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "common/bit_string.hpp"
#include "trie/patricia_trie.hpp"

namespace wt {

/// log2 of the binomial coefficient C(n, m).
inline double Log2Binomial(uint64_t n, uint64_t m) {
  if (m > n) return 0.0;
  const double ln2 = std::log(2.0);
  return (std::lgamma(double(n) + 1) - std::lgamma(double(m) + 1) -
          std::lgamma(double(n - m) + 1)) /
         ln2;
}

/// n*H0(S) in bits for a sequence of binary strings (symbols = whole
/// strings, as in the paper's LB).
inline double SequenceEntropyBits(const std::vector<BitString>& seq) {
  std::map<std::string, size_t> counts;
  for (const auto& s : seq) ++counts[s.ToString()];
  const double n = static_cast<double>(seq.size());
  double h = 0;
  for (const auto& [_, c] : counts) {
    const double p = static_cast<double>(c) / n;
    h -= p * std::log2(p);
  }
  return h * n;
}

struct TrieLowerBound {
  size_t label_bits;   // |L|
  size_t edges;        // e = 2(|Sset| - 1)
  double total_bits;   // LT = |L| + e + B(e, |L| + e)
  size_t num_distinct;
};

/// Theorem 3.6 lower bound LT(Sset) for the distinct-string set of `seq`.
inline TrieLowerBound TrieLowerBoundBits(const std::vector<BitString>& seq) {
  PatriciaTrie trie;
  for (const auto& s : seq) trie.Insert(s.Span());
  TrieLowerBound lb;
  lb.num_distinct = trie.size();
  lb.label_bits = trie.LabelBits();
  lb.edges = trie.size() <= 1 ? 0 : 2 * (trie.size() - 1);
  lb.total_bits = static_cast<double>(lb.label_bits) + static_cast<double>(lb.edges) +
                  Log2Binomial(lb.label_bits + lb.edges, lb.edges);
  return lb;
}

/// The full lower bound LB(S) = LT(Sset) + n*H0(S) in bits.
inline double SequenceLowerBoundBits(const std::vector<BitString>& seq) {
  return TrieLowerBoundBits(seq).total_bits + SequenceEntropyBits(seq);
}

}  // namespace wt
