// Zipf-distributed rank sampler (P(k) proportional to 1/k^s), used by the
// workload generators: query/access logs and column values are heavy-tailed
// in practice, which is exactly the regime the paper's entropy-compressed
// bitvectors exploit.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "common/assert.hpp"

namespace wt {

class ZipfDistribution {
 public:
  /// Ranks 0..n-1 with P(rank k) proportional to 1/(k+1)^s.
  explicit ZipfDistribution(size_t n, double s = 1.0) : cdf_(n) {
    WT_ASSERT(n >= 1);
    double sum = 0;
    for (size_t k = 0; k < n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_[k] = sum;
    }
    for (double& c : cdf_) c /= sum;
  }

  template <typename Rng>
  size_t operator()(Rng& rng) const {
    const double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<size_t>(it - cdf_.begin());
  }

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace wt
