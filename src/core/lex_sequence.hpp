// LexMappedSequence: the related-work approach (1) baseline, engineered as
// well as the approach allows — a *lexicographic* dictionary mapping strings
// to integers plus a classic balanced Wavelet Tree on the integer ids.
//
// Because the mapping preserves lexicographic order, every prefix p maps to
// a contiguous id range [lo, hi), so:
//   * RankPrefix(p, pos)  = RangeCount2d(0, pos, lo, hi)   — efficient,
//     exactly the reduction to [Makinen-Navarro 2006] the paper credits;
//   * SelectPrefix(p, k)  has no direct algorithm ("to the best of our
//     knowledge there is no way to support efficiently SelectPrefix"); the
//     best generic fallback, implemented here, binary-searches the position
//     by RangeCount2d — O(log n * log sigma) versus the Wavelet Trie's
//     O(h_p) — and bench_related_work quantifies the gap.
//
// The structural limitation the paper stresses is issue (a): the mapping is
// frozen at construction. Appending a string outside the current alphabet
// forces a full rebuild; AppendWithRebuild implements exactly that honest
// cost so the dynamic-alphabet benchmark can measure it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.hpp"
#include "core/wavelet_tree.hpp"

namespace wt {

class LexMappedSequence {
 public:
  LexMappedSequence() = default;

  explicit LexMappedSequence(const std::vector<std::string>& seq) { Build(seq); }

  size_t size() const { return tree_.size(); }
  bool empty() const { return tree_.size() == 0; }
  size_t NumDistinct() const { return dict_.size(); }

  const std::string& Access(size_t pos) const {
    WT_ASSERT(pos < size());
    return dict_[tree_.Access(pos)];
  }

  size_t Rank(std::string_view s, size_t pos) const {
    const auto id = IdOf(s);
    if (!id) return 0;
    return tree_.Rank(*id, pos);
  }

  std::optional<size_t> Select(std::string_view s, size_t idx) const {
    const auto id = IdOf(s);
    if (!id) return std::nullopt;
    return tree_.Select(*id, idx);
  }

  /// Strings with byte-prefix p in [0, pos): one id-range lookup plus one
  /// 2D range count — the efficient half of approach (1).
  size_t RankPrefix(std::string_view p, size_t pos) const {
    WT_ASSERT(pos <= size());
    const auto [lo, hi] = PrefixIdRange(p);
    return tree_.RangeCount2d(0, pos, lo, hi);
  }

  /// Position of the (idx+1)-th string with prefix p. No direct wavelet-tree
  /// algorithm exists; this binary-searches the smallest pos with
  /// RankPrefix(p, pos) == idx + 1, costing O(log n) RangeCount2d calls.
  std::optional<size_t> SelectPrefix(std::string_view p, size_t idx) const {
    const auto [plo, phi] = PrefixIdRange(p);
    if (tree_.RangeCount2d(0, size(), plo, phi) <= idx) return std::nullopt;
    size_t lo = 0, hi = size();  // invariant: count(lo) <= idx < count(hi)
    while (hi - lo > 1) {
      const size_t mid = lo + (hi - lo) / 2;
      if (tree_.RangeCount2d(0, mid, plo, phi) > idx)
        hi = mid;
      else
        lo = mid;
    }
    return lo;
  }

  size_t RangeCountPrefix(std::string_view p, size_t l, size_t r) const {
    WT_DASSERT(l <= r);
    const auto [lo, hi] = PrefixIdRange(p);
    return tree_.RangeCount2d(l, r, lo, hi);
  }

  /// Issue (a) made concrete: appending a value outside the frozen alphabet
  /// requires decoding the whole sequence and rebuilding the dictionary and
  /// the tree — Theta(n log sigma + n * |s|) work. In-alphabet appends would
  /// still need a dynamic wavelet tree; this baseline is static, so every
  /// append rebuilds. Returns true iff the alphabet grew.
  bool AppendWithRebuild(const std::string& s) {
    std::vector<std::string> all;
    all.reserve(size() + 1);
    for (size_t i = 0; i < size(); ++i) all.push_back(Access(i));
    const bool new_symbol =
        !std::binary_search(dict_.begin(), dict_.end(), s);
    all.push_back(s);
    Build(all);
    return new_symbol;
  }

  /// Index size: dictionary bytes plus the wavelet tree.
  size_t SizeInBits() const {
    size_t dict_bits = 0;
    for (const auto& s : dict_) dict_bits += 8 * (s.size() + sizeof(std::string));
    return dict_bits + tree_.SizeInBits() + 8 * sizeof(*this);
  }

  const WaveletTree& tree() const { return tree_; }
  const std::vector<std::string>& dictionary() const { return dict_; }

  /// The contiguous id range of strings having byte-prefix p (public for
  /// tests and for callers composing their own 2D queries).
  std::pair<uint64_t, uint64_t> PrefixIdRange(std::string_view p) const {
    const auto lo = std::lower_bound(dict_.begin(), dict_.end(), p);
    // Upper end: first dictionary entry that does not start with p. Compare
    // only the first |p| bytes, treating equality as "still inside".
    const auto hi = std::upper_bound(
        lo, dict_.end(), p, [](std::string_view probe, const std::string& d) {
          return std::string_view(d).substr(0, probe.size()) > probe;
        });
    return {static_cast<uint64_t>(lo - dict_.begin()),
            static_cast<uint64_t>(hi - dict_.begin())};
  }

 private:
  void Build(const std::vector<std::string>& seq) {
    dict_.assign(seq.begin(), seq.end());
    std::sort(dict_.begin(), dict_.end());
    dict_.erase(std::unique(dict_.begin(), dict_.end()), dict_.end());
    std::vector<uint64_t> ids;
    ids.reserve(seq.size());
    for (const auto& s : seq) {
      ids.push_back(static_cast<uint64_t>(
          std::lower_bound(dict_.begin(), dict_.end(), s) - dict_.begin()));
    }
    tree_ = WaveletTree(ids, std::max<uint64_t>(1, dict_.size()));
  }

  std::optional<uint64_t> IdOf(std::string_view s) const {
    const auto it = std::lower_bound(dict_.begin(), dict_.end(), s);
    if (it == dict_.end() || *it != s) return std::nullopt;
    return static_cast<uint64_t>(it - dict_.begin());
  }

  std::vector<std::string> dict_;  // sorted distinct strings
  WaveletTree tree_;
};

}  // namespace wt
