// Dynamic Wavelet Tries (paper Section 4) — the first compressed dynamic
// sequence with a *dynamic alphabet*.
//
// DynamicWaveletTrieT<BV> is a dynamic Patricia trie (Appendix B) whose
// internal nodes carry a dynamic bitvector BV. Two instantiations:
//
//   AppendOnlyWaveletTrie  (Theorem 4.3): BV = AppendOnlyBitVector.
//     Append(s) runs in O(|s| + h_s): node splits initialize the new
//     bitvector as an O(1) virtual constant run (the "left offset" trick),
//     and all bit insertions are appends.
//
//   DynamicWaveletTrie     (Theorem 4.4): BV = DynamicBitVector (RLE+gamma).
//     Insert/Delete at arbitrary positions in O(|s| + h_s log n); node
//     splits use the O(log n) Init of Theorem 4.9, deleting the last
//     occurrence of a string merges the split node away (inverse of
//     Figure 3).
//
// Queries (Access, Rank, Select, RankPrefix, SelectPrefix) and the Section 5
// range analytics are shared by both variants.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bitvector/append_only.hpp"
#include "bitvector/append_only_deamortized.hpp"
#include "bitvector/dynamic_bit_vector.hpp"
#include "common/assert.hpp"
#include "common/bit_string.hpp"
#include "core/batch_dedup.hpp"

namespace wt {

template <typename BV>
class DynamicWaveletTrieT {
 public:
  /// True when BV supports arbitrary-position insertion and deletion.
  static constexpr bool kFullyDynamic = requires(BV& b) { b.Erase(size_t{}); };

  // Visitor parameters are deduced callables, not std::function — see the
  // note in wavelet_trie.hpp. Same signatures:
  //   distinct enumeration: fn(const BitString& value, size_t multiplicity)
  //   sequential access:    fn(size_t position, const BitString& value)

  DynamicWaveletTrieT() = default;
  ~DynamicWaveletTrieT() { Free(root_); }

  DynamicWaveletTrieT(const DynamicWaveletTrieT&) = delete;
  DynamicWaveletTrieT& operator=(const DynamicWaveletTrieT&) = delete;
  DynamicWaveletTrieT(DynamicWaveletTrieT&& o) noexcept
      : root_(o.root_), n_(o.n_), distinct_(o.distinct_) {
    o.root_ = nullptr;
    o.n_ = 0;
    o.distinct_ = 0;
  }
  DynamicWaveletTrieT& operator=(DynamicWaveletTrieT&& o) noexcept {
    if (this != &o) {
      Free(root_);
      root_ = o.root_;
      n_ = o.n_;
      distinct_ = o.distinct_;
      o.root_ = nullptr;
      o.n_ = 0;
      o.distinct_ = 0;
    }
    return *this;
  }

  /// Appends s to the sequence. O(|s| + h_s) for the append-only variant,
  /// O(|s| + h_s log n) for the fully dynamic one.
  void Append(BitSpan s) { InsertImpl(s, n_); }

  /// Appends every string of `batch`, in order — observably identical to
  /// calling Append on each element, but word-parallel end to end
  /// (DESIGN.md #4): the batch is first collapsed onto its distinct alphabet,
  /// all structural work (label LCPs, Figure 3 splits, fresh subtrees) runs
  /// over the distinct set only, and each touched node is visited once per
  /// batch, its beta receiving the branch bits as packed 64-bit words (or a
  /// constant-run Init). Per-occurrence work is sequential integer traffic.
  /// The spans must stay valid for the duration of the call.
  void AppendBatch(std::span<const BitSpan> batch) {
    if (batch.empty()) return;
    const internal::BatchDict dict = internal::DedupBatch(batch);
    // Occurrence ids are 16-bit whenever the distinct alphabet allows it:
    // the per-occurrence partitions are memory-bound, so the narrower ids
    // halve the dominant traffic.
    if (dict.distinct.size() <= (size_t(1) << 16)) {
      AppendBatchImpl<uint16_t>(dict);
    } else {
      AppendBatchImpl<uint32_t>(dict);
    }
  }

 private:
  template <typename IdT>
  void AppendBatchImpl(const internal::BatchDict& dict) {
    const size_t m = dict.id_of.size();
    const std::vector<BitSpan>& dstr = dict.distinct;
    const size_t dn = dstr.size();
    // darr: distinct ids routed per subtree (drives structure); oarr: the
    // occurrence sequence as distinct ids, in batch order (drives betas).
    // Both are stably partitioned in place, range by range.
    std::vector<IdT> darr(dn);
    for (size_t i = 0; i < dn; ++i) darr[i] = static_cast<IdT>(i);
    std::vector<IdT> oarr(m);
    for (size_t i = 0; i < m; ++i) oarr[i] = static_cast<IdT>(dict.id_of[i]);
    std::vector<IdT> dscratch(dn);
    std::vector<IdT> oscratch(m);
    std::vector<uint8_t> bit_of(dn);  // branch bit per distinct id, per node
    struct Frame {
      Node** link;  // child slot holding this subtree (null -> bulk build)
      IdT *dbegin, *dend;
      IdT *obegin, *oend;
      size_t depth;  // bits consumed before this node's label
    };
    std::vector<Frame> stack;

    // Stably partitions the distinct ids and the occurrence sequence by the
    // bit at `split_pos`, appends the occurrence branch bits (the first
    // `skip` are already folded into a constant-run Init and all follow
    // `lead_bit`) to v->beta as packed words, and enqueues the children.
    const auto partition_and_descend = [&](Node* v, const Frame& f,
                                           size_t split_pos, size_t skip,
                                           bool lead_bit) {
      for (const IdT* it = f.dbegin; it != f.dend; ++it) {
        // A routed string ending at or before the branch point would be a
        // proper prefix of the others in this subtree.
        WT_ASSERT_MSG(dstr[*it].size() > split_pos,
                      "wavelet trie: append would break prefix-freeness");
        bit_of[*it] = dstr[*it].Get(split_pos);
      }
      IdT* d0 = f.dbegin;
      size_t dn1 = 0;
      for (const IdT* it = f.dbegin; it != f.dend; ++it) {
        const IdT d = *it;
        const uint8_t b = bit_of[d];
        *d0 = d;
        d0 += b ^ 1;
        dscratch[dn1] = d;
        dn1 += b;
      }
      IdT* dmid = d0;
      std::copy(dscratch.data(), dscratch.data() + dn1, d0);
      IdT* o0 = f.obegin;
      size_t on1 = 0;
      const IdT* it = f.obegin;
      if (skip > 0) {  // leading constant run: route wholesale, emit no bits
        if (lead_bit) {
          std::copy(it, it + skip, oscratch.data());
          on1 = skip;
        } else {
          o0 += skip;
        }
        it += skip;
      }
      // Process occurrences in 64-item blocks: first gather the branch bits
      // into one word (independent loads, pipelined), then partition driven
      // from the register — the store cursors advance on 1-cycle register
      // ops instead of waiting on the per-item table loads.
      while (it != f.oend) {
        const size_t blk =
            std::min<size_t>(kWordBits, static_cast<size_t>(f.oend - it));
        uint64_t word = 0;
        for (size_t j = 0; j < blk; ++j) {
          word |= uint64_t(bit_of[it[j]]) << j;
        }
        v->beta.AppendWord(word, blk);
        uint64_t w2 = word;
        for (size_t j = 0; j < blk; ++j) {
          const IdT d = it[j];
          const uint64_t b = w2 & 1;
          w2 >>= 1;
          *o0 = d;
          o0 += b ^ 1;
          oscratch[on1] = d;
          on1 += b;
        }
        it += blk;
      }
      IdT* omid = o0;
      std::copy(oscratch.data(), oscratch.data() + on1, o0);
      if (dmid != f.dbegin) {
        stack.push_back({&v->child[0], f.dbegin, dmid, f.obegin, omid,
                         split_pos + 1});
      }
      if (f.dend != dmid) {
        stack.push_back({&v->child[1], dmid, f.dend, omid, f.oend,
                         split_pos + 1});
      }
    };

    stack.push_back({&root_, darr.data(), darr.data() + dn, oarr.data(),
                     oarr.data() + m, 0});
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      const size_t dcount = static_cast<size_t>(f.dend - f.dbegin);
      const size_t ocount = static_cast<size_t>(f.oend - f.obegin);
      if (*f.link == nullptr) {
        // Bulk-build a fresh subtree: label = LCP of the routed suffixes.
        const BitSpan first = dstr[*f.dbegin].SubSpan(f.depth);
        size_t lcp = first.size();
        for (IdT* it = f.dbegin + 1; it != f.dend && lcp > 0; ++it) {
          const BitSpan s = dstr[*it].SubSpan(f.depth);
          lcp = std::min(lcp, s.Lcp(first));
          if (s.size() < lcp) lcp = s.size();
        }
        Node* v = new Node(BitString::FromSpan(first.SubSpan(0, lcp)));
        *f.link = v;
        if (lcp == first.size()) {
          // The first suffix ends here; all routed strings must be equal to
          // it (a longer one would make it a proper prefix).
          WT_ASSERT_MSG(dcount == 1,
                        "wavelet trie: append would break prefix-freeness");
          v->count = ocount;
          ++distinct_;
          continue;
        }
        partition_and_descend(v, f, f.depth + lcp, 0, false);
        continue;
      }
      Node* v = *f.link;
      const BitSpan label = v->label.Span();
      // Minimal divergence point of the batch within the label; every split
      // deeper down resolves when the old-side child is processed.
      size_t p = label.size();
      for (IdT* it = f.dbegin; it != f.dend; ++it) {
        const BitSpan s = dstr[*it].SubSpan(f.depth);
        const size_t l = s.Lcp(label);
        WT_ASSERT_MSG(l == label.size() || f.depth + l < dstr[*it].size(),
                      "wavelet trie: append would break prefix-freeness");
        if (l < p) {
          p = l;
          if (p == 0) break;
        }
      }
      if (p < label.size()) {
        // Split v at p (Figure 3, batched): the label tail moves into a
        // child that keeps v's children/beta/payload; the diverging strings
        // bulk-build the sibling. Leading occurrences that still follow the
        // old bit extend the O(1) constant-run Init, exactly matching what
        // element-wise appends would have produced.
        const bool old_bit = label.Get(p);
        Node* old_half = new Node(BitString::FromSpan(label.SubSpan(p + 1)));
        old_half->child[0] = v->child[0];
        old_half->child[1] = v->child[1];
        old_half->beta = std::move(v->beta);
        old_half->count = v->count;
        const size_t old_size = SubtreeSize(old_half);
        v->count = 0;
        v->child[old_bit] = old_half;
        v->child[!old_bit] = nullptr;
        v->label.Truncate(p);
        const size_t split_pos = f.depth + p;
        size_t k = 0;
        for (const IdT* it = f.obegin; it != f.oend; ++it, ++k) {
          if (dstr[*it].Get(split_pos) != old_bit) break;
        }
        v->beta = BV(old_bit, old_size + k);
        partition_and_descend(v, f, split_pos, k, old_bit);
        continue;
      }
      if (v->IsLeaf()) {
        WT_ASSERT_MSG(dcount == 1 &&
                          dstr[*f.dbegin].size() == f.depth + label.size(),
                      "wavelet trie: append would break prefix-freeness");
        v->count += ocount;
        continue;
      }
      partition_and_descend(v, f, f.depth + label.size(), 0, false);
    }
    n_ += m;
  }

 public:

  /// Convenience overload: appends a batch of owned strings.
  void AppendBatch(const std::vector<BitString>& batch) {
    std::vector<BitSpan> spans;
    spans.reserve(batch.size());
    for (const auto& s : batch) spans.push_back(s.Span());
    AppendBatch(std::span<const BitSpan>(spans));
  }

  /// Inserts s before position pos (paper: Insert(s, pos)).
  void Insert(BitSpan s, size_t pos)
    requires kFullyDynamic
  {
    WT_ASSERT(pos <= n_);
    InsertImpl(s, pos);
  }

  /// Deletes the string at position pos (paper: Delete(pos)). Deleting the
  /// last occurrence shrinks the alphabet and merges a trie node.
  void Delete(size_t pos)
    requires kFullyDynamic
  {
    WT_ASSERT(pos < n_);
    DeleteRec(root_, pos);
    if (root_->IsLeaf() && root_->count == 0) {
      delete root_;
      root_ = nullptr;
      --distinct_;
    }
    --n_;
  }

  size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  /// Current number of distinct strings |Sset| (the dynamic alphabet).
  size_t NumDistinct() const { return distinct_; }

  BitString Access(size_t pos) const {
    WT_ASSERT(pos < n_);
    BitString out;
    const Node* v = root_;
    for (;;) {
      out.Append(v->label);
      if (v->IsLeaf()) return out;
      const bool b = v->beta.Get(pos);
      out.PushBack(b);
      pos = v->beta.Rank(b, pos);
      v = v->child[b];
    }
  }

  size_t Rank(BitSpan s, size_t pos) const {
    WT_ASSERT(pos <= n_);
    const Node* v = root_;
    size_t depth = 0;
    while (v != nullptr) {
      const BitSpan label = v->label.Span();
      if (!label.IsPrefixOf(s.SubSpan(depth))) return 0;
      depth += label.size();
      if (v->IsLeaf()) return depth == s.size() ? pos : 0;
      if (depth >= s.size()) return 0;
      const bool b = s.Get(depth++);
      pos = v->beta.Rank(b, pos);
      v = v->child[b];
    }
    return 0;
  }

  size_t RankPrefix(BitSpan p, size_t pos) const {
    WT_ASSERT(pos <= n_);
    const Node* v = root_;
    size_t depth = 0;
    while (v != nullptr) {
      const BitSpan label = v->label.Span();
      const BitSpan rest = p.SubSpan(depth);
      const size_t lcp = label.Lcp(rest);
      if (lcp == rest.size()) return pos;
      if (lcp < label.size()) return 0;
      depth += lcp;
      if (v->IsLeaf()) return 0;
      const bool b = p.Get(depth++);
      pos = v->beta.Rank(b, pos);
      v = v->child[b];
    }
    return 0;
  }

  std::optional<size_t> Select(BitSpan s, size_t idx) const {
    if (root_ == nullptr) return std::nullopt;
    std::vector<std::pair<const Node*, bool>> path;
    const Node* v = root_;
    size_t depth = 0;
    for (;;) {
      const BitSpan label = v->label.Span();
      if (!label.IsPrefixOf(s.SubSpan(depth))) return std::nullopt;
      depth += label.size();
      if (v->IsLeaf()) {
        if (depth != s.size() || idx >= v->count) return std::nullopt;
        break;
      }
      if (depth >= s.size()) return std::nullopt;
      const bool b = s.Get(depth++);
      path.push_back({v, b});
      v = v->child[b];
    }
    return SelectUp(path, idx);
  }

  std::optional<size_t> SelectPrefix(BitSpan p, size_t idx) const {
    if (root_ == nullptr) return std::nullopt;
    std::vector<std::pair<const Node*, bool>> path;
    const Node* v = root_;
    size_t depth = 0;
    for (;;) {
      const BitSpan label = v->label.Span();
      const BitSpan rest = p.SubSpan(depth);
      const size_t lcp = label.Lcp(rest);
      if (lcp == rest.size()) break;  // subtree of v holds all matches
      if (lcp < label.size()) return std::nullopt;
      depth += lcp;
      if (v->IsLeaf()) return std::nullopt;
      const bool b = p.Get(depth++);
      path.push_back({v, b});
      v = v->child[b];
    }
    if (idx >= SubtreeSize(v)) return std::nullopt;
    return SelectUp(path, idx);
  }

  size_t Count(BitSpan s) const { return Rank(s, n_); }
  size_t CountPrefix(BitSpan p) const { return RankPrefix(p, n_); }

  size_t RangeCount(BitSpan s, size_t l, size_t r) const {
    WT_DASSERT(l <= r);
    return Rank(s, r) - Rank(s, l);
  }
  size_t RangeCountPrefix(BitSpan p, size_t l, size_t r) const {
    WT_DASSERT(l <= r);
    return RankPrefix(p, r) - RankPrefix(p, l);
  }

  /// Section 5: distinct strings in [l, r) with multiplicities (lex order).
  template <typename DistinctFn>
  void DistinctInRange(size_t l, size_t r, const DistinctFn& fn) const {
    WT_ASSERT(l <= r && r <= n_);
    if (l == r || root_ == nullptr) return;
    BitString prefix;
    DistinctRec(root_, l, r, &prefix, fn);
  }

  /// Section 5, prefix-restricted variant: distinct strings with prefix p
  /// in [l, r), with multiplicities (see wavelet_trie.hpp for the paper
  /// quote). The descent maps the window through the node bitvectors.
  template <typename DistinctFn>
  void DistinctInRangeWithPrefix(BitSpan p, size_t l, size_t r,
                                 const DistinctFn& fn) const {
    WT_ASSERT(l <= r && r <= n_);
    if (l == r || root_ == nullptr) return;
    BitString prefix;
    const Node* v = root_;
    size_t depth = 0;
    for (;;) {
      const BitSpan label = v->label.Span();
      const BitSpan rest = p.SubSpan(depth);
      const size_t lcp = label.Lcp(rest);
      if (lcp == rest.size()) break;  // subtree of v holds all matches
      if (lcp < label.size()) return;
      depth += lcp;
      if (v->IsLeaf()) return;
      const bool b = p.Get(depth++);
      l = v->beta.Rank(b, l);
      r = v->beta.Rank(b, r);
      if (l >= r) return;
      prefix.Append(label);
      prefix.PushBack(b);
      v = v->child[b ? 1 : 0];
    }
    DistinctRec(v, l, r, &prefix, fn);
  }

  /// Section 5: the majority string of [l, r), if one exists.
  std::optional<std::pair<BitString, size_t>> RangeMajority(size_t l,
                                                            size_t r) const {
    WT_ASSERT(l <= r && r <= n_);
    if (l >= r || root_ == nullptr) return std::nullopt;
    const size_t range = r - l;
    BitString prefix;
    const Node* v = root_;
    for (;;) {
      prefix.Append(v->label);
      if (v->IsLeaf()) {
        if (2 * (r - l) <= range) return std::nullopt;
        return std::make_pair(std::move(prefix), r - l);
      }
      const size_t l0 = v->beta.Rank0(l), r0 = v->beta.Rank0(r);
      const size_t c0 = r0 - l0;
      const size_t c1 = (r - l) - c0;
      if (2 * c0 > r - l) {
        prefix.PushBack(false);
        v = v->child[0];
        l = l0;
        r = r0;
      } else if (2 * c1 > r - l) {
        prefix.PushBack(true);
        v = v->child[1];
        l = l - l0;
        r = r - r0;
      } else {
        return std::nullopt;
      }
    }
  }

  /// Section 5 heuristic: strings occurring at least t times in [l, r).
  template <typename DistinctFn>
  void RangeFrequent(size_t l, size_t r, size_t t, const DistinctFn& fn) const {
    WT_ASSERT(l <= r && r <= n_ && t >= 1);
    if (r - l < t || root_ == nullptr) return;
    BitString prefix;
    FrequentRec(root_, l, r, t, &prefix, fn);
  }

  /// Section 5 sequential access over [l, r): one Rank per traversed node
  /// for the whole range, O(1)-advance bit iterators afterwards.
  template <typename AccessFn>
  void ForEachInRange(size_t l, size_t r, const AccessFn& fn) const {
    WT_ASSERT(l <= r && r <= n_);
    if (l == r || root_ == nullptr) return;
    struct NodeIter {
      typename BV::Iterator it;
      size_t pos;  // node-local position of the iterator
    };
    std::unordered_map<const Node*, NodeIter> iters;
    for (size_t i = l; i < r; ++i) {
      BitString out;
      const Node* v = root_;
      const Node* parent = nullptr;
      bool parent_bit = false;
      size_t parent_pos = 0;
      for (;;) {
        out.Append(v->label);
        if (v->IsLeaf()) break;
        auto found = iters.find(v);
        if (found == iters.end()) {
          const size_t node_pos =
              parent ? parent->beta.Rank(parent_bit, parent_pos) : i;
          found = iters.emplace(v, NodeIter{v->beta.IteratorAt(node_pos), node_pos})
                      .first;
        }
        NodeIter& ni = found->second;
        const bool b = ni.it.Next();
        out.PushBack(b);
        parent = v;
        parent_bit = b;
        parent_pos = ni.pos;
        ++ni.pos;
        v = v->child[b];
      }
      fn(i, out);
    }
  }

  template <typename DistinctFn>
  void ForEachDistinct(const DistinctFn& fn) const { DistinctInRange(0, n_, fn); }

  size_t SizeInBits() const { return NodeSize(root_); }

  /// Maximum number of internal nodes on any root-to-leaf path (the h of
  /// Section 5/6; h_s <= Height() for every stored s).
  size_t Height() const { return HeightRec(root_); }

  /// Total label bits |L| plus pointer overhead stats (the PT term).
  size_t LabelBits() const { return LabelBitsRec(root_); }

  /// Per-node debug view (preorder), used for the Figure 3 test.
  struct NodeDebug {
    std::string alpha;
    std::string beta;
    bool is_leaf;
    size_t count;  // leaf multiplicity (0 for internal)
  };
  std::vector<NodeDebug> DebugNodes() const {
    std::vector<NodeDebug> out;
    DebugRec(root_, &out);
    return out;
  }

 private:
  struct Node {
    explicit Node(BitString l) : label(std::move(l)) {}
    BitString label;
    Node* child[2] = {nullptr, nullptr};
    BV beta;           // internal nodes only
    size_t count = 0;  // leaves only: multiplicity
    bool IsLeaf() const { return child[0] == nullptr; }
  };

  static size_t SubtreeSize(const Node* v) {
    return v->IsLeaf() ? v->count : v->beta.size();
  }

  void InsertImpl(BitSpan s, size_t pos) {
    if (root_ == nullptr) {
      root_ = new Node(BitString::FromSpan(s));
      root_->count = 1;
      n_ = 1;
      distinct_ = 1;
      return;
    }
    Node* v = root_;
    size_t depth = 0;
    for (;;) {
      const BitSpan rest = s.SubSpan(depth);
      const size_t lcp = rest.Lcp(v->label.Span());
      if (lcp < v->label.size()) {
        // The new string diverges inside the label: split (Figure 3). The
        // new internal node's bitvector is a constant run — O(1) Init for
        // the append-only bitvector, O(log n) for the RLE one.
        WT_ASSERT_MSG(depth + lcp < s.size(),
                      "wavelet trie: insert would break prefix-freeness");
        SplitNode(v, lcp, rest);
        ++distinct_;
      }
      depth += v->label.size();
      if (v->IsLeaf()) {
        WT_ASSERT_MSG(depth == s.size(),
                      "wavelet trie: insert would break prefix-freeness");
        v->count += 1;
        break;
      }
      WT_ASSERT_MSG(depth < s.size(),
                    "wavelet trie: insert would break prefix-freeness");
      const bool b = s.Get(depth++);
      BvInsert(&v->beta, pos, b);
      pos = v->beta.Rank(b, pos);
      v = v->child[b];
    }
    ++n_;
  }

  // Splits v's label at offset lcp (Figure 3): the label tail moves into a
  // child node that inherits v's children and payload; the remainder of the
  // inserted string (`rest`, starting at the label) becomes a new empty
  // leaf; v becomes internal with a constant-run bitvector (Init) of the old
  // subtree's size. The caller's descent then routes the new string into the
  // new leaf and bumps its count.
  void SplitNode(Node* v, size_t lcp, BitSpan rest) {
    const bool old_bit = v->label.Get(lcp);
    Node* old_half = new Node(BitString::FromSpan(v->label.SubSpan(lcp + 1)));
    old_half->child[0] = v->child[0];
    old_half->child[1] = v->child[1];
    old_half->beta = std::move(v->beta);
    old_half->count = v->count;
    Node* new_leaf = new Node(BitString::FromSpan(rest.SubSpan(lcp + 1)));
    const size_t old_size = SubtreeSize(old_half);
    v->beta = BV(old_bit, old_size);
    v->count = 0;
    v->child[old_bit] = old_half;
    v->child[!old_bit] = new_leaf;
    v->label.Truncate(lcp);
  }

  static void BvInsert(BV* bv, size_t pos, bool b) {
    if constexpr (kFullyDynamic) {
      bv->Insert(pos, b);
    } else {
      WT_DASSERT(pos == bv->size());
      bv->Append(b);
    }
  }

  bool DeleteRec(Node* v, size_t pos) {
    if (v->IsLeaf()) {
      WT_DASSERT(v->count > 0);
      v->count -= 1;
      return v->count == 0;
    }
    const bool b = v->beta.Get(pos);
    const size_t child_pos = v->beta.Rank(b, pos);
    const bool child_emptied = DeleteRec(v->child[b], child_pos);
    if constexpr (kFullyDynamic) {
      v->beta.Erase(pos);
    }
    if (child_emptied && v->child[b]->IsLeaf()) {
      // Last occurrence deleted: remove the leaf and merge v with the
      // sibling (inverse of Figure 3). O(max label length) for the label
      // concatenation, as in Appendix B.
      Node* leaf = v->child[b];
      Node* sibling = v->child[!b];
      BitString merged = std::move(v->label);
      merged.PushBack(!b);
      merged.Append(sibling->label);
      v->label = std::move(merged);
      v->child[0] = sibling->child[0];
      v->child[1] = sibling->child[1];
      v->beta = std::move(sibling->beta);
      v->count = sibling->count;
      delete leaf;
      delete sibling;
      --distinct_;
    }
    return false;
  }

  std::optional<size_t> SelectUp(
      const std::vector<std::pair<const Node*, bool>>& path, size_t idx) const {
    for (size_t i = path.size(); i-- > 0;) {
      idx = path[i].first->beta.Select(path[i].second, idx);
    }
    return idx;
  }

  template <typename DistinctFn>
  void DistinctRec(const Node* v, size_t l, size_t r, BitString* prefix,
                   const DistinctFn& fn) const {
    const size_t mark = prefix->size();
    prefix->Append(v->label);
    if (v->IsLeaf()) {
      fn(*prefix, r - l);
      prefix->Truncate(mark);
      return;
    }
    const size_t l0 = v->beta.Rank0(l), r0 = v->beta.Rank0(r);
    if (l0 < r0) {
      prefix->PushBack(false);
      DistinctRec(v->child[0], l0, r0, prefix, fn);
      prefix->Truncate(mark + v->label.size());
    }
    if (l - l0 < r - r0) {
      prefix->PushBack(true);
      DistinctRec(v->child[1], l - l0, r - r0, prefix, fn);
    }
    prefix->Truncate(mark);
  }

  template <typename DistinctFn>
  void FrequentRec(const Node* v, size_t l, size_t r, size_t t,
                   BitString* prefix, const DistinctFn& fn) const {
    const size_t mark = prefix->size();
    prefix->Append(v->label);
    if (v->IsLeaf()) {
      if (r - l >= t) fn(*prefix, r - l);
      prefix->Truncate(mark);
      return;
    }
    const size_t l0 = v->beta.Rank0(l), r0 = v->beta.Rank0(r);
    if (r0 - l0 >= t) {
      prefix->PushBack(false);
      FrequentRec(v->child[0], l0, r0, t, prefix, fn);
      prefix->Truncate(mark + v->label.size());
    }
    if ((r - r0) - (l - l0) >= t) {
      prefix->PushBack(true);
      FrequentRec(v->child[1], l - l0, r - r0, t, prefix, fn);
    }
    prefix->Truncate(mark);
  }

  static void DebugRec(const Node* v, std::vector<NodeDebug>* out) {
    if (v == nullptr) return;
    NodeDebug d;
    d.alpha = v->label.ToString();
    d.is_leaf = v->IsLeaf();
    d.count = v->IsLeaf() ? v->count : 0;
    if (!v->IsLeaf()) {
      for (size_t i = 0; i < v->beta.size(); ++i) {
        d.beta.push_back(v->beta.Get(i) ? '1' : '0');
      }
    }
    out->push_back(std::move(d));
    if (!v->IsLeaf()) {
      DebugRec(v->child[0], out);
      DebugRec(v->child[1], out);
    }
  }

  static void Free(Node* v) {
    if (v == nullptr) return;
    Free(v->child[0]);
    Free(v->child[1]);
    delete v;
  }

  static size_t NodeSize(const Node* v) {
    if (v == nullptr) return 0;
    return 8 * sizeof(Node) + v->label.SizeInBits() + v->beta.SizeInBits() +
           NodeSize(v->child[0]) + NodeSize(v->child[1]);
  }

  static size_t LabelBitsRec(const Node* v) {
    if (v == nullptr) return 0;
    return v->label.size() + LabelBitsRec(v->child[0]) + LabelBitsRec(v->child[1]);
  }

  static size_t HeightRec(const Node* v) {
    if (v == nullptr || v->IsLeaf()) return 0;
    return 1 + std::max(HeightRec(v->child[0]), HeightRec(v->child[1]));
  }

  Node* root_ = nullptr;
  size_t n_ = 0;
  size_t distinct_ = 0;
};

/// Theorem 4.3: append-only Wavelet Trie, O(|s| + h_s) Append and queries.
using AppendOnlyWaveletTrie = DynamicWaveletTrieT<AppendOnlyBitVector>;

/// Lemma 4.8 variant of Theorem 4.3: same bounds, worst-case O(1) bitvector
/// appends via incrementally built RRR chunks (see append_only_deamortized).
using DeamortizedAppendOnlyWaveletTrie =
    DynamicWaveletTrieT<DeamortizedAppendOnlyBitVector>;

/// Theorem 4.4: fully-dynamic Wavelet Trie, O(|s| + h_s log n) updates.
using DynamicWaveletTrie = DynamicWaveletTrieT<DynamicBitVector>;

}  // namespace wt
