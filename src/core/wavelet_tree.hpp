// Classic static Wavelet Tree [Grossi-Gupta-Vitter 2003] over a contiguous
// integer alphabet {0, ..., sigma-1} — the structure of the paper's
// Figure 1, and the related-work baseline (1): to index strings with it, one
// must first map them to integers through a dictionary, fixing the alphabet
// and losing prefix structure (exactly the limitation the Wavelet Trie
// removes).
//
// Balanced value-range partition: a node covering [lo, hi) splits at
// mid = (lo + hi) / 2; bit 0 routes to [lo, mid), bit 1 to [mid, hi).
// Plain (uncompressed) bitvectors with rank/select.
#pragma once

#include <cstdint>
#include <functional>
#include <istream>
#include <ostream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bitvector/bit_vector.hpp"
#include "common/assert.hpp"
#include "common/serialize.hpp"

namespace wt {

class WaveletTree {
 public:
  WaveletTree() = default;

  /// Builds from `seq` with values in [0, sigma).
  WaveletTree(const std::vector<uint64_t>& seq, uint64_t sigma)
      : n_(seq.size()), sigma_(sigma) {
    WT_ASSERT(sigma >= 1);
    for (uint64_t v : seq) WT_ASSERT_MSG(v < sigma, "WaveletTree: value out of range");
    if (n_ > 0 && sigma > 1) root_ = Build(seq, 0, sigma);
  }

  size_t size() const { return n_; }
  uint64_t sigma() const { return sigma_; }

  uint64_t Access(size_t pos) const {
    WT_ASSERT(pos < n_);
    const Node* v = root_.get();
    uint64_t lo = 0, hi = sigma_;
    while (v != nullptr) {
      const uint64_t mid = lo + (hi - lo) / 2;  // overflow-safe for hi > 2^63
      if (v->bits.Get(pos)) {
        pos = v->bits.Rank1(pos);
        lo = mid;
        v = v->right.get();
      } else {
        pos = v->bits.Rank0(pos);
        hi = mid;
        v = v->left.get();
      }
    }
    return lo;
  }

  /// Occurrences of `value` in [0, pos).
  size_t Rank(uint64_t value, size_t pos) const {
    WT_ASSERT(pos <= n_);
    if (value >= sigma_) return 0;
    const Node* v = root_.get();
    uint64_t lo = 0, hi = sigma_;
    while (v != nullptr) {
      const uint64_t mid = lo + (hi - lo) / 2;  // overflow-safe for hi > 2^63
      if (value >= mid) {
        pos = v->bits.Rank1(pos);
        lo = mid;
        v = v->right.get();
      } else {
        pos = v->bits.Rank0(pos);
        hi = mid;
        v = v->left.get();
      }
    }
    return pos;
  }

  /// Position of the (k+1)-th occurrence of `value` (0-based).
  std::optional<size_t> Select(uint64_t value, size_t k) const {
    if (value >= sigma_) return std::nullopt;
    return SelectRec(root_.get(), 0, sigma_, value, k);
  }

  /// Two-dimensional counting [Makinen-Navarro, LATIN 2006]: the number of
  /// positions i in [l, r) with value in [a, b). O(log sigma) time. With a
  /// lexicographic string-to-integer mapping this implements RankPrefix
  /// (see core/lex_sequence.hpp) — the related-work approach (1).
  size_t RangeCount2d(size_t l, size_t r, uint64_t a, uint64_t b) const {
    WT_ASSERT(l <= r && r <= n_);
    if (a >= b) return 0;
    if (sigma_ == 1) return (a == 0) ? r - l : 0;
    return RangeCount2dRec(root_.get(), 0, sigma_, l, r, a, b);
  }

  /// The (k+1)-th smallest value in positions [l, r), counting multiplicity
  /// (the "range quantile" of Gagie-Navarro-Puglisi). O(log sigma) time.
  /// Requires k < r - l.
  uint64_t RangeQuantile(size_t l, size_t r, size_t k) const {
    WT_ASSERT(l <= r && r <= n_);
    WT_ASSERT_MSG(k < r - l, "RangeQuantile: k out of range");
    const Node* v = root_.get();
    uint64_t lo = 0, hi = sigma_;
    while (v != nullptr) {
      const uint64_t mid = lo + (hi - lo) / 2;  // overflow-safe for hi > 2^63
      const size_t l0 = v->bits.Rank0(l), r0 = v->bits.Rank0(r);
      const size_t zeros = r0 - l0;
      if (k < zeros) {
        hi = mid;
        l = l0;
        r = r0;
        v = v->left.get();
      } else {
        k -= zeros;
        lo = mid;
        l = l - l0;
        r = r - r0;
        v = v->right.get();
      }
    }
    return lo;
  }

  /// Enumerates the distinct values occurring in [l, r) with multiplicities,
  /// in increasing value order (the "report" algorithm of [11]). The cost is
  /// proportional to the paths to the reported values, not to sigma.
  void RangeDistinct(size_t l, size_t r,
                     const std::function<void(uint64_t, size_t)>& fn) const {
    WT_ASSERT(l <= r && r <= n_);
    if (l == r || n_ == 0) return;
    RangeDistinctRec(root_.get(), 0, sigma_, l, r, fn);
  }

  /// Majority value of [l, r) (> half the range), if any. O(log sigma).
  std::optional<std::pair<uint64_t, size_t>> RangeMajority(size_t l,
                                                           size_t r) const {
    WT_ASSERT(l <= r && r <= n_);
    if (l >= r || n_ == 0) return std::nullopt;
    const size_t need = (r - l) / 2;  // strict majority: count > need
    const Node* v = root_.get();
    uint64_t lo = 0, hi = sigma_;
    while (v != nullptr) {
      // At most one side can hold more than half the original range.
      const size_t l0 = v->bits.Rank0(l), r0 = v->bits.Rank0(r);
      const size_t c0 = r0 - l0, c1 = (r - l) - c0;
      const uint64_t mid = lo + (hi - lo) / 2;  // overflow-safe for hi > 2^63
      if (c0 > need) {
        hi = mid;
        l = l0;
        r = r0;
        v = v->left.get();
      } else if (c1 > need) {
        lo = mid;
        l = l - l0;
        r = r - r0;
        v = v->right.get();
      } else {
        return std::nullopt;
      }
    }
    if (r - l <= need) return std::nullopt;
    return std::make_pair(lo, r - l);
  }

  size_t SizeInBits() const { return NodeBits(root_.get()); }

  /// Serializes the tree: header, then nodes in preorder with presence
  /// flags. Rank/select directories are rebuilt by BitVector::Load.
  void Save(std::ostream& out) const {
    WritePod<uint64_t>(out, kMagic);
    WritePod<uint64_t>(out, n_);
    WritePod<uint64_t>(out, sigma_);
    SaveNode(out, root_.get());
  }

  void Load(std::istream& in) {
    WT_ASSERT_MSG(ReadPod<uint64_t>(in) == kMagic,
                  "WaveletTree: not a wavelet-tree stream");
    n_ = ReadPod<uint64_t>(in);
    sigma_ = ReadPod<uint64_t>(in);
    root_ = LoadNode(in);
  }

  /// Preorder debug view for the Figure 1 reproduction: each internal node's
  /// value range and bitvector.
  struct NodeDebug {
    uint64_t lo, hi;
    std::string bits;
  };
  std::vector<NodeDebug> DebugNodes() const {
    std::vector<NodeDebug> out;
    DebugRec(root_.get(), 0, sigma_, &out);
    return out;
  }

 private:
  static constexpr uint64_t kMagic = 0x57544C4556454C31ull;  // "WTLEVEL1"

  struct Node {
    BitVector bits;
    std::unique_ptr<Node> left, right;
  };

  std::unique_ptr<Node> Build(const std::vector<uint64_t>& seq, uint64_t lo,
                              uint64_t hi) {
    if (seq.empty() || hi - lo <= 1) return nullptr;
    const uint64_t mid = lo + (hi - lo) / 2;  // overflow-safe for hi > 2^63
    BitArray bits;
    std::vector<uint64_t> left, right;
    for (uint64_t v : seq) {
      const bool b = v >= mid;
      bits.PushBack(b);
      (b ? right : left).push_back(v);
    }
    auto node = std::make_unique<Node>();
    node->bits = BitVector(std::move(bits));
    node->left = Build(left, lo, mid);
    node->right = Build(right, mid, hi);
    return node;
  }

  size_t RangeCount2dRec(const Node* v, uint64_t lo, uint64_t hi, size_t l,
                         size_t r, uint64_t a, uint64_t b) const {
    if (l >= r || b <= lo || hi <= a) return 0;
    if (a <= lo && hi <= b) return r - l;
    if (v == nullptr) return 0;  // empty subsequence in a partial overlap
    const uint64_t mid = lo + (hi - lo) / 2;  // overflow-safe for hi > 2^63
    const size_t l0 = v->bits.Rank0(l), r0 = v->bits.Rank0(r);
    return RangeCount2dRec(v->left.get(), lo, mid, l0, r0, a, b) +
           RangeCount2dRec(v->right.get(), mid, hi, l - l0, r - r0, a, b);
  }

  void RangeDistinctRec(const Node* v, uint64_t lo, uint64_t hi, size_t l,
                        size_t r,
                        const std::function<void(uint64_t, size_t)>& fn) const {
    if (l >= r) return;
    if (v == nullptr) {
      // Single-value range (hi - lo == 1) or constant tail.
      fn(lo, r - l);
      return;
    }
    const uint64_t mid = lo + (hi - lo) / 2;  // overflow-safe for hi > 2^63
    const size_t l0 = v->bits.Rank0(l), r0 = v->bits.Rank0(r);
    RangeDistinctRec(v->left.get(), lo, mid, l0, r0, fn);
    RangeDistinctRec(v->right.get(), mid, hi, l - l0, r - r0, fn);
  }

  std::optional<size_t> SelectRec(const Node* v, uint64_t lo, uint64_t hi,
                                  uint64_t value, size_t k) const {
    if (v == nullptr) {
      // Leaf range: k must be within the number of occurrences, which equals
      // the subsequence length. The caller checks via select bounds, so only
      // the root-level (sigma == 1) case lands here directly.
      return k < n_ ? std::optional<size_t>(k) : std::nullopt;
    }
    const uint64_t mid = lo + (hi - lo) / 2;  // overflow-safe for hi > 2^63
    const bool b = value >= mid;
    const Node* child = b ? v->right.get() : v->left.get();
    const uint64_t clo = b ? mid : lo, chi = b ? hi : mid;
    std::optional<size_t> down;
    if (child == nullptr) {
      // The child is a value-range leaf; its subsequence length bounds k.
      const size_t len = b ? v->bits.num_ones() : v->bits.num_zeros();
      if (k >= len) return std::nullopt;
      down = k;
    } else {
      down = SelectRec(child, clo, chi, value, k);
      if (!down) return std::nullopt;
    }
    return v->bits.Select(b, *down);
  }

  static void SaveNode(std::ostream& out, const Node* v) {
    WritePod<uint8_t>(out, v != nullptr ? 1 : 0);
    if (v == nullptr) return;
    v->bits.Save(out);
    SaveNode(out, v->left.get());
    SaveNode(out, v->right.get());
  }

  static std::unique_ptr<Node> LoadNode(std::istream& in) {
    if (ReadPod<uint8_t>(in) == 0) return nullptr;
    auto node = std::make_unique<Node>();
    node->bits.Load(in);
    node->left = LoadNode(in);
    node->right = LoadNode(in);
    return node;
  }

  static size_t NodeBits(const Node* v) {
    if (v == nullptr) return 0;
    return 8 * sizeof(Node) + v->bits.SizeInBits() + NodeBits(v->left.get()) +
           NodeBits(v->right.get());
  }

  static void DebugRec(const Node* v, uint64_t lo, uint64_t hi,
                       std::vector<NodeDebug>* out) {
    if (v == nullptr) return;
    NodeDebug d;
    d.lo = lo;
    d.hi = hi;
    for (size_t i = 0; i < v->bits.size(); ++i) {
      d.bits.push_back(v->bits.Get(i) ? '1' : '0');
    }
    out->push_back(std::move(d));
    const uint64_t mid = lo + (hi - lo) / 2;  // overflow-safe for hi > 2^63
    DebugRec(v->left.get(), lo, mid, out);
    DebugRec(v->right.get(), mid, hi, out);
  }

  size_t n_ = 0;
  uint64_t sigma_ = 1;
  std::unique_ptr<Node> root_;
};

}  // namespace wt
