// Huffman-shaped Wavelet Tree, realized as a Wavelet Trie on Huffman
// codewords — the construction Section 3 of the paper describes verbatim:
// "the Huffman-tree shaped Wavelet Tree ... can be obtained as a Wavelet
// Trie by mapping each symbol to its Huffman code."
//
// The codewords of a Huffman code are a prefix-free set, so they are a valid
// Wavelet Trie alphabet; the Patricia trie of the full codeword set has no
// multi-bit labels (every internal Huffman node has two children), hence the
// trie *is* the Huffman tree and the per-node bitvectors are the classic
// Huffman-shaped Wavelet Tree's. Total bitvector length is the Huffman-
// encoded size of the sequence, i.e. within one bit per element of nH0(S) —
// this is the space-optimal static shape when prefix queries on the original
// symbols are not needed.
//
// Contrast (bench_shapes):
//   * balanced WaveletTree: O(log sigma) everything, n*ceil(log sigma) bits;
//   * HuffmanWaveletTree:   O(len(sym)) per op — frequent symbols are
//     cheaper than log sigma — and ~nH0 bits;
//   * Wavelet Trie on a string codec: prefix operations, dynamic alphabet.
#pragma once

#include <cstdint>
#include <functional>
#include <istream>
#include <optional>
#include <ostream>
#include <utility>
#include <vector>

#include "coding/huffman.hpp"
#include "common/assert.hpp"
#include "core/wavelet_trie.hpp"

namespace wt {

/// Static Rank/Select sequence over an arbitrary (sparse) integer alphabet,
/// stored in a Huffman-shaped Wavelet Trie. Space ~ nH0(S) + per-symbol
/// model cost; Access/Rank/Select cost O(codeword length).
class HuffmanWaveletTree {
 public:
  HuffmanWaveletTree() = default;

  explicit HuffmanWaveletTree(const std::vector<uint64_t>& seq) : n_(seq.size()) {
    if (n_ == 0) return;
    code_ = HuffmanCode::FromSequence(seq);
    std::vector<BitString> enc;
    enc.reserve(seq.size());
    for (uint64_t v : seq) enc.push_back(code_.Encode(v));
    trie_ = WaveletTrie(enc);
  }

  size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  size_t NumDistinct() const { return code_.num_symbols(); }
  const HuffmanCode& code() const { return code_; }

  /// The symbol at position pos. O(len(symbol)).
  uint64_t Access(size_t pos) const {
    WT_ASSERT(pos < n_);
    const BitString cw = trie_.Access(pos);
    return code_.Decode(cw.Span()).first;
  }

  /// Occurrences of `sym` in [0, pos). Symbols outside the alphabet have
  /// rank 0 everywhere.
  size_t Rank(uint64_t sym, size_t pos) const {
    WT_ASSERT(pos <= n_);
    if (!code_.Contains(sym)) return 0;
    return trie_.Rank(code_.Encode(sym).Span(), pos);
  }

  /// Position of the (k+1)-th occurrence of `sym` (0-based).
  std::optional<size_t> Select(uint64_t sym, size_t k) const {
    if (!code_.Contains(sym)) return std::nullopt;
    return trie_.Select(code_.Encode(sym).Span(), k);
  }

  /// Occurrences of sym in [l, r).
  size_t RangeCount(uint64_t sym, size_t l, size_t r) const {
    WT_DASSERT(l <= r);
    return Rank(sym, r) - Rank(sym, l);
  }

  /// Section 5 analytics lifted from the underlying trie: distinct symbols
  /// in [l, r) with multiplicities, in canonical-code order.
  void DistinctInRange(size_t l, size_t r,
                       const std::function<void(uint64_t, size_t)>& fn) const {
    trie_.DistinctInRange(l, r, [&](const BitString& cw, size_t count) {
      fn(code_.Decode(cw.Span()).first, count);
    });
  }

  /// Majority symbol of [l, r), if any.
  std::optional<std::pair<uint64_t, size_t>> RangeMajority(size_t l,
                                                           size_t r) const {
    const auto m = trie_.RangeMajority(l, r);
    if (!m) return std::nullopt;
    return std::make_pair(code_.Decode(m->first.Span()).first, m->second);
  }

  /// Height of the Huffman tree = longest codeword.
  size_t Height() const { return trie_.Height(); }

  void Save(std::ostream& out) const {
    WritePod<uint64_t>(out, kMagic);
    WritePod<uint64_t>(out, n_);
    if (n_ == 0) return;
    code_.Save(out);
    trie_.Save(out);
  }

  void Load(std::istream& in) {
    WT_ASSERT_MSG(ReadPod<uint64_t>(in) == kMagic,
                  "HuffmanWaveletTree: not a huffman-wt stream");
    n_ = ReadPod<uint64_t>(in);
    if (n_ == 0) return;
    code_.Load(in);
    trie_.Load(in);
  }

  size_t SizeInBits() const { return trie_.SizeInBits() + code_.SizeInBits(); }

  const WaveletTrie& trie() const { return trie_; }

 private:
  static constexpr uint64_t kMagic = 0x48554657544C4931ull;  // "HUFWTLI1"

  size_t n_ = 0;
  HuffmanCode code_;
  WaveletTrie trie_;
};

}  // namespace wt
