// Internal helper for the bulk-load paths (DESIGN.md #4): collapse a batch
// of bit strings onto its distinct alphabet in one pass.
//
// Real ingest batches (logs, column values) repeat a small working alphabet,
// so the batched trie builders first map every item to a distinct id. The
// structural work (label LCPs, splits) then runs over the distinct set only,
// and the per-occurrence work — routing ids through each node's beta — is
// sequential integer traffic plus an L1-resident bit table, instead of one
// random heap access per string per trie level.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/bit_string.hpp"
#include "common/bits.hpp"

namespace wt {
namespace internal {

/// Content hash of a bit span (word-at-a-time; direct word loads when the
/// span is word-aligned, which spans over whole BitStrings always are).
inline uint64_t HashBitSpan(BitSpan s) {
  uint64_t h = 0x9E3779B97F4A7C15ull ^ (uint64_t(s.size()) * 0xFF51AFD7ED558CCDull);
  const auto mix = [&h](uint64_t w) {
    h ^= w;
    h *= 0xC2B2AE3D27D4EB4Full;
    h ^= h >> 29;
  };
  const size_t len = s.size();
  if ((s.start_bit() & (kWordBits - 1)) == 0) {
    const uint64_t* w = s.words() + (s.start_bit() >> 6);
    const size_t nw = len >> 6;
    for (size_t i = 0; i < nw; ++i) mix(w[i]);
    const size_t tail = len & (kWordBits - 1);
    if (tail != 0) mix(w[nw] & LowMask(tail));
    return h;
  }
  for (size_t i = 0; i < len; i += kWordBits) {
    mix(s.GetBits(i, std::min(kWordBits, len - i)));
  }
  return h;
}

/// Content equality with a word-aligned fast path.
inline bool SpanContentEqual(BitSpan a, BitSpan b) {
  if (a.size() != b.size()) return false;
  if (((a.start_bit() | b.start_bit()) & (kWordBits - 1)) == 0) {
    const uint64_t* wa = a.words() + (a.start_bit() >> 6);
    const uint64_t* wb = b.words() + (b.start_bit() >> 6);
    const size_t nw = a.size() >> 6;
    for (size_t i = 0; i < nw; ++i) {
      if (wa[i] != wb[i]) return false;
    }
    const size_t tail = a.size() & (kWordBits - 1);
    return tail == 0 || ((wa[nw] ^ wb[nw]) & LowMask(tail)) == 0;
  }
  return a.ContentEquals(b);
}

struct BatchDict {
  std::vector<BitSpan> distinct;  // first occurrence of each distinct string
  std::vector<uint32_t> id_of;    // batch position -> index into `distinct`
};

/// Single-pass open-addressing dedup (linear probing, grown on the *distinct*
/// count at 25% load, so the common many-duplicates case stays cache-resident).
inline BatchDict DedupBatch(std::span<const BitSpan> batch) {
  BatchDict out;
  const size_t m = batch.size();
  WT_ASSERT(m < (uint64_t(1) << 32));
  out.id_of.resize(m);
  size_t cap = 256;
  std::vector<uint32_t> table(cap, 0);  // distinct id + 1; 0 = empty
  for (size_t pos = 0; pos < m; ++pos) {
    const BitSpan s = batch[pos];
    const uint64_t h = HashBitSpan(s);
    size_t i = h & (cap - 1);
    uint32_t id;
    for (;;) {
      const uint32_t slot = table[i];
      if (slot == 0) {
        id = static_cast<uint32_t>(out.distinct.size());
        out.distinct.push_back(s);
        table[i] = id + 1;
        if ((out.distinct.size() + 1) * 4 > cap) {
          cap <<= 2;
          table.assign(cap, 0);
          for (uint32_t d = 0; d < out.distinct.size(); ++d) {
            size_t j = HashBitSpan(out.distinct[d]) & (cap - 1);
            while (table[j] != 0) j = (j + 1) & (cap - 1);
            table[j] = d + 1;
          }
        }
        break;
      }
      if (SpanContentEqual(out.distinct[slot - 1], s)) {
        id = slot - 1;
        break;
      }
      i = (i + 1) & (cap - 1);
    }
    out.id_of[pos] = id;
  }
  return out;
}

}  // namespace internal
}  // namespace wt
