// Traditional-index baseline (paper Related Work, approach (3)-style): the
// sequence is stored explicitly (for Access) next to per-string posting
// lists (for Rank/Select). This is what databases typically do; it offers no
// compression — the benchmarks use it to quantify the Wavelet Trie's space
// advantage — and prefix operations require scanning a dictionary range.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.hpp"

namespace wt {

class InvertedIndexBaseline {
 public:
  void Append(const std::string& s) {
    postings_[s].push_back(static_cast<uint32_t>(seq_.size()));
    seq_.push_back(s);
  }

  size_t size() const { return seq_.size(); }

  const std::string& Access(size_t pos) const {
    WT_ASSERT(pos < seq_.size());
    return seq_[pos];
  }

  size_t Rank(const std::string& s, size_t pos) const {
    const auto it = postings_.find(s);
    if (it == postings_.end()) return 0;
    const auto& list = it->second;
    return static_cast<size_t>(
        std::lower_bound(list.begin(), list.end(), pos) - list.begin());
  }

  std::optional<size_t> Select(const std::string& s, size_t idx) const {
    const auto it = postings_.find(s);
    if (it == postings_.end() || idx >= it->second.size()) return std::nullopt;
    return it->second[idx];
  }

  size_t RankPrefix(std::string_view p, size_t pos) const {
    size_t count = 0;
    for (auto it = postings_.lower_bound(std::string(p));
         it != postings_.end() && it->first.compare(0, p.size(), p) == 0; ++it) {
      const auto& list = it->second;
      count += static_cast<size_t>(
          std::lower_bound(list.begin(), list.end(), pos) - list.begin());
    }
    return count;
  }

  std::optional<size_t> SelectPrefix(std::string_view p, size_t idx) const {
    // Merge the matching posting lists; O(total postings) — the baseline has
    // no sublinear prefix-select, which is the point.
    std::vector<uint32_t> merged;
    for (auto it = postings_.lower_bound(std::string(p));
         it != postings_.end() && it->first.compare(0, p.size(), p) == 0; ++it) {
      merged.insert(merged.end(), it->second.begin(), it->second.end());
    }
    if (idx >= merged.size()) return std::nullopt;
    std::nth_element(merged.begin(), merged.begin() + static_cast<ptrdiff_t>(idx),
                     merged.end());
    return merged[idx];
  }

  size_t SizeInBits() const {
    size_t bytes = sizeof(*this);
    for (const auto& s : seq_) bytes += s.capacity() + sizeof(std::string);
    for (const auto& [s, list] : postings_) {
      bytes += s.capacity() + sizeof(std::string) + 48 /* map node overhead */ +
               list.capacity() * sizeof(uint32_t);
    }
    return 8 * bytes;
  }

 private:
  std::vector<std::string> seq_;
  std::map<std::string, std::vector<uint32_t>> postings_;
};

}  // namespace wt
