// Fixed-alphabet dynamic Wavelet Tree — the prior state of the art the
// paper improves on ([16, 12, 18]: "They all assume that the alphabet is
// known a priori, hence the tree structure is static").
//
// The full balanced tree over [0, sigma) is materialized at construction —
// whether or not values ever occur — and cannot change afterwards; inserting
// a value outside [0, sigma) is impossible without a rebuild. Node
// bitvectors are the dynamic RLE+gamma structure, so updates cost
// O(log sigma * log n) like the paper's Table 1 comparators.
//
// Used by bench_baselines to quantify what the Wavelet Trie's dynamic
// alphabet buys.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bitvector/dynamic_bit_vector.hpp"
#include "common/assert.hpp"

namespace wt {

class DynamicWaveletTreeFixed {
 public:
  /// The alphabet [0, sigma) is fixed for the lifetime of the structure.
  explicit DynamicWaveletTreeFixed(uint64_t sigma) : sigma_(sigma) {
    WT_ASSERT(sigma >= 1);
    // Materialize the balanced skeleton: one node per value range of size
    // >= 2, indexed implicitly (node 0 = root, then heap order on demand).
    BuildSkeleton(0, sigma_);
  }

  size_t size() const { return n_; }
  uint64_t sigma() const { return sigma_; }

  void Insert(uint64_t value, size_t pos) {
    WT_ASSERT_MSG(value < sigma_,
                  "DynamicWaveletTreeFixed: value outside the fixed alphabet");
    WT_ASSERT(pos <= n_);
    size_t node = 0;
    uint64_t lo = 0, hi = sigma_;
    while (hi - lo > 1) {
      const uint64_t mid = lo + (hi - lo) / 2;  // overflow-safe for hi > 2^63
      const bool b = value >= mid;
      nodes_[node].Insert(pos, b);
      pos = nodes_[node].Rank(b, pos);
      node = Child(node, b, lo, hi);
      if (b)
        lo = mid;
      else
        hi = mid;
    }
    ++n_;
  }

  void Append(uint64_t value) { Insert(value, n_); }

  void Delete(size_t pos) {
    WT_ASSERT(pos < n_);
    size_t node = 0;
    uint64_t lo = 0, hi = sigma_;
    while (hi - lo > 1) {
      const uint64_t mid = lo + (hi - lo) / 2;  // overflow-safe for hi > 2^63
      const bool b = nodes_[node].Get(pos);
      const size_t next_pos = nodes_[node].Rank(b, pos);
      nodes_[node].Erase(pos);
      pos = next_pos;
      node = Child(node, b, lo, hi);
      if (b)
        lo = mid;
      else
        hi = mid;
    }
    --n_;
  }

  uint64_t Access(size_t pos) const {
    WT_ASSERT(pos < n_);
    size_t node = 0;
    uint64_t lo = 0, hi = sigma_;
    while (hi - lo > 1) {
      const uint64_t mid = lo + (hi - lo) / 2;  // overflow-safe for hi > 2^63
      const bool b = nodes_[node].Get(pos);
      pos = nodes_[node].Rank(b, pos);
      node = ChildConst(node, b, lo, hi);
      if (b)
        lo = mid;
      else
        hi = mid;
    }
    return lo;
  }

  size_t Rank(uint64_t value, size_t pos) const {
    WT_ASSERT(pos <= n_);
    if (value >= sigma_) return 0;
    size_t node = 0;
    uint64_t lo = 0, hi = sigma_;
    while (hi - lo > 1) {
      const uint64_t mid = lo + (hi - lo) / 2;  // overflow-safe for hi > 2^63
      const bool b = value >= mid;
      pos = nodes_[node].Rank(b, pos);
      node = ChildConst(node, b, lo, hi);
      if (b)
        lo = mid;
      else
        hi = mid;
    }
    return pos;
  }

  std::optional<size_t> Select(uint64_t value, size_t k) const {
    if (value >= sigma_) return std::nullopt;
    // Descend to record the path, then unwind.
    std::vector<std::pair<size_t, bool>> path;
    size_t node = 0;
    uint64_t lo = 0, hi = sigma_;
    while (hi - lo > 1) {
      const uint64_t mid = lo + (hi - lo) / 2;  // overflow-safe for hi > 2^63
      const bool b = value >= mid;
      path.push_back({node, b});
      node = ChildConst(node, b, lo, hi);
      if (b)
        lo = mid;
      else
        hi = mid;
    }
    if (path.empty()) {  // sigma == 1: the sequence is constant
      return k < n_ ? std::optional<size_t>(k) : std::nullopt;
    }
    // k bounded by the leaf subsequence length.
    const auto& [last_node, last_bit] = path.back();
    const auto& bv = nodes_[last_node];
    if (k >= (last_bit ? bv.num_ones() : bv.num_zeros())) return std::nullopt;
    size_t idx = k;
    for (size_t i = path.size(); i-- > 0;) {
      idx = nodes_[path[i].first].Select(path[i].second, idx);
    }
    return idx;
  }

  size_t SizeInBits() const {
    size_t bits = 8 * sizeof(DynamicBitVector) * nodes_.capacity();
    for (const auto& bv : nodes_) bits += bv.SizeInBits();
    bits += 32 * (left_.capacity() + right_.capacity());
    return bits;
  }

 private:
  // Nodes are stored in a vector; left_/right_ give child indices
  // (uint32_t(-1) for value-range leaves). Built once: the alphabet — and
  // hence the shape — can never change (the limitation under study).
  void BuildSkeleton(uint64_t lo, uint64_t hi) {
    struct Frame {
      uint64_t lo, hi;
      uint32_t slot;  // index in left_/right_ to patch, or -1 for root
      bool is_right;
    };
    std::vector<Frame> stack{{lo, hi, uint32_t(-1), false}};
    while (!stack.empty()) {
      Frame f = stack.back();
      stack.pop_back();
      if (f.hi - f.lo <= 1) continue;
      const uint32_t id = static_cast<uint32_t>(nodes_.size());
      nodes_.emplace_back();
      left_.push_back(uint32_t(-1));
      right_.push_back(uint32_t(-1));
      if (f.slot != uint32_t(-1)) {
        (f.is_right ? right_ : left_)[f.slot] = id;
      }
      const uint64_t mid = (f.lo + f.hi) / 2;
      stack.push_back({mid, f.hi, id, true});
      stack.push_back({f.lo, mid, id, false});
    }
  }

  size_t Child(size_t node, bool b, uint64_t lo, uint64_t hi) {
    (void)lo;
    (void)hi;
    const uint32_t c = b ? right_[node] : left_[node];
    return c;
  }
  size_t ChildConst(size_t node, bool b, uint64_t lo, uint64_t hi) const {
    (void)lo;
    (void)hi;
    return b ? right_[node] : left_[node];
  }

  uint64_t sigma_;
  size_t n_ = 0;
  std::vector<DynamicBitVector> nodes_;
  std::vector<uint32_t> left_, right_;
};

}  // namespace wt
