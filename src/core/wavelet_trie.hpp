// WaveletTrie: static compressed indexed sequence of binary strings —
// the paper's central structure (Definition 3.1, Theorem 3.7).
//
// The trie shape is the Patricia trie of the distinct strings Sset; each
// internal node carries the bitvector beta that routes sequence positions to
// its two children. Representation (Section 3's "static succinct
// representation"):
//   * shape:  preorder internal/leaf bitmap with excess-search navigation
//             (succinct/binary_tree_shape.hpp);
//   * labels: all alpha labels concatenated in preorder into one bit array,
//             delimited by an Elias--Fano partial-sum structure;
//   * betas:  all internal-node bitvectors concatenated in preorder into ONE
//             RRR vector, delimited by Elias--Fano — per-node Rank/Select are
//             O(1) queries on the global RRR.
//
// Query fast path (DESIGN.md #6): a flat 16-byte-per-node header array —
// label end, right-child id, beta start, ones-before-beta-start — is
// precomputed at construction/load, so each traversal level is one header
// load plus one fused RRR operation instead of recomputed Elias--Fano
// selects, shape excess searches and paired ranks. The Elias--Fano
// delimiters and shape directories remain the serialized source of truth
// (headers are derived, never stored) and the fallback when a trie exceeds
// the headers' 2^32-bit addressing. Batched AccessBatch/RankBatch/
// SelectBatch amortize one traversal per touched node per batch, mirroring
// what AppendBatch did for ingestion.
//
// Space: LT(Sset) + nH0(S) + o(~h n) bits (Theorem 3.7) plus O(|Sset|)
// words of headers. Queries: Access/Rank/Select/RankPrefix/SelectPrefix in
// O(|s| + h_s).
//
// Section 5 range analytics (sequential access, distinct values, majority,
// frequent elements) are implemented on the same representation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bitvector/elias_fano.hpp"
#include "bitvector/rrr.hpp"
#include "common/assert.hpp"
#include "common/bit_string.hpp"
#include "core/batch_dedup.hpp"
#include "storage/image.hpp"
#include "storage/vec.hpp"
#include "succinct/binary_tree_shape.hpp"

namespace wt {

// Enumeration methods take the visitor as a deduced callable (inlined at the
// call site) rather than a std::function — the type-erased closures showed
// up in the Section 5 scan profiles, and the public API layer (src/api/)
// wraps these visitors into cursors anyway. Visitor signatures:
//   distinct enumeration: fn(const BitString& value, size_t multiplicity)
//   sequential access:    fn(size_t position, const BitString& value)

class WaveletTrie {
 public:
  /// Capacity of one static trie: the concatenated per-node branch
  /// bitvectors share a single Rrr, whose 32+32 packed directory caps it at
  /// 2^32-1 total beta bits (DESIGN.md #6). Each stored string contributes
  /// one beta bit per internal node on its path, so total beta bits <= sum
  /// of encoded string lengths — about 150M strings at trie height 30.
  /// Both construction paths check this up front and abort with a clean
  /// message; the engine layer (src/engine/) is the supported way to grow
  /// past it (shard, then freeze per-shard segments).
  static constexpr uint64_t kMaxBetaBits = Rrr::kMaxBits;

  WaveletTrie() = default;

  /// Builds from a sequence of binary strings whose distinct set must be
  /// prefix-free (use core/codec.hpp). O(total input bits) construction.
  explicit WaveletTrie(const std::vector<BitString>& seq) : n_(seq.size()) {
    if (n_ == 0) return;
    std::vector<uint32_t> ids(n_);
    for (size_t i = 0; i < n_; ++i) ids[i] = static_cast<uint32_t>(i);

    BitArray shape_bits;
    BitArray beta_bits;
    std::vector<uint64_t> label_ends;
    std::vector<uint64_t> beta_ends;

    // Explicit-stack preorder construction over [begin, end) ranges of ids.
    struct Frame {
      size_t begin, end;
      size_t offset;  // bits of every string in the range already consumed
    };
    std::vector<Frame> stack{{0, n_, 0}};
    std::vector<uint32_t> scratch;
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      const BitSpan first = seq[ids[f.begin]].SubSpan(f.offset);
      // Longest common prefix of all suffixes in the range. A suffix that
      // ends early (prefix-freeness violation) is caught when partitioning.
      size_t lcp = first.size();
      for (size_t i = f.begin + 1; i < f.end && lcp > 0; ++i) {
        const BitSpan suffix = seq[ids[i]].SubSpan(f.offset);
        lcp = std::min(lcp, suffix.Lcp(first));
        if (suffix.size() < lcp) lcp = suffix.size();
      }
      // Append the label alpha.
      labels_.AppendRange(seq[ids[f.begin]].bits(), f.offset, lcp);
      label_ends.push_back(labels_.size());
      const size_t split = f.offset + lcp;
      if (split == first.size() + f.offset) {
        // The first string ends here; by prefix-freeness all must.
        for (size_t i = f.begin; i < f.end; ++i) {
          WT_ASSERT_MSG(seq[ids[i]].size() == split,
                        "WaveletTrie: input set is not prefix-free");
        }
        shape_bits.PushBack(false);  // leaf
        continue;
      }
      shape_bits.PushBack(true);  // internal
      // Emit beta and stably partition the range by the branching bit.
      scratch.clear();
      size_t w = f.begin;
      for (size_t i = f.begin; i < f.end; ++i) {
        const uint32_t id = ids[i];
        WT_ASSERT_MSG(seq[id].size() > split,
                      "WaveletTrie: input set is not prefix-free");
        const bool b = seq[id].Get(split);
        beta_bits.PushBack(b);
        if (b)
          scratch.push_back(id);
        else
          ids[w++] = id;
      }
      for (uint32_t id : scratch) ids[w++] = id;
      beta_ends.push_back(beta_bits.size());
      const size_t mid = f.end - scratch.size();
      // Preorder: left subtree first, so push right first.
      stack.push_back({mid, f.end, split + 1});
      stack.push_back({f.begin, mid, split + 1});
    }

    shape_ = BinaryTreeShape(std::move(shape_bits));
    labels_.ShrinkToFit();
    label_ends_ = EliasFano(label_ends, labels_.size());
    WT_ASSERT_MSG(beta_bits.size() <= kMaxBetaBits,
                  "WaveletTrie: total beta bits exceed 2^32-1 (the packed RRR "
                  "directory limit); split the sequence across tries "
                  "(src/engine/) instead");
    beta_ = Rrr(beta_bits);
    beta_ends_ = EliasFano(beta_ends, beta_bits.size());
    BuildHeaders();
  }

  /// Word-parallel bulk construction (the DESIGN.md #4 fast path). Produces
  /// byte-identical serialization to the WaveletTrie(seq) constructor — the
  /// constructor stays as the bit-for-bit reference the differential test
  /// compares against — but first collapses the sequence onto its distinct
  /// alphabet: label LCPs and shape decisions run over the distinct set
  /// only, and each node's branch bits are emitted as packed 64-bit words
  /// driven by an L1-resident per-node bit table over distinct ids.
  static WaveletTrie BulkBuild(const std::vector<BitString>& seq) {
    WaveletTrie out;
    out.n_ = seq.size();
    if (out.n_ == 0) return out;
    const size_t n = out.n_;
    std::vector<BitSpan> spans;
    spans.reserve(n);
    for (const auto& s : seq) spans.push_back(s.Span());
    internal::BatchDict dict =
        internal::DedupBatch(std::span<const BitSpan>(spans));
    const std::vector<BitSpan>& dstr = dict.distinct;
    const size_t dn = dstr.size();
    std::vector<uint32_t> darr(dn);
    for (size_t i = 0; i < dn; ++i) darr[i] = static_cast<uint32_t>(i);
    std::vector<uint32_t>& oarr = dict.id_of;
    std::vector<uint32_t> dscratch(dn);
    std::vector<uint32_t> oscratch(n);
    std::vector<uint8_t> bit_of(dn);

    BitArray shape_bits;
    BitArray beta_bits;
    std::vector<uint64_t> label_ends;
    std::vector<uint64_t> beta_ends;

    struct Frame {
      uint32_t *dbegin, *dend;  // distinct ids in this subtree
      uint32_t *obegin, *oend;  // occurrence sequence (distinct ids), in order
      size_t offset;            // bits of every string already consumed
    };
    std::vector<Frame> stack{{darr.data(), darr.data() + dn, oarr.data(),
                              oarr.data() + n, 0}};
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      const BitSpan first = dstr[*f.dbegin].SubSpan(f.offset);
      // Longest common prefix of the distinct suffixes in this subtree.
      size_t lcp = first.size();
      for (uint32_t* it = f.dbegin + 1; it != f.dend && lcp > 0; ++it) {
        const BitSpan suffix = dstr[*it].SubSpan(f.offset);
        lcp = std::min(lcp, suffix.Lcp(first));
        if (suffix.size() < lcp) lcp = suffix.size();
      }
      const BitSpan rep = dstr[*f.dbegin];
      out.labels_.AppendWords(rep.words(), rep.start_bit() + f.offset, lcp);
      label_ends.push_back(out.labels_.size());
      const size_t split = f.offset + lcp;
      if (lcp == first.size()) {
        // The first suffix ends here; all routed strings must equal it.
        WT_ASSERT_MSG(f.dend - f.dbegin == 1,
                      "WaveletTrie: input set is not prefix-free");
        shape_bits.PushBack(false);  // leaf
        continue;
      }
      WT_ASSERT_MSG(std::all_of(f.dbegin, f.dend,
                                [&](uint32_t d) { return dstr[d].size() > split; }),
                    "WaveletTrie: input set is not prefix-free");
      shape_bits.PushBack(true);  // internal
      // Branch bit per distinct id, then one stable partition of both the
      // distinct set and the occurrence sequence, packing beta words.
      for (const uint32_t* it = f.dbegin; it != f.dend; ++it) {
        bit_of[*it] = dstr[*it].Get(split);
      }
      uint32_t* d0 = f.dbegin;
      size_t dn1 = 0;
      for (const uint32_t* it = f.dbegin; it != f.dend; ++it) {
        const uint32_t d = *it;
        const uint8_t b = bit_of[d];
        *d0 = d;
        d0 += b ^ 1;
        dscratch[dn1] = d;
        dn1 += b;
      }
      uint32_t* dmid = d0;
      std::copy(dscratch.data(), dscratch.data() + dn1, d0);
      uint32_t* o0 = f.obegin;
      size_t on1 = 0;
      // 64-item blocks: gather bits into a word (pipelined loads), then
      // partition from the register (no load-latency dependency chain).
      const uint32_t* it = f.obegin;
      while (it != f.oend) {
        const size_t blk =
            std::min<size_t>(kWordBits, static_cast<size_t>(f.oend - it));
        uint64_t word = 0;
        for (size_t j = 0; j < blk; ++j) {
          word |= uint64_t(bit_of[it[j]]) << j;
        }
        beta_bits.AppendBits(word, blk);
        uint64_t w2 = word;
        for (size_t j = 0; j < blk; ++j) {
          const uint32_t d = it[j];
          const uint64_t b = w2 & 1;
          w2 >>= 1;
          *o0 = d;
          o0 += b ^ 1;
          oscratch[on1] = d;
          on1 += b;
        }
        it += blk;
      }
      uint32_t* omid = o0;
      std::copy(oscratch.data(), oscratch.data() + on1, o0);
      beta_ends.push_back(beta_bits.size());
      // Preorder: left subtree first, so push right first.
      stack.push_back({dmid, f.dend, omid, f.oend, split + 1});
      stack.push_back({f.dbegin, dmid, f.obegin, omid, split + 1});
    }

    out.shape_ = BinaryTreeShape(std::move(shape_bits));
    out.labels_.ShrinkToFit();
    out.label_ends_ = EliasFano(label_ends, out.labels_.size());
    WT_ASSERT_MSG(beta_bits.size() <= kMaxBetaBits,
                  "WaveletTrie: total beta bits exceed 2^32-1 (the packed RRR "
                  "directory limit); split the sequence across tries "
                  "(src/engine/) instead");
    out.beta_ = Rrr(beta_bits);
    out.beta_ends_ = EliasFano(beta_ends, beta_bits.size());
    out.BuildHeaders();
    return out;
  }

  size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  /// Number of distinct strings |Sset|.
  size_t NumDistinct() const { return n_ == 0 ? 0 : shape_.NumLeaves(); }

  /// The string at position pos (paper: Access). O(|result| + h). Each level
  /// is one header load plus one fused RRR rank-and-get.
  BitString Access(size_t pos) const {
    WT_ASSERT(pos < n_);
    BitString out;
    size_t v = 0;
    while (IsInternalNode(v)) {
      out.Append(Label(v));
      const auto [start, ones_start] = BetaLoc(v);
      const auto [ones_abs, bit] = beta_.RankGet(start + pos);
      const size_t ones = ones_abs - ones_start;
      out.PushBack(bit);
      pos = bit ? ones : pos - ones;
      v = bit ? RightChildOf(v) : v + 1;
      if (!headers_.empty()) PrefetchRead(&headers_[v]);
    }
    out.Append(Label(v));
    return out;
  }

  /// Occurrences of the exact string s in positions [0, pos).
  size_t Rank(BitSpan s, size_t pos) const {
    WT_ASSERT(pos <= n_);
    if (n_ == 0) return 0;
    size_t v = 0, depth = 0;
    for (;;) {
      const BitSpan label = Label(v);
      if (!label.IsPrefixOf(s.SubSpan(depth))) return 0;
      depth += label.size();
      if (!IsInternalNode(v)) return depth == s.size() ? pos : 0;
      if (depth >= s.size()) return 0;  // s is a proper prefix of stored keys
      const bool b = s.Get(depth++);
      pos = BetaRank(v, b, pos);
      v = b ? RightChildOf(v) : v + 1;
    }
  }

  /// Strings with prefix p in positions [0, pos) (paper: RankPrefix).
  size_t RankPrefix(BitSpan p, size_t pos) const {
    WT_ASSERT(pos <= n_);
    if (n_ == 0) return 0;
    size_t v = 0, depth = 0;
    for (;;) {
      const BitSpan label = Label(v);
      const BitSpan rest = p.SubSpan(depth);
      const size_t lcp = label.Lcp(rest);
      if (lcp == rest.size()) return pos;  // p exhausted: whole subtree matches
      if (lcp < label.size()) return 0;    // mismatch inside the label
      depth += lcp;
      if (!IsInternalNode(v)) return 0;  // p longer than the stored key
      const bool b = p.Get(depth++);
      pos = BetaRank(v, b, pos);
      v = b ? RightChildOf(v) : v + 1;
    }
  }

  /// Position of the (idx+1)-th occurrence of s (idx 0-based), or nullopt if
  /// s occurs fewer than idx+1 times.
  std::optional<size_t> Select(BitSpan s, size_t idx) const {
    if (n_ == 0) return std::nullopt;
    // Descend to the leaf for s, recording (node, branch bit).
    std::vector<std::pair<size_t, bool>> path;
    size_t v = 0, depth = 0, len = n_;
    for (;;) {
      const BitSpan label = Label(v);
      if (!label.IsPrefixOf(s.SubSpan(depth))) return std::nullopt;
      depth += label.size();
      if (!IsInternalNode(v)) {
        if (depth != s.size()) return std::nullopt;
        break;
      }
      if (depth >= s.size()) return std::nullopt;
      const bool b = s.Get(depth++);
      path.push_back({v, b});
      len = BetaRank(v, b, len);
      v = b ? RightChildOf(v) : v + 1;
    }
    if (idx >= len) return std::nullopt;  // fewer than idx+1 occurrences
    return SelectUp(path, idx);
  }

  /// Position of the (idx+1)-th string having prefix p (paper: SelectPrefix).
  std::optional<size_t> SelectPrefix(BitSpan p, size_t idx) const {
    if (n_ == 0) return std::nullopt;
    std::vector<std::pair<size_t, bool>> path;
    size_t v = 0, depth = 0, len = n_;
    for (;;) {
      const BitSpan label = Label(v);
      const BitSpan rest = p.SubSpan(depth);
      const size_t lcp = label.Lcp(rest);
      if (lcp == rest.size()) break;  // subtree of v holds all matches
      if (lcp < label.size()) return std::nullopt;
      depth += lcp;
      if (!IsInternalNode(v)) return std::nullopt;
      const bool b = p.Get(depth++);
      path.push_back({v, b});
      len = BetaRank(v, b, len);
      v = b ? RightChildOf(v) : v + 1;
    }
    if (idx >= len) return std::nullopt;
    return SelectUp(path, idx);
  }

  // ------------------------------------------------------- batched queries
  //
  // One node-grouped traversal per batch (DESIGN.md #6): queries are
  // partitioned across the trie exactly like strings during BulkBuild, so
  // each touched node's header, directory lines and decoded beta blocks are
  // loaded once per batch instead of once per query, with the next level's
  // headers prefetched while the current node's positions are ranked.
  // Results are identical to the per-query loops (differential-tested).

  /// out[i] == Access(positions[i]); positions in any order, duplicates ok.
  std::vector<BitString> AccessBatch(std::span<const size_t> positions) const {
    const size_t m = positions.size();
    std::vector<BitString> out(m);
    if (m == 0) return out;
    WT_ASSERT(n_ > 0);
    for (const size_t p : positions) WT_ASSERT(p < n_);
    if (n_ >= (uint64_t(1) << 32)) {  // beyond the packed-key range
      for (size_t i = 0; i < m; ++i) out[i] = Access(positions[i]);
      return out;
    }
    BatchState st(m);
    SortByPosition(positions, &st);
    BitString prefix;
    Rrr::RankCursor cursor(&beta_);
    // Each query records only its (distinct) leaf string's id — a 4-byte
    // scatter — and the strings are materialized in one sequential pass, so
    // neither the traversal nor the copies write 40-byte objects at random
    // indices.
    std::vector<BitString> leaf_vals;
    leaf_vals.reserve(256);
    std::vector<uint32_t> leaf_of(m);
    AccessBatchRec(0, 0, m, &st, &cursor, &prefix, &leaf_vals, &leaf_of);
    for (size_t i = 0; i < m; ++i) out[i] = leaf_vals[leaf_of[i]];
    return out;
  }

  /// out[i] == Rank(strings[i], positions[i]).
  std::vector<size_t> RankBatch(std::span<const BitSpan> strings,
                                std::span<const size_t> positions) const {
    return RankBatch(strings, positions, internal::DedupBatch(strings));
  }

  /// RankBatch with the dedup dictionary precomputed by the caller — it
  /// must be exactly DedupBatch(strings). The engine layer computes it
  /// once per cross-shard batch and reuses it for every shard, segment,
  /// and select-search iteration instead of re-hashing the strings each
  /// time (a dict copy is a fraction of a rehash).
  std::vector<size_t> RankBatch(std::span<const BitSpan> strings,
                                std::span<const size_t> positions,
                                internal::BatchDict dict) const {
    WT_ASSERT(strings.size() == positions.size());
    const size_t m = strings.size();
    std::vector<size_t> out(m, 0);
    if (m == 0 || n_ == 0) return out;
    for (const size_t p : positions) WT_ASSERT(p <= n_);
    if (n_ >= (uint64_t(1) << 32)) {  // beyond the packed-key range
      for (size_t i = 0; i < m; ++i) out[i] = Rank(strings[i], positions[i]);
      return out;
    }
    StringBatch sb(m, std::move(dict));
    SortByPosition(positions, &sb.st);
    for (size_t i = 0; i < m; ++i) sb.did[i] = sb.dict.id_of[QidOf(sb.st.q[i])];
    Rrr::RankCursor cursor(&beta_);
    RankBatchRec(0, 0, 0, m, 0, sb.darr.size(), &sb, &cursor, &out);
    return out;
  }

  /// out[i] == Select(strings[i], indices[i]).
  std::vector<std::optional<size_t>> SelectBatch(
      std::span<const BitSpan> strings, std::span<const size_t> indices) const {
    WT_ASSERT(strings.size() == indices.size());
    const size_t m = strings.size();
    std::vector<std::optional<size_t>> out(m);
    if (m == 0 || n_ == 0) return out;
    if (n_ >= (uint64_t(1) << 32)) {  // beyond the packed-key range
      for (size_t i = 0; i < m; ++i) out[i] = Select(strings[i], indices[i]);
      return out;
    }
    StringBatch sb(m, internal::DedupBatch(strings));
    size_t w = 0;
    for (size_t i = 0; i < m; ++i) {
      // An occurrence index >= n can never be satisfied; drop it up front
      // (this also keeps the index inside the packed key's 32 bits).
      if (indices[i] < n_) {
        sb.st.q[w] = Pack(indices[i], static_cast<uint32_t>(i));
        sb.did[w] = sb.dict.id_of[i];
        ++w;
      }
    }
    Rrr::RankCursor cursor(&beta_);
    Rrr::SelectCursor scursor(&beta_);
    const size_t end = SelectBatchRec(0, 0, n_, 0, w, 0, sb.darr.size(), &sb,
                                      &cursor, &scursor);
    for (size_t i = 0; i < end; ++i) out[QidOf(sb.st.q[i])] = PosOf(sb.st.q[i]);
    return out;
  }

  /// Occurrences of s in [l, r).
  size_t RangeCount(BitSpan s, size_t l, size_t r) const {
    WT_DASSERT(l <= r);
    return Rank(s, r) - Rank(s, l);
  }

  /// Strings with prefix p in [l, r).
  size_t RangeCountPrefix(BitSpan p, size_t l, size_t r) const {
    WT_DASSERT(l <= r);
    return RankPrefix(p, r) - RankPrefix(p, l);
  }

  /// Section 5, "Distinct values in range": enumerates each distinct string
  /// occurring in [l, r) with its multiplicity, in lexicographic order.
  /// O(sum over reported strings of |s| + h_s) bitvector operations.
  template <typename DistinctFn>
  void DistinctInRange(size_t l, size_t r, const DistinctFn& fn) const {
    WT_ASSERT(l <= r && r <= n_);
    if (l == r || n_ == 0) return;
    BitString prefix;
    DistinctRec(0, l, r, &prefix, fn);
  }

  /// Section 5, prefix-restricted variant ("we can stop early in the
  /// traversal, hence enumerating the distinct prefixes that satisfy some
  /// property ... find efficiently the distinct hostnames in a given time
  /// range"): enumerates the distinct strings *with prefix p* occurring in
  /// [l, r), with multiplicities. The descent to p's node maps the range
  /// through the betas; the enumeration then never leaves p's subtree.
  template <typename DistinctFn>
  void DistinctInRangeWithPrefix(BitSpan p, size_t l, size_t r,
                                 const DistinctFn& fn) const {
    WT_ASSERT(l <= r && r <= n_);
    if (l == r || n_ == 0) return;
    BitString prefix;
    size_t v = 0, depth = 0;
    for (;;) {
      const BitSpan label = Label(v);
      const BitSpan rest = p.SubSpan(depth);
      const size_t lcp = label.Lcp(rest);
      if (lcp == rest.size()) break;  // subtree of v holds all matches
      if (lcp < label.size()) return;  // mismatch inside the label
      depth += lcp;
      if (!IsInternalNode(v)) return;  // p longer than any stored key
      const bool b = p.Get(depth++);
      l = BetaRank(v, b, l);
      r = BetaRank(v, b, r);
      if (l >= r) return;  // no occurrences inside the window
      prefix.Append(label);
      prefix.PushBack(b);
      v = b ? RightChildOf(v) : v + 1;
    }
    DistinctRec(v, l, r, &prefix, fn);
  }

  /// Section 5, "Range majority element": the string occurring more than
  /// (r-l)/2 times in [l, r), if any.
  std::optional<std::pair<BitString, size_t>> RangeMajority(size_t l,
                                                            size_t r) const {
    WT_ASSERT(l <= r && r <= n_);
    if (l >= r || n_ == 0) return std::nullopt;
    const size_t range = r - l;  // the descent yields a candidate; its count
                                 // must be verified against the full range
    BitString prefix;
    size_t v = 0;
    for (;;) {
      prefix.Append(Label(v));
      if (!IsInternalNode(v)) {
        if (2 * (r - l) <= range) return std::nullopt;
        return std::make_pair(std::move(prefix), r - l);
      }
      const size_t l0 = BetaRank(v, false, l), r0 = BetaRank(v, false, r);
      const size_t c0 = r0 - l0;
      const size_t c1 = (r - l) - c0;
      if (2 * c0 > r - l) {
        prefix.PushBack(false);
        v = v + 1;
        l = l0;
        r = r0;
      } else if (2 * c1 > r - l) {
        prefix.PushBack(true);
        v = RightChildOf(v);
        l = l - l0;
        r = r - r0;
      } else {
        return std::nullopt;
      }
    }
  }

  /// Section 5 heuristic: all strings occurring at least `t` times in
  /// [l, r) (t >= 1). Branches with fewer than t positions are pruned.
  template <typename DistinctFn>
  void RangeFrequent(size_t l, size_t r, size_t t, const DistinctFn& fn) const {
    WT_ASSERT(l <= r && r <= n_);
    WT_ASSERT(t >= 1);
    if (r - l < t || n_ == 0) return;
    BitString prefix;
    FrequentRec(0, l, r, t, &prefix, fn);
  }

  /// Section 5, "Sequential access": calls fn(i, S_i) for i in [l, r) using
  /// per-node bit iterators — one Rank per traversed node for the whole
  /// range instead of per string.
  template <typename AccessFn>
  void ForEachInRange(size_t l, size_t r, const AccessFn& fn) const {
    WT_ASSERT(l <= r && r <= n_);
    if (l == r || n_ == 0) return;
    // Per-internal-node iterator over the global beta, created lazily at the
    // node-local position corresponding to this range.
    std::unordered_map<size_t, Rrr::Iterator> iters;
    iters.reserve(64);
    for (size_t i = l; i < r; ++i) {
      BitString out;
      size_t v = 0;
      // Parent context, used only when a node is visited for the first time
      // in this range (one Rank per traversed node for the whole range).
      size_t parent_v = 0, parent_pos = 0;
      bool parent_bit = false, has_parent = false;
      for (;;) {
        out.Append(Label(v));
        if (!IsInternalNode(v)) break;
        const size_t start = BetaLoc(v).first;
        auto it = iters.find(v);
        if (it == iters.end()) {
          const size_t node_pos =
              has_parent ? BetaRank(parent_v, parent_bit, parent_pos) : i;
          it = iters.emplace(v, Rrr::Iterator(&beta_, start + node_pos)).first;
        }
        const size_t node_pos = it->second.position() - start;
        const bool b = it->second.Next();
        out.PushBack(b);
        has_parent = true;
        parent_v = v;
        parent_bit = b;
        parent_pos = node_pos;
        v = b ? RightChildOf(v) : v + 1;
      }
      fn(i, out);
    }
  }

  /// All distinct strings (the alphabet Sset) with global multiplicities.
  template <typename DistinctFn>
  void ForEachDistinct(const DistinctFn& fn) const { DistinctInRange(0, n_, fn); }

  /// Serializes the index. Format: magic, version, n, then components
  /// (shape preorder bits, labels, Elias-Fano delimiters, global RRR);
  /// rank/select/excess directories and the flat node headers are rebuilt
  /// on Load.
  void Save(std::ostream& out) const {
    WritePod<uint64_t>(out, kMagic);
    WritePod<uint32_t>(out, kVersion);
    WritePod<uint64_t>(out, n_);
    if (n_ == 0) return;
    shape_.Save(out);
    labels_.Save(out);
    label_ends_.Save(out);
    beta_.Save(out);
    beta_ends_.Save(out);
  }

  void Load(std::istream& in) {
    WT_ASSERT_MSG(ReadPod<uint64_t>(in) == kMagic,
                  "WaveletTrie: not a wavelet-trie stream");
    WT_ASSERT_MSG(ReadPod<uint32_t>(in) == kVersion,
                  "WaveletTrie: unsupported version");
    n_ = ReadPod<uint64_t>(in);
    headers_.clear();
    if (n_ == 0) return;
    shape_.Load(in);
    labels_.Load(in);
    label_ends_.Load(in);
    beta_.Load(in);
    beta_ends_.Load(in);
    BuildHeaders();
  }

  /// v4 flat image (DESIGN.md #8): one section per component, every
  /// derived directory *and the flat node headers* persisted, so LoadImage
  /// borrows the whole trie out of the blob with no rebuild pass — the
  /// structure is query-ready the moment the bytes are visible.
  void SaveImage(storage::ImageWriter& w) const {
    w.BeginSection(storage::kSecTrie);
    w.Pod<uint64_t>(n_);
    w.EndSection();
    if (n_ == 0) return;
    w.BeginSection(storage::kSecShape);
    shape_.SaveImage(w);
    w.EndSection();
    w.BeginSection(storage::kSecLabels);
    labels_.SaveImage(w);
    w.EndSection();
    w.BeginSection(storage::kSecLabelEnds);
    label_ends_.SaveImage(w);
    w.EndSection();
    w.BeginSection(storage::kSecBeta);
    beta_.SaveImage(w);
    w.EndSection();
    w.BeginSection(storage::kSecBetaEnds);
    beta_ends_.SaveImage(w);
    w.EndSection();
    w.BeginSection(storage::kSecHeaders);
    w.Pod<uint64_t>(headers_.size());
    w.Array(headers_.data(), headers_.size());
    w.EndSection();
  }

  /// Borrows a trie out of a parsed image. Never aborts: every bounds or
  /// consistency failure returns false (the caller translates it into a
  /// clean Status). The blob must stay alive as long as the trie.
  bool LoadImage(storage::ImageReader& r) {
    if (!r.OpenSection(storage::kSecTrie)) return false;
    uint64_t n = 0;
    if (!r.Pod(&n)) return false;
    if (n == 0) {
      *this = WaveletTrie();
      return true;
    }
    WaveletTrie out;
    out.n_ = n;
    if (!r.OpenSection(storage::kSecShape) || !out.shape_.LoadImage(r)) {
      return false;
    }
    if (!r.OpenSection(storage::kSecLabels) || !out.labels_.LoadImage(r)) {
      return false;
    }
    if (!r.OpenSection(storage::kSecLabelEnds) ||
        !out.label_ends_.LoadImage(r)) {
      return false;
    }
    if (!r.OpenSection(storage::kSecBeta) || !out.beta_.LoadImage(r)) {
      return false;
    }
    if (!r.OpenSection(storage::kSecBetaEnds) || !out.beta_ends_.LoadImage(r)) {
      return false;
    }
    // Cross-component shape checks: a full binary tree with one delimiter
    // per node (labels) and per internal node (betas).
    const size_t nodes = out.shape_.NumNodes();
    if (nodes == 0 || nodes != 2 * out.shape_.NumInternal() + 1 ||
        out.label_ends_.size() != nodes ||
        out.beta_ends_.size() != out.shape_.NumInternal()) {
      return false;
    }
    if (!r.OpenSection(storage::kSecHeaders)) return false;
    uint64_t num_headers = 0;
    if (!r.Pod(&num_headers)) return false;
    // Headers are either complete or absent (the >= 2^32 fallback).
    if (num_headers != 0 && num_headers != nodes) return false;
    const NodeHeader* headers = nullptr;
    if (!r.Array(&headers, num_headers)) return false;
    out.headers_ = storage::Vec<NodeHeader>::Borrow(headers, num_headers);
    *this = std::move(out);
    return true;
  }

  size_t SizeInBits() const {
    return labels_.SizeInBits() + label_ends_.SizeInBits() + beta_.SizeInBits() +
           beta_ends_.SizeInBits() + shape_.SizeInBits() +
           8 * sizeof(NodeHeader) * headers_.capacity();
  }

  /// Maximum number of internal nodes on any root-to-leaf path.
  size_t Height() const {
    if (n_ == 0) return 0;
    return HeightRec(0);
  }

  /// Per-node debug view (preorder), used to reproduce the paper's Figure 2.
  struct NodeDebug {
    std::string alpha;
    std::string beta;  // empty for leaves
    bool is_leaf;
  };
  std::vector<NodeDebug> DebugNodes() const {
    std::vector<NodeDebug> out;
    for (size_t v = 0; v < shape_.NumNodes(); ++v) {
      NodeDebug d;
      d.alpha = Label(v).ToString();
      d.is_leaf = !shape_.IsInternal(v);
      if (!d.is_leaf) {
        const size_t r = shape_.InternalRank(v);
        const size_t start = beta_ends_.SegmentStart(r);
        const size_t end = beta_ends_.SegmentEnd(r);
        for (size_t i = start; i < end; ++i) d.beta.push_back(beta_.Get(i) ? '1' : '0');
      }
      out.push_back(std::move(d));
    }
    return out;
  }

 public:
  /// Flat per-node query header (DESIGN.md #6): everything a traversal
  /// level needs in one 16-byte load. `right == 0` marks a leaf (the root
  /// is never anyone's child). The label of node v spans
  /// [headers_[v-1].label_end, headers_[v].label_end) — labels are
  /// concatenated in preorder, so the previous node's end is this node's
  /// start. For internal nodes, the beta segment starts at beta_start and
  /// ones_start caches beta_.Rank1(beta_start), halving the RRR work of
  /// every per-node rank and select.
  struct NodeHeader {
    uint32_t label_end;
    uint32_t right;
    uint32_t beta_start;
    uint32_t ones_start;
  };

 private:
  static constexpr uint64_t kMagic = 0x57544C4945525431ull;  // "WTLIERT1"
  static constexpr uint32_t kVersion = 3;  // v3: directory-free RRR payload

  /// Builds the flat header array. Skipped (leaving the Elias--Fano path in
  /// charge) only when a component exceeds the headers' 32-bit addressing.
  /// The global beta never can: a single Rrr is capped at 2^32-1 bits by
  /// its own interleaved directory, so the trie's capacity limit is
  /// 2^32-1 *total beta bits* (sum of per-string trie depths — ~150M
  /// strings at height 30, more when strings repeat; n itself is unbounded
  /// when the alphabet is a single string). Label bits and node count keep
  /// the guard.
  void BuildHeaders() {
    headers_.clear();
    if (n_ == 0) return;
    const size_t num_nodes = shape_.NumNodes();
    constexpr uint64_t kCap = uint64_t(1) << 32;
    if (labels_.size() >= kCap || num_nodes >= kCap) {
      return;
    }
    headers_.resize(num_nodes);
    Rrr::RankCursor cursor(&beta_);
    for (size_t v = 0; v < num_nodes; ++v) {
      NodeHeader& h = headers_[v];
      h.label_end = static_cast<uint32_t>(label_ends_.Access(v));
      if (shape_.IsInternal(v)) {
        const size_t r = shape_.InternalRank(v);
        const size_t start = beta_ends_.SegmentStart(r);
        h.right = static_cast<uint32_t>(shape_.RightChild(v));
        h.beta_start = static_cast<uint32_t>(start);
        h.ones_start = static_cast<uint32_t>(cursor.Rank1(start));
      } else {
        h.right = 0;
        h.beta_start = 0;
        h.ones_start = 0;
      }
    }
  }

  bool IsInternalNode(size_t v) const {
    return headers_.empty() ? shape_.IsInternal(v) : headers_[v].right != 0;
  }

  size_t RightChildOf(size_t v) const {
    return headers_.empty() ? shape_.RightChild(v) : headers_[v].right;
  }

  BitSpan Label(size_t v) const {
    if (!headers_.empty()) {
      const size_t start = v == 0 ? 0 : headers_[v - 1].label_end;
      return BitSpan(labels_.data(), start, headers_[v].label_end - start);
    }
    const size_t start = label_ends_.SegmentStart(v);
    const size_t end = label_ends_.SegmentEnd(v);
    return BitSpan(labels_.data(), start, end - start);
  }

  /// Location of internal node v's beta in the global RRR: (start bit,
  /// ones before start). One header load on the fast path.
  std::pair<size_t, size_t> BetaLoc(size_t v) const {
    if (!headers_.empty()) {
      const NodeHeader& h = headers_[v];
      return {h.beta_start, h.ones_start};
    }
    const size_t r = shape_.InternalRank(v);
    const size_t start = beta_ends_.SegmentStart(r);
    return {start, beta_.Rank1(start)};
  }

  /// Rank of bit b in [0, pos) of internal node v's bitvector: one RRR rank
  /// (the rank at the segment start is precomputed in the header).
  size_t BetaRank(size_t v, bool b, size_t pos) const {
    const auto [start, ones_start] = BetaLoc(v);
    const size_t ones = beta_.Rank1(start + pos) - ones_start;
    return b ? ones : pos - ones;
  }

  /// Select of the (k+1)-th b within internal node v's bitvector.
  size_t BetaSelect(size_t v, bool b, size_t k) const {
    const auto [start, ones_start] = BetaLoc(v);
    if (b) return beta_.Select1(ones_start + k) - start;
    return beta_.Select0((start - ones_start) + k) - start;
  }

  size_t SelectUp(const std::vector<std::pair<size_t, bool>>& path,
                  size_t idx) const {
    for (size_t i = path.size(); i-- > 0;) {
      idx = BetaSelect(path[i].first, path[i].second, idx);
    }
    return idx;
  }

  // ------------------------------------------------ batched traversal core

  /// Shared per-batch scratch. Each live query is one packed 64-bit key:
  /// the per-node position (Access/Rank), or the occurrence index and later
  /// the subtree-relative result (Select), in the high half; the original
  /// query index in the low half. One word per query halves the partition
  /// traffic and makes the initial order-by-position a radix sort.
  struct BatchState {
    explicit BatchState(size_t m) : q(m), scratch(m), counts(1 << kRadixBits) {
      WT_ASSERT_MSG(m < (uint64_t(1) << 32), "batch larger than 2^32 queries");
    }
    std::vector<uint64_t> q;
    std::vector<uint64_t> scratch;
    std::vector<uint32_t> counts;  // radix histogram, reused per pass
  };

  static constexpr unsigned kRadixBits = 11;

  /// Extra state for the string-keyed batches (Rank/Select): the queries
  /// dedup onto their distinct strings (internal::DedupBatch, shared with
  /// the ingestion bulk path), `darr` carries the distinct ids alive at the
  /// current node, `did` the per-query distinct id in lockstep with
  /// BatchState::q, and `route` the per-distinct verdict at the node being
  /// processed.
  struct StringBatch {
    StringBatch(size_t m, internal::BatchDict d)
        : dict(std::move(d)),
          st(m),
          did(m),
          did_scratch(m),
          darr(dict.distinct.size()),
          dscratch(dict.distinct.size()),
          route(dict.distinct.size()) {
      for (size_t i = 0; i < darr.size(); ++i) {
        darr[i] = static_cast<uint32_t>(i);
      }
    }
    internal::BatchDict dict;
    BatchState st;
    std::vector<uint32_t> did, did_scratch;
    std::vector<uint32_t> darr, dscratch;
    std::vector<uint8_t> route;
  };

  static uint64_t Pack(size_t pos, uint32_t qid) {
    return (static_cast<uint64_t>(pos) << 32) | qid;
  }
  static size_t PosOf(uint64_t key) { return key >> 32; }
  static uint32_t QidOf(uint64_t key) { return static_cast<uint32_t>(key); }

  /// Orders the batch by position so that every node's beta is walked
  /// monotonically (rank mappings preserve relative order on both branches,
  /// so sortedness is invariant down the whole traversal). LSD radix on the
  /// position half; the qid half rides along and keeps ties in input order.
  static void SortByPosition(std::span<const size_t> positions, BatchState* st) {
    const size_t m = positions.size();
    size_t max_pos = 0;
    for (size_t i = 0; i < m; ++i) {
      st->q[i] = Pack(positions[i], static_cast<uint32_t>(i));
      max_pos = std::max(max_pos, positions[i]);
    }
    const unsigned pos_bits = BitWidth(max_pos);
    for (unsigned done = 0; done < pos_bits; done += kRadixBits) {
      const unsigned shift = 32 + done;
      const unsigned digit_bits = std::min(kRadixBits, pos_bits - done);
      const uint64_t mask = LowMask(digit_bits);
      std::fill(st->counts.begin(), st->counts.begin() + (size_t(1) << digit_bits),
                0);
      for (size_t i = 0; i < m; ++i) ++st->counts[(st->q[i] >> shift) & mask];
      uint32_t sum = 0;
      for (size_t c = 0; c < (size_t(1) << digit_bits); ++c) {
        const uint32_t t = st->counts[c];
        st->counts[c] = sum;
        sum += t;
      }
      for (size_t i = 0; i < m; ++i) {
        st->scratch[st->counts[(st->q[i] >> shift) & mask]++] = st->q[i];
      }
      st->q.swap(st->scratch);
    }
  }

  void PrefetchChildren(size_t v, size_t right) const {
    if (headers_.empty()) return;
    PrefetchRead(&headers_[v + 1]);
    PrefetchRead(&headers_[right]);
  }

  /// Per-query rank step of the batched traversals: a cursor walk (cache
  /// hit, short class-scan advance, or directory restart — positions within
  /// a node arrive sorted, so almost always the first two), with the
  /// directory lines of the query two ahead prefetched to overlap its loads
  /// with this query's decode.
  std::pair<size_t, bool> BatchRankGet(Rrr::RankCursor* cursor, size_t gpos,
                                       size_t prefetch_pos,
                                       bool has_prefetch) const {
    // Positions are sorted, so prefetch_pos >= gpos; skip the prefetch when
    // the lookahead lands within a block of the current query (its lines
    // are already inbound).
    if (has_prefetch && prefetch_pos - gpos >= Rrr::kBlockBits) {
      cursor->Prefetch(prefetch_pos);
    }
    return cursor->RankGet(gpos);
  }

  size_t BatchRank1(Rrr::RankCursor* cursor, size_t gpos, size_t prefetch_pos,
                    bool has_prefetch) const {
    if (has_prefetch && prefetch_pos - gpos >= Rrr::kBlockBits) {
      cursor->Prefetch(prefetch_pos);
    }
    return cursor->Rank1(gpos);
  }

  void AccessBatchRec(size_t v, size_t lo, size_t hi, BatchState* st,
                      Rrr::RankCursor* cursor, BitString* prefix,
                      std::vector<BitString>* leaf_vals,
                      std::vector<uint32_t>* leaf_of) const {
    const size_t mark = prefix->size();
    prefix->Append(Label(v));
    if (!IsInternalNode(v)) {
      const uint32_t leaf_id = static_cast<uint32_t>(leaf_vals->size());
      leaf_vals->push_back(*prefix);
      for (size_t i = lo; i < hi; ++i) (*leaf_of)[QidOf(st->q[i])] = leaf_id;
      prefix->Truncate(mark);
      return;
    }
    const size_t right = RightChildOf(v);
    PrefetchChildren(v, right);
    const auto [start, ones_start] = BetaLoc(v);
    size_t w = lo, n1 = 0;
    for (size_t i = lo; i < hi; ++i) {
      const uint64_t key = st->q[i];
      const auto [ones_abs, bit] = BatchRankGet(
          cursor, start + PosOf(key),
          start + PosOf(st->q[i + 2 < hi ? i + 2 : i]), i + 2 < hi);
      const size_t ones = ones_abs - ones_start;
      if (bit) {
        st->scratch[n1++] = Pack(ones, QidOf(key));
      } else {
        st->q[w++] = Pack(PosOf(key) - ones, QidOf(key));
      }
    }
    std::copy_n(st->scratch.data(), n1, st->q.data() + w);
    const size_t lab_end = prefix->size();
    if (lo < w) {
      prefix->PushBack(false);
      AccessBatchRec(v + 1, lo, w, st, cursor, prefix, leaf_vals, leaf_of);
      prefix->Truncate(lab_end);
    }
    if (w < hi) {
      prefix->PushBack(true);
      AccessBatchRec(right, w, hi, st, cursor, prefix, leaf_vals, leaf_of);
    }
    prefix->Truncate(mark);
  }

  /// Routes this node's distinct suffixes once (label check + branch bit on
  /// the distinct set, as in BulkBuild), making the per-query work an
  /// L1-resident table lookup plus one cursor rank. Returns the partition
  /// point of the distinct ids so the caller-level arrays stay in lockstep.
  enum : uint8_t { kRouteDrop = 0, kRouteLeft = 1, kRouteRight = 2, kRouteMatch = 3 };

  void RouteDistinct(size_t v, const BitSpan& label, size_t depth, size_t d2,
                     bool internal_node, size_t dlo, size_t dhi,
                     StringBatch* sb) const {
    (void)v;
    for (size_t j = dlo; j < dhi; ++j) {
      const uint32_t d = sb->darr[j];
      const BitSpan s = sb->dict.distinct[d];
      uint8_t r = kRouteDrop;
      if (label.IsPrefixOf(s.SubSpan(depth))) {
        if (!internal_node) {
          if (s.size() == d2) r = kRouteMatch;
        } else if (s.size() > d2) {
          r = s.Get(d2) ? kRouteRight : kRouteLeft;
        }
      }
      sb->route[d] = r;
    }
  }

  /// Stable three-way partition of the distinct ids by route (drops
  /// vanish); returns {left end, right count}.
  std::pair<size_t, size_t> PartitionDistinct(size_t dlo, size_t dhi,
                                              StringBatch* sb) const {
    size_t dw = dlo, dn1 = 0;
    for (size_t j = dlo; j < dhi; ++j) {
      const uint32_t d = sb->darr[j];
      const uint8_t r = sb->route[d];
      if (r == kRouteLeft) {
        sb->darr[dw++] = d;
      } else if (r == kRouteRight) {
        sb->dscratch[dn1++] = d;
      }
    }
    std::copy_n(sb->dscratch.data(), dn1, sb->darr.data() + dw);
    return {dw, dn1};
  }

  void RankBatchRec(size_t v, size_t depth, size_t lo, size_t hi, size_t dlo,
                    size_t dhi, StringBatch* sb, Rrr::RankCursor* cursor,
                    std::vector<size_t>* out) const {
    const BitSpan label = Label(v);
    const size_t d2 = depth + label.size();
    const bool internal_node = IsInternalNode(v);
    RouteDistinct(v, label, depth, d2, internal_node, dlo, dhi, sb);
    if (!internal_node) {
      for (size_t i = lo; i < hi; ++i) {
        const uint64_t key = sb->st.q[i];
        if (sb->route[sb->did[i]] == kRouteMatch) {
          (*out)[QidOf(key)] = PosOf(key);
        }
      }
      return;
    }
    const size_t right = RightChildOf(v);
    PrefetchChildren(v, right);
    const auto [dw, dn1] = PartitionDistinct(dlo, dhi, sb);
    const auto [start, ones_start] = BetaLoc(v);
    size_t w = lo, n1 = 0;
    for (size_t i = lo; i < hi; ++i) {
      const uint32_t d = sb->did[i];
      const uint8_t r = sb->route[d];
      if (r == kRouteDrop) continue;  // mismatch or proper prefix: rank 0
      const uint64_t key = sb->st.q[i];
      const size_t ones =
          BatchRank1(cursor, start + PosOf(key),
                     start + PosOf(sb->st.q[i + 2 < hi ? i + 2 : i]),
                     i + 2 < hi) -
          ones_start;
      if (r == kRouteRight) {
        sb->st.scratch[n1] = Pack(ones, QidOf(key));
        sb->did_scratch[n1] = d;
        ++n1;
      } else {
        sb->st.q[w] = Pack(PosOf(key) - ones, QidOf(key));
        sb->did[w] = d;
        ++w;
      }
    }
    std::copy_n(sb->st.scratch.data(), n1, sb->st.q.data() + w);
    std::copy_n(sb->did_scratch.data(), n1, sb->did.data() + w);
    if (lo < w) {
      RankBatchRec(v + 1, d2 + 1, lo, w, dlo, dw, sb, cursor, out);
    }
    if (n1 > 0) {
      RankBatchRec(right, d2 + 1, w, w + n1, dw, dw + dn1, sb, cursor, out);
    }
  }

  /// Descends like RankBatch, then maps subtree-relative select results
  /// back up through each node on return. On entry the position half of
  /// each key holds the occurrence index; on exit (for surviving, compacted
  /// queries) the position within v's subtree sequence, in ascending order:
  /// leaves sort their survivors, each per-node mapping is monotone, and
  /// the two children's sorted runs are merged — so the ascent's selects
  /// arrive rank-sorted at every node and the select cursor walks each
  /// node's beta forward instead of re-searching per query. Returns the end
  /// of the compacted survivor range (dropped queries stay nullopt).
  size_t SelectBatchRec(size_t v, size_t depth, size_t len, size_t lo,
                        size_t hi, size_t dlo, size_t dhi, StringBatch* sb,
                        Rrr::RankCursor* cursor,
                        Rrr::SelectCursor* scursor) const {
    const BitSpan label = Label(v);
    const size_t d2 = depth + label.size();
    const bool internal_node = IsInternalNode(v);
    RouteDistinct(v, label, depth, d2, internal_node, dlo, dhi, sb);
    if (!internal_node) {
      size_t keep = lo;
      for (size_t i = lo; i < hi; ++i) {
        const uint64_t key = sb->st.q[i];
        if (sb->route[sb->did[i]] == kRouteMatch && PosOf(key) < len) {
          sb->st.q[keep++] = key;
        }
      }
      std::sort(sb->st.q.begin() + lo, sb->st.q.begin() + keep);
      return keep;
    }
    const size_t right = RightChildOf(v);
    PrefetchChildren(v, right);
    const auto [dw, dn1] = PartitionDistinct(dlo, dhi, sb);
    const auto [start, ones_start] = BetaLoc(v);
    const size_t ones_total = cursor->Rank1(start + len) - ones_start;
    size_t w = lo, n1 = 0;
    for (size_t i = lo; i < hi; ++i) {
      const uint32_t d = sb->did[i];
      const uint8_t r = sb->route[d];
      if (r == kRouteDrop) continue;  // mismatch or proper prefix: nullopt
      const uint64_t key = sb->st.q[i];
      if (r == kRouteRight) {
        sb->st.scratch[n1] = key;
        sb->did_scratch[n1] = d;
        ++n1;
      } else {
        sb->st.q[w] = key;
        sb->did[w] = d;
        ++w;
      }
    }
    std::copy_n(sb->st.scratch.data(), n1, sb->st.q.data() + w);
    std::copy_n(sb->did_scratch.data(), n1, sb->did.data() + w);
    const size_t left_end =
        lo < w ? SelectBatchRec(v + 1, d2 + 1, len - ones_total, lo, w, dlo,
                                dw, sb, cursor, scursor)
               : lo;
    const size_t right_end =
        n1 > 0 ? SelectBatchRec(right, d2 + 1, ones_total, w, w + n1, dw,
                                dw + dn1, sb, cursor, scursor)
               : w;
    const size_t zeros_start = start - ones_start;
    for (size_t i = lo; i < left_end; ++i) {
      sb->st.q[i] =
          Pack(scursor->Select0(zeros_start + PosOf(sb->st.q[i])) - start,
               QidOf(sb->st.q[i]));
    }
    for (size_t i = w; i < right_end; ++i) {
      sb->st.q[i] =
          Pack(scursor->Select1(ones_start + PosOf(sb->st.q[i])) - start,
               QidOf(sb->st.q[i]));
    }
    // Merge the two sorted runs (this also closes the gap the left child's
    // drops left behind) and restore them to [lo, lo + survivors).
    const size_t total = (left_end - lo) + (right_end - w);
    std::merge(sb->st.q.begin() + lo, sb->st.q.begin() + left_end,
               sb->st.q.begin() + w, sb->st.q.begin() + right_end,
               sb->st.scratch.begin() + lo);
    std::copy_n(sb->st.scratch.data() + lo, total, sb->st.q.data() + lo);
    return lo + total;
  }

  size_t HeightRec(size_t v) const {
    if (!shape_.IsInternal(v)) return 0;
    return 1 + std::max(HeightRec(shape_.LeftChild(v)), HeightRec(shape_.RightChild(v)));
  }

  template <typename DistinctFn>
  void DistinctRec(size_t v, size_t l, size_t r, BitString* prefix,
                   const DistinctFn& fn) const {
    const size_t mark = prefix->size();
    prefix->Append(Label(v));
    if (!IsInternalNode(v)) {
      fn(*prefix, r - l);
      prefix->Truncate(mark);
      return;
    }
    const size_t l0 = BetaRank(v, false, l), r0 = BetaRank(v, false, r);
    if (l0 < r0) {
      prefix->PushBack(false);
      DistinctRec(v + 1, l0, r0, prefix, fn);
      prefix->Truncate(mark + Label(v).size());
    }
    if (l - l0 < r - r0) {
      prefix->PushBack(true);
      DistinctRec(RightChildOf(v), l - l0, r - r0, prefix, fn);
    }
    prefix->Truncate(mark);
  }

  template <typename DistinctFn>
  void FrequentRec(size_t v, size_t l, size_t r, size_t t, BitString* prefix,
                   const DistinctFn& fn) const {
    const size_t mark = prefix->size();
    prefix->Append(Label(v));
    if (!IsInternalNode(v)) {
      if (r - l >= t) fn(*prefix, r - l);
      prefix->Truncate(mark);
      return;
    }
    const size_t l0 = BetaRank(v, false, l), r0 = BetaRank(v, false, r);
    if (r0 - l0 >= t) {
      prefix->PushBack(false);
      FrequentRec(v + 1, l0, r0, t, prefix, fn);
      prefix->Truncate(mark + Label(v).size());
    }
    if ((r - r0) - (l - l0) >= t) {
      prefix->PushBack(true);
      FrequentRec(RightChildOf(v), l - l0, r - r0, t, prefix, fn);
    }
    prefix->Truncate(mark);
  }

  size_t n_ = 0;
  BinaryTreeShape shape_;
  BitArray labels_;       // concatenated alpha labels, preorder
  EliasFano label_ends_;  // cumulative label lengths per node
  Rrr beta_;              // concatenated internal-node bitvectors, preorder
  EliasFano beta_ends_;   // cumulative beta lengths per internal node
  // Derived query fast path: rebuilt on v3 Load, persisted+borrowed by v4.
  storage::Vec<NodeHeader> headers_;
};

}  // namespace wt
