// WaveletTrie: static compressed indexed sequence of binary strings —
// the paper's central structure (Definition 3.1, Theorem 3.7).
//
// The trie shape is the Patricia trie of the distinct strings Sset; each
// internal node carries the bitvector beta that routes sequence positions to
// its two children. Representation (Section 3's "static succinct
// representation"):
//   * shape:  preorder internal/leaf bitmap with excess-search navigation
//             (succinct/binary_tree_shape.hpp);
//   * labels: all alpha labels concatenated in preorder into one bit array,
//             delimited by an Elias--Fano partial-sum structure;
//   * betas:  all internal-node bitvectors concatenated in preorder into ONE
//             RRR vector, delimited by Elias--Fano — per-node Rank/Select are
//             two O(1) queries on the global RRR.
//
// Space: LT(Sset) + nH0(S) + o(~h n) bits (Theorem 3.7). Queries:
// Access/Rank/Select/RankPrefix/SelectPrefix in O(|s| + h_s).
//
// Section 5 range analytics (sequential access, distinct values, majority,
// frequent elements) are implemented on the same representation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bitvector/elias_fano.hpp"
#include "bitvector/rrr.hpp"
#include "common/assert.hpp"
#include "common/bit_string.hpp"
#include "core/batch_dedup.hpp"
#include "succinct/binary_tree_shape.hpp"

namespace wt {

// Enumeration methods take the visitor as a deduced callable (inlined at the
// call site) rather than a std::function — the type-erased closures showed
// up in the Section 5 scan profiles, and the public API layer (src/api/)
// wraps these visitors into cursors anyway. Visitor signatures:
//   distinct enumeration: fn(const BitString& value, size_t multiplicity)
//   sequential access:    fn(size_t position, const BitString& value)

class WaveletTrie {
 public:
  WaveletTrie() = default;

  /// Builds from a sequence of binary strings whose distinct set must be
  /// prefix-free (use core/codec.hpp). O(total input bits) construction.
  explicit WaveletTrie(const std::vector<BitString>& seq) : n_(seq.size()) {
    if (n_ == 0) return;
    std::vector<uint32_t> ids(n_);
    for (size_t i = 0; i < n_; ++i) ids[i] = static_cast<uint32_t>(i);

    BitArray shape_bits;
    BitArray beta_bits;
    std::vector<uint64_t> label_ends;
    std::vector<uint64_t> beta_ends;

    // Explicit-stack preorder construction over [begin, end) ranges of ids.
    struct Frame {
      size_t begin, end;
      size_t offset;  // bits of every string in the range already consumed
    };
    std::vector<Frame> stack{{0, n_, 0}};
    std::vector<uint32_t> scratch;
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      const BitSpan first = seq[ids[f.begin]].SubSpan(f.offset);
      // Longest common prefix of all suffixes in the range. A suffix that
      // ends early (prefix-freeness violation) is caught when partitioning.
      size_t lcp = first.size();
      for (size_t i = f.begin + 1; i < f.end && lcp > 0; ++i) {
        const BitSpan suffix = seq[ids[i]].SubSpan(f.offset);
        lcp = std::min(lcp, suffix.Lcp(first));
        if (suffix.size() < lcp) lcp = suffix.size();
      }
      // Append the label alpha.
      labels_.AppendRange(seq[ids[f.begin]].bits(), f.offset, lcp);
      label_ends.push_back(labels_.size());
      const size_t split = f.offset + lcp;
      if (split == first.size() + f.offset) {
        // The first string ends here; by prefix-freeness all must.
        for (size_t i = f.begin; i < f.end; ++i) {
          WT_ASSERT_MSG(seq[ids[i]].size() == split,
                        "WaveletTrie: input set is not prefix-free");
        }
        shape_bits.PushBack(false);  // leaf
        continue;
      }
      shape_bits.PushBack(true);  // internal
      // Emit beta and stably partition the range by the branching bit.
      scratch.clear();
      size_t w = f.begin;
      for (size_t i = f.begin; i < f.end; ++i) {
        const uint32_t id = ids[i];
        WT_ASSERT_MSG(seq[id].size() > split,
                      "WaveletTrie: input set is not prefix-free");
        const bool b = seq[id].Get(split);
        beta_bits.PushBack(b);
        if (b)
          scratch.push_back(id);
        else
          ids[w++] = id;
      }
      for (uint32_t id : scratch) ids[w++] = id;
      beta_ends.push_back(beta_bits.size());
      const size_t mid = f.end - scratch.size();
      // Preorder: left subtree first, so push right first.
      stack.push_back({mid, f.end, split + 1});
      stack.push_back({f.begin, mid, split + 1});
    }

    shape_ = BinaryTreeShape(std::move(shape_bits));
    labels_.ShrinkToFit();
    label_ends_ = EliasFano(label_ends, labels_.size());
    beta_ = Rrr(beta_bits);
    beta_ends_ = EliasFano(beta_ends, beta_bits.size());
  }

  /// Word-parallel bulk construction (the DESIGN.md #4 fast path). Produces
  /// byte-identical serialization to the WaveletTrie(seq) constructor — the
  /// constructor stays as the bit-for-bit reference the differential test
  /// compares against — but first collapses the sequence onto its distinct
  /// alphabet: label LCPs and shape decisions run over the distinct set
  /// only, and each node's branch bits are emitted as packed 64-bit words
  /// driven by an L1-resident per-node bit table over distinct ids.
  static WaveletTrie BulkBuild(const std::vector<BitString>& seq) {
    WaveletTrie out;
    out.n_ = seq.size();
    if (out.n_ == 0) return out;
    const size_t n = out.n_;
    std::vector<BitSpan> spans;
    spans.reserve(n);
    for (const auto& s : seq) spans.push_back(s.Span());
    internal::BatchDict dict =
        internal::DedupBatch(std::span<const BitSpan>(spans));
    const std::vector<BitSpan>& dstr = dict.distinct;
    const size_t dn = dstr.size();
    std::vector<uint32_t> darr(dn);
    for (size_t i = 0; i < dn; ++i) darr[i] = static_cast<uint32_t>(i);
    std::vector<uint32_t>& oarr = dict.id_of;
    std::vector<uint32_t> dscratch(dn);
    std::vector<uint32_t> oscratch(n);
    std::vector<uint8_t> bit_of(dn);

    BitArray shape_bits;
    BitArray beta_bits;
    std::vector<uint64_t> label_ends;
    std::vector<uint64_t> beta_ends;

    struct Frame {
      uint32_t *dbegin, *dend;  // distinct ids in this subtree
      uint32_t *obegin, *oend;  // occurrence sequence (distinct ids), in order
      size_t offset;            // bits of every string already consumed
    };
    std::vector<Frame> stack{{darr.data(), darr.data() + dn, oarr.data(),
                              oarr.data() + n, 0}};
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      const BitSpan first = dstr[*f.dbegin].SubSpan(f.offset);
      // Longest common prefix of the distinct suffixes in this subtree.
      size_t lcp = first.size();
      for (uint32_t* it = f.dbegin + 1; it != f.dend && lcp > 0; ++it) {
        const BitSpan suffix = dstr[*it].SubSpan(f.offset);
        lcp = std::min(lcp, suffix.Lcp(first));
        if (suffix.size() < lcp) lcp = suffix.size();
      }
      const BitSpan rep = dstr[*f.dbegin];
      out.labels_.AppendWords(rep.words(), rep.start_bit() + f.offset, lcp);
      label_ends.push_back(out.labels_.size());
      const size_t split = f.offset + lcp;
      if (lcp == first.size()) {
        // The first suffix ends here; all routed strings must equal it.
        WT_ASSERT_MSG(f.dend - f.dbegin == 1,
                      "WaveletTrie: input set is not prefix-free");
        shape_bits.PushBack(false);  // leaf
        continue;
      }
      WT_ASSERT_MSG(std::all_of(f.dbegin, f.dend,
                                [&](uint32_t d) { return dstr[d].size() > split; }),
                    "WaveletTrie: input set is not prefix-free");
      shape_bits.PushBack(true);  // internal
      // Branch bit per distinct id, then one stable partition of both the
      // distinct set and the occurrence sequence, packing beta words.
      for (const uint32_t* it = f.dbegin; it != f.dend; ++it) {
        bit_of[*it] = dstr[*it].Get(split);
      }
      uint32_t* d0 = f.dbegin;
      size_t dn1 = 0;
      for (const uint32_t* it = f.dbegin; it != f.dend; ++it) {
        const uint32_t d = *it;
        const uint8_t b = bit_of[d];
        *d0 = d;
        d0 += b ^ 1;
        dscratch[dn1] = d;
        dn1 += b;
      }
      uint32_t* dmid = d0;
      std::copy(dscratch.data(), dscratch.data() + dn1, d0);
      uint32_t* o0 = f.obegin;
      size_t on1 = 0;
      // 64-item blocks: gather bits into a word (pipelined loads), then
      // partition from the register (no load-latency dependency chain).
      const uint32_t* it = f.obegin;
      while (it != f.oend) {
        const size_t blk =
            std::min<size_t>(kWordBits, static_cast<size_t>(f.oend - it));
        uint64_t word = 0;
        for (size_t j = 0; j < blk; ++j) {
          word |= uint64_t(bit_of[it[j]]) << j;
        }
        beta_bits.AppendBits(word, blk);
        uint64_t w2 = word;
        for (size_t j = 0; j < blk; ++j) {
          const uint32_t d = it[j];
          const uint64_t b = w2 & 1;
          w2 >>= 1;
          *o0 = d;
          o0 += b ^ 1;
          oscratch[on1] = d;
          on1 += b;
        }
        it += blk;
      }
      uint32_t* omid = o0;
      std::copy(oscratch.data(), oscratch.data() + on1, o0);
      beta_ends.push_back(beta_bits.size());
      // Preorder: left subtree first, so push right first.
      stack.push_back({dmid, f.dend, omid, f.oend, split + 1});
      stack.push_back({f.dbegin, dmid, f.obegin, omid, split + 1});
    }

    out.shape_ = BinaryTreeShape(std::move(shape_bits));
    out.labels_.ShrinkToFit();
    out.label_ends_ = EliasFano(label_ends, out.labels_.size());
    out.beta_ = Rrr(beta_bits);
    out.beta_ends_ = EliasFano(beta_ends, beta_bits.size());
    return out;
  }

  size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  /// Number of distinct strings |Sset|.
  size_t NumDistinct() const { return n_ == 0 ? 0 : shape_.NumLeaves(); }

  /// The string at position pos (paper: Access). O(|result| + h).
  BitString Access(size_t pos) const {
    WT_ASSERT(pos < n_);
    BitString out;
    size_t v = 0;
    while (shape_.IsInternal(v)) {
      out.Append(Label(v));
      const size_t r = shape_.InternalRank(v);
      const bool b = BetaGet(r, pos);
      out.PushBack(b);
      pos = BetaRank(r, b, pos);
      v = b ? shape_.RightChild(v) : shape_.LeftChild(v);
    }
    out.Append(Label(v));
    return out;
  }

  /// Occurrences of the exact string s in positions [0, pos).
  size_t Rank(BitSpan s, size_t pos) const {
    WT_ASSERT(pos <= n_);
    if (n_ == 0) return 0;
    size_t v = 0, depth = 0;
    for (;;) {
      const BitSpan label = Label(v);
      if (!label.IsPrefixOf(s.SubSpan(depth))) return 0;
      depth += label.size();
      if (!shape_.IsInternal(v)) return depth == s.size() ? pos : 0;
      if (depth >= s.size()) return 0;  // s is a proper prefix of stored keys
      const bool b = s.Get(depth++);
      const size_t r = shape_.InternalRank(v);
      pos = BetaRank(r, b, pos);
      v = b ? shape_.RightChild(v) : shape_.LeftChild(v);
    }
  }

  /// Strings with prefix p in positions [0, pos) (paper: RankPrefix).
  size_t RankPrefix(BitSpan p, size_t pos) const {
    WT_ASSERT(pos <= n_);
    if (n_ == 0) return 0;
    size_t v = 0, depth = 0;
    for (;;) {
      const BitSpan label = Label(v);
      const BitSpan rest = p.SubSpan(depth);
      const size_t lcp = label.Lcp(rest);
      if (lcp == rest.size()) return pos;  // p exhausted: whole subtree matches
      if (lcp < label.size()) return 0;    // mismatch inside the label
      depth += lcp;
      if (!shape_.IsInternal(v)) return 0;  // p longer than the stored key
      const bool b = p.Get(depth++);
      const size_t r = shape_.InternalRank(v);
      pos = BetaRank(r, b, pos);
      v = b ? shape_.RightChild(v) : shape_.LeftChild(v);
    }
  }

  /// Position of the (idx+1)-th occurrence of s (idx 0-based), or nullopt if
  /// s occurs fewer than idx+1 times.
  std::optional<size_t> Select(BitSpan s, size_t idx) const {
    if (n_ == 0) return std::nullopt;
    // Descend to the leaf for s, recording (internal rank, branch bit).
    std::vector<std::pair<size_t, bool>> path;
    size_t v = 0, depth = 0, len = n_;
    for (;;) {
      const BitSpan label = Label(v);
      if (!label.IsPrefixOf(s.SubSpan(depth))) return std::nullopt;
      depth += label.size();
      if (!shape_.IsInternal(v)) {
        if (depth != s.size()) return std::nullopt;
        break;
      }
      if (depth >= s.size()) return std::nullopt;
      const bool b = s.Get(depth++);
      const size_t r = shape_.InternalRank(v);
      path.push_back({r, b});
      len = BetaRank(r, b, len);
      v = b ? shape_.RightChild(v) : shape_.LeftChild(v);
    }
    if (idx >= len) return std::nullopt;  // fewer than idx+1 occurrences
    return SelectUp(path, idx);
  }

  /// Position of the (idx+1)-th string having prefix p (paper: SelectPrefix).
  std::optional<size_t> SelectPrefix(BitSpan p, size_t idx) const {
    if (n_ == 0) return std::nullopt;
    std::vector<std::pair<size_t, bool>> path;
    size_t v = 0, depth = 0, len = n_;
    for (;;) {
      const BitSpan label = Label(v);
      const BitSpan rest = p.SubSpan(depth);
      const size_t lcp = label.Lcp(rest);
      if (lcp == rest.size()) break;  // subtree of v holds all matches
      if (lcp < label.size()) return std::nullopt;
      depth += lcp;
      if (!shape_.IsInternal(v)) return std::nullopt;
      const bool b = p.Get(depth++);
      const size_t r = shape_.InternalRank(v);
      path.push_back({r, b});
      len = BetaRank(r, b, len);
      v = b ? shape_.RightChild(v) : shape_.LeftChild(v);
    }
    if (idx >= len) return std::nullopt;
    return SelectUp(path, idx);
  }

  /// Occurrences of s in [l, r).
  size_t RangeCount(BitSpan s, size_t l, size_t r) const {
    WT_DASSERT(l <= r);
    return Rank(s, r) - Rank(s, l);
  }

  /// Strings with prefix p in [l, r).
  size_t RangeCountPrefix(BitSpan p, size_t l, size_t r) const {
    WT_DASSERT(l <= r);
    return RankPrefix(p, r) - RankPrefix(p, l);
  }

  /// Section 5, "Distinct values in range": enumerates each distinct string
  /// occurring in [l, r) with its multiplicity, in lexicographic order.
  /// O(sum over reported strings of |s| + h_s) bitvector operations.
  template <typename DistinctFn>
  void DistinctInRange(size_t l, size_t r, const DistinctFn& fn) const {
    WT_ASSERT(l <= r && r <= n_);
    if (l == r || n_ == 0) return;
    BitString prefix;
    DistinctRec(0, l, r, &prefix, fn);
  }

  /// Section 5, prefix-restricted variant ("we can stop early in the
  /// traversal, hence enumerating the distinct prefixes that satisfy some
  /// property ... find efficiently the distinct hostnames in a given time
  /// range"): enumerates the distinct strings *with prefix p* occurring in
  /// [l, r), with multiplicities. The descent to p's node maps the range
  /// through the betas; the enumeration then never leaves p's subtree.
  template <typename DistinctFn>
  void DistinctInRangeWithPrefix(BitSpan p, size_t l, size_t r,
                                 const DistinctFn& fn) const {
    WT_ASSERT(l <= r && r <= n_);
    if (l == r || n_ == 0) return;
    BitString prefix;
    size_t v = 0, depth = 0;
    for (;;) {
      const BitSpan label = Label(v);
      const BitSpan rest = p.SubSpan(depth);
      const size_t lcp = label.Lcp(rest);
      if (lcp == rest.size()) break;  // subtree of v holds all matches
      if (lcp < label.size()) return;  // mismatch inside the label
      depth += lcp;
      if (!shape_.IsInternal(v)) return;  // p longer than any stored key
      const bool b = p.Get(depth++);
      const size_t rk = shape_.InternalRank(v);
      l = BetaRank(rk, b, l);
      r = BetaRank(rk, b, r);
      if (l >= r) return;  // no occurrences inside the window
      prefix.Append(label);
      prefix.PushBack(b);
      v = b ? shape_.RightChild(v) : shape_.LeftChild(v);
    }
    DistinctRec(v, l, r, &prefix, fn);
  }

  /// Section 5, "Range majority element": the string occurring more than
  /// (r-l)/2 times in [l, r), if any.
  std::optional<std::pair<BitString, size_t>> RangeMajority(size_t l,
                                                            size_t r) const {
    WT_ASSERT(l <= r && r <= n_);
    if (l >= r || n_ == 0) return std::nullopt;
    const size_t range = r - l;  // the descent yields a candidate; its count
                                 // must be verified against the full range
    BitString prefix;
    size_t v = 0;
    for (;;) {
      prefix.Append(Label(v));
      if (!shape_.IsInternal(v)) {
        if (2 * (r - l) <= range) return std::nullopt;
        return std::make_pair(std::move(prefix), r - l);
      }
      const size_t rk = shape_.InternalRank(v);
      const size_t l0 = BetaRank(rk, false, l), r0 = BetaRank(rk, false, r);
      const size_t c0 = r0 - l0;
      const size_t c1 = (r - l) - c0;
      if (2 * c0 > r - l) {
        prefix.PushBack(false);
        v = shape_.LeftChild(v);
        l = l0;
        r = r0;
      } else if (2 * c1 > r - l) {
        prefix.PushBack(true);
        v = shape_.RightChild(v);
        l = l - l0;
        r = r - r0;
      } else {
        return std::nullopt;
      }
    }
  }

  /// Section 5 heuristic: all strings occurring at least `t` times in
  /// [l, r) (t >= 1). Branches with fewer than t positions are pruned.
  template <typename DistinctFn>
  void RangeFrequent(size_t l, size_t r, size_t t, const DistinctFn& fn) const {
    WT_ASSERT(l <= r && r <= n_);
    WT_ASSERT(t >= 1);
    if (r - l < t || n_ == 0) return;
    BitString prefix;
    FrequentRec(0, l, r, t, &prefix, fn);
  }

  /// Section 5, "Sequential access": calls fn(i, S_i) for i in [l, r) using
  /// per-node bit iterators — one Rank per traversed node for the whole
  /// range instead of per string.
  template <typename AccessFn>
  void ForEachInRange(size_t l, size_t r, const AccessFn& fn) const {
    WT_ASSERT(l <= r && r <= n_);
    if (l == r || n_ == 0) return;
    // Per-internal-node iterator over the global beta, created lazily at the
    // node-local position corresponding to this range.
    std::unordered_map<size_t, Rrr::Iterator> iters;
    iters.reserve(64);
    for (size_t i = l; i < r; ++i) {
      BitString out;
      size_t v = 0;
      // Parent context, used only when a node is visited for the first time
      // in this range (one Rank per traversed node for the whole range).
      size_t parent_rk = 0, parent_pos = 0;
      bool parent_bit = false, has_parent = false;
      for (;;) {
        out.Append(Label(v));
        if (!shape_.IsInternal(v)) break;
        const size_t rk = shape_.InternalRank(v);
        const size_t start = beta_ends_.SegmentStart(rk);
        auto it = iters.find(rk);
        if (it == iters.end()) {
          const size_t node_pos =
              has_parent ? BetaRank(parent_rk, parent_bit, parent_pos) : i;
          it = iters.emplace(rk, Rrr::Iterator(&beta_, start + node_pos)).first;
        }
        const size_t node_pos = it->second.position() - start;
        const bool b = it->second.Next();
        out.PushBack(b);
        has_parent = true;
        parent_rk = rk;
        parent_bit = b;
        parent_pos = node_pos;
        v = b ? shape_.RightChild(v) : shape_.LeftChild(v);
      }
      fn(i, out);
    }
  }

  /// All distinct strings (the alphabet Sset) with global multiplicities.
  template <typename DistinctFn>
  void ForEachDistinct(const DistinctFn& fn) const { DistinctInRange(0, n_, fn); }

  /// Serializes the index. Format: magic, version, n, then components
  /// (shape preorder bits, labels, Elias-Fano delimiters, global RRR);
  /// rank/select/excess directories are rebuilt on Load.
  void Save(std::ostream& out) const {
    WritePod<uint64_t>(out, kMagic);
    WritePod<uint32_t>(out, kVersion);
    WritePod<uint64_t>(out, n_);
    if (n_ == 0) return;
    shape_.Save(out);
    labels_.Save(out);
    label_ends_.Save(out);
    beta_.Save(out);
    beta_ends_.Save(out);
  }

  void Load(std::istream& in) {
    WT_ASSERT_MSG(ReadPod<uint64_t>(in) == kMagic,
                  "WaveletTrie: not a wavelet-trie stream");
    WT_ASSERT_MSG(ReadPod<uint32_t>(in) == kVersion,
                  "WaveletTrie: unsupported version");
    n_ = ReadPod<uint64_t>(in);
    if (n_ == 0) return;
    shape_.Load(in);
    labels_.Load(in);
    label_ends_.Load(in);
    beta_.Load(in);
    beta_ends_.Load(in);
  }

  size_t SizeInBits() const {
    return labels_.SizeInBits() + label_ends_.SizeInBits() + beta_.SizeInBits() +
           beta_ends_.SizeInBits() + shape_.SizeInBits();
  }

  /// Maximum number of internal nodes on any root-to-leaf path.
  size_t Height() const {
    if (n_ == 0) return 0;
    return HeightRec(0);
  }

  /// Per-node debug view (preorder), used to reproduce the paper's Figure 2.
  struct NodeDebug {
    std::string alpha;
    std::string beta;  // empty for leaves
    bool is_leaf;
  };
  std::vector<NodeDebug> DebugNodes() const {
    std::vector<NodeDebug> out;
    for (size_t v = 0; v < shape_.NumNodes(); ++v) {
      NodeDebug d;
      d.alpha = Label(v).ToString();
      d.is_leaf = !shape_.IsInternal(v);
      if (!d.is_leaf) {
        const size_t r = shape_.InternalRank(v);
        const size_t start = beta_ends_.SegmentStart(r);
        const size_t end = beta_ends_.SegmentEnd(r);
        for (size_t i = start; i < end; ++i) d.beta.push_back(beta_.Get(i) ? '1' : '0');
      }
      out.push_back(std::move(d));
    }
    return out;
  }

 private:
  static constexpr uint64_t kMagic = 0x57544C4945525431ull;  // "WTLIERT1"
  static constexpr uint32_t kVersion = 2;  // v2: complement-capped RRR offsets

  BitSpan Label(size_t v) const {
    const size_t start = label_ends_.SegmentStart(v);
    const size_t end = label_ends_.SegmentEnd(v);
    return BitSpan(labels_.data(), start, end - start);
  }

  bool BetaGet(size_t r, size_t pos) const {
    return beta_.Get(beta_ends_.SegmentStart(r) + pos);
  }

  /// Rank of bit b in [0, pos) of internal node r's bitvector: two O(1)
  /// queries on the global RRR.
  size_t BetaRank(size_t r, bool b, size_t pos) const {
    const size_t start = beta_ends_.SegmentStart(r);
    const size_t ones = beta_.Rank1(start + pos) - beta_.Rank1(start);
    return b ? ones : pos - ones;
  }

  /// Select of the (k+1)-th b within internal node r's bitvector.
  size_t BetaSelect(size_t r, bool b, size_t k) const {
    const size_t start = beta_ends_.SegmentStart(r);
    if (b) {
      const size_t ones_before = beta_.Rank1(start);
      return beta_.Select1(ones_before + k) - start;
    }
    const size_t zeros_before = start - beta_.Rank1(start);
    return beta_.Select0(zeros_before + k) - start;
  }

  size_t SelectUp(const std::vector<std::pair<size_t, bool>>& path,
                  size_t idx) const {
    for (size_t i = path.size(); i-- > 0;) {
      idx = BetaSelect(path[i].first, path[i].second, idx);
    }
    return idx;
  }

  size_t HeightRec(size_t v) const {
    if (!shape_.IsInternal(v)) return 0;
    return 1 + std::max(HeightRec(shape_.LeftChild(v)), HeightRec(shape_.RightChild(v)));
  }

  template <typename DistinctFn>
  void DistinctRec(size_t v, size_t l, size_t r, BitString* prefix,
                   const DistinctFn& fn) const {
    const size_t mark = prefix->size();
    prefix->Append(Label(v));
    if (!shape_.IsInternal(v)) {
      fn(*prefix, r - l);
      prefix->Truncate(mark);
      return;
    }
    const size_t rk = shape_.InternalRank(v);
    const size_t l0 = BetaRank(rk, false, l), r0 = BetaRank(rk, false, r);
    if (l0 < r0) {
      prefix->PushBack(false);
      DistinctRec(shape_.LeftChild(v), l0, r0, prefix, fn);
      prefix->Truncate(mark + Label(v).size());
    }
    if (l - l0 < r - r0) {
      prefix->PushBack(true);
      DistinctRec(shape_.RightChild(v), l - l0, r - r0, prefix, fn);
    }
    prefix->Truncate(mark);
  }

  template <typename DistinctFn>
  void FrequentRec(size_t v, size_t l, size_t r, size_t t, BitString* prefix,
                   const DistinctFn& fn) const {
    const size_t mark = prefix->size();
    prefix->Append(Label(v));
    if (!shape_.IsInternal(v)) {
      if (r - l >= t) fn(*prefix, r - l);
      prefix->Truncate(mark);
      return;
    }
    const size_t rk = shape_.InternalRank(v);
    const size_t l0 = BetaRank(rk, false, l), r0 = BetaRank(rk, false, r);
    if (r0 - l0 >= t) {
      prefix->PushBack(false);
      FrequentRec(shape_.LeftChild(v), l0, r0, t, prefix, fn);
      prefix->Truncate(mark + Label(v).size());
    }
    if ((r - r0) - (l - l0) >= t) {
      prefix->PushBack(true);
      FrequentRec(shape_.RightChild(v), l - l0, r - r0, t, prefix, fn);
    }
    prefix->Truncate(mark);
  }

  size_t n_ = 0;
  BinaryTreeShape shape_;
  BitArray labels_;       // concatenated alpha labels, preorder
  EliasFano label_ends_;  // cumulative label lengths per node
  Rrr beta_;              // concatenated internal-node bitvectors, preorder
  EliasFano beta_ends_;   // cumulative beta lengths per internal node
};

}  // namespace wt
