// NaiveIndexedSequence: the trivially-correct, uncompressed implementation
// of the indexed-sequence-of-strings interface (all operations by linear
// scan). It serves two roles:
//   * correctness oracle for the property tests of every Wavelet Trie
//     variant;
//   * the "uncompressed" comparator in the space/time benchmarks.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/bit_string.hpp"

namespace wt {

class NaiveIndexedSequence {
 public:
  NaiveIndexedSequence() = default;
  explicit NaiveIndexedSequence(std::vector<BitString> seq)
      : seq_(std::move(seq)) {}

  void Append(const BitString& s) { seq_.push_back(s); }
  void Insert(size_t pos, const BitString& s) {
    WT_ASSERT(pos <= seq_.size());
    seq_.insert(seq_.begin() + static_cast<ptrdiff_t>(pos), s);
  }
  void Delete(size_t pos) {
    WT_ASSERT(pos < seq_.size());
    seq_.erase(seq_.begin() + static_cast<ptrdiff_t>(pos));
  }

  size_t size() const { return seq_.size(); }

  const BitString& Access(size_t pos) const {
    WT_ASSERT(pos < seq_.size());
    return seq_[pos];
  }

  size_t Rank(BitSpan s, size_t pos) const {
    WT_ASSERT(pos <= seq_.size());
    size_t c = 0;
    for (size_t i = 0; i < pos; ++i) c += s.ContentEquals(seq_[i].Span());
    return c;
  }

  size_t RankPrefix(BitSpan p, size_t pos) const {
    WT_ASSERT(pos <= seq_.size());
    size_t c = 0;
    for (size_t i = 0; i < pos; ++i) c += p.IsPrefixOf(seq_[i].Span());
    return c;
  }

  std::optional<size_t> Select(BitSpan s, size_t idx) const {
    for (size_t i = 0; i < seq_.size(); ++i) {
      if (s.ContentEquals(seq_[i].Span()) && idx-- == 0) return i;
    }
    return std::nullopt;
  }

  std::optional<size_t> SelectPrefix(BitSpan p, size_t idx) const {
    for (size_t i = 0; i < seq_.size(); ++i) {
      if (p.IsPrefixOf(seq_[i].Span()) && idx-- == 0) return i;
    }
    return std::nullopt;
  }

  /// Distinct strings in [l, r) with multiplicities, lexicographic order.
  std::vector<std::pair<BitString, size_t>> DistinctInRange(size_t l,
                                                            size_t r) const {
    std::map<BitString, size_t> counts;  // BitString has operator<
    for (size_t i = l; i < r; ++i) ++counts[seq_[i]];
    return {counts.begin(), counts.end()};
  }

  std::optional<std::pair<BitString, size_t>> RangeMajority(size_t l,
                                                            size_t r) const {
    for (auto& [s, c] : DistinctInRange(l, r)) {
      if (2 * c > r - l) return std::make_pair(s, c);
    }
    return std::nullopt;
  }

  std::vector<std::pair<BitString, size_t>> RangeFrequent(size_t l, size_t r,
                                                          size_t t) const {
    std::vector<std::pair<BitString, size_t>> out;
    for (auto& [s, c] : DistinctInRange(l, r)) {
      if (c >= t) out.emplace_back(s, c);
    }
    return out;
  }

  size_t SizeInBits() const {
    size_t bits = 8 * sizeof(BitString) * seq_.capacity();
    for (const auto& s : seq_) bits += s.SizeInBits();
    return bits;
  }

 private:
  std::vector<BitString> seq_;
};

}  // namespace wt
