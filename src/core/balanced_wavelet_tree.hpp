// Probabilistically-balanced dynamic Wavelet Tree (paper Section 6,
// Theorem 6.2).
//
// Maintains a dynamic sequence of integers from a universe U = {0,...,u-1}
// whose *working alphabet* Sigma (the values actually present) is much
// smaller than u and not known in advance. Values are mapped through the
// multiplicative hash h_a(x) = a*x mod 2^ceil(log u) (a random odd), written
// LSB-to-MSB, and stored in a dynamic Wavelet Trie; by Lemma 6.1 the hashes
// of any Sigma are distinguished by their first O(log |Sigma|) bits with
// probability 1 - |Sigma|^-alpha, so the trie height is O(log |Sigma|)
// regardless of u.
//
// Supports Access, Rank, Select, Insert, Delete in O(log u + h log n) with
// h <= (alpha+2) log |Sigma| w.h.p. — prefix operations are deliberately
// absent (they are meaningless under hashing).
#pragma once

#include <cstdint>
#include <optional>

#include "common/assert.hpp"
#include "core/codec.hpp"
#include "core/dynamic_wavelet_trie.hpp"

namespace wt {

class BalancedWaveletTree {
 public:
  /// `universe_bits`: ceil(log2 u). `seed` selects the hash multiplier; the
  /// same seed reproduces the same structure.
  explicit BalancedWaveletTree(unsigned universe_bits = 64,
                               uint64_t seed = 0x9E3779B97F4A7C15ull)
      : codec_(universe_bits, seed) {}

  void Append(uint64_t x) { trie_.Append(codec_.Encode(x)); }

  void Insert(uint64_t x, size_t pos) { trie_.Insert(codec_.Encode(x), pos); }

  void Delete(size_t pos) { trie_.Delete(pos); }

  uint64_t Access(size_t pos) const { return codec_.Decode(trie_.Access(pos)); }

  size_t Rank(uint64_t x, size_t pos) const {
    return trie_.Rank(codec_.Encode(x), pos);
  }

  std::optional<size_t> Select(uint64_t x, size_t k) const {
    return trie_.Select(codec_.Encode(x), k);
  }

  size_t RangeCount(uint64_t x, size_t l, size_t r) const {
    return trie_.RangeCount(codec_.Encode(x), l, r);
  }

  size_t size() const { return trie_.size(); }
  size_t NumDistinct() const { return trie_.NumDistinct(); }

  /// Trie height (internal nodes on the longest path): Theorem 6.2 predicts
  /// <= (alpha+2) log |Sigma| with probability 1 - |Sigma|^-alpha.
  size_t Height() const { return trie_.Height(); }

  size_t SizeInBits() const { return trie_.SizeInBits() + 8 * sizeof(codec_); }

  /// The underlying trie and codec, for callers composing richer queries
  /// (e.g. Section 5 analytics over the hashed codes — see store/column.hpp).
  const DynamicWaveletTrie& trie() const { return trie_; }
  const HashedIntCodec& codec() const { return codec_; }

 private:
  HashedIntCodec codec_;
  DynamicWaveletTrie trie_;
};

}  // namespace wt
