// BTreeIndexedSequence: the related-work approach (3) baseline — "storing
// the concatenation (s_i, i) in a string dictionary such as a B-Tree", the
// way databases traditionally implement a value index on a column.
//
// Exactly as the paper describes its limitations:
//   * Select(s, idx) is what the index is good at: seek to (s, 0) and walk
//     the leaf chain — O(log n + idx).
//   * Access(pos) needs "another copy of the sequence", kept here as a plain
//     string vector (counted in SizeInBits — this is the honest space cost).
//   * Rank(s, pos) "is not supported": the best the index offers is a range
//     scan over the occurrences of s — O(log n + occ), not O(h_s).
//   * No compression: space is the raw strings plus B-tree nodes plus the
//     duplicated key bytes, typically several times the input.
//
// Append-only, like a database index fed by an insert stream.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/assert.hpp"
#include "index/btree.hpp"

namespace wt {

class BTreeIndexedSequence {
 public:
  using KeyEntry = std::pair<std::string, uint64_t>;

  BTreeIndexedSequence() = default;

  explicit BTreeIndexedSequence(const std::vector<std::string>& seq) {
    for (const auto& s : seq) Append(s);
  }

  void Append(const std::string& s) {
    index_.Insert({s, seq_.size()}, /*value=*/{});
    seq_.push_back(s);
  }

  size_t size() const { return seq_.size(); }
  bool empty() const { return seq_.empty(); }

  /// O(1), but only because the uncompressed copy is kept alongside.
  const std::string& Access(size_t pos) const {
    WT_ASSERT(pos < seq_.size());
    return seq_[pos];
  }

  /// Range scan over the (s, *) keys — O(log n + occ), the un-supported
  /// operation the paper calls out.
  size_t Rank(std::string_view s, size_t pos) const {
    size_t count = 0;
    for (auto it = index_.LowerBound({std::string(s), 0});
         !it.AtEnd() && it.key().first == s; it.Next()) {
      count += it.key().second < pos;
    }
    return count;
  }

  /// Seek + walk: the index's native strength.
  std::optional<size_t> Select(std::string_view s, size_t idx) const {
    auto it = index_.LowerBound({std::string(s), 0});
    for (size_t k = 0; !it.AtEnd() && it.key().first == s; it.Next(), ++k) {
      if (k == idx) return it.key().second;
    }
    return std::nullopt;
  }

  size_t Count(std::string_view s) const { return Rank(s, seq_.size()); }

  /// Prefix variants come free from key order (positions within one string
  /// are ascending, but across different strings the leaf scan yields
  /// (string, position) order, so RankPrefix still scans all occurrences).
  size_t RankPrefix(std::string_view p, size_t pos) const {
    size_t count = 0;
    for (auto it = index_.LowerBound({std::string(p), 0});
         !it.AtEnd() && HasPrefix(it.key().first, p); it.Next()) {
      count += it.key().second < pos;
    }
    return count;
  }

  /// idx-th *sequence position* holding a string with prefix p. The leaf
  /// chain is ordered by (string, position), not by position, so this must
  /// collect and sort — another operation the approach does not really
  /// support.
  std::optional<size_t> SelectPrefix(std::string_view p, size_t idx) const {
    std::vector<uint64_t> positions;
    for (auto it = index_.LowerBound({std::string(p), 0});
         !it.AtEnd() && HasPrefix(it.key().first, p); it.Next()) {
      positions.push_back(it.key().second);
    }
    if (idx >= positions.size()) return std::nullopt;
    std::sort(positions.begin(), positions.end());
    return positions[idx];
  }

  /// Raw copy + B-tree nodes + duplicated key strings.
  size_t SizeInBits() const {
    size_t bits = 8 * sizeof(*this);
    for (const auto& s : seq_) bits += 8 * (s.size() + sizeof(std::string));
    bits += index_.SizeInBits();
    // BPlusTree counts sizeof(std::string) per key slot; add the heap bytes
    // of the duplicated key strings themselves.
    for (auto it = index_.Begin(); !it.AtEnd(); it.Next()) {
      bits += 8 * it.key().first.size();
    }
    return bits;
  }

  const BPlusTree<KeyEntry, std::monostate>& index() const { return index_; }

 private:
  static bool HasPrefix(std::string_view s, std::string_view p) {
    return s.size() >= p.size() && s.compare(0, p.size(), p) == 0;
  }

  std::vector<std::string> seq_;                 // the mandatory plain copy
  BPlusTree<KeyEntry, std::monostate> index_;    // (string, position) keys
};

}  // namespace wt
