// StringSequence<Trie, Codec>: the convenience façade of the library.
//
// The Wavelet Tries operate on prefix-free binary strings; this wrapper pairs
// any trie variant with a codec so applications deal in std::string (or
// uint64_t) directly:
//
//   StringSequence<WaveletTrie> idx(std::vector<std::string>{...});   // static
//   StringSequence<AppendOnlyWaveletTrie> log;  log.Append("GET /x"); // stream
//   StringSequence<DynamicWaveletTrie> col;     col.Insert("new", 0); // dynamic
//
// Prefix operations are exposed when the codec preserves prefixes
// (ByteCodec / RawByteCodec); integer codecs get the plain operations only,
// mirroring Section 6's observation that prefix queries are meaningless
// under hashing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/codec.hpp"
#include "core/dynamic_wavelet_trie.hpp"
#include "core/wavelet_trie.hpp"

namespace wt {

template <typename Trie, typename Codec = ByteCodec>
class StringSequence {
 public:
  using Value = typename Codec::Value;

  static constexpr bool kStatic = std::is_same_v<Trie, WaveletTrie>;
  static constexpr bool kHasPrefixCodec = requires(const Codec& c, Value v) {
    { c.EncodePrefix(v) } -> std::convertible_to<BitString>;
  };

  StringSequence() = default;
  explicit StringSequence(Codec codec) : codec_(std::move(codec)) {}

  /// Static bulk construction (WaveletTrie only), via the word-parallel
  /// BulkBuild path.
  explicit StringSequence(const std::vector<Value>& values, Codec codec = {})
    requires kStatic
      : codec_(std::move(codec)) {
    std::vector<BitString> enc;
    enc.reserve(values.size());
    for (const auto& v : values) enc.push_back(codec_.Encode(v));
    trie_ = WaveletTrie::BulkBuild(enc);
  }

  void Append(const Value& v)
    requires(!kStatic)
  {
    trie_.Append(codec_.Encode(v));
  }

  /// Appends a whole batch in one word-parallel trie pass — the bulk-load
  /// entry point for streaming ingest (equivalent to Append on each value,
  /// in order, but one traversal per touched trie node per batch).
  void AppendBatch(const std::vector<Value>& values)
    requires(!kStatic)
  {
    std::vector<BitString> enc;
    enc.reserve(values.size());
    for (const auto& v : values) enc.push_back(codec_.Encode(v));
    trie_.AppendBatch(enc);
  }

  void Insert(const Value& v, size_t pos)
    requires(!kStatic && Trie::kFullyDynamic)
  {
    trie_.Insert(codec_.Encode(v), pos);
  }

  void Delete(size_t pos)
    requires(!kStatic && Trie::kFullyDynamic)
  {
    trie_.Delete(pos);
  }

  size_t size() const { return trie_.size(); }
  bool empty() const { return trie_.size() == 0; }
  size_t NumDistinct() const { return trie_.NumDistinct(); }

  Value Access(size_t pos) const { return codec_.Decode(trie_.Access(pos).Span()); }

  size_t Rank(const Value& v, size_t pos) const {
    return trie_.Rank(codec_.Encode(v), pos);
  }
  std::optional<size_t> Select(const Value& v, size_t idx) const {
    return trie_.Select(codec_.Encode(v), idx);
  }
  size_t Count(const Value& v) const { return Rank(v, size()); }
  size_t RangeCount(const Value& v, size_t l, size_t r) const {
    return Rank(v, r) - Rank(v, l);
  }

  size_t RankPrefix(const Value& p, size_t pos) const
    requires kHasPrefixCodec
  {
    return trie_.RankPrefix(codec_.EncodePrefix(p), pos);
  }
  std::optional<size_t> SelectPrefix(const Value& p, size_t idx) const
    requires kHasPrefixCodec
  {
    return trie_.SelectPrefix(codec_.EncodePrefix(p), idx);
  }
  size_t CountPrefix(const Value& p) const
    requires kHasPrefixCodec
  {
    return RankPrefix(p, size());
  }
  size_t RangeCountPrefix(const Value& p, size_t l, size_t r) const
    requires kHasPrefixCodec
  {
    return RankPrefix(p, r) - RankPrefix(p, l);
  }

  /// Section 5: distinct decoded values in [l, r) with multiplicities.
  /// fn(const Value&, size_t multiplicity); deduced callable, see
  /// wavelet_trie.hpp.
  template <typename F>
  void DistinctInRange(size_t l, size_t r, const F& fn) const {
    trie_.DistinctInRange(l, r, [&](const BitString& s, size_t c) {
      fn(codec_.Decode(s.Span()), c);
    });
  }

  /// Section 5, prefix-restricted: distinct decoded values with prefix p in
  /// [l, r), with multiplicities ("the distinct hostnames in a time range").
  template <typename F>
  void DistinctInRangeWithPrefix(const Value& p, size_t l, size_t r,
                                 const F& fn) const
    requires kHasPrefixCodec
  {
    trie_.DistinctInRangeWithPrefix(codec_.EncodePrefix(p).Span(), l, r,
                                    [&](const BitString& s, size_t c) {
                                      fn(codec_.Decode(s.Span()), c);
                                    });
  }

  /// Section 5: majority value of [l, r), if any.
  std::optional<std::pair<Value, size_t>> RangeMajority(size_t l, size_t r) const {
    auto m = trie_.RangeMajority(l, r);
    if (!m) return std::nullopt;
    return std::make_pair(codec_.Decode(m->first.Span()), m->second);
  }

  /// Section 5: values occurring at least t times in [l, r).
  template <typename F>
  void RangeFrequent(size_t l, size_t r, size_t t, const F& fn) const {
    trie_.RangeFrequent(l, r, t, [&](const BitString& s, size_t c) {
      fn(codec_.Decode(s.Span()), c);
    });
  }

  /// Section 5: sequential decoded access over [l, r).
  /// fn(size_t position, const Value&).
  template <typename F>
  void ForEachInRange(size_t l, size_t r, const F& fn) const {
    trie_.ForEachInRange(l, r, [&](size_t i, const BitString& s) {
      fn(i, codec_.Decode(s.Span()));
    });
  }

  /// Snapshots a dynamic sequence into the static representation (Theorem
  /// 3.7) — the "flush" of a streaming ingest path. Extraction uses the
  /// Section 5 sequential scan (one Rank per trie node for the whole
  /// sequence), not n independent Access calls.
  StringSequence<WaveletTrie, Codec> Freeze() const
    requires(!kStatic)
  {
    std::vector<BitString> enc;
    enc.reserve(trie_.size());
    trie_.ForEachInRange(0, trie_.size(), [&](size_t, const BitString& s) {
      enc.push_back(s);
    });
    StringSequence<WaveletTrie, Codec> out(codec_);
    out.trie_ = WaveletTrie::BulkBuild(enc);
    return out;
  }

  /// Compressed footprint: the trie representation plus the codec state.
  /// (8 * sizeof(*this) would double-count the trie object, whose content
  /// SizeInBits() already measures — the codec is the only extra state.)
  size_t SizeInBits() const { return trie_.SizeInBits() + 8 * sizeof(Codec); }

  const Trie& trie() const { return trie_; }
  const Codec& codec() const { return codec_; }

 private:
  template <typename T, typename C>
  friend class StringSequence;  // Freeze() builds the static instantiation

  Codec codec_;
  Trie trie_;
};

}  // namespace wt
