// Codecs: binarization of application values into prefix-free binary
// strings (paper Section 2, "strings from larger alphabets can be binarized",
// and Section 6's randomized mapping).
//
// The Wavelet Trie requires the *set* of encoded strings to be prefix-free.
// Each codec here guarantees that by construction:
//
//   ByteCodec      — any byte string; each byte becomes a 0-flagged 9-bit
//                    group (0 then the 8 data bits MSB-first), terminated by
//                    a lone 1 bit. EncodePrefix omits the terminator, and is
//                    a bit-prefix of Encode(s) exactly when p is a byte
//                    prefix of s — which is what RankPrefix/SelectPrefix
//                    need.
//   RawByteCodec   — 8 bits per byte plus a 0x00 terminator byte; more
//                    compact, requires NUL-free input.
//   FixedIntCodec  — integers as fixed-width MSB-first strings (all the same
//                    length, hence prefix-free); the resulting Wavelet Trie
//                    is exactly the classic balanced Wavelet Tree.
//   HashedIntCodec — Section 6: x -> a*x mod 2^width with a random odd
//                    multiplier, written MSB-first (see the class comment
//                    for why the paper's LSB order is corrected); the trie
//                    on the hashes is balanced w.h.p. (Lemma 6.1 intent).
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>

#include "common/assert.hpp"
#include "common/bit_string.hpp"
#include "common/bits.hpp"
#include "common/serialize.hpp"

namespace wt {

// Each codec carries a stable one-byte id, recorded in the serialization
// envelope of api/sequence.hpp so a Load into the wrong instantiation fails
// cleanly instead of decoding garbage. Stateful codecs additionally expose
// SaveState/LoadState; stateless ones have nothing to persist.

class ByteCodec {
 public:
  using Value = std::string;
  static constexpr uint8_t kCodecId = 1;

  static BitString Encode(std::string_view s) {
    BitString out = EncodePrefix(s);
    out.PushBack(true);  // terminator
    return out;
  }

  /// Encoding of a *prefix* query: no terminator, so byte-prefix relations
  /// are preserved as bit-prefix relations. Word-parallel: each byte is one
  /// 9-bit append (flag + mirrored byte) instead of nine PushBacks.
  static BitString EncodePrefix(std::string_view p) {
    BitString out;
    for (unsigned char c : p) {
      out.AppendBits(ReverseBits(c, 8) << 1, 9);
    }
    return out;
  }

  static std::string Decode(BitSpan bits) {
    std::string out;
    out.reserve(bits.size() / 9);
    size_t i = 0;
    // Word-parallel fast path: one 63-bit load covers seven 9-bit groups.
    // Their flag bits sit at positions 0, 9, ..., 54 of the load; all-zero
    // flags mean seven full data groups, otherwise the lowest set flag is
    // the terminator (intermediate flags are 0 by construction) and only
    // the groups below it carry data. The 56 data bits are extracted in one
    // pext (or a short shift loop without BMI2) and un-mirrored lane-wise.
    constexpr uint64_t kFlagMask = 0x0040201008040201ull;  // bits 9j, j<7
    constexpr uint64_t kDataMask = 0x7FFFFFFFFFFFFFFFull & ~kFlagMask;
    while (i + 63 <= bits.size()) {
      const uint64_t w = bits.GetBits(i, 63);
      const uint64_t flags = w & kFlagMask;
      const size_t groups =
          flags == 0 ? 7 : static_cast<size_t>(std::countr_zero(flags)) / 9;
      if (groups > 0) {
#if defined(__BMI2__)
        uint64_t data = _pext_u64(w, kDataMask);
#else
        uint64_t data = 0;
        for (size_t j = 0; j < groups; ++j) {
          data |= ((w >> (9 * j + 1)) & 0xFF) << (8 * j);
        }
#endif
        data = ReverseBitsInBytes(data);  // byte lane j = group j's byte
        for (size_t j = 0; j < groups; ++j) {
          out.push_back(static_cast<char>(data >> (8 * j)));
        }
        i += groups * 9;
      }
      if (flags != 0) return out;  // the terminator follows the last group
    }
    // Tail (and oddly-short strings): the per-group reference loop.
    for (;;) {
      WT_ASSERT_MSG(i < bits.size(), "ByteCodec: truncated encoding");
      if (bits.Get(i)) return out;  // terminator
      WT_ASSERT_MSG(i + 9 <= bits.size(), "ByteCodec: truncated group");
      out.push_back(static_cast<char>(ReverseBits(bits.GetBits(i + 1, 8), 8)));
      i += 9;
    }
  }
};

class RawByteCodec {
 public:
  using Value = std::string;
  static constexpr uint8_t kCodecId = 2;

  static BitString Encode(std::string_view s) {
    BitString out = EncodePrefix(s);
    out.AppendBits(0, 8);  // 0x00 terminator
    return out;
  }

  static BitString EncodePrefix(std::string_view p) {
    BitString out;
    for (unsigned char c : p) {
      WT_ASSERT_MSG(c != 0, "RawByteCodec: NUL bytes not supported");
      out.AppendBits(ReverseBits(c, 8), 8);
    }
    return out;
  }

  static std::string Decode(BitSpan bits) {
    WT_ASSERT_MSG(bits.size() % 8 == 0, "RawByteCodec: misaligned encoding");
    std::string out;
    for (size_t i = 0; i + 8 <= bits.size(); i += 8) {
      const unsigned char c =
          static_cast<unsigned char>(ReverseBits(bits.GetBits(i, 8), 8));
      if (c == 0) return out;
      out.push_back(static_cast<char>(c));
    }
    WT_ASSERT_MSG(false, "RawByteCodec: missing terminator");
    return out;
  }
};

/// Fixed-width MSB-first integer binarization. Lexicographic bit order
/// equals numeric order, and the induced Wavelet Trie is the classic
/// balanced Wavelet Tree on {0, ..., 2^width - 1}.
class FixedIntCodec {
 public:
  using Value = uint64_t;
  static constexpr uint8_t kCodecId = 3;

  explicit FixedIntCodec(unsigned width = 64) : width_(width) {
    WT_ASSERT(width >= 1 && width <= 64);
  }

  void SaveState(std::ostream& out) const { WritePod<uint32_t>(out, width_); }
  void LoadState(std::istream& in) {
    width_ = ReadPod<uint32_t>(in);
    WT_ASSERT_MSG(width_ >= 1 && width_ <= 64, "FixedIntCodec: corrupt width");
  }

  BitString Encode(uint64_t x) const {
    WT_DASSERT(width_ == 64 || x < (uint64_t(1) << width_));
    BitString out;
    out.AppendBits(ReverseBits(x, width_), width_);  // MSB first
    return out;
  }

  uint64_t Decode(BitSpan bits) const {
    WT_ASSERT(bits.size() == width_);
    return ReverseBits(bits.GetBits(0, width_), width_);
  }

  unsigned width() const { return width_; }

 private:
  unsigned width_;
};

/// Section 6 randomized codec: h_a(x) = a*x mod 2^width with a random odd
/// multiplier a, written *MSB-first*.
///
/// Reproduction note (documented in EXPERIMENTS.md): the paper writes the
/// hash "LSB-to-MSB", but for any odd a the low bits of a multiplicative
/// hash are deterministic — a(x-y) = 0 mod 2^l iff x = y mod 2^l — so an
/// LSB-first trie cannot be balanced by the choice of a (an alphabet
/// {2^k - 1} stays a chain; bench_balanced_wtree demonstrates it). The
/// Dietzfelbinger et al. lemma the paper cites is about the *high* bits of
/// ax (multiply-shift universality), which is what MSB-first order uses;
/// with it the trie height is O(log |Sigma|) w.h.p. as Theorem 6.2 claims.
class HashedIntCodec {
 public:
  using Value = uint64_t;
  static constexpr uint8_t kCodecId = 4;

  explicit HashedIntCodec(unsigned width = 64, uint64_t seed = 0x9E3779B97F4A7C15ull)
      : width_(width) {
    WT_ASSERT(width >= 1 && width <= 64);
    // Full-entropy odd multiplier derived from the seed (splitmix64 finalizer).
    a_ = Mix(seed) | 1;
    a_inv_ = InverseOdd(a_);
  }

  /// Persists the multiplier itself (not the seed): a reload must decode
  /// codes produced by this exact instance.
  void SaveState(std::ostream& out) const {
    WritePod<uint32_t>(out, width_);
    WritePod<uint64_t>(out, a_);
  }
  void LoadState(std::istream& in) {
    width_ = ReadPod<uint32_t>(in);
    WT_ASSERT_MSG(width_ >= 1 && width_ <= 64, "HashedIntCodec: corrupt width");
    a_ = ReadPod<uint64_t>(in);
    WT_ASSERT_MSG(a_ & 1, "HashedIntCodec: corrupt multiplier");
    a_inv_ = InverseOdd(a_);
  }

  BitString Encode(uint64_t x) const {
    WT_DASSERT(width_ == 64 || x < (uint64_t(1) << width_));
    const uint64_t h = (a_ * x) & Mask();
    BitString out;
    out.AppendBits(ReverseBits(h, width_), width_);  // MSB first
    return out;
  }

  uint64_t Decode(BitSpan bits) const {
    WT_ASSERT(bits.size() == width_);
    const uint64_t h = ReverseBits(bits.GetBits(0, width_), width_);
    return (a_inv_ * h) & Mask();
  }

  unsigned width() const { return width_; }
  uint64_t multiplier() const { return a_; }

 private:
  uint64_t Mask() const { return width_ >= 64 ? ~uint64_t(0) : (uint64_t(1) << width_) - 1; }

  static uint64_t Mix(uint64_t z) {
    z += 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Inverse of an odd number mod 2^64 by Newton iteration.
  static uint64_t InverseOdd(uint64_t a) {
    uint64_t x = a;  // correct to 3 bits
    for (int i = 0; i < 5; ++i) x *= 2 - a * x;
    return x;
  }

  unsigned width_;
  uint64_t a_;
  uint64_t a_inv_;
};

}  // namespace wt
